// Package frontiersim's root benchmark suite regenerates every table and
// figure of the paper's evaluation section, one testing.B benchmark per
// artifact, plus micro-benchmarks of the simulator's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each reproduction benchmark reports the paper-vs-measured rows once
// (via b.Log on the first iteration) and then times the full experiment,
// so `go test -bench` output doubles as a regeneration log.
package frontiersim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"frontiersim/internal/experiments"
	"frontiersim/internal/fabric"
	"frontiersim/internal/gpu"
	"frontiersim/internal/llm"
	"frontiersim/internal/machine"
	"frontiersim/internal/memory"
	"frontiersim/internal/network"
	"frontiersim/internal/report"
	"frontiersim/internal/resilience"
	"frontiersim/internal/scheduler"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultOptions()
	opts.Quick = testing.Short()
	var table *report.Table
	for i := 0; i < b.N; i++ {
		table, err = runner.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	var buf bytes.Buffer
	table.Render(&buf)
	b.Log("\n" + buf.String())
	if dev := table.MaxAbsDeviation(); dev > 0 {
		b.ReportMetric(dev*100, "max-deviation-%")
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1ComputeSpecs(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2IOSpecs(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkTable3CPUStream(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkFig3Gemm(b *testing.B)           { benchExperiment(b, "fig3") }
func BenchmarkTable4GPUStream(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkFig4HostToDevice(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5PeerBandwidth(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6MpiGraph(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkTable5GPCNeT(b *testing.B)       { benchExperiment(b, "table5") }
func BenchmarkSec431NodeLocal(b *testing.B)    { benchExperiment(b, "sec431") }
func BenchmarkSec432Orion(b *testing.B)        { benchExperiment(b, "sec432") }
func BenchmarkTable6CAAR(b *testing.B)         { benchExperiment(b, "table6") }
func BenchmarkTable7ECP(b *testing.B)          { benchExperiment(b, "table7") }
func BenchmarkSec51Power(b *testing.B)         { benchExperiment(b, "sec51") }
func BenchmarkSec54Resiliency(b *testing.B)    { benchExperiment(b, "sec54") }

// Ablation benchmarks (DESIGN.md extensions).

func BenchmarkAblationTaper(b *testing.B)      { benchExperiment(b, "ablation-taper") }
func BenchmarkAblationNPS(b *testing.B)        { benchExperiment(b, "ablation-nps") }
func BenchmarkAblationRouting(b *testing.B)    { benchExperiment(b, "ablation-routing") }
func BenchmarkAblationCC(b *testing.B)         { benchExperiment(b, "ablation-cc") }
func BenchmarkAblationPlacement(b *testing.B)  { benchExperiment(b, "ablation-placement") }
func BenchmarkAblationCheckpoint(b *testing.B) { benchExperiment(b, "ablation-checkpoint") }

// Micro-benchmarks of the simulator's hot paths.

func BenchmarkDragonflyBuild(b *testing.B) {
	cfg, err := machine.Frontier().FabricConfig()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := fabric.NewDragonfly(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalRoute(b *testing.B) {
	f, err := machine.Frontier().NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := f.Cfg.ComputeEndpoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			continue
		}
		if _, err := f.MinimalPath(src, dst, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxMinSolve(b *testing.B) {
	f, err := machine.Scaled(16, 16, 8).NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	nodes := f.Cfg.ComputeNodes()
	build := func() []*network.Demand {
		demands := make([]*network.Demand, 0, nodes)
		for i := 0; i < nodes; i++ {
			src := f.NodeEndpoints(i)[0]
			dst := f.NodeEndpoints((i + nodes/2) % nodes)[0]
			ps, err := f.AdaptivePaths(src, dst, 4, rng)
			if err != nil {
				b.Fatal(err)
			}
			demands = append(demands, &network.Demand{Src: src, Dst: dst, Paths: ps.Paths})
		}
		return demands
	}
	demands := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := network.Solve(f, demands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverArenaReuse measures a dedicated Solver re-solving one
// demand set: the steady state of every experiment's inner loop. With the
// arena warm this is allocation-free (ns/solve and allocs/solve are the
// metrics the BENCH trajectory tracks for the water-filling core).
func BenchmarkSolverArenaReuse(b *testing.B) {
	f, err := machine.Scaled(16, 16, 8).NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	nodes := f.Cfg.ComputeNodes()
	demands := make([]*network.Demand, 0, nodes)
	for i := 0; i < nodes; i++ {
		src := f.NodeEndpoints(i)[0]
		dst := f.NodeEndpoints((i + nodes/2) % nodes)[0]
		ps, err := f.AdaptivePaths(src, dst, 4, rng)
		if err != nil {
			b.Fatal(err)
		}
		demands = append(demands, &network.Demand{Src: src, Dst: dst, Paths: ps.Paths})
	}
	s := network.NewSolver()
	if err := s.Solve(f, demands); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Solve(f, demands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptivePathsCached measures route lookup through the
// epoch-cached path sets that back the parallel mpiGraph census.
func BenchmarkAdaptivePathsCached(b *testing.B) {
	f, err := machine.Scaled(16, 16, 8).NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	cache := fabric.NewPathCache(f, 4, 1)
	n := f.Cfg.ComputeEndpoints()
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			continue
		}
		if _, err := cache.Paths(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamDerivation measures the cost of minting a named
// random stream from a kernel — the seeding tax the internal/rng
// package exists to kill. With the legacy lagged-Fibonacci source this
// was a 607-element warmup per stream; with SplitMix64-seeded
// xoshiro256++ it is a hash plus four words of state.
func BenchmarkStreamDerivation(b *testing.B) {
	k := sim.NewKernel(42)
	names := [...]string{"nic", "gpu", "hbm", "scheduler"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k.Stream(names[i%len(names)]) == nil {
			b.Fatal("nil stream")
		}
	}
}

// BenchmarkPathCacheFill measures the adaptive-route path-set fill that
// dominates the full-scale census. The cold case pays the whole fill —
// per-pair stream derivation plus the CSR path build — on every
// iteration (a fresh cache per pass over the endpoints); the warm case
// is the steady-state cache hit.
func BenchmarkPathCacheFill(b *testing.B) {
	f, err := machine.Scaled(16, 16, 8).NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	n := f.Cfg.ComputeEndpoints()
	const pairs = 64
	b.Run("cold", func(b *testing.B) {
		cache := fabric.NewPathCache(f, 4, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := i % pairs
			dst := (src + n/2) % n
			if src == 0 {
				cache.Invalidate()
			}
			if _, err := cache.Paths(src, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := fabric.NewPathCache(f, 4, 1)
		for src := 0; src < pairs; src++ {
			if _, err := cache.Paths(src, (src+n/2)%n); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := i % pairs
			dst := (src + n/2) % n
			if _, err := cache.Paths(src, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6FullScale runs the full-machine mpiGraph census — 9,408
// nodes, 8 shift permutations, 4 ranks per node — through the parallel
// harness in its steady operating state: the campaign server's repeated
// what-ifs, where the solution cache serves each shift by pattern
// signature and the shared path cache is warm. The warm-up run before
// the timer is the cold first encounter; every timed iteration is the
// interactive-latency regime the incremental solver exists for.
// BenchmarkFig6FullScaleCold below keeps the uncached trajectory.
func BenchmarkFig6FullScale(b *testing.B) {
	if testing.Short() {
		b.Skip("full-scale census in -short mode")
	}
	f, err := machine.Frontier().NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	cfg := network.DefaultMpiGraphConfig()
	cfg.Nodes = 9408
	pcfg := network.ParallelConfig{Seed: 1, Solutions: network.NewSolutionCache(0)}
	pcfg.Paths = network.NewMpiGraphPathCache(f, cfg, pcfg)
	warm, err := network.RunMpiGraphParallel(context.Background(), f, cfg, pcfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := network.RunMpiGraphParallel(context.Background(), f, cfg, pcfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if res.Min != warm.Min || res.Max != warm.Max || res.Mean != warm.Mean {
				b.Fatalf("cached census diverged from cold run: min %v vs %v, max %v vs %v",
					res.Min, warm.Min, res.Max, warm.Max)
			}
			b.Logf("full-scale census: %d samples, min %.2f GB/s, max %.2f GB/s, spread %.1fx",
				len(res.Samples), res.Min/1e9, res.Max/1e9, res.Spread())
		}
	}
}

// BenchmarkFig6FullScaleCold is the same census with cold caches every
// iteration — the first-encounter cost a fresh topology pays, and the
// number the pre-incremental solver was benchmarked at (~1.5s).
func BenchmarkFig6FullScaleCold(b *testing.B) {
	if testing.Short() {
		b.Skip("full-scale census in -short mode")
	}
	f, err := machine.Frontier().NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	cfg := network.DefaultMpiGraphConfig()
	cfg.Nodes = 9408
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := network.RunMpiGraphParallel(context.Background(), f, cfg,
			network.ParallelConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("full-scale census: %d samples, min %.2f GB/s, max %.2f GB/s, spread %.1fx",
				len(res.Samples), res.Min/1e9, res.Max/1e9, res.Spread())
		}
	}
}

// benchSolverDemands builds the far-shift demand set the solver
// micro-benchmarks share.
func benchSolverDemands(b *testing.B, f *fabric.Fabric) []*network.Demand {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	nodes := f.Cfg.ComputeNodes()
	demands := make([]*network.Demand, 0, nodes)
	for i := 0; i < nodes; i++ {
		src := f.NodeEndpoints(i)[0]
		dst := f.NodeEndpoints((i + nodes/2) % nodes)[0]
		ps, err := f.AdaptivePaths(src, dst, 4, rng)
		if err != nil {
			b.Fatal(err)
		}
		demands = append(demands, &network.Demand{Src: src, Dst: dst, Paths: ps.Paths})
	}
	return demands
}

// BenchmarkSolverDelta measures SolveDelta's two regimes against the
// full re-solve BenchmarkSolverArenaReuse times: "clean" is a delta
// where no changed link crosses the problem (the previous solution is
// returned verbatim, no heap work at all), "dirty" re-runs the
// water-filling fill over the preserved CSR build without re-validating
// or rebuilding adjacency.
func BenchmarkSolverDelta(b *testing.B) {
	f, err := machine.Scaled(16, 16, 8).NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	demands := benchSolverDemands(b, f)
	s := network.NewSolver()
	if err := s.Solve(f, demands); err != nil {
		b.Fatal(err)
	}
	b.Run("clean", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.SolveDelta(f, demands, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dirty", func(b *testing.B) {
		changed := []int{demands[0].Paths[0][0]}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.SolveDelta(f, demands, changed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSolutionCache measures the per-solve overhead and payoff of
// the solution cache: "signature" is the SHA-256 demand-set hash every
// literal-keyed lookup pays, "hit" a full lookup-and-apply serving a
// stored allocation in place of the solve.
func BenchmarkSolutionCache(b *testing.B) {
	f, err := machine.Scaled(16, 16, 8).NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	demands := benchSolverDemands(b, f)
	if err := network.Solve(f, demands); err != nil {
		b.Fatal(err)
	}
	cache := network.NewSolutionCache(0)
	sig := network.DemandSignature(demands)
	cache.Store(f, "", sig, demands)
	b.Run("signature", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if network.DemandSignature(demands) != sig {
				b.Fatal("signature changed")
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, ok := cache.Lookup(f, "", sig)
			if !ok || !sol.Apply(demands) {
				b.Fatal("expected a cache hit")
			}
		}
	})
}

func BenchmarkAblationPPN(b *testing.B)    { benchExperiment(b, "ablation-ppn") }
func BenchmarkExtBurstBuffer(b *testing.B) { benchExperiment(b, "ext-burstbuffer") }
func BenchmarkExtSysmgmt(b *testing.B)     { benchExperiment(b, "ext-sysmgmt") }
func BenchmarkExtOperations(b *testing.B)  { benchExperiment(b, "ext-operations") }

func BenchmarkRoutingTableBuild(b *testing.B) {
	f, err := machine.Frontier().NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tables := f.BuildAllRoutingTables(); len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkKernelSchedule measures the raw event-calendar cycle —
// schedule into a ~thousand-deep 4-ary heap, dispatch, recycle the arena
// slot — through the closure-free AtCall path. allocs/op is the
// steady-state allocation cost per event (the arena makes it ~0);
// events/sec is the headline number the BENCH trajectory tracks.
func BenchmarkKernelSchedule(b *testing.B) {
	k := sim.NewKernel(1)
	count := 0
	bump := func(any) { count++ }
	const depth = 1024
	// Warm the arena and heap to steady-state size.
	for i := 0; i < depth; i++ {
		k.AtCall(sim.Time(i%64), bump, nil)
	}
	k.Run()
	start := k.Executed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.AtCall(k.Now()+sim.Time(i%64), bump, nil)
		if i%depth == depth-1 {
			k.Run()
		}
	}
	k.Run()
	b.StopTimer()
	b.ReportMetric(float64(k.Executed()-start)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkTransportStorm keeps thousands of messages in flight across
// the full Frontier fabric: every hop is an acquire + two scheduled
// continuations on the kernel, so this is the event-engine throughput
// number the ISSUE's ≥3x target is measured on. Steady state must hold
// ~0 allocs/event — hop state is pooled, routes fill reused buffers, and
// continuations ride the closure-free path.
func BenchmarkTransportStorm(b *testing.B) {
	f, err := machine.Frontier().NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel(1)
	tr := network.NewTransport(k, f)
	n := f.Cfg.ComputeEndpoints()
	const inflight = 4096
	storm := func() {
		// Identical pairs every iteration: the warm-up storm touches
		// every link resource, so timed iterations measure steady state.
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < inflight; i++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				dst = (dst + 1) % n
			}
			if err := tr.Send(src, dst, 256*units.KiB, nil); err != nil {
				b.Fatal(err)
			}
		}
		k.Run()
	}
	tr.WarmLinks() // every link resource exists before measurement
	storm()        // warm the message pool, path buffers, and waiter queues
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := k.Executed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		storm()
	}
	b.StopTimer()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	events := float64(k.Executed() - start)
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/events, "allocs/event")
}

// BenchmarkResiliencyYear injects a year of Frontier's Monte-Carlo
// failure trace (§5.4's component classes: tens of thousands of events)
// and dispatches it, the resiliency analogue of the storm benchmark.
func BenchmarkResiliencyYear(b *testing.B) {
	m, err := machine.Frontier().ResilienceModel()
	if err != nil {
		b.Fatal(err)
	}
	const year = 365 * units.Day
	var events uint64
	interrupts := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(int64(i))
		rng := rand.New(rand.NewSource(int64(i)))
		m.Inject(k, year, rng, func(f resilience.Failure) {
			if f.Interrupting {
				interrupts++
			}
		})
		k.Run()
		events += k.Executed()
	}
	b.StopTimer()
	if interrupts == 0 {
		b.Fatal("a year on Frontier with no interrupts")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkTransportMessage(b *testing.B) {
	f, err := machine.Scaled(6, 8, 4).NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel(1)
	tr := network.NewTransport(k, f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Send(i%96, 96+i%96, 64*units.KiB, nil); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
}

func BenchmarkSchedulerCycle(b *testing.B) {
	f, err := machine.Frontier().NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := scheduler.New(k, f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit("bench", 1024, 10, nil); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
}

func BenchmarkStreamModel(b *testing.B) {
	d := memory.TrentoDDR4()
	for i := 0; i < b.N; i++ {
		for _, kern := range memory.CPUStreamKernels {
			if memory.CPUStreamBandwidth(d, kern, i%2 == 0) <= 0 {
				b.Fatal("zero bandwidth")
			}
		}
	}
}

func BenchmarkGemmModel(b *testing.B) {
	g := gpu.NewMI250XGCD()
	for i := 0; i < b.N; i++ {
		if g.GemmAchieved(gpu.FP64, 8192) <= 0 {
			b.Fatal("zero rate")
		}
	}
}

func BenchmarkExtInventory(b *testing.B) { benchExperiment(b, "ext-inventory") }

func BenchmarkExtMiniapps(b *testing.B) { benchExperiment(b, "ext-miniapps") }

// benchRunAll times the whole registry through the harness at the given
// worker count. Quick mode keeps one iteration in CI range; the serial
// and parallel variants share seeds, so their tables are identical and
// the only difference is wall time.
func benchRunAll(b *testing.B, jobs int) {
	b.Helper()
	runners := experiments.Registry()
	opts := experiments.DefaultOptions()
	opts.Quick = true
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunAll(context.Background(), runners, opts,
			experiments.RunConfig{Jobs: jobs}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(runners) {
			b.Fatalf("got %d results, want %d", len(results), len(runners))
		}
	}
}

// BenchmarkRunAllSerial is the jobs=1 baseline for the parallel harness.
func BenchmarkRunAllSerial(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllParallel runs the registry at GOMAXPROCS workers. On a
// 4+ core runner the wall time approaches the longest single experiment
// (expensive experiments dispatch first); the CI bench job records both
// trajectories per commit.
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, 0) }

// benchShardStorm is one compute group's share of the sharded storm:
// the kick runs on the owning LP, draws identical pairs every iteration
// from the LP's stream, and sends into the dragonfly.
type benchShardStorm struct {
	tr       *network.ShardedTransport
	lp       *sim.LP
	sources  []int
	targets  int
	messages int
}

func benchShardStormKick(arg any) {
	s := arg.(*benchShardStorm)
	r := s.lp.Stream("bench-storm")
	for i := 0; i < s.messages; i++ {
		src := s.sources[r.Intn(len(s.sources))]
		dst := r.Intn(s.targets)
		for dst == src {
			dst = r.Intn(s.targets)
		}
		if err := s.tr.Send(src, dst, 256*units.KiB, nil); err != nil {
			panic(err)
		}
	}
}

// BenchmarkTransportStormSharded is the parallel counterpart of
// BenchmarkTransportStorm: the same full-Frontier message storm on the
// sharded kernel at 1/2/4/8 worker shards. The ISSUE's ≥3x events/sec
// target at 8 shards is measured against the shards=1 sub-benchmark
// (identical algorithm, one worker) on a multi-core runner.
func BenchmarkTransportStormSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			f, err := machine.Frontier().NewFabric()
			if err != nil {
				b.Fatal(err)
			}
			sk := sim.NewSharded(1, f, shards)
			tr := network.NewShardedTransport(sk, f)
			tr.WarmLinks()
			var kicks []*benchShardStorm
			for g := 0; g < sk.NumLPs(); g++ {
				if f.GroupClassOf(g) != fabric.ComputeGroup {
					continue
				}
				var sources []int
				for _, sw := range f.GroupSwitches(g) {
					for e := 0; e < f.Cfg.EndpointsPerSwitch; e++ {
						sources = append(sources, sw*f.Cfg.EndpointsPerSwitch+e)
					}
				}
				kicks = append(kicks, &benchShardStorm{
					tr: tr, lp: sk.LP(g), sources: sources,
					targets: f.Cfg.ComputeEndpoints(), messages: 56, // ~4096 in flight across 74 groups
				})
			}
			// Each iteration is one virtual-second epoch ended by RunUntil,
			// which re-synchronizes every LP clock: a kick at the epoch
			// start then can never post into another LP's past.
			epoch := units.Seconds(0)
			storm := func() {
				for _, s := range kicks {
					s.lp.K.AtCall(epoch, benchShardStormKick, s)
				}
				epoch += 1
				sk.RunUntil(epoch)
			}
			storm() // warm pools, path buffers, link resources
			start := sk.Executed()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				storm()
			}
			b.StopTimer()
			events := float64(sk.Executed() - start)
			b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkResiliencyYearSharded injects the same year of Monte-Carlo
// failures as BenchmarkResiliencyYear, with the component populations
// split across per-group LPs. Failure injection has no cross-LP events,
// so a single lookahead window covers the year and speedup approaches
// the shard count on a multi-core runner.
func BenchmarkResiliencyYearSharded(b *testing.B) {
	m, err := machine.Frontier().ResilienceModel()
	if err != nil {
		b.Fatal(err)
	}
	f, err := machine.Frontier().NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	lps := f.NumLPs()
	const year = 365 * units.Day
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var events uint64
			interrupts := make([]int, lps)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk := sim.NewSharded(int64(i), sim.StaticPartition{LPs: lps, Bound: year}, shards)
				m.InjectSharded(sk, year, func(lp int, fl resilience.Failure) {
					if fl.Interrupting {
						interrupts[lp]++
					}
				})
				sk.RunUntil(year)
				events += sk.Executed()
			}
			b.StopTimer()
			total := 0
			for _, c := range interrupts {
				total += c
			}
			if total == 0 {
				b.Fatal("a year on Frontier with no interrupts")
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkLLMTrainStep prices one LLM training step on a concrete
// placement: the Bind hot path every phase-structured submission pays
// (roofline compute, TP/PP/DP collectives on the real fabric, HBM-bound
// microbatching already folded into the program). Single-path and
// allocation-light, so ns/op is gated in benchjson compare mode.
func BenchmarkLLMTrainStep(b *testing.B) {
	spec := machine.Scaled(16, 16, 8)
	f, err := spec.NewFabric()
	if err != nil {
		b.Fatal(err)
	}
	env, err := spec.JobEnv(f)
	if err != nil {
		b.Fatal(err)
	}
	step, err := llm.AutoStep(llm.Frontier175B(), 128, spec.Node.DevicesPerNode, spec.NodeModel())
	if err != nil {
		b.Fatal(err)
	}
	prog := step.WithSteps(1, 0)
	placement := env.SpreadPlacement(prog.Nodes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bound, err := env.Bind(prog, placement)
		if err != nil {
			b.Fatal(err)
		}
		if bound.Total <= 0 {
			b.Fatal("free training step")
		}
	}
}

// BenchmarkCampaignWeek replays the phase-structured campaign through
// the scheduler: a week of program jobs in full mode, a day in -short.
// The campaign is a long deterministic event loop, so its ns/op is
// gated in benchjson compare mode alongside the kernel benchmarks.
func BenchmarkCampaignWeek(b *testing.B) { benchExperiment(b, "ext-campaign") }

// BenchmarkCampaignYear is the scale target the campaign engine's hot
// path is sized against: a simulated year on the full Frontier spec
// (a fortnight in -short), every job phase-structured, with the
// placement-signature pricing cache, the indexed scheduler, and batched
// arrival/failure sampling all engaged. The run is deterministic end to
// end, so its ns/op is gated in benchjson compare mode; the rendered
// table reports the pricing-cache hit rate alongside the campaign rows.
func BenchmarkCampaignYear(b *testing.B) { benchExperiment(b, "ext-year") }
