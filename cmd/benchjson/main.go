// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so CI can archive each commit's benchmark
// numbers as a BENCH_<sha>.json artifact and the perf trajectory of the
// simulator stays diffable across the repo's history.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem -run='^$' . | benchjson -sha=$GITHUB_SHA > BENCH_$GITHUB_SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp carry -benchmem's B/op and allocs/op
	// columns, so allocation regressions (and arena wins) are visible in
	// the archived perf trajectory alongside wall time.
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the archived document.
type Report struct {
	SHA        string      `json:"sha,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	sha := flag.String("sha", "", "commit sha recorded in the report")
	flag.Parse()

	rep := Report{SHA: *sha}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line of the standard bench output format:
//
//	BenchmarkName-8  	  123	  456789 ns/op	  12.3 extra/metric
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	var b Benchmark
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The remainder is value-unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if unit == "B/op" {
			b.BytesPerOp = v
			continue
		}
		if unit == "allocs/op" {
			b.AllocsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, true
}
