// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so CI can archive each commit's benchmark
// numbers as a BENCH_<sha>.json artifact and the perf trajectory of the
// simulator stays diffable across the repo's history.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem -run='^$' . | benchjson -sha=$GITHUB_SHA > BENCH_$GITHUB_SHA.json
//
// Compare mode diffs two archived reports and flags allocation
// regressions, so the CI bench job can warn when a commit quietly gives
// back the B/op and allocs/op wins the perf trajectory records:
//
//	benchjson -compare BENCH_old.json BENCH_new.json
//
// Every benchmark present in both reports is printed with its ns/op,
// B/op and allocs/op deltas; a B/op or allocs/op increase beyond
// -threshold (default 20%) is flagged as a REGRESSION line and the exit
// status is 3. ns/op is normally reported but not flagged — wall time on
// shared CI runners is too noisy to gate on — except for the kernel,
// transport and solver benchmarks (BenchmarkKernel*, BenchmarkTransport*,
// BenchmarkFig6FullScale*, BenchmarkSolverDelta*,
// BenchmarkSolutionCache*, BenchmarkLLMTrainStep, BenchmarkCampaign*):
// those are the event-calendar and incremental-solver hot paths whose
// throughput the perf trajectory exists to protect, and their inner
// loops are long enough that a >threshold ns/op increase is signal, not
// noise. The kernel and transport families additionally gate their
// events/sec column: a >threshold throughput decrease there fails the
// comparison even when ns/op moved for benign reasons (iteration-shape
// changes).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp carry -benchmem's B/op and allocs/op
	// columns, so allocation regressions (and arena wins) are visible in
	// the archived perf trajectory alongside wall time.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// EventsPerSec promotes the kernel benchmarks' "events/sec"
	// ReportMetric to a first-class column: it is the throughput number
	// the sharded-kernel speedup targets are stated in, and scripts
	// shouldn't have to dig through Metrics for it. The raw entry stays
	// in Metrics too, so older tooling keeps working.
	EventsPerSec float64            `json:"events_per_sec,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// eventsPerSec reads the throughput column, falling back to the Metrics
// map for reports archived before the field existed.
func (b Benchmark) eventsPerSec() float64 {
	if b.EventsPerSec != 0 {
		return b.EventsPerSec
	}
	return b.Metrics["events/sec"]
}

// Report is the archived document.
type Report struct {
	SHA        string      `json:"sha,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	sha := flag.String("sha", "", "commit sha recorded in the report")
	compare := flag.Bool("compare", false, "compare two reports: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.20, "relative B/op or allocs/op increase flagged as a regression in compare mode")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold))
	}

	rep := Report{SHA: *sha}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare diffs two archived reports. Benchmarks are matched by name
// (sub-benchmarks keep their full slash-separated path); ones present in
// only one report are listed but not flagged, since renames and new
// benchmarks are routine. Returns 0 when clean, 2 on usage or read
// errors, 3 when at least one regression exceeds the threshold.
func runCompare(paths []string, threshold float64) int {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files: old.json new.json")
		return 2
	}
	old, err := loadReport(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	cur, err := loadReport(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	prev := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		prev[b.Name] = b
	}
	fmt.Printf("comparing %s (%s) -> %s (%s), regression threshold +%.0f%%\n",
		paths[0], orDash(old.SHA), paths[1], orDash(cur.SHA), threshold*100)
	var compared, regressions int
	for _, nb := range cur.Benchmarks {
		ob, ok := prev[nb.Name]
		if !ok {
			fmt.Printf("  %-40s new benchmark\n", nb.Name)
			continue
		}
		delete(prev, nb.Name)
		compared++
		fmt.Printf("  %-40s ns/op %s   B/op %s   allocs/op %s\n", nb.Name,
			delta(ob.NsPerOp, nb.NsPerOp),
			delta(ob.BytesPerOp, nb.BytesPerOp),
			delta(ob.AllocsPerOp, nb.AllocsPerOp))
		if oe, ne := ob.eventsPerSec(), nb.eventsPerSec(); oe != 0 || ne != 0 {
			fmt.Printf("  %-40s events/sec %s\n", "", delta(oe, ne))
			// Gated for the event-engine families only: a >threshold
			// throughput DROP on the kernel/transport benchmarks is the
			// regression the perf trajectory exists to catch. Elsewhere it
			// stays report-only — throughput on shared runners moves with
			// the machine.
			if epsGated(nb.Name) && oe > 0 && ne < oe*(1-threshold) {
				fmt.Printf("REGRESSION: %s events/sec %.0f -> %.0f (%.1f%%) exceeds -%.0f%%\n",
					nb.Name, oe, ne, (ne/oe-1)*100, threshold*100)
				regressions++
			}
		}
		check := func(metric string, o, n float64) {
			if o > 0 && n > o*(1+threshold) {
				fmt.Printf("REGRESSION: %s %s %.0f -> %.0f (+%.1f%%) exceeds +%.0f%%\n",
					nb.Name, metric, o, n, (n/o-1)*100, threshold*100)
				regressions++
			}
		}
		check("B/op", ob.BytesPerOp, nb.BytesPerOp)
		check("allocs/op", ob.AllocsPerOp, nb.AllocsPerOp)
		if nsGated(nb.Name) {
			check("ns/op", ob.NsPerOp, nb.NsPerOp)
		}
	}
	for _, b := range old.Benchmarks {
		if _, unmatched := prev[b.Name]; unmatched {
			fmt.Printf("  %-40s removed (was in %s)\n", b.Name, paths[0])
		}
	}
	fmt.Printf("%d benchmarks compared, %d regressions\n", compared, regressions)
	if regressions > 0 {
		return 3
	}
	return 0
}

// nsGated reports whether a benchmark's ns/op is gated in compare mode.
// Two families are stable enough to gate on wall time: the
// event-calendar hot path (kernel and transport benchmarks), and the
// incremental max-min solver (the full-scale census plus the
// delta-solve and solution-cache micro-benchmarks) — long, single-path
// inner loops where a >threshold ns/op increase is a real solver
// regression, not runner noise. Names are matched after the -procs
// suffix has been stripped by parseLine; sub-benchmarks keep their
// slash-separated path, so the prefixes cover BenchmarkSolverDelta/clean
// and friends. The phase-structured job layer adds more: the LLM
// train-step Bind pricing micro-benchmark and the campaign replays
// (BenchmarkCampaignWeek and the year-at-scale BenchmarkCampaignYear),
// all deterministic single-path loops over the job/env hot path.
func nsGated(name string) bool {
	return strings.HasPrefix(name, "BenchmarkKernel") ||
		strings.HasPrefix(name, "BenchmarkTransport") ||
		strings.HasPrefix(name, "BenchmarkFig6FullScale") ||
		strings.HasPrefix(name, "BenchmarkSolverDelta") ||
		strings.HasPrefix(name, "BenchmarkSolutionCache") ||
		strings.HasPrefix(name, "BenchmarkLLMTrainStep") ||
		strings.HasPrefix(name, "BenchmarkCampaign")
}

// epsGated reports whether a benchmark's events/sec throughput is gated
// (on decrease) in compare mode: the kernel and transport families run
// long enough inner loops that a >threshold throughput drop is an
// event-engine regression, not runner noise. ns/op gating catches the
// same families from the per-iteration side; events/sec additionally
// covers sub-benchmarks whose iteration shape changed.
func epsGated(name string) bool {
	return strings.HasPrefix(name, "BenchmarkKernel") ||
		strings.HasPrefix(name, "BenchmarkTransport")
}

func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// delta renders "old -> new (+x%)"; a zero old value has no meaningful
// ratio, so just the raw values are shown.
func delta(o, n float64) string {
	if o == 0 {
		return fmt.Sprintf("%.0f -> %.0f", o, n)
	}
	return fmt.Sprintf("%.0f -> %.0f (%+.1f%%)", o, n, (n/o-1)*100)
}

// parseLine parses one result line of the standard bench output format:
//
//	BenchmarkName-8  	  123	  456789 ns/op	  12.3 extra/metric
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	var b Benchmark
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The remainder is value-unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if unit == "B/op" {
			b.BytesPerOp = v
			continue
		}
		if unit == "allocs/op" {
			b.AllocsPerOp = v
			continue
		}
		if unit == "events/sec" {
			b.EventsPerSec = v // and recorded in Metrics below, for old readers
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, true
}
