package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkRunAllParallel-8   \t       1\t8648000000 ns/op\t        12.5 max-deviation-%")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkRunAllParallel" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 1 || b.NsPerOp != 8648000000 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["max-deviation-%"] != 12.5 {
		t.Errorf("metrics = %v", b.Metrics)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{"", "Benchmark", "BenchmarkX notanint ns/op"} {
		if _, ok := parseLine(line); ok {
			t.Errorf("%q should not parse", line)
		}
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkFoo 10 100 ns/op")
	if !ok || b.Name != "BenchmarkFoo" || b.Procs != 0 {
		t.Errorf("got %+v ok=%v", b, ok)
	}
}

func TestParseLineBenchmem(t *testing.T) {
	b, ok := parseLine("BenchmarkMaxMinSolve-8   \t     20\t 943732 ns/op\t   94681 B/op\t     882 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.NsPerOp != 943732 {
		t.Errorf("ns/op = %g", b.NsPerOp)
	}
	if b.BytesPerOp != 94681 {
		t.Errorf("bytes_per_op = %g, want 94681", b.BytesPerOp)
	}
	if b.AllocsPerOp != 882 {
		t.Errorf("allocs_per_op = %g, want 882", b.AllocsPerOp)
	}
	if _, ok := b.Metrics["B/op"]; ok {
		t.Error("B/op should be a first-class field, not a generic metric")
	}
	if _, ok := b.Metrics["allocs/op"]; ok {
		t.Error("allocs/op should be a first-class field, not a generic metric")
	}
}

func TestNsGated(t *testing.T) {
	for name, want := range map[string]bool{
		"BenchmarkKernelSchedule":     true,
		"BenchmarkTransportStorm":     true,
		"BenchmarkTransportStorm/big": true,
		"BenchmarkCampaignWeek":       true,
		"BenchmarkCampaignYear":       true,
		"BenchmarkMaxMinSolve":        false,
		"BenchmarkRunAllParallel":     false,
	} {
		if got := nsGated(name); got != want {
			t.Errorf("nsGated(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestEpsGated(t *testing.T) {
	for name, want := range map[string]bool{
		"BenchmarkKernelSchedule":                 true,
		"BenchmarkTransportStormSharded/shards=8": true,
		"BenchmarkCampaignYear":                   false,
		"BenchmarkResiliencyYearSharded/shards=8": false,
	} {
		if got := epsGated(name); got != want {
			t.Errorf("epsGated(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestCompareGatesEventsPerSecDrop(t *testing.T) {
	dir := t.TempDir()
	oldRep := writeReport(t, dir, "old",
		Benchmark{Name: "BenchmarkTransportStormSharded/shards=8", EventsPerSec: 4000000})
	newRep := writeReport(t, dir, "new",
		Benchmark{Name: "BenchmarkTransportStormSharded/shards=8", EventsPerSec: 3000000})
	if got := runCompare([]string{oldRep, newRep}, 0.20); got != 3 {
		t.Errorf("-25%% events/sec on a transport benchmark: exit %d, want 3", got)
	}
}

func TestCompareEventsPerSecDropWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	oldRep := writeReport(t, dir, "old",
		Benchmark{Name: "BenchmarkKernelSchedule", EventsPerSec: 4000000})
	newRep := writeReport(t, dir, "new",
		Benchmark{Name: "BenchmarkKernelSchedule", EventsPerSec: 3500000})
	if got := runCompare([]string{oldRep, newRep}, 0.20); got != 0 {
		t.Errorf("-12.5%% events/sec under a 20%% threshold: exit %d, want 0", got)
	}
}

// An events/sec INCREASE must never flag, whatever the magnitude.
func TestCompareEventsPerSecGainPasses(t *testing.T) {
	dir := t.TempDir()
	oldRep := writeReport(t, dir, "old",
		Benchmark{Name: "BenchmarkKernelSchedule", EventsPerSec: 1000000})
	newRep := writeReport(t, dir, "new",
		Benchmark{Name: "BenchmarkKernelSchedule", EventsPerSec: 9000000})
	if got := runCompare([]string{oldRep, newRep}, 0.20); got != 0 {
		t.Errorf("9x events/sec gain: exit %d, want 0", got)
	}
}

// writeReport marshals a report to a temp file for compare-mode tests.
func writeReport(t *testing.T, dir, name string, benches ...Benchmark) string {
	t.Helper()
	data, err := json.Marshal(Report{SHA: name, Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGatesKernelNsOp(t *testing.T) {
	dir := t.TempDir()
	oldRep := writeReport(t, dir, "old",
		Benchmark{Name: "BenchmarkKernelSchedule", NsPerOp: 100})
	newRep := writeReport(t, dir, "new",
		Benchmark{Name: "BenchmarkKernelSchedule", NsPerOp: 150})
	if got := runCompare([]string{oldRep, newRep}, 0.20); got != 3 {
		t.Errorf("+50%% ns/op on a kernel benchmark: exit %d, want 3", got)
	}
}

func TestCompareIgnoresNsOpOnUngatedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldRep := writeReport(t, dir, "old",
		Benchmark{Name: "BenchmarkMaxMinSolve", NsPerOp: 100})
	newRep := writeReport(t, dir, "new",
		Benchmark{Name: "BenchmarkMaxMinSolve", NsPerOp: 500})
	if got := runCompare([]string{oldRep, newRep}, 0.20); got != 0 {
		t.Errorf("ns/op noise on an ungated benchmark: exit %d, want 0", got)
	}
}

func TestCompareNsOpWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	oldRep := writeReport(t, dir, "old",
		Benchmark{Name: "BenchmarkTransportStorm", NsPerOp: 100, AllocsPerOp: 10})
	newRep := writeReport(t, dir, "new",
		Benchmark{Name: "BenchmarkTransportStorm", NsPerOp: 115, AllocsPerOp: 10})
	if got := runCompare([]string{oldRep, newRep}, 0.20); got != 0 {
		t.Errorf("+15%% ns/op under a +20%% threshold: exit %d, want 0", got)
	}
}

func TestCompareStillFlagsAllocRegressions(t *testing.T) {
	dir := t.TempDir()
	oldRep := writeReport(t, dir, "old",
		Benchmark{Name: "BenchmarkMaxMinSolve", AllocsPerOp: 100})
	newRep := writeReport(t, dir, "new",
		Benchmark{Name: "BenchmarkMaxMinSolve", AllocsPerOp: 130})
	if got := runCompare([]string{oldRep, newRep}, 0.20); got != 3 {
		t.Errorf("+30%% allocs/op: exit %d, want 3", got)
	}
}

func TestParseLineBenchmemWithExtraMetric(t *testing.T) {
	b, ok := parseLine("BenchmarkFig6MpiGraph-8 1 100 ns/op 12.5 max-deviation-% 64 B/op 2 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.BytesPerOp != 64 || b.AllocsPerOp != 2 {
		t.Errorf("benchmem fields = %g/%g, want 64/2", b.BytesPerOp, b.AllocsPerOp)
	}
	if b.Metrics["max-deviation-%"] != 12.5 {
		t.Errorf("metrics = %v", b.Metrics)
	}
}

func TestParseLinePromotesEventsPerSec(t *testing.T) {
	b, ok := parseLine("BenchmarkTransportStormSharded/shards=8-8  \t      92\t  12706269 ns/op\t   4148339 events/sec\t  290192 B/op\t    1918 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkTransportStormSharded/shards=8" {
		t.Errorf("name = %q (sub-benchmark path must survive, -procs suffix must not)", b.Name)
	}
	if b.EventsPerSec != 4148339 {
		t.Errorf("events_per_sec = %g, want 4148339", b.EventsPerSec)
	}
	if b.Metrics["events/sec"] != 4148339 {
		t.Error("events/sec must stay in Metrics for pre-field report readers")
	}
}

func TestEventsPerSecFallsBackToMetrics(t *testing.T) {
	// A report archived before the field existed has the value only in
	// Metrics; the accessor must still find it.
	old := Benchmark{Name: "BenchmarkTransportStorm", Metrics: map[string]float64{"events/sec": 123}}
	if got := old.eventsPerSec(); got != 123 {
		t.Errorf("eventsPerSec() = %g, want 123 via Metrics fallback", got)
	}
}

func TestCompareReportsEventsPerSecWithoutGating(t *testing.T) {
	// Halved throughput is reported but must not fail the comparison on
	// its own — that's what the ns/op gate is for. Sub-benchmarks gated
	// by name prefix still apply, so use an ungated name here.
	dir := t.TempDir()
	oldRep := writeReport(t, dir, "old",
		Benchmark{Name: "BenchmarkResiliencyYearSharded/shards=8", EventsPerSec: 4000000})
	newRep := writeReport(t, dir, "new",
		Benchmark{Name: "BenchmarkResiliencyYearSharded/shards=8", EventsPerSec: 2000000})
	if got := runCompare([]string{oldRep, newRep}, 0.20); got != 0 {
		t.Errorf("events/sec drop alone: exit %d, want 0 (reported, not gated)", got)
	}
}
