package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkRunAllParallel-8   \t       1\t8648000000 ns/op\t        12.5 max-deviation-%")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkRunAllParallel" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 1 || b.NsPerOp != 8648000000 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["max-deviation-%"] != 12.5 {
		t.Errorf("metrics = %v", b.Metrics)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{"", "Benchmark", "BenchmarkX notanint ns/op"} {
		if _, ok := parseLine(line); ok {
			t.Errorf("%q should not parse", line)
		}
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkFoo 10 100 ns/op")
	if !ok || b.Name != "BenchmarkFoo" || b.Procs != 0 {
		t.Errorf("got %+v ok=%v", b, ok)
	}
}

func TestParseLineBenchmem(t *testing.T) {
	b, ok := parseLine("BenchmarkMaxMinSolve-8   \t     20\t 943732 ns/op\t   94681 B/op\t     882 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.NsPerOp != 943732 {
		t.Errorf("ns/op = %g", b.NsPerOp)
	}
	if b.BytesPerOp != 94681 {
		t.Errorf("bytes_per_op = %g, want 94681", b.BytesPerOp)
	}
	if b.AllocsPerOp != 882 {
		t.Errorf("allocs_per_op = %g, want 882", b.AllocsPerOp)
	}
	if _, ok := b.Metrics["B/op"]; ok {
		t.Error("B/op should be a first-class field, not a generic metric")
	}
	if _, ok := b.Metrics["allocs/op"]; ok {
		t.Error("allocs/op should be a first-class field, not a generic metric")
	}
}

func TestParseLineBenchmemWithExtraMetric(t *testing.T) {
	b, ok := parseLine("BenchmarkFig6MpiGraph-8 1 100 ns/op 12.5 max-deviation-% 64 B/op 2 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.BytesPerOp != 64 || b.AllocsPerOp != 2 {
		t.Errorf("benchmem fields = %g/%g, want 64/2", b.BytesPerOp, b.AllocsPerOp)
	}
	if b.Metrics["max-deviation-%"] != 12.5 {
		t.Errorf("metrics = %v", b.Metrics)
	}
}
