package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkRunAllParallel-8   \t       1\t8648000000 ns/op\t        12.5 max-deviation-%")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkRunAllParallel" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 1 || b.NsPerOp != 8648000000 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["max-deviation-%"] != 12.5 {
		t.Errorf("metrics = %v", b.Metrics)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{"", "Benchmark", "BenchmarkX notanint ns/op"} {
		if _, ok := parseLine(line); ok {
			t.Errorf("%q should not parse", line)
		}
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkFoo 10 100 ns/op")
	if !ok || b.Name != "BenchmarkFoo" || b.Procs != 0 {
		t.Errorf("got %+v ok=%v", b, ok)
	}
}
