// Command frontier-serve runs the simulator as shared infrastructure: a
// long-running HTTP/JSON campaign service over the experiment registry.
// Submit (machine | inline spec, seed, experiment) jobs, stream their
// progress, or fan a sweep of machine.Spec what-if variants across the
// worker pool. Every result is memoized in a content-addressed cache —
// keyed by SHA-256 of (canonical spec JSON, seed, experiment id, code
// version) — with request coalescing, so N identical submissions cost
// one simulation and repeat askers get byte-identical bodies marked
// "X-Cache: hit".
//
// Usage:
//
//	frontier-serve -addr :8080
//	frontier-serve -addr :8080 -jobs 4 -cache-bytes 268435456 -cache-dir /var/cache/frontier
//
//	curl -s localhost:8080/v1/experiments
//	curl -s -d '{"experiment":"fig6","machine":"frontier","seed":42,"quick":true}' localhost:8080/v1/run
//	curl -s -d '{"experiment":"fig6","quick":true,"sweep":"linkRate: 1.25e10..2.5e10 step 6.25e9"}' localhost:8080/v1/sweep
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"frontiersim/internal/campaign"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "max simulations running concurrently")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "in-memory result-cache budget in bytes (0 = unbounded)")
	cacheDir := flag.String("cache-dir", "", "persist results to this directory (survives restarts; empty = memory only)")
	maxSweep := flag.Int("max-sweep", 256, "max variants in one sweep request")
	shards := flag.Int("shards", 0, "kernel worker shards per simulation (0 or 1 = one worker; results are identical at any value)")
	solutionBytes := flag.Int64("solution-cache-bytes", 0, "solver solution-cache budget in bytes shared across simulations (0 = 256 MiB default)")
	pricingEntries := flag.Int("pricing-cache-entries", 0, "per-simulation placement-signature pricing cache for campaign experiments: 0 = unbounded (default), N > 0 = LRU entry cap, -1 = disabled; campaign results are identical at any setting")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "frontier-serve: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		return 2
	}

	srv, err := campaign.New(campaign.Config{
		Jobs:               *jobs,
		CacheBytes:         *cacheBytes,
		CacheDir:           *cacheDir,
		MaxSweepVariants:   *maxSweep,
		Shards:             *shards,
		SolutionCacheBytes: *solutionBytes,
		PricingEntries:     *pricingEntries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "frontier-serve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frontier-serve:", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "frontier-serve: listening on http://%s (jobs=%d, cache=%dB, dir=%q)\n",
		ln.Addr(), *jobs, *cacheBytes, *cacheDir)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "frontier-serve:", err)
			return 1
		}
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "frontier-serve: shutdown:", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "frontier-serve: drained, bye")
	}
	return 0
}
