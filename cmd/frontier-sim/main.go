// Command frontier-sim runs the paper-reproduction experiments: every
// table and figure in the evaluation section of "Frontier: Exploring
// Exascale" (SC '23) has an experiment id, and each run prints a
// paper-vs-measured table.
//
// Usage:
//
//	frontier-sim list                 # show all experiment ids
//	frontier-sim run <id> [...]       # run one or more experiments
//	frontier-sim run all              # run everything, in paper order
//	frontier-sim -markdown run all    # emit markdown (EXPERIMENTS.md body)
//	frontier-sim -quick run all       # reduced sampling for smoke tests
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"frontiersim/internal/experiments"
)

func main() {
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	quick := flag.Bool("quick", false, "reduced sampling (smoke test)")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "verify":
		opts := experiments.Options{Quick: *quick, Seed: *seed}
		results := experiments.Verify(opts)
		for _, r := range results {
			fmt.Println(r)
		}
		if !experiments.AllPass(results) {
			fmt.Fprintln(os.Stderr, "frontier-sim: reproduction check FAILED")
			os.Exit(1)
		}
		fmt.Println("all experiments within their reproduction envelopes")
	case "list":
		for _, r := range experiments.Registry() {
			fmt.Printf("%-20s %s\n", r.ID, r.Description)
		}
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "frontier-sim: run needs experiment ids or 'all'")
			os.Exit(2)
		}
		opts := experiments.Options{Quick: *quick, Seed: *seed}
		var runners []experiments.Runner
		if args[1] == "all" {
			runners = experiments.Registry()
		} else {
			for _, id := range args[1:] {
				r, err := experiments.ByID(id)
				if err != nil {
					fmt.Fprintln(os.Stderr, "frontier-sim:", err)
					os.Exit(1)
				}
				runners = append(runners, r)
			}
		}
		for _, r := range runners {
			start := time.Now()
			table, err := r.Run(opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "frontier-sim: %s: %v\n", r.ID, err)
				os.Exit(1)
			}
			if *markdown {
				table.Markdown(os.Stdout)
			} else {
				table.Render(os.Stdout)
			}
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", r.ID, time.Since(start).Round(time.Millisecond))
		}
	default:
		fmt.Fprintf(os.Stderr, "frontier-sim: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `frontier-sim reproduces the evaluation of the Frontier SC'23 paper.

usage:
  frontier-sim [flags] list
  frontier-sim [flags] run <id>... | all
  frontier-sim [flags] verify

flags:
`)
	flag.PrintDefaults()
}
