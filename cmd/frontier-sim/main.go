// Command frontier-sim runs the paper-reproduction experiments: every
// table and figure in the evaluation section of "Frontier: Exploring
// Exascale" (SC '23) has an experiment id, and each run prints a
// paper-vs-measured table.
//
// Experiments execute on a parallel worker pool (-jobs). Each experiment
// draws its randomness from a seed derived from (-seed, experiment id),
// so table output is byte-identical at any -jobs setting.
//
// Usage:
//
//	frontier-sim list                 # show all experiment ids
//	frontier-sim machines             # list built-in machine specs
//	frontier-sim run <id> [...]       # run one or more experiments
//	frontier-sim run all              # run everything, in paper order
//	frontier-sim -markdown run all    # emit markdown (EXPERIMENTS.md body)
//	frontier-sim -quick run all       # reduced sampling for smoke tests
//	frontier-sim -jobs=1 run all      # serial (same output as -jobs=8)
//	frontier-sim -shards=8 run all    # 8 kernel shards (same output as -shards=1)
//	frontier-sim -machine spec.json run fig6   # what-if machine under test
//	frontier-sim -dump-spec frontier  # emit a built-in spec as JSON
//	frontier-sim verify               # check reproduction envelopes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"frontiersim/internal/experiments"
	"frontiersim/internal/harness"
	"frontiersim/internal/machine"
	"frontiersim/internal/network"
	"frontiersim/internal/profiling"
)

// main delegates to run so that deferred cleanup (profile flushing,
// signal-handler teardown) runs on every exit path; os.Exit would skip it.
func main() { os.Exit(run()) }

func run() int {
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	quick := flag.Bool("quick", false, "reduced sampling (smoke test)")
	seed := flag.Int64("seed", 42, "root random seed (per-experiment seeds are derived from it)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "max experiments run concurrently (1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = none)")
	keepGoing := flag.Bool("keepgoing", false, "run every experiment even after a failure")
	shards := flag.Int("shards", 0, "worker shards for sharded-kernel experiments (0 or 1 = one worker; output is identical at any value)")
	pricingCache := flag.Int("pricing-cache", 0, "placement-signature pricing cache for the campaign experiments: 0 = unbounded (default), N > 0 = LRU entry cap, -1 = disabled; hits are bit-identical, so campaign results never change (only the reported hit-rate row)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a contended-mutex profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit (shard barriers show here)")
	machineArg := flag.String("machine", "", "machine under test: a built-in name or a JSON spec file (default: frontier)")
	dumpSpec := flag.String("dump-spec", "", "print a machine spec as JSON and exit (a built-in name or a spec file)")
	flag.Usage = usage
	flag.Parse()

	if *dumpSpec != "" {
		spec, err := machine.Resolve(*dumpSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frontier-sim:", err)
			return 1
		}
		b, err := machine.Dump(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frontier-sim:", err)
			return 1
		}
		os.Stdout.Write(b)
		return 0
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}

	stopProf, err := profiling.StartConfig(profiling.Config{
		CPU: *cpuprofile, Mem: *memprofile, Mutex: *mutexprofile, Block: *blockprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "frontier-sim:", err)
		return 1
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// One solver solution cache for the whole invocation: ablation arms
	// sharing a traffic matrix (CC on/off) reuse solved allocations, and
	// reuse is bit-exact, so output stays byte-identical with or without.
	opts := experiments.Options{Quick: *quick, Seed: *seed, Shards: *shards,
		Solutions: network.NewSolutionCache(0), PricingEntries: *pricingCache}
	if *machineArg != "" {
		spec, err := machine.Resolve(*machineArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frontier-sim:", err)
			return 1
		}
		opts.Machine = &spec
	}
	cfg := experiments.RunConfig{Jobs: *jobs, Timeout: *timeout, FailFast: !*keepGoing}

	switch args[0] {
	case "verify":
		// Verify always collects every check so the report is complete.
		cfg.FailFast = false
		start := time.Now()
		results := experiments.VerifyContext(ctx, opts, cfg)
		var slowest experiments.VerifyResult
		for _, r := range results {
			fmt.Println(r)
			if r.Duration > slowest.Duration {
				slowest = r
			}
		}
		fmt.Fprintf(os.Stderr, "[verified %d experiments in %v wall, slowest %s at %v]\n",
			len(results), time.Since(start).Round(time.Millisecond),
			slowest.ID, slowest.Duration.Round(time.Millisecond))
		if !experiments.AllPass(results) {
			fmt.Fprintln(os.Stderr, "frontier-sim: reproduction check FAILED")
			return 1
		}
		fmt.Println("all experiments within their reproduction envelopes")
	case "list":
		for _, r := range experiments.Registry() {
			fmt.Printf("%-20s %s\n", r.ID, r.Description)
		}
	case "machines":
		for _, name := range machine.Names() {
			s, err := machine.ByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "frontier-sim:", err)
				return 1
			}
			fmt.Printf("%-10s %d  %6d nodes  %s\n", s.Name, s.Year, s.Nodes(), s.Topology.FabricName)
		}
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "frontier-sim: run needs experiment ids or 'all'")
			return 2
		}
		var runners []experiments.Runner
		if args[1] == "all" {
			runners = experiments.Registry()
		} else {
			for _, id := range args[1:] {
				r, err := experiments.ByID(id)
				if err != nil {
					fmt.Fprintln(os.Stderr, "frontier-sim:", err)
					return 1
				}
				runners = append(runners, r)
			}
		}
		start := time.Now()
		results, err := experiments.RunAll(ctx, runners, opts, cfg, func(r experiments.RunResult) {
			switch {
			case r.Skipped:
				fmt.Fprintf(os.Stderr, "[%s skipped: %v]\n", r.ID, r.Err)
			case r.Err != nil:
				fmt.Fprintf(os.Stderr, "frontier-sim: %s: %v\n", r.ID, r.Err)
			case *markdown:
				r.Table.Markdown(os.Stdout)
				fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", r.ID, r.Duration.Round(time.Millisecond))
			default:
				r.Table.Render(os.Stdout)
				fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", r.ID, r.Duration.Round(time.Millisecond))
			}
		})
		if len(runners) > 1 {
			sum := summarize(results)
			fmt.Fprintf(os.Stderr, "[%d experiments in %v wall (%v serial work, longest %s at %v, jobs=%d)]\n",
				sum.Tasks, time.Since(start).Round(time.Millisecond), sum.Wall.Round(time.Millisecond),
				sum.LongestID, sum.Longest.Round(time.Millisecond), *jobs)
		}
		if err != nil {
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "frontier-sim: unknown command %q\n", args[0])
		usage()
		return 2
	}
	return 0
}

// summarize converts experiment results to the harness metric fold.
func summarize(results []experiments.RunResult) harness.Summary {
	hres := make([]harness.Result[struct{}], len(results))
	for i, r := range results {
		hres[i] = harness.Result[struct{}]{
			ID: r.ID, Index: i, Err: r.Err, Duration: r.Duration, Skipped: r.Skipped,
		}
	}
	return harness.Summarize(hres)
}

func usage() {
	fmt.Fprintf(os.Stderr, `frontier-sim reproduces the evaluation of the Frontier SC'23 paper.

usage:
  frontier-sim [flags] list
  frontier-sim [flags] machines
  frontier-sim [flags] run <id>... | all
  frontier-sim [flags] verify
  frontier-sim -dump-spec <name|file.json>

flags:
`)
	flag.PrintDefaults()
}
