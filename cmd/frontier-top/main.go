// Command frontier-top prints TOP500/Green500/HPCG-style submission
// lines for the simulated machines — the June 2022 debut the paper's
// §5.1 celebrates: Frontier #1 on both lists at once.
//
// Usage:
//
//	frontier-top [-nodes N]
package main

import (
	"flag"
	"fmt"
	"os"

	"frontiersim/internal/core"
	"frontiersim/internal/power"
	"frontiersim/internal/units"
)

func main() {
	nodes := flag.Int("nodes", 0, "Frontier nodes in the run (0 = all)")
	flag.Parse()

	frontier, err := core.NewFrontier(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frontier-top:", err)
		os.Exit(1)
	}
	summit, err := core.NewSummit(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frontier-top:", err)
		os.Exit(1)
	}

	n := *nodes
	if n == 0 || n > frontier.HPLSpec.Nodes {
		n = frontier.HPLSpec.Nodes
	}

	fmt.Printf("%-10s %8s %12s %12s %12s %10s %10s\n",
		"system", "nodes", "Rpeak", "Rmax (HPL)", "HPCG", "power", "GF/W")
	row := func(name string, nodes int, rpeak, rmax, hpcg units.Flops, w units.Watts) {
		fmt.Printf("%-10s %8d %12s %12s %12s %10s %10.1f\n",
			name, nodes, rpeak, rmax, hpcg, w, power.Efficiency(rmax, w)/1e9)
	}
	fw := frontier.Power.SystemHPL(n)
	row("frontier", n, frontier.HPLSpec.RPeak(), frontier.HPLSpec.HPLRmax(n), frontier.HPLSpec.HPCG(n), fw)
	// Summit at ~10 MW (its TOP500 submission).
	row("summit", summit.HPLSpec.Nodes, summit.HPLSpec.RPeak(),
		summit.HPLSpec.HPLRmax(summit.HPLSpec.Nodes), summit.HPLSpec.HPCG(summit.HPLSpec.Nodes),
		10.1*units.Megawatt)

	fmt.Printf("\nHPL run plan on %d nodes: N = %.1fM, ~%v at ~%s\n",
		n, float64(frontier.HPLSpec.HPLProblemSize(n, 0.85))/1e6,
		frontier.HPLSpec.HPLRunTime(n, 0.85), fw)
	fmt.Printf("the 2008 exascale report's targets: 50 GF/W, 20 MW/EF — Frontier: %.1f GF/W, %.1f MW/EF\n",
		power.Efficiency(frontier.HPLSpec.HPLRmax(n), fw)/1e9,
		power.MWPerExaflop(frontier.HPLSpec.HPLRmax(n), fw))
}
