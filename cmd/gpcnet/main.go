// Command gpcnet runs the GPCNeT-style congestion benchmark of Table 5
// on the simulated Slingshot fabric: 80% of the nodes run adversarial
// congestors while 20% measure latency, bandwidth and allreduce.
//
// Usage:
//
//	gpcnet [-nodes N] [-ppn P] [-cc=false] [-trials T] [-jobs J]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
//
// With -trials > 1 the repetitions run concurrently on a bounded worker
// pool, one derived rng stream per trial; the first trial's table is
// printed plus per-trial impact factors. Results are byte-identical at
// any -jobs setting for a fixed seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"frontiersim/internal/machine"
	"frontiersim/internal/network"
	"frontiersim/internal/profiling"
	"frontiersim/internal/rng"
)

func main() { os.Exit(run()) }

func run() int {
	nodes := flag.Int("nodes", 9400, "participating nodes")
	ppn := flag.Int("ppn", 8, "processes per node")
	cc := flag.Bool("cc", true, "hardware congestion control enabled")
	seed := flag.Int64("seed", 1, "random seed")
	trials := flag.Int("trials", 1, "independent benchmark repetitions")
	jobs := flag.Int("jobs", 0, "concurrent trial workers (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a contended-mutex profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.StartConfig(profiling.Config{
		CPU: *cpuprofile, Mem: *memprofile, Mutex: *mutexprofile, Block: *blockprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpcnet:", err)
		return 1
	}
	defer stopProf()

	f, err := machine.Frontier().NewFabric()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpcnet:", err)
		return 1
	}
	cfg := network.DefaultGPCNeTConfig()
	cfg.Nodes = *nodes
	cfg.PPN = *ppn
	cfg.CongestionControl = *cc
	var res network.GPCNeTResult
	var all []network.GPCNeTResult
	if *trials > 1 {
		all, err = network.RunGPCNeTTrials(context.Background(), f, cfg, *trials,
			network.ParallelConfig{Jobs: *jobs, Seed: *seed})
		if err == nil {
			res = all[0]
		}
	} else {
		res, err = network.RunGPCNeT(f, cfg, rng.New(*seed))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpcnet:", err)
		return 1
	}
	fmt.Printf("GPCNeT on %d nodes, %d PPN, congestion control %v\n\n", *nodes, *ppn, *cc)
	fmt.Printf("%-32s %10s %10s\n", "test", "isolated", "congested")
	row := func(name, iso, con string) { fmt.Printf("%-32s %10s %10s\n", name, iso, con) }
	us := func(s float64) string { return fmt.Sprintf("%.1fus", s*1e6) }
	mib := func(b float64) string { return fmt.Sprintf("%.0f", b/(1<<20)) }
	i, c := res.Isolated, res.Congested
	row("RR two-sided lat avg", us(float64(i.Latency.Average)), us(float64(c.Latency.Average)))
	row("RR two-sided lat 99%", us(float64(i.Latency.P99)), us(float64(c.Latency.P99)))
	row("RR BW+Sync avg (MiB/s/rank)", mib(float64(i.Bandwidth.Average)), mib(float64(c.Bandwidth.Average)))
	row("RR BW+Sync 99% (MiB/s/rank)", mib(float64(i.Bandwidth.P99)), mib(float64(c.Bandwidth.P99)))
	row("Multiple allreduce avg", us(float64(i.Allreduce.Average)), us(float64(c.Allreduce.Average)))
	row("Multiple allreduce 99%", us(float64(i.Allreduce.P99)), us(float64(c.Allreduce.P99)))
	fmt.Printf("\nimpact factors: bandwidth %.2fx, latency %.2fx, allreduce %.2fx\n",
		res.BandwidthImpact, res.LatencyImpact, res.AllreduceImpact)
	if len(all) > 1 {
		var bw, lat, ar float64
		fmt.Printf("\nper-trial impact factors (%d trials):\n", len(all))
		for i, r := range all {
			fmt.Printf("  trial %d: bandwidth %.2fx, latency %.2fx, allreduce %.2fx\n",
				i, r.BandwidthImpact, r.LatencyImpact, r.AllreduceImpact)
			bw += r.BandwidthImpact
			lat += r.LatencyImpact
			ar += r.AllreduceImpact
		}
		n := float64(len(all))
		fmt.Printf("  mean:    bandwidth %.2fx, latency %.2fx, allreduce %.2fx\n", bw/n, lat/n, ar/n)
	}
	return 0
}
