// Command machinelint enforces the single-source-of-truth rule for
// machine parameters: distinctive machine constants (node counts,
// endpoint totals) may appear only in internal/machine. Subsystem
// packages must derive them from a machine.Spec.
//
// Lines that cite a paper-published figure (expected values in
// verification tables, Table 6 campaign sizes) may carry a
// "//machinelint:allow <reason>" annotation to opt out.
//
// Run with: go run ./cmd/machinelint [dir ...]
// Exits non-zero if any unannotated occurrence is found.
package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// forbidden matches machine-defining integers distinctive enough not to
// collide with ordinary code: per-system node counts and the Frontier
// endpoint/NIC totals. Peak-TF and HBM figures are left out on purpose —
// the same numbers legitimately appear as paper-measured results.
var forbidden = regexp.MustCompile(`\b(9472|4608|18688|49152|4392|9688|9720|4736|18944|37888|75776|303104)\b`)

const allowMarker = "machinelint:allow"

// skipDirs are exempt from the scan: internal/machine is the one place
// the constants belong, and this tool needs its own pattern list.
var skipDirs = map[string]bool{
	filepath.Join("internal", "machine"): true,
	filepath.Join("cmd", "machinelint"):  true,
}

type finding struct {
	file  string
	line  int
	token string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d: hard-coded machine constant %s (derive it from internal/machine, or annotate with //%s <reason>)",
		f.file, f.line, f.token, allowMarker)
}

// scan walks root and reports every unannotated forbidden constant in
// non-test Go source files.
func scan(root string) ([]finding, error) {
	var out []finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		if d.IsDir() {
			if d.Name() == "testdata" || d.Name() == ".git" || skipDirs[rel] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fnd, serr := scanFile(path)
		if serr != nil {
			return serr
		}
		out = append(out, fnd...)
		return nil
	})
	return out, err
}

func scanFile(path string) ([]finding, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var out []finding
	sc := bufio.NewScanner(f)
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if strings.Contains(line, allowMarker) {
			continue
		}
		for _, tok := range forbidden.FindAllString(line, -1) {
			out = append(out, finding{file: path, line: n, token: tok})
		}
	}
	return out, sc.Err()
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := false
	for _, root := range roots {
		findings, err := scan(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "machinelint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			bad = true
			fmt.Println(f)
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Println("machinelint: no stray machine constants")
}
