package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScanFlagsStrayConstants(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "internal", "foo", "foo.go"),
		"package foo\n\nconst nodes = 9472 // bad\n")
	findings, err := scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly one", findings)
	}
	if findings[0].token != "9472" || findings[0].line != 3 {
		t.Errorf("finding = %+v, want token 9472 at line 3", findings[0])
	}
}

func TestScanSkipsExemptLocations(t *testing.T) {
	dir := t.TempDir()
	// The one legitimate home for machine constants.
	write(t, filepath.Join(dir, "internal", "machine", "specs.go"),
		"package machine\n\nconst frontierNodes = 9472\n")
	// Tests may pin literal fixtures.
	write(t, filepath.Join(dir, "internal", "foo", "foo_test.go"),
		"package foo\n\nconst nodes = 9472\n")
	// Annotated paper citations are allowed.
	write(t, filepath.Join(dir, "internal", "bar", "bar.go"),
		"package bar\n\nconst summit = 4608 //machinelint:allow Table 6 baseline\n")
	// Non-Go files are ignored.
	write(t, filepath.Join(dir, "notes.md"), "Frontier has 9472 nodes\n")
	findings, err := scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("findings = %v, want none", findings)
	}
}

func TestScanRepo(t *testing.T) {
	// The live repo must be clean — this is the same invocation CI runs.
	findings, err := scan("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
