// Command mpigraph runs the mpiGraph-style pairwise bandwidth census of
// Figure 6 on a simulated fabric and prints the receive-bandwidth
// histogram.
//
// Usage:
//
//	mpigraph -fabric frontier|summit [-nodes N] [-shifts S] [-bins B] [-jobs J]
//	         [-cpuprofile cpu.out] [-memprofile mem.out]
//
// Shifts are evaluated concurrently on a bounded worker pool with
// epoch-cached adaptive routes; the census is byte-identical at any
// -jobs setting for a fixed seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"frontiersim/internal/fabric"
	"frontiersim/internal/machine"
	"frontiersim/internal/network"
	"frontiersim/internal/profiling"
)

func main() { os.Exit(run()) }

func run() int {
	fab := flag.String("fabric", "frontier", "fabric: frontier (dragonfly) or summit (fat tree)")
	nodes := flag.Int("nodes", 0, "participating nodes (0 = all)")
	shifts := flag.Int("shifts", 8, "shift permutations to sample")
	bins := flag.Int("bins", 20, "histogram bins")
	seed := flag.Int64("seed", 1, "random seed")
	jobs := flag.Int("jobs", 0, "concurrent shift workers (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a contended-mutex profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	flag.Parse()

	stop, err := profiling.StartConfig(profiling.Config{
		CPU: *cpuprofile, Mem: *memprofile, Mutex: *mutexprofile, Block: *blockprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpigraph:", err)
		return 1
	}
	defer stop()

	var f *fabric.Fabric
	cfg := network.DefaultMpiGraphConfig()
	switch *fab {
	case "frontier":
		f, err = machine.Frontier().NewFabric()
	case "summit":
		f, err = machine.Summit().NewFabric()
		cfg.RanksPerNode = 1
	default:
		fmt.Fprintf(os.Stderr, "mpigraph: unknown fabric %q\n", *fab)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpigraph:", err)
		return 1
	}
	cfg.Nodes = *nodes
	cfg.Shifts = *shifts
	res, err := network.RunMpiGraphParallel(context.Background(), f, cfg,
		network.ParallelConfig{Jobs: *jobs, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpigraph:", err)
		return 1
	}
	fmt.Printf("%s: %d samples\n", f, len(res.Samples))
	fmt.Printf("min %.2f GB/s  median %.2f  mean %.2f  max %.2f  spread %.1fx\n\n",
		res.Min/1e9, res.Median/1e9, res.Mean/1e9, res.Max/1e9, res.Spread())
	edges, counts := res.Histogram(*bins)
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i := range edges {
		bar := strings.Repeat("#", counts[i]*60/maxCount)
		fmt.Printf("<= %6.2f GB/s %8d %s\n", edges[i]/1e9, counts[i], bar)
	}
	return 0
}
