// Command orion-bench exercises the storage models of §4.3: node-local
// fio runs, Orion streaming by file size, the PFL layout split, and the
// full-machine checkpoint ingest estimate.
//
// Usage:
//
//	orion-bench [-nodes N] [-burst BYTES]
package main

import (
	"flag"
	"fmt"
	"log"

	"frontiersim/internal/machine"
	"frontiersim/internal/storage"
	"frontiersim/internal/units"
)

func main() {
	m := machine.Frontier()
	nodes := flag.Int("nodes", m.Nodes(), "job node count for aggregates")
	burstTiB := flag.Float64("burst", 700, "checkpoint burst size in TiB")
	flag.Parse()

	nl, err := m.NodeLocal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== node-local NVMe (per node, fio) ==")
	for _, p := range []storage.FioPattern{storage.FioSeqRead, storage.FioSeqWrite, storage.FioRandRead4k} {
		r := nl.RunFio(p, 100*units.GB)
		if r.IOPS > 0 {
			fmt.Printf("%-14s %8.2fM IOPS\n", p, r.IOPS/1e6)
		} else {
			fmt.Printf("%-14s %8.1f GB/s\n", p, float64(r.Bandwidth)/1e9)
		}
	}
	agg := nl.Aggregate(*nodes)
	fmt.Printf("\n== node-local aggregate over %d nodes ==\n", *nodes)
	fmt.Printf("capacity %s  read %s  write %s  IOPS %.1fB\n\n",
		agg.Capacity, agg.Read, agg.Write, agg.IOPS/1e9)

	o, err := m.Orion()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Orion Lustre ==")
	fmt.Println(o)
	fmt.Printf("%-22s %12s %12s\n", "file size", "read", "write")
	for _, size := range []units.Bytes{128 * units.KB, units.MB, 8 * units.MB, 128 * units.MB, 10 * units.GB} {
		r := o.StreamBandwidth(size, false)
		w := o.StreamBandwidth(size, true)
		fmt.Printf("%-22v %12s %12s\n", size, r, w)
	}
	burst := units.Bytes(*burstTiB) * units.TiB
	fmt.Printf("\ncheckpoint burst %v: ingest in %v\n", burst, o.IngestTime(burst))
	dom, perf, capT := o.SplitFile(100 * units.MB)
	fmt.Printf("PFL split of 100 MB file: DoM %v, flash %v, disk %v\n", dom, perf, capT)
}
