// Cosmology: an ExaSky/HACC-style campaign across five generations of
// DOE machines, plus a checkpoint plan for a long Frontier run sized by
// the machine's measured MTTI and Orion's burst bandwidth.
//
// Run with: go run ./examples/cosmology
package main

import (
	"fmt"
	"log"

	"frontiersim/internal/apps"
	"frontiersim/internal/machine"
	"frontiersim/internal/resilience"
	"frontiersim/internal/units"
)

func main() {
	hacc := apps.NewExaSky()

	fmt.Println("HACC force-kernel throughput across machine generations:")
	fmt.Printf("%-10s %6s %10s %16s %10s\n", "machine", "year", "nodes", "FOM", "vs Titan")
	var titanFOM float64
	var platforms []*apps.Platform
	for _, name := range []string{"titan", "mira", "theta", "summit", "frontier"} {
		p, err := machine.PlatformByName(name)
		if err != nil {
			log.Fatal(err)
		}
		platforms = append(platforms, p)
	}
	for _, p := range platforms {
		r, err := hacc.Run(p, p.Nodes)
		if err != nil {
			log.Fatal(err)
		}
		if p.Name == "titan" {
			titanFOM = r.FOM
		}
		fmt.Printf("%-10s %6d %10d %16.4g %9.1fx\n", p.Name, p.Year, r.Nodes, r.FOM, r.FOM/titanFOM)
	}

	s, _, _, err := apps.Speedup(hacc, machine.PlatformByName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKPP: %.0fx over Theta (paper: 234x, target 50x)\n", s)

	// Checkpoint plan for a 24 h full-machine run: HACC holds ~15% of
	// HBM in mutable state; Orion absorbs it at the capacity tier rate.
	fmt.Println("\ncheckpoint plan for a 24 h full-machine run:")
	state := 0.15 * 4.6 * float64(units.PiB)
	frontier := machine.Frontier()
	orion, err := frontier.Orion()
	if err != nil {
		log.Fatal(err)
	}
	writeTime := orion.IngestTime(units.Bytes(state))
	rel, err := frontier.ResilienceModel()
	if err != nil {
		log.Fatal(err)
	}
	mtti := rel.SystemMTTI()
	tau := resilience.OptimalCheckpointInterval(writeTime, mtti)
	eff := resilience.CheckpointEfficiency(tau, writeTime, 10*units.Minute, mtti)
	fmt.Printf("  state per checkpoint   %v\n", units.Bytes(state))
	fmt.Printf("  Orion write time       %v\n", writeTime)
	fmt.Printf("  machine MTTI           %v\n", mtti)
	fmt.Printf("  optimal interval       %v (Daly)\n", tau)
	fmt.Printf("  expected useful work   %.1f%%\n", eff*100)
	fmt.Printf("  I/O share of walltime  %.1f%% (paper: most apps <5%%/h)\n",
		100*float64(writeTime)/float64(tau))
}
