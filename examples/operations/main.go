// Operations: simulate a week of running Frontier the way OLCF does —
// a leadership job mix through the Slurm model, component failures from
// the reliability model pulling nodes through checknode and repair, and
// a checkpoint strategy for the hero jobs sized from the measured MTTI
// and the node-local burst buffer.
//
// Run with: go run ./examples/operations
package main

import (
	"fmt"
	"log"

	"frontiersim/internal/core"
	"frontiersim/internal/machine"
	"frontiersim/internal/resilience"
	"frontiersim/internal/units"
	"frontiersim/internal/workload"
)

func main() {
	sys, err := core.NewFrontier(2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys)
	fmt.Println(sys.HPCM)

	cfg := workload.DefaultConfig()
	fmt.Printf("\nsimulating %v of operations (mean interarrival %v)...\n",
		cfg.Duration, cfg.MeanInterarrival)
	stats, err := workload.Run(sys, cfg, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stats)
	fmt.Printf("  by class: debug %d, midsize %d, capability %d, hero %d\n",
		stats.ByClass["debug"], stats.ByClass["midsize"], stats.ByClass["capability"], stats.ByClass["hero"])
	fmt.Printf("  observed MTTI %v (model analytic: %v)\n", stats.MeasuredMTTI, sys.Reliability.SystemMTTI())
	fmt.Printf("  max queue wait %v\n", stats.MaxWait)

	// Checkpoint strategy for the hero jobs: absorb into the node-local
	// burst buffer, drain to Orion behind the computation.
	fmt.Println("\nhero-job checkpoint strategy:")
	bb, err := machine.Frontier().BurstBuffer(0)
	if err != nil {
		log.Fatal(err)
	}
	state := units.Bytes(0.15 * 4.6 * float64(units.PiB))
	absorb, drain, err := bb.CheckpointWrite(state)
	if err != nil {
		log.Fatal(err)
	}
	mtti := sys.Reliability.SystemMTTI()
	tauDirect := resilience.OptimalCheckpointInterval(sys.Orion.IngestTime(state), mtti)
	tauBB := resilience.OptimalCheckpointInterval(absorb, mtti)
	effDirect := resilience.CheckpointEfficiency(tauDirect, sys.Orion.IngestTime(state), 10*units.Minute, mtti)
	effBB := resilience.CheckpointEfficiency(tauBB, absorb, 10*units.Minute, mtti)
	fmt.Printf("  state %v; NVMe absorb %v (Orion drain %v overlapped)\n", state, absorb, drain)
	fmt.Printf("  direct-to-Orion: checkpoint every %v -> %.1f%% useful work\n", tauDirect, effDirect*100)
	fmt.Printf("  via burst buffer: checkpoint every %v -> %.1f%% useful work\n", tauBB, effBB*100)
	fmt.Printf("  burst buffer recovers %.1f%% of the machine\n", (effBB-effDirect)*100)
}
