// Quickstart: build the simulated Frontier system, inspect its Table-1
// aggregates, run the node-level micro-benchmarks (STREAM, CoralGemm,
// xGMI transfers), and push a job through the Slurm model.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"frontiersim/internal/core"
	"frontiersim/internal/gpu"
	"frontiersim/internal/node"
	"frontiersim/internal/units"
)

func main() {
	sys, err := core.NewFrontier(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys)
	fmt.Println(sys.Node)
	fmt.Println()

	// Table 1 aggregates, derived from the composed models.
	sp := sys.ComputeSpecs()
	fmt.Printf("nodes            %d\n", sp.Nodes)
	fmt.Printf("FP64 vector peak %v (DGEMM-achievable %v)\n", sp.FP64VectorPeak, sp.FP64DGEMM)
	fmt.Printf("DDR4             %v @ %v\n", sp.DDRCapacity, sp.DDRBandwidth)
	fmt.Printf("HBM2e            %v @ %v\n", sp.HBMCapacity, sp.HBMBandwidth)
	fmt.Printf("injection/node   %v, global %v\n\n", sp.InjectionPerNode, sp.GlobalBandwidth)

	// CPU STREAM (Table 3): temporal stores lose to non-temporal ones.
	fmt.Println("CPU STREAM, 7.6 GB arrays (temporal stores):")
	for _, r := range sys.Node.CPU.Stream(7.6*units.GB, true) {
		fmt.Println("  " + r.String())
	}

	// One GCD's dense GEMM rates (Figure 3).
	fmt.Println("\nCoralGemm on one GCD:")
	for _, row := range sys.Node.GCDs[0].Figure3() {
		fmt.Println("  " + row.String())
	}

	// Intra-node transfers (Figure 5).
	fmt.Println("\nGCD0 -> GCD1 (intra-OAM, 4 xGMI links):")
	for _, m := range []node.TransferMethod{node.CUKernel, node.SDMA} {
		bw, err := sys.Node.PeerBandwidth(m, 0, 1, 256*units.MiB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %v\n", m, bw)
	}

	// A GEMM-heavy job through the scheduler.
	fmt.Println("\nsubmitting a 256-node job...")
	job, err := sys.Scheduler.Submit("dgemm-sweep", 256, units.Hour, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  job %d: %d nodes across %d dragonfly groups, VNI %d\n",
		job.ID, len(job.Alloc), job.GroupsSpanned(sys.Fabric), job.VNI)
	gemmTime := sys.Node.GCDs[0].GemmTime(gpu.FP64, 16384)
	fmt.Printf("  one 16384^3 DGEMM per GCD: %v at %v\n",
		gemmTime, sys.Node.GCDs[0].GemmAchieved(gpu.FP64, 16384))
	sys.Kernel.Run()
	fmt.Printf("  job finished: state=%v, wall %v\n", job.State, job.End-job.Start)
}
