// Scheduling: drive the Slurm model with a mixed workload under failure
// injection — small jobs pack into dragonfly groups, the full-system job
// spreads across all of them, checknode keeps sick nodes out, EASY
// backfill keeps utilization up, and the fabric manager sweeps up a
// failed switch mid-run.
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"frontiersim/internal/core"
	"frontiersim/internal/scheduler"
	"frontiersim/internal/units"
)

func main() {
	// A scaled Frontier (12 groups x 16 switches x 8 endpoints = 384
	// nodes) keeps the run instant while preserving the topology.
	sys, err := core.NewScaledFrontier(12, 16, 8, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys)
	sys.FabricManager.Start(sys.Kernel)

	var completions []string
	onDone := func(j *scheduler.Job) {
		completions = append(completions, fmt.Sprintf("%s:%v", j.Name, j.State))
	}

	// Small jobs: should pack into single groups.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("small-%d", i)
		j, err := sys.Scheduler.Submit(name, 16, 2*units.Hour, onDone)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %3d nodes -> %d group(s), VNI %d\n",
			name, j.Nodes, j.GroupsSpanned(sys.Fabric), j.VNI)
	}
	// A full-system job: queued behind the small ones, spreads wide.
	big, err := sys.Scheduler.Submit("hero", 384, 4*units.Hour, onDone)
	if err != nil {
		log.Fatal(err)
	}
	// A backfill candidate that fits in the gap before the hero job.
	filler, err := sys.Scheduler.Submit("filler", 64, 1*units.Hour, onDone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhero job state at submit: %v; filler: %v (EASY backfill)\n", big.State, filler.State)

	// Inject a node failure at t+30min and a switch failure at t+1h.
	sys.Kernel.After(30*units.Minute, func() {
		victim := 100
		fmt.Printf("[t=%v] node %d fails checknode\n", sys.Kernel.Now(), victim)
		sys.Scheduler.MarkUnhealthy(victim)
		sys.Kernel.After(1*units.Hour, func() {
			fmt.Printf("[t=%v] node %d repaired\n", sys.Kernel.Now(), victim)
			sys.Scheduler.MarkHealthy(victim)
		})
	})
	sys.Kernel.After(1*units.Hour, func() {
		sw := 40
		fmt.Printf("[t=%v] switch %d fails; the next sweep reroutes around it\n", sys.Kernel.Now(), sw)
		sys.Fabric.FailSwitch(sw)
	})

	sys.Kernel.RunUntil(12 * units.Hour)

	fmt.Printf("\nafter 12 simulated hours:\n")
	fmt.Printf("  jobs started   %d\n", sys.Scheduler.Started)
	fmt.Printf("  jobs finished  %d (failed: %d)\n", sys.Scheduler.Finished, sys.Scheduler.FailedJobs)
	fmt.Printf("  completions    %v\n", completions)
	fmt.Printf("  hero job       %v (spanned %d groups)\n", big.State, big.GroupsSpanned(sys.Fabric))
	fmt.Printf("  fabric epochs  %d (routes pushed to %d switches)\n",
		sys.FabricManager.Epoch, sys.FabricManager.RoutesPushed)
	fmt.Printf("  free nodes     %d\n", sys.Scheduler.FreeNodes())
}
