// Turbulence: a GESTS-style pseudo-spectral DNS campaign. The paper's
// motivation: the N=32768^3 runs are the largest DNS grids computed to
// date — no machine but Frontier has the memory. This example sweeps the
// grid across node counts on Frontier, showing where the all-to-all
// transposes dominate, and compares the paper's baseline on Summit.
//
// Run with: go run ./examples/turbulence
package main

import (
	"fmt"
	"log"

	"frontiersim/internal/apps"
	"frontiersim/internal/machine"
)

func main() {
	gests := apps.NewGESTS()
	frontier, err := machine.PlatformByName("frontier")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GESTS pseudo-spectral DNS on Frontier (N = 32768^3):")
	fmt.Printf("%8s %14s %16s %12s\n", "nodes", "step time", "FOM (pts/s)", "a2a/node")
	full := frontier.Nodes
	var base float64
	for _, nodes := range []int{full / 8, full / 4, full / 2, full} {
		r, err := gests.Run(frontier, nodes)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.FOM * float64(full) / float64(nodes) // ideal scaling reference
		}
		fmt.Printf("%8d %14v %16.4g %12s\n", nodes, r.StepTime, r.FOM, r.Notes)
	}

	fmt.Println("\npaper comparison (Table 6 row):")
	s, fr, br, err := apps.Speedup(gests, machine.PlatformByName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Frontier: %s\n  Summit:   %s\n", fr, br)
	fmt.Printf("  speedup %.2fx (paper: 5.9x; KPP target 4x)\n", s)
	fmt.Println("\nwhy Summit can't run the big grid: 32768^3 needs ~140 GB of")
	fmt.Println("HBM per Frontier node; the same decomposition on Summit would")
	fmt.Println("need ~290 GB per node against 96 GB available.")
}
