module frontiersim

go 1.22
