package apps

import (
	"fmt"

	"frontiersim/internal/units"
)

// Result is one application run on one platform.
type Result struct {
	App      string
	Platform string
	Nodes    int
	// FOM is the application's figure of merit in Unit.
	FOM  float64
	Unit string
	// StepTime is the modelled time per iteration where meaningful.
	StepTime units.Seconds
	// ParallelEff is the modelled parallel/weak-scaling efficiency
	// where the application reports one.
	ParallelEff float64
	Notes       string
}

// String renders the result.
func (r Result) String() string {
	return fmt.Sprintf("%-10s on %-8s (%5d nodes): FOM %.4g %s", r.App, r.Platform, r.Nodes, r.FOM, r.Unit)
}

// App is one application proxy.
type App interface {
	// Name is the application's name as the paper uses it.
	Name() string
	// BaselineName is the platform the KPP compares against.
	BaselineName() string
	// TargetSpeedup is the KPP goal (4x for CAAR, 50x for ECP).
	TargetSpeedup() float64
	// PaperSpeedup is the achieved value the paper reports.
	PaperSpeedup() float64
	// Run executes the proxy on a platform using n nodes (0 = the
	// run size the paper used on that platform).
	Run(p *Platform, nodes int) (Result, error)
	// FrontierNodes and BaselineNodes are the paper's run sizes.
	FrontierNodes() int
	BaselineNodes() int
}

// Speedup runs app on Frontier and on its baseline platform at the
// paper's node counts and returns the figure-of-merit ratio. Platforms
// are obtained through resolve (normally the machine-spec layer's
// PlatformByName), keyed by the names the paper uses.
func Speedup(app App, resolve func(string) (*Platform, error)) (float64, Result, Result, error) {
	frontier, err := resolve("frontier")
	if err != nil {
		return 0, Result{}, Result{}, err
	}
	baseline, err := resolve(app.BaselineName())
	if err != nil {
		return 0, Result{}, Result{}, err
	}
	fr, err := app.Run(frontier, app.FrontierNodes())
	if err != nil {
		return 0, Result{}, Result{}, fmt.Errorf("apps: %s on frontier: %w", app.Name(), err)
	}
	br, err := app.Run(baseline, app.BaselineNodes())
	if err != nil {
		return 0, Result{}, Result{}, fmt.Errorf("apps: %s on %s: %w", app.Name(), baseline.Name, err)
	}
	if br.FOM <= 0 {
		return 0, fr, br, fmt.Errorf("apps: %s baseline FOM is zero", app.Name())
	}
	return fr.FOM / br.FOM, fr, br, nil
}

// CAARApps returns the Table 6 applications in paper order.
func CAARApps() []App {
	return []App{NewCoMet(), NewLSMS(), NewPIConGPU(), NewCholla(), NewGESTS(), NewAthenaPK()}
}

// ECPApps returns the Table 7 applications in paper order.
func ECPApps() []App {
	return []App{NewWarpX(), NewExaSky(), NewEXAALT(), NewExaSMR(), NewWDMApp()}
}

// AllApps returns every implemented application proxy.
func AllApps() []App { return append(CAARApps(), ECPApps()...) }
