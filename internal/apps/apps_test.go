package apps

import (
	"math"
	"testing"
)

// Table 6 and Table 7: every application exceeds its KPP target, and the
// modelled speedups track the paper's achieved values.
func TestAllAppsSpeedups(t *testing.T) {
	// Per-app relative tolerance on the paper's achieved speedup. The
	// purely-calibrated apps are tight; the mechanistic ones (GESTS'
	// all-to-all model, AthenaPK's halo-overlap model, PIConGPU's
	// weak-scaling) carry more model freedom.
	tolerance := map[string]float64{
		"CoMet": 0.03, "LSMS": 0.03, "PIConGPU": 0.08, "Cholla": 0.03,
		"GESTS": 0.12, "AthenaPK": 0.12,
		"WarpX": 0.05, "ExaSky": 0.05, "EXAALT": 0.05, "ExaSMR": 0.05, "WDMApp": 0.05,
	}
	for _, app := range AllApps() {
		s, fr, br, err := Speedup(app, ByName)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if s < app.TargetSpeedup() {
			t.Errorf("%s: speedup %.2f misses the %gx KPP target", app.Name(), s, app.TargetSpeedup())
		}
		tol := tolerance[app.Name()]
		if tol == 0 {
			tol = 0.1
		}
		if math.Abs(s-app.PaperSpeedup())/app.PaperSpeedup() > tol {
			t.Errorf("%s: speedup %.2f vs paper %.1f (tolerance %.0f%%)",
				app.Name(), s, app.PaperSpeedup(), tol*100)
		}
		if fr.FOM <= br.FOM {
			t.Errorf("%s: Frontier FOM must exceed baseline", app.Name())
		}
		if fr.String() == "" {
			t.Errorf("%s: empty result formatting", app.Name())
		}
	}
}

func TestAppRosters(t *testing.T) {
	if len(CAARApps()) != 6 {
		t.Errorf("CAAR apps = %d, want 6 (Table 6)", len(CAARApps()))
	}
	if len(ECPApps()) != 5 {
		t.Errorf("ECP apps = %d, want 5 (Table 7)", len(ECPApps()))
	}
	seen := map[string]bool{}
	for _, a := range AllApps() {
		if seen[a.Name()] {
			t.Errorf("duplicate app %s", a.Name())
		}
		seen[a.Name()] = true
		if _, err := ByName(a.BaselineName()); err != nil {
			t.Errorf("%s: unknown baseline %s", a.Name(), a.BaselineName())
		}
	}
}

// CoMet's absolute FOM: 419.9 quadrillion comparisons/s at 6.71 EF mixed.
func TestCoMetAbsolutes(t *testing.T) {
	r, err := NewCoMet().Run(Frontier(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.FOM-419.9e15)/419.9e15 > 0.02 {
		t.Errorf("CoMet FOM = %.4g, want 419.9e15", r.FOM)
	}
}

// PIConGPU's absolute FOMs: 65.7e12 (Frontier), ~14.7e12 (Summit).
func TestPIConGPUAbsolutes(t *testing.T) {
	app := NewPIConGPU()
	fr, _ := app.Run(Frontier(), 0)
	if math.Abs(fr.FOM-65.7e12)/65.7e12 > 0.02 {
		t.Errorf("Frontier FOM = %.4g, want 65.7e12", fr.FOM)
	}
	sm, _ := app.Run(Summit(), 0)
	if math.Abs(sm.FOM-14.7e12)/14.7e12 > 0.05 {
		t.Errorf("Summit FOM = %.4g, want 14.7e12", sm.FOM)
	}
}

// EXAALT: 3.57e9 atom-steps/s on 7,000 nodes.
func TestEXAALTAbsolutes(t *testing.T) {
	r, err := NewEXAALT().Run(Frontier(), 7000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.FOM-3.57e9)/3.57e9 > 0.02 {
		t.Errorf("EXAALT FOM = %.4g, want 3.57e9", r.FOM)
	}
}

// ExaSMR: component speedups 54 (Shift) and 99.6 (NekRS) combine
// harmonically to 70; the non-coupled Shift ceiling is 912M particles/s.
func TestExaSMRComponents(t *testing.T) {
	app := NewExaSMR()
	r, err := app.Run(Frontier(), 6400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.FOM-70)/70 > 0.03 {
		t.Errorf("combined FOM = %.1f, want 70", r.FOM)
	}
	shift := app.ShiftMaxRate(Frontier(), 8192)
	if math.Abs(shift-912e6)/912e6 > 0.02 {
		t.Errorf("Shift max rate = %.4g, want 912e6 particles/s", shift)
	}
}

// GESTS: the Frontier runs are the largest DNS grids ever (35+ trillion
// points), feasible only because of Frontier's memory capacity.
func TestGESTSGridFitsOnlyOnFrontier(t *testing.T) {
	app := NewGESTS()
	fr, err := app.Run(Frontier(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pointsFr := 32768.0 * 32768 * 32768
	if pointsFr < 35e12 {
		t.Error("Frontier grid should exceed 35 trillion points")
	}
	// Memory check: 32768^3 doubles-complex working set per node must
	// fit Frontier's 512 GiB HBM but not Summit's 96 GiB.
	perNodeFrontier := pointsFr * 40 / 9472
	if perNodeFrontier > 512*(1<<30) {
		t.Errorf("working set %v exceeds Frontier node HBM", perNodeFrontier)
	}
	perNodeSummit := pointsFr * 40 / 4608
	if perNodeSummit < 96*(1<<30) {
		t.Error("the same grid should NOT fit Summit's HBM")
	}
	if fr.StepTime <= 0 {
		t.Error("step time must be positive")
	}
	// The Frontier all-to-all rate in the notes should match §4.2.2's
	// ~30-32 GB/s per node.
	if fr.Notes == "" {
		t.Error("missing notes")
	}
}

// AthenaPK: parallel efficiencies 96% (Frontier) vs 48% (Summit), the
// consequence of a NIC per GPU.
func TestAthenaPKEfficiencies(t *testing.T) {
	app := NewAthenaPK()
	fr, err := app.Run(Frontier(), 9200)
	if err != nil {
		t.Fatal(err)
	}
	if fr.ParallelEff < 0.92 || fr.ParallelEff > 0.99 {
		t.Errorf("Frontier efficiency = %.3f, want ~0.96", fr.ParallelEff)
	}
	sm, err := app.Run(Summit(), 4600)
	if err != nil {
		t.Fatal(err)
	}
	if sm.ParallelEff < 0.42 || sm.ParallelEff > 0.54 {
		t.Errorf("Summit efficiency = %.3f, want ~0.48", sm.ParallelEff)
	}
	// Single-node comparison: Frontier node ~1.2x a Summit node with
	// an 8x larger problem (512 vs 96 GiB of HBM).
	frNode, _ := app.Run(Frontier(), 1)
	smNode, _ := app.Run(Summit(), 1)
	ratio := frNode.FOM / smNode.FOM
	if ratio < 1.05 || ratio > 1.4 {
		t.Errorf("single-node ratio = %.2f, want ~1.2", ratio)
	}
}

func TestPlatformRegistry(t *testing.T) {
	for _, name := range []string{"frontier", "summit", "titan", "mira", "theta", "cori"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Nodes <= 0 || p.DevicesPerNode <= 0 || p.MemBW <= 0 {
			t.Errorf("%s: incomplete platform", name)
		}
		if _, err := p.Fabric(); err != nil {
			t.Errorf("%s: fabric build failed: %v", name, err)
		}
	}
	if _, err := ByName("aurora"); err == nil {
		t.Error("unknown platform should error")
	}
}

func TestPlatformComm(t *testing.T) {
	p := Frontier()
	c, err := p.Comm(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 800 {
		t.Errorf("comm size = %d, want 800", c.Size())
	}
	// Spread placement should cover many groups.
	if c.GroupsSpanned() < 50 {
		t.Errorf("spread 100-node job spans %d groups, want many", c.GroupsSpanned())
	}
	if _, err := p.Comm(1e6, 8); err == nil {
		t.Error("oversized job should error")
	}
}

func TestRunOnOversizedNodeCountClamps(t *testing.T) {
	r, err := NewCholla().Run(Summit(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 4608 {
		t.Errorf("nodes = %d, want clamped to 4608", r.Nodes)
	}
}

// The paper reports both GESTS decompositions beating the KPP: 1-D at
// 5.87x and 2-D at 5.06x.
func TestGESTSDecompositions(t *testing.T) {
	oneD, _, _, err := Speedup(NewGESTS(), ByName)
	if err != nil {
		t.Fatal(err)
	}
	twoD, _, _, err := Speedup(NewGESTS2D(), ByName)
	if err != nil {
		t.Fatal(err)
	}
	if twoD >= oneD {
		t.Errorf("2-D (%.2f) should trail 1-D (%.2f)", twoD, oneD)
	}
	if math.Abs(twoD-5.06)/5.06 > 0.12 {
		t.Errorf("2-D speedup = %.2f, want ~5.06", twoD)
	}
	if twoD < 4.0 {
		t.Error("2-D must still beat the KPP")
	}
}
