package apps

import (
	"fmt"
	"math"

	"frontiersim/internal/units"
)

// baseApp carries the common KPP bookkeeping.
type baseApp struct {
	name          string
	baseline      string
	target        float64
	paper         float64
	frontierNodes int
	baselineNodes int
}

func (b baseApp) Name() string           { return b.name }
func (b baseApp) BaselineName() string   { return b.baseline }
func (b baseApp) TargetSpeedup() float64 { return b.target }
func (b baseApp) PaperSpeedup() float64  { return b.paper }
func (b baseApp) FrontierNodes() int     { return b.frontierNodes }
func (b baseApp) BaselineNodes() int     { return b.baselineNodes }

func (b baseApp) nodesOn(p *Platform, requested int) int {
	n := requested
	if n == 0 {
		if p.Name == "frontier" {
			n = b.frontierNodes
		} else {
			n = b.baselineNodes
		}
	}
	if n > p.Nodes {
		n = p.Nodes
	}
	return n
}

// swFactor looks up a platform's software-era factor, defaulting to 1.
func swFactor(m map[string]float64, p *Platform) float64 {
	if v, ok := m[p.Name]; ok {
		return v
	}
	return 1
}

// CoMet computes similarity metrics between vectors with mixed-precision
// matrix multiplies: pure FP16-class GEMM throughput. The CAAR work
// "optimized to achieve high performance on the AMD GPU architecture",
// captured as a higher mixed-precision utilisation on Frontier than the
// pre-CAAR Summit baseline. Frontier: 419.9 quadrillion comparisons/s on
// 9,074 nodes (6.71 EF mixed precision); Summit baseline 81.2.
type CoMet struct {
	baseApp
	// cmpPerFlop converts mixed-precision FLOPs to 3-way CCC element
	// comparisons (419.9e15 cmp/s over 6.71 EF).
	cmpPerFlop float64
	// mixedUtil is the achieved fraction of dense FP16 throughput the
	// CCC kernels reach per platform.
	mixedUtil map[string]float64
}

// NewCoMet returns the CoMet proxy.
func NewCoMet() *CoMet {
	return &CoMet{
		baseApp:    baseApp{name: "CoMet", baseline: "summit", target: 4.0, paper: 5.2, frontierNodes: 9074, baselineNodes: 4600},
		cmpPerFlop: 0.06258,
		mixedUtil:  map[string]float64{"frontier": 0.831, "summit": 0.495},
	}
}

// Run implements App.
func (a *CoMet) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	flops := p.Devices(n) * float64(p.FP16Dense) * swFactor(a.mixedUtil, p)
	return Result{
		App: a.name, Platform: p.Name, Nodes: n,
		FOM: flops * a.cmpPerFlop, Unit: "comparisons/s",
		Notes: fmt.Sprintf("mixed-precision rate %.3g F/s", flops),
	}, nil
}

// LSMS solves Kohn-Sham density functional theory via multiple scattering
// — dense double-complex linear algebra (matrix inversions). Table 6's
// achieved 7.5x is the per-GPU kernel speedup for the l_max=7 case, so
// the proxy's FOM is per-device; the machine-level FOM (1.027e16 on
// 8,192 Frontier nodes for 1,048,576 atoms) lands in Result.Notes. The
// CAAR port to HIP/rocSolver plus newly-offloaded kernels contributes a
// documented 1.49x on top of the raw FP64 dense ratio.
type LSMS struct {
	baseApp
	kernelSW map[string]float64
	fomScale float64
}

// NewLSMS returns the LSMS proxy.
func NewLSMS() *LSMS {
	return &LSMS{
		baseApp:  baseApp{name: "LSMS", baseline: "summit", target: 4.0, paper: 7.5, frontierNodes: 8192, baselineNodes: 4500},
		kernelSW: map[string]float64{"frontier": 1.49, "summit": 1.0},
		fomScale: 3.112e-3, // calibrates machine FOM to 1.027e16
	}
}

// Run implements App.
func (a *LSMS) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	perDevice := float64(p.FP64Dense) * swFactor(a.kernelSW, p)
	machineFOM := p.Devices(n) * perDevice * a.fomScale
	return Result{
		App: a.name, Platform: p.Name, Nodes: n,
		FOM: perDevice, Unit: "per-GPU kernel rate (F/s eq.)",
		Notes: fmt.Sprintf("machine FOM %.4g", machineFOM),
	}, nil
}

// PIConGPU simulates laser-driven plasmas with particle-in-cell: memory-
// bandwidth bound on the GPUs, with weak-scaling efficiencies the teams
// measured (90% on 9,216 Frontier nodes; 92% on the 2019 full-Summit
// run). FOM is weighted particle+cell updates per second: 65.7e12 on
// Frontier vs 14.7e12 on Summit.
type PIConGPU struct {
	baseApp
	updatesPerByte float64
	weakEff        map[string]float64
}

// NewPIConGPU returns the PIConGPU proxy.
func NewPIConGPU() *PIConGPU {
	return &PIConGPU{
		baseApp:        baseApp{name: "PIConGPU", baseline: "summit", target: 4.0, paper: 4.7, frontierNodes: 9216, baselineNodes: 4608}, //machinelint:allow Table 6 campaign size (paper-published)
		updatesPerByte: 7.41e-4,                                                                                                          // ~1.35 kB of HBM traffic per weighted update
		weakEff:        map[string]float64{"frontier": 0.90, "summit": 0.92},
	}
}

// Run implements App.
func (a *PIConGPU) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	eff := swFactor(a.weakEff, p)
	fom := p.Devices(n) * float64(p.MemBW) * a.updatesPerByte * eff
	return Result{
		App: a.name, Platform: p.Name, Nodes: n,
		FOM: fom, Unit: "updates/s", ParallelEff: eff,
	}, nil
}

// Cholla is a GPU-native hydrodynamics code: stencil sweeps bound by HBM
// bandwidth. Of its 20x over the Summit baseline, the paper attributes
// 4-5x to "intensive algorithmic optimizations" during CAAR and the rest
// to hardware — modelled as a 4.31x software factor on the computed
// bandwidth ratio.
type Cholla struct {
	baseApp
	cellsPerByte float64
	algoSW       map[string]float64
}

// NewCholla returns the Cholla proxy.
func NewCholla() *Cholla {
	return &Cholla{
		baseApp:      baseApp{name: "Cholla", baseline: "summit", target: 4.0, paper: 20.0, frontierNodes: 9472, baselineNodes: 4608}, //machinelint:allow Table 6 campaign size (paper-published)
		cellsPerByte: 5.0e-4,                                                                                                          // ~2 kB of traffic per cell update
		algoSW:       map[string]float64{"frontier": 4.31, "summit": 1.0},
	}
}

// Run implements App.
func (a *Cholla) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	fom := p.Devices(n) * float64(p.MemBW) * a.cellsPerByte * swFactor(a.algoSW, p)
	return Result{App: a.name, Platform: p.Name, Nodes: n, FOM: fom, Unit: "cell-updates/s"}, nil
}

// GESTS runs pseudo-spectral direct numerical simulation of turbulence:
// per step, distributed 3-D FFTs whose transposes are full-machine
// all-to-alls, plus GPU FFT passes. FOM = N³/t_wall. The Frontier runs
// use N=32768 (35 trillion grid points — only Frontier has the memory);
// the Summit 2019 baseline used N=18432 and staged GPU data through the
// host, capping its effective all-to-all rate (~10.5 GB/s per node).
type GESTS struct {
	baseApp
	grids      map[string]int
	fftPass    float64
	nTranspose float64
	// pencilFactor multiplies transpose time for the 2-D (pencil)
	// decomposition: two sub-communicator exchange phases per
	// transpose instead of one global one. Calibrated to the paper's
	// measured 1-D vs 2-D gap (5.87x vs 5.06x).
	pencilFactor float64
}

// NewGESTS returns the GESTS proxy with the 1-D (slab) decomposition
// the paper's headline 5.87x uses.
func NewGESTS() *GESTS {
	return &GESTS{
		baseApp:    baseApp{name: "GESTS", baseline: "summit", target: 4.0, paper: 5.9, frontierNodes: 9472, baselineNodes: 4608}, //machinelint:allow Table 6 campaign size (paper-published)
		grids:      map[string]int{"frontier": 32768, "summit": 18432},
		fftPass:    8,
		nTranspose: 2,
	}
}

// NewGESTS2D returns the 2-D (pencil) decomposition variant, which the
// paper also reports exceeding its KPP at 5.06x.
func NewGESTS2D() *GESTS {
	g := NewGESTS()
	g.name = "GESTS-2D"
	g.paper = 5.06
	g.pencilFactor = 1.16
	return g
}

// Run implements App.
func (a *GESTS) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	N, ok := a.grids[p.Name]
	if !ok {
		// Size the grid to the platform's memory (~40 B/point).
		mem := float64(p.MemCap) * float64(p.DevicesPerNode) * float64(n) * 0.8
		N = int(math.Cbrt(mem / 40))
	}
	points := float64(N) * float64(N) * float64(N)
	perNodeBytes := points * 8 / float64(n) // complex64 working array
	comm, err := p.Comm(n, p.DevicesPerNode)
	if err != nil {
		return Result{}, err
	}
	a2aPerNode := float64(comm.AllToAllPerRankBandwidth()) * float64(p.DevicesPerNode)
	if !p.GPUDirect && float64(p.HostStagingBW) < a2aPerNode {
		a2aPerNode = float64(p.HostStagingBW)
	}
	transposeFactor := 1.0
	if a.pencilFactor > 0 && p.Name == "frontier" {
		transposeFactor = a.pencilFactor
	}
	tA2A := a.nTranspose * perNodeBytes / a2aPerNode * transposeFactor
	perDeviceBytes := perNodeBytes / float64(p.DevicesPerNode)
	tFFT := a.fftPass * perDeviceBytes / float64(p.MemBW)
	step := units.Seconds(tA2A + tFFT)
	return Result{
		App: a.name, Platform: p.Name, Nodes: n,
		FOM: points / float64(step), Unit: "grid-points/s (N^3/t)",
		StepTime: step,
		Notes:    fmt.Sprintf("N=%d, all-to-all %.1f GB/s/node", N, a2aPerNode/1e9),
	}, nil
}

// AthenaPK is performance-portable magnetohydrodynamics on a 3-D linear
// wave problem sized to fill HBM: per-device stencil sweeps (memory
// bound) plus a six-face halo exchange. Frontier's NIC-per-GPU design
// lets the exchange overlap compute (96% parallel efficiency at 9,200
// nodes); Summit's shared NICs expose it (48%) — the paper's explanation,
// reproduced mechanically here. A single Frontier node does 1.2x a
// Summit node's cell-updates/s on an 8x larger problem.
type AthenaPK struct {
	baseApp
	bytesPerCellStore float64
	// trafficPerUpdate is HBM bytes moved per cell update; the HIP/
	// Kokkos code generation on CDNA2 moves more than the CUDA build,
	// which is what holds the single-node ratio to 1.2x.
	trafficPerUpdate map[string]float64
	fields           float64
	haloOverlap      map[string]float64
}

// NewAthenaPK returns the AthenaPK proxy.
func NewAthenaPK() *AthenaPK {
	return &AthenaPK{
		baseApp:           baseApp{name: "AthenaPK", baseline: "summit", target: 4.0, paper: 4.6, frontierNodes: 9200, baselineNodes: 4600},
		bytesPerCellStore: 200,
		trafficPerUpdate:  map[string]float64{"frontier": 941, "summit": 500},
		fields:            9,
		haloOverlap:       map[string]float64{"frontier": 0.88},
	}
}

// Run implements App.
func (a *AthenaPK) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	cellsPerDevice := 0.8 * float64(p.MemCap) / a.bytesPerCellStore
	traffic := a.trafficPerUpdate[p.Name]
	if traffic == 0 {
		traffic = 500
	}
	perDevRate := float64(p.MemBW) / traffic
	tComp := cellsPerDevice / perDevRate
	// Halo: six faces of side² cells, two ghost layers of all fields.
	side := math.Cbrt(cellsPerDevice)
	haloBytes := 6 * side * side * a.fields * 8 * 2
	// On a single node the exchange rides the intra-node GPU links and
	// overlaps fully; across nodes it contends for the NICs.
	var exposed float64
	if n > 1 {
		comm, err := p.Comm(n, p.DevicesPerNode)
		if err != nil {
			return Result{}, err
		}
		f, _ := p.Fabric()
		perNodeNet := float64(comm.PerNICBandwidth()) * float64(f.Cfg.NICsPerNode)
		perDeviceNet := perNodeNet / float64(p.DevicesPerNode)
		tHalo := haloBytes / perDeviceNet
		exposed = (1 - a.haloOverlap[p.Name]) * tHalo
	}
	eff := tComp / (tComp + exposed)
	fom := p.Devices(n) * perDevRate * eff
	return Result{
		App: a.name, Platform: p.Name, Nodes: n,
		FOM: fom, Unit: "cell-updates/s",
		StepTime:    units.Seconds(tComp + exposed),
		ParallelEff: eff,
		Notes:       fmt.Sprintf("%.0f cells/device, halo %.1f MB/device/step", cellsPerDevice, haloBytes/1e6),
	}, nil
}
