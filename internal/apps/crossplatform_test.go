package apps

import (
	"testing"
)

// Every app must run on every platform (the proxies are machine-generic
// even where the paper only reports two machines), and Frontier must be
// the fastest machine for every one of them.
func TestAppsRunEverywhere(t *testing.T) {
	platforms := []*Platform{Frontier(), Summit(), Titan(), Mira(), Theta(), Cori()}
	for _, app := range AllApps() {
		best := ""
		var bestFOM float64
		for _, p := range platforms {
			r, err := app.Run(p, p.Nodes)
			if err != nil {
				t.Fatalf("%s on %s: %v", app.Name(), p.Name, err)
			}
			if r.FOM <= 0 {
				t.Errorf("%s on %s: non-positive FOM", app.Name(), p.Name)
			}
			if r.Unit == "" {
				t.Errorf("%s: missing FOM unit", app.Name())
			}
			if r.FOM > bestFOM {
				bestFOM, best = r.FOM, p.Name
			}
		}
		if best != "frontier" {
			t.Errorf("%s: fastest machine is %s, want frontier", app.Name(), best)
		}
	}
}

// HACC across machine generations must be monotone in time: each newer
// leadership machine beats the previous generation.
func TestGenerationalProgress(t *testing.T) {
	hacc := NewExaSky()
	order := []*Platform{Titan(), Mira(), Theta(), Summit(), Frontier()}
	// Mira (BlueGene) and Titan are contemporaries with different
	// designs; compare within the GPU lineage and the overall arc.
	titanFOM := runFOM(t, hacc, order[0])
	summitFOM := runFOM(t, hacc, order[3])
	frontierFOM := runFOM(t, hacc, order[4])
	if !(titanFOM < summitFOM && summitFOM < frontierFOM) {
		t.Errorf("GPU lineage not monotone: titan %.3g, summit %.3g, frontier %.3g",
			titanFOM, summitFOM, frontierFOM)
	}
	// A decade of machines: Frontier/Titan > 100x for a compute-bound
	// FP32 code.
	if frontierFOM/titanFOM < 40 {
		t.Errorf("frontier/titan = %.0fx, want a large generational jump", frontierFOM/titanFOM)
	}
}

func runFOM(t *testing.T, app App, p *Platform) float64 {
	t.Helper()
	r, err := app.Run(p, p.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	return r.FOM
}

// Strong scaling within Frontier: more nodes, more FOM, for every app.
func TestFrontierScalingMonotone(t *testing.T) {
	fr := Frontier()
	for _, app := range AllApps() {
		small, err := app.Run(fr, 1024)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		big, err := app.Run(fr, 8192)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if app.Name() == "LSMS" {
			// LSMS reports a per-device FOM; machine scaling lives in
			// the notes.
			continue
		}
		if big.FOM <= small.FOM {
			t.Errorf("%s: FOM at 8192 nodes (%.3g) <= at 1024 (%.3g)", app.Name(), big.FOM, small.FOM)
		}
	}
}

// The KPP table structure itself: CAAR targets 4x over Summit, ECP 50x
// over petascale baselines, exactly as the paper frames them.
func TestKPPStructure(t *testing.T) {
	for _, app := range CAARApps() {
		if app.TargetSpeedup() != 4.0 {
			t.Errorf("%s: CAAR target is 4x", app.Name())
		}
		if app.BaselineName() != "summit" {
			t.Errorf("%s: CAAR baseline is Summit", app.Name())
		}
	}
	for _, app := range ECPApps() {
		if app.TargetSpeedup() != 50.0 {
			t.Errorf("%s: ECP target is 50x", app.Name())
		}
		if app.BaselineName() == "summit" || app.BaselineName() == "frontier" {
			t.Errorf("%s: ECP baselines are the ~20 PF systems", app.Name())
		}
	}
}

// Scaling shapes: EXAALT (replica-parallel) holds efficiency ~1; GESTS
// (global FFT transposes) falls off once the job leaves the NIC-bound
// regime for the tapered global fabric.
func TestScalingShapes(t *testing.T) {
	fr := Frontier()
	counts := []int{1184, 2368, 4736, 9472}

	exaalt, err := Scaling(NewEXAALT(), fr, counts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range exaalt {
		if pt.Efficiency < 0.99 || pt.Efficiency > 1.01 {
			t.Errorf("EXAALT at %d nodes: efficiency %.3f, want ~1 (replica-parallel)", pt.Nodes, pt.Efficiency)
		}
	}

	gests, err := Scaling(NewGESTS(), fr, counts)
	if err != nil {
		t.Fatal(err)
	}
	last := gests[len(gests)-1]
	if last.Efficiency > 0.75 {
		t.Errorf("GESTS strong scaling at %d nodes: efficiency %.2f, want network-bound falloff", last.Nodes, last.Efficiency)
	}
	// But FOM must still improve with more nodes.
	if gests[len(gests)-1].FOM <= gests[0].FOM {
		t.Error("GESTS should still speed up with more nodes")
	}
	if _, err := Scaling(NewGESTS(), fr, nil); err == nil {
		t.Error("empty counts should error")
	}
}
