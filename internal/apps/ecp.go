package apps

import (
	"fmt"
)

// WarpX models the next generation of particle accelerators with
// electromagnetic PIC: memory-bandwidth bound on GPUs. Its 500x over the
// Cori baseline compounds the hardware bandwidth ratio with the Warp →
// WarpX rewrite (pseudo-spectral solvers, Lorentz-boosted frame, mesh
// refinement, full GPU port) — a documented ~19x algorithmic factor; it
// was the first ECP application to reach its KPP, on nearly the full
// machine.
type WarpX struct {
	baseApp
	updatesPerByte float64
	codeSW         map[string]float64
}

// NewWarpX returns the WarpX proxy.
func NewWarpX() *WarpX {
	return &WarpX{
		baseApp:        baseApp{name: "WarpX", baseline: "cori", target: 50, paper: 500, frontierNodes: 9216, baselineNodes: 9688}, //machinelint:allow Table 6 campaign size (paper-published)
		updatesPerByte: 7.0e-4,
		codeSW:         map[string]float64{"frontier": 19.2, "cori": 1.0},
	}
}

// Run implements App.
func (a *WarpX) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	fom := p.Devices(n) * float64(p.MemBW) * a.updatesPerByte * swFactor(a.codeSW, p)
	return Result{App: a.name, Platform: p.Name, Nodes: n, FOM: fom, Unit: "particle-updates/s"}, nil
}

// ExaSky (HACC/CRK-HACC) integrates the Vlasov-Poisson equation with
// particle-mesh plus SPH hydrodynamics: single-precision compute bound.
// The Theta baseline (3,072 nodes rescaled to the full 4,392) ran KNL
// kernels; the GPU force kernels are further tuned (documented 1.43x).
// FOM is the geometric mean of gravity-only and hydro configurations;
// both scale with the same FP32 throughput in this proxy.
type ExaSky struct {
	baseApp
	kernelSW map[string]float64
}

// NewExaSky returns the HACC proxy.
func NewExaSky() *ExaSky {
	return &ExaSky{
		baseApp:  baseApp{name: "ExaSky", baseline: "theta", target: 50, paper: 234, frontierNodes: 8192, baselineNodes: 4392}, //machinelint:allow Table 6 campaign size (paper-published)
		kernelSW: map[string]float64{"frontier": 1.43, "theta": 1.0},
	}
}

// Run implements App.
func (a *ExaSky) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	fom := p.Devices(n) * float64(p.FP32Dense) * swFactor(a.kernelSW, p)
	return Result{App: a.name, Platform: p.Name, Nodes: n, FOM: fom, Unit: "FP32 force-kernel rate (F/s eq.)"}, nil
}

// EXAALT runs thousands of concurrent LAMMPS/SNAP molecular-dynamics
// replicas under ParSplice — embarrassingly parallel, FP64 compute bound
// on the SNAP potential. The ~25x SNAP kernel rewrite [23,44,47] shows up
// as a much higher fraction of peak on Frontier (26.4%) than the pre-ECP
// kernels achieved on Mira's BG/Q (15% of a far smaller peak). Frontier:
// 3.57e9 atom-steps/s on 7,000 nodes (13,856 LAMMPS instances).
type EXAALT struct {
	baseApp
	snapEff          map[string]float64
	flopsPerAtomStep float64
}

// NewEXAALT returns the EXAALT proxy.
func NewEXAALT() *EXAALT {
	return &EXAALT{
		baseApp:          baseApp{name: "EXAALT", baseline: "mira", target: 50, paper: 398.5, frontierNodes: 7000, baselineNodes: 49152}, //machinelint:allow Table 6 campaign size (paper-published)
		snapEff:          map[string]float64{"frontier": 0.264, "mira": 0.15},
		flopsPerAtomStep: 1.4e8, // SNAP is ~100 MF per atom-step
	}
}

// Run implements App.
func (a *EXAALT) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	eff := swFactor(a.snapEff, p)
	fom := p.Devices(n) * float64(p.FP64Dense) * eff / a.flopsPerAtomStep
	instances := int(p.Devices(n) / 4)
	if p.DevicesPerNode == 1 {
		instances = n
	}
	return Result{
		App: a.name, Platform: p.Name, Nodes: n,
		FOM: fom, Unit: "atom-steps/s",
		Notes: fmt.Sprintf("%d ParSplice instances", instances),
	}, nil
}

// ExaSMR couples continuous-energy Monte Carlo neutronics (Shift) with
// spectral-element CFD (NekRS) for small modular reactors. Both
// components are memory-bandwidth bound; their ports carry documented
// rewrite factors (event-based GPU Monte Carlo: 2.65x; Nek5000 → NekRS:
// 4.9x). The paper's combined FOM is the harmonic mean of the two
// component speedups versus Titan: 54 and 99.6 combine to 70.
type ExaSMR struct {
	baseApp
	shiftSW, nekSW map[string]float64
	// baselineAggBW is the full-Titan aggregate achieved memory
	// bandwidth both component FOMs normalise against (software factor
	// 1.0 there), so the Titan baseline lands at exactly 1.0.
	baselineAggBW    float64
	particlesPerByte float64
	weakScalingEff   float64
}

// NewExaSMR returns the coupled proxy.
func NewExaSMR() *ExaSMR {
	return &ExaSMR{
		baseApp:          baseApp{name: "ExaSMR", baseline: "titan", target: 50, paper: 70, frontierNodes: 6400, baselineNodes: 18688}, //machinelint:allow Table 6 campaign size (paper-published)
		shiftSW:          map[string]float64{"frontier": 2.65, "titan": 1.0},
		nekSW:            map[string]float64{"frontier": 4.9, "titan": 1.0},
		baselineAggBW:    18688 * 180e9, //machinelint:allow Table 6 campaign size: 18,688 K20X nodes × 180 GB/s
		particlesPerByte: 3.93e-9,       // calibrates Shift to 912M particles/s on 8,192 nodes
		weakScalingEff:   0.978,         // Shift's measured 1 → 8,192-node efficiency
	}
}

// componentFOMs returns (shift, nekrs) rates on p.
func (a *ExaSMR) componentFOMs(p *Platform, n int) (float64, float64) {
	bw := p.Devices(n) * float64(p.MemBW)
	return bw * swFactor(a.shiftSW, p), bw * swFactor(a.nekSW, p)
}

// Run implements App. The FOM is normalised so the Titan baseline is 1.0
// and Frontier's value is directly the paper's combined figure.
func (a *ExaSMR) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	shift, nek := a.componentFOMs(p, n)
	// Baseline component rates on the full Titan (software factor 1.0).
	rs, rn := shift/a.baselineAggBW, nek/a.baselineAggBW
	fom := 2 / (1/rs + 1/rn)
	return Result{
		App: a.name, Platform: p.Name, Nodes: n,
		FOM: fom, Unit: "combined FOM (vs Titan=1)",
		Notes: fmt.Sprintf("Shift %.1fx, NekRS %.1fx", rs, rn),
	}, nil
}

// ShiftMaxRate is the non-coupled Monte Carlo ceiling: 912M particles/s
// on 8,192 Frontier nodes with 97.8% weak-scaling efficiency.
func (a *ExaSMR) ShiftMaxRate(p *Platform, nodes int) float64 {
	n := nodes
	if n > p.Nodes {
		n = p.Nodes
	}
	eff := 1.0
	if n > 1 {
		eff = a.weakScalingEff
	}
	return p.Devices(n) * float64(p.MemBW) * swFactor(a.shiftSW, p) * a.particlesPerByte / a.weakScalingEff * eff
}

// WDMApp couples core (GENE) and edge (XGC) gyrokinetic plasma codes —
// mixed-precision particle kernels, compute bound, with a documented
// ~5.2x cumulative code-improvement factor over the Titan-era stack.
type WDMApp struct {
	baseApp
	codeSW map[string]float64
}

// NewWDMApp returns the WDMApp proxy.
func NewWDMApp() *WDMApp {
	return &WDMApp{
		baseApp: baseApp{name: "WDMApp", baseline: "titan", target: 50, paper: 150, frontierNodes: 8192, baselineNodes: 18688}, //machinelint:allow Table 6 campaign size (paper-published)
		codeSW:  map[string]float64{"frontier": 5.15, "titan": 1.0},
	}
}

// Run implements App.
func (a *WDMApp) Run(p *Platform, nodes int) (Result, error) {
	n := a.nodesOn(p, nodes)
	fom := p.Devices(n) * float64(p.FP32Dense) * swFactor(a.codeSW, p)
	return Result{App: a.name, Platform: p.Name, Nodes: n, FOM: fom, Unit: "gyrokinetic push rate (F/s eq.)"}, nil
}
