package apps_test

import (
	"fmt"

	"frontiersim/internal/apps"
	"frontiersim/internal/machine"
)

// Reproduce one Table 6 row: Cholla's 20x over Summit.
func ExampleSpeedup() {
	s, frontier, summit, err := apps.Speedup(apps.NewCholla(), machine.PlatformByName)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Cholla: %.1fx (target %gx)\n", s, apps.NewCholla().TargetSpeedup())
	fmt.Println("frontier nodes:", frontier.Nodes)
	fmt.Println("summit nodes:", summit.Nodes)
	// Output:
	// Cholla: 20.0x (target 4x)
	// frontier nodes: 9472
	// summit nodes: 4608
}
