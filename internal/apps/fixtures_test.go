package apps

import (
	"fmt"

	"frontiersim/internal/fabric"
	"frontiersim/internal/units"
)

// Test fixtures. Production code obtains platforms from internal/machine
// (which imports this package); the golden test in internal/machine pins
// the derived platforms to these values.

// clos is a helper for baseline fabrics.
func clos(name string, leaves, perLeaf, nicsPerNode int, rate units.BytesPerSecond, eff float64) func() (*fabric.Fabric, error) {
	return func() (*fabric.Fabric, error) {
		return fabric.NewClos(fabric.ClosConfig{
			Name:               name,
			Leaves:             leaves,
			EndpointsPerLeaf:   perLeaf,
			NICsPerNode:        nicsPerNode,
			LinkRate:           rate,
			EndpointEfficiency: eff,
			SwitchLatency:      400 * units.Nanosecond,
			EndpointLatency:    1200 * units.Nanosecond,
		})
	}
}

// Frontier returns the target platform: achieved per-GCD rates from the
// paper's own micro-benchmarks (Fig. 3 GEMM, Table 4 STREAM).
func Frontier() *Platform {
	p := &Platform{
		Name:           "frontier",
		Year:           2022,
		Nodes:          9472,
		DevicesPerNode: 8,
		FP64Dense:      33.8 * units.TeraFlops,
		FP32Dense:      24.1 * units.TeraFlops,
		FP16Dense:      111.2 * units.TeraFlops,
		MemBW:          1337 * units.GBps,
		MemCap:         64 * units.GiB,
		GPUDirect:      true,
	}
	p.SetFabricBuilder(func() (*fabric.Fabric, error) {
		return fabric.NewDragonfly(fabric.Config{
			Name:                 "frontier-slingshot11",
			ComputeGroups:        74,
			IOGroups:             5,
			MgmtGroups:           1,
			ComputeGroupSwitches: 32,
			TORGroupSwitches:     16,
			EndpointsPerSwitch:   16,
			NICsPerNode:          4,
			LinkRate:             25 * units.GBps,
			EndpointEfficiency:   0.70,
			ComputeComputeLinks:  4,
			ComputeIOLinks:       2,
			ComputeMgmtLinks:     2,
			IOIOLinks:            10,
			IOMgmtLinks:          6,
			SwitchLatency:        200 * units.Nanosecond,
			EndpointLatency:      650 * units.Nanosecond,
		})
	})
	return p
}

// Summit is the CAAR baseline: 4,608 nodes of 6 V100s on dual-rail EDR.
func Summit() *Platform {
	p := &Platform{
		Name:           "summit",
		Year:           2018,
		Nodes:          4608,
		DevicesPerNode: 6,
		FP64Dense:      6.7 * units.TeraFlops,
		FP32Dense:      13.5 * units.TeraFlops,
		FP16Dense:      95 * units.TeraFlops,
		MemBW:          790 * units.GBps,
		MemCap:         16 * units.GiB,
		GPUDirect:      false,
		HostStagingBW:  10.5 * units.GBps,
	}
	p.SetFabricBuilder(func() (*fabric.Fabric, error) {
		return fabric.NewClos(fabric.ClosConfig{
			Name:               "summit-edr-fattree",
			Leaves:             256,
			EndpointsPerLeaf:   36,
			NICsPerNode:        2,
			LinkRate:           12.5 * units.GBps,
			EndpointEfficiency: 0.68,
			SwitchLatency:      300 * units.Nanosecond,
			EndpointLatency:    900 * units.Nanosecond,
		})
	})
	return p
}

// Titan: 18,688 nodes, one K20X each (ExaSMR/WDMApp baseline).
func Titan() *Platform {
	p := &Platform{
		Name:           "titan",
		Year:           2012,
		Nodes:          18688,
		DevicesPerNode: 1,
		FP64Dense:      1.1 * units.TeraFlops,
		FP32Dense:      2.9 * units.TeraFlops,
		FP16Dense:      2.9 * units.TeraFlops,
		MemBW:          180 * units.GBps,
		MemCap:         6 * units.GiB,
		GPUDirect:      false,
		HostStagingBW:  5 * units.GBps,
	}
	p.SetFabricBuilder(clos("titan-gemini", 584, 32, 1, 8*units.GBps, 0.55))
	return p
}

// Mira: 49,152 BG/Q nodes (EXAALT baseline).
func Mira() *Platform {
	p := &Platform{
		Name:           "mira",
		Year:           2012,
		Nodes:          49152,
		DevicesPerNode: 1,
		FP64Dense:      0.17 * units.TeraFlops,
		FP32Dense:      0.17 * units.TeraFlops,
		FP16Dense:      0.17 * units.TeraFlops,
		MemBW:          28 * units.GBps,
		MemCap:         16 * units.GiB,
		GPUDirect:      true,
	}
	p.SetFabricBuilder(clos("mira-5dtorus", 1024, 48, 1, 10*units.GBps, 0.6))
	return p
}

// Theta: 4,392 KNL nodes (ExaSky baseline).
func Theta() *Platform {
	p := &Platform{
		Name:           "theta",
		Year:           2017,
		Nodes:          4392,
		DevicesPerNode: 1,
		FP64Dense:      1.6 * units.TeraFlops,
		FP32Dense:      2.2 * units.TeraFlops,
		FP16Dense:      2.2 * units.TeraFlops,
		MemBW:          380 * units.GBps,
		MemCap:         16 * units.GiB,
		GPUDirect:      true,
	}
	p.SetFabricBuilder(clos("theta-aries", 122, 36, 1, 10*units.GBps, 0.8))
	return p
}

// Cori: 9,688 KNL nodes (WarpX baseline).
func Cori() *Platform {
	p := &Platform{
		Name:           "cori",
		Year:           2016,
		Nodes:          9688,
		DevicesPerNode: 1,
		FP64Dense:      1.7 * units.TeraFlops,
		FP32Dense:      2.4 * units.TeraFlops,
		FP16Dense:      2.4 * units.TeraFlops,
		MemBW:          390 * units.GBps,
		MemCap:         16 * units.GiB,
		GPUDirect:      true,
	}
	p.SetFabricBuilder(clos("cori-aries", 270, 36, 1, 10*units.GBps, 0.8))
	return p
}

// ByName resolves a fixture platform by its name.
func ByName(name string) (*Platform, error) {
	switch name {
	case "frontier":
		return Frontier(), nil
	case "summit":
		return Summit(), nil
	case "titan":
		return Titan(), nil
	case "mira":
		return Mira(), nil
	case "theta":
		return Theta(), nil
	case "cori":
		return Cori(), nil
	}
	return nil, fmt.Errorf("apps: unknown platform %q", name)
}
