// Package apps implements proxy models of the CAAR and ECP applications
// the paper evaluates (Tables 6 and 7): each application is decomposed
// into its dominant resource class (dense FP64/FP32/FP16 compute, memory
// bandwidth, all-to-all, halo exchange, Monte-Carlo transport), executed
// against a platform's hardware model and communicator, and multiplied by
// the software-improvement factors the paper itself attributes to each
// port. The hardware ratios are computed; the software factors are
// documented inputs, never outputs.
package apps

import (
	"fmt"
	"sync"

	"frontiersim/internal/fabric"
	"frontiersim/internal/mpi"
	"frontiersim/internal/units"
)

// Platform describes one machine as the application models see it.
type Platform struct {
	Name  string
	Year  int
	Nodes int
	// DevicesPerNode is the accelerator count (GCDs on Frontier, GPUs
	// on Summit/Titan, the CPU itself on Mira/Theta/Cori).
	DevicesPerNode int
	// Achieved dense throughput per device by precision (measured
	// GEMM-class rates, not marketing peaks).
	FP64Dense units.Flops
	FP32Dense units.Flops
	FP16Dense units.Flops
	// MemBW is the achieved STREAM-class bandwidth per device.
	MemBW units.BytesPerSecond
	// MemCap is usable memory per device.
	MemCap units.Bytes
	// GPUDirect reports whether the network can DMA device memory
	// directly; when false, transfers stage through the host at
	// HostStagingBW (per node).
	GPUDirect     bool
	HostStagingBW units.BytesPerSecond

	newFabric func() (*fabric.Fabric, error)
	fabOnce   sync.Once
	fab       *fabric.Fabric
	fabErr    error
}

// SetFabricBuilder installs the function that constructs the platform's
// network on first use. The machine-spec layer calls this with the
// spec's topology; Fabric caches the result.
func (p *Platform) SetFabricBuilder(build func() (*fabric.Fabric, error)) {
	p.newFabric = build
}

// Fabric lazily builds and caches the platform's network.
func (p *Platform) Fabric() (*fabric.Fabric, error) {
	p.fabOnce.Do(func() {
		if p.newFabric == nil {
			p.fabErr = fmt.Errorf("apps: platform %s has no fabric builder", p.Name)
			return
		}
		p.fab, p.fabErr = p.newFabric()
	})
	return p.fab, p.fabErr
}

// Comm builds a communicator over n nodes spread evenly across the
// machine (large-job placement) with the given ranks per node.
func (p *Platform) Comm(n, ppn int) (*mpi.Comm, error) {
	f, err := p.Fabric()
	if err != nil {
		return nil, err
	}
	total := f.Cfg.ComputeNodes()
	if n > total {
		return nil, fmt.Errorf("apps: %d nodes exceeds %s's %d", n, p.Name, total)
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i * total / n
	}
	return mpi.NewComm(f, nodes, ppn)
}

// Devices returns the device count for an n-node job.
func (p *Platform) Devices(n int) float64 { return float64(n * p.DevicesPerNode) }

// NodeMemBW is the per-node aggregate achieved memory bandwidth.
func (p *Platform) NodeMemBW() units.BytesPerSecond {
	return p.MemBW * units.BytesPerSecond(p.DevicesPerNode)
}
