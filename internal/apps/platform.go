// Package apps implements proxy models of the CAAR and ECP applications
// the paper evaluates (Tables 6 and 7): each application is decomposed
// into its dominant resource class (dense FP64/FP32/FP16 compute, memory
// bandwidth, all-to-all, halo exchange, Monte-Carlo transport), executed
// against a platform's hardware model and communicator, and multiplied by
// the software-improvement factors the paper itself attributes to each
// port. The hardware ratios are computed; the software factors are
// documented inputs, never outputs.
package apps

import (
	"fmt"
	"sync"

	"frontiersim/internal/fabric"
	"frontiersim/internal/mpi"
	"frontiersim/internal/units"
)

// Platform describes one machine as the application models see it.
type Platform struct {
	Name  string
	Year  int
	Nodes int
	// DevicesPerNode is the accelerator count (GCDs on Frontier, GPUs
	// on Summit/Titan, the CPU itself on Mira/Theta/Cori).
	DevicesPerNode int
	// Achieved dense throughput per device by precision (measured
	// GEMM-class rates, not marketing peaks).
	FP64Dense units.Flops
	FP32Dense units.Flops
	FP16Dense units.Flops
	// MemBW is the achieved STREAM-class bandwidth per device.
	MemBW units.BytesPerSecond
	// MemCap is usable memory per device.
	MemCap units.Bytes
	// GPUDirect reports whether the network can DMA device memory
	// directly; when false, transfers stage through the host at
	// HostStagingBW (per node).
	GPUDirect     bool
	HostStagingBW units.BytesPerSecond

	newFabric func() (*fabric.Fabric, error)
	fabOnce   sync.Once
	fab       *fabric.Fabric
	fabErr    error
}

// Fabric lazily builds and caches the platform's network.
func (p *Platform) Fabric() (*fabric.Fabric, error) {
	p.fabOnce.Do(func() { p.fab, p.fabErr = p.newFabric() })
	return p.fab, p.fabErr
}

// Comm builds a communicator over n nodes spread evenly across the
// machine (large-job placement) with the given ranks per node.
func (p *Platform) Comm(n, ppn int) (*mpi.Comm, error) {
	f, err := p.Fabric()
	if err != nil {
		return nil, err
	}
	total := f.Cfg.ComputeNodes()
	if n > total {
		return nil, fmt.Errorf("apps: %d nodes exceeds %s's %d", n, p.Name, total)
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i * total / n
	}
	return mpi.NewComm(f, nodes, ppn)
}

// Devices returns the device count for an n-node job.
func (p *Platform) Devices(n int) float64 { return float64(n * p.DevicesPerNode) }

// NodeMemBW is the per-node aggregate achieved memory bandwidth.
func (p *Platform) NodeMemBW() units.BytesPerSecond {
	return p.MemBW * units.BytesPerSecond(p.DevicesPerNode)
}

// clos is a helper for baseline fabrics.
func clos(name string, leaves, perLeaf, nicsPerNode int, rate units.BytesPerSecond, eff float64) func() (*fabric.Fabric, error) {
	return func() (*fabric.Fabric, error) {
		return fabric.NewClos(fabric.ClosConfig{
			Name:               name,
			Leaves:             leaves,
			EndpointsPerLeaf:   perLeaf,
			NICsPerNode:        nicsPerNode,
			LinkRate:           rate,
			EndpointEfficiency: eff,
			SwitchLatency:      400 * units.Nanosecond,
			EndpointLatency:    1200 * units.Nanosecond,
		})
	}
}

// Frontier returns the target platform: achieved per-GCD rates from the
// paper's own micro-benchmarks (Fig. 3 GEMM, Table 4 STREAM).
func Frontier() *Platform {
	return &Platform{
		Name:           "frontier",
		Year:           2022,
		Nodes:          9472,
		DevicesPerNode: 8,
		FP64Dense:      33.8 * units.TeraFlops,
		FP32Dense:      24.1 * units.TeraFlops,
		FP16Dense:      111.2 * units.TeraFlops,
		MemBW:          1337 * units.GBps,
		MemCap:         64 * units.GiB,
		GPUDirect:      true,
		newFabric:      func() (*fabric.Fabric, error) { return fabric.NewDragonfly(fabric.FrontierConfig()) },
	}
}

// Summit is the CAAR baseline: 4,608 nodes of 6 V100s on dual-rail EDR.
// The 2019-era software stack staged large GPU messages through the host
// at ~10.5 GB/s per node (the GESTS baseline's asynchronous pipeline).
func Summit() *Platform {
	return &Platform{
		Name:           "summit",
		Year:           2018,
		Nodes:          4608,
		DevicesPerNode: 6,
		FP64Dense:      6.7 * units.TeraFlops,  // 86% of V100's 7.8 peak
		FP32Dense:      13.5 * units.TeraFlops, // 86% of 15.7
		FP16Dense:      95 * units.TeraFlops,   // achieved tensor-core GEMM
		MemBW:          790 * units.GBps,       // of 900 peak
		MemCap:         16 * units.GiB,
		GPUDirect:      false,
		HostStagingBW:  10.5 * units.GBps,
		newFabric:      func() (*fabric.Fabric, error) { return fabric.NewClos(fabric.SummitClosConfig()) },
	}
}

// Titan: 18,688 nodes, one K20X each, Gemini torus (ExaSMR/WDMApp
// baseline).
func Titan() *Platform {
	return &Platform{
		Name:           "titan",
		Year:           2012,
		Nodes:          18688,
		DevicesPerNode: 1,
		FP64Dense:      1.1 * units.TeraFlops,
		FP32Dense:      2.9 * units.TeraFlops,
		FP16Dense:      2.9 * units.TeraFlops, // no reduced-precision units
		MemBW:          180 * units.GBps,
		MemCap:         6 * units.GiB,
		GPUDirect:      false,
		HostStagingBW:  5 * units.GBps,
		newFabric:      clos("titan-gemini", 584, 32, 1, 8*units.GBps, 0.55),
	}
}

// Mira: 49,152 BG/Q nodes (EXAALT baseline). The "device" is the node.
func Mira() *Platform {
	return &Platform{
		Name:           "mira",
		Year:           2012,
		Nodes:          49152,
		DevicesPerNode: 1,
		FP64Dense:      0.17 * units.TeraFlops, // of 204.8 GF peak
		FP32Dense:      0.17 * units.TeraFlops,
		FP16Dense:      0.17 * units.TeraFlops,
		MemBW:          28 * units.GBps,
		MemCap:         16 * units.GiB,
		GPUDirect:      true, // no accelerator: no staging penalty
		newFabric:      clos("mira-5dtorus", 1024, 48, 1, 10*units.GBps, 0.6),
	}
}

// Theta: 4,392 KNL nodes (ExaSky baseline). HACC's compute kernels
// achieved a famously low fraction of KNL peak next to its GPU ports.
func Theta() *Platform {
	return &Platform{
		Name:           "theta",
		Year:           2017,
		Nodes:          4392,
		DevicesPerNode: 1,
		FP64Dense:      1.6 * units.TeraFlops,
		FP32Dense:      2.2 * units.TeraFlops,
		FP16Dense:      2.2 * units.TeraFlops,
		MemBW:          380 * units.GBps, // MCDRAM achieved
		MemCap:         16 * units.GiB,
		GPUDirect:      true,
		newFabric:      clos("theta-aries", 122, 36, 1, 10*units.GBps, 0.8),
	}
}

// Cori: 9,688 KNL nodes (WarpX baseline).
func Cori() *Platform {
	return &Platform{
		Name:           "cori",
		Year:           2016,
		Nodes:          9688,
		DevicesPerNode: 1,
		FP64Dense:      1.7 * units.TeraFlops,
		FP32Dense:      2.4 * units.TeraFlops,
		FP16Dense:      2.4 * units.TeraFlops,
		MemBW:          390 * units.GBps,
		MemCap:         16 * units.GiB,
		GPUDirect:      true,
		newFabric:      clos("cori-aries", 270, 36, 1, 10*units.GBps, 0.8),
	}
}

// ByName resolves a platform by its name.
func ByName(name string) (*Platform, error) {
	switch name {
	case "frontier":
		return Frontier(), nil
	case "summit":
		return Summit(), nil
	case "titan":
		return Titan(), nil
	case "mira":
		return Mira(), nil
	case "theta":
		return Theta(), nil
	case "cori":
		return Cori(), nil
	}
	return nil, fmt.Errorf("apps: unknown platform %q", name)
}
