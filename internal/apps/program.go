package apps

import (
	"fmt"
	"math"

	"frontiersim/internal/gpu"
	"frontiersim/internal/job"
	"frontiersim/internal/units"
)

// ProgramBuilder is an App that can express itself as a phase-structured
// job.Program for campaign simulation: the same calibration constants
// that drive the closed-form Run FOMs, restructured as per-step compute
// work plus the collective pattern the code actually issues, so the
// runtime a campaign observes depends on where the scheduler places the
// job.
type ProgramBuilder interface {
	App
	// Program builds the application as a phase-structured job on n
	// nodes of platform p, looping for the given iteration count.
	Program(p *Platform, nodes, iterations int) (*job.Program, error)
}

// nominalStepSeconds sizes the per-step compute work of the
// rate-calibrated applications: real campaigns size their problems to
// the machine, so one step is one nominal second of the dominant
// resource (flops or HBM traffic) at the app's achieved efficiency —
// placement-dependent collectives then stretch the delivered step.
const nominalStepSeconds = 1.0

// nodesFor clamps the requested node count like Run does, defaulting to
// the paper's campaign size.
func (b baseApp) nodesFor(p *Platform, nodes int) int { return b.nodesOn(p, nodes) }

// program assembles the common Program envelope.
func program(name string, p *Platform, nodes, iterations int, loop []job.Phase, setup ...job.Phase) *job.Program {
	return &job.Program{
		Name:       name,
		Class:      name,
		Nodes:      nodes,
		PPN:        p.DevicesPerNode,
		Setup:      setup,
		Iterations: iterations,
		Loop:       loop,
	}
}

// Program implements ProgramBuilder: FP16 matrix-pipe GEMM blocks with a
// periodic tally all-reduce (the CCC result merge).
func (a *CoMet) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	eff := swFactor(a.mixedUtil, p)
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "ccc-gemm", Kind: job.Compute, Precision: gpu.FP16, MatrixCores: true,
			Flops: nominalStepSeconds * float64(p.FP16Dense) * eff, Efficiency: eff},
		{Name: "tally-allreduce", Kind: job.Collective, Op: job.Allreduce, Payload: 16 * units.MiB},
	}), nil
}

// Program implements ProgramBuilder: dense double-complex inversions per
// scattering site, then the potential broadcast and energy reduction of
// the self-consistency loop.
func (a *LSMS) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	sw := swFactor(a.kernelSW, p)
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "scattering-invert", Kind: job.Compute, Precision: gpu.FP64,
			Flops: nominalStepSeconds * float64(p.FP64Dense) * sw},
		{Name: "potential-bcast", Kind: job.Collective, Op: job.Broadcast, Payload: 8 * units.MiB},
		{Name: "energy-allreduce", Kind: job.Collective, Op: job.Allreduce, Payload: 1 * units.MiB},
	}), nil
}

// Program implements ProgramBuilder: bandwidth-bound particle pushes
// with a particle-migration halo.
func (a *PIConGPU) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "particle-push", Kind: job.Compute,
			Bytes: units.Bytes(nominalStepSeconds * float64(p.MemBW) * swFactor(a.weakEff, p))},
		{Name: "particle-halo", Kind: job.Collective, Op: job.Halo, Payload: 8 * units.MiB},
	}), nil
}

// Program implements ProgramBuilder: HBM-bound hydro sweeps over a grid
// sized to device memory, plus the ghost-cell exchange.
func (a *Cholla) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	// Cells per device from the bandwidth model's traffic constant; the
	// ghost face is one layer of conserved fields (5 × 8 B) per cell.
	cellsPerDevice := nominalStepSeconds * float64(p.MemBW) * a.cellsPerByte * swFactor(a.algoSW, p)
	side := math.Cbrt(cellsPerDevice)
	face := units.Bytes(side * side * 5 * 8)
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "hydro-sweep", Kind: job.Compute,
			Bytes: units.Bytes(nominalStepSeconds * float64(p.MemBW))},
		{Name: "ghost-exchange", Kind: job.Collective, Op: job.Halo, Payload: face},
	}), nil
}

// Program implements ProgramBuilder: the pseudo-spectral step — GPU FFT
// passes over the local slab, then the transpose all-to-alls that
// dominate at scale. The grid comes from the same table Run uses.
func (a *GESTS) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	N, ok := a.grids[p.Name]
	if !ok {
		mem := float64(p.MemCap) * float64(p.DevicesPerNode) * float64(n) * 0.8
		N = int(math.Cbrt(mem / 40))
	}
	points := float64(N) * float64(N) * float64(N)
	ranks := n * p.DevicesPerNode
	perDeviceBytes := points * 8 / float64(ranks)
	// Each transpose sends the local slab split across the other ranks;
	// the per-pair payload times (ranks-1) recovers the slab volume.
	pair := perDeviceBytes * a.nTranspose / float64(ranks-1)
	if ranks < 2 {
		pair = 0
	}
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "fft-passes", Kind: job.Compute, Bytes: units.Bytes(a.fftPass * perDeviceBytes)},
		{Name: "transpose-a2a", Kind: job.Collective, Op: job.AllToAll, Payload: units.Bytes(pair)},
	}), nil
}

// Program implements ProgramBuilder: memory-bound MHD sweeps on an
// HBM-filling grid with the six-face field halo.
func (a *AthenaPK) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	cellsPerDevice := 0.8 * float64(p.MemCap) / a.bytesPerCellStore
	traffic := a.trafficPerUpdate[p.Name]
	if traffic == 0 {
		traffic = 500
	}
	side := math.Cbrt(cellsPerDevice)
	face := units.Bytes(side * side * a.fields * 8 * 2)
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "mhd-sweep", Kind: job.Compute, Bytes: units.Bytes(cellsPerDevice * traffic)},
		{Name: "field-halo", Kind: job.Collective, Op: job.Halo, Payload: face},
	}), nil
}

// Program implements ProgramBuilder: bandwidth-bound electromagnetic PIC
// with a field halo and a periodic diagnostics reduction.
func (a *WarpX) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "pic-push", Kind: job.Compute,
			Bytes: units.Bytes(nominalStepSeconds * float64(p.MemBW))},
		{Name: "field-halo", Kind: job.Collective, Op: job.Halo, Payload: 4 * units.MiB},
		{Name: "diag-allreduce", Kind: job.Collective, Op: job.Allreduce, Payload: 256 * units.KiB},
	}), nil
}

// Program implements ProgramBuilder: FP32 force kernels plus the
// particle-mesh FFT's all-to-all.
func (a *ExaSky) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	ranks := n * p.DevicesPerNode
	pair := 0.0
	if ranks > 1 {
		// The Poisson-solve transpose moves a mesh sized well below the
		// particle data: ~256 MB per rank split across peers.
		pair = 256e6 / float64(ranks-1)
	}
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "force-kernels", Kind: job.Compute, Precision: gpu.FP32,
			Flops: nominalStepSeconds * float64(p.FP32Dense) * swFactor(a.kernelSW, p)},
		{Name: "pm-fft-a2a", Kind: job.Collective, Op: job.AllToAll, Payload: units.Bytes(pair)},
	}), nil
}

// Program implements ProgramBuilder: embarrassingly parallel SNAP
// replicas — almost pure FP64 compute, with only the tiny ParSplice
// segment hand-off.
func (a *EXAALT) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "snap-md", Kind: job.Compute, Precision: gpu.FP64,
			Flops: nominalStepSeconds * float64(p.FP64Dense) * swFactor(a.snapEff, p), Efficiency: swFactor(a.snapEff, p)},
		{Name: "splice-handoff", Kind: job.Collective, Op: job.SendRecv, Payload: 64 * units.KiB},
	}), nil
}

// Program implements ProgramBuilder: the coupled Monte-Carlo/CFD step —
// both bandwidth bound — with the coupling field exchange between them.
func (a *ExaSMR) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "shift-transport", Kind: job.Compute,
			Bytes: units.Bytes(nominalStepSeconds * float64(p.MemBW))},
		{Name: "coupling-exchange", Kind: job.Collective, Op: job.AllGather, Payload: 2 * units.MiB},
		{Name: "nekrs-solve", Kind: job.Compute,
			Bytes: units.Bytes(nominalStepSeconds * float64(p.MemBW))},
		{Name: "pressure-allreduce", Kind: job.Collective, Op: job.Allreduce, Payload: 512 * units.KiB},
	}), nil
}

// Program implements ProgramBuilder: coupled core-edge gyrokinetics —
// FP32 particle pushes in both codes with the overlap-region field
// exchange between them.
func (a *WDMApp) Program(p *Platform, nodes, iterations int) (*job.Program, error) {
	n := a.nodesFor(p, nodes)
	sw := swFactor(a.codeSW, p)
	return program(a.name, p, n, iterations, []job.Phase{
		{Name: "gene-core-push", Kind: job.Compute, Precision: gpu.FP32,
			Flops: nominalStepSeconds * float64(p.FP32Dense) * sw / 2},
		{Name: "overlap-exchange", Kind: job.Collective, Op: job.AllGather, Payload: 4 * units.MiB},
		{Name: "xgc-edge-push", Kind: job.Compute, Precision: gpu.FP32,
			Flops: nominalStepSeconds * float64(p.FP32Dense) * sw / 2},
	}), nil
}

// ProgramApps returns every application that builds job programs, in
// Table 6 + Table 7 order.
func ProgramApps() []ProgramBuilder {
	return []ProgramBuilder{
		NewCoMet(), NewLSMS(), NewPIConGPU(), NewCholla(), NewGESTS(), NewAthenaPK(),
		NewWarpX(), NewExaSky(), NewEXAALT(), NewExaSMR(), NewWDMApp(),
	}
}

// BuildProgram is the convenience entry campaigns use: resolve an app by
// name and build its program.
func BuildProgram(name string, p *Platform, nodes, iterations int) (*job.Program, error) {
	for _, a := range ProgramApps() {
		if a.Name() == name {
			return a.Program(p, nodes, iterations)
		}
	}
	return nil, fmt.Errorf("apps: no program builder named %q", name)
}
