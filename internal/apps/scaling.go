package apps

import (
	"fmt"
	"sort"
)

// ScalingPoint is one node count of a scaling study.
type ScalingPoint struct {
	Nodes int
	FOM   float64
	// Efficiency is FOM per node relative to the smallest run:
	// 1.0 is ideal scaling, <1 means communication (or other shared
	// resources) is eating the growth.
	Efficiency float64
}

// Scaling runs the app across node counts on one platform and reports
// the scaling curve. Embarrassingly parallel apps (EXAALT) hold
// efficiency ~1.0; all-to-all-bound apps (GESTS) fall off as the job
// spills out of the NIC-bound regime into the tapered global fabric —
// the crossover the dragonfly design trades against cost.
func Scaling(app App, p *Platform, nodeCounts []int) ([]ScalingPoint, error) {
	if len(nodeCounts) == 0 {
		return nil, fmt.Errorf("apps: scaling needs node counts")
	}
	counts := append([]int(nil), nodeCounts...)
	sort.Ints(counts)
	out := make([]ScalingPoint, 0, len(counts))
	var basePerNode float64
	for _, n := range counts {
		r, err := app.Run(p, n)
		if err != nil {
			return nil, fmt.Errorf("apps: %s at %d nodes: %w", app.Name(), n, err)
		}
		perNode := r.FOM / float64(r.Nodes)
		if basePerNode == 0 {
			basePerNode = perNode
		}
		out = append(out, ScalingPoint{
			Nodes:      r.Nodes,
			FOM:        r.FOM,
			Efficiency: perNode / basePerNode,
		})
	}
	return out, nil
}
