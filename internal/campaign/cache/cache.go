// Package cache is the campaign server's content-addressed result
// store. A result key is the SHA-256 of everything the simulation output
// is a function of — canonical machine-spec JSON, root seed, experiment
// id, quick/markdown mode, and code version — so two requests share a
// key exactly when PRs 1–5's determinism contract guarantees them
// byte-identical results. GetOrCompute memoizes on that key with
// singleflight coalescing (N concurrent identical submissions cost one
// simulation), an LRU byte budget, and optional write-through disk
// persistence that survives restarts.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Key addresses one result: the hex SHA-256 of the request's identity.
type Key string

// KeyInputs is everything a cached result is a function of. SpecJSON
// must be the canonical machine.Dump rendering; CodeVersion pins the
// simulator build so a code change never serves stale bytes.
type KeyInputs struct {
	SpecJSON    []byte
	Seed        int64
	Experiment  string
	Quick       bool
	Markdown    bool
	CodeVersion string
}

// ResultKey derives the content address. Fields are length-prefixed
// before hashing so no two distinct input tuples can collide by
// concatenation (e.g. experiment "a" + version "bc" vs "ab" + "c").
func ResultKey(in KeyInputs) Key {
	h := sha256.New()
	var num [8]byte
	writeField := func(b []byte) {
		binary.LittleEndian.PutUint64(num[:], uint64(len(b)))
		h.Write(num[:])
		h.Write(b)
	}
	writeField(in.SpecJSON)
	binary.LittleEndian.PutUint64(num[:], uint64(in.Seed))
	h.Write(num[:])
	writeField([]byte(in.Experiment))
	h.Write([]byte{flag(in.Quick), flag(in.Markdown)})
	writeField([]byte(in.CodeVersion))
	return Key(hex.EncodeToString(h.Sum(nil)))
}

func flag(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Outcome says how GetOrCompute satisfied a request.
type Outcome string

const (
	// Miss: this call ran the computation.
	Miss Outcome = "miss"
	// Hit: the bytes were already in memory (or on disk).
	Hit Outcome = "hit"
	// Coalesced: an identical computation was already in flight and this
	// call waited for its result instead of starting another.
	Coalesced Outcome = "coalesced"
)

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      int64 `json:"hits"`
	DiskHits  int64 `json:"diskHits"` // subset of Hits served from the persistence dir
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
}

type entry struct {
	key   Key
	bytes []byte
}

// call is one in-flight computation other requests coalesce onto.
type call struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// Cache is safe for concurrent use. Computations run outside the lock.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	order   *list.List // front = most recently used; values are *entry
	entries map[Key]*list.Element
	calls   map[Key]*call
	dir     string // "" = memory only
	stats   Stats
}

// New builds a cache bounded to budgetBytes of result bytes (<= 0 means
// unbounded). If dir is non-empty, results are also written there as
// <key> files and misses consult the directory before computing, so a
// restarted server keeps its accumulated campaign.
func New(budgetBytes int64, dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: persistence dir: %w", err)
		}
	}
	return &Cache{
		budget:  budgetBytes,
		order:   list.New(),
		entries: make(map[Key]*list.Element),
		calls:   make(map[Key]*call),
		dir:     dir,
	}, nil
}

// GetOrCompute returns the bytes addressed by key, running compute only
// if no memory entry, disk entry, or in-flight identical computation can
// satisfy the request. The returned slice must not be modified by the
// caller. Errors are not cached: every request that finds no usable
// result gets its own computation attempt.
func (c *Cache) GetOrCompute(key Key, compute func() ([]byte, error)) ([]byte, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		b := el.Value.(*entry).bytes
		c.mu.Unlock()
		return b, Hit, nil
	}
	if cl, ok := c.calls[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-cl.done
		return cl.bytes, Coalesced, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.mu.Unlock()

	outcome := Miss
	if b, ok := c.readDisk(key); ok {
		cl.bytes = b
		outcome = Hit
	} else {
		cl.bytes, cl.err = compute()
	}

	c.mu.Lock()
	delete(c.calls, key)
	switch {
	case cl.err != nil:
		c.stats.Misses++
	case outcome == Hit:
		c.stats.Hits++
		c.stats.DiskHits++
		c.insertLocked(key, cl.bytes, false)
	default:
		c.stats.Misses++
		c.insertLocked(key, cl.bytes, c.dir != "")
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.bytes, outcome, cl.err
}

// Contains reports whether key is resident in memory (it does not touch
// recency or counters, and does not consult disk).
func (c *Cache) Contains(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.used
	s.Budget = c.budget
	return s
}

// insertLocked adds the entry and evicts from the LRU tail until the
// byte budget holds. An entry bigger than the whole budget is served but
// not retained (retaining it would evict everything else for a result
// that can never fit alongside any other). Persistence is write-through
// and best-effort: a failed write leaves the memory entry intact.
func (c *Cache) insertLocked(key Key, b []byte, persist bool) {
	if _, ok := c.entries[key]; ok {
		return
	}
	if persist {
		c.writeDisk(key, b)
	}
	if c.budget > 0 && int64(len(b)) > c.budget {
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, bytes: b})
	c.used += int64(len(b))
	for c.budget > 0 && c.used > c.budget {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*entry)
		c.order.Remove(tail)
		delete(c.entries, e.key)
		c.used -= int64(len(e.bytes))
		c.stats.Evictions++
	}
}

func (c *Cache) path(key Key) string {
	// Keys are hex SHA-256 (filesystem-safe); anything else would be a
	// programming error, but quote defensively anyway.
	name := string(key)
	if len(name) != 64 {
		name = strconv.Quote(name)
	}
	return filepath.Join(c.dir, name)
}

func (c *Cache) readDisk(key Key) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	return b, true
}

// writeDisk persists atomically (tmp + rename) so a crashed write never
// leaves a truncated result a future run would serve.
func (c *Cache) writeDisk(key Key, b []byte) {
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
	}
}
