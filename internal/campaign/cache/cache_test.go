package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"frontiersim/internal/machine"
)

func key(s string) Key {
	return ResultKey(KeyInputs{SpecJSON: []byte(s), Seed: 42, Experiment: "fig6", CodeVersion: "test"})
}

func TestHitMiss(t *testing.T) {
	c, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("result"), nil }

	b, outcome, err := c.GetOrCompute(key("a"), compute)
	if err != nil || string(b) != "result" || outcome != Miss {
		t.Fatalf("first get: %q %v %v, want result/miss/nil", b, outcome, err)
	}
	b, outcome, err = c.GetOrCompute(key("a"), compute)
	if err != nil || string(b) != "result" || outcome != Hit {
		t.Fatalf("second get: %q %v %v, want result/hit/nil", b, outcome, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", s)
	}
}

// TestCoalescing drives N concurrent identical submissions through one
// slow computation: exactly one runs, the rest wait on it. Run under
// -race, this is also the cache's concurrency-safety test.
func TestCoalescing(t *testing.T) {
	c, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var computes atomic.Int64
	started := make(chan struct{})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, outcome, err := c.GetOrCompute(key("shared"), func() ([]byte, error) {
				if computes.Add(1) == 1 {
					close(started)
				}
				<-gate // hold the computation open so the others pile onto it
				return []byte("slow result"), nil
			})
			if err != nil || string(b) != "slow result" {
				t.Errorf("get %d: %q %v", i, b, err)
			}
			outcomes[i] = outcome
		}(i)
	}
	<-started // one computation is in flight; release it
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computation ran %d times for %d identical submissions, want 1", got, n)
	}
	var misses, coalesced, hits int
	for _, o := range outcomes {
		switch o {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		case Hit:
			hits++
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1 (got %d coalesced, %d hits)", misses, coalesced, hits)
	}
	if misses+coalesced+hits != n {
		t.Fatalf("outcomes don't add up: %d+%d+%d != %d", misses, coalesced, hits, n)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(30, "") // room for three 10-byte results
	if err != nil {
		t.Fatal(err)
	}
	val := []byte("0123456789")
	get := func(k string) Outcome {
		_, outcome, err := c.GetOrCompute(key(k), func() ([]byte, error) { return val, nil })
		if err != nil {
			t.Fatal(err)
		}
		return outcome
	}
	get("a")
	get("b")
	get("c")
	if s := c.Stats(); s.Bytes != 30 || s.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 entries / 30 bytes", s)
	}
	get("a") // touch a: now b is least recently used
	get("d") // over budget: evicts b
	if o := get("a"); o != Hit {
		t.Fatalf("a was evicted (outcome %v), want it retained (recently used)", o)
	}
	if o := get("b"); o != Miss {
		t.Fatalf("b outcome %v, want miss (LRU victim)", o)
	}
	s := c.Stats()
	if s.Evictions < 1 {
		t.Fatalf("stats = %+v, want at least one eviction", s)
	}
	if s.Bytes > 30 {
		t.Fatalf("cache holds %d bytes, budget is 30", s.Bytes)
	}
}

func TestOversizedEntryNotRetained(t *testing.T) {
	c, err := New(10, "")
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 100)
	b, outcome, err := c.GetOrCompute(key("big"), func() ([]byte, error) { return big, nil })
	if err != nil || outcome != Miss || len(b) != 100 {
		t.Fatalf("oversized get: %d bytes, %v, %v", len(b), outcome, err)
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized entry was retained: %+v", s)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, err := c.GetOrCompute(key("failing"), func() ([]byte, error) { calls++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("get %d: err = %v, want boom", i, err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed computation ran %d times, want 2 (errors must not be cached)", calls)
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := c1.GetOrCompute(key("persist"), func() ([]byte, error) { return []byte("saved"), nil }); err != nil || outcome != Miss {
		t.Fatalf("initial compute: %v %v", outcome, err)
	}

	// A fresh cache over the same dir serves the result without computing.
	c2, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	b, outcome, err := c2.GetOrCompute(key("persist"), func() ([]byte, error) {
		return nil, errors.New("must not recompute")
	})
	if err != nil || string(b) != "saved" || outcome != Hit {
		t.Fatalf("restart get: %q %v %v, want saved/hit/nil", b, outcome, err)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", s)
	}
}

// TestKeySensitivity pins the content address to its inputs: changing
// any one component — including a single machine.Spec field — changes
// the key, while re-deriving from identical inputs does not.
func TestKeySensitivity(t *testing.T) {
	spec := machine.Frontier()
	specJSON, err := machine.Dump(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := KeyInputs{SpecJSON: specJSON, Seed: 42, Experiment: "fig6", Quick: true, CodeVersion: "v1"}

	if ResultKey(base) != ResultKey(base) {
		t.Fatal("identical inputs produced different keys")
	}

	variant := spec
	variant.Topology.LinkRate /= 2
	variantJSON, err := machine.Dump(variant)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]KeyInputs{
		"spec field": {SpecJSON: variantJSON, Seed: 42, Experiment: "fig6", Quick: true, CodeVersion: "v1"},
		"seed":       {SpecJSON: specJSON, Seed: 43, Experiment: "fig6", Quick: true, CodeVersion: "v1"},
		"experiment": {SpecJSON: specJSON, Seed: 42, Experiment: "fig5", Quick: true, CodeVersion: "v1"},
		"quick":      {SpecJSON: specJSON, Seed: 42, Experiment: "fig6", Quick: false, CodeVersion: "v1"},
		"markdown":   {SpecJSON: specJSON, Seed: 42, Experiment: "fig6", Quick: true, Markdown: true, CodeVersion: "v1"},
		"version":    {SpecJSON: specJSON, Seed: 42, Experiment: "fig6", Quick: true, CodeVersion: "v2"},
	}
	seen := map[Key]string{ResultKey(base): "base"}
	for name, in := range mutations {
		k := ResultKey(in)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %s collided with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyFieldBoundaries pins the length-prefixing: shifting bytes
// between adjacent fields must not collide.
func TestKeyFieldBoundaries(t *testing.T) {
	a := ResultKey(KeyInputs{Experiment: "ab", CodeVersion: "c"})
	b := ResultKey(KeyInputs{Experiment: "a", CodeVersion: "bc"})
	if a == b {
		t.Fatal("field boundary collision between experiment and code version")
	}
}

func BenchmarkGetOrComputeHit(b *testing.B) {
	c, err := New(0, "")
	if err != nil {
		b.Fatal(err)
	}
	k := key("bench")
	payload := make([]byte, 4096)
	c.GetOrCompute(k, func() ([]byte, error) { return payload, nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, outcome, _ := c.GetOrCompute(k, nil); outcome != Hit {
			b.Fatal("expected hit")
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	c, err := New(100, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		k := key(fmt.Sprintf("entry-%d", i))
		c.GetOrCompute(k, func() ([]byte, error) { return []byte("xxxxxxxxxx"), nil })
		c.GetOrCompute(k, nil) // hit; nil compute must not be called
	}
	s := c.Stats()
	if s.Hits != 5 || s.Misses != 5 || s.Entries != 5 || s.Bytes != 50 || s.Budget != 100 {
		t.Fatalf("stats = %+v", s)
	}
}
