package campaign

import (
	"fmt"
	"sync"
	"time"

	"frontiersim/internal/campaign/cache"
	"frontiersim/internal/harness"
)

// jobOutput is what an async job resolves to: the result bytes plus how
// the cache satisfied them.
type jobOutput struct {
	bytes   []byte
	outcome cache.Outcome
}

// job is one asynchronous submission tracked by the store.
type job struct {
	ID         string    `json:"id"`
	Experiment string    `json:"experiment"`
	Machine    string    `json:"machine"`
	Seed       int64     `json:"seed"`
	Quick      bool      `json:"quick"`
	Key        cache.Key `json:"key"`
	Created    time.Time `json:"created"`

	handle *harness.Handle[jobOutput]
}

// jobView is the JSON shape of a job's current state.
type jobView struct {
	ID         string           `json:"id"`
	Experiment string           `json:"experiment"`
	Machine    string           `json:"machine"`
	Seed       int64            `json:"seed"`
	Quick      bool             `json:"quick"`
	Key        cache.Key        `json:"key"`
	Created    time.Time        `json:"created"`
	State      harness.JobState `json:"state"`
	Cache      cache.Outcome    `json:"cache,omitempty"`
	DurationMS float64          `json:"durationMs,omitempty"`
	Error      string           `json:"error,omitempty"`
	Result     string           `json:"result,omitempty"`
}

func (j *job) view(includeResult bool) jobView {
	v := jobView{
		ID: j.ID, Experiment: j.Experiment, Machine: j.Machine,
		Seed: j.Seed, Quick: j.Quick, Key: j.Key, Created: j.Created,
		State: j.handle.State(),
	}
	if d := j.handle.RunDuration(); d > 0 {
		v.DurationMS = float64(d) / float64(time.Millisecond)
	}
	if v.State.Finished() {
		out, err := j.handle.Result()
		if err != nil {
			v.Error = err.Error()
		} else {
			v.Cache = out.outcome
			if includeResult {
				v.Result = string(out.bytes)
			}
		}
	}
	return v
}

// jobStore is the in-memory registry of submissions, newest last.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	byID map[string]*job
	all  []*job
}

func newJobStore() *jobStore {
	return &jobStore{byID: make(map[string]*job)}
}

// nextID mints a monotonically increasing job id.
func (s *jobStore) nextID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return fmt.Sprintf("job-%06d", s.seq)
}

func (s *jobStore) add(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[j.ID] = j
	s.all = append(s.all, j)
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

func (s *jobStore) list() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*job(nil), s.all...)
}
