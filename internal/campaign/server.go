// Package campaign turns frontier-sim into shared infrastructure: a
// long-running HTTP/JSON service that accepts (machine spec | built-in
// name, seed, experiment) jobs, runs them on the harness pool, and
// memoizes every result in a content-addressed cache. Because PRs 1–5
// made each result a pure function of (canonical spec JSON, root seed,
// experiment id, code version), N users submitting the same what-if
// question cost one simulation — concurrent duplicates coalesce onto a
// single in-flight run, later duplicates are cache hits with
// byte-identical bodies. The sweep endpoint fans a range of spec
// variants across the pool for campaign-style studies.
package campaign

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"frontiersim/internal/campaign/cache"
	"frontiersim/internal/experiments"
	"frontiersim/internal/harness"
	"frontiersim/internal/machine"
	"frontiersim/internal/network"
	"frontiersim/internal/sim"
)

// Config sizes a server.
type Config struct {
	// Jobs bounds concurrently running simulations (<=0 means 1).
	Jobs int
	// CacheBytes is the in-memory result budget (<=0 means unbounded).
	CacheBytes int64
	// CacheDir, when set, persists results on disk across restarts.
	CacheDir string
	// CodeVersion overrides the cache key's code-version component
	// (tests pin it; "" means CodeVersion()).
	CodeVersion string
	// MaxSweepVariants caps one sweep's fan-out (<=0 means 256).
	MaxSweepVariants int
	// Shards is the worker count for sharded-kernel experiments inside
	// each simulation (0 or 1 = one worker). The sharded kernel's
	// determinism contract makes results byte-identical at any value, so
	// Shards is a host-sizing knob like Jobs — it deliberately does NOT
	// enter the cache key, and cached results are shared between servers
	// configured with different shard counts.
	Shards int
	// SolutionCacheBytes bounds the shared max-min solver solution cache
	// threaded through every simulation this server runs (<=0 means the
	// network package's 256 MiB default). Unlike the result cache, which
	// deduplicates whole jobs, the solution cache deduplicates individual
	// solves inside them — sweep variants and repeated what-ifs that share
	// a topology and traffic matrix skip straight to stored allocations.
	// Reuse is bit-exact, so it never changes result bytes or cache keys.
	SolutionCacheBytes int64
	// PricingEntries sizes the per-simulation placement-signature pricing
	// cache the campaign experiments attach to their job environment:
	// 0 = unbounded (the default), > 0 caps the LRU, < 0 disables it.
	// Cache hits reproduce cold pricing bit-for-bit, so every campaign
	// statistic is identical at any setting and — like Shards — the knob
	// stays out of the result-cache key. The one informational surface it
	// can move is the reported hit-rate row (a bounded LRU may evict and
	// re-miss), so servers sharing a persistent cache directory should
	// agree on this setting.
	PricingEntries int
}

// Server is the campaign service. Build with New, serve Handler.
type Server struct {
	pool      *harness.Pool
	cache     *cache.Cache
	solutions *network.SolutionCache
	jobs      *jobStore
	version   string
	maxVars   int
	shards    int
	pricing   int
	started   time.Time
}

// New builds a server.
func New(cfg Config) (*Server, error) {
	c, err := cache.New(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	version := cfg.CodeVersion
	if version == "" {
		version = CodeVersion()
	}
	maxVars := cfg.MaxSweepVariants
	if maxVars <= 0 {
		maxVars = 256
	}
	return &Server{
		pool:      harness.NewPool(cfg.Jobs),
		cache:     c,
		solutions: network.NewSolutionCache(cfg.SolutionCacheBytes),
		jobs:      newJobStore(),
		version:   version,
		maxVars:   maxVars,
		shards:    cfg.Shards,
		pricing:   cfg.PricingEntries,
		started:   time.Now(),
	}, nil
}

// Handler returns the HTTP API:
//
//	GET  /healthz              liveness
//	GET  /v1/experiments       experiment registry
//	GET  /v1/machines          built-in machine specs
//	GET  /v1/fields?machine=   sweepable numeric spec fields
//	GET  /v1/stats             cache and job counters
//	POST /v1/run               synchronous run; body = result bytes,
//	                           X-Cache: miss|hit|coalesced, X-Result-Key
//	POST /v1/jobs              asynchronous submit → job id
//	GET  /v1/jobs              job list
//	GET  /v1/jobs/{id}         job state + result
//	GET  /v1/jobs/{id}/events  progress stream (SSE)
//	POST /v1/sweep             fan a numeric-field range across the pool
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/machines", s.handleMachines)
	mux.HandleFunc("GET /v1/fields", s.handleFields)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	return mux
}

// JobRequest is one simulation ask. Machine names a built-in spec; Spec
// carries an inline what-if spec instead (strict JSON, validated) —
// exactly the canonical-spec + root-seed + experiment-id tuple the
// result is a pure function of.
type JobRequest struct {
	Machine    string          `json:"machine,omitempty"`
	Spec       json.RawMessage `json:"spec,omitempty"`
	Experiment string          `json:"experiment"`
	Seed       *int64          `json:"seed,omitempty"` // default 42
	Quick      bool            `json:"quick,omitempty"`
	Markdown   bool            `json:"markdown,omitempty"`
}

// resolved is a JobRequest with the spec materialized and the cache key
// derived.
type resolved struct {
	spec     machine.Spec
	seed     int64
	exp      string
	quick    bool
	markdown bool
	// shards is the server's kernel-worker setting, carried along for
	// options() but excluded from key: shard count never changes result
	// bytes, so including it would only fragment the cache. solutions is
	// the server-wide solver cache, excluded for the same reason — a hit
	// applies bit-exact stored allocations.
	shards    int
	solutions *network.SolutionCache
	// pricing is the server's pricing-cache sizing, excluded from key for
	// the same reason as shards: hits are bit-identical, results never
	// depend on it.
	pricing int
	key     cache.Key
}

func (s *Server) resolve(req JobRequest) (resolved, error) {
	var r resolved
	if req.Experiment == "" {
		return r, fmt.Errorf("request needs an experiment id (GET /v1/experiments lists them)")
	}
	if _, err := experiments.ByID(req.Experiment); err != nil {
		return r, err
	}
	r.exp = req.Experiment
	switch {
	case len(req.Spec) > 0 && req.Machine != "":
		return r, fmt.Errorf("request has both machine %q and an inline spec; pick one", req.Machine)
	case len(req.Spec) > 0:
		dec := json.NewDecoder(bytes.NewReader(req.Spec))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&r.spec); err != nil {
			return r, fmt.Errorf("inline spec: %w", err)
		}
		if err := r.spec.Validate(); err != nil {
			return r, err
		}
	case req.Machine != "":
		spec, err := machine.ByName(req.Machine)
		if err != nil {
			return r, err
		}
		r.spec = spec
	default:
		r.spec = machine.Frontier()
	}
	specJSON, err := machine.Dump(r.spec)
	if err != nil {
		return r, err
	}
	r.seed = experiments.DefaultOptions().Seed
	if req.Seed != nil {
		r.seed = *req.Seed
	}
	r.quick = req.Quick
	r.markdown = req.Markdown
	r.shards = s.shards
	r.solutions = s.solutions
	r.pricing = s.pricing
	r.key = cache.ResultKey(cache.KeyInputs{
		SpecJSON:    specJSON,
		Seed:        r.seed,
		Experiment:  r.exp,
		Quick:       r.quick,
		Markdown:    r.markdown,
		CodeVersion: s.version,
	})
	return r, nil
}

// options builds the experiment options for a resolved request.
func (r resolved) options() experiments.Options {
	spec := r.spec
	return experiments.Options{Quick: r.quick, Seed: r.seed, Machine: &spec,
		Shards: r.shards, Solutions: r.solutions, PricingEntries: r.pricing}
}

// runCached is the one compute path every endpoint shares: at most one
// simulation per key is ever in flight (identical concurrent requests
// coalesce), repeats are served from memory or disk, and the simulation
// itself runs on the bounded pool so a burst of distinct requests
// queues instead of oversubscribing the host. The submission context is
// deliberately not the HTTP request's: once a simulation starts, a
// disconnecting client must not kill the result every coalesced waiter
// — and the cache — is counting on.
func (s *Server) runCached(res resolved, progress func(string)) ([]byte, cache.Outcome, error) {
	return s.cache.GetOrCompute(res.key, func() ([]byte, error) {
		if progress != nil {
			progress("simulating " + res.exp + " on " + res.spec.Name)
		}
		h := harness.Submit(s.pool, context.Background(), res.exp,
			func(_ context.Context, _ func(string)) ([]byte, error) {
				return experiments.Capture(res.exp, res.options(), res.markdown)
			})
		return h.Result()
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type exp struct {
		ID          string  `json:"id"`
		Description string  `json:"description"`
		Cost        float64 `json:"cost"`
	}
	var list []exp
	for _, e := range experiments.Registry() {
		list = append(list, exp{e.ID, e.Description, e.Cost})
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	type mach struct {
		Name  string `json:"name"`
		Year  int    `json:"year"`
		Nodes int    `json:"nodes"`
	}
	var list []mach
	for _, name := range machine.Names() {
		spec, err := machine.ByName(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		list = append(list, mach{spec.Name, spec.Year, spec.Nodes()})
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleFields(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("machine")
	if name == "" {
		name = "frontier"
	}
	spec, err := machine.ByName(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	fields, err := SpecNumericFields(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"machine": spec.Name, "fields": fields})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	counts := map[harness.JobState]int{}
	for _, j := range jobs {
		counts[j.handle.State()]++
	}
	shards := s.shards
	if shards < 1 {
		shards = 1
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cache":     s.cache.Stats(),
		"jobs":      counts,
		"jobsTotal": len(jobs),
		"workers":   s.pool.Workers(),
		// Per-shard executed-event counters from the sharded kernel,
		// accumulated process-wide across every simulation this server
		// has run (flushed at window barriers, so they may trail a run in
		// flight). An even spread means the group-to-shard assignment is
		// balancing work; a lopsided one means a few LPs dominate.
		"sharding": map[string]any{
			"shards":         shards,
			"executedEvents": sim.ShardedExecuted(),
		},
		// The solver solution cache shared across every simulation: hits
		// here are individual max-min solves served from stored
		// allocations (sweep variants and repeated what-ifs sharing a
		// topology), one level below the whole-result cache above.
		"solver":        s.solutions.Stats(),
		"codeVersion":   s.version,
		"uptimeSeconds": time.Since(s.started).Seconds(),
	})
}

// handleRun is the synchronous path: the response body is exactly the
// result bytes (a rendered table), so two identical submissions get
// byte-identical bodies; X-Cache reports miss, hit, or coalesced and
// X-Result-Key the content address.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b, outcome, err := s.runCached(res, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", contentType(res.markdown))
	w.Header().Set("X-Cache", string(outcome))
	w.Header().Set("X-Result-Key", string(res.key))
	w.Write(b)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j := &job{
		ID:         s.jobs.nextID(),
		Experiment: res.exp,
		Machine:    res.spec.Name,
		Seed:       res.seed,
		Quick:      res.quick,
		Key:        res.key,
		Created:    time.Now(),
	}
	// The async job wraps the same cached compute path; its own pool
	// slot is what bounds concurrency, so runCached's inner Submit would
	// deadlock a full pool waiting on itself — call the cache directly.
	j.handle = harness.Submit(s.pool, context.Background(), j.ID,
		func(_ context.Context, progress func(string)) (jobOutput, error) {
			b, outcome, err := s.cache.GetOrCompute(res.key, func() ([]byte, error) {
				progress("simulating " + res.exp + " on " + res.spec.Name)
				return experiments.Capture(res.exp, res.options(), res.markdown)
			})
			if err != nil {
				return jobOutput{}, err
			}
			progress("cache " + string(outcome))
			return jobOutput{bytes: b, outcome: outcome}, nil
		})
	s.jobs.add(j)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.view(false))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view(false)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

// handleJobEvents streams a job's progress as server-sent events and
// closes when the job finishes; late subscribers replay the history.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	cursor := 0
	for {
		evs, next, finished := j.handle.Next(cursor)
		cursor = next
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if finished {
			return
		}
	}
}

// SweepRequest fans one experiment across a numeric-field range.
type SweepRequest struct {
	JobRequest
	// Sweep is the DSL form ("linkRate: 100..200 step 25"); Vary the
	// structured form. Exactly one must be set.
	Sweep string `json:"sweep,omitempty"`
	Vary  *Sweep `json:"vary,omitempty"`
}

// SweepVariant is one point of the range.
type SweepVariant struct {
	Value        float64       `json:"value"`
	Key          cache.Key     `json:"key,omitempty"`
	Cache        cache.Outcome `json:"cache,omitempty"`
	Error        string        `json:"error,omitempty"`
	ResultSHA256 string        `json:"resultSha256,omitempty"`
	Result       string        `json:"result,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var sw Sweep
	switch {
	case req.Sweep != "" && req.Vary != nil:
		writeError(w, http.StatusBadRequest, fmt.Errorf("request has both sweep DSL and vary; pick one"))
		return
	case req.Sweep != "":
		var err error
		if sw, err = ParseSweep(req.Sweep); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.Vary != nil:
		sw = *req.Vary
		if err := sw.check(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf(`sweep request needs "sweep" (DSL) or "vary"`))
		return
	}
	base, err := s.resolve(req.JobRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	values := sw.Values()
	if len(values) > s.maxVars {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sweep %s: %d variants exceeds the per-request cap of %d", sw.Field, len(values), s.maxVars))
		return
	}

	// Fan the variants across the pool as one batch. Per-variant
	// failures (Validate rejecting a zero link rate, a fractional value
	// in an integer field) land in that variant's slot instead of
	// failing the sweep; identical variants across sweeps still share
	// cache entries because each one keys on its own canonical spec.
	variants := make([]SweepVariant, len(values))
	tasks := make([]harness.Task[struct{}], len(values))
	for i, v := range values {
		i, v := i, v
		variants[i].Value = v
		tasks[i] = harness.Task[struct{}]{
			ID: fmt.Sprintf("%s=%v", sw.Field, v),
			Run: func(context.Context, int64) (struct{}, error) {
				variants[i] = s.sweepVariant(req.JobRequest, sw, v)
				return struct{}{}, nil
			},
		}
	}
	if _, err := harness.Run(r.Context(), harness.Config{Jobs: s.pool.Workers(), RootSeed: base.seed}, tasks, nil); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	distinct := map[string]bool{}
	for _, v := range variants {
		if v.ResultSHA256 != "" {
			distinct[v.ResultSHA256] = true
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"experiment":      base.exp,
		"field":           sw.Field,
		"seed":            base.seed,
		"variants":        variants,
		"count":           len(variants),
		"distinctResults": len(distinct),
	})
}

// sweepVariant materializes and runs one point of a sweep.
func (s *Server) sweepVariant(base JobRequest, sw Sweep, v float64) SweepVariant {
	out := SweepVariant{Value: v}
	fail := func(err error) SweepVariant {
		out.Error = err.Error()
		return out
	}
	baseRes, err := s.resolve(base)
	if err != nil {
		return fail(err)
	}
	spec, err := sw.Apply(baseRes.spec, v)
	if err != nil {
		return fail(err)
	}
	vreq := base
	vreq.Machine = ""
	if vreq.Spec, err = machine.Dump(spec); err != nil {
		return fail(err)
	}
	res, err := s.resolve(vreq)
	if err != nil {
		return fail(err)
	}
	b, outcome, err := s.cache.GetOrCompute(res.key, func() ([]byte, error) {
		return experiments.Capture(res.exp, res.options(), res.markdown)
	})
	if err != nil {
		return fail(err)
	}
	out.Key = res.key
	out.Cache = outcome
	out.ResultSHA256 = sha256Hex(b)
	out.Result = string(b)
	return out
}

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func contentType(markdown bool) string {
	if markdown {
		return "text/markdown; charset=utf-8"
	}
	return "text/plain; charset=utf-8"
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
