package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"frontiersim/internal/experiments"
	"frontiersim/internal/machine"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Jobs: 2, CodeVersion: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, r io.Reader) []byte {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunTwiceIsCacheHit is the acceptance criterion in miniature: two
// identical submissions cost one simulation and return byte-identical
// bodies, the second marked as a cache hit.
func TestRunTwiceIsCacheHit(t *testing.T) {
	srv, ts := newTestServer(t)
	req := `{"experiment":"table2","machine":"frontier","seed":42,"quick":true}`

	r1 := post(t, ts.URL+"/v1/run", req)
	body1 := readAll(t, r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", r1.StatusCode, body1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first run X-Cache = %q, want miss", got)
	}

	r2 := post(t, ts.URL+"/v1/run", req)
	body2 := readAll(t, r2.Body)
	r2.Body.Close()
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second run X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("identical submissions returned different bodies")
	}
	if r1.Header.Get("X-Result-Key") != r2.Header.Get("X-Result-Key") {
		t.Fatal("identical submissions got different result keys")
	}
	if s := srv.cache.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss + 1 hit", s)
	}

	// The body is exactly what the CLI would print for the same root
	// seed: the server derives the per-experiment seed the same way.
	spec := machine.Frontier()
	want, err := experiments.Capture("table2", experiments.Options{Quick: true, Seed: 42, Machine: &spec}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, want) {
		t.Fatal("server body differs from direct Capture output")
	}
}

func TestRunDistinguishesSeeds(t *testing.T) {
	_, ts := newTestServer(t)
	get := func(seed int) *http.Response {
		return post(t, ts.URL+"/v1/run", fmt.Sprintf(`{"experiment":"sec54","seed":%d,"quick":true}`, seed))
	}
	r1 := get(1)
	defer r1.Body.Close()
	r2 := get(2)
	defer r2.Body.Close()
	if r1.Header.Get("X-Result-Key") == r2.Header.Get("X-Result-Key") {
		t.Fatal("different seeds produced the same result key")
	}
	if r2.Header.Get("X-Cache") != "miss" {
		t.Fatalf("different seed X-Cache = %q, want miss", r2.Header.Get("X-Cache"))
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown experiment", `{"experiment":"fig99"}`, "unknown id"},
		{"missing experiment", `{"machine":"frontier"}`, "needs an experiment"},
		{"unknown machine", `{"experiment":"table2","machine":"roadrunner"}`, "unknown machine"},
		{"both machine and spec", `{"experiment":"table2","machine":"frontier","spec":{"name":"x"}}`, "pick one"},
		{"unknown request field", `{"experiment":"table2","turbo":true}`, "turbo"},
		{"invalid inline spec", `{"experiment":"table2","spec":{"name":"x","topology":{"kind":"mobius"}}}`, "mobius"},
	}
	for _, c := range cases {
		resp := post(t, ts.URL+"/v1/run", c.body)
		body := readAll(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		if !strings.Contains(string(body), c.wantErr) {
			t.Errorf("%s: body %q, want containing %q", c.name, body, c.wantErr)
		}
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts.URL+"/v1/jobs", `{"experiment":"table2","quick":true}`)
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Key   string `json:"key"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" || submitted.Key == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, submitted)
	}

	// The events stream terminates when the job does and carries the
	// cache outcome in its progress messages.
	evResp, err := http.Get(ts.URL + "/v1/jobs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			lines = append(lines, strings.TrimPrefix(line, "data: "))
		}
	}
	if len(lines) < 3 {
		t.Fatalf("event stream had %d events, want >= 3 (queued, running, done): %v", len(lines), lines)
	}
	var last struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.State != "done" {
		t.Fatalf("final event state = %q, want done", last.State)
	}

	// The job view now carries the result.
	jResp, err := http.Get(ts.URL + "/v1/jobs/" + submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		State  string `json:"state"`
		Cache  string `json:"cache"`
		Result string `json:"result"`
	}
	if err := json.NewDecoder(jResp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	jResp.Body.Close()
	if view.State != "done" || view.Result == "" {
		t.Fatalf("job view = %+v, want done with a result", view)
	}
	if view.Cache != "miss" && view.Cache != "hit" && view.Cache != "coalesced" {
		t.Fatalf("job cache outcome = %q", view.Cache)
	}

	// Unknown job ids 404.
	nf, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", nf.StatusCode)
	}
}

// TestSweep fans table1 across three node-count variants: three
// distinct machines must produce three distinct results, and repeating
// the sweep must be all cache hits.
func TestSweep(t *testing.T) {
	srv, ts := newTestServer(t)
	req := `{"experiment":"table1","quick":true,"sweep":"computeGroups: 60..74 step 7"}`

	var sweepResp struct {
		Count           int            `json:"count"`
		DistinctResults int            `json:"distinctResults"`
		Variants        []SweepVariant `json:"variants"`
	}
	resp := post(t, ts.URL+"/v1/sweep", req)
	body := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sweepResp); err != nil {
		t.Fatal(err)
	}
	if sweepResp.Count != 3 || len(sweepResp.Variants) != 3 {
		t.Fatalf("sweep returned %d variants, want 3: %s", sweepResp.Count, body)
	}
	if sweepResp.DistinctResults != 3 {
		t.Fatalf("sweep distinctResults = %d, want 3", sweepResp.DistinctResults)
	}
	keys := map[string]bool{}
	for i, v := range sweepResp.Variants {
		if v.Error != "" {
			t.Fatalf("variant %d (%v): %s", i, v.Value, v.Error)
		}
		if v.Result == "" || v.ResultSHA256 == "" {
			t.Fatalf("variant %d missing result", i)
		}
		keys[string(v.Key)] = true
	}
	if len(keys) != 3 {
		t.Fatalf("sweep produced %d distinct keys, want 3", len(keys))
	}

	// Second identical sweep: all three served from cache.
	resp2 := post(t, ts.URL+"/v1/sweep", req)
	body2 := readAll(t, resp2.Body)
	resp2.Body.Close()
	if err := json.Unmarshal(body2, &sweepResp); err != nil {
		t.Fatal(err)
	}
	for i, v := range sweepResp.Variants {
		if v.Cache != "hit" {
			t.Fatalf("repeat sweep variant %d cache = %q, want hit", i, v.Cache)
		}
	}
	if s := srv.cache.Stats(); s.Misses != 3 || s.Hits != 3 {
		t.Fatalf("cache stats after two sweeps = %+v, want 3 misses + 3 hits", s)
	}
}

func TestSweepPerVariantErrors(t *testing.T) {
	_, ts := newTestServer(t)
	// linkRate 0 fails Validate for that variant only; the other value
	// is fine.
	req := `{"experiment":"table2","quick":true,"vary":{"field":"linkRate","from":0,"to":2.5e10,"step":2.5e10}}`
	resp := post(t, ts.URL+"/v1/sweep", req)
	body := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sweepResp struct {
		Variants []SweepVariant `json:"variants"`
	}
	if err := json.Unmarshal(body, &sweepResp); err != nil {
		t.Fatal(err)
	}
	if len(sweepResp.Variants) != 2 {
		t.Fatalf("got %d variants, want 2", len(sweepResp.Variants))
	}
	if sweepResp.Variants[0].Error == "" || !strings.Contains(sweepResp.Variants[0].Error, "link rate") {
		t.Fatalf("variant 0 error = %q, want link-rate validation failure", sweepResp.Variants[0].Error)
	}
	if sweepResp.Variants[1].Error != "" || sweepResp.Variants[1].Result == "" {
		t.Fatalf("variant 1 = %+v, want a clean result", sweepResp.Variants[1])
	}
}

func TestSweepCap(t *testing.T) {
	srv, err := New(Config{Jobs: 1, CodeVersion: "test", MaxSweepVariants: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := post(t, ts.URL+"/v1/sweep", `{"experiment":"table2","sweep":"linkRate: 1..100 step 1"}`)
	body := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "cap") {
		t.Fatalf("oversized sweep: %d %s, want 400 with cap error", resp.StatusCode, body)
	}
}

func TestInfoEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/healthz", "/v1/experiments", "/v1/machines", "/v1/fields", "/v1/stats", "/v1/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d %s", path, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/fields?machine=frontier")
	if err != nil {
		t.Fatal(err)
	}
	var fields struct {
		Machine string   `json:"machine"`
		Fields  []string `json:"fields"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fields); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, f := range fields.Fields {
		if f == "topology.linkRate" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fields = %v, want topology.linkRate present", fields.Fields)
	}
}

// TestConcurrentIdenticalRuns pins the singleflight property end to
// end: a burst of identical HTTP submissions costs exactly one
// simulation.
func TestConcurrentIdenticalRuns(t *testing.T) {
	srv, ts := newTestServer(t)
	const n = 8
	req := `{"experiment":"sec54","seed":7,"quick":true}`
	bodies := make([][]byte, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(req))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			bodies[i], err = io.ReadAll(resp.Body)
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d: %s", resp.StatusCode, bodies[i])
			}
			errs <- err
		}(i)
	}
	deadline := time.After(60 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("timed out waiting for concurrent runs")
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("concurrent identical submissions diverged at %d", i)
		}
	}
	if s := srv.cache.Stats(); s.Misses != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 miss for %d identical submissions", s, n)
	}
}

// TestStatsReportsSharding pins the /v1/stats "sharding" section: the
// configured shard count plus the process-wide per-shard executed-event
// counters, which go live once a sharded-kernel experiment has run.
func TestStatsReportsSharding(t *testing.T) {
	srv, err := New(Config{Jobs: 2, CodeVersion: "test", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := post(t, ts.URL+"/v1/run", `{"experiment":"ext-sharded","seed":42,"quick":true}`)
	body := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ext-sharded run: %d %s", resp.StatusCode, body)
	}

	stats, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Sharding struct {
			Shards         int      `json:"shards"`
			ExecutedEvents []uint64 `json:"executedEvents"`
		} `json:"sharding"`
	}
	if err := json.NewDecoder(stats.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	stats.Body.Close()
	if got.Sharding.Shards != 4 {
		t.Errorf("sharding.shards = %d, want 4", got.Sharding.Shards)
	}
	var total uint64
	for _, n := range got.Sharding.ExecutedEvents {
		total += n
	}
	if total == 0 {
		t.Errorf("sharding.executedEvents all zero after a sharded run: %v", got.Sharding.ExecutedEvents)
	}
}

// TestShardsExcludedFromCacheKey pins the cache-sharing contract:
// servers configured with different shard counts derive the same result
// key for the same request (results are shard-invariant, so a shard-
// dependent key would only fragment the cache) and serve byte-identical
// bodies.
func TestShardsExcludedFromCacheKey(t *testing.T) {
	req := JobRequest{Experiment: "ext-sharded", Quick: true}
	var keys []string
	var bodies [][]byte
	for _, shards := range []int{1, 8} {
		srv, err := New(Config{Jobs: 2, CodeVersion: "test", Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		res, err := srv.resolve(req)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, string(res.key))
		b, _, err := srv.runCached(res, nil)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
	}
	if keys[0] != keys[1] {
		t.Errorf("cache keys differ across shard configs: %s vs %s", keys[0], keys[1])
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("result bodies differ between shards=1 and shards=8 servers")
	}
}
