package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"frontiersim/internal/machine"
)

// Sweep varies one numeric machine.Spec field over an inclusive range:
// the what-if axis of a campaign. The textual DSL form is
//
//	linkRate: 100..200 step 25
//
// where the field is a dotted JSON path into the spec
// ("topology.linkRate") or, when unambiguous, just the leaf field name
// ("linkRate"). Values are in the spec's own base units (bytes/second,
// seconds, counts).
type Sweep struct {
	Field string  `json:"field"`
	From  float64 `json:"from"`
	To    float64 `json:"to"`
	Step  float64 `json:"step"`
}

// ParseSweep reads the DSL form "<field>: <from>..<to> step <step>".
func ParseSweep(s string) (Sweep, error) {
	var sw Sweep
	field, rng, ok := strings.Cut(s, ":")
	if !ok {
		return sw, fmt.Errorf("sweep %q: want \"<field>: <from>..<to> step <step>\"", s)
	}
	sw.Field = strings.TrimSpace(field)
	if sw.Field == "" {
		return sw, fmt.Errorf("sweep %q: empty field name", s)
	}
	span, stepStr, ok := strings.Cut(rng, "step")
	if !ok {
		return sw, fmt.Errorf("sweep %q: missing \"step <n>\"", s)
	}
	fromStr, toStr, ok := strings.Cut(span, "..")
	if !ok {
		return sw, fmt.Errorf("sweep %q: range wants \"<from>..<to>\"", s)
	}
	var err error
	if sw.From, err = strconv.ParseFloat(strings.TrimSpace(fromStr), 64); err != nil {
		return sw, fmt.Errorf("sweep %q: bad from value %q", s, strings.TrimSpace(fromStr))
	}
	if sw.To, err = strconv.ParseFloat(strings.TrimSpace(toStr), 64); err != nil {
		return sw, fmt.Errorf("sweep %q: bad to value %q", s, strings.TrimSpace(toStr))
	}
	if sw.Step, err = strconv.ParseFloat(strings.TrimSpace(stepStr), 64); err != nil {
		return sw, fmt.Errorf("sweep %q: bad step value %q", s, strings.TrimSpace(stepStr))
	}
	return sw, sw.check()
}

func (sw Sweep) check() error {
	if sw.Field == "" {
		return fmt.Errorf("sweep: empty field name")
	}
	if sw.Step <= 0 {
		return fmt.Errorf("sweep %s: step must be positive (got %v)", sw.Field, sw.Step)
	}
	if sw.To < sw.From {
		return fmt.Errorf("sweep %s: to %v is below from %v", sw.Field, sw.To, sw.From)
	}
	return nil
}

// Values expands the inclusive range. A small tolerance keeps the upper
// bound included when repeated float addition lands epsilon past it.
func (sw Sweep) Values() []float64 {
	if sw.check() != nil {
		return nil
	}
	var vs []float64
	tol := sw.Step * 1e-9
	for v := sw.From; v <= sw.To+tol; v += sw.Step {
		vs = append(vs, v)
	}
	return vs
}

// Apply returns a copy of spec with the sweep field set to v, validated.
// It works on the spec's canonical JSON so "any numeric Spec field" is
// literally any numeric leaf of the JSON document: the mutated document
// is strict-decoded back into a Spec (unknown fields rejected, 150.5
// into an int field rejected) and Spec.Validate gives the per-variant
// error when a value is out of range.
func (sw Sweep) Apply(spec machine.Spec, v float64) (machine.Spec, error) {
	b, err := machine.Dump(spec)
	if err != nil {
		return machine.Spec{}, err
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		return machine.Spec{}, fmt.Errorf("sweep: re-reading spec %s: %w", spec.Name, err)
	}
	path, err := resolveFieldPath(doc, sw.Field)
	if err != nil {
		return machine.Spec{}, err
	}
	if err := setNumeric(doc, path, v); err != nil {
		return machine.Spec{}, err
	}
	mut, err := json.Marshal(doc)
	if err != nil {
		return machine.Spec{}, fmt.Errorf("sweep: re-encoding spec %s: %w", spec.Name, err)
	}
	dec := json.NewDecoder(bytes.NewReader(mut))
	dec.DisallowUnknownFields()
	var out machine.Spec
	if err := dec.Decode(&out); err != nil {
		return machine.Spec{}, fmt.Errorf("sweep %s = %v: %w", strings.Join(path, "."), v, err)
	}
	if err := out.Validate(); err != nil {
		return machine.Spec{}, fmt.Errorf("sweep %s = %v: %w", strings.Join(path, "."), v, err)
	}
	return out, nil
}

// resolveFieldPath turns the DSL field into a concrete path: a dotted
// path is followed literally; a bare leaf name is searched for across
// the whole document and must match exactly one numeric leaf.
func resolveFieldPath(doc map[string]any, field string) ([]string, error) {
	if strings.Contains(field, ".") {
		path := strings.Split(field, ".")
		if err := checkNumericAt(doc, path); err != nil {
			return nil, err
		}
		return path, nil
	}
	var matches [][]string
	findNumericLeaves(doc, nil, func(path []string, _ float64) {
		if strings.EqualFold(path[len(path)-1], field) {
			matches = append(matches, append([]string(nil), path...))
		}
	})
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return nil, fmt.Errorf("sweep: no numeric spec field named %q (numeric fields: %s)",
			field, strings.Join(NumericFields(doc), ", "))
	default:
		var opts []string
		for _, m := range matches {
			opts = append(opts, strings.Join(m, "."))
		}
		return nil, fmt.Errorf("sweep: field %q is ambiguous — use a dotted path: %s", field, strings.Join(opts, ", "))
	}
}

func checkNumericAt(doc map[string]any, path []string) error {
	cur := any(doc)
	for i, seg := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			return fmt.Errorf("sweep: %s is not an object", strings.Join(path[:i], "."))
		}
		cur, ok = lookup(m, seg)
		if !ok {
			return fmt.Errorf("sweep: spec has no field %q (numeric fields: %s)",
				strings.Join(path[:i+1], "."), strings.Join(NumericFields(doc), ", "))
		}
	}
	if _, ok := cur.(float64); !ok {
		return fmt.Errorf("sweep: field %q is not numeric", strings.Join(path, "."))
	}
	return nil
}

// lookup finds a key case-insensitively (exact match wins).
func lookup(m map[string]any, key string) (any, bool) {
	if v, ok := m[key]; ok {
		return v, true
	}
	for k, v := range m {
		if strings.EqualFold(k, key) {
			return v, true
		}
	}
	return nil, false
}

func setNumeric(doc map[string]any, path []string, v float64) error {
	cur := doc
	for _, seg := range path[:len(path)-1] {
		next, ok := lookup(cur, seg)
		if !ok {
			return fmt.Errorf("sweep: spec has no field %q", strings.Join(path, "."))
		}
		cur, ok = next.(map[string]any)
		if !ok {
			return fmt.Errorf("sweep: %s is not an object", seg)
		}
	}
	leaf := path[len(path)-1]
	key := leaf
	if _, ok := cur[key]; !ok {
		for k := range cur {
			if strings.EqualFold(k, leaf) {
				key = k
				break
			}
		}
	}
	cur[key] = v
	return nil
}

// findNumericLeaves walks the document depth-first, visiting every
// numeric leaf with its dotted path. Arrays are skipped: sweeping inside
// a failure-class list has no stable address.
func findNumericLeaves(v any, path []string, visit func(path []string, val float64)) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			findNumericLeaves(child, append(path, k), visit)
		}
	case float64:
		if len(path) > 0 {
			visit(path, t)
		}
	}
}

// NumericFields lists every sweepable (numeric) dotted path in the
// document, sorted — the vocabulary error messages offer back to the
// caller.
func NumericFields(doc map[string]any) []string {
	var fields []string
	findNumericLeaves(doc, nil, func(path []string, _ float64) {
		fields = append(fields, strings.Join(path, "."))
	})
	sort.Strings(fields)
	return fields
}

// SpecNumericFields lists the sweepable paths of a spec.
func SpecNumericFields(spec machine.Spec) ([]string, error) {
	b, err := machine.Dump(spec)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, err
	}
	return NumericFields(doc), nil
}
