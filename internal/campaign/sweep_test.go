package campaign

import (
	"math"
	"strings"
	"testing"

	"frontiersim/internal/machine"
)

func TestParseSweep(t *testing.T) {
	cases := []struct {
		in      string
		want    Sweep
		wantErr string
	}{
		{in: "linkRate: 100..200 step 25", want: Sweep{Field: "linkRate", From: 100, To: 200, Step: 25}},
		{in: "topology.linkRate: 1.25e10..2.5e10 step 6.25e9", want: Sweep{Field: "topology.linkRate", From: 1.25e10, To: 2.5e10, Step: 6.25e9}},
		{in: " endpointEfficiency : 0.5..0.9 step 0.2 ", want: Sweep{Field: "endpointEfficiency", From: 0.5, To: 0.9, Step: 0.2}},
		{in: "no colon here", wantErr: "want"},
		{in: "f: 1..2", wantErr: "step"},
		{in: "f: 1to2 step 1", wantErr: "range"},
		{in: "f: x..2 step 1", wantErr: "bad from"},
		{in: "f: 1..y step 1", wantErr: "bad to"},
		{in: "f: 1..2 step z", wantErr: "bad step"},
		{in: "f: 1..2 step 0", wantErr: "step must be positive"},
		{in: "f: 1..2 step -1", wantErr: "step must be positive"},
		{in: "f: 5..2 step 1", wantErr: "below from"},
		{in: ": 1..2 step 1", wantErr: "empty field"},
	}
	for _, c := range cases {
		got, err := ParseSweep(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSweep(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSweep(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSweep(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestSweepValues(t *testing.T) {
	cases := []struct {
		sw   Sweep
		want []float64
	}{
		{Sweep{Field: "f", From: 100, To: 200, Step: 25}, []float64{100, 125, 150, 175, 200}},
		{Sweep{Field: "f", From: 1, To: 1, Step: 1}, []float64{1}},
		{Sweep{Field: "f", From: 0.1, To: 0.3, Step: 0.1}, []float64{0.1, 0.2, 0.3}}, // fp accumulation must not drop the bound
		{Sweep{Field: "f", From: 1, To: 2.5, Step: 1}, []float64{1, 2}},
	}
	for _, c := range cases {
		got := c.sw.Values()
		if len(got) != len(c.want) {
			t.Errorf("%+v.Values() = %v, want %v", c.sw, got, c.want)
			continue
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-9*math.Max(1, math.Abs(c.want[i])) {
				t.Errorf("%+v.Values()[%d] = %v, want %v", c.sw, i, got[i], c.want[i])
			}
		}
	}
}

func TestSweepApply(t *testing.T) {
	spec := machine.Frontier()
	half := float64(spec.Topology.LinkRate) / 2

	// Bare leaf name resolves to the unique numeric field.
	sw := Sweep{Field: "linkRate", From: half, To: half, Step: 1}
	got, err := sw.Apply(spec, half)
	if err != nil {
		t.Fatal(err)
	}
	if float64(got.Topology.LinkRate) != half {
		t.Fatalf("linkRate = %v, want %v", got.Topology.LinkRate, half)
	}
	if got.Name != spec.Name || got.Nodes() != spec.Nodes() {
		t.Fatal("Apply must only change the swept field")
	}
	// The original is untouched.
	if spec.Topology.LinkRate == got.Topology.LinkRate {
		t.Fatal("Apply mutated its input spec")
	}

	// Dotted path form.
	if _, err := (Sweep{Field: "topology.linkRate"}).Apply(spec, half); err != nil {
		t.Fatalf("dotted path: %v", err)
	}

	// Integer fields accept integral values and reject fractional ones.
	if got, err := (Sweep{Field: "computeGroups"}).Apply(spec, 37); err != nil || got.Topology.ComputeGroups != 37 {
		t.Fatalf("computeGroups=37: %v (groups=%d)", err, got.Topology.ComputeGroups)
	}
	if _, err := (Sweep{Field: "computeGroups"}).Apply(spec, 37.5); err == nil {
		t.Fatal("fractional value into an integer field must fail")
	}

	// Out-of-range values surface Validate's error, naming the field.
	if _, err := (Sweep{Field: "linkRate"}).Apply(spec, 0); err == nil || !strings.Contains(err.Error(), "link rate") {
		t.Fatalf("linkRate=0 err = %v, want a link-rate validation error", err)
	}

	// Unknown fields name the vocabulary.
	_, err = (Sweep{Field: "warpDrive"}).Apply(spec, 1)
	if err == nil || !strings.Contains(err.Error(), "numeric fields") {
		t.Fatalf("unknown field err = %v, want the numeric-field vocabulary", err)
	}

	// Ambiguous bare names are rejected with the candidate paths.
	_, err = (Sweep{Field: "devicesPerNode"}).Apply(spec, 4)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous field err = %v, want ambiguity error", err)
	}

	// Non-numeric fields are rejected.
	_, err = (Sweep{Field: "topology.kind"}).Apply(spec, 1)
	if err == nil || !strings.Contains(err.Error(), "not numeric") {
		t.Fatalf("non-numeric field err = %v", err)
	}
}

func TestSpecNumericFields(t *testing.T) {
	fields, err := SpecNumericFields(machine.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"topology.linkRate", "topology.computeGroups", "node.memBW", "hpl.hbmPerGCD"}
	have := map[string]bool{}
	for _, f := range fields {
		have[f] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("SpecNumericFields missing %q (got %d fields)", w, len(fields))
		}
	}
	for i := 1; i < len(fields); i++ {
		if fields[i-1] > fields[i] {
			t.Fatalf("fields not sorted: %q before %q", fields[i-1], fields[i])
		}
	}
}
