package campaign

import "runtime/debug"

// CodeVersion identifies the simulator build for cache keying: results
// are pure functions of (spec, seed, experiment, code), so a new build
// must never serve bytes computed by an old one. Prefer the embedded VCS
// revision; a locally-modified tree gets a "-dirty" suffix (such builds
// only ever hit their own cache entries); fall back to "dev" when build
// info is unavailable (go run, some test binaries).
func CodeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev == "" {
		return "dev"
	}
	return rev + modified
}
