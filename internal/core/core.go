// Package core composes the subsystem models into whole machines: the
// full Frontier system (nodes, Slingshot fabric, scheduler, fabric
// manager, Orion and node-local storage, power and reliability models)
// plus the Summit comparison system, and derives the aggregate
// specifications of the paper's Table 1.
package core

import (
	"fmt"

	"frontiersim/internal/fabric"
	"frontiersim/internal/gpu"
	"frontiersim/internal/hpl"
	"frontiersim/internal/node"
	"frontiersim/internal/power"
	"frontiersim/internal/resilience"
	"frontiersim/internal/scheduler"
	"frontiersim/internal/sim"
	"frontiersim/internal/storage"
	"frontiersim/internal/sysmgmt"
	"frontiersim/internal/units"
)

// System is a composed machine.
type System struct {
	Name   string
	Kernel *sim.Kernel
	Fabric *fabric.Fabric
	// Node is the compute-node template (all nodes are identical); nil
	// for baseline systems modelled at lower fidelity.
	Node *node.Node
	// Scheduler is the Slurm model over the fabric's compute nodes.
	Scheduler *scheduler.Scheduler
	// FabricManager sweeps the fabric for failures.
	FabricManager *fabric.Manager
	// Orion is the center-wide file system; NodeLocal the per-node NVMe.
	Orion     *storage.Orion
	NodeLocal *storage.NodeLocalStore
	// HPCM is the system-management plane (§3.4.2).
	HPCM *sysmgmt.HPCM
	// Power and Reliability carry the §5 models.
	Power       power.Machine
	Reliability resilience.Model
	// HPLSpec drives the TOP500 benchmark models.
	HPLSpec hpl.MachineSpec
}

// NewFrontier builds the full 9,472-node Frontier system. The build is
// cheap enough (tens of milliseconds) to use per experiment.
func NewFrontier(seed int64) (*System, error) {
	return newFrontierWithConfig(fabric.FrontierConfig(), seed)
}

// NewScaledFrontier builds a structurally faithful small Frontier for
// fast tests: groups × switchesPerGroup × endpointsPerSwitch.
func NewScaledFrontier(groups, switchesPerGroup, endpointsPerSwitch int, seed int64) (*System, error) {
	return newFrontierWithConfig(fabric.ScaledConfig(groups, switchesPerGroup, endpointsPerSwitch), seed)
}

func newFrontierWithConfig(cfg fabric.Config, seed int64) (*System, error) {
	k := sim.NewKernel(seed)
	f, err := fabric.NewDragonfly(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: building fabric: %w", err)
	}
	s := &System{
		Name:          "frontier",
		Kernel:        k,
		Fabric:        f,
		Node:          node.New(0),
		Scheduler:     scheduler.New(k, f),
		FabricManager: fabric.NewManager(f, 30),
		Orion:         storage.NewOrion(),
		NodeLocal:     storage.NewNodeLocalStore(),
		Power:         power.Frontier(),
		Reliability:   resilience.Frontier(),
		HPLSpec:       hpl.FrontierSpec(),
	}
	s.HPLSpec.Nodes = cfg.ComputeNodes()
	s.Power.Nodes = cfg.ComputeNodes()
	mgmtCfg := sysmgmt.DefaultConfig()
	mgmtCfg.ComputeNodes = cfg.ComputeNodes()
	hpcm, err := sysmgmt.New(k, mgmtCfg)
	if err != nil {
		return nil, fmt.Errorf("core: building management plane: %w", err)
	}
	s.HPCM = hpcm
	return s, nil
}

// NewSummit builds the Summit comparison system: a Clos fabric of 4,608
// nodes. Node-level detail beyond what the comparisons need (per-NIC
// rates, fat-tree behaviour) is not modelled.
func NewSummit(seed int64) (*System, error) {
	k := sim.NewKernel(seed)
	f, err := fabric.NewClos(fabric.SummitClosConfig())
	if err != nil {
		return nil, fmt.Errorf("core: building summit fabric: %w", err)
	}
	return &System{
		Name:    "summit",
		Kernel:  k,
		Fabric:  f,
		HPLSpec: summitHPLSpec(),
	}, nil
}

func summitHPLSpec() hpl.MachineSpec {
	return hpl.MachineSpec{
		Nodes:             4608,
		GCDsPerNode:       6,
		VectorFP64PerGCD:  7.8 * units.TeraFlops,
		HBMPerGCD:         900 * units.GBps,
		HBMCapacityPerGCD: 16 * units.GiB,
	}
}

// ComputeSpecs are the aggregate figures of the paper's Table 1.
type ComputeSpecs struct {
	Nodes int
	// FP64VectorPeak is the machine vector FP64 peak (1.83 EF);
	// FP64DGEMM is the matrix-pipe DGEMM rate hipBLAS can reach (the
	// paper's table quotes 2.0 EF, between the two).
	FP64VectorPeak   units.Flops
	FP64DGEMM        units.Flops
	DDRCapacity      units.Bytes
	DDRBandwidth     units.BytesPerSecond
	HBMCapacity      units.Bytes
	HBMBandwidth     units.BytesPerSecond
	InjectionPerNode units.BytesPerSecond
	GlobalBandwidth  units.BytesPerSecond
}

// ComputeSpecs derives Table 1 from the composed models.
func (s *System) ComputeSpecs() ComputeSpecs {
	if s.Node == nil {
		return ComputeSpecs{Nodes: s.HPLSpec.Nodes}
	}
	n := units.Bytes(s.Fabric.Cfg.ComputeNodes())
	nf := float64(s.Fabric.Cfg.ComputeNodes())
	gemm := 0.0
	for _, g := range s.Node.GCDs {
		gemm += float64(g.GemmAsymptote(gpu.FP64))
	}
	return ComputeSpecs{
		Nodes:            int(nf),
		FP64VectorPeak:   units.Flops(nf * float64(s.Node.PeakFP64())),
		FP64DGEMM:        units.Flops(nf * gemm),
		DDRCapacity:      n * s.Node.DDRCapacity(),
		DDRBandwidth:     units.BytesPerSecond(nf * float64(s.Node.CPU.DRAM.Peak())),
		HBMCapacity:      n * s.Node.HBMCapacity(),
		HBMBandwidth:     units.BytesPerSecond(nf * float64(s.Node.HBMPeak())),
		InjectionPerNode: s.Node.InjectionBandwidth(),
		GlobalBandwidth:  s.Fabric.Cfg.TotalGlobalBandwidth(),
	}
}

// String summarises the system.
func (s *System) String() string {
	return fmt.Sprintf("%s: %d nodes on %s", s.Name, s.Fabric.Cfg.ComputeNodes(), s.Fabric)
}
