// Package core composes the subsystem models into whole machines: the
// full Frontier system (nodes, Slingshot fabric, scheduler, fabric
// manager, Orion and node-local storage, power and reliability models)
// plus the Summit comparison system, and derives the aggregate
// specifications of the paper's Table 1. Machine parameters come from
// the declarative specs in internal/machine; core only assembles.
package core

import (
	"fmt"

	"frontiersim/internal/fabric"
	"frontiersim/internal/gpu"
	"frontiersim/internal/hpl"
	"frontiersim/internal/job"
	"frontiersim/internal/machine"
	"frontiersim/internal/node"
	"frontiersim/internal/power"
	"frontiersim/internal/resilience"
	"frontiersim/internal/scheduler"
	"frontiersim/internal/sim"
	"frontiersim/internal/storage"
	"frontiersim/internal/sysmgmt"
	"frontiersim/internal/units"
)

// System is a composed machine.
type System struct {
	Name   string
	Kernel *sim.Kernel
	Fabric *fabric.Fabric
	// Node is the compute-node template (all nodes are identical); nil
	// for baseline systems modelled at lower fidelity.
	Node *node.Node
	// Scheduler is the Slurm model over the fabric's compute nodes.
	Scheduler *scheduler.Scheduler
	// FabricManager sweeps the fabric for failures.
	FabricManager *fabric.Manager
	// Orion is the center-wide file system; NodeLocal the per-node NVMe.
	Orion     *storage.Orion
	NodeLocal *storage.NodeLocalStore
	// HPCM is the system-management plane (§3.4.2).
	HPCM *sysmgmt.HPCM
	// Power and Reliability carry the §5 models.
	Power       power.Machine
	Reliability resilience.Model
	// HPLSpec drives the TOP500 benchmark models.
	HPLSpec hpl.MachineSpec
}

// New composes a system from a machine spec. Subsystems the spec does
// not describe (no power model, no storage plant, …) are left at their
// zero values, matching the lower-fidelity treatment the paper gives
// the comparison machines. The build is cheap enough (tens of
// milliseconds at full scale) to use per experiment.
func New(spec machine.Spec, seed int64) (*System, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	k := sim.NewKernel(seed)
	f, err := spec.NewFabric()
	if err != nil {
		return nil, fmt.Errorf("core: building fabric: %w", err)
	}
	s := &System{
		Name:   spec.Name,
		Kernel: k,
		Fabric: f,
	}
	if spec.Node.BardPeak {
		s.Node = node.New(0)
		s.Scheduler = scheduler.New(k, f)
		s.FabricManager = fabric.NewManager(f, 30)
	}
	if spec.Storage != nil {
		if s.NodeLocal, err = spec.NodeLocal(); err != nil {
			return nil, fmt.Errorf("core: building node-local storage: %w", err)
		}
		if spec.Storage.Orion != nil {
			if s.Orion, err = spec.Orion(); err != nil {
				return nil, fmt.Errorf("core: building orion: %w", err)
			}
		}
	}
	if s.Scheduler != nil {
		// Phase-structured jobs price their programs against the same
		// fabric and storage instances the rest of the system mutates.
		s.Scheduler.Env = &job.Env{
			Node:      spec.NodeModel(),
			Fabric:    f,
			NodeLocal: s.NodeLocal,
			Orion:     s.Orion,
		}
	}
	if spec.Power != nil {
		if s.Power, err = spec.PowerMachine(); err != nil {
			return nil, fmt.Errorf("core: building power model: %w", err)
		}
	}
	if spec.Resilience != nil {
		if s.Reliability, err = spec.ResilienceModel(); err != nil {
			return nil, fmt.Errorf("core: building reliability model: %w", err)
		}
	}
	if spec.HPL != nil {
		if s.HPLSpec, err = spec.HPLSpec(); err != nil {
			return nil, fmt.Errorf("core: building hpl spec: %w", err)
		}
	}
	if spec.Mgmt != nil {
		mgmtCfg, err := spec.MgmtConfig()
		if err != nil {
			return nil, fmt.Errorf("core: building management plane: %w", err)
		}
		hpcm, err := sysmgmt.New(k, mgmtCfg)
		if err != nil {
			return nil, fmt.Errorf("core: building management plane: %w", err)
		}
		s.HPCM = hpcm
	}
	return s, nil
}

// NewFrontier builds the full 9,472-node Frontier system.
func NewFrontier(seed int64) (*System, error) {
	return New(machine.Frontier(), seed)
}

// NewScaledFrontier builds a structurally faithful small Frontier for
// fast tests: groups × switchesPerGroup × endpointsPerSwitch.
func NewScaledFrontier(groups, switchesPerGroup, endpointsPerSwitch int, seed int64) (*System, error) {
	return New(machine.Scaled(groups, switchesPerGroup, endpointsPerSwitch), seed)
}

// NewSummit builds the Summit comparison system: a Clos fabric of 4,608
// nodes. Node-level detail beyond what the comparisons need (per-NIC
// rates, fat-tree behaviour) is not modelled.
func NewSummit(seed int64) (*System, error) {
	return New(machine.Summit(), seed)
}

// ComputeSpecs are the aggregate figures of the paper's Table 1.
type ComputeSpecs struct {
	Nodes int
	// FP64VectorPeak is the machine vector FP64 peak (1.83 EF);
	// FP64DGEMM is the matrix-pipe DGEMM rate hipBLAS can reach (the
	// paper's table quotes 2.0 EF, between the two).
	FP64VectorPeak   units.Flops
	FP64DGEMM        units.Flops
	DDRCapacity      units.Bytes
	DDRBandwidth     units.BytesPerSecond
	HBMCapacity      units.Bytes
	HBMBandwidth     units.BytesPerSecond
	InjectionPerNode units.BytesPerSecond
	GlobalBandwidth  units.BytesPerSecond
}

// ComputeSpecs derives Table 1 from the composed models.
func (s *System) ComputeSpecs() ComputeSpecs {
	if s.Node == nil {
		return ComputeSpecs{Nodes: s.HPLSpec.Nodes}
	}
	n := units.Bytes(s.Fabric.Cfg.ComputeNodes())
	nf := float64(s.Fabric.Cfg.ComputeNodes())
	gemm := 0.0
	for _, g := range s.Node.GCDs {
		gemm += float64(g.GemmAsymptote(gpu.FP64))
	}
	return ComputeSpecs{
		Nodes:            int(nf),
		FP64VectorPeak:   units.Flops(nf * float64(s.Node.PeakFP64())),
		FP64DGEMM:        units.Flops(nf * gemm),
		DDRCapacity:      n * s.Node.DDRCapacity(),
		DDRBandwidth:     units.BytesPerSecond(nf * float64(s.Node.CPU.DRAM.Peak())),
		HBMCapacity:      n * s.Node.HBMCapacity(),
		HBMBandwidth:     units.BytesPerSecond(nf * float64(s.Node.HBMPeak())),
		InjectionPerNode: s.Node.InjectionBandwidth(),
		GlobalBandwidth:  s.Fabric.Cfg.TotalGlobalBandwidth(),
	}
}

// String summarises the system.
func (s *System) String() string {
	return fmt.Sprintf("%s: %d nodes on %s", s.Name, s.Fabric.Cfg.ComputeNodes(), s.Fabric)
}
