package core

import (
	"math"
	"testing"

	"frontiersim/internal/units"
)

// Table 1: Frontier compute peak specifications.
func TestTable1ComputeSpecs(t *testing.T) {
	s, err := NewFrontier(1)
	if err != nil {
		t.Fatal(err)
	}
	specs := s.ComputeSpecs()
	if specs.Nodes != 9472 {
		t.Errorf("nodes = %d, want 9472", specs.Nodes)
	}
	// FP64: vector peak 1.83 EF; DGEMM-achievable 2.56 EF. The paper's
	// "2.0 EF" sits between the two conventions.
	vec := float64(specs.FP64VectorPeak) / 1e18
	gemm := float64(specs.FP64DGEMM) / 1e18
	if math.Abs(vec-1.83) > 0.02 {
		t.Errorf("FP64 vector peak = %.2f EF, want 1.83", vec)
	}
	if gemm < 2.0 || gemm > 2.7 {
		t.Errorf("FP64 DGEMM = %.2f EF, want >= the paper's 2.0", gemm)
	}
	// DDR4: 4.6 PiB capacity, ~1.9 PB/s bandwidth.
	if got := float64(specs.DDRCapacity) / float64(units.PiB); math.Abs(got-4.625) > 0.01 {
		t.Errorf("DDR capacity = %.2f PiB, want 4.6", got)
	}
	if got := float64(specs.DDRBandwidth) / 1e15; math.Abs(got-1.94) > 0.02 {
		t.Errorf("DDR bandwidth = %.2f PB/s, want ~1.9", got)
	}
	// HBM2e: 4.6 PiB capacity, ~124 PB/s bandwidth.
	if got := float64(specs.HBMCapacity) / float64(units.PiB); math.Abs(got-4.625) > 0.01 {
		t.Errorf("HBM capacity = %.2f PiB, want 4.6", got)
	}
	if got := float64(specs.HBMBandwidth) / 1e15; math.Abs(got-123.9) > 0.5 {
		t.Errorf("HBM bandwidth = %.1f PB/s, want 123.9", got)
	}
	// Injection 100 GB/s per node; global 270.1 TB/s (one direction).
	if specs.InjectionPerNode != 100*units.GBps {
		t.Errorf("injection = %v, want 100 GB/s", specs.InjectionPerNode)
	}
	if got := float64(specs.GlobalBandwidth) / 1e12; math.Abs(got-270.1) > 0.2 {
		t.Errorf("global = %.1f TB/s, want 270.1", got)
	}
}

func TestFrontierComposition(t *testing.T) {
	s, err := NewFrontier(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Node == nil || s.Scheduler == nil || s.FabricManager == nil ||
		s.Orion == nil || s.NodeLocal == nil {
		t.Fatal("incomplete composition")
	}
	if s.Fabric.Cfg.ComputeNodes() != 9472 {
		t.Errorf("fabric nodes = %d", s.Fabric.Cfg.ComputeNodes())
	}
	if mtti := float64(s.Reliability.SystemMTTI()) / 3600; mtti < 3 || mtti > 9 {
		t.Errorf("MTTI = %.1f h", mtti)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestScaledFrontier(t *testing.T) {
	s, err := NewScaledFrontier(6, 8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Fabric.Cfg.ComputeNodes() != 48 {
		t.Errorf("scaled nodes = %d, want 48", s.Fabric.Cfg.ComputeNodes())
	}
	// Scheduler works end-to-end on the composed system.
	j, err := s.Scheduler.Submit("smoke", 16, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Kernel.Run()
	if j.State.String() != "completed" {
		t.Errorf("job state = %v", j.State)
	}
}

func TestSummitSystem(t *testing.T) {
	s, err := NewSummit(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Fabric.Cfg.ComputeNodes() != 4608 {
		t.Errorf("summit nodes = %d, want 4608", s.Fabric.Cfg.ComputeNodes())
	}
	if s.HPLSpec.GCDsPerNode != 6 {
		t.Errorf("summit devices = %d, want 6", s.HPLSpec.GCDsPerNode)
	}
	// Summit's ~200 PF peak / ~149 PF Rmax band.
	rmax := float64(s.HPLSpec.HPLRmax(4608)) / 1e15
	if rmax < 120 || rmax > 160 {
		t.Errorf("summit Rmax = %.0f PF, want ~149", rmax)
	}
	// Specs degrade gracefully without a node model.
	if s.ComputeSpecs().Nodes != 4608 {
		t.Error("summit specs should carry node count")
	}
}

func TestInvalidScaledConfig(t *testing.T) {
	if _, err := NewScaledFrontier(0, 8, 4, 1); err == nil {
		t.Error("zero groups should error")
	}
}
