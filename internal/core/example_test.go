package core_test

import (
	"fmt"

	"frontiersim/internal/core"
	"frontiersim/internal/units"
)

// Build the whole machine and read off the Table-1 aggregates.
func ExampleNewFrontier() {
	sys, err := core.NewFrontier(42)
	if err != nil {
		panic(err)
	}
	specs := sys.ComputeSpecs()
	fmt.Println("nodes:", specs.Nodes)
	fmt.Println("injection per node:", specs.InjectionPerNode)
	fmt.Printf("global bandwidth: %.1f TB/s\n", float64(specs.GlobalBandwidth)/1e12)
	// Output:
	// nodes: 9472
	// injection per node: 100GB/s
	// global bandwidth: 270.1 TB/s
}

// Submit a job and run the clock forward.
func ExampleSystem_scheduler() {
	sys, err := core.NewScaledFrontier(6, 8, 4, 1)
	if err != nil {
		panic(err)
	}
	job, err := sys.Scheduler.Submit("demo", 8, units.Hour, nil)
	if err != nil {
		panic(err)
	}
	sys.Kernel.Run()
	fmt.Println("state:", job.State)
	fmt.Println("groups spanned:", job.GroupsSpanned(sys.Fabric))
	// Output:
	// state: completed
	// groups spanned: 1
}
