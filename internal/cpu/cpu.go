// Package cpu models AMD's EPYC 7A53 "Trento" processor (§3.1.1): 64 Zen 3
// cores across eight Core Complex Dies, a custom I/O die whose PCIe lanes
// were replaced by InfinityFabric links to the GPUs, and eight channels of
// DDR4-3200.
package cpu

import (
	"fmt"

	"frontiersim/internal/memory"
	"frontiersim/internal/units"
)

// CCD is one Core Complex Die: eight Zen 3 cores sharing an L3 slice.
type CCD struct {
	// ID is the CCD index within the socket (0–7).
	ID int
	// Cores is the number of cores on the die (8).
	Cores int
	// L3 is the shared L3 capacity of the die (32 MiB).
	L3 units.Bytes
	// PairedGCD is the GCD this CCD is coupled to through the custom IOD
	// (each Trento CCD is paired 1:1 with an MI250X GCD). -1 if unpaired.
	PairedGCD int
}

// Trento is the Frontier CPU socket model.
type Trento struct {
	// CCDs are the eight core complex dies.
	CCDs []CCD
	// ClockHz is the sustained all-core clock (2.0 GHz base).
	ClockHz float64
	// FlopsPerCoreCycle is peak FP64 per core per cycle (16 for Zen 3:
	// two 256-bit FMA pipes).
	FlopsPerCoreCycle int
	// DRAM is the attached DDR4 subsystem.
	DRAM memory.DRAM
}

// NewTrento builds the EPYC 7A53 as configured in a Bard Peak node: CCD i
// paired with GCD i, NPS-4.
func NewTrento() *Trento {
	t := &Trento{
		ClockHz:           2.0e9,
		FlopsPerCoreCycle: 16,
		DRAM:              memory.TrentoDDR4(),
	}
	for i := 0; i < 8; i++ {
		t.CCDs = append(t.CCDs, CCD{ID: i, Cores: 8, L3: 32 * units.MiB, PairedGCD: i})
	}
	return t
}

// Cores returns the socket core count (64).
func (t *Trento) Cores() int {
	n := 0
	for _, c := range t.CCDs {
		n += c.Cores
	}
	return n
}

// PeakFlops returns the socket's peak FP64 rate. At 2 GHz × 64 cores ×
// 16 FLOP/cycle this is ~2 TF/s — under 1 % of the node's GPU FLOPs,
// which is the paper's point: the CPU's job is moving data.
func (t *Trento) PeakFlops() units.Flops {
	return units.Flops(float64(t.Cores()) * t.ClockHz * float64(t.FlopsPerCoreCycle))
}

// TotalL3 returns the socket-level L3 capacity (256 MiB).
func (t *Trento) TotalL3() units.Bytes {
	var b units.Bytes
	for _, c := range t.CCDs {
		b += c.L3
	}
	return b
}

// SetNPS reconfigures the NUMA-per-socket mode.
func (t *Trento) SetNPS(m memory.NPSMode) { t.DRAM.Mode = m }

// Stream runs the CPU STREAM model on this socket's DRAM configuration.
// Arrays must exceed TotalL3 for the result to be a memory measurement;
// Stream panics on cache-resident sizes to catch misconfigured
// experiments (real STREAM prints a warning; a model should refuse).
func (t *Trento) Stream(arrayBytes units.Bytes, temporal bool) []memory.StreamResult {
	if arrayBytes < 4*t.TotalL3() {
		panic(fmt.Sprintf("cpu: STREAM array %v fits in cache shadow (L3 %v); results would not measure DRAM",
			arrayBytes, t.TotalL3()))
	}
	return memory.RunCPUStream(t.DRAM, arrayBytes, temporal)
}

// String summarises the socket.
func (t *Trento) String() string {
	return fmt.Sprintf("EPYC 7A53 Trento: %d cores / %d CCDs, %s DDR4 @ %s peak, %s",
		t.Cores(), len(t.CCDs), t.DRAM.Capacity().Binary(), t.DRAM.Peak(), t.DRAM.Mode)
}
