package cpu

import (
	"strings"
	"testing"

	"frontiersim/internal/memory"
	"frontiersim/internal/units"
)

func TestTrentoShape(t *testing.T) {
	tr := NewTrento()
	if got := tr.Cores(); got != 64 {
		t.Errorf("cores = %d, want 64", got)
	}
	if len(tr.CCDs) != 8 {
		t.Errorf("CCDs = %d, want 8", len(tr.CCDs))
	}
	if tr.TotalL3() != 256*units.MiB {
		t.Errorf("L3 = %v, want 256 MiB", tr.TotalL3())
	}
	if tr.DRAM.Mode != memory.NPS4 {
		t.Errorf("mode = %v, want NPS-4 (Frontier's configuration)", tr.DRAM.Mode)
	}
}

func TestCCDGCDPairing(t *testing.T) {
	tr := NewTrento()
	for i, ccd := range tr.CCDs {
		if ccd.PairedGCD != i {
			t.Errorf("CCD %d paired with GCD %d, want %d", i, ccd.PairedGCD, i)
		}
	}
}

func TestPeakFlopsIsSmall(t *testing.T) {
	tr := NewTrento()
	pf := tr.PeakFlops()
	if pf != 2.048*units.TeraFlops {
		t.Errorf("peak = %v, want 2.048 TF/s", pf)
	}
	// The paper: "over 99% of the FLOPs in Frontier coming from the GPUs".
	gcdPeak := 8 * 23.95 * units.TeraFlops
	if float64(pf)/(float64(pf)+float64(gcdPeak)) > 0.011 {
		t.Error("CPU share of node FLOPs should be ~1%")
	}
}

func TestStreamRequiresDRAMSizedArrays(t *testing.T) {
	tr := NewTrento()
	defer func() {
		if recover() == nil {
			t.Error("cache-resident STREAM should panic")
		}
	}()
	tr.Stream(100*units.MiB, true)
}

func TestStreamDelegation(t *testing.T) {
	tr := NewTrento()
	rows := tr.Stream(7.6*units.GB, false)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if gb := float64(r.Bandwidth) / 1e9; gb < 170 || gb > 182 {
			t.Errorf("%s non-temporal = %.1f GB/s, want ~179", r.Kernel, gb)
		}
	}
}

func TestSetNPS(t *testing.T) {
	tr := NewTrento()
	tr.SetNPS(memory.NPS1)
	rows := tr.Stream(7.6*units.GB, false)
	for _, r := range rows {
		if gb := float64(r.Bandwidth) / 1e9; gb > 130 {
			t.Errorf("%s NPS-1 = %.1f GB/s, want ~125", r.Kernel, gb)
		}
	}
}

func TestString(t *testing.T) {
	s := NewTrento().String()
	for _, want := range []string{"Trento", "64 cores", "NPS-4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
