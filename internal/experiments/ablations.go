package experiments

import (
	"fmt"
	"frontiersim/internal/rng"

	"frontiersim/internal/fabric"
	"frontiersim/internal/memory"
	"frontiersim/internal/mpi"
	"frontiersim/internal/network"
	"frontiersim/internal/report"
	"frontiersim/internal/resilience"
	"frontiersim/internal/units"
)

// AblationTaper sweeps the dragonfly's global bundle size: HPE's 57%
// taper (bundle size two) against a half-provisioned and an over-
// provisioned fabric, measured by full-system all-to-all bandwidth.
func AblationTaper(o Options) (*report.Table, error) {
	t := &report.Table{ID: "ablation-taper", Title: "Global bundle size vs full-system all-to-all"}
	for _, links := range []int{2, 4, 6} {
		cfg, err := o.machine().FabricConfig()
		if err != nil {
			return nil, err
		}
		cfg.ComputeComputeLinks = links
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		f, err := fabric.NewDragonfly(cfg)
		if err != nil {
			return nil, err
		}
		nodes := make([]int, cfg.ComputeNodes())
		for i := range nodes {
			nodes[i] = i
		}
		c, err := mpi.NewComm(f, nodes, 8)
		if err != nil {
			return nil, err
		}
		perNode := float64(c.AllToAllPerRankBandwidth()) * 8
		name := fmt.Sprintf("bundle %d (links %d, taper %.0f%%)", links/2, links, cfg.Taper()*100)
		note := ""
		if links == 4 {
			note = "deployed configuration"
		}
		t.Add(name, "", report.GB(perNode)+" /node a2a", 0, 0, note)
	}
	return t, nil
}

// AblationNPS compares the NUMA-per-socket modes: NPS-4 (deployed) vs
// NPS-1, reproducing the 180 vs ~125 GB/s difference of §4.1.1.
func AblationNPS(o Options) (*report.Table, error) {
	t := &report.Table{ID: "ablation-nps", Title: "NPS-1 vs NPS-4 STREAM Triad (non-temporal)"}
	for _, mode := range []memory.NPSMode{memory.NPS4, memory.NPS1} {
		d := memory.TrentoDDR4()
		d.Mode = mode
		bw := float64(memory.CPUStreamBandwidth(d, memory.Triad, false))
		paper := 180.0
		if mode == memory.NPS1 {
			paper = 125.0
		}
		t.Add(mode.String(), fmt.Sprintf("~%.0f GB/s", paper), report.GB(bw), paper, bw/1e9, "")
	}
	return t, nil
}

// AblationRouting compares minimal-only against adaptive (minimal +
// Valiant) routing for a group-coherent shift permutation — the pattern
// where non-minimal routing earns its keep.
func AblationRouting(o Options) (*report.Table, error) {
	f, err := o.machine().NewFabric()
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "ablation-routing", Title: "Minimal-only vs adaptive routing, far-shift permutation"}
	for _, valiant := range []int{0, 4} {
		cfg := network.DefaultMpiGraphConfig()
		cfg.Shifts = 2
		cfg.ValiantPaths = valiant
		cfg.MeasureJitter = 0
		res, err := network.RunMpiGraphWithCache(f, cfg, rng.New(o.Seed), o.Solutions, topoKey(o.machine()))
		if err != nil {
			return nil, err
		}
		name := "adaptive (UGAL-like)"
		note := "Valiant paths recover bandwidth on adversarial shifts"
		if valiant == 0 {
			name = "minimal only"
			note = "direct group-pair links saturate"
		}
		t.Add(name, "", fmt.Sprintf("min %s, mean %s", report.GB(res.Min), report.GB(res.Mean)), 0, 0, note)
	}
	return t, nil
}

// AblationCC runs GPCNeT with hardware congestion control disabled — the
// counterfactual that motivates Slingshot's headline feature (and the
// behaviour the paper cites from Summit's EDR fabric [73]).
func AblationCC(o Options) (*report.Table, error) {
	f, err := o.machine().NewFabric()
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "ablation-cc", Title: "GPCNeT with congestion control on vs off"}
	for _, cc := range []bool{true, false} {
		cfg := network.DefaultGPCNeTConfig()
		cfg.CongestionControl = cc
		if o.Quick {
			cfg.LatencySamples = 600
		}
		res, err := network.RunGPCNeTWithCache(f, cfg, rng.New(o.Seed), o.Solutions, topoKey(o.machine()))
		if err != nil {
			return nil, err
		}
		name := "CC on"
		paper := "1.0x"
		pv := 1.0
		note := "deployed behaviour (Table 5)"
		if !cc {
			name = "CC off"
			paper = ">1x (Summit EDR-like)"
			pv = 0
			note = "tree saturation and HOL blocking leak into victims"
		}
		t.Add(name, paper,
			fmt.Sprintf("BW impact %.2fx, lat impact %.2fx", res.BandwidthImpact, res.LatencyImpact),
			pv, res.BandwidthImpact, note)
	}
	return t, nil
}

// AblationPlacement quantifies the scheduler's topology policy: packed
// placement maximises bandwidth for single-group jobs; spreading
// maximises it for multi-group jobs.
func AblationPlacement(o Options) (*report.Table, error) {
	f, err := o.machine().NewFabric()
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "ablation-placement", Title: "Pack vs spread placement (per-node all-to-all)"}
	perGroup := f.Cfg.NodesPerGroup()
	cases := []struct {
		name   string
		nodes  int
		spread bool
	}{
		{"128-node job, packed (1 group)", perGroup, false},
		{"128-node job, spread (74 groups)", perGroup, true},
		{"4096-node job, packed (32 groups)", 32 * perGroup, false},
		{"4096-node job, spread (74 groups)", 32 * perGroup, true},
	}
	for _, c := range cases {
		total := f.Cfg.ComputeNodes()
		nodes := make([]int, c.nodes)
		for i := range nodes {
			if c.spread {
				nodes[i] = i * total / c.nodes
			} else {
				nodes[i] = i
			}
		}
		comm, err := mpi.NewComm(f, nodes, 8)
		if err != nil {
			return nil, err
		}
		perNode := float64(comm.AllToAllPerRankBandwidth()) * 8
		// Global-link traffic this job's all-to-all injects: zero when
		// packed into one group — the scarce 270 TB/s stays available
		// to other jobs, which is the other half of Slurm's policy.
		globalShare := 0.0
		if comm.GroupsSpanned() > 1 {
			globalShare = perNode * float64(c.nodes) * (1 - 1/float64(comm.GroupsSpanned()))
		}
		t.Add(c.name, "", report.GB(perNode)+" /node",
			0, 0, fmt.Sprintf("spans %d groups; %s of global-link traffic", comm.GroupsSpanned(), report.GB(globalShare)))
	}
	t.AddInfo("policy", "pack small jobs, spread large jobs", "Slurm's configuration on Frontier (§3.4.2)")
	return t, nil
}

// AblationCheckpoint sweeps checkpoint intervals against the machine's
// MTTI, showing Daly's optimum for a full-machine job writing ~700 TiB
// bursts to Orion.
func AblationCheckpoint(o Options) (*report.Table, error) {
	m, err := o.machine().ResilienceModel()
	if err != nil {
		return nil, err
	}
	mtti := m.SystemMTTI()
	const delta = 180 * units.Second // Orion burst (§4.3.2)
	const restart = 600 * units.Second
	opt := resilience.OptimalCheckpointInterval(delta, mtti)
	t := &report.Table{ID: "ablation-checkpoint", Title: "Checkpoint interval vs machine utilization"}
	for _, mul := range []float64{0.25, 0.5, 1, 2, 4} {
		tau := units.Seconds(float64(opt) * mul)
		eff := resilience.CheckpointEfficiency(tau, delta, restart, mtti)
		name := fmt.Sprintf("tau = %.2fx optimum (%v)", mul, tau)
		note := ""
		if mul == 1 {
			note = "Daly optimum"
		}
		t.Add(name, "", fmt.Sprintf("%.1f%% useful work", eff*100), 0, 0, note)
	}
	t.AddInfo("MTTI", fmt.Sprintf("%v", mtti), "")
	return t, nil
}
