package experiments

import (
	"fmt"

	"frontiersim/internal/apps"
	"frontiersim/internal/machine"
	"frontiersim/internal/report"
)

func appTable(id, title string, list []apps.App) (*report.Table, error) {
	t := &report.Table{ID: id, Title: title}
	for _, app := range list {
		s, fr, br, err := apps.Speedup(app, machine.PlatformByName)
		if err != nil {
			return nil, err
		}
		note := fmt.Sprintf("target %gx vs %s; frontier FOM %.4g %s",
			app.TargetSpeedup(), app.BaselineName(), fr.FOM, fr.Unit)
		if fr.Notes != "" {
			note += "; " + fr.Notes
		}
		_ = br
		t.Add(app.Name(), fmt.Sprintf("%.1fx", app.PaperSpeedup()), fmt.Sprintf("%.2fx", s),
			app.PaperSpeedup(), s, note)
	}
	return t, nil
}

// Table6 reproduces the CAAR/INCITE speedups over Summit.
func Table6(o Options) (*report.Table, error) {
	return appTable("table6", "CAAR and INCITE application speedups (KPP 4x over Summit)", apps.CAARApps())
}

// Table7 reproduces the ECP speedups over the petascale baselines.
func Table7(o Options) (*report.Table, error) {
	return appTable("table7", "ECP application speedups (KPP 50x over ~20 PF systems)", apps.ECPApps())
}
