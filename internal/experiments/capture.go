package experiments

import (
	"bytes"

	"frontiersim/internal/harness"
)

// Capture runs one experiment and returns its rendered table as bytes
// instead of writing to stdout — the form the campaign server caches
// and serves. The per-experiment seed is derived from (o.Seed, id)
// exactly as RunAll derives it, so the captured bytes are identical to
// what `frontier-sim run <id>` prints for the same root seed, machine
// and quick setting: a pure function of (spec, root seed, id, code),
// which is what makes the bytes content-addressable.
func Capture(id string, o Options, markdown bool) ([]byte, error) {
	r, err := ByID(id)
	if err != nil {
		return nil, err
	}
	opts := o
	opts.Seed = harness.DeriveSeed(o.Seed, r.ID)
	t, err := r.Run(opts)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if markdown {
		t.Markdown(&buf)
	} else {
		t.Render(&buf)
	}
	return buf.Bytes(), nil
}
