package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestCaptureMatchesRunAll pins the campaign server's contract: the
// captured bytes for an experiment equal what the CLI's run path renders
// for the same root seed, because both derive the per-experiment seed
// from (root seed, id).
func TestCaptureMatchesRunAll(t *testing.T) {
	o := Options{Quick: true, Seed: 42}
	r, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunAll(context.Background(), []Runner{r}, o, RunConfig{Jobs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	results[0].Table.Render(&want)

	got, err := Capture("table2", o, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("Capture output differs from RunAll rendering:\n--- capture ---\n%s--- runall ---\n%s", got, want.Bytes())
	}
}

func TestCaptureMarkdown(t *testing.T) {
	got, err := Capture("table2", Options{Quick: true, Seed: 42}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(got), "### table2") {
		t.Fatalf("markdown capture starts %q, want a ### heading", string(got[:min(40, len(got))]))
	}
}

func TestCaptureUnknownID(t *testing.T) {
	if _, err := Capture("fig99", Options{}, false); err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("err = %v, want unknown-id naming fig99", err)
	}
}
