// Package experiments maps every table and figure in the paper's
// evaluation to a runnable reproduction: each experiment builds the
// simulated machine, runs the corresponding benchmark model, and returns
// a paper-vs-measured report table. The registry drives both the
// frontier-sim CLI and the root-level benchmark suite.
package experiments

import (
	"fmt"
	"sort"
)

import "frontiersim/internal/report"

// Options tunes experiment execution.
type Options struct {
	// Quick trades sampling depth for speed (used by tests); the full
	// runs are what EXPERIMENTS.md records.
	Quick bool
	// Seed drives all randomness.
	Seed int64
}

// DefaultOptions returns the configuration used for the recorded runs.
func DefaultOptions() Options { return Options{Seed: 42} }

// Runner executes one experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(Options) (*report.Table, error)
}

// Registry returns all experiments in paper order.
func Registry() []Runner {
	return []Runner{
		{"table1", "Frontier compute peak specifications", Table1},
		{"table2", "I/O subsystem capacities and bandwidths", Table2},
		{"table3", "CPU STREAM, temporal vs non-temporal stores", Table3},
		{"fig3", "CoralGemm achieved vs peak per precision", Fig3},
		{"table4", "GPU STREAM bandwidth", Table4},
		{"fig4", "Aggregate CPU-to-GCD bandwidth, 8 ranks", Fig4},
		{"fig5", "GCD-to-GCD bandwidth: CU kernels vs SDMA", Fig5},
		{"fig6", "mpiGraph per-NIC bandwidth census (Frontier vs Summit)", Fig6},
		{"table5", "GPCNeT congestion benchmark at 8 PPN", Table5},
		{"sec431", "Node-local storage (fio)", Sec431},
		{"sec432", "Orion Lustre streaming and ingest", Sec432},
		{"table6", "CAAR and INCITE application speedups vs Summit", Table6},
		{"table7", "ECP application speedups", Table7},
		{"sec51", "Energy and power (HPL, Green500)", Sec51},
		{"sec54", "Resiliency (MTTI, contributors, checkpointing)", Sec54},
		{"ablation-taper", "Ablation: dragonfly global-bundle taper sweep", AblationTaper},
		{"ablation-nps", "Ablation: NPS-1 vs NPS-4 memory interleaving", AblationNPS},
		{"ablation-routing", "Ablation: minimal-only vs adaptive routing", AblationRouting},
		{"ablation-cc", "Ablation: congestion control off (GPCNeT)", AblationCC},
		{"ablation-placement", "Ablation: scheduler pack vs spread placement", AblationPlacement},
		{"ablation-checkpoint", "Extension: checkpoint interval vs MTTI (Daly)", AblationCheckpoint},
		{"ablation-ppn", "Ablation: GPCNeT at 32 PPN (CC protection erodes)", AblationPPN},
		{"ext-burstbuffer", "Extension: node-local burst buffer use cases", ExtBurstBuffer},
		{"ext-sysmgmt", "Extension: HPCM boot, CTDB failover, discovery", ExtSysmgmt},
		{"ext-operations", "Extension: a simulated week of operations", ExtOperations},
		{"ext-inventory", "Extension: dragonfly vs Clos ports and cables", ExtInventory},
		{"ext-miniapps", "Extension: real kernels validated + roofline-predicted", ExtMiniapps},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Runner, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown id %q (try 'list')", id)
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	var ids []string
	for _, r := range Registry() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}
