// Package experiments maps every table and figure in the paper's
// evaluation to a runnable reproduction: each experiment builds the
// simulated machine, runs the corresponding benchmark model, and returns
// a paper-vs-measured report table. The registry drives both the
// frontier-sim CLI and the root-level benchmark suite.
package experiments

import (
	"fmt"
	"sort"

	"frontiersim/internal/core"
	"frontiersim/internal/job"
	"frontiersim/internal/machine"
	"frontiersim/internal/network"
	"frontiersim/internal/report"
)

// Options tunes experiment execution.
type Options struct {
	// Quick trades sampling depth for speed (used by tests); the full
	// runs are what EXPERIMENTS.md records.
	Quick bool
	// Seed drives all randomness. RunAll derives a private per-
	// experiment seed from it (see internal/harness.DeriveSeed), so a
	// runner must draw every random number from Options.Seed and never
	// from shared state.
	Seed int64
	// Machine overrides the machine under test (nil = the canonical
	// Frontier spec). Comparison baselines — Summit's side of fig6, the
	// application tables' named platforms — stay canonical regardless,
	// since their paper values are tied to those specific systems.
	Machine *machine.Spec
	// Shards is the worker count for experiments built on the sharded
	// event kernel (sim.NewSharded): 0 or 1 runs the windowed engine
	// inline on one goroutine. The determinism contract guarantees
	// byte-identical tables at any value, so Shards — like Quick's jobs
	// sibling on the CLI — is purely a speed knob and never enters
	// result content or the campaign cache key.
	Shards int
	// Solutions optionally shares a max-min solver solution cache across
	// the network experiments (and, on the campaign server, across
	// repeated what-ifs). A cache hit applies the bit-exact allocation
	// the skipped solve would have produced, so — like Shards — it is
	// purely a speed knob that never enters result content or cache
	// keys. nil disables reuse.
	Solutions *network.SolutionCache
	// PricingEntries sizes the per-run placement-signature pricing cache
	// the campaign experiments attach to their job environment: 0 (the
	// default) keeps it unbounded, so the reported hit rate is a pure
	// function of the job stream; > 0 caps the LRU; < 0 disables the
	// cache. Cache hits reproduce cold pricing bit-for-bit, so — like
	// Shards — this is purely a speed knob that never changes result
	// content and never enters campaign cache keys.
	PricingEntries int
}

// pricingCache builds the per-run pricing cache o asks for and attaches
// it to the system's job environment, returning it for hit-rate
// reporting (nil when disabled or the machine has no scheduler).
func (o Options) pricingCache(sys *core.System, spec machine.Spec) *job.PricingCache {
	if o.PricingEntries < 0 || sys.Scheduler == nil || sys.Scheduler.Env == nil {
		return nil
	}
	cache := job.NewPricingCache(o.PricingEntries)
	sys.Scheduler.Env.Cache = cache
	sys.Scheduler.Env.CacheKey = topoKey(spec)
	return cache
}

// machine returns the spec of the machine under test.
func (o Options) machine() machine.Spec {
	if o.Machine != nil {
		return *o.Machine
	}
	return machine.Frontier()
}

// topoKey returns the canonical content address of a machine spec for
// solution-cache keys, so virgin fabrics built from the same spec share
// stored allocations across experiment (and campaign job) boundaries.
// An unhashable spec degrades to "", which restricts hits to the exact
// fabric instance — slower, never wrong.
func topoKey(spec machine.Spec) string {
	h, err := machine.Hash(spec)
	if err != nil {
		return ""
	}
	return h
}

// DefaultOptions returns the configuration used for the recorded runs.
func DefaultOptions() Options { return Options{Seed: 42} }

// Runner executes one experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(Options) (*report.Table, error)
	// Cost is a relative wall-time hint (measured quick-mode seconds,
	// rounded): the parallel harness starts expensive experiments first
	// so the batch makespan approaches the longest single experiment.
	// It never affects results.
	Cost float64
}

// Registry returns all experiments in paper order.
func Registry() []Runner {
	return []Runner{
		{"table1", "Frontier compute peak specifications", Table1, 0.2},
		{"table2", "I/O subsystem capacities and bandwidths", Table2, 0},
		{"table3", "CPU STREAM, temporal vs non-temporal stores", Table3, 0.3},
		{"fig3", "CoralGemm achieved vs peak per precision", Fig3, 0},
		{"table4", "GPU STREAM bandwidth", Table4, 0},
		{"fig4", "Aggregate CPU-to-GCD bandwidth, 8 ranks", Fig4, 0},
		{"fig5", "GCD-to-GCD bandwidth: CU kernels vs SDMA", Fig5, 0},
		{"fig6", "mpiGraph per-NIC bandwidth census (Frontier vs Summit)", Fig6, 3.6},
		{"table5", "GPCNeT congestion benchmark at 8 PPN", Table5, 1.7},
		{"sec431", "Node-local storage (fio)", Sec431, 0},
		{"sec432", "Orion Lustre streaming and ingest", Sec432, 0},
		{"table6", "CAAR and INCITE application speedups vs Summit", Table6, 0.1},
		{"table7", "ECP application speedups", Table7, 0},
		{"sec51", "Energy and power (HPL, Green500)", Sec51, 0},
		{"sec54", "Resiliency (MTTI, contributors, checkpointing)", Sec54, 0},
		{"ablation-taper", "Ablation: dragonfly global-bundle taper sweep", AblationTaper, 0.2},
		{"ablation-nps", "Ablation: NPS-1 vs NPS-4 memory interleaving", AblationNPS, 0},
		{"ablation-routing", "Ablation: minimal-only vs adaptive routing", AblationRouting, 1.5},
		{"ablation-cc", "Ablation: congestion control off (GPCNeT)", AblationCC, 3.4},
		{"ablation-placement", "Ablation: scheduler pack vs spread placement", AblationPlacement, 0.1},
		{"ablation-checkpoint", "Extension: checkpoint interval vs MTTI (Daly)", AblationCheckpoint, 0},
		{"ablation-ppn", "Ablation: GPCNeT at 32 PPN (CC protection erodes)", AblationPPN, 7.1},
		{"ext-burstbuffer", "Extension: node-local burst buffer use cases", ExtBurstBuffer, 0},
		{"ext-sysmgmt", "Extension: HPCM boot, CTDB failover, discovery", ExtSysmgmt, 0},
		{"ext-operations", "Extension: a simulated week of operations", ExtOperations, 0.4},
		{"ext-inventory", "Extension: dragonfly vs Clos ports and cables", ExtInventory, 0.1},
		{"ext-miniapps", "Extension: real kernels validated + roofline-predicted", ExtMiniapps, 0.1},
		{"ext-sharded", "Extension: sharded parallel kernel (per-group LPs, conservative lookahead)", ExtSharded, 0.3},
		{"ext-llm", "Extension: LLM training scaling, phase-structured programs", ExtLLM, 0.5},
		{"ext-campaign", "Extension: a campaign week of phase-structured jobs", ExtCampaign, 0.5},
		{"ext-year", "Extension: a year of operations on full Frontier (pricing cache, indexed scheduler)", ExtYear, 2.0},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Runner, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown id %q (try 'list')", id)
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	var ids []string
	for _, r := range Registry() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}
