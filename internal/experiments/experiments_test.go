package experiments

import (
	"bytes"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 42} }

// Every registered experiment must run and produce a table whose
// comparable rows sit within a reproduction envelope. The envelope is
// deliberately generous for the stochastic network experiments and tight
// for the deterministic hardware models.
func TestAllExperimentsRun(t *testing.T) {
	envelope := Envelopes()
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			table, err := r.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s: empty table", r.ID)
			}
			if table.ID != r.ID {
				t.Errorf("table id %q != runner id %q", table.ID, r.ID)
			}
			if env, ok := envelope[r.ID]; ok {
				if dev := table.MaxAbsDeviation(); dev > env {
					t.Errorf("%s: worst deviation %.1f%% exceeds envelope %.0f%%",
						r.ID, dev*100, env*100)
				}
			}
			var buf bytes.Buffer
			table.Render(&buf)
			if buf.Len() == 0 {
				t.Error("empty render")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("table3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("table99"); err == nil {
		t.Error("unknown id should error")
	}
	if len(IDs()) != len(Registry()) {
		t.Error("IDs() length mismatch")
	}
}

// The headline qualitative claims must hold regardless of exact numbers.
func TestHeadlineClaims(t *testing.T) {
	// Frontier exceeds an exaflop under 20 MW/EF (sec51).
	tab, err := Sec51(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var rmax, gfw float64
	for _, r := range tab.Rows {
		switch r.Name {
		case "HPL Rmax":
			rmax = r.MeasuredVal
		case "efficiency":
			gfw = r.MeasuredVal
		}
	}
	if rmax < 1.0 {
		t.Errorf("Rmax %.2f EF: Frontier must be exascale", rmax)
	}
	if gfw < 50 {
		t.Errorf("efficiency %.1f GF/W: must beat the 2008 report's 50", gfw)
	}

	// Every application beats its KPP (tables 6 and 7).
	for _, fn := range []Runner{{ID: "table6", Run: Table6}, {ID: "table7", Run: Table7}} {
		tab, err := fn.Run(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r.MeasuredVal <= 1 {
				t.Errorf("%s/%s: speedup %.2f must exceed 1", fn.ID, r.Name, r.MeasuredVal)
			}
		}
	}
}
