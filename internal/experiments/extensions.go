package experiments

import (
	"fmt"
	"frontiersim/internal/rng"
	"math"

	"frontiersim/internal/core"
	"frontiersim/internal/fabric"
	"frontiersim/internal/gpu"
	"frontiersim/internal/miniapps"
	"frontiersim/internal/network"
	"frontiersim/internal/report"
	"frontiersim/internal/sim"
	"frontiersim/internal/sysmgmt"
	"frontiersim/internal/units"
	"frontiersim/internal/workload"
)

// AblationPPN reruns GPCNeT at 32 processes per node, where the paper
// reports congestion-control protection eroding: average impacts of
// 1.2-1.6x and tails of 1.8-7.6x, versus the ideal 1.0x at 8 PPN.
func AblationPPN(o Options) (*report.Table, error) {
	f, err := o.machine().NewFabric()
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "ablation-ppn", Title: "GPCNeT at 8 vs 32 processes per node"}
	for _, ppn := range []int{8, 32} {
		cfg := network.DefaultGPCNeTConfig()
		if n := f.Cfg.ComputeNodes(); cfg.Nodes > n {
			cfg.Nodes = n
		}
		cfg.PPN = ppn
		if o.Quick {
			cfg.LatencySamples = 600
		}
		res, err := network.RunGPCNeTWithCache(f, cfg, rng.New(o.Seed), o.Solutions, topoKey(o.machine()))
		if err != nil {
			return nil, err
		}
		paper := "1.0x"
		pv := 1.0
		note := "the expected production use case"
		if ppn == 32 {
			paper = "1.2-1.6x avg"
			pv = 1.4
			note = "CC protection erodes past the 8-rank design point"
		}
		t.Add(fmt.Sprintf("%d PPN", ppn), paper,
			fmt.Sprintf("BW impact %.2fx (99%%: iso %.0f vs cong %.0f MiB/s)",
				res.BandwidthImpact,
				float64(res.Isolated.Bandwidth.P99)/(1<<20),
				float64(res.Congested.Bandwidth.P99)/(1<<20)),
			pv, res.BandwidthImpact, note)
	}
	return t, nil
}

// ExtBurstBuffer exercises the node-local storage use cases of §3.3:
// write caching for simulation checkpoints and read caching for ML
// training sets.
func ExtBurstBuffer(o Options) (*report.Table, error) {
	t := &report.Table{ID: "ext-burstbuffer", Title: "Node-local burst buffer use cases (§3.3)"}
	m := o.machine()
	bb, err := m.BurstBuffer(0) // whole machine
	if err != nil {
		return nil, err
	}
	size := 700 * units.TiB
	absorb, drain, err := bb.CheckpointWrite(size)
	if err != nil {
		return nil, err
	}
	t.AddInfo("checkpoint absorb (NVMe)", fmt.Sprintf("%v", absorb), "application-visible stall")
	t.AddInfo("background drain to Orion", fmt.Sprintf("%v", drain), "overlaps computation")
	t.AddInfo("stall reduction vs direct PFS", fmt.Sprintf("%.1fx", bb.CheckpointSpeedup(size)), "")

	ml, err := m.BurstBuffer(1000)
	if err != nil {
		return nil, err
	}
	dataset := 1 * units.PB
	cold, err := ml.EpochRead(dataset, 1)
	if err != nil {
		return nil, err
	}
	warm, err := ml.EpochRead(dataset, 2)
	if err != nil {
		return nil, err
	}
	t.AddInfo("ML epoch 1 (cold, via Orion)", fmt.Sprintf("%v", cold), "1 PB dataset on 1,000 nodes")
	t.AddInfo("ML epoch 2+ (warm, via NVMe)", fmt.Sprintf("%v", warm),
		fmt.Sprintf("%.1fx faster per epoch", ml.TrainingSpeedup(dataset)))
	return t, nil
}

// ExtSysmgmt exercises the HPCM management-plane model of §3.4.2:
// scalable boot and transparent leader failover.
func ExtSysmgmt(o Options) (*report.Table, error) {
	k := sim.NewKernel(o.Seed)
	m := o.machine()
	mgmtCfg, err := m.MgmtConfig()
	if err != nil {
		return nil, err
	}
	h, err := sysmgmt.New(k, mgmtCfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "ext-sysmgmt", Title: "HPCM management plane (§3.4.2)"}
	t.AddInfo("plane", h.String(), "1 admin + 21 leaders + 12 DVS + 2 slurmctl")
	t.AddInfo("full-machine boot", fmt.Sprintf("%v", h.BootTime(m.Nodes())), "Gluster image streaming in waves")
	leader, err := h.LeaderFor(0)
	if err != nil {
		return nil, err
	}
	if err := h.FailLeader(leader.ID); err != nil {
		return nil, err
	}
	takeover, err := h.LeaderFor(0)
	if err != nil {
		return nil, err
	}
	t.AddInfo("leader failover", fmt.Sprintf("leader %d -> leader %d, %d VIP moves", leader.ID, takeover.ID, h.Failovers),
		"CTDB virtual IP takeover; clients unaffected")
	h.RestoreLeader(leader.ID)
	// Discovery daemon notices a blade swap without intervention.
	state := map[string]string{"chassis-17-blade-2": "present"}
	h.StartDiscovery(func() map[string]string { return state })
	k.RunUntil(90)
	state["chassis-17-blade-2"] = "replaced"
	k.RunUntil(200)
	h.StopDiscovery()
	t.AddInfo("hardware discovery", fmt.Sprintf("%d changes recorded automatically", h.Discoveries), "periodic chassis sweep")
	return t, nil
}

// ExtOperations simulates a week of leadership-facility operations on the
// full machine: a synthetic INCITE-style job mix over the Slurm model
// with the reliability model injecting failures, reporting utilization,
// queue waits, and observed MTTI.
func ExtOperations(o Options) (*report.Table, error) {
	sys, err := core.New(o.machine(), o.Seed)
	if err != nil {
		return nil, err
	}
	cfg := workload.DefaultConfig()
	if o.Quick {
		cfg.Duration = 2 * units.Day
	}
	stats, err := workload.Run(sys, cfg, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "ext-operations", Title: "A simulated week of Frontier operations"}
	t.AddInfo("window", fmt.Sprintf("%v", cfg.Duration), "synthetic leadership job mix")
	t.AddInfo("jobs submitted", fmt.Sprintf("%d", stats.Submitted),
		fmt.Sprintf("debug %d, midsize %d, capability %d, hero %d",
			stats.ByClass["debug"], stats.ByClass["midsize"], stats.ByClass["capability"], stats.ByClass["hero"]))
	t.AddInfo("jobs completed / failed", fmt.Sprintf("%d / %d", stats.Completed, stats.Failed), "")
	t.AddInfo("machine utilization", fmt.Sprintf("%.1f%%", stats.Utilization*100), "")
	t.AddInfo("avg / max queue wait", fmt.Sprintf("%v / %v", stats.AvgWait, stats.MaxWait), "")
	t.AddInfo("interrupting failures", fmt.Sprintf("%d (MTTI %v)", stats.NodeFailures, stats.MeasuredMTTI),
		"nodes repaired after 4 h; checknode gates re-entry")
	t.AddInfo("jobs killed by failures", fmt.Sprintf("%d", stats.JobInterrupts), "")
	return t, nil
}

// ExtInventory reproduces §4.2.2's plant accounting: the dragonfly
// halves switch ports and inter-switch cables against a non-blocking
// Clos for the same endpoints — the trade that funds the fat nodes.
func ExtInventory(o Options) (*report.Table, error) {
	f, err := o.machine().NewFabric()
	if err != nil {
		return nil, err
	}
	df := f.CountInventory()
	clos := fabric.EquivalentClosInventory(f.NumEndpoints)
	ports, cables := f.DragonflyVsClos()
	t := &report.Table{ID: "ext-inventory", Title: "Dragonfly vs Clos physical plant (§4.2.2)"}
	t.AddInfo("dragonfly", df.String(), "as built: 80 groups")
	t.AddInfo("equivalent clos", clos.String(), "3-level non-blocking fat tree, 64-port ASICs")
	t.Add("switch-port fraction", "~50%", fmt.Sprintf("%.0f%%", ports*100), 0.5, ports, "")
	t.Add("inter-switch cable fraction", "~50%", fmt.Sprintf("%.0f%%", cables*100), 0.5, cables, "")
	t.AddInfo("the price", "57% global taper + non-minimal routing", "Figure 6's wide distribution")
	return t, nil
}

// ExtMiniapps runs the real numerical kernels at laptop scale, validates
// them against analytic results, and prints the roofline predictions
// their measured work implies for one MI250X GCD — the calibration loop
// behind the application proxies' constants.
func ExtMiniapps(o Options) (*report.Table, error) {
	t := &report.Table{ID: "ext-miniapps", Title: "Real kernels: validation + roofline predictions"}
	g := gpu.NewMI250XGCD()

	// Stencil (AthenaPK/Cholla class): validate decay, predict a step.
	heat, err := miniapps.NewHeat3D(16)
	if err != nil {
		return nil, err
	}
	for s := 0; s < 50; s++ {
		heat.Step()
	}
	errAmp := heat.Amplitude() - heat.ExpectedAmplitude()
	t.AddInfo("heat3d 16^3 x50 steps", fmt.Sprintf("abs error %.2e vs analytic decay", math.Abs(errAmp)), "validated")
	heat.N = 512
	d, err := heat.PredictStepTime(g)
	if err != nil {
		return nil, err
	}
	t.AddInfo("heat3d 512^3 on one GCD", fmt.Sprintf("%v per step (bandwidth bound)", d), "roofline")

	// FFT (GESTS class): validate Parseval, count traffic.
	vol, err := miniapps.NewFFT3D(16)
	if err != nil {
		return nil, err
	}
	r := rng.New(o.Seed)
	var before float64
	for i := range vol.Data {
		vol.Data[i] = complex(r.NormFloat64(), 0)
		before += real(vol.Data[i]) * real(vol.Data[i])
	}
	if err := vol.Transform(false); err != nil {
		return nil, err
	}
	var after float64
	for i := range vol.Data {
		re, im := real(vol.Data[i]), imag(vol.Data[i])
		after += re*re + im*im
	}
	t.AddInfo("fft3d 16^3", fmt.Sprintf("Parseval error %.2e", math.Abs(after/4096-before)/before), "validated")
	passes := float64(miniapps.FFT3DTraffic(1024)) / (16 * 1024 * 1024 * 1024)
	t.AddInfo("fft3d traffic", fmt.Sprintf("%.0f volume passes per transform", passes),
		"the GESTS proxy's per-step pass count, measured")

	// N-body (HACC class): validate energy conservation, predict sweep.
	nb, err := miniapps.NewNBody(64, r)
	if err != nil {
		return nil, err
	}
	e0 := nb.Energy()
	for s := 0; s < 100; s++ {
		nb.Step()
	}
	drift := math.Abs(nb.Energy()-e0) / math.Abs(e0)
	t.AddInfo("nbody 64 x100 steps", fmt.Sprintf("energy drift %.2e", drift), "validated (leapfrog)")
	nb.N = 1 << 20
	fd, err := nb.PredictForceTime(g)
	if err != nil {
		return nil, err
	}
	t.AddInfo("nbody 2^20 on one GCD", fmt.Sprintf("%v per force sweep (compute bound, FP32)", fd), "roofline")

	// GEMM (CoralGemm/CoMet/LSMS class): validate blocking, predict the
	// Fig. 3 rate.
	gm, err := miniapps.NewGEMM(48, 16, r)
	if err != nil {
		return nil, err
	}
	naive, blocked := gm.Naive(), gm.Blocked()
	worst := 0.0
	for i := range naive {
		if d := math.Abs(naive[i] - blocked[i]); d > worst {
			worst = d
		}
	}
	t.AddInfo("gemm 48x48 blocked vs naive", fmt.Sprintf("max abs diff %.2e", worst), "validated")
	rate, err := g.KernelRate(miniapps.GEMMKernel(16384))
	if err != nil {
		return nil, err
	}
	t.AddInfo("dgemm 16384 on one GCD", fmt.Sprintf("%.1f TF/s", float64(rate)/1e12),
		"roofline; Fig. 3 measures 33.8")
	return t, nil
}
