package experiments

import (
	"math"
	"math/rand"
	"testing"

	"frontiersim/internal/core"
	"frontiersim/internal/machine"
	"frontiersim/internal/mpi"
	"frontiersim/internal/network"
	"frontiersim/internal/power"
	"frontiersim/internal/units"
)

// The analytic collective model and the flow-level solver are
// independent implementations of the same fabric physics; their
// all-to-all predictions must agree.
func TestAnalyticVsSolverAllToAll(t *testing.T) {
	f, err := machine.Scaled(8, 8, 4).NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	nodes := f.Cfg.ComputeNodes() // 64
	list := make([]int, nodes)
	for i := range list {
		list[i] = i
	}
	comm, err := mpi.NewComm(f, list, 4)
	if err != nil {
		t.Fatal(err)
	}
	analytic := float64(comm.AllToAllPerRankBandwidth()) * 4 // per node

	// Solver: random permutation traffic, one demand per NIC, averaged
	// over a few rounds, approximates sustained all-to-all throughput.
	rng := rand.New(rand.NewSource(1))
	var total float64
	var count int
	for round := 0; round < 4; round++ {
		perm := rng.Perm(nodes)
		var demands []*network.Demand
		for i := 0; i < nodes; i++ {
			j := perm[i]
			if j == i {
				continue
			}
			for k := 0; k < 4; k++ {
				ps, err := f.AdaptivePaths(f.NodeEndpoints(i)[k], f.NodeEndpoints(j)[k], 4, rng)
				if err != nil {
					t.Fatal(err)
				}
				demands = append(demands, &network.Demand{Paths: ps.Paths})
			}
		}
		if err := network.Solve(f, demands); err != nil {
			t.Fatal(err)
		}
		for _, d := range demands {
			total += d.Rate
			count++
		}
	}
	solver := total / float64(count) * 4 // per node
	ratio := solver / analytic
	if ratio < 0.6 || ratio > 1.8 {
		t.Errorf("solver %.3g vs analytic %.3g per node: ratio %.2f outside [0.6, 1.8]",
			solver, analytic, ratio)
	}
}

// The Figure-4 host-to-device aggregate must equal the STREAM model's
// sustained DRAM rate — the paper's own cross-check ("matching the
// Trento's STREAM performance").
func TestFig4MatchesStream(t *testing.T) {
	sys, err := core.NewScaledFrontier(2, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	h2d := float64(sys.Node.HostToDeviceAggregate(8))
	stream := float64(sys.Node.CPU.DRAM.Sustained())
	if math.Abs(h2d-stream)/stream > 1e-9 {
		t.Errorf("Fig4 aggregate %.4g != STREAM sustained %.4g", h2d, stream)
	}
}

// The event-driven transport's zero-load ping must agree with the
// fabric's analytic path latency.
func TestTransportMatchesPathLatency(t *testing.T) {
	f, err := machine.Scaled(6, 8, 4).NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewScaledFrontier(6, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := network.NewTransport(sys.Kernel, sys.Fabric)
	rtt, err := tr.Ping(0, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	path, err := f.MinimalPath(0, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	analytic := 2 * float64(f.PathLatency(path))
	if math.Abs(float64(rtt)-analytic)/analytic > 0.25 {
		t.Errorf("transport RTT %v vs analytic %v: >25%% apart", rtt, units.Seconds(analytic))
	}
}

// Power, HPL and the Green500 metric must be mutually consistent with
// the paper's 52 GF/W.
func TestPowerHPLConsistency(t *testing.T) {
	sys, err := core.NewFrontier(1)
	if err != nil {
		t.Fatal(err)
	}
	rmax := sys.HPLSpec.HPLRmax(sys.HPLSpec.Nodes)
	watts := sys.Power.SystemHPL(sys.Power.Nodes)
	gfw := power.Efficiency(rmax, watts) / 1e9
	if gfw < 50 || gfw > 56 {
		t.Errorf("cross-model efficiency = %.1f GF/W, want ~52", gfw)
	}
	// Energy for one HPL run: a couple of hours at ~21 MW is tens of MWh.
	energyMWh := float64(watts) / 1e6 * float64(sys.HPLSpec.HPLRunTime(sys.HPLSpec.Nodes, 0.85)) / 3600
	if energyMWh < 20 || energyMWh > 120 {
		t.Errorf("HPL energy = %.0f MWh, want tens of MWh", energyMWh)
	}
}

// The checkpoint interval used by the resiliency experiment must be
// consistent with Orion's measured ingest rate for the same burst.
func TestCheckpointIntervalUsesOrionRate(t *testing.T) {
	sys, err := core.NewFrontier(1)
	if err != nil {
		t.Fatal(err)
	}
	ingest := float64(sys.Orion.IngestTime(700 * units.TiB))
	if math.Abs(ingest-180)/180 > 0.15 {
		t.Errorf("ingest = %.0f s; the sec54 experiment assumes ~180 s", ingest)
	}
}

// Scheduler placement and the communicator model must agree: a packed
// job gets full NIC bandwidth, a spread job gets the taper-limited share.
func TestPlacementCommConsistency(t *testing.T) {
	sys, err := core.NewScaledFrontier(6, 8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	small, err := sys.Scheduler.Submit("packed", 6, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	commS, err := mpi.NewComm(sys.Fabric, small.Alloc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if commS.GroupsSpanned() != 1 {
		t.Fatalf("packed job spans %d groups", commS.GroupsSpanned())
	}
	nic := float64(sys.Fabric.Cfg.LinkRate) * sys.Fabric.Cfg.EndpointEfficiency
	if float64(commS.PerNICBandwidth()) != nic {
		t.Error("packed job should see full NIC rate")
	}
	big, err := sys.Scheduler.Submit("spread", 40, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	commB, err := mpi.NewComm(sys.Fabric, big.Alloc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if commB.GroupsSpanned() < 5 {
		t.Errorf("spread job spans %d groups", commB.GroupsSpanned())
	}
}
