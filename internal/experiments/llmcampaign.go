package experiments

import (
	"fmt"

	"frontiersim/internal/core"
	"frontiersim/internal/job"
	"frontiersim/internal/llm"
	"frontiersim/internal/machine"
	"frontiersim/internal/report"
	"frontiersim/internal/scheduler"
	"frontiersim/internal/units"
	"frontiersim/internal/workload"
)

// ExtLLM runs phase-structured LLM training steps through the real
// scheduler at increasing node counts and reports delivered tokens/sec:
// the job-program layer's first client. Each point submits a GPT-175B
// training program (TP/PP/DP collectives sized from the model's GEMM
// shards, microbatch bounded by HBM), lets the scheduler place it, and
// measures the runtime that emerges from the placement — so machine
// what-ifs (halving linkRate, taper changes) degrade the
// collective-bound points and leave compute-bound ones alone.
func ExtLLM(o Options) (*report.Table, error) {
	sys, err := core.New(o.machine(), o.Seed)
	if err != nil {
		return nil, err
	}
	if sys.Scheduler == nil {
		return nil, fmt.Errorf("ext-llm: machine has no scheduler")
	}
	t := &report.Table{ID: "ext-llm", Title: "LLM training at scale: tokens/sec vs node count"}
	nodeModel := o.machine().NodeModel()
	steps := 50
	counts := []int{64, 256, 1024, 4096}
	if o.Quick {
		steps = 10
		counts = []int{64, 256, 1024}
	}
	total := sys.Scheduler.F.Cfg.ComputeNodes()
	// Two regimes: the throughput sweep amortizes the gradient sync over
	// a deep batch (compute-bound, the production shape); the comm-bound
	// sweep runs data-parallel-only with a shallow batch, so the DP
	// allreduce crosses the fabric un-amortized and taper/link what-ifs
	// bite hard.
	sweeps := []struct {
		label string
		step  func(n int) (*llm.Step, error)
	}{
		{"175b", func(n int) (*llm.Step, error) {
			return llm.AutoStep(llm.Frontier175B(), n, nodeModel.Devices, nodeModel)
		}},
		{"22b comm-bound", func(n int) (*llm.Step, error) {
			par := llm.Parallelism{TP: nodeModel.Devices, PP: 1, DP: n}
			return llm.TrainStep(llm.Config{
				Model: llm.Frontier22B(), Par: par, PPN: nodeModel.Devices,
				GlobalBatch: 4 * par.DP, Node: nodeModel,
			})
		}},
	}
	for _, sw := range sweeps {
		var baseTok, baseNodes float64
		for _, n := range counts {
			row := fmt.Sprintf("%s, %d nodes", sw.label, n)
			if n > total {
				t.AddInfo(row, "skipped", fmt.Sprintf("machine has %d nodes", total))
				continue
			}
			step, err := sw.step(n)
			if err != nil {
				t.AddInfo(row, "infeasible", err.Error())
				continue
			}
			prog := step.WithSteps(steps, 0)
			j, err := sys.Scheduler.SubmitProgram(prog, nil)
			if err != nil {
				return nil, err
			}
			sys.Kernel.Run()
			if j.State != scheduler.Completed {
				t.AddInfo(row, j.State.String(),
					fmt.Sprintf("requested %v, program needs %v", j.Walltime, j.Bound.Total))
				continue
			}
			run := j.End - j.Start
			tok := step.TokensPerStep * float64(steps) / float64(run)
			collFrac := collectiveShare(j.Bound)
			note := fmt.Sprintf("%s: pipe eff %.2f, collectives %.0f%% of step",
				prog.Name, step.PipelineEff, collFrac*100)
			if baseTok == 0 {
				baseTok, baseNodes = tok, float64(n)
				t.AddInfo(row, fmt.Sprintf("%.3g tokens/s, step %v", tok, run/units.Seconds(steps)), note)
				continue
			}
			scaling := (tok / baseTok) / (float64(n) / baseNodes)
			t.Add(row, "linear scaling 1.0x",
				fmt.Sprintf("%.3g tokens/s, step %v, %.0f%% scaling eff",
					tok, run/units.Seconds(steps), scaling*100),
				1.0, scaling, note)
		}
	}
	return t, nil
}

// collectiveShare is the fraction of one priced loop pass spent in
// collective phases.
func collectiveShare(b *job.Bound) float64 {
	var coll, tot units.Seconds
	for i, d := range b.LoopTimes {
		tot += d
		if b.Prog.Loop[i].Kind == job.Collective {
			coll += d
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(coll) / float64(tot)
}

// ExtCampaign runs a simulated week of operations in which every job is
// phase-structured — stencil debug jobs, hydro and spectral proxies in
// the middle strata, LLM training as the hero class — on a scaled
// Frontier, so runtimes emerge from placement instead of being drawn and
// the campaign reports delivered-vs-requested walltime, per-class
// slowdown, and checkpoint/lost-work accounting. A -machine override is
// honoured as given (full Frontier works but prices many more programs).
func ExtCampaign(o Options) (*report.Table, error) {
	spec := o.machine()
	if o.Machine == nil {
		spec = machine.Scaled(8, 16, 8)
	}
	sys, err := core.New(spec, o.Seed)
	if err != nil {
		return nil, err
	}
	cache := o.pricingCache(sys, spec)
	cfg := workload.DefaultConfig()
	cfg.Mix = workload.ProgramMix(spec.Platform(), spec.NodeModel())
	cfg.MeanInterarrival = 10 * units.Minute
	if o.Quick {
		cfg.Duration = 1 * units.Day
	}
	stats, err := workload.Run(sys, cfg, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "ext-campaign", Title: "A phase-structured campaign week"}
	t.AddInfo("machine / window", fmt.Sprintf("%d nodes / %v", sys.Fabric.Cfg.ComputeNodes(), cfg.Duration),
		"every job a phase-structured program")
	t.AddInfo("jobs submitted", fmt.Sprintf("%d", stats.Submitted),
		fmt.Sprintf("debug %d, midsize %d, capability %d, hero %d",
			stats.ByClass["debug"], stats.ByClass["midsize"], stats.ByClass["capability"], stats.ByClass["hero"]))
	t.AddInfo("completed / failed / timeout", fmt.Sprintf("%d / %d / %d",
		stats.Completed, stats.Failed, stats.Timeouts), "timeouts hit their requested walltime mid-program")
	t.AddInfo("machine utilization", fmt.Sprintf("%.1f%%", stats.Utilization*100), "")
	if stats.Requested > 0 {
		t.Add("delivered vs requested walltime", "<= 1.0 (margin 1.25x)",
			fmt.Sprintf("%.2f (%v of %v)", float64(stats.Delivered)/float64(stats.Requested),
				stats.Delivered, stats.Requested),
			1.0, float64(stats.Delivered)/float64(stats.Requested),
			"programs re-priced on their granted placement")
	}
	for _, class := range []string{"stencil", "Cholla", "GESTS", "llm-train"} {
		if s, ok := stats.SlowdownByClass[class]; ok {
			t.AddInfo(fmt.Sprintf("slowdown: %s", class), fmt.Sprintf("%.1fx", s),
				"mean bounded slowdown (wait+run over run)")
		}
	}
	t.AddInfo("checkpoints / lost work", fmt.Sprintf("%d / %v", stats.Checkpoints, stats.LostWork),
		fmt.Sprintf("%d jobs interrupted mid-phase", stats.JobInterrupts))
	addSlowdownRows(t, stats)
	if cache != nil {
		hits, misses := cache.Stats()
		t.AddInfo("pricing cache", fmt.Sprintf("%.1f%% hit rate (%d hits / %d misses, %d entries)",
			cache.HitRate()*100, hits, misses, cache.Len()),
			"placement-signature memoization of program pricing; hits are bit-identical")
	}
	return t, nil
}
