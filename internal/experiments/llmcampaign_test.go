package experiments

import (
	"strings"
	"testing"

	"frontiersim/internal/report"
)

// renderOne runs a single experiment and renders its table.
func renderOne(t *testing.T, run func(Options) (*report.Table, error), o Options) string {
	t.Helper()
	tb, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	tb.Render(&b)
	return b.String()
}

// The phase-structured experiments obey the same contract as every
// other: Shards is a speed knob, never a result input — the rendered
// tables are byte-identical at any shard count.
func TestLLMCampaignShardInvariance(t *testing.T) {
	for _, exp := range []struct {
		name string
		run  func(Options) (*report.Table, error)
	}{
		{"ext-llm", ExtLLM},
		{"ext-campaign", ExtCampaign},
	} {
		ref := renderOne(t, exp.run, Options{Quick: true, Seed: 42, Shards: 1})
		for _, shards := range []int{2, 8} {
			if got := renderOne(t, exp.run, Options{Quick: true, Seed: 42, Shards: shards}); got != ref {
				t.Errorf("%s diverges at shards=%d:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
					exp.name, shards, ref, shards, got)
			}
		}
	}
}

// ext-llm must actually report token throughput scaling, and ext-campaign
// the delivered-vs-requested and lost-work accounting the job layer adds.
func TestLLMCampaignTablesReport(t *testing.T) {
	llmTable := renderOne(t, ExtLLM, quickOpts())
	for _, want := range []string{"tokens/s", "scaling eff", "comm-bound", "collectives"} {
		if !strings.Contains(llmTable, want) {
			t.Errorf("ext-llm table missing %q:\n%s", want, llmTable)
		}
	}
	campTable := renderOne(t, ExtCampaign, quickOpts())
	for _, want := range []string{"delivered vs requested", "slowdown", "lost work", "phase-structured"} {
		if !strings.Contains(campTable, want) {
			t.Errorf("ext-campaign table missing %q:\n%s", want, campTable)
		}
	}
}
