package experiments

import (
	"fmt"
	"frontiersim/internal/rng"

	"frontiersim/internal/machine"
	"frontiersim/internal/network"
	"frontiersim/internal/report"
)

// Fig6 reproduces the mpiGraph histograms for Frontier's dragonfly and
// Summit's fat tree.
func Fig6(o Options) (*report.Table, error) {
	t := &report.Table{ID: "fig6", Title: "mpiGraph per-NIC receive bandwidth census"}
	r := rng.New(o.Seed)

	// The machine under test (canonically Frontier's dragonfly).
	df, err := o.machine().NewFabric()
	if err != nil {
		return nil, err
	}
	dcfg := network.DefaultMpiGraphConfig()
	if o.Quick {
		dcfg.Shifts = 3
	}
	dres, err := network.RunMpiGraphWithCache(df, dcfg, r, o.Solutions, topoKey(o.machine()))
	if err != nil {
		return nil, err
	}
	t.Add("Frontier min", "~3 GB/s", report.GB(dres.Min), 3, dres.Min/1e9, "all-global traffic, non-minimal halving")
	t.Add("Frontier max", "~17.5 GB/s", report.GB(dres.Max), 17.5, dres.Max/1e9, "intra-group pairs, ~70% of 25 GB/s")
	t.Add("Frontier median", "wide distribution", report.GB(dres.Median), 0, 0,
		fmt.Sprintf("spread %.1fx across %d samples", dres.Spread(), len(dres.Samples)))

	// Summit, the fixed comparison baseline.
	cl, err := machine.Summit().NewFabric()
	if err != nil {
		return nil, err
	}
	scfg := network.DefaultMpiGraphConfig()
	scfg.RanksPerNode = 1
	if o.Quick {
		scfg.Shifts = 3
	}
	sres, err := network.RunMpiGraphWithCache(cl, scfg, r, o.Solutions, topoKey(machine.Summit()))
	if err != nil {
		return nil, err
	}
	t.Add("Summit mean", "~8.5 GB/s", report.GB(sres.Mean), 8.5, sres.Mean/1e9, "tight distribution on non-blocking fat tree")
	t.Add("Summit spread", "tight", fmt.Sprintf("%.2fx", sres.Spread()), 0, 0, "")

	if !o.Quick {
		edges, counts := dres.Histogram(14)
		for i := range edges {
			t.AddInfo(fmt.Sprintf("Frontier bin <=%s", report.GB(edges[i])), fmt.Sprintf("%d", counts[i]), "histogram")
		}
	}
	return t, nil
}

// Table5 reproduces GPCNeT at 9,400 nodes and 8 PPN with congestion
// control enabled.
func Table5(o Options) (*report.Table, error) {
	f, err := o.machine().NewFabric()
	if err != nil {
		return nil, err
	}
	cfg := network.DefaultGPCNeTConfig()
	if n := f.Cfg.ComputeNodes(); cfg.Nodes > n {
		cfg.Nodes = n // variant machines smaller than the 9,400-node run
	}
	if o.Quick {
		cfg.LatencySamples = 800
	}
	res, err := network.RunGPCNeTWithCache(f, cfg, rng.New(o.Seed), o.Solutions, topoKey(o.machine()))
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "table5", Title: "GPCNeT on 9,400 nodes, 8 PPN (isolated | congested)"}
	us := func(s float64) string { return fmt.Sprintf("%.1f us", s*1e6) }
	mib := func(b float64) string { return fmt.Sprintf("%.1f MiB/s", b/(1<<20)) }

	iso, con := res.Isolated, res.Congested
	t.Add("RR two-sided lat avg", "2.6 us", us(float64(iso.Latency.Average)), 2.6, float64(iso.Latency.Average)*1e6, "isolated")
	t.Add("RR two-sided lat 99%", "4.8 us", us(float64(iso.Latency.P99)), 4.8, float64(iso.Latency.P99)*1e6, "isolated")
	t.Add("RR BW+Sync avg", "3497.2 MiB/s/rank", mib(float64(iso.Bandwidth.Average)), 3497.2, float64(iso.Bandwidth.Average)/(1<<20), "isolated")
	t.Add("RR BW+Sync 99%", "2514.4 MiB/s/rank", mib(float64(iso.Bandwidth.P99)), 2514.4, float64(iso.Bandwidth.P99)/(1<<20), "isolated")
	t.Add("Allreduce avg", "51.5 us", us(float64(iso.Allreduce.Average)), 51.5, float64(iso.Allreduce.Average)*1e6, "isolated")
	t.Add("Allreduce 99%", "54.1 us", us(float64(iso.Allreduce.P99)), 54.1, float64(iso.Allreduce.P99)*1e6, "isolated")

	t.Add("congested lat avg", "2.6 us", us(float64(con.Latency.Average)), 2.6, float64(con.Latency.Average)*1e6, "congestion control holds")
	t.Add("congested BW avg", "3472.2 MiB/s/rank", mib(float64(con.Bandwidth.Average)), 3472.2, float64(con.Bandwidth.Average)/(1<<20), "")
	t.Add("congested allreduce avg", "51.6 us", us(float64(con.Allreduce.Average)), 51.6, float64(con.Allreduce.Average)*1e6, "")
	t.Add("impact factor (BW)", "1.0x", fmt.Sprintf("%.2fx", res.BandwidthImpact), 1.0, res.BandwidthImpact, "ideal: congested == isolated")
	t.Add("impact factor (lat)", "1.0x", fmt.Sprintf("%.2fx", res.LatencyImpact), 1.0, res.LatencyImpact, "")
	return t, nil
}
