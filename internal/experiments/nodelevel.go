package experiments

import (
	"fmt"

	"frontiersim/internal/core"
	"frontiersim/internal/gpu"
	"frontiersim/internal/node"
	"frontiersim/internal/report"
	"frontiersim/internal/units"
)

// Table1 reproduces the compute peak specifications.
func Table1(o Options) (*report.Table, error) {
	s, err := core.New(o.machine(), o.Seed)
	if err != nil {
		return nil, err
	}
	sp := s.ComputeSpecs()
	t := &report.Table{ID: "table1", Title: "Frontier compute peak specifications"}
	t.Add("Nodes", "9,472", fmt.Sprintf("%d", sp.Nodes), 9472, float64(sp.Nodes), "") //machinelint:allow paper-published expected value
	t.Add("FP64 DGEMM", "2.0 EF",
		fmt.Sprintf("%.2f EF (vector %.2f EF)", float64(sp.FP64DGEMM)/1e18, float64(sp.FP64VectorPeak)/1e18),
		2.0, float64(sp.FP64DGEMM)/1e18,
		"paper's 2.0 EF sits between vector peak and matrix-pipe DGEMM")
	t.Add("DDR4 capacity", "4.6 PiB", fmt.Sprintf("%.2f PiB", float64(sp.DDRCapacity)/float64(units.PiB)),
		4.6, float64(sp.DDRCapacity)/float64(units.PiB), "")
	t.Add("DDR4 bandwidth", "1.9 PiB/s", fmt.Sprintf("%.2f PB/s", float64(sp.DDRBandwidth)/1e15),
		1.9, float64(sp.DDRBandwidth)/1e15, "paper mixes PiB/PB; model reports decimal")
	t.Add("HBM2e capacity", "4.6 PiB", fmt.Sprintf("%.2f PiB", float64(sp.HBMCapacity)/float64(units.PiB)),
		4.6, float64(sp.HBMCapacity)/float64(units.PiB), "")
	t.Add("HBM2e bandwidth", "123.9 PiB/s", fmt.Sprintf("%.1f PB/s", float64(sp.HBMBandwidth)/1e15),
		123.9, float64(sp.HBMBandwidth)/1e15, "")
	t.Add("Injection/node", "100 GB/s", report.GB(float64(sp.InjectionPerNode)),
		100, float64(sp.InjectionPerNode)/1e9, "4x 200 Gb/s Cassini")
	t.Add("Global bandwidth", "270+270 TB/s", report.GB(float64(sp.GlobalBandwidth)),
		270.1, float64(sp.GlobalBandwidth)/1e12, "one direction")
	return t, nil
}

// Table3 reproduces CPU STREAM with temporal and non-temporal stores.
func Table3(o Options) (*report.Table, error) {
	s, err := core.New(o.machine(), o.Seed)
	if err != nil {
		return nil, err
	}
	if s.Node == nil {
		return nil, fmt.Errorf("experiments: table3 needs a machine with the Bard Peak node model")
	}
	t := &report.Table{ID: "table3", Title: "CPU STREAM (MB/s), 7.6 GB arrays, NPS-4"}
	paper := map[string][2]float64{
		"Copy":  {176780.4, 179130.5},
		"Scale": {107262.2, 172396.2},
		"Add":   {125567.1, 178356.8},
		"Triad": {120702.1, 178277.0},
	}
	temporal := s.Node.CPU.Stream(7.6*units.GB, true)
	nontemporal := s.Node.CPU.Stream(7.6*units.GB, false)
	for i, row := range temporal {
		p := paper[row.Kernel]
		mT := float64(row.Bandwidth) / 1e6
		mN := float64(nontemporal[i].Bandwidth) / 1e6
		t.Add(row.Kernel+" temporal", fmt.Sprintf("%.1f", p[0]), fmt.Sprintf("%.1f", mT), p[0], mT, "")
		t.Add(row.Kernel+" non-temporal", fmt.Sprintf("%.1f", p[1]), fmt.Sprintf("%.1f", mN), p[1], mN, "")
	}
	return t, nil
}

// Fig3 reproduces the CoralGemm comparison.
func Fig3(o Options) (*report.Table, error) {
	g := gpu.NewMI250XGCD()
	t := &report.Table{ID: "fig3", Title: "CoralGemm achieved vs peak, single GCD (TF/s)"}
	paper := map[gpu.Precision]float64{gpu.FP64: 33.8, gpu.FP32: 24.1, gpu.FP16: 111.2}
	for _, row := range g.Figure3() {
		m := float64(row.Achieved) / 1e12
		p := paper[row.Precision]
		note := fmt.Sprintf("reference peak %.1f TF/s", float64(row.ReferencePeak)/1e12)
		if row.ExceedsPeak {
			note += "; exceeds vector peak via matrix cores"
		}
		t.Add(row.Precision.String(), fmt.Sprintf("%.1f", p), fmt.Sprintf("%.1f", m), p, m, note)
	}
	if !o.Quick {
		// The size ramp behind the figure.
		for _, pt := range g.GemmSweep(gpu.FP64, []int{1024, 4096, 16384}) {
			t.AddInfo(fmt.Sprintf("FP64 n=%d", pt.N), fmt.Sprintf("%.1f TF/s", float64(pt.Achieved)/1e12), "ramp")
		}
	}
	return t, nil
}

// Table4 reproduces GPU STREAM.
func Table4(o Options) (*report.Table, error) {
	g := gpu.NewMI250XGCD()
	t := &report.Table{ID: "table4", Title: "GPU STREAM (MB/s), 8 GB arrays, single GCD"}
	paper := map[string]float64{
		"Copy": 1336574.8, "Mul": 1338272.2, "Add": 1288240.3,
		"Triad": 1285239.7, "Dot": 1374240.6,
	}
	for _, row := range g.Stream(8 * units.GB) {
		m := float64(row.Bandwidth) / 1e6
		p := paper[row.Kernel]
		t.Add(row.Kernel, fmt.Sprintf("%.1f", p), fmt.Sprintf("%.1f", m), p, m, "")
	}
	return t, nil
}

// Fig4 reproduces the aggregate host-to-device bandwidth of 8 ranks.
func Fig4(o Options) (*report.Table, error) {
	n := node.New(0)
	t := &report.Table{ID: "fig4", Title: "CPU→GCD bandwidth, 8 MPI ranks to their own GCDs"}
	single := float64(n.SingleCoreHostDeviceBandwidth())
	t.Add("single core", "25.5 GB/s", report.GB(single), 25.5, single/1e9, "~71% of xGMI-2 peak")
	agg := float64(n.HostToDeviceAggregate(8))
	t.Add("8 ranks aggregate", "~180 GB/s", report.GB(agg), 180, agg/1e9, "DDR4-limited, matches STREAM")
	if !o.Quick {
		for _, size := range []units.Bytes{64 * units.KiB, units.MiB, 16 * units.MiB, 256 * units.MiB} {
			bw := float64(n.HostToDeviceBandwidth(8, size))
			t.AddInfo(fmt.Sprintf("ramp @ %v/rank", size), report.GB(bw), "")
		}
	}
	return t, nil
}

// Fig5 reproduces peer GCD bandwidths by method and link count.
func Fig5(o Options) (*report.Table, error) {
	n := node.New(0)
	t := &report.Table{ID: "fig5", Title: "GCD↔GCD bandwidth on a Bard Peak node"}
	cases := []struct {
		name   string
		a, b   int
		method node.TransferMethod
		paper  float64
	}{
		{"CU kernel, 4 links (intra-OAM)", 0, 1, node.CUKernel, 145.5},
		{"CU kernel, 2 links (north/south)", 0, 2, node.CUKernel, 74.9},
		{"CU kernel, 1 link (east/west)", 0, 7, node.CUKernel, 37.5},
		{"SDMA, 4 links", 0, 1, node.SDMA, 50},
		{"SDMA, 2 links", 0, 2, node.SDMA, 50},
		{"SDMA, 1 link", 0, 7, node.SDMA, 50},
	}
	for _, c := range cases {
		bw, err := n.PeerAsymptote(c.method, c.a, c.b)
		if err != nil {
			return nil, err
		}
		t.Add(c.name, fmt.Sprintf("%.1f GB/s", c.paper), report.GB(float64(bw)), c.paper, float64(bw)/1e9,
			"SDMA engines cannot stripe across links")
	}
	return t, nil
}
