package experiments

import (
	"context"
	"time"

	"frontiersim/internal/harness"
	"frontiersim/internal/report"
)

// RunConfig tunes parallel execution of a set of experiments.
type RunConfig struct {
	// Jobs bounds concurrent experiments; <=0 means GOMAXPROCS.
	Jobs int
	// FailFast stops dispatching after the first failure; otherwise
	// every experiment runs and errors are collected.
	FailFast bool
	// Timeout bounds the whole batch; 0 means none.
	Timeout time.Duration
}

// RunResult is one experiment's outcome plus its execution metrics.
type RunResult struct {
	ID       string
	Table    *report.Table
	Err      error
	Seed     int64 // the derived per-experiment seed actually used
	Duration time.Duration
	Skipped  bool
}

// RunAll executes runners on the harness worker pool. Each runner
// receives a copy of o whose Seed is derived from (o.Seed, runner.ID),
// so the tables — and anything rendered from them — are byte-identical
// at any Jobs setting, and independent of which other experiments run
// in the same batch. Results are returned, and emit (if non-nil) is
// called, in runner order.
func RunAll(ctx context.Context, runners []Runner, o Options, cfg RunConfig, emit func(RunResult)) ([]RunResult, error) {
	tasks := make([]harness.Task[*report.Table], len(runners))
	for i, r := range runners {
		r := r
		tasks[i] = harness.Task[*report.Table]{
			ID:   r.ID,
			Cost: r.Cost,
			Run: func(_ context.Context, seed int64) (*report.Table, error) {
				opts := o
				opts.Seed = seed
				return r.Run(opts)
			},
		}
	}
	hcfg := harness.Config{
		Jobs:     cfg.Jobs,
		FailFast: cfg.FailFast,
		Timeout:  cfg.Timeout,
		RootSeed: o.Seed,
	}
	var wrap func(harness.Result[*report.Table])
	if emit != nil {
		wrap = func(hr harness.Result[*report.Table]) { emit(fromHarness(hr)) }
	}
	hres, err := harness.Run(ctx, hcfg, tasks, wrap)
	results := make([]RunResult, len(hres))
	for i, hr := range hres {
		results[i] = fromHarness(hr)
	}
	return results, err
}

func fromHarness(hr harness.Result[*report.Table]) RunResult {
	return RunResult{
		ID:       hr.ID,
		Table:    hr.Value,
		Err:      hr.Err,
		Seed:     hr.Seed,
		Duration: hr.Duration,
		Skipped:  hr.Skipped,
	}
}
