package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"frontiersim/internal/report"
)

// renderAll renders every table the way `frontier-sim run all` does.
func renderAll(t *testing.T, results []RunResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		r.Table.Render(&buf)
	}
	return buf.Bytes()
}

// The determinism guarantee: `run all` output is byte-identical at any
// worker count because per-experiment seeds depend only on (root seed,
// experiment id), never on scheduling.
func TestRunAllParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep in -short mode")
	}
	runners := Registry()
	serial, err := RunAll(context.Background(), runners, quickOpts(), RunConfig{Jobs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(context.Background(), runners, quickOpts(), RunConfig{Jobs: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderAll(t, serial), renderAll(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("jobs=1 and jobs=8 render differently:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	for i := range serial {
		if serial[i].Seed != parallel[i].Seed {
			t.Errorf("%s: seed %d (serial) != %d (parallel)", serial[i].ID, serial[i].Seed, parallel[i].Seed)
		}
	}
}

// A runner's table must not depend on which other experiments share the
// batch: a single-experiment run reproduces its run-all table exactly.
func TestRunSingleMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep in -short mode")
	}
	batch, err := RunAll(context.Background(), Registry(), quickOpts(), RunConfig{Jobs: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fig6, err := ByID("fig6")
	if err != nil {
		t.Fatal(err)
	}
	solo, err := RunAll(context.Background(), []Runner{fig6}, quickOpts(), RunConfig{Jobs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fromBatch *report.Table
	for _, r := range batch {
		if r.ID == "fig6" {
			fromBatch = r.Table
		}
	}
	var a, b bytes.Buffer
	fromBatch.Render(&a)
	solo[0].Table.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("fig6 differs between solo and batch runs:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunAllEmitsInOrder(t *testing.T) {
	runners := Registry()[:6]
	var order []string
	_, err := RunAll(context.Background(), runners, quickOpts(), RunConfig{Jobs: 4},
		func(r RunResult) { order = append(order, r.ID) })
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(runners) {
		t.Fatalf("emitted %d of %d results", len(order), len(runners))
	}
	for i, r := range runners {
		if order[i] != r.ID {
			t.Errorf("emission %d = %s, want %s", i, order[i], r.ID)
		}
	}
}

func TestRunAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before dispatch: everything must be skipped
	results, err := RunAll(ctx, Registry(), quickOpts(), RunConfig{Jobs: 4}, nil)
	if err == nil {
		t.Fatal("cancelled RunAll must report an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range results {
		if !r.Skipped {
			t.Errorf("%s ran despite pre-cancelled context", r.ID)
		}
	}
}

func TestRunAllTimeout(t *testing.T) {
	start := time.Now()
	_, err := RunAll(context.Background(), Registry(), quickOpts(),
		RunConfig{Jobs: 1, Timeout: time.Nanosecond}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Error("timeout failed to cut the batch short")
	}
}

func TestVerifyReportsDurations(t *testing.T) {
	if testing.Short() {
		t.Skip("verify sweep in -short mode")
	}
	results := VerifyContext(context.Background(), quickOpts(), RunConfig{})
	var timed int
	for _, r := range results {
		if r.Duration > 0 {
			timed++
		}
	}
	// The stochastic network experiments take seconds even in quick
	// mode; at least those must carry a visible duration.
	if timed == 0 {
		t.Error("no verify result carries a duration")
	}
}
