package experiments

import (
	"fmt"
	"frontiersim/internal/rng"
	"sort"

	"frontiersim/internal/power"
	"frontiersim/internal/report"
	"frontiersim/internal/resilience"
	"frontiersim/internal/units"
)

// Sec51 reproduces the energy/power discussion: Frontier debuted #1 on
// both TOP500 and Green500.
func Sec51(o Options) (*report.Table, error) {
	m := o.machine()
	spec, err := m.HPLSpec()
	if err != nil {
		return nil, err
	}
	pw, err := m.PowerMachine()
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "sec51", Title: "Energy and power (§5.1)"}
	rmax := float64(spec.HPLRmax(spec.Nodes)) / 1e18
	t.Add("HPL Rmax", "1.1 EF", fmt.Sprintf("%.2f EF", rmax), 1.1, rmax, "June 2022 TOP500 #1")
	watts := pw.SystemHPL(pw.Nodes)
	mw := float64(watts) / 1e6
	t.Add("HPL power", "21.1 MW", fmt.Sprintf("%.1f MW", mw), 21.1, mw, "")
	gfw := power.Efficiency(units.Flops(rmax*1e18), watts) / 1e9
	t.Add("efficiency", "52 GF/W", fmt.Sprintf("%.1f GF/W", gfw), 52, gfw, "Green500 #1; report's target was 50")
	mwef := power.MWPerExaflop(units.Flops(rmax*1e18), watts)
	t.Add("MW per EF", "<20 MW/EF", fmt.Sprintf("%.1f MW/EF", mwef), 19.2, mwef, "2008 report ceiling: 20")
	hpcg := float64(spec.HPCG(spec.Nodes)) / 1e15
	t.Add("HPCG", "~14 PF", fmt.Sprintf("%.1f PF", hpcg), 14, hpcg, "bandwidth-bound; [38]'s preferred metric")
	t.AddInfo("HPL problem size", fmt.Sprintf("N = %.1fM", float64(spec.HPLProblemSize(spec.Nodes, 0.85))/1e6), "85% of HBM")
	t.AddInfo("HPL run time", fmt.Sprintf("%v", spec.HPLRunTime(spec.Nodes, 0.85)), "")
	return t, nil
}

// Sec54 reproduces the resiliency analysis: MTTI near the 2008 report's
// four-hour projection, led by memory and power supplies.
func Sec54(o Options) (*report.Table, error) {
	m, err := o.machine().ResilienceModel()
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "sec54", Title: "Resiliency (§5.4)"}
	mttiH := float64(m.SystemMTTI()) / 3600
	t.Add("system MTTI (analytic)", "~4 h (report projection)", fmt.Sprintf("%.1f h", mttiH), 4, mttiH,
		"\"not much better than their projected four-hour target\"")

	horizon := 30 * units.Day
	if o.Quick {
		horizon = 10 * units.Day
	}
	failures := m.Simulate(horizon, rng.New(o.Seed))
	measured := float64(resilience.MeasuredMTTI(failures, horizon)) / 3600
	t.Add("system MTTI (Monte Carlo)", "~4 h", fmt.Sprintf("%.1f h (%d failures / %v)", measured, len(failures), horizon),
		4, measured, "")

	type share struct {
		name string
		frac float64
	}
	var shares []share
	for name, frac := range m.Contribution() {
		shares = append(shares, share{name, frac})
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].frac > shares[j].frac })
	for _, s := range shares[:3] {
		t.AddInfo("contributor: "+s.name, fmt.Sprintf("%.0f%%", s.frac*100), "memory and power supplies lead, as observed")
	}

	ckpt := resilience.OptimalCheckpointInterval(180, m.SystemMTTI())
	t.AddInfo("optimal checkpoint interval", fmt.Sprintf("%v", ckpt), "Daly, 180 s Orion burst")
	eff := resilience.CheckpointEfficiency(ckpt, 180, 600, m.SystemMTTI())
	t.AddInfo("checkpointed utilization", fmt.Sprintf("%.1f%%", eff*100), "")
	t.AddInfo("terascale-era goal", "8-12 h", "paper expects Frontier to approach this over time")
	return t, nil
}
