package experiments

import (
	"fmt"

	"frontiersim/internal/fabric"
	"frontiersim/internal/network"
	"frontiersim/internal/report"
	"frontiersim/internal/resilience"
	"frontiersim/internal/sim"
	"frontiersim/internal/sysmgmt"
	"frontiersim/internal/units"
)

// shardedStorm drives one compute group's share of the all-to-all
// message storm. It runs as the group's t=0 event, so source selection,
// Send calls, and the per-LP stream all stay on the owning LP.
type shardedStorm struct {
	tr       *network.ShardedTransport
	lp       *sim.LP
	sources  []int // this group's endpoints
	targets  int   // compute endpoints form the destination pool
	messages int
	size     units.Bytes
	count    []int     // per-destination-LP deliveries (single-writer by index)
	latency  []float64 // per-destination-LP summed latency
}

func shardedStormKick(arg any) {
	s := arg.(*shardedStorm)
	r := s.lp.Stream("storm")
	for i := 0; i < s.messages; i++ {
		src := s.sources[r.Intn(len(s.sources))]
		dst := r.Intn(s.targets)
		for dst == src {
			dst = r.Intn(s.targets)
		}
		lp := s.tr.F.EndpointLP(dst)
		err := s.tr.Send(src, dst, s.size, func(elapsed units.Seconds) {
			// Runs on the destination LP; indexing by that LP keeps the
			// shared slices single-writer.
			s.count[lp]++
			s.latency[lp] += float64(elapsed)
		})
		if err != nil {
			panic(err)
		}
	}
}

// ExtSharded exercises the sharded parallel event kernel end to end:
// phase 1 runs a cross-group message storm over the dragonfly transport
// while the HPCM management plane sweeps discovery on its own logical
// process; phase 2 injects a year of component failures across a static
// per-group partition. Every reported row is shard-invariant by the
// kernel's determinism contract — Options.Shards changes wall time, not
// one byte of this table.
func ExtSharded(o Options) (*report.Table, error) {
	m := o.machine()
	f, err := m.NewFabric()
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "ext-sharded", Title: "Sharded parallel kernel (per-group LPs, conservative lookahead)"}

	// Phase 1: transport storm + management plane on one sharded kernel.
	// The fabric is the partition: one LP per dragonfly group, lookahead
	// bounded by the minimum inter-group latency (one switch traversal).
	sk := sim.NewSharded(o.Seed, f, o.Shards)
	t.AddInfo("partition", fmt.Sprintf("%d group LPs, lookahead %v", sk.NumLPs(), sk.Lookahead()),
		"per dragonfly group; lookahead = min inter-group latency")

	tr := network.NewShardedTransport(sk, f)
	tr.WarmLinks()
	nlp := sk.NumLPs()
	count := make([]int, nlp)
	latency := make([]float64, nlp)
	messages := 48
	if o.Quick {
		messages = 8
	}
	kicks := 0
	for g := 0; g < nlp; g++ {
		if f.GroupClassOf(g) != fabric.ComputeGroup {
			continue
		}
		var sources []int
		for _, sw := range f.GroupSwitches(g) {
			for e := 0; e < f.Cfg.EndpointsPerSwitch; e++ {
				sources = append(sources, sw*f.Cfg.EndpointsPerSwitch+e)
			}
		}
		lp := sk.LP(g)
		s := &shardedStorm{
			tr: tr, lp: lp, sources: sources,
			targets: f.Cfg.ComputeEndpoints(), messages: messages,
			size: 64 * units.KiB, count: count, latency: latency,
		}
		lp.K.AtCall(0, shardedStormKick, s)
		kicks++
	}

	// The management plane lives on the last group's LP (the mgmt group
	// on Frontier); its discovery daemon ticks across window barriers.
	mgmtCfg, err := m.MgmtConfig()
	if err != nil {
		return nil, err
	}
	mgmtLP := sk.LP(nlp - 1)
	h, err := sysmgmt.NewOnLP(mgmtLP, mgmtCfg)
	if err != nil {
		return nil, err
	}
	h.DiscoverInterval = 0.05
	sweeps := 0
	h.StartDiscovery(func() map[string]string {
		sweeps++
		return map[string]string{fmt.Sprintf("chassis-%d", sweeps): "present"}
	})
	sk.RunUntil(1.0)
	h.StopDiscovery()

	delivered, totalLat := 0, 0.0
	for lp := 0; lp < nlp; lp++ {
		delivered += count[lp]
		totalLat += latency[lp]
	}
	t.AddInfo("storm delivered", fmt.Sprintf("%d msgs, %v", delivered, units.Bytes(delivered)*64*units.KiB),
		fmt.Sprintf("%d compute groups x %d sends, 64 KiB each", kicks, messages))
	if delivered != tr.Delivered() {
		return nil, fmt.Errorf("ext-sharded: per-LP counts sum to %d, transport reports %d", delivered, tr.Delivered())
	}
	if delivered > 0 {
		t.AddInfo("mean storm latency", fmt.Sprintf("%v", units.Seconds(totalLat/float64(delivered))),
			"endpoint to endpoint through the dragonfly")
	}
	t.AddInfo("discovery sweeps", fmt.Sprintf("%d sweeps, %d inventory items", sweeps, len(h.Inventory)),
		"HPCM daemon on the mgmt group's LP")
	t.AddInfo("events executed (storm)", fmt.Sprintf("%d", sk.Executed()), "summed across logical processes")

	// Phase 2: a year of component failures across a static partition.
	// Failure injection has no cross-LP events, so one window covers the
	// whole horizon and the trace work parallelises across groups.
	horizon := 365 * units.Day
	if o.Quick {
		horizon = 30 * units.Day
	}
	rm, err := m.ResilienceModel()
	if err != nil {
		return nil, err
	}
	sk2 := sim.NewSharded(o.Seed, sim.StaticPartition{LPs: f.NumLPs(), Bound: horizon}, o.Shards)
	interrupts := make([]int, sk2.NumLPs())
	inj := rm.InjectSharded(sk2, horizon, func(lp int, fl resilience.Failure) {
		if fl.Interrupting {
			interrupts[lp]++
		}
	})
	sk2.RunUntil(horizon)
	ni := 0
	for _, c := range interrupts {
		ni += c
	}
	t.AddInfo("failure horizon", fmt.Sprintf("%v", horizon), "populations split across group LPs")
	t.AddInfo("failures injected", fmt.Sprintf("%d (%d interrupting)", inj.Failures(), ni), "")
	if ni > 0 {
		t.AddInfo("measured MTTI", fmt.Sprintf("%v (analytic %v)", horizon/units.Seconds(ni), rm.SystemMTTI()),
			"merged per-LP Poisson processes preserve the machine rate")
	}
	return t, nil
}
