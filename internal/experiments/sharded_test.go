package experiments

import (
	"strings"
	"testing"
)

// TestExtShardedInvariantAcrossShardCounts pins the experiment's core
// contract: Options.Shards is a speed knob, never a result input. The
// rendered table must be byte-identical at any worker count.
func TestExtShardedInvariantAcrossShardCounts(t *testing.T) {
	run := func(shards int) string {
		tb, err := ExtSharded(Options{Quick: true, Seed: 42, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		tb.Render(&b)
		return b.String()
	}
	ref := run(1)
	if !strings.Contains(ref, "storm delivered") || !strings.Contains(ref, "failures injected") {
		t.Fatalf("ext-sharded table missing expected rows:\n%s", ref)
	}
	for _, shards := range []int{2, 8} {
		if got := run(shards); got != ref {
			t.Errorf("ext-sharded output diverges at shards=%d:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
				shards, ref, shards, got)
		}
	}
}
