package experiments

import (
	"fmt"

	"frontiersim/internal/report"
	"frontiersim/internal/storage"
	"frontiersim/internal/units"
)

// Table2 reproduces the I/O subsystem specification table.
func Table2(o Options) (*report.Table, error) {
	t := &report.Table{ID: "table2", Title: "I/O subsystem capacity and theoretical bandwidths"}
	m := o.machine()
	nl, err := m.NodeLocal()
	if err != nil {
		return nil, err
	}
	nodes := m.Nodes()
	agg := nl.Aggregate(nodes)
	contractedRead := float64(nl.ContractedRead()) * float64(nodes)
	contractedWrite := float64(nl.ContractedWrite()) * float64(nodes)
	t.Add("Node-local capacity", "32.9 PB", fmt.Sprintf("%.1f PB", float64(agg.Capacity)/1e15),
		32.9, float64(agg.Capacity)/1e15, "")
	t.Add("Node-local read", "75.3 TB/s", report.GB(contractedRead), 75.3, contractedRead/1e12, "theoretical")
	t.Add("Node-local write", "37.6 TB/s", report.GB(contractedWrite), 37.6, contractedWrite/1e12, "theoretical")

	or, err := m.Orion()
	if err != nil {
		return nil, err
	}
	md := or.Tiers[storage.MetadataTier]
	pf := or.Tiers[storage.PerformanceTier]
	ct := or.Tiers[storage.CapacityTier]
	t.Add("Orion metadata capacity", "10.0 PB", fmt.Sprintf("%.1f PB", float64(md.Capacity)/1e15), 10, float64(md.Capacity)/1e15, "")
	t.Add("Orion metadata R/W", "0.8 / 0.4 TB/s",
		fmt.Sprintf("%.1f / %.1f TB/s", float64(md.Read)/1e12, float64(md.Write)/1e12), 0.8, float64(md.Read)/1e12, "")
	t.Add("Orion performance capacity", "11.5 PB", fmt.Sprintf("%.1f PB", float64(pf.Capacity)/1e15), 11.5, float64(pf.Capacity)/1e15, "225 SSUs x 24 NVMe, dRAID 4d:2p")
	t.Add("Orion performance R/W", "10.0 / 10.0 TB/s",
		fmt.Sprintf("%.1f / %.1f TB/s", float64(pf.Read)/1e12, float64(pf.Write)/1e12), 10, float64(pf.Read)/1e12, "")
	t.Add("Orion capacity tier", "679.0 PB", fmt.Sprintf("%.0f PB", float64(ct.Capacity)/1e15), 679, float64(ct.Capacity)/1e15, "212 HDDs/SSU, dRAID 8d:2p")
	t.Add("Orion capacity read", "5.5 TB/s", report.GB(float64(ct.Read)), 5.5, float64(ct.Read)/1e12, "theoretical")
	t.Add("Orion capacity write", "4.6 TB/s", report.GB(float64(ct.Write)), 4.6, float64(ct.Write)/1e12, "theoretical")
	return t, nil
}

// Sec431 reproduces the node-local storage measurements.
func Sec431(o Options) (*report.Table, error) {
	m := o.machine()
	nl, err := m.NodeLocal()
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "sec431", Title: "Node-local NVMe, fio measurements per node"}
	read := nl.RunFio(storage.FioSeqRead, 100*units.GB)
	write := nl.RunFio(storage.FioSeqWrite, 100*units.GB)
	iops := nl.RunFio(storage.FioRandRead4k, 10*units.GB)
	t.Add("seq read", "7.1 GB/s", report.GB(float64(read.Bandwidth)), 7.1, float64(read.Bandwidth)/1e9, "contract: 8 GB/s")
	t.Add("seq write", "4.2 GB/s", report.GB(float64(write.Bandwidth)), 4.2, float64(write.Bandwidth)/1e9, "contract: 4 GB/s")
	t.Add("4k random read", "1.58M IOPS", fmt.Sprintf("%.2fM IOPS", iops.IOPS/1e6), 1.58, iops.IOPS/1e6, "contract: 1.6M")
	agg := nl.Aggregate(m.Nodes())
	t.Add("full-machine read", "67.3 TB/s", report.GB(float64(agg.Read)), 67.3, float64(agg.Read)/1e12, "")
	t.Add("full-machine write", "39.8 TB/s", report.GB(float64(agg.Write)), 39.8, float64(agg.Write)/1e12, "")
	t.Add("full-machine IOPS", "~15.0B", fmt.Sprintf("%.1fB", agg.IOPS/1e9), 15.0, agg.IOPS/1e9, "")
	return t, nil
}

// Sec432 reproduces the Orion measurements.
func Sec432(o Options) (*report.Table, error) {
	or, err := o.machine().Orion()
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "sec432", Title: "Orion Lustre streaming and burst ingest"}
	fr := float64(or.StreamBandwidth(8*units.MB, false))
	fw := float64(or.StreamBandwidth(8*units.MB, true))
	br := float64(or.StreamBandwidth(100*units.GB, false))
	bw := float64(or.StreamBandwidth(100*units.GB, true))
	t.Add("flash-tier read", "11.7 TB/s", report.GB(fr), 11.7, fr/1e12, "files within the flash tier")
	t.Add("flash-tier write", "9.4 TB/s", report.GB(fw), 9.4, fw/1e12, "")
	t.Add("large-file read", "4.9 TB/s", report.GB(br), 4.9, br/1e12, "capacity tier")
	t.Add("large-file write", "4.3 TB/s", report.GB(bw), 4.3, bw/1e12, "")
	ingest := float64(or.IngestTime(700 * units.TiB))
	t.Add("ingest 700 TiB (15% of HBM)", "~180 s", fmt.Sprintf("%.0f s", ingest), 180, ingest, "<5% of walltime per hour for I/O")
	dom, perf, capT := or.SplitFile(100 * units.MB)
	t.AddInfo("PFL split of a 100 MB file",
		fmt.Sprintf("DoM %v, flash %v, disk %v", dom, perf, capT),
		"first 256 KB on metadata, to 8 MB on flash, rest on disk")
	return t, nil
}
