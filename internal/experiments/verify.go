package experiments

import (
	"fmt"
	"math"
)

// Envelopes returns the acceptable worst-case |paper-vs-measured|
// relative deviation per experiment. Deterministic hardware models are
// tight; stochastic network censuses and the Monte-Carlo MTTI carry more
// slack; experiments without numeric paper rows have no envelope.
func Envelopes() map[string]float64 {
	return map[string]float64{
		"table1":        0.30, // the FP64 "2.0 EF" convention mismatch is documented
		"table2":        0.06,
		"table3":        0.06,
		"fig3":          0.03,
		"table4":        0.02,
		"fig4":          0.05,
		"fig5":          0.02,
		"fig6":          0.35, // histogram extremes are sampled
		"table5":        0.25,
		"sec431":        0.05,
		"sec432":        0.08,
		"table6":        0.12,
		"table7":        0.06,
		"sec51":         0.06,
		"sec54":         0.60, // MTTI "not much better than" the round 4 h projection
		"ablation-nps":  0.05,
		"ablation-ppn":  0.35,
		"ext-inventory": 0.15,
	}
}

// VerifyResult is one experiment's reproduction check.
type VerifyResult struct {
	ID             string
	WorstDeviation float64
	Envelope       float64
	Pass           bool
	Err            error
}

// String renders the row.
func (v VerifyResult) String() string {
	status := "PASS"
	if !v.Pass {
		status = "FAIL"
	}
	if v.Err != nil {
		return fmt.Sprintf("%-20s %s  (%v)", v.ID, status, v.Err)
	}
	if v.Envelope == 0 {
		return fmt.Sprintf("%-20s %s  (no numeric paper rows)", v.ID, status)
	}
	return fmt.Sprintf("%-20s %s  worst deviation %5.1f%% (envelope %.0f%%)",
		v.ID, status, v.WorstDeviation*100, v.Envelope*100)
}

// Verify runs every registered experiment and checks it against its
// envelope. An experiment with no envelope passes if it runs.
func Verify(o Options) []VerifyResult {
	envs := Envelopes()
	var out []VerifyResult
	for _, r := range Registry() {
		res := VerifyResult{ID: r.ID, Envelope: envs[r.ID]}
		table, err := r.Run(o)
		if err != nil {
			res.Err = err
			out = append(out, res)
			continue
		}
		res.WorstDeviation = table.MaxAbsDeviation()
		res.Pass = res.Envelope == 0 || res.WorstDeviation <= res.Envelope ||
			math.IsNaN(res.WorstDeviation)
		out = append(out, res)
	}
	return out
}

// AllPass reports whether every result passed.
func AllPass(results []VerifyResult) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}
