package experiments

import (
	"context"
	"fmt"
	"math"
	"time"
)

// Envelopes returns the acceptable worst-case |paper-vs-measured|
// relative deviation per experiment. Deterministic hardware models are
// tight; stochastic network censuses and the Monte-Carlo MTTI carry more
// slack; experiments without numeric paper rows have no envelope.
func Envelopes() map[string]float64 {
	return map[string]float64{
		"table1":        0.30, // the FP64 "2.0 EF" convention mismatch is documented
		"table2":        0.06,
		"table3":        0.06,
		"fig3":          0.03,
		"table4":        0.02,
		"fig4":          0.05,
		"fig5":          0.02,
		"fig6":          0.35, // histogram extremes are sampled
		"table5":        0.25,
		"sec431":        0.05,
		"sec432":        0.08,
		"table6":        0.12,
		"table7":        0.06,
		"sec51":         0.06,
		"sec54":         0.60, // MTTI "not much better than" the round 4 h projection
		"ablation-nps":  0.05,
		"ablation-ppn":  0.35,
		"ext-inventory": 0.15,
	}
}

// VerifyResult is one experiment's reproduction check.
type VerifyResult struct {
	ID             string
	WorstDeviation float64
	Envelope       float64
	Pass           bool
	Err            error
	// Duration is the check's wall time as measured by the harness, so
	// CI logs show which experiments dominate the verify sweep.
	Duration time.Duration
}

// String renders the row.
func (v VerifyResult) String() string {
	status := "PASS"
	if !v.Pass {
		status = "FAIL"
	}
	dur := v.Duration.Round(time.Millisecond)
	if v.Err != nil {
		return fmt.Sprintf("%-20s %s  (%v)", v.ID, status, v.Err)
	}
	if v.Envelope == 0 {
		return fmt.Sprintf("%-20s %s  (no numeric paper rows)  [%v]", v.ID, status, dur)
	}
	return fmt.Sprintf("%-20s %s  worst deviation %5.1f%% (envelope %.0f%%)  [%v]",
		v.ID, status, v.WorstDeviation*100, v.Envelope*100, dur)
}

// Verify runs every registered experiment on the parallel harness and
// checks it against its envelope. An experiment with no envelope passes
// if it runs.
func Verify(o Options) []VerifyResult {
	return VerifyContext(context.Background(), o, RunConfig{})
}

// VerifyContext is Verify with explicit cancellation and pool tuning.
// Results are in registry order regardless of cfg.Jobs, and deviations
// are identical at any worker count (per-experiment derived seeds).
func VerifyContext(ctx context.Context, o Options, cfg RunConfig) []VerifyResult {
	envs := Envelopes()
	runs, _ := RunAll(ctx, Registry(), o, cfg, nil)
	out := make([]VerifyResult, len(runs))
	for i, r := range runs {
		res := VerifyResult{ID: r.ID, Envelope: envs[r.ID], Duration: r.Duration}
		if r.Err != nil {
			res.Err = r.Err
			out[i] = res
			continue
		}
		res.WorstDeviation = r.Table.MaxAbsDeviation()
		res.Pass = res.Envelope == 0 || res.WorstDeviation <= res.Envelope ||
			math.IsNaN(res.WorstDeviation)
		out[i] = res
	}
	return out
}

// AllPass reports whether every result passed.
func AllPass(results []VerifyResult) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}
