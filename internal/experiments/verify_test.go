package experiments

import (
	"strings"
	"testing"
)

func TestVerifyAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("verify sweep in -short mode")
	}
	results := Verify(quickOpts())
	if len(results) != len(Registry()) {
		t.Fatalf("results = %d, want %d", len(results), len(Registry()))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
		}
		if !r.Pass {
			t.Errorf("%s: FAIL (worst %.1f%%, envelope %.0f%%)", r.ID, r.WorstDeviation*100, r.Envelope*100)
		}
		if r.String() == "" {
			t.Errorf("%s: empty formatting", r.ID)
		}
	}
	if !AllPass(results) {
		t.Error("AllPass should be true")
	}
}

func TestVerifyResultFormatting(t *testing.T) {
	pass := VerifyResult{ID: "x", WorstDeviation: 0.05, Envelope: 0.1, Pass: true}
	if !strings.Contains(pass.String(), "PASS") {
		t.Error("pass row should say PASS")
	}
	fail := VerifyResult{ID: "y", WorstDeviation: 0.5, Envelope: 0.1}
	if !strings.Contains(fail.String(), "FAIL") {
		t.Error("fail row should say FAIL")
	}
	noEnv := VerifyResult{ID: "z", Pass: true}
	if !strings.Contains(noEnv.String(), "no numeric") {
		t.Error("envelope-free row should say so")
	}
	if AllPass([]VerifyResult{pass, fail}) {
		t.Error("AllPass with a failure should be false")
	}
}

func TestEnvelopesCoverPaperArtifacts(t *testing.T) {
	envs := Envelopes()
	// Every paper table/figure must have an envelope (the ablations and
	// extensions may be informational).
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig3", "fig4", "fig5", "fig6", "sec431", "sec432", "sec51", "sec54"} {
		if envs[id] <= 0 {
			t.Errorf("paper artifact %s has no reproduction envelope", id)
		}
	}
	for id := range envs {
		if _, err := ByID(id); err != nil {
			t.Errorf("envelope for unknown experiment %s", id)
		}
	}
}
