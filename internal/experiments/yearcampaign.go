package experiments

import (
	"fmt"

	"frontiersim/internal/core"
	"frontiersim/internal/report"
	"frontiersim/internal/units"
	"frontiersim/internal/workload"
)

// ExtYear runs a full simulated year of operations on the full 9,408-node
// Frontier spec with every job phase-structured — the scale target the
// campaign engine's hot-path work exists for. Three mechanisms carry it:
// the placement-signature pricing cache (YearMix quantizes jobs onto a
// few dozen distinct programs, so repeat placements price as cache hits),
// the scheduler's indexed free lists with bounded backfill, and batched
// arrival/failure sampling. All three are bit-exact accelerations, so the
// table is byte-identical across -jobs and -shards settings, and the
// pricing-cache hit rate itself is deterministic. Quick mode shortens the
// year to a fortnight on the same machine.
func ExtYear(o Options) (*report.Table, error) {
	spec := o.machine()
	sys, err := core.New(spec, o.Seed)
	if err != nil {
		return nil, err
	}
	if sys.Scheduler == nil {
		return nil, fmt.Errorf("ext-year: machine has no scheduler")
	}
	cache := o.pricingCache(sys, spec)
	cfg := workload.DefaultConfig()
	cfg.Mix = workload.YearMix(spec.Platform(), spec.NodeModel())
	cfg.Duration = 365 * units.Day
	cfg.MeanInterarrival = 30 * units.Minute
	cfg.ArrivalBatch = 4096
	cfg.PacedFailures = true
	cfg.BackfillDepth = 64
	if o.Quick {
		cfg.Duration = 14 * units.Day
	}
	stats, err := workload.Run(sys, cfg, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{ID: "ext-year", Title: "A year of operations, every job phase-structured"}
	t.AddInfo("machine / window", fmt.Sprintf("%d nodes / %v", sys.Fabric.Cfg.ComputeNodes(), cfg.Duration),
		"full Frontier spec, year-scale campaign")
	t.AddInfo("jobs submitted", fmt.Sprintf("%d", stats.Submitted),
		fmt.Sprintf("debug %d, midsize %d, capability %d, hero %d",
			stats.ByClass["debug"], stats.ByClass["midsize"], stats.ByClass["capability"], stats.ByClass["hero"]))
	t.AddInfo("completed / failed / timeout", fmt.Sprintf("%d / %d / %d",
		stats.Completed, stats.Failed, stats.Timeouts),
		fmt.Sprintf("%d still queued or running at the horizon", stats.Unfinished))
	t.AddInfo("machine utilization", fmt.Sprintf("%.1f%%", stats.Utilization*100),
		fmt.Sprintf("avg wait %v, max %v", stats.AvgWait, stats.MaxWait))
	if stats.Requested > 0 {
		t.Add("delivered vs requested walltime", "<= 1.0 (margin 1.25x)",
			fmt.Sprintf("%.2f (%v of %v)", float64(stats.Delivered)/float64(stats.Requested),
				stats.Delivered, stats.Requested),
			1.0, float64(stats.Delivered)/float64(stats.Requested),
			"programs re-priced on their granted placement")
	}
	t.AddInfo("node failures / job interrupts", fmt.Sprintf("%d / %d", stats.NodeFailures, stats.JobInterrupts),
		fmt.Sprintf("measured MTTI %v, paced injection", stats.MeasuredMTTI))
	t.AddInfo("checkpoints / lost work", fmt.Sprintf("%d / %v", stats.Checkpoints, stats.LostWork),
		"hero jobs checkpoint once per coarsened pass")
	addSlowdownRows(t, stats)
	if cache != nil {
		hits, misses := cache.Stats()
		t.AddInfo("pricing cache", fmt.Sprintf("%.1f%% hit rate (%d hits / %d misses, %d entries)",
			cache.HitRate()*100, hits, misses, cache.Len()),
			"placement-signature memoization of program pricing; hits are bit-identical")
	}
	return t, nil
}

// addSlowdownRows appends per-class mean and exact p50/p95/p99 bounded
// slowdowns in the program-class order the campaign tables use.
func addSlowdownRows(t *report.Table, stats workload.Stats) {
	for _, class := range []string{"stencil", "Cholla", "GESTS", "llm-train"} {
		q, ok := stats.TailSlowdownByClass[class]
		if !ok {
			continue
		}
		t.AddInfo(fmt.Sprintf("slowdown tail: %s", class),
			fmt.Sprintf("p50 %.1fx, p95 %.1fx, p99 %.1fx", q.P50, q.P95, q.P99),
			fmt.Sprintf("exact quantiles over %d finished jobs (mean %.1fx)",
				q.Samples, stats.SlowdownByClass[class]))
	}
}
