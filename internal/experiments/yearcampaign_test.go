package experiments

import (
	"reflect"
	"testing"
)

// The pricing cache must be invisible in results: an ext-year run with
// the cache on (the default) and one with it disabled must produce
// byte-identical tables, except for the hit-rate report row the cached
// run appends. This is the campaign-level pin of the cache's
// bit-identity contract — every delivered walltime, slowdown quantile,
// and utilization figure flows through Bind totals, so a single ULP of
// pricing drift would surface here.
func TestYearCampaignCachedMatchesUncached(t *testing.T) {
	run := func(entries int) []interface{} {
		o := quickOpts()
		o.PricingEntries = entries
		tab, err := ExtYear(o)
		if err != nil {
			t.Fatal(err)
		}
		var rows []interface{}
		for _, r := range tab.Rows {
			if r.Name == "pricing cache" {
				continue
			}
			rows = append(rows, r)
		}
		return rows
	}
	cached := run(0)
	uncached := run(-1)
	if !reflect.DeepEqual(cached, uncached) {
		t.Errorf("cached and uncached campaigns diverge:\ncached:   %v\nuncached: %v", cached, uncached)
	}

	// The cached run must actually have exercised the cache: the year
	// mix's whole point is that repeats dominate.
	o := quickOpts()
	tab, err := ExtYear(o)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range tab.Rows {
		if r.Name == "pricing cache" {
			found = true
			if r.Measured == "" || r.Measured[0] == '0' {
				t.Errorf("suspicious hit-rate row: %q", r.Measured)
			}
		}
	}
	if !found {
		t.Error("default ext-year run reports no pricing-cache row")
	}

	// A bounded cache changes speed, never content.
	o = quickOpts()
	o.PricingEntries = 16
	small, err := ExtYear(o)
	if err != nil {
		t.Fatal(err)
	}
	var bounded []interface{}
	for _, r := range small.Rows {
		if r.Name == "pricing cache" {
			continue
		}
		bounded = append(bounded, r)
	}
	if !reflect.DeepEqual(bounded, uncached) {
		t.Error("LRU-bounded pricing cache changed campaign results")
	}
}
