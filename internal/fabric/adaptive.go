package fabric

import (
	"fmt"
	"math/rand"
)

// PathSet is the set of routes adaptive routing spreads one traffic pair
// across: the minimal route plus zero or more Valiant non-minimal routes.
// Slingshot routes per packet, so at the flow level a pair's traffic
// occupies all of these paths simultaneously and the bandwidth a pair
// achieves is the sum over the set.
type PathSet struct {
	Src, Dst int
	Paths    [][]int
}

// AdaptivePaths builds the path set used by Slingshot's adaptive routing
// for one endpoint pair: within a group (or on a fat tree) routing is
// minimal-only; between dragonfly groups the minimal route is supplemented
// by nValiant Valiant routes through distinct random intermediate groups.
func (f *Fabric) AdaptivePaths(src, dst, nValiant int, rng *rand.Rand) (PathSet, error) {
	ps := PathSet{Src: src, Dst: dst}
	min, minErr := f.MinimalPath(src, dst, rng)
	if minErr == nil {
		ps.Paths = append(ps.Paths, min)
	}
	if f.Kind == FatTree {
		if minErr != nil {
			return ps, minErr
		}
		return ps, nil
	}
	g1, g2 := f.EndpointGroup(src), f.EndpointGroup(dst)
	if g1 == g2 || nValiant <= 0 {
		if minErr != nil {
			return ps, minErr
		}
		return ps, nil
	}
	total := f.Cfg.TotalGroups()
	if total <= 2 {
		return ps, nil
	}
	seen := map[int]bool{g1: true, g2: true}
	attempts := 0
	for len(ps.Paths) < 1+nValiant && attempts < 8*nValiant {
		attempts++
		via := rng.Intn(total)
		if seen[via] {
			continue
		}
		// Valiant detours stay on compute groups: service groups are
		// not used as intermediates for compute traffic.
		if f.groupClass[via] != ComputeGroup {
			continue
		}
		seen[via] = true
		p, err := f.ValiantPath(src, dst, via, rng)
		if err != nil {
			continue // intermediate group unreachable (failures); try another
		}
		ps.Paths = append(ps.Paths, p)
	}
	if len(ps.Paths) == 0 {
		return ps, fmt.Errorf("fabric: no usable path %d->%d", src, dst)
	}
	return ps, nil
}
