package fabric

import (
	"fmt"
	"math/rand"
)

// PathSet is the set of routes adaptive routing spreads one traffic pair
// across: the minimal route plus zero or more Valiant non-minimal routes.
// Slingshot routes per packet, so at the flow level a pair's traffic
// occupies all of these paths simultaneously and the bandwidth a pair
// achieves is the sum over the set.
//
// Storage is CSR-style: every row of Paths aliases one flat backing
// array, so a whole set costs two allocations (flat links + row headers)
// instead of one slice per route. Rows are full-capacity slices —
// appending to one reallocates rather than clobbering its neighbour —
// but callers must still treat a PathSet as immutable once built; cached
// sets are shared across workers.
type PathSet struct {
	Src, Dst int
	Paths    [][]int
}

// seal materialises the nested-slice view over a CSR fill: flat holds
// every route's links back to back, offs the row boundaries.
func (ps *PathSet) seal(flat, offs []int) {
	if len(offs) <= 1 {
		return // no routes; keep Paths nil like the historical shape
	}
	ps.Paths = make([][]int, len(offs)-1)
	for i := range ps.Paths {
		ps.Paths[i] = flat[offs[i]:offs[i+1]:offs[i+1]]
	}
}

// containsInt reports membership in a small linear-scan set — the group
// exclusion lists here never exceed 2+nValiant entries, where a slice
// beats a map by an order of magnitude and allocates nothing.
func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// AdaptivePaths builds the path set used by Slingshot's adaptive routing
// for one endpoint pair: within a group (or on a fat tree) routing is
// minimal-only; between dragonfly groups the minimal route is supplemented
// by nValiant Valiant routes through distinct random intermediate groups.
func (f *Fabric) AdaptivePaths(src, dst, nValiant int, rng *rand.Rand) (PathSet, error) {
	ps := PathSet{Src: src, Dst: dst}
	flat := make([]int, 0, 6+8*nValiant)
	offs := make([]int, 1, 2+nValiant)

	next, minErr := f.appendMinimalPath(flat, src, dst, rng)
	if minErr == nil {
		flat = next
		offs = append(offs, len(flat))
	}
	if f.Kind == FatTree {
		if minErr != nil {
			return ps, minErr
		}
		ps.seal(flat, offs)
		return ps, nil
	}
	g1, g2 := f.EndpointGroup(src), f.EndpointGroup(dst)
	if g1 == g2 || nValiant <= 0 {
		if minErr != nil {
			return ps, minErr
		}
		ps.seal(flat, offs)
		return ps, nil
	}
	total := f.Cfg.TotalGroups()
	if total <= 2 {
		ps.seal(flat, offs)
		return ps, nil
	}
	seen := make([]int, 0, 8)
	seen = append(seen, g1, g2)
	attempts := 0
	for len(offs)-1 < 1+nValiant && attempts < 8*nValiant {
		attempts++
		via := rng.Intn(total)
		if containsInt(seen, via) {
			continue
		}
		// Valiant detours stay on compute groups: service groups are
		// not used as intermediates for compute traffic.
		if f.groupClass[via] != ComputeGroup {
			continue
		}
		seen = append(seen, via)
		next, err := f.appendValiantPath(flat, src, dst, via, rng)
		if err != nil {
			continue // intermediate group unreachable (failures); try another
		}
		flat = next
		offs = append(offs, len(flat))
	}
	if len(offs) == 1 {
		return ps, fmt.Errorf("fabric: no usable path %d->%d", src, dst)
	}
	ps.seal(flat, offs)
	return ps, nil
}
