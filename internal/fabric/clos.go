package fabric

import (
	"fmt"

	"frontiersim/internal/units"
)

// ClosConfig describes a non-blocking fat tree, the topology Summit used
// before HPE traded it for the dragonfly (§4.2.2). The fabric is modelled
// as leaf switches joined by a perfect core: with full bisection
// bandwidth, contention exists only at endpoints, which is exactly the
// behaviour the paper's Summit mpiGraph histogram shows.
type ClosConfig struct {
	Name               string
	Leaves             int
	EndpointsPerLeaf   int
	NICsPerNode        int
	LinkRate           units.BytesPerSecond
	EndpointEfficiency float64
	SwitchLatency      units.Seconds
	EndpointLatency    units.Seconds
}

// NewClos builds a fat-tree fabric. Switch ids 0..Leaves-1 are leaves;
// switch id Leaves is the idealised core (a folded multi-stage network
// collapsed into one non-blocking stage).
func NewClos(cfg ClosConfig) (*Fabric, error) {
	if cfg.Leaves < 1 || cfg.EndpointsPerLeaf < 1 {
		return nil, fmt.Errorf("fabric: clos needs leaves and endpoints")
	}
	if cfg.EndpointEfficiency <= 0 || cfg.EndpointEfficiency > 1 {
		return nil, fmt.Errorf("fabric: endpoint efficiency %v out of (0,1]", cfg.EndpointEfficiency)
	}
	f := &Fabric{
		Cfg: Config{
			Name:                 cfg.Name,
			ComputeGroups:        1,
			ComputeGroupSwitches: cfg.Leaves,
			EndpointsPerSwitch:   cfg.EndpointsPerLeaf,
			NICsPerNode:          cfg.NICsPerNode,
			LinkRate:             cfg.LinkRate,
			EndpointEfficiency:   cfg.EndpointEfficiency,
			SwitchLatency:        cfg.SwitchLatency,
			EndpointLatency:      cfg.EndpointLatency,
		},
		Kind: FatTree,
	}
	var leafIDs []int
	for s := 0; s <= cfg.Leaves; s++ { // last one is the core
		f.SwitchGroup = append(f.SwitchGroup, 0)
		f.SwitchHealthy = append(f.SwitchHealthy, true)
		if s < cfg.Leaves {
			leafIDs = append(leafIDs, s)
		}
	}
	f.NumSwitches = cfg.Leaves + 1
	f.groupClass = []GroupClass{ComputeGroup}
	f.groupSwitches = [][]int{leafIDs}
	f.initRoutingIndex()
	core := cfg.Leaves
	epCap := float64(cfg.LinkRate) * cfg.EndpointEfficiency
	trunk := float64(cfg.LinkRate) * float64(cfg.EndpointsPerLeaf) // non-blocking
	f.uplink = make([]int, cfg.Leaves)
	f.downlink = make([]int, cfg.Leaves)
	for s := 0; s < cfg.Leaves; s++ {
		f.uplink[s] = f.addLink(Uplink, s, core, trunk)
		f.downlink[s] = f.addLink(Downlink, core, s, trunk)
		for e := 0; e < cfg.EndpointsPerLeaf; e++ {
			ep := f.NumEndpoints
			f.NumEndpoints++
			f.endpointSwitch = append(f.endpointSwitch, s)
			f.injectLink = append(f.injectLink, f.addLink(Injection, ep, s, epCap))
			f.ejectLink = append(f.ejectLink, f.addLink(Ejection, s, ep, epCap))
		}
	}
	return f, nil
}
