// Package fabric models the HPE Slingshot interconnect (§3.2): 64-port
// Rosetta switches arranged as a three-hop dragonfly, the global-link
// taper between groups, minimal and Valiant non-minimal routing, and the
// fabric manager that sweeps switches and recomputes routes. A Clos
// (non-blocking fat tree) builder is included for the Summit comparisons
// in Figure 6.
package fabric

import (
	"fmt"

	"frontiersim/internal/units"
)

// GroupClass distinguishes the three dragonfly group types on Frontier.
type GroupClass int

// Group classes.
const (
	ComputeGroup GroupClass = iota // 32 water-cooled blade switches
	IOGroup                        // 16 top-of-rack switches
	MgmtGroup                      // 16 top-of-rack switches
)

// String implements fmt.Stringer.
func (c GroupClass) String() string {
	switch c {
	case ComputeGroup:
		return "compute"
	case IOGroup:
		return "io"
	case MgmtGroup:
		return "mgmt"
	}
	return fmt.Sprintf("GroupClass(%d)", int(c))
}

// Config describes a dragonfly fabric. Counts of global links between
// group pairs are expressed in links (each QSFP-DD "bundle" cable carries
// two 200 Gb/s links).
type Config struct {
	// Name labels the fabric in reports.
	Name string
	// ComputeGroups, IOGroups, MgmtGroups are group counts by class
	// (74, 5, 1 on Frontier).
	ComputeGroups, IOGroups, MgmtGroups int
	// ComputeGroupSwitches is the switch count per compute group (32).
	ComputeGroupSwitches int
	// TORGroupSwitches is the switch count per I/O or management group (16).
	TORGroupSwitches int
	// EndpointsPerSwitch is the number of L0 ports wired to endpoints (16).
	EndpointsPerSwitch int
	// NICsPerNode maps endpoints to compute nodes (4 on Bard Peak).
	NICsPerNode int
	// LinkRate is the per-direction line rate of every link (25 GB/s).
	LinkRate units.BytesPerSecond
	// EndpointEfficiency is the achievable fraction of line rate at an
	// endpoint (protocol and DMA overheads). The paper's best-case
	// measured per-NIC bandwidth of 17.5 GB/s out of 25 gives 0.70.
	EndpointEfficiency float64
	// Global link counts between group pairs by class pair.
	ComputeComputeLinks int // 4 on Frontier (bundle size two)
	ComputeIOLinks      int // 2 (one bundle)
	ComputeMgmtLinks    int // 2 (one bundle)
	IOIOLinks           int // 10 (five bundles)
	IOMgmtLinks         int // 6 (three bundles)
	// Latency parameters.
	SwitchLatency   units.Seconds // per switch traversal
	EndpointLatency units.Seconds // NIC + software per endpoint
}

// Validate checks structural invariants: the port budget of the 64-port
// switch (16 L0 + 32 L1 + 16 L2 on compute blades) must not be exceeded.
func (c Config) Validate() error {
	if c.ComputeGroups < 1 {
		return fmt.Errorf("fabric: need at least one compute group")
	}
	if c.ComputeGroupSwitches < 2 && c.ComputeGroups > 1 {
		return fmt.Errorf("fabric: need at least two switches per group")
	}
	if c.EndpointsPerSwitch < 1 {
		return fmt.Errorf("fabric: need endpoints")
	}
	if c.EndpointEfficiency <= 0 || c.EndpointEfficiency > 1 {
		return fmt.Errorf("fabric: endpoint efficiency %v out of (0,1]", c.EndpointEfficiency)
	}
	// L1: full connectivity within a group needs switches-1 ports.
	if c.ComputeGroupSwitches-1 > 32 {
		return fmt.Errorf("fabric: %d switches per group exceeds 32 L1 ports", c.ComputeGroupSwitches)
	}
	if c.EndpointsPerSwitch > 16 {
		return fmt.Errorf("fabric: %d endpoints per switch exceeds 16 L0 ports", c.EndpointsPerSwitch)
	}
	// L2: global ports per group must cover all peer groups.
	needed := (c.ComputeGroups-1)*c.ComputeComputeLinks +
		c.IOGroups*c.ComputeIOLinks + c.MgmtGroups*c.ComputeMgmtLinks
	avail := c.ComputeGroupSwitches * 16
	if needed > avail {
		return fmt.Errorf("fabric: compute group needs %d global links but has %d L2 ports", needed, avail)
	}
	return nil
}

// TotalGroups returns the group count.
func (c Config) TotalGroups() int { return c.ComputeGroups + c.IOGroups + c.MgmtGroups }

// ComputeEndpoints returns the number of compute NIC endpoints.
func (c Config) ComputeEndpoints() int {
	return c.ComputeGroups * c.ComputeGroupSwitches * c.EndpointsPerSwitch
}

// ComputeNodes returns the number of compute nodes served by the fabric.
func (c Config) ComputeNodes() int { return c.ComputeEndpoints() / c.NICsPerNode }

// NodesPerGroup returns compute nodes per dragonfly group (128 on Frontier).
func (c Config) NodesPerGroup() int {
	return c.ComputeGroupSwitches * c.EndpointsPerSwitch / c.NICsPerNode
}

// GroupInjectionBandwidth returns per-group injection bandwidth
// (12.8 TB/s on Frontier: 512 endpoints × 25 GB/s).
func (c Config) GroupInjectionBandwidth() units.BytesPerSecond {
	return units.BytesPerSecond(c.ComputeGroupSwitches*c.EndpointsPerSwitch) * c.LinkRate
}

// GroupGlobalBandwidth returns per-group global bandwidth to other
// compute groups (7.3 TB/s on Frontier: 73 × 4 × 25 GB/s).
func (c Config) GroupGlobalBandwidth() units.BytesPerSecond {
	return units.BytesPerSecond((c.ComputeGroups-1)*c.ComputeComputeLinks) * c.LinkRate
}

// Taper returns the global-to-injection bandwidth ratio (~57% on Frontier).
func (c Config) Taper() float64 {
	return float64(c.GroupGlobalBandwidth()) / float64(c.GroupInjectionBandwidth())
}

// TotalGlobalBandwidth returns the aggregate bandwidth between compute
// groups, one direction (270.1 TB/s on Frontier).
func (c Config) TotalGlobalBandwidth() units.BytesPerSecond {
	pairs := c.ComputeGroups * (c.ComputeGroups - 1) / 2
	return units.BytesPerSecond(pairs*c.ComputeComputeLinks) * c.LinkRate
}
