package fabric

import (
	"fmt"
	"math/rand"

	"frontiersim/internal/units"
)

// LinkKind classifies a directed link.
type LinkKind int

// Link kinds.
const (
	// Injection is endpoint → switch.
	Injection LinkKind = iota
	// Ejection is switch → endpoint.
	Ejection
	// Intra is a switch → switch link within a group (an L1 port).
	Intra
	// Global is a switch → switch link between groups (an L2 port).
	Global
	// Uplink joins a leaf switch to the core of a Clos fabric.
	Uplink
	// Downlink joins the Clos core to a leaf switch.
	Downlink
)

// String implements fmt.Stringer.
func (k LinkKind) String() string {
	switch k {
	case Injection:
		return "injection"
	case Ejection:
		return "ejection"
	case Intra:
		return "intra(L1)"
	case Global:
		return "global(L2)"
	case Uplink:
		return "uplink"
	case Downlink:
		return "downlink"
	}
	return fmt.Sprintf("LinkKind(%d)", int(k))
}

// Link is one directed link.
type Link struct {
	ID   int
	Kind LinkKind
	// From and To are switch ids for switch-to-switch links. For
	// Injection, From is an endpoint id; for Ejection, To is an
	// endpoint id.
	From, To int
	// Cap is the usable capacity in bytes/s (line rate for fabric
	// links; line rate × endpoint efficiency at endpoints).
	Cap float64
	// Up is false when the link (or its switch) has failed.
	Up bool
}

// Kind identifies the topology family of a built fabric.
type Kind int

// Fabric kinds.
const (
	// Dragonfly is the Slingshot three-hop direct topology.
	Dragonfly Kind = iota
	// FatTree is a non-blocking Clos, used to model Summit's EDR fabric.
	FatTree
)

// Fabric is a built network: switches, directed links, endpoints, and the
// indexes routing needs.
type Fabric struct {
	Cfg  Config
	Kind Kind

	// NumSwitches counts switches (plus one virtual core for FatTree).
	NumSwitches   int
	SwitchGroup   []int
	SwitchHealthy []bool
	groupClass    []GroupClass
	groupSwitches [][]int

	Links []Link
	// Routing lookups sit on the path-fill hot loop (millions of probes
	// per census), so both are dense arrays rather than maps:
	//
	// switchLocal[sw] is sw's index within its group's switch list (-1
	// for the virtual Clos core, which owns no intra links).
	switchLocal []int32
	// intraDense packs one (local,local) block per group: entry
	// intraBase[g] + la*len(group)+lb holds the directed intra link id
	// biased by +1 (0 = no link). Intra links never cross groups, so the
	// blocks cover every possible key in Σ len(group)² slots.
	intraDense []int32
	intraBase  []int32
	// globalDense[a*numGroups+b] lists the directed global link ids from
	// group a to group b.
	globalDense [][]int
	numGroups   int

	NumEndpoints   int
	endpointSwitch []int
	injectLink     []int
	ejectLink      []int

	// uplink and downlink join each leaf to the core in FatTree fabrics.
	uplink, downlink []int

	// stateEpoch counts link/switch state transitions (FailLink,
	// RestoreLink, FailSwitch). Caches keyed on routing inputs — notably
	// PathCache — compare it to detect that their entries went stale.
	stateEpoch uint64

	// stateLog journals which links each epoch bump touched, so
	// incremental consumers (the delta solver) can ask "what changed since
	// epoch e" instead of assuming everything did. logFloor is the newest
	// epoch whose changes have been dropped from the journal: queries
	// reaching at or below it are incomplete and answer ok=false.
	stateLog []stateChange
	logFloor uint64
}

// stateChange is one journaled link-state transition.
type stateChange struct {
	epoch uint64
	link  int32
}

// maxStateLog bounds the state journal. A fabric that has seen more
// transitions than this since a consumer's last visit has effectively
// changed wholesale; the consumer falls back to a cold rebuild.
const maxStateLog = 4096

// StateEpoch returns the link-state epoch: a counter that advances on
// every link or switch state transition. Two calls returning the same
// value bracket a window in which every path the fabric computed is
// still valid.
func (f *Fabric) StateEpoch() uint64 { return f.stateEpoch }

// logChange journals one link touched by the current epoch bump. When
// the journal would outgrow its bound the whole history is dropped:
// ChangedSince then reports ok=false for every epoch before the drop,
// which callers treat as "assume everything changed".
func (f *Fabric) logChange(id int) {
	if len(f.stateLog) >= maxStateLog {
		f.stateLog = f.stateLog[:0]
		f.logFloor = f.stateEpoch
		return
	}
	f.stateLog = append(f.stateLog, stateChange{epoch: f.stateEpoch, link: int32(id)})
}

// ChangedSince reports the ids of links whose up/down state may have
// changed after epoch e (exclusive) up to the current StateEpoch. ok is
// false when the journal no longer covers that span — the caller must
// then assume any link may have changed. Ids may repeat when a link
// toggled more than once; consumers treat the list as a dirty set.
func (f *Fabric) ChangedSince(e uint64) (links []int, ok bool) {
	if e >= f.stateEpoch {
		return nil, true
	}
	if e < f.logFloor {
		return nil, false
	}
	// Transitions are appended in epoch order; walk back to the first
	// entry inside the window.
	i := len(f.stateLog)
	for i > 0 && f.stateLog[i-1].epoch > e {
		i--
	}
	for _, c := range f.stateLog[i:] {
		links = append(links, int(c.link))
	}
	return links, true
}

// key packs two non-negative ints into a cache key.
func key(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// initRoutingIndex sizes the dense routing lookups once groups and
// switches exist. Constructors must call it before adding intra or
// global links.
func (f *Fabric) initRoutingIndex() {
	f.numGroups = len(f.groupSwitches)
	f.switchLocal = make([]int32, f.NumSwitches)
	for i := range f.switchLocal {
		f.switchLocal[i] = -1
	}
	f.intraBase = make([]int32, f.numGroups+1)
	base := int32(0)
	for g, ids := range f.groupSwitches {
		f.intraBase[g] = base
		for li, sw := range ids {
			f.switchLocal[sw] = int32(li)
		}
		base += int32(len(ids) * len(ids))
	}
	f.intraBase[f.numGroups] = base
	f.intraDense = make([]int32, base)
	f.globalDense = make([][]int, f.numGroups*f.numGroups)
}

// setIntra records a directed intra-group link in the dense index.
func (f *Fabric) setIntra(a, b, id int) {
	g := f.SwitchGroup[a]
	n := int32(len(f.groupSwitches[g]))
	f.intraDense[f.intraBase[g]+f.switchLocal[a]*n+f.switchLocal[b]] = int32(id) + 1
}

// intraLink returns the directed intra-group link a -> b, if one exists.
func (f *Fabric) intraLink(a, b int) (int, bool) {
	g := f.SwitchGroup[a]
	if g != f.SwitchGroup[b] {
		return 0, false
	}
	la, lb := f.switchLocal[a], f.switchLocal[b]
	if la < 0 || lb < 0 {
		return 0, false
	}
	n := int32(len(f.groupSwitches[g]))
	id := f.intraDense[f.intraBase[g]+la*n+lb]
	if id == 0 {
		return 0, false
	}
	return int(id) - 1, true
}

// NewDragonfly builds the dragonfly described by cfg. Groups are laid out
// compute-first, then I/O, then management; endpoints likewise, so the
// first Cfg.ComputeEndpoints() endpoints belong to compute nodes
// (endpoint 4n+i is NIC i of node n).
func NewDragonfly(cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{
		Cfg:  cfg,
		Kind: Dragonfly,
	}
	// Groups and switches.
	for g := 0; g < cfg.TotalGroups(); g++ {
		class := ComputeGroup
		switch {
		case g >= cfg.ComputeGroups+cfg.IOGroups:
			class = MgmtGroup
		case g >= cfg.ComputeGroups:
			class = IOGroup
		}
		nsw := cfg.ComputeGroupSwitches
		if class != ComputeGroup {
			nsw = cfg.TORGroupSwitches
		}
		var ids []int
		for s := 0; s < nsw; s++ {
			id := f.NumSwitches
			f.NumSwitches++
			f.SwitchGroup = append(f.SwitchGroup, g)
			f.SwitchHealthy = append(f.SwitchHealthy, true)
			ids = append(ids, id)
		}
		f.groupClass = append(f.groupClass, class)
		f.groupSwitches = append(f.groupSwitches, ids)
	}
	f.initRoutingIndex()
	// Endpoints on every switch.
	epCap := float64(cfg.LinkRate) * cfg.EndpointEfficiency
	for sw := 0; sw < f.NumSwitches; sw++ {
		for e := 0; e < cfg.EndpointsPerSwitch; e++ {
			ep := f.NumEndpoints
			f.NumEndpoints++
			f.endpointSwitch = append(f.endpointSwitch, sw)
			f.injectLink = append(f.injectLink, f.addLink(Injection, ep, sw, epCap))
			f.ejectLink = append(f.ejectLink, f.addLink(Ejection, sw, ep, epCap))
		}
	}
	// Intra-group: full connectivity.
	for _, ids := range f.groupSwitches {
		for i := 0; i < len(ids); i++ {
			for j := 0; j < len(ids); j++ {
				if i == j {
					continue
				}
				id := f.addLink(Intra, ids[i], ids[j], float64(cfg.LinkRate))
				f.setIntra(ids[i], ids[j], id)
			}
		}
	}
	// Global links between every group pair, spread across switches.
	for a := 0; a < cfg.TotalGroups(); a++ {
		for b := a + 1; b < cfg.TotalGroups(); b++ {
			n := cfg.globalLinksBetween(f.groupClass[a], f.groupClass[b])
			for i := 0; i < n; i++ {
				swa := f.groupSwitches[a][(b*n+i)%len(f.groupSwitches[a])]
				swb := f.groupSwitches[b][(a*n+i)%len(f.groupSwitches[b])]
				ab := f.addLink(Global, swa, swb, float64(cfg.LinkRate))
				ba := f.addLink(Global, swb, swa, float64(cfg.LinkRate))
				f.globalDense[a*f.numGroups+b] = append(f.globalDense[a*f.numGroups+b], ab)
				f.globalDense[b*f.numGroups+a] = append(f.globalDense[b*f.numGroups+a], ba)
			}
		}
	}
	return f, nil
}

// globalLinksBetween returns the link count between groups of the given
// classes (the paper's bundle plan, §3.2).
func (c Config) globalLinksBetween(a, b GroupClass) int {
	switch {
	case a == ComputeGroup && b == ComputeGroup:
		return c.ComputeComputeLinks
	case (a == ComputeGroup && b == IOGroup) || (a == IOGroup && b == ComputeGroup):
		return c.ComputeIOLinks
	case (a == ComputeGroup && b == MgmtGroup) || (a == MgmtGroup && b == ComputeGroup):
		return c.ComputeMgmtLinks
	case a == IOGroup && b == IOGroup:
		return c.IOIOLinks
	default: // IO <-> Mgmt (or Mgmt <-> Mgmt, which does not occur)
		return c.IOMgmtLinks
	}
}

func (f *Fabric) addLink(kind LinkKind, from, to int, capacity float64) int {
	id := len(f.Links)
	f.Links = append(f.Links, Link{ID: id, Kind: kind, From: from, To: to, Cap: capacity, Up: true})
	return id
}

// EndpointSwitch returns the switch an endpoint is cabled to.
func (f *Fabric) EndpointSwitch(ep int) int { return f.endpointSwitch[ep] }

// EndpointGroup returns the dragonfly group of an endpoint.
func (f *Fabric) EndpointGroup(ep int) int { return f.SwitchGroup[f.endpointSwitch[ep]] }

// NodeEndpoints returns the endpoint ids of compute node n.
func (f *Fabric) NodeEndpoints(n int) []int {
	k := f.Cfg.NICsPerNode
	eps := make([]int, k)
	for i := range eps {
		eps[i] = n*k + i
	}
	return eps
}

// NodeEndpoint returns the endpoint id of NIC i of compute node n — the
// allocation-free form of NodeEndpoints[i] for demand-building hot loops
// (a full census touches hundreds of thousands of node/NIC pairs).
func (f *Fabric) NodeEndpoint(n, i int) int {
	return n*f.Cfg.NICsPerNode + i%f.Cfg.NICsPerNode
}

// GroupClassOf returns a group's class.
func (f *Fabric) GroupClassOf(g int) GroupClass { return f.groupClass[g] }

// GroupSwitches returns the switch ids of a group.
func (f *Fabric) GroupSwitches(g int) []int { return f.groupSwitches[g] }

// GlobalLinks returns the directed global link ids from group a to b.
func (f *Fabric) GlobalLinks(a, b int) []int {
	if a < 0 || b < 0 || a >= f.numGroups || b >= f.numGroups {
		return nil
	}
	return f.globalDense[a*f.numGroups+b]
}

// FailLink marks a link down.
func (f *Fabric) FailLink(id int) {
	f.Links[id].Up = false
	f.stateEpoch++
	f.logChange(id)
}

// RestoreLink marks a link up again.
func (f *Fabric) RestoreLink(id int) {
	f.Links[id].Up = true
	f.stateEpoch++
	f.logChange(id)
}

// FailSwitch marks a switch unhealthy and all links touching it down.
func (f *Fabric) FailSwitch(sw int) {
	f.SwitchHealthy[sw] = false
	f.stateEpoch++
	for i := range f.Links {
		l := &f.Links[i]
		touches := (l.Kind != Injection && l.From == sw) || (l.Kind != Ejection && l.To == sw) ||
			(l.Kind == Injection && l.To == sw) || (l.Kind == Ejection && l.From == sw)
		if touches {
			l.Up = false
			f.logChange(i)
		}
	}
}

// linkUp reports whether a link and its switches are usable.
func (f *Fabric) linkUp(id int) bool {
	l := f.Links[id]
	if !l.Up {
		return false
	}
	switch l.Kind {
	case Injection:
		return f.SwitchHealthy[l.To]
	case Ejection:
		return f.SwitchHealthy[l.From]
	default:
		return f.SwitchHealthy[l.From] && f.SwitchHealthy[l.To]
	}
}

// pickUp returns a usable link from ids, preferring the rotation offset;
// ok is false if every link is down.
func (f *Fabric) pickUp(ids []int, offset int) (int, bool) {
	for i := 0; i < len(ids); i++ {
		id := ids[(offset+i)%len(ids)]
		if f.linkUp(id) {
			return id, true
		}
	}
	return 0, false
}

// MinimalPath returns the directed link sequence of the minimal route
// between two endpoints: inject → (intra) → (global) → (intra) → eject.
// rng selects among parallel global links; it may be nil for a
// deterministic choice.
func (f *Fabric) MinimalPath(src, dst int, rng *rand.Rand) ([]int, error) {
	return f.appendMinimalPath(make([]int, 0, 6), src, dst, rng)
}

// AppendMinimalPath is MinimalPath in append style: the route's links
// are appended to buf and the extended slice returned, so callers that
// reuse a scratch buffer (the message transport's pooled per-message hop
// state) pay no allocation per route. On error the returned slice is nil
// and buf's visible contents are unchanged.
func (f *Fabric) AppendMinimalPath(buf []int, src, dst int, rng *rand.Rand) ([]int, error) {
	return f.appendMinimalPath(buf, src, dst, rng)
}

// appendMinimalPath appends the minimal route's links to buf and returns
// the extended slice. On error buf's visible contents are unchanged
// (callers rewind by keeping their original slice header), which is what
// lets AdaptivePaths fill every route of a path set into one flat
// backing array.
func (f *Fabric) appendMinimalPath(buf []int, src, dst int, rng *rand.Rand) ([]int, error) {
	if src == dst {
		return nil, fmt.Errorf("fabric: self path for endpoint %d", src)
	}
	path := buf
	if !f.linkUp(f.injectLink[src]) || !f.linkUp(f.ejectLink[dst]) {
		return nil, fmt.Errorf("fabric: endpoint link down (%d->%d)", src, dst)
	}
	path = append(path, f.injectLink[src])
	s1, s2 := f.endpointSwitch[src], f.endpointSwitch[dst]
	if f.Kind == FatTree {
		if s1 != s2 {
			if !f.linkUp(f.uplink[s1]) || !f.linkUp(f.downlink[s2]) {
				return nil, fmt.Errorf("fabric: trunk link down (%d->%d)", s1, s2)
			}
			path = append(path, f.uplink[s1], f.downlink[s2])
		}
		return append(path, f.ejectLink[dst]), nil
	}
	g1, g2 := f.SwitchGroup[s1], f.SwitchGroup[s2]
	switch {
	case s1 == s2:
		// Same switch: inject + eject only.
	case g1 == g2:
		id, ok := f.intraUp(s1, s2)
		if !ok {
			return nil, fmt.Errorf("fabric: intra link %d->%d down", s1, s2)
		}
		path = append(path, id)
	default:
		off := 0
		if rng != nil {
			off = rng.Intn(8)
		}
		gl, ok := f.pickUp(f.GlobalLinks(g1, g2), off)
		if !ok {
			return nil, fmt.Errorf("fabric: no global link up from group %d to %d", g1, g2)
		}
		sa, sb := f.Links[gl].From, f.Links[gl].To
		if sa != s1 {
			id, ok := f.intraUp(s1, sa)
			if !ok {
				return nil, fmt.Errorf("fabric: intra link %d->%d down", s1, sa)
			}
			path = append(path, id)
		}
		path = append(path, gl)
		if sb != s2 {
			id, ok := f.intraUp(sb, s2)
			if !ok {
				return nil, fmt.Errorf("fabric: intra link %d->%d down", sb, s2)
			}
			path = append(path, id)
		}
	}
	path = append(path, f.ejectLink[dst])
	return path, nil
}

func (f *Fabric) intraUp(a, b int) (int, bool) {
	id, ok := f.intraLink(a, b)
	if !ok || !f.linkUp(id) {
		return 0, false
	}
	return id, true
}

// ValiantPath returns a non-minimal route through intermediate group via:
// the Valiant trick dragonflies use to spread adversarial traffic. via
// must differ from both endpoint groups.
func (f *Fabric) ValiantPath(src, dst, via int, rng *rand.Rand) ([]int, error) {
	return f.appendValiantPath(make([]int, 0, 8), src, dst, via, rng)
}

// appendValiantPath is ValiantPath in the append style of
// appendMinimalPath: links land in buf, errors leave it untouched.
func (f *Fabric) appendValiantPath(buf []int, src, dst, via int, rng *rand.Rand) ([]int, error) {
	s1, s2 := f.endpointSwitch[src], f.endpointSwitch[dst]
	g1, g2 := f.SwitchGroup[s1], f.SwitchGroup[s2]
	if via == g1 || via == g2 {
		return nil, fmt.Errorf("fabric: valiant group %d collides with endpoint groups %d,%d", via, g1, g2)
	}
	if !f.linkUp(f.injectLink[src]) || !f.linkUp(f.ejectLink[dst]) {
		return nil, fmt.Errorf("fabric: endpoint link down (%d->%d)", src, dst)
	}
	off1, off2 := 0, 0
	if rng != nil {
		off1, off2 = rng.Intn(8), rng.Intn(8)
	}
	gl1, ok := f.pickUp(f.GlobalLinks(g1, via), off1)
	if !ok {
		return nil, fmt.Errorf("fabric: no global link up from group %d to %d", g1, via)
	}
	gl2, ok := f.pickUp(f.GlobalLinks(via, g2), off2)
	if !ok {
		return nil, fmt.Errorf("fabric: no global link up from group %d to %d", via, g2)
	}
	path := append(buf, f.injectLink[src])
	sa, sm1 := f.Links[gl1].From, f.Links[gl1].To
	sm2, sb := f.Links[gl2].From, f.Links[gl2].To
	if sa != s1 {
		id, ok := f.intraUp(s1, sa)
		if !ok {
			return nil, fmt.Errorf("fabric: intra link %d->%d down", s1, sa)
		}
		path = append(path, id)
	}
	path = append(path, gl1)
	if sm1 != sm2 {
		id, ok := f.intraUp(sm1, sm2)
		if !ok {
			return nil, fmt.Errorf("fabric: intra link %d->%d down", sm1, sm2)
		}
		path = append(path, id)
	}
	path = append(path, gl2)
	if sb != s2 {
		id, ok := f.intraUp(sb, s2)
		if !ok {
			return nil, fmt.Errorf("fabric: intra link %d->%d down", sb, s2)
		}
		path = append(path, id)
	}
	path = append(path, f.ejectLink[dst])
	return path, nil
}

// PathLatency returns the zero-load latency of a path: endpoint overhead
// at both ends plus a switch traversal per switch on the route.
func (f *Fabric) PathLatency(path []int) units.Seconds {
	lat := 2 * f.Cfg.EndpointLatency
	for _, id := range path {
		if f.Links[id].Kind != Ejection {
			// Every non-ejection link lands in a switch that must
			// forward the packet.
			lat += f.Cfg.SwitchLatency
		}
	}
	return lat
}

// String summarises the fabric.
func (f *Fabric) String() string {
	return fmt.Sprintf("%s: %d groups, %d switches, %d endpoints, %d directed links",
		f.Cfg.Name, f.Cfg.TotalGroups(), f.NumSwitches, f.NumEndpoints, len(f.Links))
}

// PortUsage is one switch's port budget: the Rosetta ASIC has 64 ports,
// which HPE splits 16 L0 (endpoints) + 32 L1 (intra-group) + 16 L2
// (global) on compute blades.
type PortUsage struct {
	Switch                    int
	L0, L1, L2                int
	L0Limit, L1Limit, L2Limit int
}

// Total returns ports in use.
func (p PortUsage) Total() int { return p.L0 + p.L1 + p.L2 }

// WithinBudget reports whether the switch respects the 64-port ASIC and
// the per-tier split.
func (p PortUsage) WithinBudget() bool {
	return p.L0 <= p.L0Limit && p.L1 <= p.L1Limit && p.L2 <= p.L2Limit && p.Total() <= 64
}

// PortBudget audits one switch's physical port usage against the ASIC.
func (f *Fabric) PortBudget(sw int) PortUsage {
	u := PortUsage{Switch: sw, L0Limit: 16, L1Limit: 32, L2Limit: 16}
	if f.Kind == FatTree {
		u.L0Limit, u.L1Limit, u.L2Limit = 64, 64, 64
	}
	for _, l := range f.Links {
		switch l.Kind {
		case Injection:
			if l.To == sw {
				u.L0++
			}
		case Ejection:
			// The ejection direction shares the L0 port counted above.
		case Intra:
			if l.From == sw {
				u.L1++
			}
		case Global:
			if l.From == sw {
				u.L2++
			}
		case Uplink, Downlink:
			if l.From == sw || l.To == sw {
				u.L1++
			}
		}
	}
	return u
}

// AuditPorts verifies every switch in the fabric fits the ASIC budget.
func (f *Fabric) AuditPorts() error {
	for sw := 0; sw < f.NumSwitches; sw++ {
		if u := f.PortBudget(sw); !u.WithinBudget() {
			return fmt.Errorf("fabric: switch %d exceeds port budget: L0 %d/%d, L1 %d/%d, L2 %d/%d",
				sw, u.L0, u.L0Limit, u.L1, u.L1Limit, u.L2, u.L2Limit)
		}
	}
	return nil
}
