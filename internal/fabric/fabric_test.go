package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

func small(t *testing.T) *Fabric {
	t.Helper()
	f, err := NewDragonfly(ScaledConfig(6, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFrontierConfigAggregates(t *testing.T) {
	c := FrontierConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalGroups() != 80 {
		t.Errorf("groups = %d, want 80", c.TotalGroups())
	}
	if c.ComputeEndpoints() != 37888 {
		t.Errorf("endpoints = %d, want 37888", c.ComputeEndpoints())
	}
	if c.ComputeNodes() != 9472 {
		t.Errorf("nodes = %d, want 9472", c.ComputeNodes())
	}
	if c.NodesPerGroup() != 128 {
		t.Errorf("nodes/group = %d, want 128", c.NodesPerGroup())
	}
	// Paper: 12.8 TB/s injection, 7.3 TB/s global per group, 57% taper,
	// 270.1 TB/s total global.
	if got := float64(c.GroupInjectionBandwidth()) / 1e12; math.Abs(got-12.8) > 0.01 {
		t.Errorf("injection/group = %.1f TB/s, want 12.8", got)
	}
	if got := float64(c.GroupGlobalBandwidth()) / 1e12; math.Abs(got-7.3) > 0.01 {
		t.Errorf("global/group = %.1f TB/s, want 7.3", got)
	}
	if got := c.Taper(); math.Abs(got-0.5703) > 0.001 {
		t.Errorf("taper = %.3f, want ~0.57", got)
	}
	if got := float64(c.TotalGlobalBandwidth()) / 1e12; math.Abs(got-270.1) > 0.1 {
		t.Errorf("total global = %.1f TB/s, want 270.1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	c := FrontierConfig()
	c.ComputeGroupSwitches = 40 // needs 39 L1 ports > 32
	if err := c.Validate(); err == nil {
		t.Error("want L1 overflow error")
	}
	c = FrontierConfig()
	c.EndpointsPerSwitch = 20
	if err := c.Validate(); err == nil {
		t.Error("want L0 overflow error")
	}
	c = FrontierConfig()
	c.ComputeGroups = 200 // 199*4 > 512 L2 ports
	if err := c.Validate(); err == nil {
		t.Error("want L2 overflow error")
	}
	c = FrontierConfig()
	c.EndpointEfficiency = 0
	if err := c.Validate(); err == nil {
		t.Error("want efficiency error")
	}
}

func TestDragonflyStructure(t *testing.T) {
	f := small(t)
	if f.NumSwitches != 48 {
		t.Errorf("switches = %d, want 48", f.NumSwitches)
	}
	if f.NumEndpoints != 192 {
		t.Errorf("endpoints = %d, want 192", f.NumEndpoints)
	}
	// Every endpoint should map to a switch in the right group.
	for ep := 0; ep < f.NumEndpoints; ep++ {
		sw := f.EndpointSwitch(ep)
		if g := f.SwitchGroup[sw]; g != f.EndpointGroup(ep) {
			t.Fatalf("endpoint %d group mismatch: %d vs %d", ep, g, f.EndpointGroup(ep))
		}
	}
	// Global links between each compute-group pair.
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			if a == b {
				continue
			}
			if got := len(f.GlobalLinks(a, b)); got != 4 {
				t.Errorf("global links %d->%d = %d, want 4", a, b, got)
			}
		}
	}
	if f.String() == "" {
		t.Error("empty String")
	}
}

func TestNodeEndpoints(t *testing.T) {
	f := small(t)
	eps := f.NodeEndpoints(3)
	if len(eps) != 4 || eps[0] != 12 || eps[3] != 15 {
		t.Errorf("node 3 endpoints = %v, want [12 13 14 15]", eps)
	}
}

func TestMinimalPathSameSwitch(t *testing.T) {
	f := small(t)
	p, err := f.MinimalPath(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Errorf("same-switch path length = %d, want 2 (inject+eject)", len(p))
	}
}

func TestMinimalPathIntraGroup(t *testing.T) {
	f := small(t)
	// Endpoints 0 and 5 share group 0 but different switches (4 per switch).
	p, err := f.MinimalPath(0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Errorf("intra-group path length = %d, want 3", len(p))
	}
	if f.Links[p[1]].Kind != Intra {
		t.Errorf("middle link kind = %v, want intra", f.Links[p[1]].Kind)
	}
}

func TestMinimalPathInterGroup(t *testing.T) {
	f := small(t)
	rng := rand.New(rand.NewSource(1))
	// Group 0 endpoint 0 to group 1 (endpoints 32..63 are group 1: 8 sw × 4).
	p, err := f.MinimalPath(0, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	globals := 0
	for _, id := range p {
		if f.Links[id].Kind == Global {
			globals++
		}
	}
	if globals != 1 {
		t.Errorf("minimal inter-group path has %d global hops, want 1", globals)
	}
	if len(p) > 5 {
		t.Errorf("minimal path length = %d, want <= 5", len(p))
	}
}

func TestValiantPath(t *testing.T) {
	f := small(t)
	rng := rand.New(rand.NewSource(1))
	p, err := f.ValiantPath(0, 40, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	globals := 0
	for _, id := range p {
		if f.Links[id].Kind == Global {
			globals++
		}
	}
	if globals != 2 {
		t.Errorf("valiant path has %d global hops, want 2", globals)
	}
	if _, err := f.ValiantPath(0, 40, 0, rng); err == nil {
		t.Error("valiant via source group should error")
	}
}

// Property: every generated path is connected — each link starts where
// the previous one ended — and starts/ends at the right endpoints.
func TestPathConnectivityProperty(t *testing.T) {
	f := small(t)
	rng := rand.New(rand.NewSource(2))
	check := func(rawSrc, rawDst uint16) bool {
		src := int(rawSrc) % f.NumEndpoints
		dst := int(rawDst) % f.NumEndpoints
		if src == dst {
			return true
		}
		ps, err := f.AdaptivePaths(src, dst, 3, rng)
		if err != nil {
			return false
		}
		for _, p := range ps.Paths {
			if f.Links[p[0]].Kind != Injection || f.Links[p[0]].From != src {
				return false
			}
			last := p[len(p)-1]
			if f.Links[last].Kind != Ejection || f.Links[last].To != dst {
				return false
			}
			for i := 1; i < len(p); i++ {
				if f.Links[p[i]].From != f.Links[p[i-1]].To {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAdaptivePathsIntraGroupMinimalOnly(t *testing.T) {
	f := small(t)
	rng := rand.New(rand.NewSource(3))
	ps, err := f.AdaptivePaths(0, 9, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Paths) != 1 {
		t.Errorf("intra-group adaptive paths = %d, want 1 (minimal only)", len(ps.Paths))
	}
}

func TestAdaptivePathsInterGroup(t *testing.T) {
	f := small(t)
	rng := rand.New(rand.NewSource(3))
	ps, err := f.AdaptivePaths(0, 40, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Paths) != 4 {
		t.Errorf("adaptive paths = %d, want 1 minimal + 3 valiant", len(ps.Paths))
	}
}

func TestLinkFailureReroutes(t *testing.T) {
	f := small(t)
	rng := rand.New(rand.NewSource(4))
	// Kill 3 of the 4 global links from group 0 to group 1.
	ids := f.GlobalLinks(0, 1)
	for _, id := range ids[:3] {
		f.FailLink(id)
	}
	p, err := f.MinimalPath(0, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range p {
		if !f.Links[id].Up {
			t.Error("path uses a failed link")
		}
	}
	// Kill the last one: minimal routing must now fail...
	f.FailLink(ids[3])
	if _, err := f.MinimalPath(0, 40, rng); err == nil {
		t.Error("want error with all direct global links down")
	}
	// ...but adaptive routing still reaches via Valiant intermediates.
	ps, err := f.AdaptivePaths(0, 40, 3, rng)
	if err != nil || len(ps.Paths) == 0 {
		t.Fatalf("adaptive should survive direct-link loss: %v", err)
	}
	f.RestoreLink(ids[0])
	if _, err := f.MinimalPath(0, 40, rng); err != nil {
		t.Errorf("restore failed: %v", err)
	}
}

func TestSwitchFailure(t *testing.T) {
	f := small(t)
	sw := f.EndpointSwitch(0)
	f.FailSwitch(sw)
	if _, err := f.MinimalPath(0, 40, nil); err == nil {
		t.Error("endpoint on failed switch should be unreachable")
	}
	// Endpoints on other switches still work.
	if _, err := f.MinimalPath(8, 40, rand.New(rand.NewSource(5))); err != nil {
		t.Errorf("unrelated endpoints should route: %v", err)
	}
}

func TestPathLatency(t *testing.T) {
	f := small(t)
	rng := rand.New(rand.NewSource(6))
	min, _ := f.MinimalPath(0, 40, rng)
	val, _ := f.ValiantPath(0, 40, 3, rng)
	lmin, lval := f.PathLatency(min), f.PathLatency(val)
	if lmin <= 0 || lval <= lmin {
		t.Errorf("latency ordering wrong: minimal %v, valiant %v", lmin, lval)
	}
	// Zero-load latency should be in the low microseconds, like the
	// paper's 2.6us RR latency.
	if lmin < 1*units.Microsecond || lmin > 5*units.Microsecond {
		t.Errorf("minimal latency = %v, want ~2-3us", lmin)
	}
}

func TestClosSummit(t *testing.T) {
	f, err := NewClos(SummitClosConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumEndpoints != 9216 {
		t.Errorf("endpoints = %d, want 9216 (dual-rail EDR)", f.NumEndpoints)
	}
	if f.Cfg.ComputeNodes() != 4608 {
		t.Errorf("nodes = %d, want 4608", f.Cfg.ComputeNodes())
	}
	p, err := f.MinimalPath(0, 4000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Errorf("clos path length = %d, want 4", len(p))
	}
	// Fat tree never takes valiant detours.
	ps, err := f.AdaptivePaths(0, 4000, 4, rand.New(rand.NewSource(7)))
	if err != nil || len(ps.Paths) != 1 {
		t.Errorf("clos adaptive paths = %d (%v), want 1", len(ps.Paths), err)
	}
}

func TestClosValidation(t *testing.T) {
	if _, err := NewClos(ClosConfig{}); err == nil {
		t.Error("empty clos config should error")
	}
	c := SummitClosConfig()
	c.EndpointEfficiency = 2
	if _, err := NewClos(c); err == nil {
		t.Error("bad efficiency should error")
	}
}

func TestManagerSweep(t *testing.T) {
	f := small(t)
	m := NewManager(f, 10)
	if m.Sweep() != 0 {
		t.Error("clean fabric should show no changes")
	}
	f.FailLink(f.GlobalLinks(0, 1)[0])
	if ch := m.Sweep(); ch != 1 {
		t.Errorf("changes = %d, want 1", ch)
	}
	if m.Epoch != 1 {
		t.Errorf("epoch = %d, want 1", m.Epoch)
	}
	if m.Sweep() != 0 {
		t.Error("second sweep should be quiet")
	}
	f.FailSwitch(0)
	if ch := m.Sweep(); ch == 0 {
		t.Error("switch failure should be detected")
	}
}

func TestManagerPeriodicSweeps(t *testing.T) {
	f := small(t)
	k := sim.NewKernel(1)
	m := NewManager(f, 10)
	m.Start(k)
	k.After(25, func() { f.FailLink(f.GlobalLinks(1, 2)[0]) })
	k.RunUntil(100)
	m.Stop()
	if m.Epoch != 1 {
		t.Errorf("epoch = %d, want 1 (failure detected by periodic sweep)", m.Epoch)
	}
	pending := k.Pending()
	k.RunUntil(1000)
	if k.Pending() >= pending && pending > 0 {
		t.Log("sweeps stopped as requested")
	}
}

func TestStringersFabric(t *testing.T) {
	for _, k := range []LinkKind{Injection, Ejection, Intra, Global, Uplink, Downlink, LinkKind(42)} {
		if k.String() == "" {
			t.Errorf("empty LinkKind string for %d", int(k))
		}
	}
	for _, c := range []GroupClass{ComputeGroup, IOGroup, MgmtGroup, GroupClass(9)} {
		if c.String() == "" {
			t.Errorf("empty GroupClass string for %d", int(c))
		}
	}
}

func TestFrontierFullBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric build in -short mode")
	}
	f, err := NewDragonfly(FrontierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumEndpoints != 37888+5*16*16+1*16*16 {
		t.Errorf("endpoints = %d", f.NumEndpoints)
	}
	// 9,472 nodes worth of compute endpoints come first.
	if g := f.EndpointGroup(37887); f.GroupClassOf(g) != ComputeGroup {
		t.Error("endpoint 37887 should be compute")
	}
	if g := f.EndpointGroup(37888); f.GroupClassOf(g) != IOGroup {
		t.Error("endpoint 37888 should be I/O")
	}
	rng := rand.New(rand.NewSource(8))
	if _, err := f.MinimalPath(0, 37000, rng); err != nil {
		t.Errorf("full-system route failed: %v", err)
	}
}
