package fabric

import (
	"fmt"

	"frontiersim/internal/units"
)

// Test fixtures. Production code derives these configurations from
// internal/machine (which imports this package, so the tests replicate
// the values locally); TestFixturesMatchMachineSpecs in
// internal/machine/golden_test.go pins the two against each other.

// FrontierConfig is the full 80-group Frontier fabric: 74 compute
// groups of 32 switches and 16 endpoints per switch, 5 I/O groups and
// 1 management group of 16 switches each.
func FrontierConfig() Config {
	return Config{
		Name:                 "frontier-slingshot11",
		ComputeGroups:        74,
		IOGroups:             5,
		MgmtGroups:           1,
		ComputeGroupSwitches: 32,
		TORGroupSwitches:     16,
		EndpointsPerSwitch:   16,
		NICsPerNode:          4,
		LinkRate:             25 * units.GBps,
		EndpointEfficiency:   0.70,
		ComputeComputeLinks:  4,
		ComputeIOLinks:       2,
		ComputeMgmtLinks:     2,
		IOIOLinks:            10,
		IOMgmtLinks:          6,
		SwitchLatency:        200 * units.Nanosecond,
		EndpointLatency:      650 * units.Nanosecond,
	}
}

// ScaledConfig is a small dragonfly with Frontier's structural ratios.
func ScaledConfig(computeGroups, switchesPerGroup, endpointsPerSwitch int) Config {
	c := FrontierConfig()
	c.Name = fmt.Sprintf("scaled-dragonfly-%dx%dx%d", computeGroups, switchesPerGroup, endpointsPerSwitch)
	c.ComputeGroups = computeGroups
	c.IOGroups = 0
	c.MgmtGroups = 0
	c.ComputeGroupSwitches = switchesPerGroup
	c.EndpointsPerSwitch = endpointsPerSwitch
	return c
}

// SummitClosConfig is Summit's dual-rail EDR fat tree.
func SummitClosConfig() ClosConfig {
	return ClosConfig{
		Name:               "summit-edr-fattree",
		Leaves:             256,
		EndpointsPerLeaf:   36,
		NICsPerNode:        2,
		LinkRate:           12.5 * units.GBps,
		EndpointEfficiency: 0.68,
		SwitchLatency:      300 * units.Nanosecond,
		EndpointLatency:    900 * units.Nanosecond,
	}
}
