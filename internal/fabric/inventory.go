package fabric

import (
	"fmt"
)

// Inventory counts the physical plant of a fabric: switches, switch
// ports in use, and cables by type. The paper's §4.2.2 rationale for the
// dragonfly is exactly this accounting: "A dragonfly has ~50% less ports
// and cables compared to a Clos and is similar to a 2:1 over-subscribed
// fat-tree."
type Inventory struct {
	Switches int
	// PortsInUse counts switch ports carrying links (endpoint, intra,
	// global) — each bidirectional connection uses one port per side.
	PortsInUse int
	// EndpointCables connect NICs to switches; IntraCables are the
	// short intra-group (backplane/copper) switch-switch runs;
	// OpticalCables are the long inter-group AOCs, counted as QSFP-DD
	// bundles of two links where applicable.
	EndpointCables int
	IntraCables    int
	OpticalCables  int
}

// InterSwitchCables counts switch-to-switch cabling of both kinds — the
// plant a topology choice actually changes.
func (inv Inventory) InterSwitchCables() int { return inv.IntraCables + inv.OpticalCables }

// TotalCables sums all classes.
func (inv Inventory) TotalCables() int {
	return inv.EndpointCables + inv.IntraCables + inv.OpticalCables
}

// String summarises the inventory.
func (inv Inventory) String() string {
	return fmt.Sprintf("%d switches, %d ports, %d endpoint + %d intra + %d optical cables",
		inv.Switches, inv.PortsInUse, inv.EndpointCables, inv.IntraCables, inv.OpticalCables)
}

// CountInventory audits the built fabric.
func (f *Fabric) CountInventory() Inventory {
	inv := Inventory{Switches: f.NumSwitches}
	if f.Kind == FatTree {
		inv.Switches-- // the virtual core stands in for the real spine
	}
	globals := 0
	for _, l := range f.Links {
		switch l.Kind {
		case Injection:
			inv.PortsInUse++ // endpoint side is a NIC, not a switch port
			inv.EndpointCables++
		case Intra:
			inv.PortsInUse++ // one port per directed link = 2 per cable
			if l.From < l.To {
				inv.IntraCables++
			}
		case Global:
			inv.PortsInUse++
			if l.From < l.To {
				globals++
			}
		case Uplink:
			inv.PortsInUse += 2
			inv.IntraCables++
		}
	}
	// Two 200 Gb/s global links share one QSFP-DD AOC bundle.
	inv.OpticalCables = (globals + 1) / 2
	return inv
}

// EquivalentClosInventory sizes a non-blocking three-level fat tree for
// the same endpoint count out of the same 64-port switch ASIC — the
// alternative HPE traded away. Leaf switches host 32 endpoints and 32
// uplinks; spine tiers provide full bisection (a folded Clos needs
// ~endpoints*(2*levels-1)/64... here: 3-level fat tree on 64-port
// switches supports up to 64^3/4 endpoints with 5*N/64 switches and
// 2*N inter-switch cables).
func EquivalentClosInventory(endpoints int) Inventory {
	const radix = 64
	leaves := ceilDiv(endpoints, radix/2)
	// Middle and top tiers of a folded 3-level Clos: each tier carries
	// the same bisection as the leaf uplinks.
	mid := leaves
	top := ceilDiv(leaves, 2)
	switches := leaves + mid + top
	// Cables: endpoint links + leaf->mid + mid->top (each a full
	// radix/2 bundle per switch).
	interSwitch := leaves*(radix/2) + mid*(radix/2)
	return Inventory{
		Switches:       switches,
		PortsInUse:     endpoints + 3*interSwitch, // both sides of inter-switch + endpoint ports
		EndpointCables: endpoints,
		OpticalCables:  interSwitch,
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// DragonflyVsClos reports the dragonfly's switch-port and inter-switch
// cable counts as fractions of the equivalent Clos — the "~50% less
// ports and cables" of §4.2.2.
func (f *Fabric) DragonflyVsClos() (portFraction, cableFraction float64) {
	df := f.CountInventory()
	clos := EquivalentClosInventory(f.NumEndpoints)
	return float64(df.PortsInUse) / float64(clos.PortsInUse),
		float64(df.InterSwitchCables()) / float64(clos.InterSwitchCables())
}
