package fabric

import "testing"

// The change journal answers "which links changed since epoch e" for
// the delta solver. Fail/restore transitions are recorded per link,
// half-open on the left: changes at epochs > e are reported.
func TestChangedSinceReportsTransitions(t *testing.T) {
	f := small(t)
	e0 := f.StateEpoch()
	if links, ok := f.ChangedSince(e0); !ok || links != nil {
		t.Fatalf("no changes yet: got %v, %v", links, ok)
	}
	f.FailLink(3)
	e1 := f.StateEpoch()
	f.RestoreLink(3)
	f.FailLink(7)
	links, ok := f.ChangedSince(e0)
	if !ok {
		t.Fatal("journal should cover the whole window")
	}
	want := []int{3, 3, 7}
	if len(links) != len(want) {
		t.Fatalf("changed = %v, want %v", links, want)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("changed = %v, want %v", links, want)
		}
	}
	// A later visitor sees only the tail of the journal.
	links, ok = f.ChangedSince(e1)
	if !ok || len(links) != 2 || links[0] != 3 || links[1] != 7 {
		t.Fatalf("tail query = %v, %v, want [3 7] true", links, ok)
	}
	// Current-epoch queries answer "nothing changed".
	if links, ok = f.ChangedSince(f.StateEpoch()); !ok || links != nil {
		t.Fatalf("current-epoch query = %v, %v, want nil true", links, ok)
	}
}

// FailSwitch downs every link touching the switch in one epoch bump;
// the journal must list each of them.
func TestChangedSinceSwitchFailure(t *testing.T) {
	f := small(t)
	e0 := f.StateEpoch()
	f.FailSwitch(0)
	links, ok := f.ChangedSince(e0)
	if !ok || len(links) == 0 {
		t.Fatalf("switch failure journaled %v, %v", links, ok)
	}
	logged := make(map[int]bool, len(links))
	for _, lid := range links {
		if f.Links[lid].Up {
			t.Errorf("journaled link %d is still up", lid)
		}
		logged[lid] = true
	}
	for i := range f.Links {
		if !f.Links[i].Up && !logged[i] {
			t.Errorf("down link %d missing from the journal", i)
		}
	}
}

// Overflow drops the whole history: older visitors get ok=false (assume
// everything changed), while visitors arriving after the drop resume
// incremental service.
func TestChangedSinceOverflow(t *testing.T) {
	f := small(t)
	e0 := f.StateEpoch()
	for i := 0; i <= maxStateLog; i++ {
		f.FailLink(1)
		f.RestoreLink(1)
	}
	if _, ok := f.ChangedSince(e0); ok {
		t.Fatal("pre-overflow epoch should answer ok=false")
	}
	e1 := f.StateEpoch()
	f.FailLink(2)
	links, ok := f.ChangedSince(e1)
	if !ok || len(links) != 1 || links[0] != 2 {
		t.Fatalf("post-overflow query = %v, %v, want [2] true", links, ok)
	}
	f.RestoreLink(2)
}

// NodeEndpoint maps (node, rank-ish index) onto the node's NICs,
// wrapping the index round-robin.
func TestNodeEndpoint(t *testing.T) {
	f := small(t)
	per := f.Cfg.NICsPerNode
	for n := 0; n < 3; n++ {
		for i := 0; i < 2*per; i++ {
			want := n*per + i%per
			if got := f.NodeEndpoint(n, i); got != want {
				t.Errorf("NodeEndpoint(%d, %d) = %d, want %d", n, i, got, want)
			}
		}
	}
}
