package fabric

import (
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// Manager models the Slingshot Fabric Manager (§3.4.2): switches boot
// blank, the manager pushes configuration, then periodically sweeps the
// fabric for failures or topology changes and sends updated routing
// tables to affected switches. In the model a "routing table push" is a
// bump of the routing epoch: path construction always consults current
// link state, so routes recompute lazily after each sweep.
type Manager struct {
	F *Fabric
	// SweepInterval is how often the manager polls every switch.
	SweepInterval units.Seconds
	// Epoch increments whenever a sweep observes a state change.
	Epoch int
	// RoutesPushed counts routing-table updates sent to switches.
	RoutesPushed int

	// Tables is the forwarding state most recently pushed to switches.
	Tables map[int]RoutingTable

	lastLinkUp   []bool
	lastSwHealth []bool
	k            *sim.Kernel
	stop         sim.Event
}

// NewManager returns a manager for fabric f.
func NewManager(f *Fabric, sweepInterval units.Seconds) *Manager {
	m := &Manager{F: f, SweepInterval: sweepInterval}
	m.snapshot()
	m.Tables = f.BuildAllRoutingTables()
	return m
}

func (m *Manager) snapshot() {
	m.lastLinkUp = make([]bool, len(m.F.Links))
	for i := range m.F.Links {
		m.lastLinkUp[i] = m.F.Links[i].Up
	}
	m.lastSwHealth = append([]bool(nil), m.F.SwitchHealthy...)
}

// Sweep polls all switches once and returns the number of observed state
// changes. On any change the routing epoch advances and new tables are
// pushed to the switches that own changed links.
func (m *Manager) Sweep() int {
	changes := 0
	affected := map[int]bool{}
	for i := range m.F.Links {
		if m.F.Links[i].Up != m.lastLinkUp[i] {
			changes++
			l := m.F.Links[i]
			if l.Kind != Injection {
				affected[l.From] = true
			}
			if l.Kind != Ejection {
				affected[l.To] = true
			}
			m.lastLinkUp[i] = l.Up
		}
	}
	for s := range m.F.SwitchHealthy {
		if m.F.SwitchHealthy[s] != m.lastSwHealth[s] {
			changes++
			affected[s] = true
			m.lastSwHealth[s] = m.F.SwitchHealthy[s]
		}
	}
	if changes > 0 {
		m.Epoch++
		m.RoutesPushed += len(affected)
		// Recompute and push forwarding tables. Affected switches get
		// new tables; group-mates of failed hardware also change (their
		// fallback candidates moved), so the manager rebuilds the lot —
		// the real implementation diffs, the effect is the same.
		m.Tables = m.F.BuildAllRoutingTables()
	}
	return changes
}

// sweepTick is the closure-free sweep body: the manager itself is the
// event arg, so periodic rescheduling allocates nothing per tick.
func sweepTick(arg any) {
	m := arg.(*Manager)
	m.Sweep()
	m.stop = m.k.AfterCall(m.SweepInterval, sweepTick, m)
}

// Start schedules periodic sweeps on the simulation kernel.
func (m *Manager) Start(k *sim.Kernel) {
	m.k = k
	m.stop = k.AfterCall(m.SweepInterval, sweepTick, m)
}

// Stop cancels the periodic sweep.
func (m *Manager) Stop() {
	m.stop.Cancel()
	m.stop = sim.Event{}
}
