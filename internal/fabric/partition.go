package fabric

import "frontiersim/internal/units"

// The dragonfly is the natural partition for parallel simulation: one
// logical process per group. Every interaction that crosses groups rides
// a global link whose head must traverse a switch, so the switch
// traversal latency — derived from machine.Spec via Config — is a
// static lower bound on cross-LP event delay: the conservative lookahead
// that sizes the sharded kernel's windows. Fabric implements
// sim.Partition structurally (sim.Time = units.Seconds), so a built
// fabric plugs straight into sim.NewSharded.

// NumLPs implements sim.Partition: one logical process per dragonfly
// group. Non-dragonfly fabrics report a single LP, which selects the
// sharded kernel's serial fallback.
func (f *Fabric) NumLPs() int {
	if f.Kind != Dragonfly {
		return 1
	}
	return f.numGroups
}

// Lookahead implements sim.Partition: the minimum virtual latency of any
// cross-group interaction, which for the dragonfly is one switch
// traversal (a message's head leaves its group only through a global
// link out of a switch). Zero when the fabric has fewer than two groups
// or is not a dragonfly, disabling windowing.
func (f *Fabric) Lookahead() units.Seconds {
	if f.Kind != Dragonfly || f.numGroups < 2 {
		return 0
	}
	return f.Cfg.SwitchLatency
}

// EndpointLP returns the logical process that owns an endpoint: its
// dragonfly group (LP 0 for non-dragonfly fabrics).
func (f *Fabric) EndpointLP(ep int) int {
	if f.Kind != Dragonfly {
		return 0
	}
	return f.EndpointGroup(ep)
}

// LinkLP returns the logical process that owns a link's queue. Ownership
// follows the switch doing the arbitration: an injection link is owned
// by the group of the switch it feeds (To), every other kind by the
// group of its From switch. A global link a→b therefore belongs to group
// a — the sender arbitrates for it locally, and only the granted head
// crosses to group b, one switch traversal (= one lookahead) later.
func (f *Fabric) LinkLP(id int) int {
	if f.Kind != Dragonfly {
		return 0
	}
	l := &f.Links[id]
	if l.Kind == Injection {
		return f.SwitchGroup[l.To]
	}
	return f.SwitchGroup[l.From]
}
