package fabric

import (
	"testing"

	"frontiersim/internal/units"
)

func partitionTestFabric(t *testing.T) *Fabric {
	t.Helper()
	cfg := FrontierConfig()
	cfg.ComputeGroups = 4
	cfg.IOGroups = 1
	cfg.MgmtGroups = 1
	f, err := NewDragonfly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDragonflyPartition(t *testing.T) {
	f := partitionTestFabric(t)
	if got, want := f.NumLPs(), f.Cfg.TotalGroups(); got != want {
		t.Errorf("NumLPs = %d, want one per group (%d)", got, want)
	}
	if got := f.Lookahead(); got != f.Cfg.SwitchLatency {
		t.Errorf("Lookahead = %v, want the switch traversal %v", got, f.Cfg.SwitchLatency)
	}
	if f.Lookahead() <= 0 {
		t.Fatal("dragonfly lookahead must be positive for windowing")
	}
}

func TestEndpointLPMatchesGroup(t *testing.T) {
	f := partitionTestFabric(t)
	for ep := 0; ep < f.NumEndpoints; ep++ {
		if got, want := f.EndpointLP(ep), f.EndpointGroup(ep); got != want {
			t.Fatalf("endpoint %d: LP %d, want group %d", ep, got, want)
		}
	}
}

func TestLinkLPOwnership(t *testing.T) {
	f := partitionTestFabric(t)
	for _, l := range f.Links {
		lp := f.LinkLP(l.ID)
		var want int
		switch l.Kind {
		case Injection:
			// endpoint -> switch: owned by the switch's group.
			want = f.SwitchGroup[l.To]
		case Ejection, Intra, Global:
			// switch arbitrates: owned by the From switch's group.
			want = f.SwitchGroup[l.From]
		default:
			t.Fatalf("unexpected link kind %v in dragonfly", l.Kind)
		}
		if lp != want {
			t.Fatalf("link %d (%v %d->%d): LP %d, want %d", l.ID, l.Kind, l.From, l.To, lp, want)
		}
	}
}

func TestGlobalLinkOwnedBySender(t *testing.T) {
	// The lookahead argument requires the sending group to arbitrate its
	// own global links: only the granted head crosses, a switch
	// traversal later.
	f := partitionTestFabric(t)
	for a := 0; a < f.NumLPs(); a++ {
		for b := 0; b < f.NumLPs(); b++ {
			for _, id := range f.GlobalLinks(a, b) {
				if got := f.LinkLP(id); got != a {
					t.Fatalf("global link %d (group %d->%d) owned by LP %d, want sender %d", id, a, b, got, a)
				}
			}
		}
	}
}

func TestFatTreeHasNoPartition(t *testing.T) {
	f, err := NewClos(ClosConfig{
		Name: "t", Leaves: 4, EndpointsPerLeaf: 4, NICsPerNode: 1,
		LinkRate: 12.5e9, EndpointEfficiency: 0.9,
		SwitchLatency: 300 * units.Nanosecond, EndpointLatency: 900 * units.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.NumLPs(); got != 1 {
		t.Errorf("fat tree NumLPs = %d, want 1 (serial fallback)", got)
	}
	if got := f.Lookahead(); got != 0 {
		t.Errorf("fat tree Lookahead = %v, want 0", got)
	}
	for _, l := range f.Links {
		if f.LinkLP(l.ID) != 0 || f.EndpointLP(0) != 0 {
			t.Fatal("fat tree entities must all map to LP 0")
		}
	}
}
