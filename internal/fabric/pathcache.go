package fabric

import (
	"sync"
	"sync/atomic"

	"frontiersim/internal/rng"
)

// PathCache memoises adaptive-routing path sets keyed by (src, dst,
// link-state epoch). mpiGraph revisits the same endpoint pairs across
// thousands of shift permutations; without the cache every visit walks
// the fabric again to rebuild an identical route set.
//
// Entries are invalidated wholesale when the fabric's StateEpoch moves —
// i.e. whenever the fabric manager (or a test) marks links or switches
// up/down — so a cached path can never cross hardware that has since
// failed.
//
// Determinism: a miss computes the path set with a private rng seeded
// purely by (cache seed, src, dst, epoch), never by a caller-supplied
// stream. The cached content is therefore a pure function of the key, so
// concurrent workers racing to fill the same entry write identical
// bytes, and a parallel run returns exactly the paths a serial run
// would. A PathCache is safe for concurrent use.
type PathCache struct {
	f        *Fabric
	nValiant int
	seed     int64

	mu    sync.RWMutex
	epoch uint64
	sets  map[uint64]PathSet

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewPathCache returns a cache over f computing path sets with nValiant
// Valiant detours. seed fixes the (deterministic) path randomisation.
func NewPathCache(f *Fabric, nValiant int, seed int64) *PathCache {
	return &PathCache{
		f:        f,
		nValiant: nValiant,
		seed:     seed,
		epoch:    f.StateEpoch(),
		sets:     make(map[uint64]PathSet),
	}
}

// pairSeed derives the rng seed for one cache entry: a pure function of
// (cache seed, src, dst, epoch) via the SplitMix64 avalanche chain.
func (c *PathCache) pairSeed(src, dst int, epoch uint64) int64 {
	return rng.DeriveN(c.seed, key(src, dst), epoch)
}

// Paths returns the adaptive-routing path set for one endpoint pair,
// computing and caching it on first use within the current link-state
// epoch.
func (c *PathCache) Paths(src, dst int) (PathSet, error) {
	k := key(src, dst)
	epoch := c.f.StateEpoch()
	c.mu.RLock()
	if c.epoch == epoch {
		if ps, ok := c.sets[k]; ok {
			c.mu.RUnlock()
			c.hits.Add(1)
			return ps, nil
		}
	}
	c.mu.RUnlock()

	r := rng.New(c.pairSeed(src, dst, epoch))
	ps, err := c.f.AdaptivePaths(src, dst, c.nValiant, r)
	if err != nil {
		return ps, err
	}
	c.mu.Lock()
	if c.epoch != epoch {
		// Link state moved (or this is the first fill after a move):
		// drop every stale entry before admitting the fresh one.
		c.sets = make(map[uint64]PathSet)
		c.epoch = epoch
	}
	c.sets[k] = ps
	c.mu.Unlock()
	c.misses.Add(1)
	return ps, nil
}

// Invalidate drops every cached entry, forcing the next Paths call for
// each pair to recompute its set. Link-state transitions invalidate the
// cache automatically via StateEpoch; this is for tests and benchmarks
// that need a cold cache without touching hardware state. Because each
// entry is a pure function of (seed, src, dst, epoch), refilled entries
// are identical to the dropped ones.
func (c *PathCache) Invalidate() {
	c.mu.Lock()
	c.sets = make(map[uint64]PathSet)
	c.mu.Unlock()
}

// Seed returns the cache's path-randomisation seed. Callers sharing a
// PathCache across runs use it to check the cache was built with the
// derivation their own determinism contract assumes.
func (c *PathCache) Seed() int64 { return c.seed }

// Valiant returns the Valiant detour fanout the cache computes paths
// with.
func (c *PathCache) Valiant() int { return c.nValiant }

// Stats reports cache hits and misses since construction.
func (c *PathCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of cached path sets in the current epoch.
func (c *PathCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sets)
}
