package fabric

import (
	"reflect"
	"sync"
	"testing"
)

func pathCacheFabric(t *testing.T) *Fabric {
	t.Helper()
	f, err := NewDragonfly(ScaledConfig(6, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPathCacheHitsAndDeterminism(t *testing.T) {
	f := pathCacheFabric(t)
	c := NewPathCache(f, 4, 99)
	first, err := c.Paths(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Paths(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("repeated lookup returned different path sets")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
	// A fresh cache with the same seed computes identical content: the
	// entry rng depends only on (seed, src, dst, epoch), never on lookup
	// order — this is what makes concurrent fills race-safe.
	c2 := NewPathCache(f, 4, 99)
	if _, err := c2.Paths(17, 85); err != nil { // different pair first
		t.Fatal(err)
	}
	again, err := c2.Paths(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cache content depends on lookup order; must be a pure function of the key")
	}
	// A different seed must reshuffle the Valiant picks for at least
	// some pair (probabilistic, but with 4 detours over 6 groups a
	// collision across every pair is vanishingly unlikely).
	c3 := NewPathCache(f, 4, 100)
	other, err := c3.Paths(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, other) {
		t.Log("seed 99 and 100 agree on pair (0,40); tolerated but suspicious")
	}
}

func TestPathCacheInvalidatedByLinkState(t *testing.T) {
	f := pathCacheFabric(t)
	c := NewPathCache(f, 2, 7)
	ps, err := c.Paths(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d, want 1", c.Len())
	}
	// Fail a link on the cached route: the state epoch moves and the next
	// lookup must recompute a route avoiding it.
	failed := ps.Paths[0][1] // a fabric link (index 0 is the injection link)
	before := f.StateEpoch()
	f.FailLink(failed)
	if f.StateEpoch() == before {
		t.Fatal("FailLink did not advance the state epoch")
	}
	fresh, err := c.Paths(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fresh.Paths {
		for _, lid := range p {
			if lid == failed {
				t.Fatalf("cached path still crosses failed link %d", failed)
			}
		}
	}
	if c.Len() != 1 {
		t.Errorf("stale entries survived invalidation: len = %d", c.Len())
	}
	// Restore: epoch moves again, entries recycle again.
	f.RestoreLink(failed)
	if _, err := c.Paths(0, 40); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != 3 {
		t.Errorf("misses = %d, want 3 (one per epoch)", misses)
	}
}

func TestPathCacheSwitchFailureAdvancesEpoch(t *testing.T) {
	f := pathCacheFabric(t)
	before := f.StateEpoch()
	f.FailSwitch(5)
	if f.StateEpoch() == before {
		t.Error("FailSwitch did not advance the state epoch")
	}
}

// Concurrent lookups over overlapping pairs must agree with a serial fill
// — run under -race this also exercises the locking.
func TestPathCacheConcurrentDeterminism(t *testing.T) {
	f := pathCacheFabric(t)
	serial := NewPathCache(f, 3, 5)
	pairs := [][2]int{}
	for src := 0; src < 8; src++ {
		for dst := 40; dst < 48; dst++ {
			pairs = append(pairs, [2]int{src, dst})
		}
	}
	want := make([]PathSet, len(pairs))
	for i, p := range pairs {
		ps, err := serial.Paths(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ps
	}
	shared := NewPathCache(f, 3, 5)
	var wg sync.WaitGroup
	got := make([]PathSet, len(pairs))
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range pairs {
				ps, err := shared.Paths(pairs[i][0], pairs[i][1])
				if err != nil {
					errs[w] = err
					return
				}
				if w == 0 {
					got[i] = ps
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range pairs {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("pair %v: concurrent fill diverged from serial fill", pairs[i])
		}
	}
	if hits, misses := shared.Stats(); hits+misses != uint64(8*len(pairs)) {
		t.Errorf("stats account for %d lookups, want %d", hits+misses, 8*len(pairs))
	}
}
