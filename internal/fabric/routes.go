package fabric

import (
	"fmt"
)

// RoutingTable is one switch's forwarding state — what the fabric
// manager actually computes and pushes (§3.4.2). LocalNext gives the L1
// port (link id) toward every other switch in the group; GlobalNext
// gives, per destination group, the candidate first hops: this switch's
// own usable L2 links to that group, or failing that, the L1 links
// toward group-mates that have one.
type RoutingTable struct {
	Switch int
	Epoch  int
	// LocalNext maps a destination switch in this group to the L1 link.
	LocalNext map[int]int
	// GlobalNext maps a destination group to candidate link ids out of
	// this switch (L2 links directly, or L1 links toward carriers).
	GlobalNext map[int][]int
}

// BuildRoutingTable computes the current table for one switch from live
// link state.
func (f *Fabric) BuildRoutingTable(sw int) RoutingTable {
	rt := RoutingTable{Switch: sw, LocalNext: map[int]int{}, GlobalNext: map[int][]int{}}
	if f.Kind == FatTree {
		return rt // leaves forward everything to the core
	}
	g := f.SwitchGroup[sw]
	for _, peer := range f.groupSwitches[g] {
		if peer == sw {
			continue
		}
		if id, ok := f.intraUp(sw, peer); ok {
			rt.LocalNext[peer] = id
		}
	}
	for dst := 0; dst < f.Cfg.TotalGroups(); dst++ {
		if dst == g {
			continue
		}
		var direct, viaPeer []int
		for _, id := range f.GlobalLinks(g, dst) {
			if !f.linkUp(id) {
				continue
			}
			l := f.Links[id]
			if l.From == sw {
				direct = append(direct, id)
			} else if hop, ok := rt.LocalNext[l.From]; ok {
				viaPeer = append(viaPeer, hop)
			}
		}
		// Prefer this switch's own L2 ports; fall back to group-mates.
		rt.GlobalNext[dst] = append(direct, viaPeer...)
	}
	return rt
}

// BuildAllRoutingTables computes tables for every healthy switch.
func (f *Fabric) BuildAllRoutingTables() map[int]RoutingTable {
	out := make(map[int]RoutingTable, f.NumSwitches)
	for sw := 0; sw < f.NumSwitches; sw++ {
		if f.SwitchHealthy[sw] {
			out[sw] = f.BuildRoutingTable(sw)
		}
	}
	return out
}

// ForwardMinimal walks the forwarding tables from src to dst endpoint,
// returning the links traversed — the table-driven counterpart of
// MinimalPath, used to validate that pushed tables are loop-free and
// complete. tables must cover every healthy switch.
func (f *Fabric) ForwardMinimal(tables map[int]RoutingTable, src, dst int) ([]int, error) {
	if src == dst {
		return nil, fmt.Errorf("fabric: self path for endpoint %d", src)
	}
	if !f.linkUp(f.injectLink[src]) || !f.linkUp(f.ejectLink[dst]) {
		return nil, fmt.Errorf("fabric: endpoint link down (%d->%d)", src, dst)
	}
	path := []int{f.injectLink[src]}
	cur := f.endpointSwitch[src]
	target := f.endpointSwitch[dst]
	targetGroup := f.SwitchGroup[target]
	for hops := 0; cur != target; hops++ {
		if hops > 4 {
			return nil, fmt.Errorf("fabric: forwarding loop at switch %d", cur)
		}
		rt, ok := tables[cur]
		if !ok {
			return nil, fmt.Errorf("fabric: no table for switch %d", cur)
		}
		var next int
		if f.SwitchGroup[cur] == targetGroup {
			id, ok := rt.LocalNext[target]
			if !ok {
				return nil, fmt.Errorf("fabric: switch %d has no local route to %d", cur, target)
			}
			next = id
		} else {
			cands := rt.GlobalNext[targetGroup]
			if len(cands) == 0 {
				return nil, fmt.Errorf("fabric: switch %d has no route to group %d", cur, targetGroup)
			}
			next = cands[0]
		}
		if !f.linkUp(next) {
			return nil, fmt.Errorf("fabric: table at switch %d points at down link %d", cur, next)
		}
		path = append(path, next)
		cur = f.Links[next].To
	}
	return append(path, f.ejectLink[dst]), nil
}
