package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableForwardingMatchesMinimal(t *testing.T) {
	f := small(t)
	tables := f.BuildAllRoutingTables()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		src := rng.Intn(f.NumEndpoints)
		dst := rng.Intn(f.NumEndpoints)
		if src == dst {
			continue
		}
		fwd, err := f.ForwardMinimal(tables, src, dst)
		if err != nil {
			t.Fatalf("%d->%d: %v", src, dst, err)
		}
		min, err := f.MinimalPath(src, dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Both are minimal-class routes (2..5 links); the choice among
		// parallel global links can shift a path by one intra hop on
		// either side.
		if len(fwd) < 2 || len(fwd) > 5 {
			t.Fatalf("%d->%d: table path %d hops outside [2,5]", src, dst, len(fwd))
		}
		if diff := len(fwd) - len(min); diff < -2 || diff > 1 {
			t.Fatalf("%d->%d: table path %d vs minimal %d", src, dst, len(fwd), len(min))
		}
	}
}

// Property: table-driven forwarding is loop-free and lands at the right
// endpoint for all pairs.
func TestTableForwardingProperty(t *testing.T) {
	f := small(t)
	tables := f.BuildAllRoutingTables()
	check := func(a, b uint16) bool {
		src := int(a) % f.NumEndpoints
		dst := int(b) % f.NumEndpoints
		if src == dst {
			return true
		}
		path, err := f.ForwardMinimal(tables, src, dst)
		if err != nil {
			return false
		}
		last := f.Links[path[len(path)-1]]
		return last.Kind == Ejection && last.To == dst
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTablesRerouteAroundFailures(t *testing.T) {
	f := small(t)
	m := NewManager(f, 10)
	// Kill every global link that leaves endpoint 0's switch toward
	// group 1; the manager's next sweep must reroute via group-mates.
	sw := f.EndpointSwitch(0)
	killed := 0
	for _, id := range f.GlobalLinks(0, 1) {
		if f.Links[id].From == sw {
			f.FailLink(id)
			killed++
		}
	}
	if m.Sweep() == 0 && killed > 0 {
		t.Fatal("sweep missed the failures")
	}
	path, err := f.ForwardMinimal(m.Tables, 0, 40)
	if err != nil {
		t.Fatalf("reroute failed: %v", err)
	}
	for _, id := range path {
		if !f.Links[id].Up {
			t.Error("rerouted path uses a down link")
		}
	}
}

func TestStaleTablesDetectDownLinks(t *testing.T) {
	f := small(t)
	tables := f.BuildAllRoutingTables()
	// Fail links *after* the tables were pushed: forwarding must refuse
	// to use them (the window between failure and the next sweep).
	for _, id := range f.GlobalLinks(0, 1) {
		f.FailLink(id)
	}
	failedAny := false
	for ep := 0; ep < 32; ep++ {
		if _, err := f.ForwardMinimal(tables, ep, 40); err != nil {
			failedAny = true
		}
	}
	if !failedAny {
		t.Error("stale tables over dead links should surface errors")
	}
}

func TestClosTablesEmpty(t *testing.T) {
	f, err := NewClos(SummitClosConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt := f.BuildRoutingTable(0)
	if len(rt.LocalNext) != 0 || len(rt.GlobalNext) != 0 {
		t.Error("clos leaves forward to the core; tables should be empty")
	}
}

func TestManagerPushesTablesOnChange(t *testing.T) {
	f := small(t)
	m := NewManager(f, 10)
	before := m.Tables
	f.FailSwitch(5)
	m.Sweep()
	if &m.Tables == &before {
		t.Log("tables replaced by value; checking content")
	}
	if _, ok := m.Tables[5]; ok {
		t.Error("failed switch should not receive a table")
	}
	// Surviving switches in the same group must have dropped their
	// LocalNext entries toward the dead switch.
	g := f.SwitchGroup[5]
	for _, sw := range f.GroupSwitches(g) {
		if sw == 5 {
			continue
		}
		if _, ok := m.Tables[sw].LocalNext[5]; ok {
			t.Errorf("switch %d still routes to dead switch 5", sw)
		}
	}
}

func TestPortBudgetFrontier(t *testing.T) {
	f, err := NewDragonfly(FrontierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AuditPorts(); err != nil {
		t.Fatal(err)
	}
	// A compute-blade switch: 16 endpoints, 31 group-mates, and its
	// share of 304 global links over 32 switches (9-10).
	u := f.PortBudget(0)
	if u.L0 != 16 {
		t.Errorf("L0 = %d, want 16", u.L0)
	}
	if u.L1 != 31 {
		t.Errorf("L1 = %d, want 31", u.L1)
	}
	if u.L2 < 8 || u.L2 > 12 {
		t.Errorf("L2 = %d, want ~9-10 (304 global links over 32 switches)", u.L2)
	}
	if u.Total() > 64 {
		t.Errorf("total ports = %d, exceeds the 64-port ASIC", u.Total())
	}
}

func TestPortBudgetRejectsOverbuild(t *testing.T) {
	// 3 links per compute pair x 200 groups would blow the L2 budget;
	// Validate already rejects it, and the audit agrees on a legal but
	// tight configuration.
	cfg := ScaledConfig(6, 8, 4)
	f, err := NewDragonfly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AuditPorts(); err != nil {
		t.Fatal(err)
	}
}

// §4.2.2: "A dragonfly has ~50% less ports and cables compared to a
// Clos" — reproduced by direct inventory of the built fabric against an
// equivalently sized non-blocking fat tree.
func TestDragonflyHalvesPortsAndCables(t *testing.T) {
	f, err := NewDragonfly(FrontierConfig())
	if err != nil {
		t.Fatal(err)
	}
	ports, cables := f.DragonflyVsClos()
	if ports < 0.40 || ports > 0.60 {
		t.Errorf("port fraction = %.2f, want ~0.5", ports)
	}
	if cables < 0.40 || cables > 0.65 {
		t.Errorf("inter-switch cable fraction = %.2f, want ~0.5", cables)
	}
	inv := f.CountInventory()
	if inv.EndpointCables != 39424 {
		t.Errorf("endpoint cables = %d, want 39424", inv.EndpointCables)
	}
	// 74 compute groups x C(32,2) + 6 service groups x C(16,2) intra.
	wantIntra := 74*(32*31/2) + 6*(16*15/2)
	if inv.IntraCables != wantIntra {
		t.Errorf("intra cables = %d, want %d", inv.IntraCables, wantIntra)
	}
	// ~10.8k global links pair into ~5.9k QSFP-DD bundles.
	if inv.OpticalCables < 5500 || inv.OpticalCables > 6500 {
		t.Errorf("optical bundles = %d, want ~5.9k", inv.OpticalCables)
	}
	if inv.String() == "" || inv.TotalCables() <= 0 {
		t.Error("inventory formatting broken")
	}
}

// §4.2.2's worst-case arithmetic: all traffic on global links divides
// the 270.1 TB/s among 37,888 endpoints, halved again by non-minimal
// routing — ~3.6 GB/s, the floor of the Figure 6 histogram.
func TestGlobalOnlyFloorArithmetic(t *testing.T) {
	c := FrontierConfig()
	perEndpoint := float64(c.TotalGlobalBandwidth()) / float64(c.ComputeEndpoints()) / 2 * 2
	// Directed capacity is 2x; each Valiant byte burns 2 directed hops:
	// the factors cancel, leaving global/endpoints/2.
	floor := float64(c.TotalGlobalBandwidth()) / float64(c.ComputeEndpoints()) / 2
	if floor < 3.3e9 || floor > 3.9e9 {
		t.Errorf("global-only floor = %.2f GB/s, want ~3.6", floor/1e9)
	}
	_ = perEndpoint
}

// Property: after any single switch failure, every endpoint pair not
// touching the dead switch still routes adaptively — the fault tolerance
// the fabric manager's sweeps maintain.
func TestSingleSwitchFailureTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		f := small(t)
		dead := rng.Intn(f.NumSwitches)
		f.FailSwitch(dead)
		for pair := 0; pair < 100; pair++ {
			src := rng.Intn(f.NumEndpoints)
			dst := rng.Intn(f.NumEndpoints)
			if src == dst || f.EndpointSwitch(src) == dead || f.EndpointSwitch(dst) == dead {
				continue
			}
			ps, err := f.AdaptivePaths(src, dst, 3, rng)
			if err != nil || len(ps.Paths) == 0 {
				t.Fatalf("switch %d down: %d->%d unroutable: %v", dead, src, dst, err)
			}
			for _, p := range ps.Paths {
				for _, id := range p {
					if !f.Links[id].Up {
						t.Fatal("adaptive path uses a dead link")
					}
				}
			}
		}
	}
}

// §4.2.2's other comparison: the dragonfly "is similar to a 2:1
// over-subscribed fat-tree" — its 57% global-to-injection taper sits at
// the same effective bisection as a fat tree provisioned with half its
// uplinks.
func TestTaperLikeTwoToOneFatTree(t *testing.T) {
	c := FrontierConfig()
	// A 2:1 oversubscribed fat tree delivers 50% of injection bandwidth
	// through its core; Frontier's dragonfly delivers 57% through its
	// global links — "similar", slightly richer.
	taper := c.Taper()
	if taper < 0.5 || taper > 0.65 {
		t.Errorf("taper = %.2f, want between a 2:1 fat tree (0.5) and full provisioning", taper)
	}
	// And unlike the fat tree, non-minimal routing halves the usable
	// share under adversarial traffic — the cost Figure 6 shows.
	adversarial := taper / 2
	if adversarial > 0.33 {
		t.Errorf("worst-case effective taper = %.2f, should fall below a 2:1 fat tree's 0.5", adversarial)
	}
}
