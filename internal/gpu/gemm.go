package gpu

import (
	"fmt"

	"frontiersim/internal/units"
)

// The CoralGemm benchmark (Fig. 3) drives hipBLAS DGEMM/SGEMM/HGEMM on one
// GCD. hipBLAS chooses a mix of vector- and matrix-core instructions from
// internal heuristics (not user-toggleable, per the paper); the net effect
// is an achieved asymptote per precision that can exceed the *vector* peak.
// These efficiencies are relative to the matrix-core peak and are
// calibrated to the paper's reported 33.8 / 24.1 / 111.2 TF/s.
var gemmMatrixEfficiency = map[Precision]float64{
	FP64: 0.7056, // 33.8 of 47.9 TF/s
	FP32: 0.5031, // 24.1 of 47.9 TF/s
	FP16: 0.5804, // 111.2 of 191.6 TF/s
}

// gemmLaunchOverhead is the fixed kernel-launch plus library-dispatch cost
// per GEMM call.
const gemmLaunchOverhead = 12 * units.Microsecond

// GemmAsymptote returns the large-N achieved GEMM rate for the precision.
func (g *GCD) GemmAsymptote(p Precision) units.Flops {
	return units.Flops(float64(g.MatrixPeak[p]) * gemmMatrixEfficiency[p])
}

// GemmTime models one square GEMM C = A·B of dimension n at precision p:
// kernel launch, streaming the three operand matrices through HBM, and the
// 2n³ floating-point work at the achieved asymptotic rate. Memory and
// compute overlap imperfectly on CDNA2; the model serialises the
// non-overlappable fraction.
func (g *GCD) GemmTime(p Precision, n int) units.Seconds {
	if n <= 0 {
		panic("gpu: GEMM dimension must be positive")
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	compute := units.Seconds(flops / float64(g.GemmAsymptote(p)))
	traffic := units.Bytes(3 * n * n * p.Bytes())
	// ~70 % of operand traffic hides under compute for blocked GEMM.
	exposed := units.Seconds(0.3 * float64(units.TimeToMove(traffic, g.HBM.Peak())))
	return gemmLaunchOverhead + compute + exposed
}

// GemmAchieved returns the achieved rate for one n×n GEMM at precision p.
func (g *GCD) GemmAchieved(p Precision, n int) units.Flops {
	flops := 2 * float64(n) * float64(n) * float64(n)
	return units.Flops(flops / float64(g.GemmTime(p, n)))
}

// GemmPoint is one point of a CoralGemm sweep.
type GemmPoint struct {
	N        int
	Achieved units.Flops
}

// GemmSweep reproduces the CoralGemm size sweep behind Figure 3.
func (g *GCD) GemmSweep(p Precision, sizes []int) []GemmPoint {
	pts := make([]GemmPoint, 0, len(sizes))
	for _, n := range sizes {
		pts = append(pts, GemmPoint{N: n, Achieved: g.GemmAchieved(p, n)})
	}
	return pts
}

// GemmComparison is one bar-pair of Figure 3: the reference peak the paper
// plots against the achieved value.
type GemmComparison struct {
	Precision Precision
	// ReferencePeak is the peak the figure compares against: the vector
	// peak for FP64/FP32 (which is why achieved "exceeds peak"), the
	// matrix peak for FP16.
	ReferencePeak units.Flops
	Achieved      units.Flops
	ExceedsPeak   bool
}

// String renders one figure row.
func (c GemmComparison) String() string {
	marker := ""
	if c.ExceedsPeak {
		marker = "  (exceeds vector peak via matrix cores)"
	}
	return fmt.Sprintf("%-5s peak %8s  achieved %8s%s", c.Precision, c.ReferencePeak, c.Achieved, marker)
}

// Figure3 runs the CoralGemm comparison at the largest size the paper's
// sweep reaches (n=16384 fits comfortably in 64 GB at all precisions).
func (g *GCD) Figure3() []GemmComparison {
	const n = 16384
	out := make([]GemmComparison, 0, 3)
	for _, p := range []Precision{FP64, FP32, FP16} {
		ref := g.VectorPeak[p]
		if p == FP16 {
			ref = g.MatrixPeak[p]
		}
		ach := g.GemmAchieved(p, n)
		out = append(out, GemmComparison{
			Precision:     p,
			ReferencePeak: ref,
			Achieved:      ach,
			ExceedsPeak:   ach > ref,
		})
	}
	return out
}
