// Package gpu models AMD's Instinct MI250X (§3.1.2): two Graphics Compute
// Dies per OAM package, each GCD an independent GPU with 110 compute
// units, vector and matrix FP pipes, four HBM2e stacks, and SDMA copy
// engines. The models reproduce Figure 3 (CoralGemm achieved vs peak),
// Table 4 (GPU STREAM), and the SDMA-vs-CU-kernel behaviour of Figure 5.
package gpu

import (
	"fmt"

	"frontiersim/internal/memory"
	"frontiersim/internal/units"
)

// Precision selects a floating-point width for compute models.
type Precision int

// Supported precisions.
const (
	FP64 Precision = iota
	FP32
	FP16
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case FP64:
		return "FP64"
	case FP32:
		return "FP32"
	case FP16:
		return "FP16"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// Bytes returns the element size of the precision.
func (p Precision) Bytes() int {
	switch p {
	case FP64:
		return 8
	case FP32:
		return 4
	default:
		return 2
	}
}

// GCD models one Graphics Compute Die. Each GCD presents itself to the
// operating system as a GPU, which is why users see eight GPUs per node.
type GCD struct {
	// ComputeUnits is the CU count (110 active per GCD; 220 per MI250X).
	ComputeUnits int
	// ClockHz is the engine clock (1.7 GHz).
	ClockHz float64
	// VectorPeak is peak vector-pipe throughput by precision.
	VectorPeak map[Precision]units.Flops
	// MatrixPeak is peak matrix-core throughput by precision.
	MatrixPeak map[Precision]units.Flops
	// HBM is the attached memory.
	HBM memory.HBM
	// SDMAEngines is the number of System DMA engines usable for peer
	// transfers. Each engine drives a single xGMI link — engines cannot
	// stripe one transfer across links (§4.2.1).
	SDMAEngines int
	// SDMAEngineRate is the per-engine ceiling (~50 GB/s).
	SDMAEngineRate units.BytesPerSecond
	// FabricPortLimit caps the aggregate remote-write bandwidth of the
	// GCD's fabric port; it is what keeps 4-link CU copies at
	// ~145 GB/s rather than the 200 GB/s wire peak.
	FabricPortLimit units.BytesPerSecond
	// FP64AtomicRate is the hardware FP64 atomic throughput added in
	// CDNA2 (atomics/second), exercised by some app kernels.
	FP64AtomicRate float64
}

// NewMI250XGCD returns one GCD of an MI250X as deployed in Frontier.
func NewMI250XGCD() *GCD {
	return &GCD{
		ComputeUnits: 110,
		ClockHz:      1.7e9,
		VectorPeak: map[Precision]units.Flops{
			FP64: 23.95 * units.TeraFlops,
			FP32: 23.95 * units.TeraFlops,
			FP16: 23.95 * units.TeraFlops,
		},
		MatrixPeak: map[Precision]units.Flops{
			FP64: 47.9 * units.TeraFlops,
			FP32: 47.9 * units.TeraFlops,
			FP16: 191.6 * units.TeraFlops,
		},
		HBM:             memory.MI250XHBM(),
		SDMAEngines:     8,
		SDMAEngineRate:  50 * units.GBps,
		FabricPortLimit: 145.5 * units.GBps,
		FP64AtomicRate:  1.7e9 * 110, // one per CU-cycle
	}
}

// MI250X is the full OAM package: two GCDs.
type MI250X struct {
	GCDs [2]*GCD
}

// NewMI250X returns a full MI250X package.
func NewMI250X() *MI250X {
	return &MI250X{GCDs: [2]*GCD{NewMI250XGCD(), NewMI250XGCD()}}
}

// PeakFP64 returns the package peak vector FP64 rate (47.9 TF/s).
func (m *MI250X) PeakFP64() units.Flops {
	return m.GCDs[0].VectorPeak[FP64] + m.GCDs[1].VectorPeak[FP64]
}

// HBMCapacity returns package HBM capacity (128 GB).
func (m *MI250X) HBMCapacity() units.Bytes {
	return m.GCDs[0].HBM.Capacity() + m.GCDs[1].HBM.Capacity()
}

// HBMPeak returns package HBM bandwidth (3.27 TB/s).
func (m *MI250X) HBMPeak() units.BytesPerSecond {
	return m.GCDs[0].HBM.Peak() + m.GCDs[1].HBM.Peak()
}

// Stream runs the GPU STREAM model (Table 4) against this GCD's HBM.
func (g *GCD) Stream(arrayBytes units.Bytes) []memory.StreamResult {
	if arrayBytes > g.HBM.Capacity()/3 {
		panic(fmt.Sprintf("gpu: STREAM needs 3 arrays of %v but GCD has %v HBM",
			arrayBytes, g.HBM.Capacity()))
	}
	return memory.RunGPUStream(g.HBM, arrayBytes)
}

// String summarises the GCD.
func (g *GCD) String() string {
	return fmt.Sprintf("MI250X GCD: %d CUs @ %.1f GHz, %s FP64 vector / %s matrix, %s HBM2e @ %s",
		g.ComputeUnits, g.ClockHz/1e9, g.VectorPeak[FP64], g.MatrixPeak[FP64],
		g.HBM.Capacity(), g.HBM.Peak())
}
