package gpu

import (
	"math"
	"testing"

	"frontiersim/internal/units"
)

func tf(f units.Flops) float64 { return float64(f) / 1e12 }

func TestGCDShape(t *testing.T) {
	g := NewMI250XGCD()
	if g.ComputeUnits != 110 {
		t.Errorf("CUs = %d, want 110", g.ComputeUnits)
	}
	if got := tf(g.VectorPeak[FP64]); math.Abs(got-23.95) > 0.01 {
		t.Errorf("FP64 vector peak = %.2f TF, want 23.95", got)
	}
	if g.HBM.Capacity() != 64*units.GiB {
		t.Errorf("HBM = %v, want 64 GiB", g.HBM.Capacity())
	}
}

func TestMI250XPackage(t *testing.T) {
	m := NewMI250X()
	if got := tf(m.PeakFP64()); math.Abs(got-47.9) > 0.01 {
		t.Errorf("package FP64 = %.1f TF, want 47.9", got)
	}
	if m.HBMCapacity() != 128*units.GiB {
		t.Errorf("package HBM = %v, want 128 GiB", m.HBMCapacity())
	}
	if got := float64(m.HBMPeak()) / 1e12; math.Abs(got-3.27) > 0.01 {
		t.Errorf("package HBM BW = %.2f TB/s, want 3.27", got)
	}
}

func TestPrecisionHelpers(t *testing.T) {
	if FP64.Bytes() != 8 || FP32.Bytes() != 4 || FP16.Bytes() != 2 {
		t.Error("precision byte sizes wrong")
	}
	if FP64.String() != "FP64" || FP16.String() != "FP16" {
		t.Error("precision names wrong")
	}
	if Precision(9).String() != "Precision(9)" {
		t.Error("unknown precision formatting wrong")
	}
}

// Figure 3: achieved GEMM values per precision.
func TestGemmFigure3Values(t *testing.T) {
	g := NewMI250XGCD()
	want := map[Precision]float64{FP64: 33.8, FP32: 24.1, FP16: 111.2}
	for p, w := range want {
		got := tf(g.GemmAchieved(p, 16384))
		if math.Abs(got-w)/w > 0.02 {
			t.Errorf("%s GEMM achieved = %.1f TF, want %.1f ±2%%", p, got, w)
		}
	}
}

func TestGemmExceedsVectorPeak(t *testing.T) {
	// The paper's headline observation: FP64 and FP32 exceed the GCD's
	// vector peak because hipBLAS uses matrix cores.
	rows := NewMI250XGCD().Figure3()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		switch r.Precision {
		case FP64, FP32:
			if !r.ExceedsPeak {
				t.Errorf("%s should exceed vector peak", r.Precision)
			}
		case FP16:
			if r.ExceedsPeak {
				t.Error("FP16 achieved should not exceed matrix peak")
			}
		}
		if r.String() == "" {
			t.Error("empty comparison formatting")
		}
	}
}

func TestGemmRampMonotone(t *testing.T) {
	g := NewMI250XGCD()
	prev := units.Flops(0)
	for _, n := range []int{256, 512, 1024, 2048, 4096, 8192, 16384} {
		got := g.GemmAchieved(FP64, n)
		if got <= prev {
			t.Errorf("GEMM rate not increasing at n=%d: %v <= %v", n, got, prev)
		}
		prev = got
	}
	// Small GEMMs must be far below the asymptote (launch-bound).
	if small := g.GemmAchieved(FP64, 256); float64(small) > 0.5*float64(g.GemmAsymptote(FP64)) {
		t.Errorf("n=256 achieved %v should be well below asymptote %v", small, g.GemmAsymptote(FP64))
	}
}

func TestGemmSweep(t *testing.T) {
	g := NewMI250XGCD()
	pts := g.GemmSweep(FP16, []int{1024, 4096, 16384})
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	if pts[0].N != 1024 || pts[2].N != 16384 {
		t.Error("sweep sizes not preserved")
	}
}

func TestGemmInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=0 should panic")
		}
	}()
	NewMI250XGCD().GemmTime(FP64, 0)
}

func TestGPUStreamPanicsWhenOverCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized STREAM arrays should panic")
		}
	}()
	NewMI250XGCD().Stream(40 * units.GB)
}

func TestGPUStreamRuns(t *testing.T) {
	rows := NewMI250XGCD().Stream(8 * units.GB)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
}

func TestStringers(t *testing.T) {
	if NewMI250XGCD().String() == "" {
		t.Error("GCD String empty")
	}
}
