package gpu

import (
	"fmt"
	"math"

	"frontiersim/internal/units"
)

// Kernel is one GPU kernel characterised for the roofline model: its
// floating-point work, the HBM traffic it moves, and which pipe it uses.
type Kernel struct {
	Name string
	// Flops is total floating-point operations per launch.
	Flops float64
	// Bytes is HBM traffic per launch.
	Bytes units.Bytes
	// Precision selects the pipe peak.
	Precision Precision
	// UsesMatrixCores selects the matrix pipe over the vector pipe.
	UsesMatrixCores bool
	// Efficiency derates the chosen compute peak (kernel quality).
	Efficiency float64
}

// Intensity is the kernel's arithmetic intensity in FLOP/byte.
func (k Kernel) Intensity() float64 {
	if k.Bytes <= 0 {
		return math.Inf(1)
	}
	return k.Flops / float64(k.Bytes)
}

// RidgeIntensity is the arithmetic intensity at which a GCD moves from
// bandwidth-bound to compute-bound for the given pipe — the "ridge
// point" of the roofline (~14.6 FLOP/B for FP64 vector on the MI250X).
func (g *GCD) RidgeIntensity(p Precision, matrix bool) float64 {
	peak := g.VectorPeak[p]
	if matrix {
		peak = g.MatrixPeak[p]
	}
	return float64(peak) / float64(g.HBM.Peak())
}

// KernelTime returns the roofline execution time of one launch: the
// slower of the compute and memory phases, plus the launch overhead.
func (g *GCD) KernelTime(k Kernel) (units.Seconds, error) {
	if k.Flops < 0 || k.Bytes < 0 {
		return 0, fmt.Errorf("gpu: kernel %q has negative work", k.Name)
	}
	eff := k.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	peak := g.VectorPeak[k.Precision]
	if k.UsesMatrixCores {
		peak = g.MatrixPeak[k.Precision]
	}
	compute := k.Flops / (float64(peak) * eff)
	mem := float64(k.Bytes) / float64(g.HBM.Peak())
	return gemmLaunchOverhead + units.Seconds(math.Max(compute, mem)), nil
}

// KernelRate returns the achieved FLOP rate of one launch.
func (g *GCD) KernelRate(k Kernel) (units.Flops, error) {
	t, err := g.KernelTime(k)
	if err != nil {
		return 0, err
	}
	if t <= 0 {
		return 0, nil
	}
	return units.Flops(k.Flops / float64(t)), nil
}

// ComputeBound reports whether the kernel sits right of the ridge point.
func (g *GCD) ComputeBound(k Kernel) bool {
	return k.Intensity() > g.RidgeIntensity(k.Precision, k.UsesMatrixCores)
}

// CharacteristicKernels returns reference kernels spanning the roofline,
// used by tests and the quickstart example: a DGEMM tile (compute
// bound), a STREAM triad (bandwidth bound), and a 7-point stencil.
func CharacteristicKernels() []Kernel {
	const n = 8192
	return []Kernel{
		{
			Name:            "dgemm-tile",
			Flops:           2 * n * n * n,
			Bytes:           3 * n * n * 8,
			Precision:       FP64,
			UsesMatrixCores: true,
			Efficiency:      0.71,
		},
		{
			Name:      "stream-triad",
			Flops:     2 * 256e6,
			Bytes:     3 * 256e6 * 8,
			Precision: FP64,
		},
		{
			Name:      "stencil-7pt",
			Flops:     8 * 512e6,
			Bytes:     2 * 512e6 * 8,
			Precision: FP64,
		},
	}
}

// AtomicThroughput models the hardware FP64 atomic support added in
// CDNA2 (§3.1.2): contiguous non-conflicting atomics run at near the CU
// issue rate, while pre-CDNA2 software fallbacks (compare-and-swap
// loops) cost ~8x. conflictFraction is the share of updates hitting
// contended addresses, each serialising ~4 deep.
func (g *GCD) AtomicThroughput(hardware bool, conflictFraction float64) float64 {
	if conflictFraction < 0 {
		conflictFraction = 0
	}
	if conflictFraction > 1 {
		conflictFraction = 1
	}
	base := g.FP64AtomicRate
	if !hardware {
		base /= 8 // CAS-loop emulation
	}
	// Conflict-free updates run at full rate; contended ones serialise
	// ~4 deep but still make progress.
	return base * ((1 - conflictFraction) + conflictFraction/4)
}
