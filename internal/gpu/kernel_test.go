package gpu

import (
	"math"
	"testing"

	"frontiersim/internal/units"
)

func TestRidgeIntensity(t *testing.T) {
	g := NewMI250XGCD()
	ridge := g.RidgeIntensity(FP64, false)
	// 23.95 TF / 1.635 TB/s ≈ 14.6 FLOP/B.
	if math.Abs(ridge-14.65) > 0.2 {
		t.Errorf("FP64 vector ridge = %.1f, want ~14.6", ridge)
	}
	if g.RidgeIntensity(FP64, true) <= ridge {
		t.Error("matrix ridge must sit right of the vector ridge")
	}
}

func TestKernelClassification(t *testing.T) {
	g := NewMI250XGCD()
	ks := CharacteristicKernels()
	if len(ks) != 3 {
		t.Fatal("want 3 characteristic kernels")
	}
	var gemm, triad, stencil = ks[0], ks[1], ks[2]
	if !g.ComputeBound(gemm) {
		t.Error("DGEMM tile must be compute bound")
	}
	if g.ComputeBound(triad) {
		t.Error("STREAM triad must be bandwidth bound")
	}
	if g.ComputeBound(stencil) {
		t.Error("7-point stencil at 0.5 FLOP/B must be bandwidth bound")
	}
}

func TestKernelTimes(t *testing.T) {
	g := NewMI250XGCD()
	triad := CharacteristicKernels()[1]
	rate, err := g.KernelRate(triad)
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth bound: achieved = intensity x HBM peak = 1/12 x 1.635e12
	// FLOP/s (launch overhead is negligible at this size).
	want := triad.Intensity() * float64(g.HBM.Peak())
	if math.Abs(float64(rate)-want)/want > 0.02 {
		t.Errorf("triad rate = %.3g, want %.3g", float64(rate), want)
	}
	gemm := CharacteristicKernels()[0]
	gr, err := g.KernelRate(gemm)
	if err != nil {
		t.Fatal(err)
	}
	// Compute bound at 71% of the matrix peak: ~34 TF/s, Fig. 3's number.
	if tf := float64(gr) / 1e12; math.Abs(tf-34) > 1.5 {
		t.Errorf("gemm rate = %.1f TF/s, want ~34", tf)
	}
}

func TestKernelEdgeCases(t *testing.T) {
	g := NewMI250XGCD()
	if _, err := g.KernelTime(Kernel{Name: "bad", Flops: -1}); err == nil {
		t.Error("negative work should error")
	}
	// Zero-byte kernel has infinite intensity: compute bound by
	// definition.
	k := Kernel{Name: "regs-only", Flops: 1e9, Precision: FP32}
	if !g.ComputeBound(k) {
		t.Error("zero-traffic kernel is compute bound")
	}
	if _, err := g.KernelRate(k); err != nil {
		t.Error(err)
	}
	// Out-of-range efficiency falls back to 1.
	k2 := Kernel{Name: "eff", Flops: 1e12, Bytes: units.GB, Precision: FP64, Efficiency: 7}
	d1, _ := g.KernelTime(k2)
	k2.Efficiency = 1
	d2, _ := g.KernelTime(k2)
	if d1 != d2 {
		t.Error("invalid efficiency should behave as 1.0")
	}
}

// §3.1.2: "Support for fast hardware-based FP64 atomic operations was
// also added" in the MI250X generation.
func TestFP64Atomics(t *testing.T) {
	g := NewMI250XGCD()
	hw := g.AtomicThroughput(true, 0)
	sw := g.AtomicThroughput(false, 0)
	if hw/sw < 7 || hw/sw > 9 {
		t.Errorf("hardware atomics advantage = %.1fx, want ~8x", hw/sw)
	}
	// Conflicts serialise.
	free := g.AtomicThroughput(true, 0)
	contended := g.AtomicThroughput(true, 0.5)
	if contended >= free {
		t.Error("contention must reduce atomic throughput")
	}
	// Clamping.
	if g.AtomicThroughput(true, -1) != free {
		t.Error("negative conflict fraction should clamp to 0")
	}
	if g.AtomicThroughput(true, 2) <= 0 {
		t.Error("full conflict still makes progress")
	}
}
