// Package harness runs batches of independent tasks on a bounded worker
// pool without giving up determinism: every task draws its randomness
// from a seed derived solely from the root seed and the task id
// (SplitMix64, see DeriveSeed), so the results — and anything rendered
// from them — are byte-identical whether the batch runs on one worker or
// sixteen. The experiments registry, the frontier-sim CLI and the root
// bench suite all execute through it.
package harness

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Task is one independent unit of work. Run receives the batch context
// (honour it in long loops) and the task's derived seed.
type Task[T any] struct {
	ID  string
	Run func(ctx context.Context, seed int64) (T, error)
	// Cost is an optional relative wall-time hint. The pool dispatches
	// expensive tasks first (longest-processing-time order), which
	// tightens the parallel makespan; it never affects results or the
	// order results are emitted in.
	Cost float64
}

// Result is one task's outcome. Index is the task's position in the
// input slice; results are always returned (and emitted) in that order.
type Result[T any] struct {
	ID       string
	Index    int
	Value    T
	Err      error
	Seed     int64
	Duration time.Duration
	// Skipped marks tasks that never ran because the batch was
	// cancelled (context or fail-fast) before they were dispatched.
	Skipped bool
}

// Config tunes a batch run.
type Config struct {
	// Jobs bounds worker concurrency; <=0 means runtime.GOMAXPROCS(0).
	Jobs int
	// FailFast cancels the batch on the first task error. Remaining
	// tasks are reported as Skipped. When false, every task runs and
	// errors are collected.
	FailFast bool
	// Timeout bounds the whole batch; 0 means none.
	Timeout time.Duration
	// RootSeed is the seed every task seed is derived from.
	RootSeed int64
}

// Run executes tasks on a bounded pool and returns one Result per task,
// in input order. If emit is non-nil it is called once per task, also in
// input order, as soon as the task and all its predecessors have
// finished — so a consumer can stream ordered output while later tasks
// are still running.
//
// The returned error is nil only if every task ran and succeeded: in
// FailFast mode it is the first failure, otherwise it joins every task
// error (and the context error if the batch was cut short).
func Run[T any](ctx context.Context, cfg Config, tasks []Task[T], emit func(Result[T])) ([]Result[T], error) {
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(tasks) {
		jobs = len(tasks)
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result[T], len(tasks))
	done := make([]chan struct{}, len(tasks))
	for i := range done {
		done[i] = make(chan struct{})
	}

	// Dispatch in longest-first order so one expensive task at the tail
	// of the registry cannot serialise the whole batch.
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Cost > tasks[order[b]].Cost
	})

	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	next := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t := tasks[i]
				res := Result[T]{ID: t.ID, Index: i, Seed: DeriveSeed(cfg.RootSeed, t.ID)}
				if err := ctx.Err(); err != nil {
					res.Err = err
					res.Skipped = true
				} else {
					start := time.Now()
					res.Value, res.Err = t.Run(ctx, res.Seed)
					res.Duration = time.Since(start)
				}
				if res.Err != nil && !res.Skipped {
					errOnce.Do(func() {
						firstErr = res.Err
						if cfg.FailFast {
							cancel()
						}
					})
				}
				results[i] = res
				close(done[i])
			}
		}()
	}
	go func() {
		// Feed every index even after cancellation: workers mark
		// undispatched tasks Skipped, which keeps the done channels —
		// and therefore the ordered emitter — deadlock-free.
		for _, i := range order {
			next <- i
		}
		close(next)
	}()

	for i := range tasks {
		<-done[i]
		if emit != nil {
			emit(results[i])
		}
	}
	wg.Wait()

	if cfg.FailFast && firstErr != nil {
		return results, firstErr
	}
	var errs []error
	for _, r := range results {
		if r.Err != nil && !r.Skipped {
			errs = append(errs, r.Err)
		}
	}
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return results, errors.Join(errs...)
}

// Summary aggregates a batch's metrics.
type Summary struct {
	Tasks     int
	Failed    int
	Skipped   int
	Wall      time.Duration // sum of per-task wall time (serial-equivalent work)
	Longest   time.Duration
	LongestID string
}

// Summarize folds a result slice into batch metrics.
func Summarize[T any](results []Result[T]) Summary {
	var s Summary
	s.Tasks = len(results)
	for _, r := range results {
		switch {
		case r.Skipped:
			s.Skipped++
		case r.Err != nil:
			s.Failed++
		}
		s.Wall += r.Duration
		if r.Duration > s.Longest {
			s.Longest = r.Duration
			s.LongestID = r.ID
		}
	}
	return s
}
