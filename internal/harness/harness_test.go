package harness

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func numberedTasks(n int) []Task[int] {
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			ID: fmt.Sprintf("task%02d", i),
			Run: func(ctx context.Context, seed int64) (int, error) {
				return i * int(seed%97), nil
			},
		}
	}
	return tasks
}

// Results and emission order must match input order at any worker count,
// and the values must be identical across worker counts.
func TestOrderedDeterministicAcrossJobs(t *testing.T) {
	tasks := numberedTasks(20)
	var baseline []Result[int]
	for _, jobs := range []int{1, 2, 8, 32} {
		var emitted []string
		results, err := Run(context.Background(), Config{Jobs: jobs, RootSeed: 42}, tasks,
			func(r Result[int]) { emitted = append(emitted, r.ID) })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, r := range results {
			if r.Index != i || r.ID != tasks[i].ID {
				t.Fatalf("jobs=%d: result %d out of order: %+v", jobs, i, r)
			}
			if emitted[i] != tasks[i].ID {
				t.Fatalf("jobs=%d: emission %d out of order: %s", jobs, i, emitted[i])
			}
		}
		if baseline == nil {
			baseline = results
			continue
		}
		for i := range results {
			if results[i].Value != baseline[i].Value || results[i].Seed != baseline[i].Seed {
				t.Errorf("jobs=%d: task %s value/seed diverged from serial", jobs, results[i].ID)
			}
		}
	}
}

// Cost hints change dispatch order but never results or emission order.
func TestCostHintsPreserveOrder(t *testing.T) {
	tasks := numberedTasks(10)
	for i := range tasks {
		tasks[i].Cost = float64(10 - i)
	}
	var emitted []int
	results, err := Run(context.Background(), Config{Jobs: 4, RootSeed: 7}, tasks,
		func(r Result[int]) { emitted = append(emitted, r.Index) })
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].Index != i || emitted[i] != i {
			t.Fatalf("emission order broken at %d", i)
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var ran atomic.Int32
	tasks := make([]Task[int], 16)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			ID: fmt.Sprintf("block%02d", i),
			Run: func(ctx context.Context, seed int64) (int, error) {
				ran.Add(1)
				if i == 0 {
					close(started)
				}
				<-ctx.Done()
				return 0, ctx.Err()
			},
		}
	}
	go func() {
		<-started
		cancel()
	}()
	results, err := Run(ctx, Config{Jobs: 2}, tasks, nil)
	if err == nil {
		t.Fatal("cancelled batch must report an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := int(ran.Load()); got >= len(tasks) {
		t.Errorf("all %d tasks ran despite cancellation", got)
	}
	var skipped int
	for _, r := range results {
		if r.Skipped {
			skipped++
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("%s skipped without context error", r.ID)
			}
		}
	}
	if skipped == 0 {
		t.Error("cancellation should skip undispatched tasks")
	}
}

func TestTimeout(t *testing.T) {
	tasks := []Task[int]{{
		ID: "sleeper",
		Run: func(ctx context.Context, seed int64) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(10 * time.Second):
				return 1, nil
			}
		},
	}}
	start := time.Now()
	_, err := Run(context.Background(), Config{Jobs: 1, Timeout: 20 * time.Millisecond}, tasks, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout did not cut the batch short")
	}
}

func TestFailFastSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	tasks := make([]Task[int], 12)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			ID:   fmt.Sprintf("t%02d", i),
			Cost: float64(len(tasks) - i), // keep dispatch in input order
			Run: func(ctx context.Context, seed int64) (int, error) {
				ran.Add(1)
				if i == 0 {
					return 0, boom
				}
				// Give the pool a moment to observe the cancellation.
				select {
				case <-ctx.Done():
				case <-time.After(50 * time.Millisecond):
				}
				return i, nil
			},
		}
	}
	results, err := Run(context.Background(), Config{Jobs: 1, FailFast: true}, tasks, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if int(ran.Load()) >= len(tasks) {
		t.Error("fail-fast ran every task")
	}
	if !results[len(results)-1].Skipped {
		t.Error("tail task should be skipped after fail-fast")
	}
}

func TestCollectAllGathersErrors(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	tasks := []Task[int]{
		{ID: "a", Run: func(context.Context, int64) (int, error) { return 0, e1 }},
		{ID: "b", Run: func(context.Context, int64) (int, error) { return 1, nil }},
		{ID: "c", Run: func(context.Context, int64) (int, error) { return 0, e2 }},
	}
	results, err := Run(context.Background(), Config{Jobs: 2}, tasks, nil)
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("collect-all error %v should join both failures", err)
	}
	if results[1].Err != nil || results[1].Value != 1 {
		t.Error("healthy task damaged by sibling failures")
	}
}

func TestSummarize(t *testing.T) {
	results := []Result[int]{
		{ID: "a", Duration: 3 * time.Second},
		{ID: "b", Duration: 5 * time.Second},
		{ID: "c", Err: errors.New("x"), Duration: time.Second},
		{ID: "d", Skipped: true, Err: context.Canceled},
	}
	s := Summarize(results)
	if s.Tasks != 4 || s.Failed != 1 || s.Skipped != 1 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.Longest != 5*time.Second || s.LongestID != "b" {
		t.Errorf("longest wrong: %+v", s)
	}
	if s.Wall != 9*time.Second {
		t.Errorf("wall = %v, want 9s", s.Wall)
	}
}

func TestEmptyBatch(t *testing.T) {
	results, err := Run[int](context.Background(), Config{}, nil, nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: results=%v err=%v", results, err)
	}
}
