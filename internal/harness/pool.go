package harness

import (
	"context"
	"sync"
	"time"
)

// Pool is a long-lived bounded worker pool for single-job submissions —
// the campaign server's counterpart to the batch Run API. Jobs queue in
// submission order and at most Workers of them execute concurrently;
// each submission returns a Handle that reports progress events and the
// final result. The pool itself holds no randomness: callers derive
// seeds (DeriveSeed) before submitting, keeping results pure functions
// of their inputs.
type Pool struct {
	sem chan struct{}
}

// NewPool builds a pool executing at most workers jobs concurrently
// (workers <= 0 means 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Finished reports whether the state is terminal.
func (s JobState) Finished() bool { return s == JobDone || s == JobFailed }

// ProgressEvent is one observed step of a job's life: the lifecycle
// transitions themselves plus any messages the job's Run function
// reports through the callback it is handed.
type ProgressEvent struct {
	Time    time.Time `json:"time"`
	State   JobState  `json:"state"`
	Message string    `json:"message,omitempty"`
}

// Handle tracks one submitted job. All methods are safe for concurrent
// use.
type Handle[T any] struct {
	id   string
	done chan struct{}

	mu     sync.Mutex
	wake   *sync.Cond // broadcast on every event append
	state  JobState
	events []ProgressEvent
	value  T
	err    error
	start  time.Time
	dur    time.Duration
}

// Submit queues fn on the pool and returns immediately with its handle.
// fn receives the submission context and a progress callback it may call
// to report intermediate stages; the callback is safe to call from any
// goroutine and becomes a no-op once the job has finished. If ctx is
// cancelled while the job is still queued, the job fails with ctx.Err()
// without running.
func Submit[T any](p *Pool, ctx context.Context, id string, fn func(ctx context.Context, progress func(string)) (T, error)) *Handle[T] {
	h := &Handle[T]{id: id, done: make(chan struct{}), state: JobQueued}
	h.wake = sync.NewCond(&h.mu)
	h.append(ProgressEvent{Time: time.Now(), State: JobQueued})
	go func() {
		select {
		case p.sem <- struct{}{}:
			defer func() { <-p.sem }()
		case <-ctx.Done():
			h.finish(*new(T), ctx.Err())
			return
		}
		h.mu.Lock()
		h.state = JobRunning
		h.start = time.Now()
		h.mu.Unlock()
		h.append(ProgressEvent{Time: time.Now(), State: JobRunning})
		v, err := fn(ctx, func(msg string) {
			h.append(ProgressEvent{Time: time.Now(), State: JobRunning, Message: msg})
		})
		h.finish(v, err)
	}()
	return h
}

// append records ev unless the job has already finished.
func (h *Handle[T]) append(ev ProgressEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state.Finished() {
		return
	}
	h.events = append(h.events, ev)
	h.wake.Broadcast()
}

func (h *Handle[T]) finish(v T, err error) {
	h.mu.Lock()
	h.value, h.err = v, err
	if !h.start.IsZero() {
		h.dur = time.Since(h.start)
	}
	if err != nil {
		h.state = JobFailed
	} else {
		h.state = JobDone
	}
	final := ProgressEvent{Time: time.Now(), State: h.state}
	if err != nil {
		final.Message = err.Error()
	}
	h.events = append(h.events, final)
	h.wake.Broadcast()
	h.mu.Unlock()
	close(h.done)
}

// ID returns the submission id.
func (h *Handle[T]) ID() string { return h.id }

// Done is closed when the job has finished (or failed, or was cancelled
// while queued).
func (h *Handle[T]) Done() <-chan struct{} { return h.done }

// State returns the job's current lifecycle phase.
func (h *Handle[T]) State() JobState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Result blocks until the job finishes and returns its outcome.
func (h *Handle[T]) Result() (T, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.value, h.err
}

// RunDuration returns how long the job's Run function has been running
// (zero while queued; final once done).
func (h *Handle[T]) RunDuration() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == JobRunning {
		return time.Since(h.start)
	}
	return h.dur
}

// Events returns a copy of every progress event recorded so far.
func (h *Handle[T]) Events() []ProgressEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]ProgressEvent(nil), h.events...)
}

// Next is the streaming cursor: it blocks until events beyond cursor
// exist or the job has finished, then returns the new events, the
// advanced cursor, and whether the job is finished. A streaming consumer
// loops `evs, cur, fin := h.Next(cur)` from cur = 0 until fin; a
// finished job returns immediately, so late consumers still replay the
// full history.
func (h *Handle[T]) Next(cursor int) ([]ProgressEvent, int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	for cursor >= len(h.events) && !h.state.Finished() {
		h.wake.Wait()
	}
	evs := append([]ProgressEvent(nil), h.events[min(cursor, len(h.events)):]...)
	return evs, len(h.events), h.state.Finished()
}
