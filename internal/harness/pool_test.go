package harness

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolSubmitResult(t *testing.T) {
	p := NewPool(2)
	h := Submit(p, context.Background(), "job-1", func(_ context.Context, progress func(string)) (int, error) {
		progress("halfway")
		return 7, nil
	})
	v, err := h.Result()
	if err != nil || v != 7 {
		t.Fatalf("Result = %d, %v; want 7, nil", v, err)
	}
	if st := h.State(); st != JobDone {
		t.Fatalf("state = %v, want done", st)
	}
	var states []JobState
	var msgs []string
	for _, ev := range h.Events() {
		states = append(states, ev.State)
		if ev.Message != "" {
			msgs = append(msgs, ev.Message)
		}
	}
	want := []JobState{JobQueued, JobRunning, JobRunning, JobDone}
	if len(states) != len(want) {
		t.Fatalf("events = %v, want states %v", h.Events(), want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("event %d state = %v, want %v", i, states[i], want[i])
		}
	}
	if len(msgs) != 1 || msgs[0] != "halfway" {
		t.Fatalf("progress messages = %v, want [halfway]", msgs)
	}
}

func TestPoolError(t *testing.T) {
	p := NewPool(1)
	boom := errors.New("boom")
	h := Submit(p, context.Background(), "bad", func(context.Context, func(string)) (string, error) {
		return "", boom
	})
	if _, err := h.Result(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := h.State(); st != JobFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	evs := h.Events()
	last := evs[len(evs)-1]
	if last.State != JobFailed || last.Message != "boom" {
		t.Fatalf("final event = %+v, want failed/boom", last)
	}
}

// TestPoolBound pins the concurrency bound: with 2 workers and 6 jobs
// that all block, at most 2 run at once.
func TestPoolBound(t *testing.T) {
	p := NewPool(2)
	var running, peak atomic.Int64
	release := make(chan struct{})
	var handles []*Handle[struct{}]
	for i := 0; i < 6; i++ {
		h := Submit(p, context.Background(), "job", func(context.Context, func(string)) (struct{}, error) {
			now := running.Add(1)
			for {
				old := peak.Load()
				if now <= old || peak.CompareAndSwap(old, now) {
					break
				}
			}
			<-release
			running.Add(-1)
			return struct{}{}, nil
		})
		handles = append(handles, h)
	}
	// Give the pool a moment to admit what it will admit, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	for _, h := range handles {
		if _, err := h.Result(); err != nil {
			t.Fatal(err)
		}
	}
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d, want <= 2", got)
	}
}

func TestPoolQueuedCancellation(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	holding := make(chan struct{})
	blocker := Submit(p, context.Background(), "blocker", func(context.Context, func(string)) (struct{}, error) {
		close(holding)
		<-release
		return struct{}{}, nil
	})
	<-holding // the blocker owns the pool's only slot before we queue
	ctx, cancel := context.WithCancel(context.Background())
	queued := Submit(p, ctx, "queued", func(context.Context, func(string)) (struct{}, error) {
		t.Error("cancelled queued job must not run")
		return struct{}{}, nil
	})
	cancel()
	if _, err := queued.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued err = %v, want context.Canceled", err)
	}
	close(release)
	if _, err := blocker.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolNextStreaming walks the event cursor like the SSE endpoint
// does: a late consumer replays history, a live one blocks for new
// events, and the stream terminates when the job finishes.
func TestPoolNextStreaming(t *testing.T) {
	p := NewPool(1)
	step := make(chan struct{})
	h := Submit(p, context.Background(), "streamer", func(_ context.Context, progress func(string)) (int, error) {
		progress("stage 1")
		<-step
		progress("stage 2")
		return 1, nil
	})

	var got []ProgressEvent
	cursor := 0
	// Drain until we see stage 1.
	for {
		evs, next, fin := h.Next(cursor)
		got = append(got, evs...)
		cursor = next
		if fin {
			t.Fatal("job finished before stage 2 was released")
		}
		if len(got) > 0 && got[len(got)-1].Message == "stage 1" {
			break
		}
	}
	close(step)
	for {
		evs, next, fin := h.Next(cursor)
		got = append(got, evs...)
		cursor = next
		if fin {
			break
		}
	}
	var msgs []string
	for _, ev := range got {
		if ev.Message != "" {
			msgs = append(msgs, ev.Message)
		}
	}
	if len(msgs) != 2 || msgs[0] != "stage 1" || msgs[1] != "stage 2" {
		t.Fatalf("streamed messages = %v, want [stage 1, stage 2]", msgs)
	}
	if got[len(got)-1].State != JobDone {
		t.Fatalf("last event = %+v, want done", got[len(got)-1])
	}

	// A consumer arriving after completion replays everything at once.
	evs, _, fin := h.Next(0)
	if !fin || len(evs) != len(got) {
		t.Fatalf("late replay: %d events (finished=%v), want %d", len(evs), fin, len(got))
	}
}

func TestPoolProgressAfterFinishIsNoop(t *testing.T) {
	p := NewPool(1)
	leak := make(chan func(string), 1)
	h := Submit(p, context.Background(), "leaky", func(_ context.Context, progress func(string)) (int, error) {
		leak <- progress
		return 0, nil
	})
	if _, err := h.Result(); err != nil {
		t.Fatal(err)
	}
	progress := <-leak
	before := len(h.Events())
	progress("too late")
	if after := len(h.Events()); after != before {
		t.Fatalf("progress after finish recorded an event (%d -> %d)", before, after)
	}
}
