package harness

import "hash/fnv"

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014): a
// bijective avalanche over 64 bits. It turns structured inputs (small
// root seeds, similar experiment ids) into statistically independent
// streams, which is what makes per-task seed derivation safe.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed maps a root seed and a task id to the task's private seed.
// The derivation depends only on (root, id) — never on worker count or
// scheduling order — so a parallel run and a serial run of the same task
// set are byte-identical, and adding or removing tasks does not disturb
// the seeds of the others.
func DeriveSeed(root int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(splitmix64(uint64(root) ^ h.Sum64()))
}
