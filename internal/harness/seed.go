package harness

import "frontiersim/internal/rng"

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014): a
// bijective avalanche over 64 bits. It turns structured inputs (small
// root seeds, similar experiment ids) into statistically independent
// streams, which is what makes per-task seed derivation safe. The
// implementation lives in internal/rng, shared with every stream-
// derivation site in the simulator.
func splitmix64(x uint64) uint64 { return rng.Mix64(x) }

// DeriveSeed maps a root seed and a task id to the task's private seed.
// The derivation depends only on (root, id) — never on worker count or
// scheduling order — so a parallel run and a serial run of the same task
// set are byte-identical, and adding or removing tasks does not disturb
// the seeds of the others. It is rng.Derive: FNV-1a over the id folded
// into the root, then one SplitMix64 avalanche.
func DeriveSeed(root int64, id string) int64 { return rng.Derive(root, id) }
