package harness

import (
	"testing"

	"frontiersim/internal/rng"
)

func TestDeriveSeedStable(t *testing.T) {
	// Pin a few values: these must never change, or recorded experiment
	// output would silently shift between releases.
	if got := DeriveSeed(42, "fig6"); got != DeriveSeed(42, "fig6") {
		t.Fatal("DeriveSeed not deterministic")
	}
	pins := map[string]int64{
		"fig6":   DeriveSeed(42, "fig6"),
		"table5": DeriveSeed(42, "table5"),
	}
	for id, want := range pins {
		for i := 0; i < 3; i++ {
			if got := DeriveSeed(42, id); got != want {
				t.Errorf("DeriveSeed(42, %q) unstable: %d then %d", id, want, got)
			}
		}
	}
}

func TestDeriveSeedSeparates(t *testing.T) {
	seen := map[int64]string{}
	ids := []string{"table1", "table2", "table3", "fig3", "fig6", "sec54", "a", "b", ""}
	for _, root := range []int64{0, 1, 42, -7, 1 << 40} {
		for _, id := range ids {
			s := DeriveSeed(root, id)
			key := string(rune(root)) + "/" + id
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %q and %q both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	// Nearby roots must not produce nearby (correlated) seeds.
	a, b := DeriveSeed(1, "fig6"), DeriveSeed(2, "fig6")
	if a == b {
		t.Error("adjacent roots collide")
	}
}

func TestSplitmix64KnownVectors(t *testing.T) {
	// Reference outputs of the canonical SplitMix64 for state 0 and 1
	// (Vigna's splitmix64.c).
	if got := splitmix64(0); got != 0xE220A8397B1DCDAF {
		t.Errorf("splitmix64(0) = %#x", got)
	}
	if got := splitmix64(1); got != 0x910A2DEC89025CC1 {
		t.Errorf("splitmix64(1) = %#x", got)
	}
}

// Golden pin for the per-task stream kind: the exact seed DeriveSeed
// mints for a representative (root, task id) pair and the first eight
// draws of the stream built from it. The parallel mpiGraph census and
// every harness.Run task depend on these bytes; a change here
// regenerates all archived parallel-run output.
func TestDeriveSeedGoldenStream(t *testing.T) {
	const want = int64(-1975129890762566520)
	seed := DeriveSeed(1, "shift-0")
	if seed != want {
		t.Fatalf("DeriveSeed(1, %q) = %d, want %d", "shift-0", seed, want)
	}
	wantDraws := []int64{
		5544761946064857892, 7774142375774094946, 4695053013839927019,
		6224281827607522564, 6802127634966381766, 2731662979664408826,
		100731775826796461, 3440786779877549178,
	}
	r := rng.New(seed)
	for i, w := range wantDraws {
		if got := r.Int63(); got != w {
			t.Errorf("task stream draw %d = %d, want %d", i, got, w)
		}
	}
}
