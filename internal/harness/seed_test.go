package harness

import "testing"

func TestDeriveSeedStable(t *testing.T) {
	// Pin a few values: these must never change, or recorded experiment
	// output would silently shift between releases.
	if got := DeriveSeed(42, "fig6"); got != DeriveSeed(42, "fig6") {
		t.Fatal("DeriveSeed not deterministic")
	}
	pins := map[string]int64{
		"fig6":   DeriveSeed(42, "fig6"),
		"table5": DeriveSeed(42, "table5"),
	}
	for id, want := range pins {
		for i := 0; i < 3; i++ {
			if got := DeriveSeed(42, id); got != want {
				t.Errorf("DeriveSeed(42, %q) unstable: %d then %d", id, want, got)
			}
		}
	}
}

func TestDeriveSeedSeparates(t *testing.T) {
	seen := map[int64]string{}
	ids := []string{"table1", "table2", "table3", "fig3", "fig6", "sec54", "a", "b", ""}
	for _, root := range []int64{0, 1, 42, -7, 1 << 40} {
		for _, id := range ids {
			s := DeriveSeed(root, id)
			key := string(rune(root)) + "/" + id
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %q and %q both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	// Nearby roots must not produce nearby (correlated) seeds.
	a, b := DeriveSeed(1, "fig6"), DeriveSeed(2, "fig6")
	if a == b {
		t.Error("adjacent roots collide")
	}
}

func TestSplitmix64KnownVectors(t *testing.T) {
	// Reference outputs of the canonical SplitMix64 for state 0 and 1
	// (Vigna's splitmix64.c).
	if got := splitmix64(0); got != 0xE220A8397B1DCDAF {
		t.Errorf("splitmix64(0) = %#x", got)
	}
	if got := splitmix64(1); got != 0x910A2DEC89025CC1 {
		t.Errorf("splitmix64(1) = %#x", got)
	}
}
