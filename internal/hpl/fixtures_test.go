package hpl

import "frontiersim/internal/units"

// FrontierSpec is a test fixture: production code derives the machine
// spec from internal/machine (which imports this package). The golden
// test in internal/machine pins the derived spec to these values.
func FrontierSpec() MachineSpec {
	return MachineSpec{
		Nodes:             9472,
		GCDsPerNode:       8,
		VectorFP64PerGCD:  23.95 * units.TeraFlops,
		HBMPerGCD:         1.635 * units.TBps,
		HBMCapacityPerGCD: 64 * units.GiB,
	}
}
