// Package hpl models the TOP500 benchmarks that frame the paper's §5:
// HPL (dense LU, compute-bound — 1.102 EF on Frontier's June 2022 debut)
// and HPCG (sparse multigrid, bandwidth-bound — the metric the 2008
// report's authors revisit in their follow-up paper [38]).
package hpl

import (
	"math"

	"frontiersim/internal/units"
)

// MachineSpec is the minimal description the benchmark models need.
type MachineSpec struct {
	Nodes int
	// GCDsPerNode is the GPU (device) count per node.
	GCDsPerNode int
	// VectorFP64PerGCD is per-device peak FP64.
	VectorFP64PerGCD units.Flops
	// HBMPerGCD is per-device memory bandwidth.
	HBMPerGCD units.BytesPerSecond
	// HBMCapacityPerGCD bounds the HPL problem size.
	HBMCapacityPerGCD units.Bytes
}

// RPeak is the machine's theoretical FP64 vector peak.
func (m MachineSpec) RPeak() units.Flops {
	return units.Flops(float64(m.Nodes*m.GCDsPerNode) * float64(m.VectorFP64PerGCD))
}

// hplEfficiency is HPL's achieved fraction of vector peak at full scale:
// Frontier's debut 1.102 EF against a 1.685 EF peak on 9,248 nodes plus
// panel/broadcast overheads puts the machine-level figure near 62%.
const hplEfficiency = 0.617

// HPLRmax estimates the sustained HPL rate on n nodes.
func (m MachineSpec) HPLRmax(n int) units.Flops {
	if n > m.Nodes {
		n = m.Nodes
	}
	return units.Flops(float64(n*m.GCDsPerNode) * float64(m.VectorFP64PerGCD) * hplEfficiency)
}

// HPLProblemSize returns the largest N whose N×N FP64 matrix fills the
// configured fraction of device memory across n nodes.
func (m MachineSpec) HPLProblemSize(n int, memFraction float64) int {
	bytes := float64(n*m.GCDsPerNode) * float64(m.HBMCapacityPerGCD) * memFraction
	return int(math.Sqrt(bytes / 8))
}

// HPLRunTime estimates the wall time of one HPL run on n nodes: the
// 2/3·N³ LU factorisation at Rmax.
func (m MachineSpec) HPLRunTime(n int, memFraction float64) units.Seconds {
	N := float64(m.HPLProblemSize(n, memFraction))
	flops := 2.0 / 3.0 * N * N * N
	return units.Seconds(flops / float64(m.HPLRmax(n)))
}

// hpcgFlopsPerByte is the arithmetic intensity of HPCG's sparse
// kernels — multigrid-preconditioned CG streams ~9 bytes per flop.
const hpcgFlopsPerByte = 0.11

// HPCG estimates the sustained HPCG rate: bandwidth-bound on HBM.
// Frontier's submission measured ~14 PF against a 1.7 EF peak — the
// memory wall the 2008 report worried about, quantified.
func (m MachineSpec) HPCG(n int) units.Flops {
	if n > m.Nodes {
		n = m.Nodes
	}
	bw := float64(n*m.GCDsPerNode) * float64(m.HBMPerGCD)
	return units.Flops(bw * hpcgFlopsPerByte)
}

// HPCGFractionOfPeak is the headline gap between dense and sparse
// performance (~0.8% on Frontier).
func (m MachineSpec) HPCGFractionOfPeak() float64 {
	return float64(m.HPCG(m.Nodes)) / float64(m.RPeak())
}
