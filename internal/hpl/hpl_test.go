package hpl

import (
	"math"
	"testing"
)

func TestRPeak(t *testing.T) {
	m := FrontierSpec()
	// Table 1: 2.0 EF DGEMM peak (vector FP64 ~1.8 EF; matrix higher).
	ef := float64(m.RPeak()) / 1e18
	if math.Abs(ef-1.815) > 0.01 {
		t.Errorf("vector RPeak = %.3f EF, want 1.815", ef)
	}
}

// TOP500 June 2022: 1.102 EF. The model lands in the same band at full
// machine size.
func TestHPLRmax(t *testing.T) {
	m := FrontierSpec()
	ef := float64(m.HPLRmax(m.Nodes)) / 1e18
	if ef < 1.05 || ef < 1.0 || ef > 1.2 {
		t.Errorf("Rmax = %.3f EF, want ~1.1", ef)
	}
	// Exceeds an exaflop: the paper's headline.
	if ef < 1.0 {
		t.Error("Frontier must exceed 1 EF")
	}
	if m.HPLRmax(m.Nodes*2) != m.HPLRmax(m.Nodes) {
		t.Error("node count should clamp")
	}
}

func TestHPLProblemSizeAndTime(t *testing.T) {
	m := FrontierSpec()
	n := m.HPLProblemSize(m.Nodes, 0.85)
	// Real Frontier HPL runs use N in the ~24-26M range with ~4.6 PiB
	// of HBM.
	if n < 20e6 || n > 30e6 {
		t.Errorf("HPL N = %d, want ~24M", n)
	}
	d := m.HPLRunTime(m.Nodes, 0.85)
	// Real runs take a couple of hours.
	hours := float64(d) / 3600
	if hours < 1 || hours > 6 {
		t.Errorf("HPL runtime = %.1f h, want a few hours", hours)
	}
}

func TestHPCGBandwidthBound(t *testing.T) {
	m := FrontierSpec()
	pf := float64(m.HPCG(m.Nodes)) / 1e15
	// Frontier's HPCG submission: ~14 PF.
	if math.Abs(pf-14) > 1.5 {
		t.Errorf("HPCG = %.1f PF, want ~14", pf)
	}
	frac := m.HPCGFractionOfPeak()
	if frac > 0.012 || frac < 0.005 {
		t.Errorf("HPCG fraction of peak = %.4f, want ~0.8%%", frac)
	}
}

func TestScalingMonotone(t *testing.T) {
	m := FrontierSpec()
	if m.HPLRmax(1000) >= m.HPLRmax(9000) {
		t.Error("Rmax should grow with nodes")
	}
	if m.HPCG(1000) >= m.HPCG(9000) {
		t.Error("HPCG should grow with nodes")
	}
}
