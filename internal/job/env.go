package job

import (
	"fmt"
	"math"

	"frontiersim/internal/fabric"
	"frontiersim/internal/gpu"
	"frontiersim/internal/mpi"
	"frontiersim/internal/storage"
	"frontiersim/internal/units"
)

// phaseLaunchOverhead is the fixed cost of entering a phase (kernel
// launch + runtime dispatch), which keeps zero-work phases from being
// free and matches the GEMM model's launch constant.
const phaseLaunchOverhead = 12 * units.Microsecond

// NodeModel is one compute node as the job layer prices it: achieved
// (not marketing-peak) dense rates per device, STREAM-class memory
// bandwidth, and usable device memory. The machine-spec layer derives
// it from the same NodeSpec the application proxies use.
type NodeModel struct {
	// Devices is the accelerator count per node (GCDs on Frontier).
	Devices int
	// Achieved dense throughput per device by precision.
	FP64, FP32, FP16 units.Flops
	// MemBW is achieved memory bandwidth per device; MemCap usable
	// memory per device.
	MemBW  units.BytesPerSecond
	MemCap units.Bytes
}

// Dense returns the achieved dense rate for a precision.
func (n NodeModel) Dense(p gpu.Precision) units.Flops {
	switch p {
	case gpu.FP32:
		return n.FP32
	case gpu.FP16:
		return n.FP16
	}
	return n.FP64
}

// Env is everything a program needs to be priced on a machine: the node
// model for compute phases, the fabric for placement-aware collectives,
// and the storage plant for I/O and checkpoint phases. Storage fields
// are optional; binding a program with I/O phases on an env without any
// storage is an error.
type Env struct {
	Node   NodeModel
	Fabric *fabric.Fabric
	// NodeLocal is the per-node burst tier (checkpoint absorbs, warm
	// reads); Orion the center-wide file system (streaming reads, drain
	// target).
	NodeLocal *storage.NodeLocalStore
	Orion     *storage.Orion

	// Cache, when non-nil, memoizes Bind's per-phase pricing keyed by
	// (program signature, placement signature, CacheKey). Hits are
	// bit-identical to cold binds but skip communicator construction;
	// the served Bound shares the cached time slices and has a nil Comm.
	Cache *PricingCache
	// CacheKey distinguishes machines sharing one cache — conventionally
	// the machine.Hash of the spec this env was derived from.
	CacheKey string
}

// Validate checks the env is usable.
func (e *Env) Validate() error {
	if e == nil {
		return fmt.Errorf("job: nil env")
	}
	if e.Fabric == nil {
		return fmt.Errorf("job: env needs a fabric")
	}
	if e.Node.Devices < 1 {
		return fmt.Errorf("job: env node model needs at least one device")
	}
	return nil
}

// SpreadPlacement is the nominal large-job placement: n nodes spread
// evenly across the machine, the same shape Platform.Comm uses. The
// scheduler estimates queue-time walltimes against it; the placement a
// job actually receives re-prices the program.
func (e *Env) SpreadPlacement(n int) []int {
	total := e.Fabric.Cfg.ComputeNodes()
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i * total / n
	}
	return nodes
}

// Bound is a program priced against an env and a concrete placement:
// per-phase durations, the placement's communicator, and the total
// runtime the scheduler uses as the job's derived duration.
type Bound struct {
	Prog  *Program
	Env   *Env
	Nodes []int
	Comm  *mpi.Comm

	// SetupTimes and LoopTimes are per-phase durations in program order.
	SetupTimes, LoopTimes []units.Seconds
	// Total is setup plus Iterations loop passes.
	Total units.Seconds

	subs map[Group]*mpi.Comm
}

// LoopTime is the duration of one loop pass.
func (b *Bound) LoopTime() units.Seconds {
	var t units.Seconds
	for _, d := range b.LoopTimes {
		t += d
	}
	return t
}

// Bind prices a program on a concrete placement. The communicator is
// built from the placement's actual nodes, so a packed allocation and a
// spread allocation yield different collective times — placement policy
// is now visible in job runtime.
func (e *Env) Bind(p *Program, nodes []int) (*Bound, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) != p.Nodes {
		return nil, fmt.Errorf("job: program %s needs %d nodes, placement has %d", p.Name, p.Nodes, len(nodes))
	}
	var key pricingKey
	keyed := false
	if e.Cache != nil {
		if place, ok := e.PlacementSignature(nodes); ok {
			key = pricingKey{env: e.CacheKey, prog: ProgramSignature(p), place: place}
			keyed = true
			if pr, hit := e.Cache.lookup(key); hit {
				return &Bound{Prog: p, Env: e, Nodes: nodes,
					SetupTimes: pr.setupTimes, LoopTimes: pr.loopTimes,
					Total: pr.setupSum + units.Seconds(p.Iterations)*pr.loopSum}, nil
			}
		}
	}
	comm, err := mpi.NewComm(e.Fabric, nodes, p.PPN)
	if err != nil {
		return nil, fmt.Errorf("job: binding %s: %w", p.Name, err)
	}
	b := &Bound{Prog: p, Env: e, Nodes: nodes, Comm: comm, subs: map[Group]*mpi.Comm{}}
	price := func(phases []Phase) ([]units.Seconds, units.Seconds, error) {
		times := make([]units.Seconds, len(phases))
		var sum units.Seconds
		for i, ph := range phases {
			d, err := b.phaseTime(ph)
			if err != nil {
				return nil, 0, fmt.Errorf("job: program %s phase %q: %w", p.Name, ph.Name, err)
			}
			times[i] = d
			sum += d
		}
		return times, sum, nil
	}
	var setupSum, loopSum units.Seconds
	if b.SetupTimes, setupSum, err = price(p.Setup); err != nil {
		return nil, err
	}
	if b.LoopTimes, loopSum, err = price(p.Loop); err != nil {
		return nil, err
	}
	b.Total = setupSum + units.Seconds(p.Iterations)*loopSum
	if keyed {
		e.Cache.store(key, pricedProgram{
			setupTimes: b.SetupTimes, loopTimes: b.LoopTimes,
			setupSum: setupSum, loopSum: loopSum,
		})
	}
	return b, nil
}

// Estimate prices a program on the nominal spread placement — the
// number a scheduler can quote before any nodes are assigned.
func (e *Env) Estimate(p *Program) (units.Seconds, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	if p.Nodes > e.Fabric.Cfg.ComputeNodes() {
		return 0, fmt.Errorf("job: program %s needs %d nodes, machine has %d",
			p.Name, p.Nodes, e.Fabric.Cfg.ComputeNodes())
	}
	b, err := e.Bind(p, e.SpreadPlacement(p.Nodes))
	if err != nil {
		return 0, err
	}
	return b.Total, nil
}

// phaseTime prices one phase instance.
func (b *Bound) phaseTime(ph Phase) (units.Seconds, error) {
	switch ph.Kind {
	case Compute:
		return b.computeTime(ph), nil
	case Collective:
		return b.collectiveTime(ph)
	case IO, Checkpoint:
		return b.ioTime(ph)
	}
	return 0, fmt.Errorf("unknown phase kind %v", ph.Kind)
}

// computeTime is the roofline time of the phase's per-device work: the
// slower of the compute and memory streams on the achieved rates.
func (b *Bound) computeTime(ph Phase) units.Seconds {
	n := b.Env.Node
	eff := ph.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	var compute float64
	if ph.Flops > 0 {
		compute = ph.Flops / (float64(n.Dense(ph.Precision)) * eff)
	}
	var mem float64
	if ph.Bytes > 0 && n.MemBW > 0 {
		mem = float64(ph.Bytes) / float64(n.MemBW)
	}
	return phaseLaunchOverhead + units.Seconds(math.Max(compute, mem))
}

// xgmiBW is the intra-node device-to-device rate, matching the
// CU-copy single-link figure mpi.SendRecv uses for same-node pairs.
const xgmiBW = 37.5 * units.GBps

// intraNodeLatency is the per-stage software latency of a node-local
// collective (no NIC traversal).
const intraNodeLatency = 1300 * units.Nanosecond

// nodeLocalCollective prices a collective whose communicator lies
// entirely within one node: the ring runs over xGMI instead of the NIC,
// which is what makes tensor-parallel groups cheap relative to the
// data-parallel groups that span the fabric.
func nodeLocalCollective(op Op, payload units.Bytes, p float64) (units.Seconds, bool) {
	if p < 2 {
		return 0, true
	}
	stages := units.Seconds(math.Ceil(math.Log2(p))) * intraNodeLatency
	ring := func(vol float64) units.Seconds {
		return stages + units.Seconds(vol/float64(xgmiBW))
	}
	b := float64(payload)
	switch op {
	case Allreduce:
		return ring(2 * b * (p - 1) / p), true
	case AllGather:
		return ring(b * (p - 1)), true
	case ReduceScatter:
		return ring(b * (p - 1) / p), true
	case AllToAll:
		return ring(b * (p - 1)), true
	case Broadcast:
		return ring(b), true
	case Barrier:
		return stages, true
	}
	return 0, false // SendRecv/Halo keep the peer-aware path
}

// collectiveTime prices the phase's operation on its (sub-)communicator.
func (b *Bound) collectiveTime(ph Phase) (units.Seconds, error) {
	c, err := b.groupComm(ph.Group)
	if err != nil {
		return 0, err
	}
	if len(c.Nodes) == 1 {
		if d, ok := nodeLocalCollective(ph.Op, ph.Payload, float64(c.Size())); ok {
			return d, nil
		}
	}
	switch ph.Op {
	case Allreduce:
		return c.Allreduce(ph.Payload), nil
	case AllGather:
		return c.AllGather(ph.Payload), nil
	case ReduceScatter:
		return c.ReduceScatter(ph.Payload), nil
	case AllToAll:
		return c.AllToAll(ph.Payload), nil
	case Broadcast:
		return c.Broadcast(ph.Payload), nil
	case Barrier:
		return c.Barrier(), nil
	case SendRecv:
		peer := ph.PeerStride
		if peer < 1 {
			peer = b.Prog.PPN // nearest cross-node partner
		}
		if peer >= c.Size() {
			peer = c.Size() - 1
		}
		if peer < 1 {
			return 0, nil // single-rank communicator: nothing to exchange
		}
		return c.SendRecv(0, peer, ph.Payload), nil
	case Halo:
		return c.Halo3D(ph.Payload), nil
	}
	return 0, fmt.Errorf("unknown collective op %v", ph.Op)
}

// groupComm returns the sub-communicator for a group, building and
// caching it on first use. The representative subgroup is the one
// containing rank 0; under the supported shapes all subgroups are
// congruent, so one price serves the phase.
func (b *Bound) groupComm(g Group) (*mpi.Comm, error) {
	ranks := b.Comm.Size()
	if g.whole(ranks) {
		return b.Comm, nil
	}
	if c, ok := b.subs[g]; ok {
		return c, nil
	}
	var color func(int) int
	if g.Stride <= 1 {
		size := g.Size
		color = func(r int) int { return r / size }
	} else {
		stride := g.Stride
		color = func(r int) int { return r % stride }
	}
	c, err := b.Comm.SplitOne(color, 0)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("group %dx%d produced no rank-0 subgroup", g.Size, g.Stride)
	}
	b.subs[g] = c
	return c, nil
}

// ioTime prices a bulk I/O or checkpoint phase. Reads stream from the
// parallel file system (the cold path: training sets, restart files);
// writes absorb into the node-local tier when the machine has one
// (burst-buffer semantics — the drain overlaps computation), else they
// stream to the PFS.
func (b *Bound) ioTime(ph Phase) (units.Seconds, error) {
	e := b.Env
	if e.NodeLocal == nil && e.Orion == nil {
		return 0, fmt.Errorf("%s phase needs a storage plant", ph.Kind)
	}
	n := units.BytesPerSecond(len(b.Nodes))
	var t units.Seconds
	if ph.Read > 0 {
		switch {
		case e.Orion != nil:
			t += units.TimeToMove(ph.Read, e.Orion.StreamBandwidth(ph.Read, false))
		default:
			t += units.TimeToMove(ph.Read, e.NodeLocal.SeqRead()*n)
		}
	}
	if ph.Write > 0 {
		switch {
		case e.NodeLocal != nil:
			t += units.TimeToMove(ph.Write, e.NodeLocal.SeqWrite()*n)
		default:
			t += units.TimeToMove(ph.Write, e.Orion.StreamBandwidth(ph.Write, true))
		}
	}
	return phaseLaunchOverhead + t, nil
}
