package job

import (
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// Exec runs a bound program on the event kernel. Each phase boundary is
// a real simulation event: one event is outstanding at a time and the
// completion callback schedules the next phase, so a 10k-iteration
// program costs the calendar one slot, not PhaseEvents() slots. That
// also means an interrupt at any simulated instant lands *inside* a
// specific phase, which is what lets the resilience layer charge
// lost-work-since-last-checkpoint instead of discarding a duration blob.
type Exec struct {
	Bound *Bound
	K     *sim.Kernel

	// OnDone fires when the last phase completes (nil for fire-and-forget).
	OnDone func()

	// TimeByKind accumulates completed simulated time per phase kind.
	TimeByKind [4]units.Seconds
	// Checkpoints counts completed checkpoint phases.
	Checkpoints int

	// started is when the program began executing.
	started units.Seconds
	// lastCkpt is when the most recent checkpoint phase *completed* —
	// work since then is lost on interrupt. Before any checkpoint it is
	// the program start.
	lastCkpt units.Seconds
	// phaseStart is when the in-flight phase began.
	phaseStart units.Seconds
	// cursor walks phase instances: iter counts completed loop passes.
	inSetup bool
	idx     int
	iter    int
	done    bool
	stopped bool
	pending sim.Event
}

// execStep is the closure-free phase-boundary trampoline.
func execStep(arg any) { arg.(*Exec).step() }

// Start begins execution at the kernel's current time. It returns the
// Exec so callers can chain.
func (x *Exec) Start() *Exec {
	now := x.K.Now()
	x.started = now
	x.lastCkpt = now
	x.inSetup = len(x.Bound.Prog.Setup) > 0
	x.idx, x.iter = 0, 0
	x.schedule()
	return x
}

// current returns the in-flight phase and its bound duration, or false
// when the program has run out of phases.
func (x *Exec) current() (Phase, units.Seconds, bool) {
	p := x.Bound.Prog
	if x.inSetup {
		if x.idx < len(p.Setup) {
			return p.Setup[x.idx], x.Bound.SetupTimes[x.idx], true
		}
		return Phase{}, 0, false
	}
	if x.iter < p.Iterations && x.idx < len(p.Loop) {
		return p.Loop[x.idx], x.Bound.LoopTimes[x.idx], true
	}
	return Phase{}, 0, false
}

// schedule arms the boundary event for the current phase, or completes.
func (x *Exec) schedule() {
	if x.stopped || x.done {
		return
	}
	_, d, ok := x.current()
	if !ok {
		x.done = true
		if x.OnDone != nil {
			x.OnDone()
		}
		return
	}
	x.phaseStart = x.K.Now()
	x.pending = x.K.AfterCall(d, execStep, x)
}

// step retires the completed phase and advances the cursor.
func (x *Exec) step() {
	if x.stopped || x.done {
		return
	}
	ph, d, _ := x.current()
	x.TimeByKind[ph.Kind] += d
	if ph.Kind == Checkpoint {
		x.Checkpoints++
		x.lastCkpt = x.K.Now()
	}
	x.idx++
	p := x.Bound.Prog
	if x.inSetup && x.idx >= len(p.Setup) {
		x.inSetup = false
		x.idx = 0
	} else if !x.inSetup && x.idx >= len(p.Loop) {
		x.idx = 0
		x.iter++
	}
	x.schedule()
}

// Done reports whether the program ran to completion.
func (x *Exec) Done() bool { return x.done }

// Stop cancels the in-flight phase boundary (interrupt or walltime
// kill). The partial phase is abandoned — its time is NOT credited to
// TimeByKind, matching a real job that dies mid-collective.
func (x *Exec) Stop() {
	if x.stopped || x.done {
		return
	}
	x.stopped = true
	x.pending.Cancel()
}

// PhaseElapsed is how long the in-flight phase has been running — the
// part an interrupt right now would strand.
func (x *Exec) PhaseElapsed() units.Seconds {
	if x.done || x.stopped {
		return 0
	}
	return x.K.Now() - x.phaseStart
}

// LostWork returns the simulated time since the last completed
// checkpoint (or program start): the work an interrupt at the current
// kernel time destroys.
func (x *Exec) LostWork() units.Seconds {
	if x.done {
		return 0
	}
	return x.K.Now() - x.lastCkpt
}

// Elapsed is the simulated time the program has been executing.
func (x *Exec) Elapsed() units.Seconds {
	return x.K.Now() - x.started
}
