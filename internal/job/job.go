// Package job is the application model the scheduler, workload, and
// resilience layers share: a Program is a deterministic sequence (and
// loop) of typed phases — roofline-bound compute, MPI collectives, bulk
// I/O, and checkpoints — whose runtime *emerges* from the machine the
// job lands on. Binding a program to a concrete node placement builds an
// mpi.Comm over those nodes, so topology-aware placement changes the
// collective phases' durations; executing a bound program on the event
// kernel makes every phase boundary a real simulation event, which is
// what lets mid-phase interrupts charge lost-work-since-last-checkpoint
// instead of killing an opaque duration blob.
//
// The package deliberately depends only on the subsystem models it
// prices phases against (fabric, mpi, gpu precisions, storage, sim);
// the machine-spec layer derives the NodeModel/Env inputs, and the
// apps, miniapps, and llm packages are program *builders* on top.
package job

import (
	"fmt"

	"frontiersim/internal/gpu"
	"frontiersim/internal/units"
)

// Kind classifies a phase by the resource it exercises.
type Kind int

// Phase kinds.
const (
	// Compute is roofline-bound node-local work: the slower of the
	// floating-point and HBM-traffic phases on each device.
	Compute Kind = iota
	// Collective is an MPI operation on a communicator built from the
	// job's actual placement.
	Collective
	// IO is bulk file I/O: reads stream from the parallel file system,
	// writes absorb into the node-local tier when the machine has one.
	IO
	// Checkpoint is a defensive write; completing one resets the
	// lost-work clock the resilience layer charges on interrupt.
	Checkpoint
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Collective:
		return "collective"
	case IO:
		return "io"
	case Checkpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op selects a collective operation.
type Op int

// Collective operations.
const (
	Allreduce Op = iota
	AllGather
	ReduceScatter
	AllToAll
	Broadcast
	Barrier
	// SendRecv is a pairwise exchange with the rank PeerStride away —
	// the pipeline-parallel stage boundary, halo partner, or any other
	// point-to-point pattern.
	SendRecv
	// Halo is a six-face nearest-neighbour exchange (3-D stencils);
	// Payload is one face.
	Halo
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Allreduce:
		return "allreduce"
	case AllGather:
		return "allgather"
	case ReduceScatter:
		return "reduce-scatter"
	case AllToAll:
		return "all-to-all"
	case Broadcast:
		return "broadcast"
	case Barrier:
		return "barrier"
	case SendRecv:
		return "sendrecv"
	case Halo:
		return "halo"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Group selects the sub-communicator a collective runs on: Size ranks
// taken every Stride ranks. The zero Group means the whole job. Two
// shapes are supported: contiguous blocks (Stride <= 1; tensor-parallel
// groups packed within a node) and full strided decompositions
// (Size*Stride == job ranks; data-parallel groups spanning nodes).
type Group struct {
	Size   int
	Stride int
}

// whole reports whether the group is the full communicator.
func (g Group) whole(ranks int) bool {
	return g.Size == 0 || g.Size == ranks
}

// Phase is one typed step of a program. Compute work is per device;
// collective payloads are per rank; I/O byte counts are job-aggregate.
type Phase struct {
	Name string
	Kind Kind

	// Compute: per-device roofline work.
	Flops       float64
	Bytes       units.Bytes
	Precision   gpu.Precision
	MatrixCores bool
	// Efficiency derates the dense rate (0 means 1.0).
	Efficiency float64

	// Collective.
	Op      Op
	Payload units.Bytes
	Group   Group
	// PeerStride is the SendRecv partner distance in ranks (0 means one
	// full node away, the nearest cross-node partner).
	PeerStride int

	// IO / Checkpoint: job-aggregate bytes moved.
	Read  units.Bytes
	Write units.Bytes
}

// Program is a deterministic phase-structured application: Setup runs
// once, then Loop repeats Iterations times. The program's runtime is not
// stored anywhere — it is derived by binding to an Env and a placement.
type Program struct {
	Name string
	// Class labels the workload stratum for campaign statistics.
	Class string
	// Nodes is the required allocation size.
	Nodes int
	// PPN is ranks per node for the collective phases (devices per node
	// for GPU codes).
	PPN int

	Setup      []Phase
	Iterations int
	Loop       []Phase
}

// Validate checks the program for structural sanity.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("job: program needs a name")
	}
	if p.Nodes < 1 {
		return fmt.Errorf("job: program %s needs at least one node (got %d)", p.Name, p.Nodes)
	}
	if p.PPN < 1 {
		return fmt.Errorf("job: program %s needs ppn >= 1 (got %d)", p.Name, p.PPN)
	}
	if len(p.Setup)+len(p.Loop) == 0 {
		return fmt.Errorf("job: program %s has no phases", p.Name)
	}
	if len(p.Loop) > 0 && p.Iterations < 1 {
		return fmt.Errorf("job: program %s has a loop but %d iterations", p.Name, p.Iterations)
	}
	ranks := p.Nodes * p.PPN
	check := func(where string, phases []Phase) error {
		for i, ph := range phases {
			if ph.Kind == Compute && (ph.Flops < 0 || ph.Bytes < 0) {
				return fmt.Errorf("job: program %s %s[%d] has negative compute work", p.Name, where, i)
			}
			if ph.Kind == Collective {
				g := ph.Group
				if g.whole(ranks) {
					continue
				}
				if g.Size < 1 || g.Size > ranks || ranks%g.Size != 0 {
					return fmt.Errorf("job: program %s %s[%d] group size %d does not divide %d ranks",
						p.Name, where, i, g.Size, ranks)
				}
				if g.Stride > 1 && g.Size*g.Stride != ranks {
					return fmt.Errorf("job: program %s %s[%d] strided group %dx%d must cover the %d ranks",
						p.Name, where, i, g.Size, g.Stride, ranks)
				}
			}
			if (ph.Kind == IO || ph.Kind == Checkpoint) && (ph.Read < 0 || ph.Write < 0) {
				return fmt.Errorf("job: program %s %s[%d] has negative I/O", p.Name, where, i)
			}
		}
		return nil
	}
	if err := check("setup", p.Setup); err != nil {
		return err
	}
	return check("loop", p.Loop)
}

// PhaseEvents is the number of phase-boundary events executing the
// program schedules: one per phase instance.
func (p *Program) PhaseEvents() int {
	return len(p.Setup) + p.Iterations*len(p.Loop)
}

// Coarsen returns a copy of the program in which each loop pass stands
// for chunk original iterations: phase work quantities are multiplied by
// chunk and the iteration count divided (rounding up), so a
// million-step job costs the calendar thousands of events instead of
// millions. Per-phase latency terms are folded away — acceptable at
// campaign granularity, where bandwidth terms dominate. A chunk < 2
// returns the program unchanged.
func Coarsen(p *Program, chunk int) *Program {
	if chunk < 2 || len(p.Loop) == 0 {
		return p
	}
	cp := *p
	cp.Loop = make([]Phase, len(p.Loop))
	for i, ph := range p.Loop {
		ph.Flops *= float64(chunk)
		ph.Bytes *= units.Bytes(chunk)
		ph.Payload *= units.Bytes(chunk)
		ph.Read *= units.Bytes(chunk)
		ph.Write *= units.Bytes(chunk)
		cp.Loop[i] = ph
	}
	cp.Iterations = (p.Iterations + chunk - 1) / chunk
	return &cp
}

// Checkpointed returns a copy of the program with a checkpoint phase of
// the given aggregate size appended to the loop every interval
// iterations by splitting the iteration count; when interval does not
// divide the loop structure cleanly the checkpoint simply rides at the
// end of every interval-th iteration. An interval < 1 appends it to
// every iteration.
func Checkpointed(p *Program, size units.Bytes, interval int) *Program {
	cp := *p
	if interval < 1 {
		interval = 1
	}
	ck := Phase{Name: "checkpoint", Kind: Checkpoint, Write: size}
	if interval == 1 || len(cp.Loop) == 0 {
		cp.Loop = append(append([]Phase(nil), cp.Loop...), ck)
		return &cp
	}
	// Fold interval iterations into one loop body ending in a checkpoint;
	// leftover iterations are promoted into the folded count (the program
	// stays deterministic, just checkpoint-aligned).
	body := make([]Phase, 0, interval*len(cp.Loop)+1)
	for i := 0; i < interval; i++ {
		body = append(body, cp.Loop...)
	}
	body = append(body, ck)
	cp.Loop = body
	cp.Iterations = (p.Iterations + interval - 1) / interval
	return &cp
}
