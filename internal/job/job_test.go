package job_test

import (
	"math"
	"testing"

	"frontiersim/internal/gpu"
	"frontiersim/internal/job"
	"frontiersim/internal/machine"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// testEnv builds a small scaled-Frontier env: 4 groups of 4 switches of
// 4 endpoints, full storage plant.
func testEnv(t *testing.T) *job.Env {
	t.Helper()
	spec := machine.Scaled(4, 4, 4)
	f, err := spec.NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.JobEnv(f)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func contiguous(n int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

func TestProgramValidate(t *testing.T) {
	good := &job.Program{
		Name: "ok", Nodes: 2, PPN: 8, Iterations: 3,
		Loop: []job.Phase{{Name: "c", Kind: job.Compute, Flops: 1e12}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(p *job.Program)
	}{
		{"no name", func(p *job.Program) { p.Name = "" }},
		{"zero nodes", func(p *job.Program) { p.Nodes = 0 }},
		{"zero ppn", func(p *job.Program) { p.PPN = 0 }},
		{"no phases", func(p *job.Program) { p.Loop = nil }},
		{"loop without iterations", func(p *job.Program) { p.Iterations = 0 }},
		{"negative flops", func(p *job.Program) { p.Loop[0].Flops = -1 }},
		{"group does not divide", func(p *job.Program) {
			p.Loop[0] = job.Phase{Kind: job.Collective, Op: job.Allreduce, Group: job.Group{Size: 5}}
		}},
		{"strided group does not cover", func(p *job.Program) {
			p.Loop[0] = job.Phase{Kind: job.Collective, Op: job.Allreduce, Group: job.Group{Size: 4, Stride: 3}}
		}},
		{"negative io", func(p *job.Program) {
			p.Loop[0] = job.Phase{Kind: job.IO, Read: -1}
		}},
	}
	for _, c := range cases {
		p := *good
		p.Loop = append([]job.Phase(nil), good.Loop...)
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestBindPricesRoofline(t *testing.T) {
	env := testEnv(t)
	flops := float64(env.Node.FP64) // exactly one second dense
	p := &job.Program{
		Name: "roofline", Nodes: 2, PPN: env.Node.Devices, Iterations: 4,
		Setup: []job.Phase{{Name: "load", Kind: job.IO, Read: 1 * units.GiB}},
		Loop: []job.Phase{
			{Name: "fp64", Kind: job.Compute, Flops: flops, Precision: gpu.FP64},
			{Name: "stream", Kind: job.Compute, Bytes: units.Bytes(float64(env.Node.MemBW) / 2)},
		},
	}
	b, err := env.Bind(p, contiguous(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(b.LoopTimes[0]); math.Abs(got-1) > 1e-3 {
		t.Errorf("dense-second phase priced at %v", b.LoopTimes[0])
	}
	if got := float64(b.LoopTimes[1]); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("half-bandwidth-second phase priced at %v", b.LoopTimes[1])
	}
	wantTotal := b.SetupTimes[0] + 4*b.LoopTime()
	if b.Total != wantTotal {
		t.Errorf("Total = %v, want setup+4*loop = %v", b.Total, wantTotal)
	}
	// Efficiency derates the denominator.
	p.Loop[0].Efficiency = 0.5
	b2, err := env.Bind(p, contiguous(2))
	if err != nil {
		t.Fatal(err)
	}
	if b2.LoopTimes[0] <= b.LoopTimes[0] {
		t.Errorf("efficiency 0.5 did not slow the phase: %v vs %v", b2.LoopTimes[0], b.LoopTimes[0])
	}
}

// The point of the whole layer: the same program priced on a packed
// allocation vs a spread allocation yields different collective times.
// The job must claim enough of the machine that the global taper binds
// (small jobs are NIC-limited under either placement).
func TestBindPlacementSensitivity(t *testing.T) {
	spec := machine.Scaled(8, 8, 4)
	f, err := spec.NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.JobEnv(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 48 // 75% of the 64-node machine
	p := &job.Program{
		Name: "a2a", Nodes: n, PPN: env.Node.Devices, Iterations: 1,
		Loop: []job.Phase{{Name: "x", Kind: job.Collective, Op: job.AllToAll, Payload: 16 * units.MiB}},
	}
	packed, err := env.Bind(p, contiguous(n))
	if err != nil {
		t.Fatal(err)
	}
	spread, err := env.Bind(p, env.SpreadPlacement(n))
	if err != nil {
		t.Fatal(err)
	}
	if packed.Total == spread.Total {
		t.Fatalf("packed and spread placements priced identically (%v): placement is invisible", packed.Total)
	}
}

// A collective on a node-local group (tensor-parallel shape) must be
// priced over xGMI, i.e. strictly cheaper than the same payload on a
// fabric-spanning group of the same size.
func TestNodeLocalGroupCheaper(t *testing.T) {
	env := testEnv(t)
	ppn := env.Node.Devices
	mk := func(g job.Group) units.Seconds {
		p := &job.Program{
			Name: "g", Nodes: ppn, PPN: ppn, Iterations: 1,
			Loop: []job.Phase{{Name: "ar", Kind: job.Collective, Op: job.Allreduce,
				Payload: 256 * units.MiB, Group: g}},
		}
		b, err := env.Bind(p, contiguous(ppn))
		if err != nil {
			t.Fatal(err)
		}
		return b.LoopTimes[0]
	}
	local := mk(job.Group{Size: ppn})                // ranks 0..ppn-1: one node
	strided := mk(job.Group{Size: ppn, Stride: ppn}) // one rank per node
	if local >= strided {
		t.Errorf("node-local allreduce (%v) not cheaper than fabric allreduce (%v)", local, strided)
	}
}

func TestExecAccounting(t *testing.T) {
	env := testEnv(t)
	k := sim.NewKernel(1)
	p := &job.Program{
		Name: "acct", Nodes: 2, PPN: env.Node.Devices, Iterations: 3,
		Setup: []job.Phase{{Name: "restore", Kind: job.IO, Read: 10 * units.GiB}},
		Loop: []job.Phase{
			{Name: "work", Kind: job.Compute, Flops: float64(env.Node.FP64) / 10},
			{Name: "sync", Kind: job.Collective, Op: job.Allreduce, Payload: 4 * units.MiB},
			{Name: "ckpt", Kind: job.Checkpoint, Write: 1 * units.GiB},
		},
	}
	b, err := env.Bind(p, contiguous(2))
	if err != nil {
		t.Fatal(err)
	}
	done := false
	x := (&job.Exec{Bound: b, K: k, OnDone: func() { done = true }}).Start()
	k.Run()
	if !done || !x.Done() {
		t.Fatal("program did not complete")
	}
	if k.Now() != b.Total {
		t.Errorf("completion at %v, bound total %v", k.Now(), b.Total)
	}
	if x.Checkpoints != 3 {
		t.Errorf("Checkpoints = %d, want 3", x.Checkpoints)
	}
	wantIO := b.SetupTimes[0]
	if x.TimeByKind[job.IO] != wantIO {
		t.Errorf("IO time %v, want %v", x.TimeByKind[job.IO], wantIO)
	}
	var sum units.Seconds
	for _, d := range x.TimeByKind {
		sum += d
	}
	if sum != b.Total {
		t.Errorf("TimeByKind sums to %v, total %v", sum, b.Total)
	}
	if x.LostWork() != 0 {
		t.Errorf("completed program reports lost work %v", x.LostWork())
	}
}

// An interrupt mid-phase strands exactly the work since the last
// completed checkpoint.
func TestExecStopLostWork(t *testing.T) {
	env := testEnv(t)
	k := sim.NewKernel(1)
	p := &job.Program{
		Name: "lost", Nodes: 1, PPN: env.Node.Devices, Iterations: 10,
		Loop: []job.Phase{
			{Name: "work", Kind: job.Compute, Flops: float64(env.Node.FP64)}, // ~1s
			{Name: "ckpt", Kind: job.Checkpoint, Write: 1 * units.MiB},
		},
	}
	b, err := env.Bind(p, contiguous(1))
	if err != nil {
		t.Fatal(err)
	}
	x := (&job.Exec{Bound: b, K: k}).Start()
	pass := b.LoopTime()
	// Interrupt mid-way through the 4th pass: 3 checkpoints completed.
	cut := 3*pass + b.LoopTimes[0]/2
	k.RunUntil(cut)
	x.Stop()
	if x.Checkpoints != 3 {
		t.Fatalf("Checkpoints = %d, want 3", x.Checkpoints)
	}
	want := k.Now() - 3*pass
	if got := x.LostWork(); got != want {
		t.Errorf("LostWork = %v, want %v (since last checkpoint)", got, want)
	}
	// The stranded partial phase is not credited.
	if x.TimeByKind[job.Compute] != 3*b.LoopTimes[0] {
		t.Errorf("compute credit %v, want %v", x.TimeByKind[job.Compute], 3*b.LoopTimes[0])
	}
	k.Run() // draining the calendar must not resurrect the program
	if x.Done() {
		t.Error("stopped program reported done")
	}
}

func TestCoarsenConservesWork(t *testing.T) {
	p := &job.Program{
		Name: "c", Nodes: 1, PPN: 8, Iterations: 1000,
		Loop: []job.Phase{
			{Name: "w", Kind: job.Compute, Flops: 7, Bytes: 3},
			{Name: "h", Kind: job.Collective, Op: job.Halo, Payload: 11},
		},
	}
	c := job.Coarsen(p, 64)
	if c.Iterations != 16 { // ceil(1000/64)
		t.Errorf("Iterations = %d, want 16", c.Iterations)
	}
	if c.Loop[0].Flops != 7*64 || c.Loop[0].Bytes != 3*64 || c.Loop[1].Payload != 11*64 {
		t.Errorf("phase work not scaled by chunk: %+v", c.Loop)
	}
	if c.PhaseEvents() >= p.PhaseEvents() {
		t.Errorf("coarsening did not shrink events: %d vs %d", c.PhaseEvents(), p.PhaseEvents())
	}
	if got := job.Coarsen(p, 1); got != p {
		t.Error("chunk < 2 must return the program unchanged")
	}
	if p.Loop[0].Flops != 7 {
		t.Error("Coarsen mutated the original program")
	}
}

func TestCheckpointed(t *testing.T) {
	p := &job.Program{
		Name: "k", Nodes: 1, PPN: 8, Iterations: 100,
		Loop: []job.Phase{{Name: "w", Kind: job.Compute, Flops: 1}},
	}
	c := job.Checkpointed(p, 5*units.GiB, 10)
	if len(c.Loop) != 10*len(p.Loop)+1 {
		t.Errorf("folded loop has %d phases, want %d", len(c.Loop), 10*len(p.Loop)+1)
	}
	last := c.Loop[len(c.Loop)-1]
	if last.Kind != job.Checkpoint || last.Write != 5*units.GiB {
		t.Errorf("last phase %+v is not the checkpoint", last)
	}
	if c.Iterations != 10 {
		t.Errorf("Iterations = %d, want 10", c.Iterations)
	}
	every := job.Checkpointed(p, 1, 1)
	if len(every.Loop) != 2 || every.Iterations != 100 {
		t.Errorf("interval 1 should append in place: %d phases, %d iterations", len(every.Loop), every.Iterations)
	}
}

func TestEstimateRejectsOversizedProgram(t *testing.T) {
	env := testEnv(t)
	p := &job.Program{
		Name: "big", Nodes: 1 << 20, PPN: 8, Iterations: 1,
		Loop: []job.Phase{{Name: "w", Kind: job.Compute, Flops: 1}},
	}
	if _, err := env.Estimate(p); err == nil {
		t.Error("estimate accepted a program larger than the machine")
	}
}
