package job

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"frontiersim/internal/units"
)

// This file is the placement-signature pricing cache. Binding a program
// prices every phase through mpi.Comm, and every quantity that pricing
// reads — Size, PPN, GroupsSpanned, rank-to-node equality for SendRecv,
// and the sub-communicators Split derives from rank indices — is
// invariant under relabeling the placement's nodes by order of
// appearance and its dragonfly groups by first appearance. Two
// placements with the same relabeled per-node group sequence therefore
// price to bit-identical per-phase times, and a campaign's thousands of
// same-class jobs landing on isomorphic placements collapse to one
// pricing pass.
//
// The counterexample that keeps the signature honest: group sequences
// [0,0,1] and [0,1,1] have the same per-group occupancy multiset, but
// their rank-0 contiguous subgroups span different group counts, so a
// sorted occupancy shape alone is NOT a sound key — the signature hashes
// the full relabeled sequence.

// Sig is a content signature used as a pricing-cache key component.
type Sig [sha256.Size]byte

// ProgramSignature hashes exactly the program content pricing reads:
// the node/rank shape and every per-phase work quantity, in order.
// Iterations is deliberately excluded — the cached entry stores the
// setup and single-pass loop sums, and Bind rebuilds Total with the
// job's own iteration count using the identical floating-point
// expression — as are Name and Class, which never enter a price.
func ProgramSignature(p *Program) Sig {
	h := sha256.New()
	var buf [1024]byte
	n := 0
	flush := func() {
		h.Write(buf[:n])
		n = 0
	}
	w := func(v uint64) {
		if n+8 > len(buf) {
			flush()
		}
		binary.LittleEndian.PutUint64(buf[n:], v)
		n += 8
	}
	wi := func(v int) { w(uint64(v)) }
	wf := func(v float64) { w(math.Float64bits(v)) }
	wi(p.Nodes)
	wi(p.PPN)
	section := func(tag int, phases []Phase) {
		wi(tag)
		wi(len(phases))
		for _, ph := range phases {
			wi(int(ph.Kind))
			wf(ph.Flops)
			wf(float64(ph.Bytes))
			wi(int(ph.Precision))
			m := 0
			if ph.MatrixCores {
				m = 1
			}
			wi(m)
			wf(ph.Efficiency)
			wi(int(ph.Op))
			wf(float64(ph.Payload))
			wi(ph.Group.Size)
			wi(ph.Group.Stride)
			wi(ph.PeerStride)
			wf(float64(ph.Read))
			wf(float64(ph.Write))
		}
	}
	section(1, p.Setup)
	section(2, p.Loop)
	flush()
	var s Sig
	h.Sum(s[:0])
	return s
}

// PlacementSignature canonicalizes a placement for pricing: the
// per-node dragonfly-group sequence with groups relabeled by first
// appearance (the same EndpointGroup mapping mpi.NewComm uses), plus
// the node count. Placements that are isomorphic under group relabeling
// share a signature; placements whose ranks interleave groups
// differently (different comm-group layout) do not. ok is false when a
// node is outside the machine — callers fall back to the uncached path
// so Bind surfaces its canonical error.
func (e *Env) PlacementSignature(nodes []int) (Sig, bool) {
	var s Sig
	f := e.Fabric
	total := f.Cfg.ComputeNodes()
	labels := make([]int32, f.Cfg.ComputeGroups+f.Cfg.IOGroups+f.Cfg.MgmtGroups)
	for i := range labels {
		labels[i] = -1
	}
	next := int32(0)
	h := sha256.New()
	var buf [1024]byte
	n := 0
	put := func(v uint32) {
		if n+4 > len(buf) {
			h.Write(buf[:n])
			n = 0
		}
		binary.LittleEndian.PutUint32(buf[n:], v)
		n += 4
	}
	put(uint32(len(nodes)))
	for _, node := range nodes {
		if node < 0 || node >= total {
			return s, false
		}
		g := f.EndpointGroup(f.NodeEndpoint(node, 0))
		if g < 0 || g >= len(labels) {
			return s, false
		}
		if labels[g] < 0 {
			labels[g] = next
			next++
		}
		put(uint32(labels[g]))
	}
	h.Write(buf[:n])
	h.Sum(s[:0])
	return s, true
}

// pricingKey identifies one priced (program, placement, machine)
// combination.
type pricingKey struct {
	env   string
	prog  Sig
	place Sig
}

// pricedProgram is the machine-dependent, iteration-independent part of
// a Bound: per-phase times and their sums as Bind computed them.
type pricedProgram struct {
	setupTimes, loopTimes []units.Seconds
	setupSum, loopSum     units.Seconds
}

// PricingCache memoizes Bind's per-phase pricing keyed by (program
// signature, placement signature, machine hash). A hit rebuilds the
// Bound from the stored times without constructing an mpi.Comm; the
// result is bit-identical to a cold Bind because the stored values ARE
// a cold Bind's values and Total is recomputed with the same
// expression. Safe for concurrent use; a nil *PricingCache is a valid
// always-miss cache.
type PricingCache struct {
	mu      sync.Mutex
	max     int
	entries map[pricingKey]*list.Element
	lru     list.List // of cacheSlot, front = most recent
	hits    uint64
	misses  uint64
}

type cacheSlot struct {
	key pricingKey
	val pricedProgram
}

// NewPricingCache returns a cache bounded to maxEntries priced
// programs; maxEntries <= 0 means unbounded, which keeps the reported
// hit rate a pure function of the job stream (no eviction noise). An
// entry costs a few hundred bytes, so even a year-scale campaign's
// working set is small.
func NewPricingCache(maxEntries int) *PricingCache {
	return &PricingCache{
		max:     maxEntries,
		entries: make(map[pricingKey]*list.Element),
	}
}

// lookup returns the priced program for a key, if present.
func (c *PricingCache) lookup(key pricingKey) (pricedProgram, bool) {
	if c == nil {
		return pricedProgram{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return pricedProgram{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(cacheSlot).val, true
}

// store inserts a priced program, evicting the least recently used
// entry when the cache is bounded and full.
func (c *PricingCache) store(key pricingKey, val pricedProgram) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(cacheSlot{key: key, val: val})
	if c.max > 0 && len(c.entries) > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(cacheSlot).key)
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *PricingCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (c *PricingCache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of cached priced programs.
func (c *PricingCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
