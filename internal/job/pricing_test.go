package job_test

import (
	"sync"
	"testing"

	"frontiersim/internal/gpu"
	"frontiersim/internal/job"
	"frontiersim/internal/machine"
	"frontiersim/internal/units"
)

// richProgram exercises every phase kind pricing touches: roofline
// compute, node-local and fabric-spanning collectives (contiguous and
// strided groups), point-to-point, halo, bulk I/O, and a checkpoint.
func richProgram(env *job.Env, nodes, iters int) *job.Program {
	ppn := env.Node.Devices
	ranks := nodes * ppn
	return &job.Program{
		Name: "rich", Class: "test", Nodes: nodes, PPN: ppn, Iterations: iters,
		Setup: []job.Phase{
			{Name: "read", Kind: job.IO, Read: 64 * units.GiB},
			{Name: "warm", Kind: job.Compute, Flops: 1e15, Bytes: 2 * units.GiB},
		},
		Loop: []job.Phase{
			{Name: "work", Kind: job.Compute, Flops: 5e14, Precision: gpu.FP32, Efficiency: 0.7},
			{Name: "tp", Kind: job.Collective, Op: job.AllGather, Payload: 64 * units.MiB, Group: job.Group{Size: ppn}},
			{Name: "dp", Kind: job.Collective, Op: job.Allreduce, Payload: 128 * units.MiB, Group: job.Group{Size: ranks / ppn, Stride: ppn}},
			{Name: "pipe", Kind: job.Collective, Op: job.SendRecv, Payload: 16 * units.MiB},
			{Name: "halo", Kind: job.Collective, Op: job.Halo, Payload: 4 * units.MiB},
			{Name: "ckpt", Kind: job.Checkpoint, Write: 256 * units.GiB},
		},
	}
}

func bindOrFatal(t *testing.T, env *job.Env, p *job.Program, nodes []int) *job.Bound {
	t.Helper()
	b, err := env.Bind(p, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sameTimes(a, b []units.Seconds) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A cache-served Bound must be bit-identical to a cold Bind — same
// per-phase times, same Total — including when the hit serves a
// different iteration count than the entry was stored with.
func TestPricingCacheBitIdentical(t *testing.T) {
	cold := testEnv(t)
	warm := testEnv(t)
	warm.Cache = job.NewPricingCache(0)
	warm.CacheKey = "test-machine"

	placements := [][]int{
		contiguous(4),
		warm.SpreadPlacement(4),
		{1, 2, 5, 9}, // spans groups unevenly
	}
	for _, iters := range []int{1, 7, 1000} {
		p := richProgram(cold, 4, iters)
		for _, nodes := range placements {
			want := bindOrFatal(t, cold, p, nodes)
			for pass := 0; pass < 2; pass++ { // miss then hit
				got := bindOrFatal(t, warm, p, nodes)
				if got.Total != want.Total {
					t.Fatalf("iters=%d pass=%d: Total %v != cold %v", iters, pass, got.Total, want.Total)
				}
				if !sameTimes(got.SetupTimes, want.SetupTimes) || !sameTimes(got.LoopTimes, want.LoopTimes) {
					t.Fatalf("iters=%d pass=%d: phase times diverge from cold bind", iters, pass)
				}
			}
		}
	}
	if hits, _ := warm.Cache.Stats(); hits == 0 {
		t.Error("no cache hits recorded across repeated binds")
	}
}

// Placements isomorphic under group relabeling share a signature; a
// different group interleaving (comm-group layout) does not, and
// placements spanning different group counts price differently.
func TestPlacementSignatureCanonicalization(t *testing.T) {
	env := testEnv(t) // Scaled(4,4,4): 16 nodes, 4 per group
	sig := func(nodes []int) job.Sig {
		s, ok := env.PlacementSignature(nodes)
		if !ok {
			t.Fatalf("signature rejected in-range placement %v", nodes)
		}
		return s
	}
	a := sig([]int{0, 1, 4}) // groups 0,0,1
	b := sig([]int{4, 5, 8}) // groups 1,1,2 — isomorphic to a
	c := sig([]int{0, 4, 5}) // groups 0,1,1 — same occupancy multiset, different layout
	if a != b {
		t.Error("isomorphic placements (relabeled groups) do not share a signature")
	}
	if a == c {
		t.Error("different group interleavings share a signature (occupancy multiset is not a sound key)")
	}

	if s1, s2 := sig([]int{0, 1, 2}), sig([]int{0, 4, 8}); s1 == s2 {
		t.Error("packed and spanning placements share a signature")
	}
	if _, ok := env.PlacementSignature([]int{0, 1 << 20}); ok {
		t.Error("out-of-machine node accepted by the signature")
	}

	// The layout distinction is not pedantry: at a scale where the
	// global taper binds, packed vs spread placements of the same job
	// genuinely price differently — so they must not share a key.
	spec := machine.Scaled(8, 16, 8)
	f, err := spec.NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	big, err := spec.JobEnv(f)
	if err != nil {
		t.Fatal(err)
	}
	p := &job.Program{Name: "wide", Nodes: 128, PPN: big.Node.Devices, Iterations: 5,
		Loop: []job.Phase{{Kind: job.Collective, Op: job.Allreduce, Payload: 128 * units.MiB}}}
	packed := bindOrFatal(t, big, p, contiguous(128))
	spread := bindOrFatal(t, big, p, big.SpreadPlacement(128))
	if packed.Total == spread.Total {
		t.Error("packed and spread 128-node placements priced identically; layout does not matter at this scale")
	}
	ps, _ := big.PlacementSignature(contiguous(128))
	ss, _ := big.PlacementSignature(big.SpreadPlacement(128))
	if ps == ss {
		t.Error("packed and spread 128-node placements share a signature")
	}
}

// The program signature covers pricing inputs only: comm-group strides
// change it, iteration counts and labels do not.
func TestProgramSignatureFields(t *testing.T) {
	env := testEnv(t)
	base := richProgram(env, 4, 10)
	if job.ProgramSignature(base) != job.ProgramSignature(richProgram(env, 4, 10)) {
		t.Error("identical programs hash differently")
	}
	iter := richProgram(env, 4, 999)
	if job.ProgramSignature(base) != job.ProgramSignature(iter) {
		t.Error("iteration count leaked into the program signature")
	}
	named := richProgram(env, 4, 10)
	named.Name, named.Class = "other", "other"
	if job.ProgramSignature(base) != job.ProgramSignature(named) {
		t.Error("name/class leaked into the program signature")
	}
	strided := richProgram(env, 4, 10)
	strided.Loop[2].Group.Stride = 1
	strided.Loop[2].Group.Size = env.Node.Devices
	if job.ProgramSignature(base) == job.ProgramSignature(strided) {
		t.Error("different comm-group strides share a program signature")
	}
	work := richProgram(env, 4, 10)
	work.Loop[0].Flops *= 2
	if job.ProgramSignature(base) == job.ProgramSignature(work) {
		t.Error("different phase work shares a program signature")
	}
}

// A bounded cache evicts least-recently-used entries; a nil cache is a
// valid always-miss cache; both stay safe under error paths.
func TestPricingCacheEvictionAndNil(t *testing.T) {
	env := testEnv(t)
	env.Cache = job.NewPricingCache(1)
	p := richProgram(env, 3, 5)
	a, b := []int{0, 1, 2}, []int{0, 4, 8}
	bindOrFatal(t, env, p, a) // miss, stored
	bindOrFatal(t, env, p, b) // miss, stored, evicts a
	if n := env.Cache.Len(); n != 1 {
		t.Fatalf("bounded cache holds %d entries, want 1", n)
	}
	bindOrFatal(t, env, p, b) // hit
	bindOrFatal(t, env, p, a) // miss again: was evicted
	hits, misses := env.Cache.Stats()
	if hits != 1 || misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", hits, misses)
	}
	if r := env.Cache.HitRate(); r != 0.25 {
		t.Errorf("HitRate = %v, want 0.25", r)
	}

	var nilCache *job.PricingCache
	if h, m := nilCache.Stats(); h != 0 || m != 0 {
		t.Error("nil cache reports activity")
	}
	if nilCache.HitRate() != 0 || nilCache.Len() != 0 {
		t.Error("nil cache reports state")
	}

	// An invalid placement must surface Bind's canonical error, cache
	// or no cache, and must not poison the cache.
	bad := []int{0, 1, 1 << 20}
	if _, err := env.Bind(p, bad); err == nil {
		t.Error("cached env accepted an out-of-machine placement")
	}
	plain := testEnv(t)
	if _, err := plain.Bind(p, bad); err == nil {
		t.Error("uncached env accepted an out-of-machine placement")
	}
}

// The cache is safe for concurrent binders (run under -race in CI).
func TestPricingCacheConcurrent(t *testing.T) {
	env := testEnv(t)
	env.Cache = job.NewPricingCache(2) // small: forces concurrent eviction
	p := richProgram(env, 3, 5)
	placements := [][]int{{0, 1, 2}, {0, 4, 8}, {0, 1, 4}, {4, 5, 8}}
	want := make([]units.Seconds, len(placements))
	coldEnv := testEnv(t)
	for i, nodes := range placements {
		want[i] = bindOrFatal(t, coldEnv, p, nodes).Total
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				nodes := placements[i%len(placements)]
				b, err := env.Bind(p, nodes)
				if err != nil {
					t.Error(err)
					return
				}
				if b.Total != want[i%len(placements)] {
					t.Errorf("concurrent bind diverged on %v", nodes)
					return
				}
			}
		}()
	}
	wg.Wait()
}
