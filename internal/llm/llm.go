// Package llm builds phase-structured training-step programs for
// transformer language models — the ROADMAP's LLM workload family — on
// top of the job-program layer: 3-D (tensor/pipeline/data) parallelism
// whose collective payloads are sized from the model's GEMM shards and
// whose microbatch is bounded by device HBM capacity. Nothing here knows
// about placement: the program records *what* the step moves, and the
// scheduler's granted allocation prices it through mpi.Comm, so
// tokens/sec responds to topology and link-rate what-ifs for free.
package llm

import (
	"fmt"

	"frontiersim/internal/gpu"
	"frontiersim/internal/job"
	"frontiersim/internal/units"
)

// Model is a decoder-only transformer sized by its defining dimensions.
type Model struct {
	Name   string
	Layers int
	Hidden int
	Vocab  int
	SeqLen int
}

// Params is the parameter count: per layer, the attention block holds
// 4H² weights (QKV + output projection) and the 4x-expansion MLP 8H²,
// plus the tied vocabulary embedding.
func (m Model) Params() float64 {
	h := float64(m.Hidden)
	return float64(m.Layers)*12*h*h + float64(m.Vocab)*h
}

// Parallelism is the 3-D decomposition: TP ranks shard each layer's
// GEMMs, PP ranks split the layer stack into stages, DP ranks replicate
// the model over the data. Ranks are laid out TP-fastest (tensor groups
// pack inside a node), then PP, then DP.
type Parallelism struct {
	TP, PP, DP int
}

// Ranks is the total rank count.
func (p Parallelism) Ranks() int { return p.TP * p.PP * p.DP }

// Config sizes one training step.
type Config struct {
	Model Model
	Par   Parallelism
	// PPN is ranks per node (devices per node).
	PPN int
	// GlobalBatch is the step's batch in sequences across all DP replicas.
	GlobalBatch int
	// Node bounds the microbatch: HBM capacity per device.
	Node job.NodeModel
	// MFU is the model flops utilisation of the GEMM shards (0 means a
	// conservative 0.5 — roughly what large dense training sustains).
	MFU float64
}

// Training memory per parameter on a mixed-precision Adam stack: FP16
// weights and gradients (2+2), FP32 master weights (4), and the two
// FP32 optimizer moments (8).
const bytesPerParam = 18

// bytesPerActivation is the activation memory per token per layer in
// units of Hidden, the standard ~34·s·b·h estimate without recomputation.
const bytesPerActivation = 34

// Step is a sized training step: the phase-structured program plus the
// derived quantities campaigns report.
type Step struct {
	Program *job.Program
	// Nodes is the allocation the program needs.
	Nodes int
	// MicroBatch is sequences per microbatch per DP replica, bounded by
	// HBM; MicroSteps is the pipeline depth per training step.
	MicroBatch int
	MicroSteps int
	// TokensPerStep is GlobalBatch · SeqLen.
	TokensPerStep float64
	// PipelineEff is 1 minus the pipeline bubble fraction.
	PipelineEff float64
	// ParamsPerDevice is the model shard each device holds.
	ParamsPerDevice float64
	// CheckpointBytes is one FP16 copy of the whole model, the aggregate
	// defensive write WithSteps schedules.
	CheckpointBytes units.Bytes
}

// TrainStep sizes one training step of the model under the given
// parallelism on the given node hardware. It fails when the shard does
// not fit HBM even at microbatch 1, or the decomposition does not divide
// the model.
func TrainStep(cfg Config) (*Step, error) {
	m, par := cfg.Model, cfg.Par
	if par.TP < 1 || par.PP < 1 || par.DP < 1 {
		return nil, fmt.Errorf("llm: parallelism %+v must be positive", par)
	}
	if m.Layers%par.PP != 0 {
		return nil, fmt.Errorf("llm: %d layers do not divide into %d pipeline stages", m.Layers, par.PP)
	}
	if m.Hidden%par.TP != 0 {
		return nil, fmt.Errorf("llm: hidden %d does not shard %d ways", m.Hidden, par.TP)
	}
	ranks := par.Ranks()
	if cfg.PPN < 1 || ranks%cfg.PPN != 0 {
		return nil, fmt.Errorf("llm: %d ranks do not fill nodes of %d devices", ranks, cfg.PPN)
	}
	if cfg.GlobalBatch < par.DP {
		return nil, fmt.Errorf("llm: global batch %d smaller than %d DP replicas", cfg.GlobalBatch, par.DP)
	}
	nodes := ranks / cfg.PPN
	mfu := cfg.MFU
	if mfu <= 0 || mfu > 1 {
		mfu = 0.5
	}

	// HBM bound: static shard (params, grads, optimizer) plus activation
	// memory linear in the microbatch. 90% of capacity is usable.
	paramsPerDevice := m.Params() / float64(par.TP*par.PP)
	static := paramsPerDevice * bytesPerParam
	layersPerStage := m.Layers / par.PP
	actPerSeq := float64(bytesPerActivation) * float64(m.SeqLen) * float64(m.Hidden) *
		float64(layersPerStage) / float64(par.TP)
	usable := 0.9*float64(cfg.Node.MemCap) - static
	if usable < actPerSeq {
		return nil, fmt.Errorf("llm: %s shard (%.1f GB static + %.2f GB/seq) exceeds %.0f GB HBM at TP=%d PP=%d",
			m.Name, static/1e9, actPerSeq/1e9, float64(cfg.Node.MemCap)/1e9, par.TP, par.PP)
	}
	micro := int(usable / actPerSeq)
	perReplica := (cfg.GlobalBatch + par.DP - 1) / par.DP
	if micro > perReplica {
		micro = perReplica
	}
	microSteps := (perReplica + micro - 1) / micro
	bubble := float64(par.PP-1) / float64(microSteps+par.PP-1)
	pipeEff := 1 - bubble

	// Compute: 6 flops per parameter per token (forward + backward),
	// sharded over TP·PP·DP; the pipeline bubble stretches it.
	tokensPerStep := float64(cfg.GlobalBatch) * float64(m.SeqLen)
	flopsPerDevice := 6 * m.Params() * tokensPerStep / float64(ranks)

	// Collective payloads per rank per step, FP16 on the wire.
	microTokens := float64(micro) * float64(m.SeqLen)
	actBytes := microTokens * float64(m.Hidden) * 2
	// Megatron TP: two all-reduces forward and two backward per layer.
	tpBytes := units.Bytes(4 * float64(layersPerStage) * actBytes * float64(microSteps))
	// PP: activations forward and gradients backward per microbatch.
	ppBytes := units.Bytes(2 * actBytes * float64(microSteps))
	// DP: one gradient all-reduce of the FP16 shard per step.
	dpBytes := units.Bytes(paramsPerDevice * 2)

	loop := []job.Phase{
		{Name: "fwd-bwd-gemm", Kind: job.Compute, Precision: gpu.FP16, MatrixCores: true,
			Flops: flopsPerDevice, Efficiency: mfu * pipeEff},
	}
	if par.TP > 1 {
		loop = append(loop, job.Phase{Name: "tp-allreduce", Kind: job.Collective,
			Op: job.Allreduce, Payload: tpBytes, Group: job.Group{Size: par.TP}})
	}
	if par.PP > 1 {
		loop = append(loop, job.Phase{Name: "pp-sendrecv", Kind: job.Collective,
			Op: job.SendRecv, Payload: ppBytes, PeerStride: par.TP})
	}
	if par.DP > 1 {
		loop = append(loop, job.Phase{Name: "dp-gradsync", Kind: job.Collective,
			Op: job.Allreduce, Payload: dpBytes,
			Group: job.Group{Size: par.DP, Stride: par.TP * par.PP}})
	}
	prog := &job.Program{
		Name:  fmt.Sprintf("%s-tp%d-pp%d-dp%d", m.Name, par.TP, par.PP, par.DP),
		Class: "llm-train",
		Nodes: nodes,
		PPN:   cfg.PPN,
		Setup: []job.Phase{
			{Name: "restore-weights", Kind: job.IO, Read: units.Bytes(m.Params() * 2)},
		},
		Iterations: 1,
		Loop:       loop,
	}
	return &Step{
		Program:         prog,
		Nodes:           nodes,
		MicroBatch:      micro,
		MicroSteps:      microSteps,
		TokensPerStep:   tokensPerStep,
		PipelineEff:     pipeEff,
		ParamsPerDevice: paramsPerDevice,
		CheckpointBytes: units.Bytes(m.Params() * 2),
	}, nil
}

// WithSteps returns a copy of the step's program looping for the given
// number of training steps, checkpointing every ckptEvery steps (0
// disables checkpointing). The checkpoint writes one FP16 copy of the
// model — the TP·PP shards are unique, DP replicas share them.
func (s *Step) WithSteps(steps, ckptEvery int) *job.Program {
	p := *s.Program
	p.Iterations = steps
	if ckptEvery > 0 {
		return job.Checkpointed(&p, s.CheckpointBytes, ckptEvery)
	}
	return &p
}

// AutoParallelism picks a 3-D decomposition for a node count: tensor
// parallelism fills the node (TP = ppn, the high-bandwidth domain),
// pipeline stages take the largest power of two ≤ 8 that divides both
// the layer count and the node count, and data parallelism covers the
// rest.
func AutoParallelism(m Model, nodes, ppn int) Parallelism {
	pp := 1
	for _, cand := range []int{8, 4, 2} {
		if m.Layers%cand == 0 && nodes%cand == 0 {
			pp = cand
			break
		}
	}
	return Parallelism{TP: ppn, PP: pp, DP: nodes / pp}
}

// AutoStep sizes a training step for an arbitrary node count using
// AutoParallelism and a global batch of 64 sequences per DP replica —
// deep enough that the pipeline bubble stays modest.
func AutoStep(m Model, nodes, ppn int, node job.NodeModel) (*Step, error) {
	par := AutoParallelism(m, nodes, ppn)
	return TrainStep(Config{
		Model:       m,
		Par:         par,
		PPN:         ppn,
		GlobalBatch: 64 * par.DP,
		Node:        node,
	})
}

// Frontier175B is a GPT-3-class reference model sized to exercise the
// full machine.
func Frontier175B() Model {
	return Model{Name: "gpt-175b", Layers: 96, Hidden: 12288, Vocab: 51200, SeqLen: 2048}
}

// Frontier22B is a mid-size model that fits modest allocations.
func Frontier22B() Model {
	return Model{Name: "gpt-22b", Layers: 48, Hidden: 6144, Vocab: 51200, SeqLen: 2048}
}
