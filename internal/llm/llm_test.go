package llm_test

import (
	"strings"
	"testing"

	"frontiersim/internal/job"
	"frontiersim/internal/llm"
	"frontiersim/internal/machine"
	"frontiersim/internal/units"
)

func frontierNode() job.NodeModel { return machine.Frontier().NodeModel() }

func TestTrainStepShapes(t *testing.T) {
	s, err := llm.TrainStep(llm.Config{
		Model: llm.Frontier175B(),
		Par:   llm.Parallelism{TP: 8, PP: 8, DP: 4},
		PPN:   8, GlobalBatch: 256, Node: frontierNode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 8*8*4/8 {
		t.Errorf("Nodes = %d, want 32", s.Nodes)
	}
	if s.TokensPerStep != 256*2048 {
		t.Errorf("TokensPerStep = %g", s.TokensPerStep)
	}
	if s.PipelineEff <= 0 || s.PipelineEff > 1 {
		t.Errorf("PipelineEff = %g", s.PipelineEff)
	}
	if err := s.Program.Validate(); err != nil {
		t.Fatalf("generated program invalid: %v", err)
	}
	// All three parallel dimensions > 1: expect all three collectives.
	var names []string
	for _, ph := range s.Program.Loop {
		names = append(names, ph.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"fwd-bwd-gemm", "tp-allreduce", "pp-sendrecv", "dp-gradsync"} {
		if !strings.Contains(joined, want) {
			t.Errorf("loop %v missing phase %s", names, want)
		}
	}
}

func TestTrainStepDegenerateDimsDropPhases(t *testing.T) {
	s, err := llm.TrainStep(llm.Config{
		Model: llm.Frontier22B(),
		Par:   llm.Parallelism{TP: 8, PP: 1, DP: 2},
		PPN:   8, GlobalBatch: 32, Node: frontierNode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range s.Program.Loop {
		if ph.Name == "pp-sendrecv" {
			t.Error("PP=1 still emits a pipeline phase")
		}
	}
}

func TestTrainStepRejectsBadDecompositions(t *testing.T) {
	node := frontierNode()
	cases := []llm.Config{
		// PP does not divide the layer stack.
		{Model: llm.Frontier175B(), Par: llm.Parallelism{TP: 8, PP: 7, DP: 1}, PPN: 8, GlobalBatch: 8, Node: node},
		// TP does not shard the hidden dim.
		{Model: llm.Frontier175B(), Par: llm.Parallelism{TP: 5, PP: 1, DP: 1}, PPN: 5, GlobalBatch: 8, Node: node},
		// Ranks do not fill nodes.
		{Model: llm.Frontier175B(), Par: llm.Parallelism{TP: 4, PP: 3, DP: 1}, PPN: 8, GlobalBatch: 8, Node: node},
		// Batch smaller than DP.
		{Model: llm.Frontier175B(), Par: llm.Parallelism{TP: 8, PP: 8, DP: 8}, PPN: 8, GlobalBatch: 4, Node: node},
		// 175B without sharding cannot fit one device's HBM.
		{Model: llm.Frontier175B(), Par: llm.Parallelism{TP: 1, PP: 1, DP: 8}, PPN: 8, GlobalBatch: 64, Node: node},
	}
	for i, cfg := range cases {
		if _, err := llm.TrainStep(cfg); err == nil {
			t.Errorf("case %d: accepted %+v", i, cfg.Par)
		}
	}
}

// The HBM bound is real: shrinking device memory shrinks the microbatch
// and deepens the pipeline.
func TestMicroBatchBoundedByHBM(t *testing.T) {
	node := frontierNode()
	big, err := llm.TrainStep(llm.Config{
		Model: llm.Frontier22B(), Par: llm.Parallelism{TP: 8, PP: 2, DP: 1},
		PPN: 8, GlobalBatch: 64, Node: node,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.MemCap /= 2
	small, err := llm.TrainStep(llm.Config{
		Model: llm.Frontier22B(), Par: llm.Parallelism{TP: 8, PP: 2, DP: 1},
		PPN: 8, GlobalBatch: 64, Node: node,
	})
	if err != nil {
		t.Fatal(err)
	}
	if small.MicroBatch >= big.MicroBatch {
		t.Errorf("half HBM: microbatch %d, full HBM %d", small.MicroBatch, big.MicroBatch)
	}
	if small.MicroSteps <= big.MicroSteps {
		t.Errorf("half HBM: microsteps %d, full HBM %d", small.MicroSteps, big.MicroSteps)
	}
}

func TestWithStepsCheckpointing(t *testing.T) {
	s, err := llm.AutoStep(llm.Frontier22B(), 16, 8, frontierNode())
	if err != nil {
		t.Fatal(err)
	}
	plain := s.WithSteps(100, 0)
	if plain.Iterations != 100 || len(plain.Loop) != len(s.Program.Loop) {
		t.Errorf("plain WithSteps reshaped the loop: %d iterations, %d phases", plain.Iterations, len(plain.Loop))
	}
	ck := s.WithSteps(100, 10)
	last := ck.Loop[len(ck.Loop)-1]
	if last.Kind != job.Checkpoint || last.Write != s.CheckpointBytes {
		t.Errorf("checkpoint phase missing or mis-sized: %+v", last)
	}
	if s.CheckpointBytes != units.Bytes(llm.Frontier22B().Params()*2) {
		t.Errorf("CheckpointBytes %v != one FP16 model copy", s.CheckpointBytes)
	}
}

func TestAutoParallelismCovers(t *testing.T) {
	m := llm.Frontier175B()
	for _, nodes := range []int{1, 2, 6, 16, 64, 500, 1024} {
		par := llm.AutoParallelism(m, nodes, 8)
		if par.Ranks() != nodes*8 {
			t.Errorf("%d nodes: decomposition %+v covers %d ranks, want %d", nodes, par, par.Ranks(), nodes*8)
		}
		if m.Layers%par.PP != 0 {
			t.Errorf("%d nodes: PP %d does not divide %d layers", nodes, par.PP, m.Layers)
		}
	}
}

func TestParamsCount(t *testing.T) {
	// GPT-3 175B: 96 layers, h=12288 → ~175e9 params.
	p := llm.Frontier175B().Params()
	if p < 170e9 || p > 180e9 {
		t.Errorf("Frontier175B params = %g, want ~175e9", p)
	}
}
