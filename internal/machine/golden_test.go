package machine

import (
	"fmt"
	"reflect"
	"testing"

	"frontiersim/internal/fabric"
	"frontiersim/internal/hpl"
	"frontiersim/internal/power"
	"frontiersim/internal/resilience"
	"frontiersim/internal/storage"
	"frontiersim/internal/sysmgmt"
	"frontiersim/internal/units"
)

// This file pins every spec derivation to literal reference copies of
// the constructors the machine-spec layer replaced. The references are
// the pre-refactor values verbatim; if a derivation drifts by a single
// bit, reflect.DeepEqual catches it.

func refFrontierFabricConfig() fabric.Config {
	return fabric.Config{
		Name:                 "frontier-slingshot11",
		ComputeGroups:        74,
		IOGroups:             5,
		MgmtGroups:           1,
		ComputeGroupSwitches: 32,
		TORGroupSwitches:     16,
		EndpointsPerSwitch:   16,
		NICsPerNode:          4,
		LinkRate:             25 * units.GBps,
		EndpointEfficiency:   0.70,
		ComputeComputeLinks:  4,
		ComputeIOLinks:       2,
		ComputeMgmtLinks:     2,
		IOIOLinks:            10,
		IOMgmtLinks:          6,
		SwitchLatency:        200 * units.Nanosecond,
		EndpointLatency:      650 * units.Nanosecond,
	}
}

func refScaledFabricConfig(g, sw, e int) fabric.Config {
	c := refFrontierFabricConfig()
	c.Name = fmt.Sprintf("scaled-dragonfly-%dx%dx%d", g, sw, e)
	c.ComputeGroups = g
	c.IOGroups = 0
	c.MgmtGroups = 0
	c.ComputeGroupSwitches = sw
	c.EndpointsPerSwitch = e
	return c
}

func refSummitClosConfig() fabric.ClosConfig {
	return fabric.ClosConfig{
		Name:               "summit-edr-fattree",
		Leaves:             256,
		EndpointsPerLeaf:   36,
		NICsPerNode:        2,
		LinkRate:           12.5 * units.GBps,
		EndpointEfficiency: 0.68,
		SwitchLatency:      300 * units.Nanosecond,
		EndpointLatency:    900 * units.Nanosecond,
	}
}

func refFrontierHPLSpec() hpl.MachineSpec {
	return hpl.MachineSpec{
		Nodes:             9472,
		GCDsPerNode:       8,
		VectorFP64PerGCD:  23.95 * units.TeraFlops,
		HBMPerGCD:         1.635 * units.TBps,
		HBMCapacityPerGCD: 64 * units.GiB,
	}
}

func refFrontierPower() power.Machine {
	return power.Machine{
		Nodes: 9472,
		NodeHPL: power.NodePower{
			CPU:    240,
			GPUs:   4 * 380,
			Memory: 45,
			NIC:    4 * 25,
			NVMe:   2 * 9,
			Misc:   125,
		},
		NodeIdle: power.NodePower{
			CPU:    90,
			GPUs:   4 * 90,
			Memory: 25,
			NIC:    4 * 15,
			NVMe:   2 * 5,
			Misc:   80,
		},
		Switches:        74*32 + 6*16,
		SwitchPower:     250,
		StorageOverhead: 450 * units.Kilowatt,
		CoolingFactor:   1.03,
	}
}

func refFrontierResilience() resilience.Model {
	return resilience.Model{Classes: []resilience.ComponentClass{
		{Name: "hbm-uncorrectable", Count: 303104, MTBF: 3.4e6 * units.Hour, Interrupting: true},
		{Name: "power-supply", Count: 74 * 64, MTBF: 9.5e4 * units.Hour, Interrupting: true},
		{Name: "ddr4-uncorrectable", Count: 75776, MTBF: 6.0e6 * units.Hour, Interrupting: true},
		{Name: "gpu", Count: 37888, MTBF: 2.2e6 * units.Hour, Interrupting: true},
		{Name: "cpu", Count: 9472, MTBF: 3.0e6 * units.Hour, Interrupting: true},
		{Name: "nic", Count: 37888, MTBF: 5.0e6 * units.Hour, Interrupting: true},
		{Name: "switch", Count: 2464, MTBF: 1.5e6 * units.Hour, Interrupting: false},
		{Name: "cable", Count: 40000, MTBF: 8.0e6 * units.Hour, Interrupting: false},
		{Name: "nvme", Count: 18944, MTBF: 8.0e6 * units.Hour, Interrupting: true},
	}}
}

func refFrontierSSU() storage.SSU {
	return storage.SSU{
		Controllers: 2,
		NICsPerCtrl: 2,
		NICRate:     25 * units.GBps,
		Flash: storage.DRAIDGroup{
			Data: 4, Parity: 2, Spares: 0, Drives: 24,
			DriveCapacity: 3.2 * units.TB,
			DriveBW:       1.95 * units.GBps,
		},
		Disk: storage.DRAIDGroup{
			Data: 8, Parity: 2, Spares: 2, Drives: 212,
			DriveCapacity: 18 * units.TB,
			DriveBW:       117 * units.MBps,
		},
	}
}

func refFrontierNodeLocal() *storage.NodeLocalStore {
	nvme := storage.NVMeDevice{
		Capacity:     1.75 * units.TB,
		SeqRead:      4 * units.GBps,
		SeqWrite:     2 * units.GBps,
		RandReadIOPS: 800e3,
	}
	return &storage.NodeLocalStore{
		Devices:         []storage.NVMeDevice{nvme, nvme},
		ReadEfficiency:  0.8875,
		WriteEfficiency: 1.05,
		IOPSEfficiency:  0.9875,
	}
}

func refFrontierOrion() *storage.Orion {
	ssu := refFrontierSSU()
	n := 225
	o := &storage.Orion{
		SSUs:                n,
		SSU:                 ssu,
		DoMLimit:            256 * units.KB,
		PFLPerformanceLimit: 8 * units.MB,
		Tiers:               map[storage.TierKind]storage.Tier{},
	}
	o.Tiers[storage.MetadataTier] = storage.Tier{
		Kind:     storage.MetadataTier,
		Capacity: 10 * units.PB,
		Read:     0.8 * units.TBps,
		Write:    0.4 * units.TBps,
		ReadEff:  0.9, WriteEff: 0.9,
	}
	o.Tiers[storage.PerformanceTier] = storage.Tier{
		Kind:     storage.PerformanceTier,
		Capacity: ssu.Flash.UsableCapacity() * units.Bytes(n),
		Read:     10 * units.TBps,
		Write:    10 * units.TBps,
		ReadEff:  1.17, WriteEff: 0.94,
	}
	o.Tiers[storage.CapacityTier] = storage.Tier{
		Kind:     storage.CapacityTier,
		Capacity: ssu.Disk.UsableCapacity() * units.Bytes(n),
		Read:     ssu.Disk.StreamBandwidth(false) * units.BytesPerSecond(n),
		Write:    ssu.Disk.StreamBandwidth(true) * units.BytesPerSecond(n),
		ReadEff:  0.90, WriteEff: 0.97,
	}
	return o
}

func refSysmgmtConfig() sysmgmt.Config {
	return sysmgmt.Config{ComputeNodes: 9472, Leaders: 21, DVSNodes: 12, SlurmCtls: 2}
}

// refPlatform mirrors the old apps.<Machine>() constructors minus the
// fabric closure (fabrics are compared separately by config).
type refPlatform struct {
	Name           string
	Year           int
	Nodes          int
	DevicesPerNode int
	FP64Dense      units.Flops
	FP32Dense      units.Flops
	FP16Dense      units.Flops
	MemBW          units.BytesPerSecond
	MemCap         units.Bytes
	GPUDirect      bool
	HostStagingBW  units.BytesPerSecond
}

func refPlatforms() map[string]refPlatform {
	return map[string]refPlatform{
		"frontier": {
			Name: "frontier", Year: 2022, Nodes: 9472, DevicesPerNode: 8,
			FP64Dense: 33.8 * units.TeraFlops, FP32Dense: 24.1 * units.TeraFlops, FP16Dense: 111.2 * units.TeraFlops,
			MemBW: 1337 * units.GBps, MemCap: 64 * units.GiB, GPUDirect: true,
		},
		"summit": {
			Name: "summit", Year: 2018, Nodes: 4608, DevicesPerNode: 6,
			FP64Dense: 6.7 * units.TeraFlops, FP32Dense: 13.5 * units.TeraFlops, FP16Dense: 95 * units.TeraFlops,
			MemBW: 790 * units.GBps, MemCap: 16 * units.GiB, GPUDirect: false, HostStagingBW: 10.5 * units.GBps,
		},
		"titan": {
			Name: "titan", Year: 2012, Nodes: 18688, DevicesPerNode: 1,
			FP64Dense: 1.1 * units.TeraFlops, FP32Dense: 2.9 * units.TeraFlops, FP16Dense: 2.9 * units.TeraFlops,
			MemBW: 180 * units.GBps, MemCap: 6 * units.GiB, GPUDirect: false, HostStagingBW: 5 * units.GBps,
		},
		"mira": {
			Name: "mira", Year: 2012, Nodes: 49152, DevicesPerNode: 1,
			FP64Dense: 0.17 * units.TeraFlops, FP32Dense: 0.17 * units.TeraFlops, FP16Dense: 0.17 * units.TeraFlops,
			MemBW: 28 * units.GBps, MemCap: 16 * units.GiB, GPUDirect: true,
		},
		"theta": {
			Name: "theta", Year: 2017, Nodes: 4392, DevicesPerNode: 1,
			FP64Dense: 1.6 * units.TeraFlops, FP32Dense: 2.2 * units.TeraFlops, FP16Dense: 2.2 * units.TeraFlops,
			MemBW: 380 * units.GBps, MemCap: 16 * units.GiB, GPUDirect: true,
		},
		"cori": {
			Name: "cori", Year: 2016, Nodes: 9688, DevicesPerNode: 1,
			FP64Dense: 1.7 * units.TeraFlops, FP32Dense: 2.4 * units.TeraFlops, FP16Dense: 2.4 * units.TeraFlops,
			MemBW: 390 * units.GBps, MemCap: 16 * units.GiB, GPUDirect: true,
		},
	}
}

// refBaselineClos mirrors the old apps clos() fabric helper.
func refBaselineClos(name string, leaves, perLeaf, nicsPerNode int, rate units.BytesPerSecond, eff float64) fabric.ClosConfig {
	return fabric.ClosConfig{
		Name:               name,
		Leaves:             leaves,
		EndpointsPerLeaf:   perLeaf,
		NICsPerNode:        nicsPerNode,
		LinkRate:           rate,
		EndpointEfficiency: eff,
		SwitchLatency:      400 * units.Nanosecond,
		EndpointLatency:    1200 * units.Nanosecond,
	}
}

func TestGoldenFrontierFabricConfig(t *testing.T) {
	got, err := Frontier().FabricConfig()
	if err != nil {
		t.Fatal(err)
	}
	if want := refFrontierFabricConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("FabricConfig drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestGoldenScaledFabricConfig(t *testing.T) {
	got, err := Scaled(6, 8, 4).FabricConfig()
	if err != nil {
		t.Fatal(err)
	}
	if want := refScaledFabricConfig(6, 8, 4); !reflect.DeepEqual(got, want) {
		t.Errorf("Scaled FabricConfig drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestGoldenSummitClosConfig(t *testing.T) {
	got, err := Summit().ClosConfig()
	if err != nil {
		t.Fatal(err)
	}
	if want := refSummitClosConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("ClosConfig drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestGoldenFrontierHPLSpec(t *testing.T) {
	got, err := Frontier().HPLSpec()
	if err != nil {
		t.Fatal(err)
	}
	if want := refFrontierHPLSpec(); !reflect.DeepEqual(got, want) {
		t.Errorf("HPLSpec drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestGoldenSummitHPLSpec(t *testing.T) {
	got, err := Summit().HPLSpec()
	if err != nil {
		t.Fatal(err)
	}
	want := hpl.MachineSpec{
		Nodes:             4608,
		GCDsPerNode:       6,
		VectorFP64PerGCD:  7.8 * units.TeraFlops,
		HBMPerGCD:         900 * units.GBps,
		HBMCapacityPerGCD: 16 * units.GiB,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Summit HPLSpec drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestGoldenFrontierPower(t *testing.T) {
	got, err := Frontier().PowerMachine()
	if err != nil {
		t.Fatal(err)
	}
	if want := refFrontierPower(); !reflect.DeepEqual(got, want) {
		t.Errorf("PowerMachine drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestGoldenFrontierResilience(t *testing.T) {
	got, err := Frontier().ResilienceModel()
	if err != nil {
		t.Fatal(err)
	}
	if want := refFrontierResilience(); !reflect.DeepEqual(got, want) {
		t.Errorf("ResilienceModel drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestGoldenFrontierStorage(t *testing.T) {
	s := Frontier()
	nl, err := s.NodeLocal()
	if err != nil {
		t.Fatal(err)
	}
	if want := refFrontierNodeLocal(); !reflect.DeepEqual(nl, want) {
		t.Errorf("NodeLocal drifted:\n got %+v\nwant %+v", nl, want)
	}
	ssu, err := s.SSU()
	if err != nil {
		t.Fatal(err)
	}
	if want := refFrontierSSU(); !reflect.DeepEqual(ssu, want) {
		t.Errorf("SSU drifted:\n got %+v\nwant %+v", ssu, want)
	}
	o, err := s.Orion()
	if err != nil {
		t.Fatal(err)
	}
	if want := refFrontierOrion(); !reflect.DeepEqual(o, want) {
		t.Errorf("Orion drifted:\n got %+v\nwant %+v", o, want)
	}
}

func TestGoldenFrontierMgmt(t *testing.T) {
	got, err := Frontier().MgmtConfig()
	if err != nil {
		t.Fatal(err)
	}
	if want := refSysmgmtConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("MgmtConfig drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestGoldenPlatforms(t *testing.T) {
	refs := refPlatforms()
	for _, name := range Names() {
		p, err := PlatformByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := refs[name]
		got := refPlatform{
			Name: p.Name, Year: p.Year, Nodes: p.Nodes, DevicesPerNode: p.DevicesPerNode,
			FP64Dense: p.FP64Dense, FP32Dense: p.FP32Dense, FP16Dense: p.FP16Dense,
			MemBW: p.MemBW, MemCap: p.MemCap, GPUDirect: p.GPUDirect, HostStagingBW: p.HostStagingBW,
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s platform drifted:\n got %+v\nwant %+v", name, got, want)
		}
		if _, err := p.Fabric(); err != nil {
			t.Errorf("%s: fabric build failed: %v", name, err)
		}
	}
}

func TestGoldenBaselineFabrics(t *testing.T) {
	// The comparison machines' idealised fat trees, verbatim from the
	// old apps-package closures.
	want := map[string]fabric.ClosConfig{
		"titan": refBaselineClos("titan-gemini", 584, 32, 1, 8*units.GBps, 0.55),
		"mira":  refBaselineClos("mira-5dtorus", 1024, 48, 1, 10*units.GBps, 0.6),
		"theta": refBaselineClos("theta-aries", 122, 36, 1, 10*units.GBps, 0.8),
		"cori":  refBaselineClos("cori-aries", 270, 36, 1, 10*units.GBps, 0.8),
	}
	for name, w := range want {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.ClosConfig()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("%s baseline fabric drifted:\n got %+v\nwant %+v", name, got, w)
		}
	}
}

// TestFixturesMatchMachineSpecs closes the loop with the test fixtures
// carried by the packages below machine in the import graph: the fabric
// the spec builds equals the one the fixtures build.
func TestFixturesMatchMachineSpecs(t *testing.T) {
	sf, err := Frontier().NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fabric.NewDragonfly(refFrontierFabricConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sf.NumSwitches != rf.NumSwitches || sf.NumEndpoints != rf.NumEndpoints {
		t.Errorf("spec fabric (%d sw, %d ep) != reference fabric (%d sw, %d ep)",
			sf.NumSwitches, sf.NumEndpoints, rf.NumSwitches, rf.NumEndpoints)
	}
	if !reflect.DeepEqual(sf.Cfg, rf.Cfg) {
		t.Error("spec fabric config differs from reference")
	}
}
