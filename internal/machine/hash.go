package machine

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash returns the canonical content hash of a spec: the SHA-256 of its
// Dump rendering, hex-encoded. Dump is deterministic (fixed field order,
// fixed indentation, float64 rates that round-trip exactly), so two
// specs hash equal exactly when Dump would render them byte-identically
// — the property the campaign result cache keys on.
func Hash(s Spec) (string, error) {
	b, err := Dump(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
