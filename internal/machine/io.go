package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Dump renders the spec as canonical indented JSON, the format Load
// reads back. Dump → Load round-trips to an identical spec (all rates
// are float64, which encoding/json round-trips exactly).
func Dump(s Spec) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("machine: encoding %s: %w", s.Name, err)
	}
	return append(b, '\n'), nil
}

// Load reads and validates a spec from a JSON file. Unknown fields are
// rejected so a typo in a what-if spec fails loudly instead of silently
// keeping a default.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("machine: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("machine: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("machine: %s: %w", path, err)
	}
	return s, nil
}

// Resolve interprets a -machine argument: a built-in name ("frontier",
// "summit", …) or a path to a JSON spec file.
func Resolve(nameOrPath string) (Spec, error) {
	if s, err := ByName(nameOrPath); err == nil {
		return s, nil
	}
	if strings.ContainsAny(nameOrPath, "/.") {
		return Load(nameOrPath)
	}
	return Spec{}, fmt.Errorf("machine: unknown machine %q (built-ins: %v; or pass a JSON spec file)",
		nameOrPath, Names())
}
