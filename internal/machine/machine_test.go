package machine

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"frontiersim/internal/units"
)

// Satellite 1: the compute-node count must agree across every subsystem
// derivation — the whole point of the single-source-of-truth layer.
func TestNodeCountConsistency(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
		want int
	}{
		{"frontier", Frontier(), 9472},
		{"scaled-6x8x4", Scaled(6, 8, 4), 48},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.spec
			if got := s.Nodes(); got != tc.want {
				t.Fatalf("Nodes() = %d, want %d", got, tc.want)
			}
			fc, err := s.FabricConfig()
			if err != nil {
				t.Fatal(err)
			}
			if got := fc.ComputeNodes(); got != tc.want {
				t.Errorf("fabric ComputeNodes = %d, want %d", got, tc.want)
			}
			pw, err := s.PowerMachine()
			if err != nil {
				t.Fatal(err)
			}
			if pw.Nodes != tc.want {
				t.Errorf("power Nodes = %d, want %d", pw.Nodes, tc.want)
			}
			hs, err := s.HPLSpec()
			if err != nil {
				t.Fatal(err)
			}
			if hs.Nodes != tc.want {
				t.Errorf("HPL Nodes = %d, want %d", hs.Nodes, tc.want)
			}
			mc, err := s.MgmtConfig()
			if err != nil {
				t.Fatal(err)
			}
			if mc.ComputeNodes != tc.want {
				t.Errorf("HPCM ComputeNodes = %d, want %d", mc.ComputeNodes, tc.want)
			}
			if p := s.Platform(); p.Nodes != tc.want {
				t.Errorf("platform Nodes = %d, want %d", p.Nodes, tc.want)
			}
		})
	}
}

// Satellite 2: Dump → Load round-trips every built-in spec exactly
// (float64 survives JSON encoding bit-for-bit).
func TestDumpLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Dump(s)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("%s: dump/load round trip drifted:\n got %+v\nwant %+v", name, got, s)
		}
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "typo.json")
	if err := os.WriteFile(path, []byte(`{"name":"x","topolgy":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("typoed field should be rejected")
	}
}

func TestResolve(t *testing.T) {
	s, err := Resolve("frontier")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "frontier" {
		t.Errorf("Resolve(frontier).Name = %q", s.Name)
	}
	if _, err := Resolve("aurora"); err == nil || !strings.Contains(err.Error(), "aurora") {
		t.Errorf("unknown name should error descriptively, got %v", err)
	}
	if _, err := Resolve("/no/such/file.json"); err == nil {
		t.Error("missing file should error")
	}
	// Resolve falls through to Load for path-looking arguments.
	b, err := Dump(Summit())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "variant.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, Summit()) {
		t.Error("Resolve(path) should load the spec")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("elcapitan"); err == nil || !strings.Contains(err.Error(), "elcapitan") {
		t.Errorf("want descriptive unknown-machine error, got %v", err)
	}
	if len(Names()) != 6 {
		t.Errorf("built-ins = %d, want 6", len(Names()))
	}
}

// Satellite 4: malformed specs must return descriptive errors, never
// panic, and name the machine plus the offending field.
func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		keyword string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "name"},
		{"unknown topology", func(s *Spec) { s.Topology.Kind = "torus" }, "torus"},
		{"empty topology", func(s *Spec) { s.Topology.Kind = "" }, "kind"},
		{"negative groups", func(s *Spec) { s.Topology.ComputeGroups = -3 }, "compute group"},
		{"zero NICs", func(s *Spec) { s.Topology.NICsPerNode = 0 }, "NICsPerNode"},
		{"negative NICs", func(s *Spec) { s.Topology.NICsPerNode = -1 }, "NICsPerNode"},
		{"zero link rate", func(s *Spec) { s.Topology.LinkRate = 0 }, "link rate"},
		{"negative link rate", func(s *Spec) { s.Topology.LinkRate = -units.GBps }, "link rate"},
		{"efficiency above one", func(s *Spec) { s.Topology.EndpointEfficiency = 1.5 }, "efficiency"},
		{"zero efficiency", func(s *Spec) { s.Topology.EndpointEfficiency = 0 }, "efficiency"},
		{"negative node override", func(s *Spec) { s.Topology.Nodes = -7 }, "override"},
		{"zero devices", func(s *Spec) { s.Node.DevicesPerNode = 0 }, "DevicesPerNode"},
		{"zero HPL GCDs", func(s *Spec) { s.HPL.GCDsPerNode = 0 }, "GCDsPerNode"},
		{"zero HPL bandwidth", func(s *Spec) { s.HPL.HBMPerGCD = 0 }, "HPL"},
		{"cooling below one", func(s *Spec) { s.Power.CoolingFactor = 0.5 }, "cooling"},
		{"negative switches", func(s *Spec) { s.Power.Switches = -1 }, "switch"},
		{"negative class count", func(s *Spec) { s.Resilience.Classes[0].Count = -5 }, "count"},
		{"zero class MTBF", func(s *Spec) { s.Resilience.Classes[0].MTBF = 0 }, "MTBF"},
		{"nameless class", func(s *Spec) { s.Resilience.Classes[0].Name = "" }, "name"},
		{"zero NVMe devices", func(s *Spec) { s.Storage.NodeLocal.DevicesPerNode = 0 }, "node-local"},
		{"zero SSUs", func(s *Spec) { s.Storage.Orion.SSUs = 0 }, "SSU"},
		{"inverted PFL", func(s *Spec) { s.Storage.Orion.PFLPerformanceLimit = 1 }, "PFL"},
		{"zero metadata rate", func(s *Spec) { s.Storage.Orion.MetadataRead = 0 }, "bandwidth"},
		{"one leader", func(s *Spec) { s.Mgmt.Leaders = 1 }, "leader"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Frontier()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.keyword)) {
				t.Errorf("error %q should mention %q", err, tc.keyword)
			}
		})
	}
	// A fat-tree case too.
	s := Summit()
	s.Topology.Leaves = 0
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "leaves") {
		t.Errorf("fat-tree leaf validation: %v", err)
	}
	// All built-ins validate clean.
	for _, name := range Names() {
		m, _ := ByName(name)
		if err := m.Validate(); err != nil {
			t.Errorf("%s: canonical spec invalid: %v", name, err)
		}
	}
}

// Cross-kind derivations fail loudly rather than producing zero configs.
func TestWrongTopologyDerivations(t *testing.T) {
	if _, err := Summit().FabricConfig(); err == nil {
		t.Error("FabricConfig on a fat tree should error")
	}
	if _, err := Frontier().ClosConfig(); err == nil {
		t.Error("ClosConfig on a dragonfly should error")
	}
	if _, err := Titan().PowerMachine(); err == nil {
		t.Error("PowerMachine without power parameters should error")
	}
	if _, err := Titan().Orion(); err == nil {
		t.Error("Orion without storage parameters should error")
	}
	if _, err := Titan().SoftwareEnv(); err == nil {
		t.Error("SoftwareEnv without a stack should error")
	}
	if _, err := Frontier().SoftwareEnv(); err != nil {
		t.Errorf("frontier software stack: %v", err)
	}
}

// Cori's explicit node override: the Aries fabric carries more
// endpoints than compute nodes.
func TestCoriNodeOverride(t *testing.T) {
	c := Cori()
	if got := c.Topology.DerivedNodes(); got != 9720 {
		t.Errorf("derived nodes = %d, want 9720", got)
	}
	if got := c.Nodes(); got != 9688 {
		t.Errorf("Nodes() = %d, want 9688 (override)", got)
	}
}

// The whole-machine burst buffer sizes itself from the topology.
func TestBurstBufferNodeDefault(t *testing.T) {
	bb, err := Frontier().BurstBuffer(0)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Nodes != 9472 {
		t.Errorf("whole-machine burst buffer Nodes = %d, want 9472", bb.Nodes)
	}
	bb, err = Frontier().BurstBuffer(1000)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Nodes != 1000 {
		t.Errorf("job burst buffer Nodes = %d, want 1000", bb.Nodes)
	}
}
