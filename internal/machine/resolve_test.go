package machine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpecFile drops content into a temp .json file and returns its path.
func writeSpecFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResolveErrorPaths(t *testing.T) {
	validJSON, err := Dump(Frontier())
	if err != nil {
		t.Fatal(err)
	}
	missingPath := filepath.Join(t.TempDir(), "no-such-spec.json")
	badJSONPath := writeSpecFile(t, "bad.json", `{"name": "broken", `)
	unknownFieldPath := writeSpecFile(t, "typo.json", `{"name": "typo", "topolgy": {}}`)
	invalidSpecPath := writeSpecFile(t, "invalid.json", `{"name": "hollow", "topology": {"kind": "dragonfly"}}`)
	validPath := writeSpecFile(t, "frontier.json", string(validJSON))

	cases := []struct {
		name string
		arg  string
		// wantErr substrings must all appear in the error; empty means
		// the resolve must succeed.
		wantErr  []string
		wantName string
	}{
		{name: "builtin name", arg: "frontier", wantName: "frontier"},
		{name: "valid spec file", arg: validPath, wantName: "frontier"},
		{
			name:    "unknown name",
			arg:     "roadrunner",
			wantErr: []string{`unknown machine "roadrunner"`, "frontier", "JSON spec file"},
		},
		{
			name:    "missing file",
			arg:     missingPath,
			wantErr: []string{"no-such-spec.json"},
		},
		{
			name:    "invalid JSON",
			arg:     badJSONPath,
			wantErr: []string{"parsing", "bad.json"},
		},
		{
			name:    "unknown field",
			arg:     unknownFieldPath,
			wantErr: []string{"typo.json", "topolgy"},
		},
		{
			name:    "spec fails validation",
			arg:     invalidSpecPath,
			wantErr: []string{"invalid.json", "compute group"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := Resolve(c.arg)
			if len(c.wantErr) == 0 {
				if err != nil {
					t.Fatalf("Resolve(%q): %v", c.arg, err)
				}
				if s.Name != c.wantName {
					t.Fatalf("Resolve(%q).Name = %q, want %q", c.arg, s.Name, c.wantName)
				}
				return
			}
			if err == nil {
				t.Fatalf("Resolve(%q) succeeded, want error mentioning %v", c.arg, c.wantErr)
			}
			for _, want := range c.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("Resolve(%q) error = %q, want it to name %q", c.arg, err, want)
				}
			}
		})
	}
}

func TestHashCanonical(t *testing.T) {
	h1, err := Hash(Frontier())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hash(Frontier())
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("two fresh copies of the same spec hashed differently")
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", h1)
	}

	variant := Frontier()
	variant.Topology.LinkRate /= 2
	hv, err := Hash(variant)
	if err != nil {
		t.Fatal(err)
	}
	if hv == h1 {
		t.Fatal("one-field change did not change the hash")
	}

	// Dump → Load → Hash round-trips to the same address.
	b, err := Dump(variant)
	if err != nil {
		t.Fatal(err)
	}
	path := writeSpecFile(t, "variant.json", string(b))
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	hl, err := Hash(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if hl != hv {
		t.Fatal("hash changed across a Dump/Load round-trip")
	}
}
