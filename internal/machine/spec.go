// Package machine is the single declarative source of truth for every
// simulated system. A Spec carries the machine's identity — topology,
// node rates, benchmark parameters, power draw, failure populations,
// storage plant, and management plane — as plain JSON-serializable data,
// and each subsystem obtains its configuration through a derivation
// method (FabricConfig, HPLSpec, PowerMachine, ResilienceModel,
// Platform, Orion, MgmtConfig, …). Cross-cutting values such as the
// compute-node count therefore flow from exactly one place: the spec.
//
// The canonical specs of the paper's systems (Frontier, Summit, Titan,
// Mira, Theta, Cori) live in specs.go; Load and Dump move specs to and
// from JSON files so what-if variants (half-bandwidth Slingshot, doubled
// HBM, scaled node counts) need no code changes.
package machine

import (
	"fmt"

	"frontiersim/internal/apps"
	"frontiersim/internal/fabric"
	"frontiersim/internal/hpl"
	"frontiersim/internal/job"
	"frontiersim/internal/power"
	"frontiersim/internal/resilience"
	"frontiersim/internal/software"
	"frontiersim/internal/storage"
	"frontiersim/internal/sysmgmt"
	"frontiersim/internal/units"
)

// Topology kinds.
const (
	Dragonfly = "dragonfly"
	FatTree   = "fat-tree"
)

// Topology describes the interconnect. Exactly one kind is active;
// dragonfly machines use the group fields, fat trees the leaf fields.
// Rates are bytes/second, latencies seconds (the simulator's base units).
type Topology struct {
	Kind       string `json:"kind"` // "dragonfly" or "fat-tree"
	FabricName string `json:"fabricName"`

	// Dragonfly shape (Frontier: 74+5+1 groups, 32/16 switches, 16
	// endpoints per switch).
	ComputeGroups        int `json:"computeGroups,omitempty"`
	IOGroups             int `json:"ioGroups,omitempty"`
	MgmtGroups           int `json:"mgmtGroups,omitempty"`
	ComputeGroupSwitches int `json:"computeGroupSwitches,omitempty"`
	TORGroupSwitches     int `json:"torGroupSwitches,omitempty"`
	EndpointsPerSwitch   int `json:"endpointsPerSwitch,omitempty"`

	// Global link counts between group pairs by class pair.
	ComputeComputeLinks int `json:"computeComputeLinks,omitempty"`
	ComputeIOLinks      int `json:"computeIOLinks,omitempty"`
	ComputeMgmtLinks    int `json:"computeMgmtLinks,omitempty"`
	IOIOLinks           int `json:"ioIOLinks,omitempty"`
	IOMgmtLinks         int `json:"ioMgmtLinks,omitempty"`

	// Fat-tree shape (Summit: 256 leaves of 36 endpoints).
	Leaves           int `json:"leaves,omitempty"`
	EndpointsPerLeaf int `json:"endpointsPerLeaf,omitempty"`

	// Common endpoint wiring and link physics.
	NICsPerNode        int                  `json:"nicsPerNode"`
	LinkRate           units.BytesPerSecond `json:"linkRate"`
	EndpointEfficiency float64              `json:"endpointEfficiency"`
	SwitchLatency      units.Seconds        `json:"switchLatency"`
	EndpointLatency    units.Seconds        `json:"endpointLatency"`

	// Nodes overrides the topology-derived compute-node count for
	// machines whose fabric carries more endpoints than compute nodes
	// (Cori's Aries serves service nodes too). Zero derives the count.
	Nodes int `json:"nodes,omitempty"`
}

// DerivedNodes is the compute-node count implied by the fabric shape
// alone, before any Nodes override.
func (t Topology) DerivedNodes() int {
	if t.NICsPerNode == 0 {
		return 0
	}
	switch t.Kind {
	case Dragonfly:
		return t.ComputeGroups * t.ComputeGroupSwitches * t.EndpointsPerSwitch / t.NICsPerNode
	case FatTree:
		return t.Leaves * t.EndpointsPerLeaf / t.NICsPerNode
	}
	return 0
}

// Switches is the total switch count (compute blades plus top-of-rack
// for dragonflies; leaves plus the idealised core for fat trees).
func (t Topology) Switches() int {
	switch t.Kind {
	case Dragonfly:
		return t.ComputeGroups*t.ComputeGroupSwitches + (t.IOGroups+t.MgmtGroups)*t.TORGroupSwitches
	case FatTree:
		return t.Leaves + 1
	}
	return 0
}

// NodeSpec is the machine's compute node as the application proxies see
// it: achieved (not marketing-peak) per-device rates.
type NodeSpec struct {
	// DevicesPerNode is the accelerator count (GCDs on Frontier, GPUs
	// on Summit/Titan, the CPU itself on Mira/Theta/Cori).
	DevicesPerNode int `json:"devicesPerNode"`
	// Achieved dense throughput per device by precision.
	FP64Dense units.Flops `json:"fp64Dense"`
	FP32Dense units.Flops `json:"fp32Dense"`
	FP16Dense units.Flops `json:"fp16Dense"`
	// MemBW is the achieved STREAM-class bandwidth per device; MemCap
	// the usable memory per device.
	MemBW  units.BytesPerSecond `json:"memBW"`
	MemCap units.Bytes          `json:"memCap"`
	// GPUDirect reports whether the network can DMA device memory
	// directly; when false, transfers stage through the host at
	// HostStagingBW per node.
	GPUDirect     bool                 `json:"gpuDirect"`
	HostStagingBW units.BytesPerSecond `json:"hostStagingBW,omitempty"`
	// BardPeak marks the node as Frontier's Bard Peak blade, for which
	// the simulator carries a full component-level model (internal/node).
	BardPeak bool `json:"bardPeak,omitempty"`
}

// HPLSpec carries the TOP500 benchmark parameters; the node count is
// derived from the topology, never stored here.
type HPLSpec struct {
	GCDsPerNode       int                  `json:"gcdsPerNode"`
	VectorFP64PerGCD  units.Flops          `json:"vectorFP64PerGCD"`
	HBMPerGCD         units.BytesPerSecond `json:"hbmPerGCD"`
	HBMCapacityPerGCD units.Bytes          `json:"hbmCapacityPerGCD"`
}

// PowerSpec is the electrical model (§5.1) minus the node count, which
// flows from the topology.
type PowerSpec struct {
	NodeHPL  power.NodePower `json:"nodeHPL"`
	NodeIdle power.NodePower `json:"nodeIdle"`
	// Switches is the powered switch population. It is pinned at spec
	// construction (canonical specs derive it from their topology) and
	// deliberately not re-derived by Scaled, mirroring a test machine
	// that reuses the full plant's electrical model.
	Switches        int         `json:"switches"`
	SwitchPower     units.Watts `json:"switchPower"`
	StorageOverhead units.Watts `json:"storageOverhead"`
	CoolingFactor   float64     `json:"coolingFactor"`
}

// FailureClassSpec is one component population with an exponential
// failure model (§5.4).
type FailureClassSpec struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	MTBF  units.Seconds `json:"mtbf"`
	// Interrupting reports whether a failure interrupts the running job.
	Interrupting bool `json:"interrupting"`
}

// ResilienceSpec is the machine-wide failure population. Counts are
// explicit (they describe the installed plant, not the fabric shape), so
// scaled test machines keep full-scale failure statistics, matching the
// operations model's historical behaviour.
type ResilienceSpec struct {
	Classes []FailureClassSpec `json:"classes"`
}

// NodeLocalSpec is the per-node NVMe burst storage (§3.3).
type NodeLocalSpec struct {
	DevicesPerNode     int                  `json:"devicesPerNode"`
	DeviceCapacity     units.Bytes          `json:"deviceCapacity"`
	DeviceSeqRead      units.BytesPerSecond `json:"deviceSeqRead"`
	DeviceSeqWrite     units.BytesPerSecond `json:"deviceSeqWrite"`
	DeviceRandReadIOPS float64              `json:"deviceRandReadIOPS"`
	// Measured-over-contract efficiencies from the paper's fio runs.
	ReadEfficiency  float64 `json:"readEfficiency"`
	WriteEfficiency float64 `json:"writeEfficiency"`
	IOPSEfficiency  float64 `json:"iopsEfficiency"`
}

// OrionSpec is the center-wide file system (§3.3, Table 2). The
// performance- and capacity-tier capacities (and the capacity tier's
// theoretical bandwidth) are derived from the SSU build, never stored.
type OrionSpec struct {
	SSUs int         `json:"ssus"`
	SSU  storage.SSU `json:"ssu"`
	// Progressive File Layout thresholds.
	DoMLimit            units.Bytes `json:"domLimit"`
	PFLPerformanceLimit units.Bytes `json:"pflPerformanceLimit"`
	// Metadata tier, fully specified (flash metadata servers are a
	// separate plant from the SSUs).
	MetadataCapacity units.Bytes          `json:"metadataCapacity"`
	MetadataRead     units.BytesPerSecond `json:"metadataRead"`
	MetadataWrite    units.BytesPerSecond `json:"metadataWrite"`
	MetadataReadEff  float64              `json:"metadataReadEff"`
	MetadataWriteEff float64              `json:"metadataWriteEff"`
	// Performance (flash) tier theoretical rates plus measured ratios.
	PerformanceRead     units.BytesPerSecond `json:"performanceRead"`
	PerformanceWrite    units.BytesPerSecond `json:"performanceWrite"`
	PerformanceReadEff  float64              `json:"performanceReadEff"`
	PerformanceWriteEff float64              `json:"performanceWriteEff"`
	// Capacity (disk) tier measured ratios; theoretical rates derive
	// from the SSU's dRAID build.
	CapacityReadEff  float64 `json:"capacityReadEff"`
	CapacityWriteEff float64 `json:"capacityWriteEff"`
}

// StorageSpec groups the two I/O levels.
type StorageSpec struct {
	NodeLocal NodeLocalSpec `json:"nodeLocal"`
	Orion     *OrionSpec    `json:"orion,omitempty"`
}

// MgmtSpec sizes the HPCM management plane (§3.4.2); the compute-node
// count it serves flows from the topology.
type MgmtSpec struct {
	Leaders   int `json:"leaders"`
	DVSNodes  int `json:"dvsNodes"`
	SlurmCtls int `json:"slurmCtls"`
}

// Spec is one machine, completely described. Optional subsystems are
// nil for machines modelled at lower fidelity (the comparison baselines
// carry only a topology and node rates).
type Spec struct {
	Name string `json:"name"`
	Year int    `json:"year,omitempty"`

	Topology   Topology        `json:"topology"`
	Node       NodeSpec        `json:"node"`
	HPL        *HPLSpec        `json:"hpl,omitempty"`
	Power      *PowerSpec      `json:"power,omitempty"`
	Resilience *ResilienceSpec `json:"resilience,omitempty"`
	Storage    *StorageSpec    `json:"storage,omitempty"`
	Mgmt       *MgmtSpec       `json:"mgmt,omitempty"`
	// SoftwareStack names the programming environment the machine runs
	// ("frontier" selects the CPE+ROCm+OLCF catalog of §3.4.3).
	SoftwareStack string `json:"softwareStack,omitempty"`
}

// Nodes is the machine's compute-node count — the one number every
// subsystem derivation agrees on.
func (s Spec) Nodes() int {
	if s.Topology.Nodes != 0 {
		return s.Topology.Nodes
	}
	return s.Topology.DerivedNodes()
}

// Validate checks the spec for structural and numeric sanity, returning
// a descriptive error naming the offending field.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("machine: spec needs a name")
	}
	t := s.Topology
	switch t.Kind {
	case Dragonfly:
		if t.ComputeGroups < 1 {
			return fmt.Errorf("machine %s: dragonfly needs at least one compute group (got %d)", s.Name, t.ComputeGroups)
		}
		if t.ComputeGroupSwitches < 1 || t.EndpointsPerSwitch < 1 {
			return fmt.Errorf("machine %s: dragonfly needs positive switches per group and endpoints per switch (got %d, %d)",
				s.Name, t.ComputeGroupSwitches, t.EndpointsPerSwitch)
		}
	case FatTree:
		if t.Leaves < 1 || t.EndpointsPerLeaf < 1 {
			return fmt.Errorf("machine %s: fat tree needs positive leaves and endpoints per leaf (got %d, %d)",
				s.Name, t.Leaves, t.EndpointsPerLeaf)
		}
	case "":
		return fmt.Errorf("machine %s: topology kind is empty (want %q or %q)", s.Name, Dragonfly, FatTree)
	default:
		return fmt.Errorf("machine %s: unknown topology kind %q (want %q or %q)", s.Name, t.Kind, Dragonfly, FatTree)
	}
	if t.NICsPerNode < 1 {
		return fmt.Errorf("machine %s: NICsPerNode must be positive (got %d)", s.Name, t.NICsPerNode)
	}
	if t.LinkRate <= 0 {
		return fmt.Errorf("machine %s: link rate must be positive (got %v)", s.Name, t.LinkRate)
	}
	if t.EndpointEfficiency <= 0 || t.EndpointEfficiency > 1 {
		return fmt.Errorf("machine %s: endpoint efficiency %v out of (0,1]", s.Name, t.EndpointEfficiency)
	}
	if t.Nodes < 0 {
		return fmt.Errorf("machine %s: node-count override must not be negative (got %d)", s.Name, t.Nodes)
	}
	if s.Nodes() < 1 {
		return fmt.Errorf("machine %s: topology yields %d compute nodes", s.Name, s.Nodes())
	}
	if n := s.Node; n.DevicesPerNode < 1 {
		return fmt.Errorf("machine %s: DevicesPerNode must be positive (got %d)", s.Name, n.DevicesPerNode)
	}
	if h := s.HPL; h != nil {
		if h.GCDsPerNode < 1 {
			return fmt.Errorf("machine %s: HPL GCDsPerNode must be positive (got %d)", s.Name, h.GCDsPerNode)
		}
		if h.VectorFP64PerGCD <= 0 || h.HBMPerGCD <= 0 || h.HBMCapacityPerGCD <= 0 {
			return fmt.Errorf("machine %s: HPL per-GCD peak, HBM bandwidth and capacity must be positive", s.Name)
		}
	}
	if p := s.Power; p != nil {
		if p.CoolingFactor < 1 {
			return fmt.Errorf("machine %s: cooling factor %v must be >= 1", s.Name, p.CoolingFactor)
		}
		if p.Switches < 0 || p.SwitchPower < 0 {
			return fmt.Errorf("machine %s: switch population and power must not be negative", s.Name)
		}
	}
	if r := s.Resilience; r != nil {
		for _, c := range r.Classes {
			if c.Name == "" {
				return fmt.Errorf("machine %s: failure class needs a name", s.Name)
			}
			if c.Count < 0 {
				return fmt.Errorf("machine %s: failure class %q count must not be negative (got %d)", s.Name, c.Name, c.Count)
			}
			if c.MTBF <= 0 {
				return fmt.Errorf("machine %s: failure class %q MTBF must be positive (got %v)", s.Name, c.Name, c.MTBF)
			}
		}
	}
	if st := s.Storage; st != nil {
		nl := st.NodeLocal
		if nl.DevicesPerNode < 1 || nl.DeviceCapacity <= 0 || nl.DeviceSeqRead <= 0 || nl.DeviceSeqWrite <= 0 {
			return fmt.Errorf("machine %s: node-local NVMe needs positive device count, capacity and rates", s.Name)
		}
		if o := st.Orion; o != nil {
			if o.SSUs < 1 {
				return fmt.Errorf("machine %s: Orion needs at least one SSU (got %d)", s.Name, o.SSUs)
			}
			if o.DoMLimit <= 0 || o.PFLPerformanceLimit <= o.DoMLimit {
				return fmt.Errorf("machine %s: PFL thresholds must satisfy 0 < DoM < performance limit (got %v, %v)",
					s.Name, o.DoMLimit, o.PFLPerformanceLimit)
			}
			if o.MetadataRead <= 0 || o.MetadataWrite <= 0 || o.PerformanceRead <= 0 || o.PerformanceWrite <= 0 {
				return fmt.Errorf("machine %s: Orion tier bandwidths must be positive", s.Name)
			}
		}
	}
	if m := s.Mgmt; m != nil && m.Leaders < 2 {
		return fmt.Errorf("machine %s: CTDB failover needs at least two leaders (got %d)", s.Name, m.Leaders)
	}
	return nil
}

// FabricConfig derives the dragonfly fabric configuration.
func (s Spec) FabricConfig() (fabric.Config, error) {
	if s.Topology.Kind != Dragonfly {
		return fabric.Config{}, fmt.Errorf("machine %s: topology is %q, not a dragonfly", s.Name, s.Topology.Kind)
	}
	t := s.Topology
	return fabric.Config{
		Name:                 t.FabricName,
		ComputeGroups:        t.ComputeGroups,
		IOGroups:             t.IOGroups,
		MgmtGroups:           t.MgmtGroups,
		ComputeGroupSwitches: t.ComputeGroupSwitches,
		TORGroupSwitches:     t.TORGroupSwitches,
		EndpointsPerSwitch:   t.EndpointsPerSwitch,
		NICsPerNode:          t.NICsPerNode,
		LinkRate:             t.LinkRate,
		EndpointEfficiency:   t.EndpointEfficiency,
		ComputeComputeLinks:  t.ComputeComputeLinks,
		ComputeIOLinks:       t.ComputeIOLinks,
		ComputeMgmtLinks:     t.ComputeMgmtLinks,
		IOIOLinks:            t.IOIOLinks,
		IOMgmtLinks:          t.IOMgmtLinks,
		SwitchLatency:        t.SwitchLatency,
		EndpointLatency:      t.EndpointLatency,
	}, nil
}

// ClosConfig derives the fat-tree fabric configuration.
func (s Spec) ClosConfig() (fabric.ClosConfig, error) {
	if s.Topology.Kind != FatTree {
		return fabric.ClosConfig{}, fmt.Errorf("machine %s: topology is %q, not a fat tree", s.Name, s.Topology.Kind)
	}
	t := s.Topology
	return fabric.ClosConfig{
		Name:               t.FabricName,
		Leaves:             t.Leaves,
		EndpointsPerLeaf:   t.EndpointsPerLeaf,
		NICsPerNode:        t.NICsPerNode,
		LinkRate:           t.LinkRate,
		EndpointEfficiency: t.EndpointEfficiency,
		SwitchLatency:      t.SwitchLatency,
		EndpointLatency:    t.EndpointLatency,
	}, nil
}

// NewFabric builds the machine's interconnect.
func (s Spec) NewFabric() (*fabric.Fabric, error) {
	switch s.Topology.Kind {
	case Dragonfly:
		cfg, err := s.FabricConfig()
		if err != nil {
			return nil, err
		}
		return fabric.NewDragonfly(cfg)
	case FatTree:
		cfg, err := s.ClosConfig()
		if err != nil {
			return nil, err
		}
		return fabric.NewClos(cfg)
	}
	return nil, fmt.Errorf("machine %s: unknown topology kind %q", s.Name, s.Topology.Kind)
}

// HPLSpec derives the TOP500 benchmark description; the node count
// comes from the topology.
func (s Spec) HPLSpec() (hpl.MachineSpec, error) {
	if s.HPL == nil {
		return hpl.MachineSpec{}, fmt.Errorf("machine %s: no HPL parameters in spec", s.Name)
	}
	return hpl.MachineSpec{
		Nodes:             s.Nodes(),
		GCDsPerNode:       s.HPL.GCDsPerNode,
		VectorFP64PerGCD:  s.HPL.VectorFP64PerGCD,
		HBMPerGCD:         s.HPL.HBMPerGCD,
		HBMCapacityPerGCD: s.HPL.HBMCapacityPerGCD,
	}, nil
}

// PowerMachine derives the system power model; the node count comes
// from the topology.
func (s Spec) PowerMachine() (power.Machine, error) {
	if s.Power == nil {
		return power.Machine{}, fmt.Errorf("machine %s: no power parameters in spec", s.Name)
	}
	p := s.Power
	return power.Machine{
		Nodes:           s.Nodes(),
		NodeHPL:         p.NodeHPL,
		NodeIdle:        p.NodeIdle,
		Switches:        p.Switches,
		SwitchPower:     p.SwitchPower,
		StorageOverhead: p.StorageOverhead,
		CoolingFactor:   p.CoolingFactor,
	}, nil
}

// ResilienceModel derives the machine-wide reliability model.
func (s Spec) ResilienceModel() (resilience.Model, error) {
	if s.Resilience == nil {
		return resilience.Model{}, fmt.Errorf("machine %s: no resilience parameters in spec", s.Name)
	}
	classes := make([]resilience.ComponentClass, len(s.Resilience.Classes))
	for i, c := range s.Resilience.Classes {
		classes[i] = resilience.ComponentClass{
			Name:         c.Name,
			Count:        c.Count,
			MTBF:         c.MTBF,
			Interrupting: c.Interrupting,
		}
	}
	return resilience.Model{Classes: classes}, nil
}

// MgmtConfig derives the HPCM sizing; the served compute-node count
// comes from the topology.
func (s Spec) MgmtConfig() (sysmgmt.Config, error) {
	if s.Mgmt == nil {
		return sysmgmt.Config{}, fmt.Errorf("machine %s: no management-plane parameters in spec", s.Name)
	}
	return sysmgmt.Config{
		ComputeNodes: s.Nodes(),
		Leaders:      s.Mgmt.Leaders,
		DVSNodes:     s.Mgmt.DVSNodes,
		SlurmCtls:    s.Mgmt.SlurmCtls,
	}, nil
}

// NodeLocal derives the per-node NVMe store.
func (s Spec) NodeLocal() (*storage.NodeLocalStore, error) {
	if s.Storage == nil {
		return nil, fmt.Errorf("machine %s: no storage parameters in spec", s.Name)
	}
	nl := s.Storage.NodeLocal
	devices := make([]storage.NVMeDevice, nl.DevicesPerNode)
	for i := range devices {
		devices[i] = storage.NVMeDevice{
			Capacity:     nl.DeviceCapacity,
			SeqRead:      nl.DeviceSeqRead,
			SeqWrite:     nl.DeviceSeqWrite,
			RandReadIOPS: nl.DeviceRandReadIOPS,
		}
	}
	return &storage.NodeLocalStore{
		Devices:         devices,
		ReadEfficiency:  nl.ReadEfficiency,
		WriteEfficiency: nl.WriteEfficiency,
		IOPSEfficiency:  nl.IOPSEfficiency,
	}, nil
}

// SSU derives one Scalable Storage Unit.
func (s Spec) SSU() (storage.SSU, error) {
	if s.Storage == nil || s.Storage.Orion == nil {
		return storage.SSU{}, fmt.Errorf("machine %s: no Orion parameters in spec", s.Name)
	}
	return s.Storage.Orion.SSU, nil
}

// Orion derives the center-wide file system: tier capacities and
// theoretical disk bandwidth follow from the SSU build and count.
func (s Spec) Orion() (*storage.Orion, error) {
	if s.Storage == nil || s.Storage.Orion == nil {
		return nil, fmt.Errorf("machine %s: no Orion parameters in spec", s.Name)
	}
	os := s.Storage.Orion
	n := os.SSUs
	o := &storage.Orion{
		SSUs:                n,
		SSU:                 os.SSU,
		DoMLimit:            os.DoMLimit,
		PFLPerformanceLimit: os.PFLPerformanceLimit,
		Tiers:               map[storage.TierKind]storage.Tier{},
	}
	o.Tiers[storage.MetadataTier] = storage.Tier{
		Kind:     storage.MetadataTier,
		Capacity: os.MetadataCapacity,
		Read:     os.MetadataRead,
		Write:    os.MetadataWrite,
		ReadEff:  os.MetadataReadEff, WriteEff: os.MetadataWriteEff,
	}
	o.Tiers[storage.PerformanceTier] = storage.Tier{
		Kind:     storage.PerformanceTier,
		Capacity: os.SSU.Flash.UsableCapacity() * units.Bytes(n),
		Read:     os.PerformanceRead,
		Write:    os.PerformanceWrite,
		ReadEff:  os.PerformanceReadEff, WriteEff: os.PerformanceWriteEff,
	}
	o.Tiers[storage.CapacityTier] = storage.Tier{
		Kind:     storage.CapacityTier,
		Capacity: os.SSU.Disk.UsableCapacity() * units.Bytes(n),
		Read:     os.SSU.Disk.StreamBandwidth(false) * units.BytesPerSecond(n),
		Write:    os.SSU.Disk.StreamBandwidth(true) * units.BytesPerSecond(n),
		ReadEff:  os.CapacityReadEff, WriteEff: os.CapacityWriteEff,
	}
	return o, nil
}

// BurstBuffer derives the burst-buffer view for an n-node job on this
// machine (n = 0 means the whole machine).
func (s Spec) BurstBuffer(n int) (*storage.BurstBuffer, error) {
	local, err := s.NodeLocal()
	if err != nil {
		return nil, err
	}
	pfs, err := s.Orion()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		n = s.Nodes()
	}
	return storage.NewBurstBuffer(local, pfs, n), nil
}

// Platform derives the machine as the application proxies see it.
func (s Spec) Platform() *apps.Platform {
	p := &apps.Platform{
		Name:           s.Name,
		Year:           s.Year,
		Nodes:          s.Nodes(),
		DevicesPerNode: s.Node.DevicesPerNode,
		FP64Dense:      s.Node.FP64Dense,
		FP32Dense:      s.Node.FP32Dense,
		FP16Dense:      s.Node.FP16Dense,
		MemBW:          s.Node.MemBW,
		MemCap:         s.Node.MemCap,
		GPUDirect:      s.Node.GPUDirect,
		HostStagingBW:  s.Node.HostStagingBW,
	}
	spec := s // capture by value: the platform builds its fabric lazily
	p.SetFabricBuilder(spec.NewFabric)
	return p
}

// NodeModel derives the job layer's compute-node pricing model from the
// same NodeSpec the application proxies use.
func (s Spec) NodeModel() job.NodeModel {
	return job.NodeModel{
		Devices: s.Node.DevicesPerNode,
		FP64:    s.Node.FP64Dense,
		FP32:    s.Node.FP32Dense,
		FP16:    s.Node.FP16Dense,
		MemBW:   s.Node.MemBW,
		MemCap:  s.Node.MemCap,
	}
}

// JobEnv derives the environment phase-structured job programs are
// priced against, sharing an already-built fabric instance (the env must
// see the same link state the transport layer mutates). Storage tiers
// are wired when the spec carries them; a spec without storage yields an
// env that prices compute and collective phases only.
func (s Spec) JobEnv(f *fabric.Fabric) (*job.Env, error) {
	env := &job.Env{Node: s.NodeModel(), Fabric: f}
	if s.Storage != nil {
		nl, err := s.NodeLocal()
		if err != nil {
			return nil, err
		}
		env.NodeLocal = nl
		if s.Storage.Orion != nil {
			if env.Orion, err = s.Orion(); err != nil {
				return nil, err
			}
		}
	}
	return env, nil
}

// SoftwareEnv derives the programming environment.
func (s Spec) SoftwareEnv() (*software.Environment, error) {
	switch s.SoftwareStack {
	case "frontier":
		return software.FrontierEnvironment(), nil
	case "":
		return nil, fmt.Errorf("machine %s: no software stack in spec", s.Name)
	}
	return nil, fmt.Errorf("machine %s: unknown software stack %q", s.Name, s.SoftwareStack)
}
