package machine

import (
	"fmt"

	"frontiersim/internal/apps"

	"frontiersim/internal/power"
	"frontiersim/internal/storage"
	"frontiersim/internal/units"
)

// Frontier returns the canonical spec of the paper's subject machine:
// 9,472 Bard Peak nodes (74 dragonfly groups × 32 switches × 16
// endpoints ÷ 4 NICs) on Slingshot 11, with the full §3–§5 subsystem
// parameterisation. Every call returns a fresh copy; mutate freely.
func Frontier() Spec {
	return Spec{
		Name: "frontier",
		Year: 2022,
		Topology: Topology{
			Kind:                 Dragonfly,
			FabricName:           "frontier-slingshot11",
			ComputeGroups:        74,
			IOGroups:             5,
			MgmtGroups:           1,
			ComputeGroupSwitches: 32,
			TORGroupSwitches:     16,
			EndpointsPerSwitch:   16,
			NICsPerNode:          4,
			LinkRate:             25 * units.GBps,
			EndpointEfficiency:   0.70,
			ComputeComputeLinks:  4,
			ComputeIOLinks:       2,
			ComputeMgmtLinks:     2,
			IOIOLinks:            10,
			IOMgmtLinks:          6,
			SwitchLatency:        200 * units.Nanosecond,
			EndpointLatency:      650 * units.Nanosecond,
		},
		// Achieved per-GCD rates from the paper's own micro-benchmarks
		// (Fig. 3 GEMM, Table 4 STREAM).
		Node: NodeSpec{
			DevicesPerNode: 8,
			FP64Dense:      33.8 * units.TeraFlops,
			FP32Dense:      24.1 * units.TeraFlops,
			FP16Dense:      111.2 * units.TeraFlops,
			MemBW:          1337 * units.GBps,
			MemCap:         64 * units.GiB,
			GPUDirect:      true,
			BardPeak:       true,
		},
		HPL: &HPLSpec{
			GCDsPerNode:       8,
			VectorFP64PerGCD:  23.95 * units.TeraFlops,
			HBMPerGCD:         1.635 * units.TBps,
			HBMCapacityPerGCD: 64 * units.GiB,
		},
		Power: &PowerSpec{
			NodeHPL: power.NodePower{
				CPU:    240,
				GPUs:   4 * 380,
				Memory: 45,
				NIC:    4 * 25,
				NVMe:   2 * 9,
				Misc:   125,
			},
			NodeIdle: power.NodePower{
				CPU:    90,
				GPUs:   4 * 90,
				Memory: 25,
				NIC:    4 * 15,
				NVMe:   2 * 5,
				Misc:   80,
			},
			Switches:        74*32 + 6*16,
			SwitchPower:     250,
			StorageOverhead: 450 * units.Kilowatt,
			CoolingFactor:   1.03,
		},
		// §5.4's calibrated failure populations: MTTI near the 2008
		// report's four-hour projection, memory and power supplies the
		// leading contributors. Counts are the installed plant (9,472
		// nodes × 8 GCDs × 4 HBM stacks, 74 racks × 64 supplies, …).
		Resilience: &ResilienceSpec{Classes: []FailureClassSpec{
			{Name: "hbm-uncorrectable", Count: 303104, MTBF: 3.4e6 * units.Hour, Interrupting: true},
			{Name: "power-supply", Count: 74 * 64, MTBF: 9.5e4 * units.Hour, Interrupting: true},
			{Name: "ddr4-uncorrectable", Count: 75776, MTBF: 6.0e6 * units.Hour, Interrupting: true},
			{Name: "gpu", Count: 37888, MTBF: 2.2e6 * units.Hour, Interrupting: true},
			{Name: "cpu", Count: 9472, MTBF: 3.0e6 * units.Hour, Interrupting: true},
			{Name: "nic", Count: 37888, MTBF: 5.0e6 * units.Hour, Interrupting: true},
			{Name: "switch", Count: 2464, MTBF: 1.5e6 * units.Hour, Interrupting: false},
			{Name: "cable", Count: 40000, MTBF: 8.0e6 * units.Hour, Interrupting: false},
			{Name: "nvme", Count: 18944, MTBF: 8.0e6 * units.Hour, Interrupting: true},
		}},
		Storage: &StorageSpec{
			// Two M.2 drives per node, each half of the contracted
			// 8 GB/s read / 4 GB/s write / 1.6M IOPS envelope, with the
			// §4.3.1 fio-measured efficiencies.
			NodeLocal: NodeLocalSpec{
				DevicesPerNode:     2,
				DeviceCapacity:     1.75 * units.TB,
				DeviceSeqRead:      4 * units.GBps,
				DeviceSeqWrite:     2 * units.GBps,
				DeviceRandReadIOPS: 800e3,
				ReadEfficiency:     0.8875,
				WriteEfficiency:    1.05, // the write contract was conservative
				IOPSEfficiency:     0.9875,
			},
			// Orion per Table 2 and §4.3.2's measured rates.
			Orion: &OrionSpec{
				SSUs: 225,
				SSU: storage.SSU{
					Controllers: 2,
					NICsPerCtrl: 2,
					NICRate:     25 * units.GBps,
					Flash: storage.DRAIDGroup{
						Data: 4, Parity: 2, Spares: 0, Drives: 24,
						DriveCapacity: 3.2 * units.TB,
						DriveBW:       1.95 * units.GBps,
					},
					Disk: storage.DRAIDGroup{
						Data: 8, Parity: 2, Spares: 2, Drives: 212,
						DriveCapacity: 18 * units.TB,
						DriveBW:       117 * units.MBps,
					},
				},
				DoMLimit:            256 * units.KB,
				PFLPerformanceLimit: 8 * units.MB,
				MetadataCapacity:    10 * units.PB,
				MetadataRead:        0.8 * units.TBps,
				MetadataWrite:       0.4 * units.TBps,
				MetadataReadEff:     0.9,
				MetadataWriteEff:    0.9,
				PerformanceRead:     10 * units.TBps,
				PerformanceWrite:    10 * units.TBps,
				PerformanceReadEff:  1.17, // §4.3.2: up to 11.7 TB/s reads
				PerformanceWriteEff: 0.94, // and 9.4 TB/s writes on flash
				CapacityReadEff:     0.90, // large files: 4.9 TB/s reads,
				CapacityWriteEff:    0.97, // 4.3 TB/s writes
			},
		},
		Mgmt:          &MgmtSpec{Leaders: 21, DVSNodes: 12, SlurmCtls: 2},
		SoftwareStack: "frontier",
	}
}

// Scaled returns a structurally faithful small Frontier for fast tests:
// groups × switchesPerGroup × endpointsPerSwitch compute groups with the
// full machine's link ratios and latencies. The §5 plant models (power
// switch population, failure populations) deliberately keep full-scale
// values — a scaled test machine reuses the real machine's electrical
// and reliability calibration — while every node-count-derived value
// (HPL, power node count, HPCM clients) follows the scaled topology.
func Scaled(groups, switchesPerGroup, endpointsPerSwitch int) Spec {
	s := Frontier()
	s.Topology.FabricName = fmt.Sprintf("scaled-dragonfly-%dx%dx%d", groups, switchesPerGroup, endpointsPerSwitch)
	s.Topology.ComputeGroups = groups
	s.Topology.IOGroups = 0
	s.Topology.MgmtGroups = 0
	s.Topology.ComputeGroupSwitches = switchesPerGroup
	s.Topology.EndpointsPerSwitch = endpointsPerSwitch
	return s
}

// Summit is the CAAR baseline: 4,608 nodes of 6 V100s on a dual-rail EDR
// fat tree. The 2019-era software stack staged large GPU messages
// through the host at ~10.5 GB/s per node.
func Summit() Spec {
	return Spec{
		Name: "summit",
		Year: 2018,
		Topology: Topology{
			Kind:               FatTree,
			FabricName:         "summit-edr-fattree",
			Leaves:             256,
			EndpointsPerLeaf:   36,
			NICsPerNode:        2,
			LinkRate:           12.5 * units.GBps,
			EndpointEfficiency: 0.68,
			SwitchLatency:      300 * units.Nanosecond,
			EndpointLatency:    900 * units.Nanosecond,
		},
		Node: NodeSpec{
			DevicesPerNode: 6,
			FP64Dense:      6.7 * units.TeraFlops,  // 86% of V100's 7.8 peak
			FP32Dense:      13.5 * units.TeraFlops, // 86% of 15.7
			FP16Dense:      95 * units.TeraFlops,   // achieved tensor-core GEMM
			MemBW:          790 * units.GBps,       // of 900 peak
			MemCap:         16 * units.GiB,
			GPUDirect:      false,
			HostStagingBW:  10.5 * units.GBps,
		},
		HPL: &HPLSpec{
			GCDsPerNode:       6,
			VectorFP64PerGCD:  7.8 * units.TeraFlops,
			HBMPerGCD:         900 * units.GBps,
			HBMCapacityPerGCD: 16 * units.GiB,
		},
	}
}

// Titan: 18,688 nodes, one K20X each, Gemini torus (ExaSMR/WDMApp
// baseline). The torus is approximated by the same idealised fat tree
// the comparison figures use.
func Titan() Spec {
	return Spec{
		Name:     "titan",
		Year:     2012,
		Topology: baselineFabric("titan-gemini", 584, 32, 1, 8*units.GBps, 0.55),
		Node: NodeSpec{
			DevicesPerNode: 1,
			FP64Dense:      1.1 * units.TeraFlops,
			FP32Dense:      2.9 * units.TeraFlops,
			FP16Dense:      2.9 * units.TeraFlops, // no reduced-precision units
			MemBW:          180 * units.GBps,
			MemCap:         6 * units.GiB,
			GPUDirect:      false,
			HostStagingBW:  5 * units.GBps,
		},
	}
}

// Mira: 49,152 BG/Q nodes (EXAALT baseline). The "device" is the node.
func Mira() Spec {
	return Spec{
		Name:     "mira",
		Year:     2012,
		Topology: baselineFabric("mira-5dtorus", 1024, 48, 1, 10*units.GBps, 0.6),
		Node: NodeSpec{
			DevicesPerNode: 1,
			FP64Dense:      0.17 * units.TeraFlops, // of 204.8 GF peak
			FP32Dense:      0.17 * units.TeraFlops,
			FP16Dense:      0.17 * units.TeraFlops,
			MemBW:          28 * units.GBps,
			MemCap:         16 * units.GiB,
			GPUDirect:      true, // no accelerator: no staging penalty
		},
	}
}

// Theta: 4,392 KNL nodes (ExaSky baseline). HACC's compute kernels
// achieved a famously low fraction of KNL peak next to its GPU ports.
func Theta() Spec {
	return Spec{
		Name:     "theta",
		Year:     2017,
		Topology: baselineFabric("theta-aries", 122, 36, 1, 10*units.GBps, 0.8),
		Node: NodeSpec{
			DevicesPerNode: 1,
			FP64Dense:      1.6 * units.TeraFlops,
			FP32Dense:      2.2 * units.TeraFlops,
			FP16Dense:      2.2 * units.TeraFlops,
			MemBW:          380 * units.GBps, // MCDRAM achieved
			MemCap:         16 * units.GiB,
			GPUDirect:      true,
		},
	}
}

// Cori: 9,688 KNL nodes (WarpX baseline). The Aries fabric carries more
// endpoints than compute nodes, so the node count is pinned explicitly.
func Cori() Spec {
	s := Spec{
		Name:     "cori",
		Year:     2016,
		Topology: baselineFabric("cori-aries", 270, 36, 1, 10*units.GBps, 0.8),
		Node: NodeSpec{
			DevicesPerNode: 1,
			FP64Dense:      1.7 * units.TeraFlops,
			FP32Dense:      2.4 * units.TeraFlops,
			FP16Dense:      2.4 * units.TeraFlops,
			MemBW:          390 * units.GBps,
			MemCap:         16 * units.GiB,
			GPUDirect:      true,
		},
	}
	s.Topology.Nodes = 9688
	return s
}

// baselineFabric is the idealised fat tree the pre-Slingshot comparison
// machines run on (their tori and meshes matter only through endpoint
// bandwidth in the paper's figures).
func baselineFabric(name string, leaves, perLeaf, nicsPerNode int, rate units.BytesPerSecond, eff float64) Topology {
	return Topology{
		Kind:               FatTree,
		FabricName:         name,
		Leaves:             leaves,
		EndpointsPerLeaf:   perLeaf,
		NICsPerNode:        nicsPerNode,
		LinkRate:           rate,
		EndpointEfficiency: eff,
		SwitchLatency:      400 * units.Nanosecond,
		EndpointLatency:    1200 * units.Nanosecond,
	}
}

// Names lists the built-in machines in paper order.
func Names() []string {
	return []string{"frontier", "summit", "titan", "mira", "theta", "cori"}
}

// ByName resolves a built-in machine spec. Each call returns a fresh
// copy.
func ByName(name string) (Spec, error) {
	switch name {
	case "frontier":
		return Frontier(), nil
	case "summit":
		return Summit(), nil
	case "titan":
		return Titan(), nil
	case "mira":
		return Mira(), nil
	case "theta":
		return Theta(), nil
	case "cori":
		return Cori(), nil
	}
	return Spec{}, fmt.Errorf("machine: unknown machine %q (built-ins: %v)", name, Names())
}

// PlatformByName resolves a built-in machine and derives its
// application-level platform — the resolver apps.Speedup expects.
func PlatformByName(name string) (*apps.Platform, error) {
	s, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return s.Platform(), nil
}
