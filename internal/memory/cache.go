package memory

import (
	"frontiersim/internal/units"
)

// CacheLevel is one level of the socket's cache hierarchy, with its
// aggregate (all-core) streaming bandwidth.
type CacheLevel struct {
	Name      string
	Capacity  units.Bytes
	Bandwidth units.BytesPerSecond
}

// Hierarchy is a socket's memory hierarchy: cache levels backed by DRAM.
// It answers the question behind Table 3's footnote — how bandwidth
// "falls off a cliff" as the STREAM working set outgrows each level,
// and why measurements must use arrays far larger than L3.
type Hierarchy struct {
	Levels []CacheLevel
	DRAM   DRAM
}

// TrentoHierarchy returns the EPYC 7A53 hierarchy: 64 cores of 32 KiB
// L1D and 512 KiB L2, eight CCDs of 32 MiB L3, DDR4 behind them.
// Bandwidths are aggregate socket figures for streaming kernels.
func TrentoHierarchy() Hierarchy {
	return Hierarchy{
		Levels: []CacheLevel{
			{Name: "L1", Capacity: 64 * 32 * units.KiB, Bandwidth: 12 * units.TBps},
			{Name: "L2", Capacity: 64 * 512 * units.KiB, Bandwidth: 6 * units.TBps},
			{Name: "L3", Capacity: 8 * 32 * units.MiB, Bandwidth: 2.5 * units.TBps},
		},
		DRAM: TrentoDDR4(),
	}
}

// workingSetFactor is how much of a level the three STREAM arrays can
// occupy before conflict and capacity misses push traffic down a level.
const workingSetFactor = 0.75

// LevelFor returns the hierarchy level that serves a STREAM run whose
// combined arrays total workingSet bytes; ok is false when the set
// spills to DRAM.
func (h Hierarchy) LevelFor(workingSet units.Bytes) (CacheLevel, bool) {
	for _, l := range h.Levels {
		if float64(workingSet) <= float64(l.Capacity)*workingSetFactor {
			return l, true
		}
	}
	return CacheLevel{}, false
}

// StreamBandwidth extends CPUStreamBandwidth across the hierarchy: a
// kernel whose arrays fit in cache streams at that cache's bandwidth
// (write-allocate is then irrelevant — the lines are already resident);
// otherwise the DRAM model applies.
func (h Hierarchy) StreamBandwidth(k StreamKernel, arrayBytes units.Bytes, temporal bool) units.BytesPerSecond {
	nArrays := k.Reads + k.Writes
	if k.ReadOnly {
		nArrays = k.Reads
	}
	workingSet := arrayBytes * units.Bytes(nArrays)
	if l, ok := h.LevelFor(workingSet); ok {
		return l.Bandwidth
	}
	return CPUStreamBandwidth(h.DRAM, k, temporal)
}

// SweepPoint is one point of a bandwidth-vs-size curve.
type SweepPoint struct {
	ArrayBytes units.Bytes
	Bandwidth  units.BytesPerSecond
	Level      string
}

// Sweep produces the classic STREAM size sweep for a kernel.
func (h Hierarchy) Sweep(k StreamKernel, sizes []units.Bytes, temporal bool) []SweepPoint {
	out := make([]SweepPoint, 0, len(sizes))
	for _, s := range sizes {
		bw := h.StreamBandwidth(k, s, temporal)
		level := "DRAM"
		if l, ok := h.LevelFor(s * units.Bytes(k.Reads+k.Writes)); ok {
			level = l.Name
		}
		out = append(out, SweepPoint{ArrayBytes: s, Bandwidth: bw, Level: level})
	}
	return out
}
