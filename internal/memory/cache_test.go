package memory

import (
	"testing"

	"frontiersim/internal/units"
)

func TestHierarchyShape(t *testing.T) {
	h := TrentoHierarchy()
	if len(h.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(h.Levels))
	}
	// Capacities and bandwidths must both be monotone.
	for i := 1; i < len(h.Levels); i++ {
		if h.Levels[i].Capacity <= h.Levels[i-1].Capacity {
			t.Error("capacities must grow down the hierarchy")
		}
		if h.Levels[i].Bandwidth >= h.Levels[i-1].Bandwidth {
			t.Error("bandwidths must shrink down the hierarchy")
		}
	}
	if h.Levels[2].Capacity != 256*units.MiB {
		t.Errorf("L3 = %v, want 256 MiB", h.Levels[2].Capacity)
	}
	// Even L3 is far faster than DRAM: the cliff Table 3 avoids.
	if float64(h.Levels[2].Bandwidth) < 5*float64(h.DRAM.Sustained()) {
		t.Error("L3 should dwarf DRAM bandwidth")
	}
}

func TestLevelFor(t *testing.T) {
	h := TrentoHierarchy()
	if l, ok := h.LevelFor(units.MiB); !ok || l.Name != "L1" {
		t.Errorf("1 MiB should fit L1, got %v %v", l.Name, ok)
	}
	if l, ok := h.LevelFor(16 * units.MiB); !ok || l.Name != "L2" {
		t.Errorf("16 MiB should fit L2, got %v %v", l.Name, ok)
	}
	if l, ok := h.LevelFor(120 * units.MiB); !ok || l.Name != "L3" {
		t.Errorf("120 MiB should fit L3, got %v %v", l.Name, ok)
	}
	if _, ok := h.LevelFor(units.GiB); ok {
		t.Error("1 GiB should spill to DRAM")
	}
}

func TestStreamSweepCliffs(t *testing.T) {
	h := TrentoHierarchy()
	sizes := []units.Bytes{
		100 * units.KiB, 4 * units.MiB, 40 * units.MiB, 2 * units.GiB, 7.6 * units.GB,
	}
	pts := h.Sweep(Triad, sizes, true)
	if len(pts) != len(sizes) {
		t.Fatal("sweep length")
	}
	// Bandwidth must be non-increasing across the sweep.
	for i := 1; i < len(pts); i++ {
		if pts[i].Bandwidth > pts[i-1].Bandwidth {
			t.Errorf("sweep not monotone at %v", pts[i].ArrayBytes)
		}
	}
	// The last points are DRAM and must match Table 3's model exactly.
	want := CPUStreamBandwidth(h.DRAM, Triad, true)
	if pts[len(pts)-1].Bandwidth != want {
		t.Errorf("DRAM point = %v, want %v", pts[len(pts)-1].Bandwidth, want)
	}
	if pts[len(pts)-1].Level != "DRAM" {
		t.Errorf("level = %s, want DRAM", pts[len(pts)-1].Level)
	}
	if pts[0].Level != "L1" {
		t.Errorf("first level = %s, want L1", pts[0].Level)
	}
	// Cache-resident runs wildly overstate memory bandwidth — the trap
	// the 7.6 GB arrays avoid.
	if float64(pts[0].Bandwidth) < 10*float64(want) {
		t.Error("L1-resident STREAM should dwarf the DRAM figure")
	}
}

func TestDotWorkingSet(t *testing.T) {
	h := TrentoHierarchy()
	// Dot reads two arrays and writes none: a 90 MiB pair fits L3 where
	// a three-array kernel would not.
	bwDot := h.StreamBandwidth(Dot, 90*units.MiB, true)
	bwTriad := h.StreamBandwidth(Triad, 90*units.MiB, true)
	if bwDot <= bwTriad {
		t.Errorf("dot (2 arrays, %v) should stay cached vs triad (3 arrays, %v)", bwDot, bwTriad)
	}
}
