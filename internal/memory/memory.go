// Package memory models the two memory technologies in a Frontier node —
// DDR4 attached to the Trento CPU and HBM2e attached to each MI250X GCD —
// at the level needed to reproduce the paper's STREAM results (Tables 3
// and 4): channel counts, peak and sustained bandwidth, NUMA-per-socket
// interleaving, and the write-allocate semantics that separate temporal
// from non-temporal stores.
package memory

import (
	"fmt"

	"frontiersim/internal/units"
)

// NPSMode is the EPYC NUMA-Per-Socket configuration (§3.1.1).
type NPSMode int

// Supported NPS modes.
const (
	NPS1 NPSMode = 1 // all allocations striped over all eight DIMMs
	NPS2 NPSMode = 2
	NPS4 NPSMode = 4 // allocations striped over the two DIMMs per quadrant
)

// String implements fmt.Stringer.
func (m NPSMode) String() string { return fmt.Sprintf("NPS-%d", int(m)) }

// DRAM models a DDR4 memory subsystem.
type DRAM struct {
	// Channels is the number of DDR channels (8 on Trento).
	Channels int
	// PerChannelPeak is the theoretical per-channel bandwidth
	// (25.6 GB/s for DDR4-3200).
	PerChannelPeak units.BytesPerSecond
	// CapacityPerChannel is the DIMM capacity per channel (64 GiB).
	CapacityPerChannel units.Bytes
	// Efficiency is the fraction of peak achievable with non-temporal
	// streams in the best NPS mode. Calibrated to the paper's 179 GB/s
	// out of 205 GiB/s (~0.815 of the binary peak, 0.874 of 204.8 GB/s).
	Efficiency float64
	// NPS1Factor is the aggregate-bandwidth derating when the socket is
	// run in NPS-1: full-socket interleaving lengthens average access
	// distance across the IOD. The paper measures ~125 GB/s vs 180 GB/s,
	// a factor of ~0.70.
	NPS1Factor float64
	// Mode is the configured NUMA-per-socket mode (NPS-4 on Frontier).
	Mode NPSMode
}

// TrentoDDR4 returns the DDR4 configuration of the EPYC 7A53 "Trento"
// socket as deployed in Frontier: eight 64 GiB DDR4-3200 DIMMs in NPS-4.
func TrentoDDR4() DRAM {
	return DRAM{
		Channels:           8,
		PerChannelPeak:     25.6 * units.GBps,
		CapacityPerChannel: 64 * units.GiB,
		Efficiency:         0.874,
		NPS1Factor:         0.70,
		Mode:               NPS4,
	}
}

// Capacity returns total DRAM capacity (512 GiB on Trento).
func (d DRAM) Capacity() units.Bytes {
	return d.CapacityPerChannel * units.Bytes(d.Channels)
}

// Peak returns theoretical peak bandwidth across all channels.
func (d DRAM) Peak() units.BytesPerSecond {
	return d.PerChannelPeak * units.BytesPerSecond(d.Channels)
}

// Sustained returns the achievable streaming bandwidth with non-temporal
// accesses in the configured NPS mode.
func (d DRAM) Sustained() units.BytesPerSecond {
	bw := units.BytesPerSecond(float64(d.Peak()) * d.Efficiency)
	if d.Mode == NPS1 {
		bw = units.BytesPerSecond(float64(bw) * d.NPS1Factor)
	}
	return bw
}

// HBM models the high-bandwidth memory attached to one GCD.
type HBM struct {
	// Stacks is the number of HBM2e stacks (4 per GCD).
	Stacks int
	// PerStackPeak is per-stack bandwidth (1.635 TB/s ÷ 4 per GCD).
	PerStackPeak units.BytesPerSecond
	// CapacityPerStack is per-stack capacity (16 GiB).
	CapacityPerStack units.Bytes
}

// MI250XHBM returns the HBM2e configuration of a single MI250X GCD:
// four stacks, 64 GB, 1.635 TB/s aggregate peak.
func MI250XHBM() HBM {
	return HBM{
		Stacks:           4,
		PerStackPeak:     1.635 * units.TBps / 4,
		CapacityPerStack: 16 * units.GiB,
	}
}

// Capacity returns total HBM capacity for the GCD.
func (h HBM) Capacity() units.Bytes {
	return h.CapacityPerStack * units.Bytes(h.Stacks)
}

// Peak returns aggregate peak HBM bandwidth for the GCD.
func (h HBM) Peak() units.BytesPerSecond {
	return h.PerStackPeak * units.BytesPerSecond(h.Stacks)
}

// AccessLatency returns the average DRAM access latency for the
// configured NPS mode. NPS-4 keeps allocations in the local quadrant
// (slightly lower latency); NPS-1 stripes across the whole IOD (§3.1.1:
// "slightly higher latency").
func (d DRAM) AccessLatency() units.Seconds {
	const local = 96 * units.Nanosecond
	switch d.Mode {
	case NPS4:
		return local
	case NPS2:
		return 104 * units.Nanosecond
	default: // NPS1: three quarters of accesses cross quadrants
		return 112 * units.Nanosecond
	}
}
