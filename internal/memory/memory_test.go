package memory

import (
	"math"
	"testing"
	"testing/quick"

	"frontiersim/internal/units"
)

func gb(bw units.BytesPerSecond) float64 { return float64(bw) / 1e9 }

func TestTrentoDDR4Shape(t *testing.T) {
	d := TrentoDDR4()
	if d.Channels != 8 {
		t.Errorf("channels = %d, want 8", d.Channels)
	}
	if d.Capacity() != 512*units.GiB {
		t.Errorf("capacity = %v, want 512 GiB", d.Capacity())
	}
	if got := gb(d.Peak()); math.Abs(got-204.8) > 0.01 {
		t.Errorf("peak = %.1f GB/s, want 204.8", got)
	}
}

func TestSustainedNPSModes(t *testing.T) {
	d := TrentoDDR4()
	nps4 := gb(d.Sustained())
	// Paper: "up to 180 GB/s using non-temporal loads and stores in NPS-4".
	if nps4 < 175 || nps4 > 182 {
		t.Errorf("NPS-4 sustained = %.1f GB/s, want ~179", nps4)
	}
	d.Mode = NPS1
	nps1 := gb(d.Sustained())
	// Paper: "When operating in NPS-1, that rate drops to ~125 GB/s".
	if nps1 < 120 || nps1 > 130 {
		t.Errorf("NPS-1 sustained = %.1f GB/s, want ~125", nps1)
	}
	if nps1 >= nps4 {
		t.Error("NPS-1 aggregate must be below NPS-4")
	}
}

func TestNPSModeString(t *testing.T) {
	if NPS4.String() != "NPS-4" || NPS1.String() != "NPS-1" {
		t.Errorf("NPS strings wrong: %s %s", NPS4, NPS1)
	}
}

// Table 3 of the paper, within a few percent.
func TestCPUStreamTable3(t *testing.T) {
	d := TrentoDDR4()
	cases := []struct {
		kernel    StreamKernel
		temporal  bool
		wantGBs   float64
		tolerance float64
	}{
		{Copy, true, 176.8, 0.03},
		{Scale, true, 107.3, 0.03},
		{Add, true, 125.6, 0.05},
		{Triad, true, 120.7, 0.03},
		{Copy, false, 179.1, 0.02},
		{Scale, false, 172.4, 0.05},
		{Add, false, 178.4, 0.02},
		{Triad, false, 178.3, 0.02},
	}
	for _, c := range cases {
		got := gb(CPUStreamBandwidth(d, c.kernel, c.temporal))
		if math.Abs(got-c.wantGBs)/c.wantGBs > c.tolerance {
			t.Errorf("%s temporal=%v: got %.1f GB/s, want %.1f ±%.0f%%",
				c.kernel.Name, c.temporal, got, c.wantGBs, c.tolerance*100)
		}
	}
}

func TestTemporalNeverBeatsNonTemporal(t *testing.T) {
	d := TrentoDDR4()
	for _, k := range CPUStreamKernels {
		temp := CPUStreamBandwidth(d, k, true)
		nt := CPUStreamBandwidth(d, k, false)
		if temp > nt {
			t.Errorf("%s: temporal %.1f > non-temporal %.1f GB/s", k.Name, gb(temp), gb(nt))
		}
	}
}

func TestRunCPUStreamRows(t *testing.T) {
	rows := RunCPUStream(TrentoDDR4(), 7.6*units.GB, true)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	names := []string{"Copy", "Scale", "Add", "Triad"}
	for i, r := range rows {
		if r.Kernel != names[i] {
			t.Errorf("row %d = %s, want %s", i, r.Kernel, names[i])
		}
		if r.BestTime <= 0 {
			t.Errorf("%s: nonpositive best time", r.Kernel)
		}
		if r.String() == "" {
			t.Errorf("%s: empty formatting", r.Kernel)
		}
	}
	// Add moves 3 arrays; Copy moves 2. Best time must reflect that.
	if rows[2].BestTime <= rows[0].BestTime {
		t.Error("Add should take longer than Copy per iteration")
	}
}

func TestMI250XHBMShape(t *testing.T) {
	h := MI250XHBM()
	if h.Capacity() != 64*units.GiB {
		t.Errorf("capacity = %v, want 64 GiB", h.Capacity())
	}
	if got := gb(h.Peak()); math.Abs(got-1635) > 0.5 {
		t.Errorf("peak = %.0f GB/s, want 1635", got)
	}
}

// Table 4 of the paper, within 1 %.
func TestGPUStreamTable4(t *testing.T) {
	h := MI250XHBM()
	cases := []struct {
		kernel  StreamKernel
		wantGBs float64
	}{
		{Copy, 1336.6},
		{Mul, 1338.3},
		{Add, 1288.2},
		{Triad, 1285.2},
		{Dot, 1374.2},
	}
	for _, c := range cases {
		got := gb(GPUStreamBandwidth(h, c.kernel))
		if math.Abs(got-c.wantGBs)/c.wantGBs > 0.01 {
			t.Errorf("GPU %s: got %.1f GB/s, want %.1f", c.kernel.Name, got, c.wantGBs)
		}
	}
}

func TestGPUStreamEfficiencyBand(t *testing.T) {
	// Paper: "between 79% and 84% of peak HBM bandwidth".
	h := MI250XHBM()
	for _, k := range GPUStreamKernels {
		eff := float64(GPUStreamBandwidth(h, k)) / float64(h.Peak())
		if eff < 0.78 || eff > 0.85 {
			t.Errorf("%s efficiency %.3f outside [0.78, 0.85]", k.Name, eff)
		}
	}
}

func TestRunGPUStream(t *testing.T) {
	rows := RunGPUStream(MI250XHBM(), 8*units.GB)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[4].Kernel != "Dot" {
		t.Errorf("last row = %s, want Dot", rows[4].Kernel)
	}
}

func TestCountedBytes(t *testing.T) {
	if Copy.CountedBytes(8) != 16 {
		t.Errorf("Copy counted = %d, want 16", Copy.CountedBytes(8))
	}
	if Triad.CountedBytes(8) != 24 {
		t.Errorf("Triad counted = %d, want 24", Triad.CountedBytes(8))
	}
	if Dot.CountedBytes(8) != 16 {
		t.Errorf("Dot counted = %d, want 16", Dot.CountedBytes(8))
	}
}

// Property: STREAM bandwidth scales linearly with channel count.
func TestChannelScalingProperty(t *testing.T) {
	f := func(rawCh uint8) bool {
		ch := int(rawCh%15) + 1
		d := TrentoDDR4()
		d.Channels = ch
		one := TrentoDDR4()
		one.Channels = 1
		ratio := float64(CPUStreamBandwidth(d, Triad, false)) / float64(CPUStreamBandwidth(one, Triad, false))
		return math.Abs(ratio-float64(ch)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for every kernel and mode, bandwidth is positive and at most
// the theoretical peak.
func TestBandwidthBoundedProperty(t *testing.T) {
	d := TrentoDDR4()
	for _, k := range []StreamKernel{Copy, Scale, Add, Triad, Dot} {
		for _, temporal := range []bool{true, false} {
			bw := CPUStreamBandwidth(d, k, temporal)
			if bw <= 0 || bw > d.Peak() {
				t.Errorf("%s temporal=%v: bw %v outside (0, peak]", k.Name, temporal, bw)
			}
		}
	}
}

// §3.1.1: NPS-4's local quadrant access has "slightly lower latency".
func TestNPSLatency(t *testing.T) {
	d := TrentoDDR4()
	nps4 := d.AccessLatency()
	d.Mode = NPS1
	nps1 := d.AccessLatency()
	if nps4 >= nps1 {
		t.Errorf("NPS-4 latency %v should beat NPS-1 %v", nps4, nps1)
	}
	ratio := float64(nps1) / float64(nps4)
	if ratio > 1.3 {
		t.Errorf("latency gap %.2fx should be slight", ratio)
	}
	d.Mode = NPS2
	if d.AccessLatency() <= nps4 || d.AccessLatency() >= nps1 {
		t.Error("NPS-2 latency should sit between")
	}
}
