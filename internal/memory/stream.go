package memory

import (
	"fmt"

	"frontiersim/internal/units"
)

// StreamKernel describes one kernel of the STREAM benchmark family in
// terms of the array operands it touches per element. Word is the element
// size in bytes (8 for float64).
type StreamKernel struct {
	Name string
	// Reads and Writes are the number of array operands read and written
	// per element (the traffic STREAM itself counts).
	Reads, Writes int
	// StreamingStoreDetected marks kernels where the core's streaming
	// store heuristics elide the write-allocate read even for nominally
	// temporal stores. Zen 3 detects pure block copies (rep-movs style
	// patterns), which is why the paper's temporal Copy row (176.8 GB/s)
	// sits next to its non-temporal one while Scale/Add/Triad collapse.
	StreamingStoreDetected bool
	// ReadOnly marks reduction kernels (Dot) whose result stays in
	// registers: no store traffic at all.
	ReadOnly bool
}

// The classic CPU STREAM kernels (Table 3) plus the GPU variants the paper
// reports in Table 4 (Mul is GPU STREAM's name for Scale; Dot is a fused
// reduction).
var (
	Copy  = StreamKernel{Name: "Copy", Reads: 1, Writes: 1, StreamingStoreDetected: true}
	Scale = StreamKernel{Name: "Scale", Reads: 1, Writes: 1}
	Mul   = StreamKernel{Name: "Mul", Reads: 1, Writes: 1}
	Add   = StreamKernel{Name: "Add", Reads: 2, Writes: 1}
	Triad = StreamKernel{Name: "Triad", Reads: 2, Writes: 1}
	Dot   = StreamKernel{Name: "Dot", Reads: 2, Writes: 0, ReadOnly: true}
)

// CPUStreamKernels lists the kernels of Table 3 in paper order.
var CPUStreamKernels = []StreamKernel{Copy, Scale, Add, Triad}

// CountedBytes returns the bytes STREAM credits the kernel with per
// element (reads + writes, times the word size).
func (k StreamKernel) CountedBytes(word int) int {
	return (k.Reads + k.Writes) * word
}

// rfoPenalty is the residual inefficiency of read-for-ownership traffic
// beyond the pure extra-read bytes: the RFO read serialises ahead of the
// store and occupies fill buffers. Calibrated so that the model lands on
// the paper's Table 3 (Scale 107.3, Add 125.6, Triad 120.7 GB/s).
const rfoPenalty = 0.90

// CPUStreamBandwidth predicts the STREAM-reported bandwidth for kernel k
// on DRAM d. If temporal is true, stores go through the cache hierarchy
// and (absent streaming-store detection) incur a write-allocate read that
// STREAM does not count; non-temporal stores bypass the caches.
//
// The returned rate is the STREAM-counted rate, i.e. counted bytes per
// unit time, which is what the paper's Table 3 reports.
func CPUStreamBandwidth(d DRAM, k StreamKernel, temporal bool) units.BytesPerSecond {
	sustained := float64(d.Sustained())
	if !temporal || k.StreamingStoreDetected || k.Writes == 0 {
		return units.BytesPerSecond(sustained)
	}
	counted := float64(k.Reads + k.Writes)
	actual := counted + float64(k.Writes) // write-allocate: one extra read per write
	return units.BytesPerSecond(sustained * counted / actual * rfoPenalty)
}

// StreamResult is one measured STREAM row.
type StreamResult struct {
	Kernel    string
	Bandwidth units.BytesPerSecond
	// BestTime is the best per-iteration time over the trial count for
	// the configured array size, as real STREAM reports.
	BestTime units.Seconds
}

// String renders the row in STREAM's MB/s convention.
func (r StreamResult) String() string {
	return fmt.Sprintf("%-8s %12.1f MB/s  %10.6fs", r.Kernel, float64(r.Bandwidth)/1e6, float64(r.BestTime))
}

// RunCPUStream simulates a full CPU STREAM run: arrayBytes per operand
// array, the four classic kernels, temporal or non-temporal stores. The
// paper uses ~7.6 GB arrays so that data cannot fit in the 256 MiB of
// socket-level L3.
func RunCPUStream(d DRAM, arrayBytes units.Bytes, temporal bool) []StreamResult {
	results := make([]StreamResult, 0, len(CPUStreamKernels))
	for _, k := range CPUStreamKernels {
		bw := CPUStreamBandwidth(d, k, temporal)
		moved := arrayBytes * units.Bytes(k.Reads+k.Writes)
		results = append(results, StreamResult{
			Kernel:    k.Name,
			Bandwidth: bw,
			BestTime:  units.TimeToMove(moved, bw),
		})
	}
	return results
}

// GPU STREAM efficiencies by kernel class, calibrated to the paper's
// Table 4 (fractions of the 1.635 TB/s GCD peak). HBM has no
// write-allocate problem — GPU stores are streaming by construction — but
// three-operand kernels pay slightly more for read/write turnarounds, and
// the read-only Dot reduction achieves the best fraction of peak.
const (
	gpuEffTwoOp   = 0.8180 // Copy, Mul
	gpuEffThreeOp = 0.7875 // Add, Triad
	gpuEffDot     = 0.8405 // Dot
)

// GPUStreamBandwidth predicts the reported bandwidth of a GPU STREAM
// kernel against HBM h.
func GPUStreamBandwidth(h HBM, k StreamKernel) units.BytesPerSecond {
	peak := float64(h.Peak())
	switch {
	case k.ReadOnly:
		return units.BytesPerSecond(peak * gpuEffDot)
	case k.Reads+k.Writes >= 3:
		return units.BytesPerSecond(peak * gpuEffThreeOp)
	default:
		return units.BytesPerSecond(peak * gpuEffTwoOp)
	}
}

// GPUStreamKernels lists the kernels of Table 4 in paper order.
var GPUStreamKernels = []StreamKernel{Copy, Mul, Add, Triad, Dot}

// RunGPUStream simulates the GPU STREAM benchmark of Table 4 on one GCD.
func RunGPUStream(h HBM, arrayBytes units.Bytes) []StreamResult {
	results := make([]StreamResult, 0, len(GPUStreamKernels))
	for _, k := range GPUStreamKernels {
		bw := GPUStreamBandwidth(h, k)
		moved := arrayBytes * units.Bytes(k.Reads+k.Writes)
		results = append(results, StreamResult{
			Kernel:    k.Name,
			Bandwidth: bw,
			BestTime:  units.TimeToMove(moved, bw),
		})
	}
	return results
}
