package miniapps

import (
	"fmt"
	"math"
	"math/cmplx"

	"frontiersim/internal/units"
)

// FFT1D computes an in-place radix-2 decimation-in-time FFT — the kernel
// GESTS's pseudo-spectral solver calls ~N² times per 3-D transform. The
// length must be a power of two.
func FFT1D(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("miniapps: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Danielson–Lanczos butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT1D is the inverse transform (normalised).
func IFFT1D(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT1D(x); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * scale
	}
	return nil
}

// FFT3D transforms an n×n×n volume in place, dimension by dimension —
// structurally what rocFFT does per GESTS pencil between the all-to-all
// transposes.
type FFT3D struct {
	N    int
	Data []complex128
}

// NewFFT3D allocates an n³ volume (n must be a power of two).
func NewFFT3D(n int) (*FFT3D, error) {
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("miniapps: FFT3D size %d is not a power of two", n)
	}
	return &FFT3D{N: n, Data: make([]complex128, n*n*n)}, nil
}

// At returns a pointer to element (i,j,k).
func (f *FFT3D) At(i, j, k int) *complex128 { return &f.Data[(k*f.N+j)*f.N+i] }

// Transform runs the forward 3-D FFT (inverse with inv=true).
func (f *FFT3D) Transform(inv bool) error {
	n := f.N
	line := make([]complex128, n)
	apply := func(get func(t int) *complex128) error {
		for t := 0; t < n; t++ {
			line[t] = *get(t)
		}
		var err error
		if inv {
			err = IFFT1D(line)
		} else {
			err = FFT1D(line)
		}
		if err != nil {
			return err
		}
		for t := 0; t < n; t++ {
			*get(t) = line[t]
		}
		return nil
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			j, k := j, k
			if err := apply(func(t int) *complex128 { return f.At(t, j, k) }); err != nil {
				return err
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			i, k := i, k
			if err := apply(func(t int) *complex128 { return f.At(i, t, k) }); err != nil {
				return err
			}
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			i, j := i, j
			if err := apply(func(t int) *complex128 { return f.At(i, j, t) }); err != nil {
				return err
			}
		}
	}
	return nil
}

// FFT3DFlops is the classic 5·N³·log2(N³) operation count.
func FFT3DFlops(n int) float64 {
	points := float64(n) * float64(n) * float64(n)
	return 5 * points * math.Log2(points)
}

// FFT3DTraffic is the HBM traffic of a 3-D FFT executed as three
// dimension passes: each pass reads and writes the full volume once
// (complex128 = 16 B).
func FFT3DTraffic(n int) units.Bytes {
	points := float64(n) * float64(n) * float64(n)
	return units.Bytes(3 * 2 * 16 * points)
}
