package miniapps

import (
	"fmt"
	"math/rand"

	"frontiersim/internal/gpu"
	"frontiersim/internal/units"
)

// GEMM is a real blocked matrix multiply C = A·B — the kernel class
// behind CoralGemm (Fig. 3), CoMet's comparisons, and LSMS's inversions.
// The blocked implementation validates against a naive triple loop, and
// its counted work drives the roofline prediction.
type GEMM struct {
	N     int
	Block int
	A, B  []float64
}

// NewGEMM builds random n×n operands (block must divide n).
func NewGEMM(n, block int, rng *rand.Rand) (*GEMM, error) {
	if n < 1 || block < 1 || n%block != 0 {
		return nil, fmt.Errorf("miniapps: gemm needs block | n, got n=%d block=%d", n, block)
	}
	g := &GEMM{N: n, Block: block, A: make([]float64, n*n), B: make([]float64, n*n)}
	for i := range g.A {
		g.A[i] = rng.NormFloat64()
		g.B[i] = rng.NormFloat64()
	}
	return g, nil
}

// Naive computes the reference product with a plain triple loop.
func (g *GEMM) Naive() []float64 {
	n := g.N
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := g.A[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += a * g.B[k*n+j]
			}
		}
	}
	return c
}

// Blocked computes the product with cache blocking — the structure GPU
// GEMMs use with LDS tiles.
func (g *GEMM) Blocked() []float64 {
	n, bs := g.N, g.Block
	c := make([]float64, n*n)
	for ii := 0; ii < n; ii += bs {
		for kk := 0; kk < n; kk += bs {
			for jj := 0; jj < n; jj += bs {
				for i := ii; i < ii+bs; i++ {
					for k := kk; k < kk+bs; k++ {
						a := g.A[i*n+k]
						for j := jj; j < jj+bs; j++ {
							c[i*n+j] += a * g.B[k*n+j]
						}
					}
				}
			}
		}
	}
	return c
}

// Kernel characterises an n×n FP64 GEMM for the roofline: 2n³ flops,
// 3n² operand traffic, matrix pipes at hipBLAS's achieved efficiency.
func GEMMKernel(n int) gpu.Kernel {
	fn := float64(n)
	return gpu.Kernel{
		Name:            fmt.Sprintf("dgemm-%d", n),
		Flops:           2 * fn * fn * fn,
		Bytes:           units.Bytes(3 * fn * fn * 8),
		Precision:       gpu.FP64,
		UsesMatrixCores: true,
		Efficiency:      0.7056, // Fig. 3: 33.8 of 47.9 TF/s
	}
}
