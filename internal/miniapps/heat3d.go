// Package miniapps contains small, *real* numerical kernels — a 3-D heat
// stencil, a radix-2 FFT, and a direct N-body force kernel — that
// actually execute and validate numerically. Each kernel counts its own
// floating-point work and memory traffic, and those counts drive the GPU
// roofline model's predictions for the corresponding application class
// (AthenaPK/Cholla ← stencil, GESTS ← FFT, HACC ← N-body). They close
// the loop between the simulator's analytic constants and code that
// really runs: the bytes-per-update and flops-per-point the app proxies
// assume are measured here, not guessed.
package miniapps

import (
	"fmt"
	"math"

	"frontiersim/internal/gpu"
	"frontiersim/internal/units"
)

// Heat3D is an explicit 7-point finite-difference diffusion solver on a
// cubic periodic domain — the stencil class behind the paper's
// hydro/MHD applications.
type Heat3D struct {
	N     int // points per side
	Alpha float64
	DT    float64
	grid  []float64
	next  []float64
	// Steps taken so far.
	Steps int
}

// NewHeat3D allocates an N³ domain initialised with a single Fourier
// mode, whose exact decay rate is known analytically — the validation
// target.
func NewHeat3D(n int) (*Heat3D, error) {
	if n < 4 {
		return nil, fmt.Errorf("miniapps: heat3d needs n >= 4")
	}
	h := &Heat3D{
		N:     n,
		Alpha: 0.1,
		DT:    0.1, // stable for alpha*dt*6 < 1
		grid:  make([]float64, n*n*n),
		next:  make([]float64, n*n*n),
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				h.grid[h.idx(i, j, k)] = math.Sin(2 * math.Pi * float64(i) / float64(n))
			}
		}
	}
	return h, nil
}

func (h *Heat3D) idx(i, j, k int) int { return (k*h.N+j)*h.N + i }

// Step advances one explicit Euler step with periodic boundaries.
func (h *Heat3D) Step() {
	n := h.N
	c := h.Alpha * h.DT
	for k := 0; k < n; k++ {
		km, kp := (k+n-1)%n, (k+1)%n
		for j := 0; j < n; j++ {
			jm, jp := (j+n-1)%n, (j+1)%n
			for i := 0; i < n; i++ {
				im, ip := (i+n-1)%n, (i+1)%n
				lap := h.grid[h.idx(im, j, k)] + h.grid[h.idx(ip, j, k)] +
					h.grid[h.idx(i, jm, k)] + h.grid[h.idx(i, jp, k)] +
					h.grid[h.idx(i, j, km)] + h.grid[h.idx(i, j, kp)] -
					6*h.grid[h.idx(i, j, k)]
				h.next[h.idx(i, j, k)] = h.grid[h.idx(i, j, k)] + c*lap
			}
		}
	}
	h.grid, h.next = h.next, h.grid
	h.Steps++
}

// Amplitude returns the current amplitude of the initial Fourier mode.
func (h *Heat3D) Amplitude() float64 {
	// Probe at the quarter-wave peak.
	return h.grid[h.idx(h.N/4, 0, 0)]
}

// ExpectedAmplitude is the analytic amplitude after the taken steps: the
// mode sin(2πx/N) decays by (1 - c(6 - 2cos(2π/N) - 4)) per step under
// the discrete Laplacian — exactly 1 - 2c(1-cos(2π/N)) in the x
// direction only.
func (h *Heat3D) ExpectedAmplitude() float64 {
	c := h.Alpha * h.DT
	decay := 1 - 2*c*(1-math.Cos(2*math.Pi/float64(h.N)))
	return math.Pow(decay, float64(h.Steps))
}

// FlopsPerPoint is the floating-point work of one stencil update (6 adds
// for the Laplacian, 1 subtract-scale, 1 multiply, 1 add).
const heatFlopsPerPoint = 9

// heatBytesPerPoint is the HBM traffic of one update on a cache-blocked
// GPU implementation: one read + one write of the cell (neighbours hit
// in cache/LDS).
const heatBytesPerPoint = 16

// Kernel characterises one full-grid step for the roofline model.
func (h *Heat3D) Kernel() gpu.Kernel {
	points := float64(h.N) * float64(h.N) * float64(h.N)
	return gpu.Kernel{
		Name:      fmt.Sprintf("heat3d-%d", h.N),
		Flops:     heatFlopsPerPoint * points,
		Bytes:     units.Bytes(heatBytesPerPoint * points),
		Precision: gpu.FP64,
	}
}

// PredictStepTime asks the roofline model how long one step of an
// HBM-resident grid takes on a GCD; the stencil is bandwidth bound, so
// this is traffic over STREAM-class bandwidth.
func (h *Heat3D) PredictStepTime(g *gpu.GCD) (units.Seconds, error) {
	return g.KernelTime(h.Kernel())
}
