package miniapps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"frontiersim/internal/gpu"
)

// The stencil solver must track the analytic decay of its Fourier mode.
func TestHeat3DMatchesAnalyticDecay(t *testing.T) {
	h, err := NewHeat3D(16)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 50; s++ {
		h.Step()
	}
	got := h.Amplitude()
	want := h.ExpectedAmplitude()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("amplitude after %d steps = %.12f, analytic %.12f", h.Steps, got, want)
	}
	if got >= 1 || got <= 0 {
		t.Errorf("mode should decay within (0,1): %v", got)
	}
}

func TestHeat3DValidation(t *testing.T) {
	if _, err := NewHeat3D(2); err == nil {
		t.Error("tiny grid should error")
	}
}

// The stencil's roofline prediction: bandwidth bound, step time =
// traffic / HBM rate. A 512^3 FP64 grid (2 GiB working set): ~1.3 ms.
func TestHeat3DRooflinePrediction(t *testing.T) {
	h, _ := NewHeat3D(8) // real run small; prediction for a big grid
	h.N = 512
	g := gpu.NewMI250XGCD()
	d, err := h.PredictStepTime(g)
	if err != nil {
		t.Fatal(err)
	}
	points := 512.0 * 512 * 512
	want := 16 * points / 1.635e12
	if math.Abs(float64(d)-want)/want > 0.1 {
		t.Errorf("step prediction %v, want ~%.3g s (bandwidth bound)", d, want)
	}
	if g.ComputeBound(h.Kernel()) {
		t.Error("a 7-point stencil must be bandwidth bound on an MI250X")
	}
}

// FFT correctness: a pure tone transforms to a single spike.
func TestFFT1DPureTone(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*5*float64(i)/float64(n)))
	}
	if err := FFT1D(x); err != nil {
		t.Fatal(err)
	}
	for k := range x {
		mag := cmplx.Abs(x[k])
		if k == 5 {
			if math.Abs(mag-float64(n)) > 1e-9 {
				t.Errorf("bin 5 magnitude = %v, want %d", mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d should be empty, got %v", k, mag)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 128)
	orig := make([]complex128, len(x))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	if err := FFT1D(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT1D(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, x[i], orig[i])
		}
	}
	if err := FFT1D(make([]complex128, 3)); err == nil {
		t.Error("non-power-of-two should error")
	}
}

// Parseval's theorem on the 3-D transform.
func TestFFT3DParseval(t *testing.T) {
	f, err := NewFFT3D(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var timeEnergy float64
	for i := range f.Data {
		f.Data[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(f.Data[i] * cmplx.Conj(f.Data[i]))
	}
	if err := f.Transform(false); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for i := range f.Data {
		freqEnergy += real(f.Data[i] * cmplx.Conj(f.Data[i]))
	}
	n3 := float64(8 * 8 * 8)
	if math.Abs(freqEnergy/n3-timeEnergy)/timeEnergy > 1e-10 {
		t.Errorf("Parseval violated: time %v vs freq/N %v", timeEnergy, freqEnergy/n3)
	}
	// And back.
	if err := f.Transform(true); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFFT3D(6); err == nil {
		t.Error("non-power-of-two volume should error")
	}
}

// The GESTS proxy assumes ~8 bandwidth-bound volume passes per step; the
// real 3-D FFT's measured traffic is 6 volume passes (3 dims x R+W),
// consistent to within the proxy's slack.
func TestFFTTrafficMatchesGESTSAssumption(t *testing.T) {
	n := 1024
	points := float64(n) * float64(n) * float64(n)
	passes := float64(FFT3DTraffic(n)) / (16 * points)
	if passes != 6 {
		t.Errorf("FFT traffic = %.1f volume passes, want 6 (3 dims x read+write)", passes)
	}
	// With complex64 data (GESTS runs FP32) the per-step forward+inverse
	// pair costs 2x6 passes of 8 B = 96 B/point vs the proxy's 8 passes
	// of 8 B = 64 B/point on the 8 B working array — same order, and
	// both far below the all-to-all term that dominates the step.
}

// Energy conservation of the leapfrog integrator.
func TestNBodyEnergyConservation(t *testing.T) {
	b, err := NewNBody(64, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	e0 := b.Energy()
	for s := 0; s < 200; s++ {
		b.Step()
	}
	e1 := b.Energy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 1e-3 {
		t.Errorf("energy drift %.2e over %d steps; leapfrog should hold ~1e-4", drift, b.Steps)
	}
	if _, err := NewNBody(1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("one body should error")
	}
}

// The N-body force sweep must be compute bound on the GPU (HACC's whole
// design bet) and its roofline time must follow N².
func TestNBodyRoofline(t *testing.T) {
	g := gpu.NewMI250XGCD()
	b, _ := NewNBody(2, rand.New(rand.NewSource(4)))
	b.N = 1 << 20 // predict at HACC-like particle counts per GCD
	if !g.ComputeBound(b.Kernel()) {
		t.Error("direct N-body must be compute bound")
	}
	t1, err := b.PredictForceTime(g)
	if err != nil {
		t.Fatal(err)
	}
	b.N = 2 << 20
	t2, _ := b.PredictForceTime(g)
	ratio := float64(t2) / float64(t1)
	if ratio < 3.8 || ratio > 4.2 {
		t.Errorf("doubling N should ~4x the sweep: got %.2fx", ratio)
	}
}

// The blocked GEMM must agree with the naive reference exactly (same
// operation order per element up to float assoc within tolerance).
func TestGEMMBlockedMatchesNaive(t *testing.T) {
	g, err := NewGEMM(64, 16, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	naive := g.Naive()
	blocked := g.Blocked()
	for i := range naive {
		if math.Abs(naive[i]-blocked[i]) > 1e-9*math.Max(1, math.Abs(naive[i])) {
			t.Fatalf("blocked diverges at %d: %v vs %v", i, blocked[i], naive[i])
		}
	}
	if _, err := NewGEMM(64, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("block must divide n")
	}
}

// The GEMM kernel's roofline prediction at n=16384 must land on
// Figure 3's 33.8 TF/s — the same number the gpu package's CoralGemm
// model produces independently.
func TestGEMMRooflineMatchesFig3(t *testing.T) {
	g := gpu.NewMI250XGCD()
	k := GEMMKernel(16384)
	if !g.ComputeBound(k) {
		t.Fatal("a 16k DGEMM must be compute bound")
	}
	rate, err := g.KernelRate(k)
	if err != nil {
		t.Fatal(err)
	}
	tf := float64(rate) / 1e12
	if math.Abs(tf-33.8)/33.8 > 0.02 {
		t.Errorf("roofline DGEMM = %.1f TF/s, want 33.8 (Fig. 3)", tf)
	}
	// Cross-model: the CoralGemm sweep model agrees.
	coral := float64(g.GemmAchieved(gpu.FP64, 16384)) / 1e12
	if math.Abs(tf-coral)/coral > 0.03 {
		t.Errorf("roofline %v vs CoralGemm model %v: models disagree", tf, coral)
	}
}
