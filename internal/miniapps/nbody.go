package miniapps

import (
	"fmt"
	"math"
	"math/rand"

	"frontiersim/internal/gpu"
	"frontiersim/internal/units"
)

// NBody is a direct-sum gravitational kernel with softening — the force
// class behind HACC's short-range interactions. It integrates with
// leapfrog (kick-drift-kick), which conserves energy to second order:
// the validation target.
type NBody struct {
	N    int
	Soft float64
	DT   float64
	pos  [][3]float64
	vel  [][3]float64
	acc  [][3]float64
	mass []float64
	// Steps taken.
	Steps int
}

// NewNBody builds a randomised cluster of n bodies.
func NewNBody(n int, rng *rand.Rand) (*NBody, error) {
	if n < 2 {
		return nil, fmt.Errorf("miniapps: nbody needs n >= 2")
	}
	b := &NBody{
		N:    n,
		Soft: 0.05,
		DT:   1e-3,
		pos:  make([][3]float64, n),
		vel:  make([][3]float64, n),
		acc:  make([][3]float64, n),
		mass: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			b.pos[i][d] = rng.Float64() - 0.5
			b.vel[i][d] = 0.1 * (rng.Float64() - 0.5)
		}
		b.mass[i] = 1 / float64(n)
	}
	b.computeForces()
	return b, nil
}

func (b *NBody) computeForces() {
	soft2 := b.Soft * b.Soft
	for i := range b.acc {
		b.acc[i] = [3]float64{}
	}
	for i := 0; i < b.N; i++ {
		for j := i + 1; j < b.N; j++ {
			var d [3]float64
			r2 := soft2
			for k := 0; k < 3; k++ {
				d[k] = b.pos[j][k] - b.pos[i][k]
				r2 += d[k] * d[k]
			}
			inv := 1 / (r2 * math.Sqrt(r2))
			for k := 0; k < 3; k++ {
				b.acc[i][k] += b.mass[j] * d[k] * inv
				b.acc[j][k] -= b.mass[i] * d[k] * inv
			}
		}
	}
}

// Step advances one leapfrog step.
func (b *NBody) Step() {
	half := b.DT / 2
	for i := 0; i < b.N; i++ {
		for k := 0; k < 3; k++ {
			b.vel[i][k] += b.acc[i][k] * half
			b.pos[i][k] += b.vel[i][k] * b.DT
		}
	}
	b.computeForces()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 3; k++ {
			b.vel[i][k] += b.acc[i][k] * half
		}
	}
	b.Steps++
}

// Energy returns kinetic + potential energy (softened).
func (b *NBody) Energy() float64 {
	e := 0.0
	for i := 0; i < b.N; i++ {
		v2 := 0.0
		for k := 0; k < 3; k++ {
			v2 += b.vel[i][k] * b.vel[i][k]
		}
		e += 0.5 * b.mass[i] * v2
	}
	soft2 := b.Soft * b.Soft
	for i := 0; i < b.N; i++ {
		for j := i + 1; j < b.N; j++ {
			r2 := soft2
			for k := 0; k < 3; k++ {
				d := b.pos[j][k] - b.pos[i][k]
				r2 += d * d
			}
			e -= b.mass[i] * b.mass[j] / math.Sqrt(r2)
		}
	}
	return e
}

// nbodyFlopsPerPair is the work of one pairwise interaction (distance,
// inverse-cube, two accumulate-3-vectors) as a GPU implementation counts
// it (~23 FLOPs with the rsqrt).
const nbodyFlopsPerPair = 23

// Kernel characterises one full force evaluation for the roofline: the
// pairwise sweep is compute bound — each tile of bodies is reused from
// shared memory, so traffic is linear while work is quadratic. HACC runs
// this class in single precision.
func (b *NBody) Kernel() gpu.Kernel {
	pairs := float64(b.N) * float64(b.N-1) / 2
	return gpu.Kernel{
		Name:       fmt.Sprintf("nbody-%d", b.N),
		Flops:      nbodyFlopsPerPair * pairs,
		Bytes:      units.Bytes(32 * float64(b.N)), // positions + masses streamed once
		Precision:  gpu.FP32,
		Efficiency: 0.75,
	}
}

// PredictForceTime asks the roofline model for the force-sweep time on a
// GCD at this problem size.
func (b *NBody) PredictForceTime(g *gpu.GCD) (units.Seconds, error) {
	return g.KernelTime(b.Kernel())
}
