package miniapps

import (
	"fmt"
	"math"

	"frontiersim/internal/gpu"
	"frontiersim/internal/job"
	"frontiersim/internal/units"
)

// The miniapp kernels double as analytic job-program builders: the same
// measured flops-per-point and bytes-per-point constants that calibrate
// the roofline predictions become per-device phase work, paired with the
// communication pattern the distributed version of each kernel issues.
// Problem sizes here are per *device* (the kernels weak-scale), so the
// per-step work is placement-independent and only the collectives react
// to where the job lands.

// phase converts a gpu.Kernel to a compute phase.
func phase(name string, k gpu.Kernel) job.Phase {
	return job.Phase{
		Name: name, Kind: job.Compute,
		Flops: k.Flops, Bytes: k.Bytes,
		Precision: k.Precision, MatrixCores: k.UsesMatrixCores,
		Efficiency: k.Efficiency,
	}
}

// Heat3DProgram is the distributed stencil: one Heat3D step per device
// per iteration plus the six-face ghost exchange (one ghost layer of
// float64 per face).
func Heat3DProgram(nPerDevice, nodes, ppn, iterations int) (*job.Program, error) {
	if nPerDevice < 4 {
		return nil, fmt.Errorf("miniapps: heat3d needs n >= 4")
	}
	// Kernel() is pure arithmetic in N; skip NewHeat3D so building a
	// program never allocates the actual N³ grid.
	h := &Heat3D{N: nPerDevice}
	face := units.Bytes(float64(nPerDevice) * float64(nPerDevice) * 8)
	return &job.Program{
		Name: fmt.Sprintf("heat3d-%d", nPerDevice), Class: "stencil",
		Nodes: nodes, PPN: ppn,
		Iterations: iterations,
		Loop: []job.Phase{
			phase("stencil-sweep", h.Kernel()),
			{Name: "ghost-exchange", Kind: job.Collective, Op: job.Halo, Payload: face},
		},
	}, nil
}

// FFT3DProgram is the distributed pseudo-spectral kernel: local FFT
// passes over an n³-per-device volume, then the transpose all-to-all
// (each rank's slab split across its peers).
func FFT3DProgram(nPerDevice, nodes, ppn, iterations int) (*job.Program, error) {
	if nPerDevice == 0 || nPerDevice&(nPerDevice-1) != 0 {
		return nil, fmt.Errorf("miniapps: FFT3D size %d is not a power of two", nPerDevice)
	}
	ranks := nodes * ppn
	volume := float64(nPerDevice) * float64(nPerDevice) * float64(nPerDevice) * 16
	pair := 0.0
	if ranks > 1 {
		pair = volume / float64(ranks-1)
	}
	return &job.Program{
		Name: fmt.Sprintf("fft3d-%d", nPerDevice), Class: "spectral",
		Nodes: nodes, PPN: ppn,
		Iterations: iterations,
		Loop: []job.Phase{
			{Name: "fft-passes", Kind: job.Compute,
				Flops: FFT3DFlops(nPerDevice), Bytes: FFT3DTraffic(nPerDevice), Precision: gpu.FP64},
			{Name: "transpose-a2a", Kind: job.Collective, Op: job.AllToAll, Payload: units.Bytes(pair)},
		},
	}, nil
}

// NBodyProgram is the distributed direct-sum force kernel: a quadratic
// per-device sweep, then the ring stage that passes particle tiles to
// the next rank and the timestep reduction.
func NBodyProgram(bodiesPerDevice, nodes, ppn, iterations int) (*job.Program, error) {
	if bodiesPerDevice < 2 {
		return nil, fmt.Errorf("miniapps: nbody needs >= 2 bodies per device")
	}
	pairs := float64(bodiesPerDevice) * float64(bodiesPerDevice-1) / 2
	tile := units.Bytes(32 * float64(bodiesPerDevice))
	return &job.Program{
		Name: fmt.Sprintf("nbody-%d", bodiesPerDevice), Class: "nbody",
		Nodes: nodes, PPN: ppn,
		Iterations: iterations,
		Loop: []job.Phase{
			{Name: "force-sweep", Kind: job.Compute,
				Flops: nbodyFlopsPerPair * pairs, Bytes: tile,
				Precision: gpu.FP32, Efficiency: 0.75},
			{Name: "tile-ring", Kind: job.Collective, Op: job.SendRecv, Payload: tile, PeerStride: 1},
			{Name: "dt-allreduce", Kind: job.Collective, Op: job.Allreduce, Payload: 8},
		},
	}, nil
}

// GEMMProgram is the model-parallel GEMM: per-device dgemm shards with
// the row-broadcast/column-reduce of a 2-D SUMMA decomposition
// approximated as an allgather plus reduce-scatter of the operand panels.
func GEMMProgram(nPerDevice, nodes, ppn, iterations int) (*job.Program, error) {
	if nPerDevice < 1 {
		return nil, fmt.Errorf("miniapps: gemm needs a positive tile size")
	}
	panel := units.Bytes(math.Pow(float64(nPerDevice), 2) * 8)
	return &job.Program{
		Name: fmt.Sprintf("dgemm-%d", nPerDevice), Class: "gemm",
		Nodes: nodes, PPN: ppn,
		Iterations: iterations,
		Loop: []job.Phase{
			phase("dgemm-shard", GEMMKernel(nPerDevice)),
			{Name: "panel-allgather", Kind: job.Collective, Op: job.AllGather, Payload: panel},
			{Name: "panel-reducescatter", Kind: job.Collective, Op: job.ReduceScatter, Payload: panel},
		},
	}, nil
}
