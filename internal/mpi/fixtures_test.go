package mpi

import (
	"fmt"

	"frontiersim/internal/fabric"
	"frontiersim/internal/units"
)

// Test fixtures replicating the configs the machine-spec layer derives
// (this package sits below internal/machine in the import graph, so the
// tests carry the values locally; the golden test in internal/machine
// pins the spec-derived configs to the same values).

func frontierConfig() fabric.Config {
	return fabric.Config{
		Name:                 "frontier-slingshot11",
		ComputeGroups:        74,
		IOGroups:             5,
		MgmtGroups:           1,
		ComputeGroupSwitches: 32,
		TORGroupSwitches:     16,
		EndpointsPerSwitch:   16,
		NICsPerNode:          4,
		LinkRate:             25 * units.GBps,
		EndpointEfficiency:   0.70,
		ComputeComputeLinks:  4,
		ComputeIOLinks:       2,
		ComputeMgmtLinks:     2,
		IOIOLinks:            10,
		IOMgmtLinks:          6,
		SwitchLatency:        200 * units.Nanosecond,
		EndpointLatency:      650 * units.Nanosecond,
	}
}

func scaledConfig(computeGroups, switchesPerGroup, endpointsPerSwitch int) fabric.Config {
	c := frontierConfig()
	c.Name = fmt.Sprintf("scaled-dragonfly-%dx%dx%d", computeGroups, switchesPerGroup, endpointsPerSwitch)
	c.ComputeGroups = computeGroups
	c.IOGroups = 0
	c.MgmtGroups = 0
	c.ComputeGroupSwitches = switchesPerGroup
	c.EndpointsPerSwitch = endpointsPerSwitch
	return c
}
