// Package mpi provides the message-passing abstraction the application
// proxies run on: communicators of ranks placed on fabric nodes, with
// analytic time models for point-to-point transfers and the collectives
// the paper's applications depend on (allreduce for solvers, all-to-all
// for pseudo-spectral FFTs, halo exchanges for stencil codes).
//
// Bandwidth terms derive from the fabric's structural parameters — the
// endpoint efficiency, the global-link taper, and the average number of
// global hops under adaptive routing — the same quantities that drive the
// flow-level solver, so the collective models agree with the mpiGraph and
// GPCNeT measurements without re-solving a full flow problem per call.
package mpi

import (
	"fmt"
	"math"

	"frontiersim/internal/fabric"
	"frontiersim/internal/units"
)

// Model constants calibrated against the paper's network measurements.
const (
	// avgGlobalHops is the mean number of global links a byte crosses
	// under adaptive routing (half minimal at 1 hop, half Valiant at 2).
	avgGlobalHops = 1.5
	// fabricUtilization is the achievable fraction of structural
	// capacity under dense collectives.
	fabricUtilization = 0.80
	// smallMsgLatency is the effective point-to-point alpha (the
	// paper's 2.6 µs RR latency).
	smallMsgLatency = 2.6 * units.Microsecond
	// rendezvousOverhead is the extra software cost of large-message
	// protocol per message.
	rendezvousOverhead = 1.2 * units.Microsecond
)

// Comm is a communicator: ranks round-robin across the NICs of a set of
// compute nodes.
type Comm struct {
	F     *fabric.Fabric
	Nodes []int
	PPN   int

	groups map[int]bool
}

// NewComm creates a communicator over the given compute nodes with ppn
// ranks per node.
func NewComm(f *fabric.Fabric, nodes []int, ppn int) (*Comm, error) {
	if len(nodes) == 0 || ppn < 1 {
		return nil, fmt.Errorf("mpi: communicator needs nodes and ppn >= 1")
	}
	maxNode := f.Cfg.ComputeNodes()
	groups := make(map[int]bool)
	for _, n := range nodes {
		if n < 0 || n >= maxNode {
			return nil, fmt.Errorf("mpi: node %d outside fabric (0..%d)", n, maxNode-1)
		}
		groups[f.EndpointGroup(f.NodeEndpoints(n)[0])] = true
	}
	return &Comm{F: f, Nodes: nodes, PPN: ppn, groups: groups}, nil
}

// Size returns the rank count.
func (c *Comm) Size() int { return len(c.Nodes) * c.PPN }

// NodeOf returns the node hosting a rank (block distribution).
func (c *Comm) NodeOf(rank int) int { return c.Nodes[rank/c.PPN] }

// EndpointOf returns the NIC endpoint a rank injects through.
func (c *Comm) EndpointOf(rank int) int {
	local := rank % c.PPN
	eps := c.F.NodeEndpoints(c.NodeOf(rank))
	return eps[local%len(eps)]
}

// GroupsSpanned reports how many dragonfly groups the job covers.
func (c *Comm) GroupsSpanned() int { return len(c.groups) }

// ranksPerNIC is how many ranks share one NIC.
func (c *Comm) ranksPerNIC() float64 {
	r := float64(c.PPN) / float64(c.F.Cfg.NICsPerNode)
	if r < 1 {
		return 1
	}
	return r
}

// nicBW is the achievable per-NIC rate.
func (c *Comm) nicBW() float64 {
	return float64(c.F.Cfg.LinkRate) * c.F.Cfg.EndpointEfficiency
}

// globalHops is the mean number of global-link traversals per byte for
// this job's placement. A job spread across every group offers minimal
// routing a direct link for most pairs (≈1.5 hops with adaptive
// spreading); a job packed into few groups must route almost everything
// non-minimally through intermediate groups (→2 hops). This is exactly
// why Slurm spreads large jobs "to maximize the number of global
// connections available to minimal routing" (§3.4.2).
func (c *Comm) globalHops() float64 {
	total := c.F.Cfg.ComputeGroups
	if total <= 1 {
		return avgGlobalHops
	}
	fracMinimal := float64(c.GroupsSpanned()-1) / float64(total-1)
	return 2 - 0.5*fracMinimal
}

// globalShare is the per-endpoint share of global capacity for this
// job's placement under all-inter-group traffic.
func (c *Comm) globalShare() float64 {
	endpoints := float64(len(c.Nodes) * c.F.Cfg.NICsPerNode)
	globalDirected := 2 * float64(c.F.Cfg.TotalGlobalBandwidth())
	// Only the fraction of traffic leaving the group crosses globals.
	interFrac := 1 - 1/float64(c.GroupsSpanned())
	return globalDirected * fabricUtilization / (endpoints * interFrac * c.globalHops())
}

// PerNICBandwidth returns the sustained inter-node bandwidth one NIC sees
// under permutation-style traffic for this job's placement: NIC-limited
// when the job packs into one group, global-taper-limited when it spreads.
func (c *Comm) PerNICBandwidth() units.BytesPerSecond {
	nic := c.nicBW()
	if c.GroupsSpanned() <= 1 || c.F.Kind == fabric.FatTree {
		return units.BytesPerSecond(nic)
	}
	return units.BytesPerSecond(math.Min(nic, c.globalShare()))
}

// PerRankBandwidth divides the NIC rate among the ranks sharing it.
func (c *Comm) PerRankBandwidth() units.BytesPerSecond {
	return units.BytesPerSecond(float64(c.PerNICBandwidth()) / c.ranksPerNIC())
}

// SendRecv models one pairwise exchange of b bytes between two ranks.
func (c *Comm) SendRecv(src, dst int, b units.Bytes) units.Seconds {
	if c.NodeOf(src) == c.NodeOf(dst) {
		// Intra-node: the runtime moves data over xGMI; model at the
		// CU-copy single-link rate.
		return smallMsgLatency/2 + units.TimeToMove(b, 37.5*units.GBps)
	}
	alpha := smallMsgLatency
	if b > 64*units.KiB {
		alpha += rendezvousOverhead
	}
	return alpha + units.TimeToMove(b, c.PerRankBandwidth())
}

// Barrier models a dissemination barrier.
func (c *Comm) Barrier() units.Seconds {
	return c.logStages() * smallMsgLatency
}

// Allreduce models an allreduce of b bytes per rank: latency-bound
// dissemination for small messages, a bandwidth-bound ring for large.
func (c *Comm) Allreduce(b units.Bytes) units.Seconds {
	small := c.logStages() * (smallMsgLatency + 400*units.Nanosecond)
	if b <= 4*units.KiB {
		return small
	}
	p := float64(c.Size())
	ring := units.Seconds(2 * float64(b) * (p - 1) / p / float64(c.PerRankBandwidth()))
	return small + ring
}

// Broadcast models a pipelined binomial broadcast of b bytes.
func (c *Comm) Broadcast(b units.Bytes) units.Seconds {
	return c.logStages()*smallMsgLatency + units.TimeToMove(b, c.PerRankBandwidth())
}

// Reduce is modelled like Allreduce without the distribution phase.
func (c *Comm) Reduce(b units.Bytes) units.Seconds {
	return c.Allreduce(b) / 2
}

// AllToAll models a complete exchange where every rank sends b bytes to
// every other rank. This is the pattern that dominates pseudo-spectral
// codes (GESTS): per-node bandwidth lands at ~30 GB/s on the full
// machine, the paper's §4.2.2 number.
func (c *Comm) AllToAll(b units.Bytes) units.Seconds {
	p := float64(c.Size())
	if p < 2 {
		return 0
	}
	perRankVolume := float64(b) * (p - 1)
	// All-to-all keeps every NIC busy in both directions; the fraction
	// of traffic staying on-node is negligible at scale.
	t := perRankVolume / float64(c.AllToAllPerRankBandwidth())
	return units.Seconds(t) + c.logStages()*smallMsgLatency
}

// AllToAllPerRankBandwidth is the sustained per-rank rate under a
// complete exchange.
func (c *Comm) AllToAllPerRankBandwidth() units.BytesPerSecond {
	nic := c.nicBW()
	perRank := nic / c.ranksPerNIC()
	if c.GroupsSpanned() <= 1 || c.F.Kind == fabric.FatTree {
		return units.BytesPerSecond(perRank)
	}
	return units.BytesPerSecond(math.Min(perRank, c.globalShare()/c.ranksPerNIC()))
}

// Halo3D models a nearest-neighbour exchange on a 3-D domain
// decomposition: six faces of faceBytes each, overlapping across the
// node's NICs. Stencil codes (Cholla, AthenaPK) are dominated by this.
func (c *Comm) Halo3D(faceBytes units.Bytes) units.Seconds {
	// Three send/receive phases (x, y, z), each moving two faces per
	// rank. Neighbours are mostly placement-adjacent, so the NIC rate
	// applies rather than the spread-job global share.
	perRank := c.nicBW() / c.ranksPerNIC()
	phase := units.Seconds(2*float64(faceBytes)/perRank) + smallMsgLatency
	return 3 * phase
}

// logStages returns ceil(log2(P)) as a multiplier.
func (c *Comm) logStages() units.Seconds {
	return units.Seconds(math.Ceil(math.Log2(float64(c.Size()))))
}

// String summarises the communicator.
func (c *Comm) String() string {
	return fmt.Sprintf("comm: %d ranks (%d nodes x %d ppn), %d groups",
		c.Size(), len(c.Nodes), c.PPN, c.GroupsSpanned())
}

// Split partitions the communicator into disjoint sub-communicators by
// color (ranks keep their relative order), the building block for the
// row/column communicators a 2-D pencil decomposition uses.
func (c *Comm) Split(color func(rank int) int) (map[int]*Comm, error) {
	nodesByColor := map[int][]int{}
	seen := map[int]map[int]bool{}
	for r := 0; r < c.Size(); r++ {
		col := color(r)
		n := c.NodeOf(r)
		if seen[col] == nil {
			seen[col] = map[int]bool{}
		}
		if !seen[col][n] {
			seen[col][n] = true
			nodesByColor[col] = append(nodesByColor[col], n)
		}
	}
	out := make(map[int]*Comm, len(nodesByColor))
	for col, nodes := range nodesByColor {
		sub, err := NewComm(c.F, nodes, c.PPN)
		if err != nil {
			return nil, fmt.Errorf("mpi: split color %d: %w", col, err)
		}
		out[col] = sub
	}
	return out, nil
}

// SplitOne builds the single sub-communicator Split would return for
// the given color, without materializing the others: identical node
// order (first appearance over ranks in rank order), identical PPN, so
// the result prices bit-identically to Split(color)[col]. The pricing
// path uses it because congruent-subgroup collectives only ever price
// the rank-0 subgroup, and a full Split of a hero-job communicator
// builds thousands of discarded sub-communicators.
func (c *Comm) SplitOne(color func(rank int) int, col int) (*Comm, error) {
	var nodes []int
	seen := map[int]bool{}
	for r := 0; r < c.Size(); r++ {
		if color(r) != col {
			continue
		}
		n := c.NodeOf(r)
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return nil, nil
	}
	sub, err := NewComm(c.F, nodes, c.PPN)
	if err != nil {
		return nil, fmt.Errorf("mpi: split color %d: %w", col, err)
	}
	return sub, nil
}

// AllGather models an allgather of b bytes contributed per rank: ring
// collection, each rank ends with P*b bytes.
func (c *Comm) AllGather(b units.Bytes) units.Seconds {
	p := float64(c.Size())
	if p < 2 {
		return 0
	}
	moved := float64(b) * (p - 1)
	return units.Seconds(moved/float64(c.PerRankBandwidth())) + c.logStages()*smallMsgLatency
}

// ReduceScatter models the mirror collective: each rank contributes b
// bytes and receives its reduced b/P slice.
func (c *Comm) ReduceScatter(b units.Bytes) units.Seconds {
	p := float64(c.Size())
	if p < 2 {
		return 0
	}
	moved := float64(b) * (p - 1) / p
	return units.Seconds(moved/float64(c.PerRankBandwidth())) + c.logStages()*smallMsgLatency
}
