package mpi

import (
	"math"
	"testing"
	"testing/quick"

	"frontiersim/internal/fabric"
	"frontiersim/internal/units"
)

func testFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	f, err := fabric.NewDragonfly(scaledConfig(6, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func nodeRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCommConstruction(t *testing.T) {
	f := testFabric(t)
	c, err := NewComm(f, nodeRange(16), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 128 {
		t.Errorf("size = %d, want 128", c.Size())
	}
	if c.NodeOf(0) != 0 || c.NodeOf(127) != 15 {
		t.Error("rank-to-node mapping wrong")
	}
	// Ranks round-robin over the node's 4 NICs.
	if c.EndpointOf(0) == c.EndpointOf(1) {
		t.Error("consecutive ranks should use different NICs")
	}
	if c.EndpointOf(0) != c.EndpointOf(4) {
		t.Error("ranks 0 and 4 should share NIC 0")
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestCommValidation(t *testing.T) {
	f := testFabric(t)
	if _, err := NewComm(f, nil, 8); err == nil {
		t.Error("empty node list should error")
	}
	if _, err := NewComm(f, []int{99999}, 8); err == nil {
		t.Error("out-of-range node should error")
	}
	if _, err := NewComm(f, nodeRange(4), 0); err == nil {
		t.Error("zero ppn should error")
	}
}

func TestGroupsSpanned(t *testing.T) {
	f := testFabric(t)
	packed, _ := NewComm(f, nodeRange(8), 8) // all in group 0
	if packed.GroupsSpanned() != 1 {
		t.Errorf("packed job spans %d groups, want 1", packed.GroupsSpanned())
	}
	spread, _ := NewComm(f, nodeRange(48), 8) // all 6 groups
	if spread.GroupsSpanned() != 6 {
		t.Errorf("spread job spans %d groups, want 6", spread.GroupsSpanned())
	}
}

func TestPackedJobGetsNICRate(t *testing.T) {
	f := testFabric(t)
	c, _ := NewComm(f, nodeRange(8), 8)
	want := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency
	if got := float64(c.PerNICBandwidth()); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("packed per-NIC = %.3g, want %.3g", got, want)
	}
}

func TestSpreadJobTaperLimited(t *testing.T) {
	f := testFabric(t)
	packed, _ := NewComm(f, nodeRange(8), 8)
	spread, _ := NewComm(f, nodeRange(48), 8)
	if spread.PerNICBandwidth() >= packed.PerNICBandwidth() {
		t.Errorf("spread job %v should be below packed %v", spread.PerNICBandwidth(), packed.PerNICBandwidth())
	}
}

func TestFrontierAllToAllCalibration(t *testing.T) {
	// Paper §4.2.2: all-to-all at 8 PPN with 128 KiB messages achieves
	// ~30-32 GB/s per node (7.5-8 GB/s per NIC).
	f, err := fabric.NewDragonfly(frontierConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewComm(f, nodeRange(9472), 8)
	if err != nil {
		t.Fatal(err)
	}
	perNode := float64(c.AllToAllPerRankBandwidth()) * 8 / 1e9
	if perNode < 28 || perNode > 36 {
		t.Errorf("all-to-all per node = %.1f GB/s, want ~30-32", perNode)
	}
}

func TestCollectiveOrderings(t *testing.T) {
	f := testFabric(t)
	c, _ := NewComm(f, nodeRange(32), 8)
	// Small allreduce is latency bound; big one costs more.
	small := c.Allreduce(8)
	big := c.Allreduce(64 * units.MiB)
	if big <= small {
		t.Errorf("allreduce: big %v <= small %v", big, small)
	}
	if small <= 0 {
		t.Error("allreduce must take time")
	}
	// Barrier is cheaper than a large broadcast.
	if c.Barrier() >= c.Broadcast(64*units.MiB) {
		t.Error("barrier should be cheaper than large broadcast")
	}
	// Reduce is cheaper than allreduce.
	if c.Reduce(units.MiB) >= c.Allreduce(units.MiB) {
		t.Error("reduce should be cheaper than allreduce")
	}
	// All-to-all grows with message size.
	if c.AllToAll(4*units.KiB) >= c.AllToAll(256*units.KiB) {
		t.Error("alltoall should grow with message size")
	}
	// Halo exchange grows with face size.
	if c.Halo3D(units.KiB) >= c.Halo3D(units.MiB) {
		t.Error("halo should grow with face bytes")
	}
}

func TestSendRecvLocality(t *testing.T) {
	f := testFabric(t)
	c, _ := NewComm(f, nodeRange(32), 8)
	intra := c.SendRecv(0, 1, units.MiB)  // same node
	inter := c.SendRecv(0, 16, units.MiB) // different node, 1 MiB
	if intra >= inter {
		t.Errorf("intra-node %v should beat inter-node %v", intra, inter)
	}
	// Large messages pay rendezvous.
	eager := c.SendRecv(0, 16, 4*units.KiB)
	if eager >= inter {
		t.Error("small message should be faster")
	}
}

func TestAllreduceScalesLogarithmically(t *testing.T) {
	f := testFabric(t)
	small, _ := NewComm(f, nodeRange(8), 8)  // 64 ranks: 6 stages
	large, _ := NewComm(f, nodeRange(32), 8) // 256 ranks: 8 stages
	ratio := float64(large.Allreduce(8)) / float64(small.Allreduce(8))
	if math.Abs(ratio-8.0/6.0) > 0.05 {
		t.Errorf("stage ratio = %.3f, want ~1.33", ratio)
	}
}

func TestSplitRowColumns(t *testing.T) {
	f := testFabric(t)
	c, _ := NewComm(f, nodeRange(16), 4) // 64 ranks
	// 8x8 grid: row communicators.
	rows, err := c.Split(func(rank int) int { return rank / 8 })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	totalRanks := 0
	for _, sub := range rows {
		totalRanks += sub.Size()
	}
	if totalRanks < c.Size() {
		t.Errorf("split loses ranks: %d < %d", totalRanks, c.Size())
	}
	// A sub-communicator a2a is cheaper than the global one for the
	// same per-pair bytes (fewer partners).
	if rows[0].AllToAll(64*units.KiB) >= c.AllToAll(64*units.KiB) {
		t.Error("sub-communicator alltoall should be cheaper")
	}
}

func TestAllGatherReduceScatter(t *testing.T) {
	f := testFabric(t)
	c, _ := NewComm(f, nodeRange(16), 4)
	ag := c.AllGather(units.MiB)
	rs := c.ReduceScatter(units.MiB)
	if ag <= 0 || rs <= 0 {
		t.Fatal("collectives must take time")
	}
	// Allgather moves (P-1)*b per rank; reduce-scatter (P-1)/P*b.
	if rs >= ag {
		t.Errorf("reduce-scatter %v should be cheaper than allgather %v", rs, ag)
	}
	single, _ := NewComm(f, nodeRange(1), 1)
	if single.AllGather(units.MiB) != 0 || single.ReduceScatter(units.MiB) != 0 {
		t.Error("single-rank collectives are free")
	}
}

// Property: for any job shape, bandwidth invariants hold — per-rank <=
// per-NIC <= line rate x efficiency, and all-to-all never beats
// permutation bandwidth.
func TestBandwidthInvariantsProperty(t *testing.T) {
	f := testFabric(t)
	nic := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency
	check := func(rawNodes uint8, rawPPN uint8) bool {
		n := int(rawNodes)%47 + 2
		ppn := int(rawPPN)%15 + 1
		c, err := NewComm(f, nodeRange(n), ppn)
		if err != nil {
			return false
		}
		perNIC := float64(c.PerNICBandwidth())
		perRank := float64(c.PerRankBandwidth())
		a2a := float64(c.AllToAllPerRankBandwidth())
		return perNIC <= nic*(1+1e-9) &&
			perRank <= perNIC*(1+1e-9) &&
			a2a <= perRank*(1+1e-9) &&
			perRank > 0 && a2a > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
