package network

import (
	"math"
	"math/rand"
	"testing"

	"frontiersim/internal/fabric"
	"frontiersim/internal/machine"
	"frontiersim/internal/units"
)

func TestLatencyModelShape(t *testing.T) {
	f := smallFabric(t)
	m := NewLatencyModel(f, rand.New(rand.NewSource(1)))
	var eps []int
	for i := 0; i < 64; i++ {
		eps = append(eps, i)
	}
	stats, err := m.MeasureLatency(eps, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Average <= 0 || stats.P99 < stats.Average || stats.Max < stats.P99 {
		t.Errorf("stats ordering broken: %+v", stats)
	}
	// Small-message latency should be low microseconds.
	if stats.Average < 1*units.Microsecond || stats.Average > 6*units.Microsecond {
		t.Errorf("average = %v, want a few microseconds", stats.Average)
	}
	if _, err := m.MeasureLatency([]int{0}, 10); err == nil {
		t.Error("one endpoint should error")
	}
}

func TestAllreduceLatencyScaling(t *testing.T) {
	f := smallFabric(t)
	m := NewLatencyModel(f, rand.New(rand.NewSource(2)))
	small := m.AllreduceLatency(64, 100)
	big := m.AllreduceLatency(65536, 100)
	if big.Average <= small.Average {
		t.Errorf("allreduce should grow with ranks: %v vs %v", small.Average, big.Average)
	}
	// Log scaling: 65536 ranks = 16 stages vs 6 stages.
	ratio := float64(big.Average) / float64(small.Average)
	if ratio < 2 || ratio > 3.5 {
		t.Errorf("stage scaling ratio = %.2f, want ~16/6", ratio)
	}
	if m.AllreduceLatency(1, 10).N != 0 {
		t.Error("allreduce of one rank is a no-op")
	}
}

func TestMpiGraphScaledDragonfly(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultMpiGraphConfig()
	cfg.Shifts = 6
	res, err := RunMpiGraph(f, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	nicPeak := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency
	if res.Max > nicPeak*1.1 {
		t.Errorf("max %.3g exceeds NIC ceiling %.3g", res.Max, nicPeak)
	}
	if res.Min <= 0 {
		t.Error("min should be positive")
	}
	// Dragonfly census must be wide: global taper plus non-minimal
	// routing spreads pairs well below the intra-group peak.
	if res.Spread() < 1.5 {
		t.Errorf("dragonfly spread = %.2f, want wide (>1.5)", res.Spread())
	}
	edges, counts := res.Histogram(20)
	if len(edges) != 20 || len(counts) != 20 {
		t.Fatal("histogram shape wrong")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(res.Samples) {
		t.Errorf("histogram loses samples: %d vs %d", total, len(res.Samples))
	}
}

func TestMpiGraphClosTight(t *testing.T) {
	cfg, err := machine.Summit().ClosConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Leaves = 16 // scaled Summit
	f, err := fabric.NewClos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := DefaultMpiGraphConfig()
	mcfg.RanksPerNode = 1
	mcfg.Shifts = 6
	res, err := RunMpiGraph(f, mcfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Non-blocking fat tree: tight distribution at the endpoint limit.
	want := float64(cfg.LinkRate) * cfg.EndpointEfficiency
	if math.Abs(res.Mean-want)/want > 0.05 {
		t.Errorf("clos mean = %.3g, want ~%.3g", res.Mean, want)
	}
	if res.Spread() > 1.3 {
		t.Errorf("clos spread = %.2f, want tight (<1.3)", res.Spread())
	}
}

func TestMpiGraphDragonflyWiderThanClos(t *testing.T) {
	// The headline qualitative claim of Figure 6.
	df := smallFabric(t)
	dfRes, err := RunMpiGraph(df, DefaultMpiGraphConfig(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := machine.Summit().ClosConfig()
	if err != nil {
		t.Fatal(err)
	}
	cc.Leaves = 16
	cl, _ := fabric.NewClos(cc)
	clCfg := DefaultMpiGraphConfig()
	clCfg.RanksPerNode = 1
	clRes, err := RunMpiGraph(cl, clCfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if dfRes.Spread() <= clRes.Spread() {
		t.Errorf("dragonfly spread %.2f should exceed clos spread %.2f", dfRes.Spread(), clRes.Spread())
	}
}

func TestMpiGraphErrors(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultMpiGraphConfig()
	cfg.Nodes = 10000
	if _, err := RunMpiGraph(f, cfg, rand.New(rand.NewSource(6))); err == nil {
		t.Error("too many nodes should error")
	}
	cfg.Nodes = 1
	if _, err := RunMpiGraph(f, cfg, rand.New(rand.NewSource(6))); err == nil {
		t.Error("one node should error")
	}
}

func TestGPCNeTCongestionControlProtects(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultGPCNeTConfig()
	cfg.Nodes = 45
	cfg.LatencySamples = 1500
	res, err := RunGPCNeT(f, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	// Table 5's result: with CC and 8 PPN, congested == isolated.
	if res.BandwidthImpact > 1.12 {
		t.Errorf("bandwidth impact with CC = %.2f, want ~1.0", res.BandwidthImpact)
	}
	if res.LatencyImpact > 1.12 {
		t.Errorf("latency impact with CC = %.2f, want ~1.0", res.LatencyImpact)
	}
	if res.AllreduceImpact > 1.12 {
		t.Errorf("allreduce impact with CC = %.2f, want ~1.0", res.AllreduceImpact)
	}
	if res.Isolated.Bandwidth.P99 >= res.Isolated.Bandwidth.Average {
		t.Error("bandwidth P99 (worst 1%) should sit below the average")
	}
	if res.Isolated.Latency.P99 <= res.Isolated.Latency.Average {
		t.Error("latency P99 should exceed the average")
	}
}

func TestGPCNeTWithoutCCDegrades(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultGPCNeTConfig()
	cfg.Nodes = 45
	cfg.LatencySamples = 1500
	cfg.CongestionControl = false
	res, err := RunGPCNeT(f, cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthImpact < 1.2 {
		t.Errorf("bandwidth impact without CC = %.2f, want noticeable degradation", res.BandwidthImpact)
	}
	if res.LatencyImpact < 1.2 {
		t.Errorf("latency impact without CC = %.2f, want noticeable degradation", res.LatencyImpact)
	}
}

func TestGPCNeTHighPPNPartialDegradation(t *testing.T) {
	f := smallFabric(t)
	base := DefaultGPCNeTConfig()
	base.Nodes = 45
	base.LatencySamples = 1000

	high := base
	high.PPN = 32
	resHigh, err := RunGPCNeT(f, high, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 32 PPN shows 1.2-1.6x average degradation even with CC.
	if resHigh.BandwidthImpact < 1.05 {
		t.Errorf("32 PPN bandwidth impact = %.2f, want > 1.05", resHigh.BandwidthImpact)
	}
	if resHigh.BandwidthImpact > 2.5 {
		t.Errorf("32 PPN bandwidth impact = %.2f, want moderate (CC still helps)", resHigh.BandwidthImpact)
	}
}

func TestGPCNeTErrors(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultGPCNeTConfig()
	if _, err := RunGPCNeT(f, cfg, rand.New(rand.NewSource(10))); err == nil {
		t.Error("9400 nodes on a 48-node fabric should error")
	}
	cfg.Nodes = 4
	if _, err := RunGPCNeT(f, cfg, rand.New(rand.NewSource(10))); err == nil {
		t.Error("too few nodes should error")
	}
}

// Full-scale Frontier calibration: latency statistics against Table 5 and
// the mpiGraph ceiling against Figure 6. Too slow for -short.
func TestFrontierScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration in -short mode")
	}
	f, err := machine.Frontier().NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	m := NewLatencyModel(f, rng)
	var eps []int
	for i := 0; i < 2000; i++ {
		eps = append(eps, rng.Intn(f.Cfg.ComputeEndpoints()))
	}
	stats, err := m.MeasureLatency(eps, 20000)
	if err != nil {
		t.Fatal(err)
	}
	avgUs := float64(stats.Average) * 1e6
	p99Us := float64(stats.P99) * 1e6
	// Paper: 2.6 us average, 4.8 us 99th percentile.
	if avgUs < 2.2 || avgUs > 3.1 {
		t.Errorf("RR latency average = %.2f us, want ~2.6", avgUs)
	}
	if p99Us < 3.8 || p99Us > 6.0 {
		t.Errorf("RR latency P99 = %.2f us, want ~4.8", p99Us)
	}
	// Allreduce across the 15,040 victim ranks (1,880 nodes x 8 PPN):
	// 51.5 us average, 54.1 us P99.
	ar := m.AllreduceLatency(15040, 400)
	arAvg := float64(ar.Average) * 1e6
	if arAvg < 45 || arAvg > 60 {
		t.Errorf("allreduce average = %.1f us, want ~51.5", arAvg)
	}
	if float64(ar.P99) < float64(ar.Average) {
		t.Error("allreduce P99 below average")
	}
}
