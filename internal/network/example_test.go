package network_test

import (
	"fmt"
	"math/rand"

	"frontiersim/internal/machine"
	"frontiersim/internal/network"
)

// Allocate bandwidth to two flows that share a destination NIC: the
// max-min solver splits the 17.5 GB/s ejection link fairly.
func ExampleSolve() {
	f, err := machine.Scaled(6, 8, 4).NewFabric()
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))
	var demands []*network.Demand
	for _, src := range []int{0, 1} {
		ps, err := f.AdaptivePaths(src, 9, 2, rng)
		if err != nil {
			panic(err)
		}
		demands = append(demands, &network.Demand{Src: src, Dst: 9, Paths: ps.Paths})
	}
	if err := network.Solve(f, demands); err != nil {
		panic(err)
	}
	for _, d := range demands {
		fmt.Printf("flow %d->%d: %.2f GB/s\n", d.Src, d.Dst, d.Rate/1e9)
	}
	// Output:
	// flow 0->9: 8.75 GB/s
	// flow 1->9: 8.75 GB/s
}
