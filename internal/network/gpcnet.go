package network

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"frontiersim/internal/fabric"
	"frontiersim/internal/units"
)

// GPCNeTConfig controls the congestion benchmark of Table 5. GPCNeT [12]
// splits the machine 80/20 into congestor and victim nodes: congestors
// run adversarial patterns (all-to-all, incast, broadcast) while victims
// measure point-to-point latency, windowed bandwidth, and allreduce.
type GPCNeTConfig struct {
	// Nodes participating (9,400 in the paper's run).
	Nodes int
	// PPN is processes per node (8 is the expected production case).
	PPN int
	// CongestionControl enables Slingshot's hardware CC. Off models a
	// fabric whose congestors are not source-throttled (tree saturation
	// and HOL blocking leak into victims, as on Summit's EDR [73]).
	CongestionControl bool
	// RRMessageBytes is the victim bandwidth-test message (131072).
	RRMessageBytes units.Bytes
	// LatencySamples is the number of victim latency probes.
	LatencySamples int
	// ValiantPaths for adaptive routing.
	ValiantPaths int
	// SyncOverhead is the per-window synchronisation cost of the
	// BW+Sync victim pattern (calibrated: ~20 µs).
	SyncOverhead units.Seconds
	// BWJitter is the relative spread of per-rank bandwidth samples.
	BWJitter float64
}

// DefaultGPCNeTConfig mirrors the paper's 9,400-node, 8-PPN run.
func DefaultGPCNeTConfig() GPCNeTConfig {
	return GPCNeTConfig{
		Nodes:             9400,
		PPN:               8,
		CongestionControl: true,
		RRMessageBytes:    128 * units.KiB,
		LatencySamples:    4000,
		ValiantPaths:      4,
		SyncOverhead:      17.5 * units.Microsecond,
		BWJitter:          0.13,
	}
}

// BWStats summarises per-rank bandwidth: Average and the 99th-percentile
// *worst case* (the lowest 1%), which is how GPCNeT reports "99%".
type BWStats struct {
	Average units.BytesPerSecond
	P99     units.BytesPerSecond
	N       int
}

// GPCNeTResult carries both phases and the impact factors.
type GPCNeTResult struct {
	Isolated  GPCNeTPhase
	Congested GPCNeTPhase
	// Impact factors: congested / isolated for latency (>1 is worse),
	// isolated / congested for bandwidth (>1 is worse).
	LatencyImpact   float64
	BandwidthImpact float64
	AllreduceImpact float64
}

// GPCNeTPhase is one measurement phase.
type GPCNeTPhase struct {
	Latency   LatencyStats
	Bandwidth BWStats
	Allreduce LatencyStats
}

// RunGPCNeT executes the benchmark on fabric f.
func RunGPCNeT(f *fabric.Fabric, cfg GPCNeTConfig, rng *rand.Rand) (GPCNeTResult, error) {
	return RunGPCNeTWithCache(f, cfg, rng, nil, "")
}

// RunGPCNeTWithCache is RunGPCNeT with a solution cache: each phase's
// combined solve is served by literal demand signature when possible.
// The solve is independent of the CongestionControl flag (CC only
// shapes the post-solve head-of-line derating), so ablation arms that
// differ only in CC — and repeated trials at the same seed — share one
// stored allocation. Output is byte-identical with or without the cache.
func RunGPCNeTWithCache(f *fabric.Fabric, cfg GPCNeTConfig, rng *rand.Rand, solutions *SolutionCache, topo string) (GPCNeTResult, error) {
	if cfg.Nodes > f.Cfg.ComputeNodes() {
		return GPCNeTResult{}, fmt.Errorf("network: %d nodes exceeds fabric's %d", cfg.Nodes, f.Cfg.ComputeNodes())
	}
	if cfg.Nodes < 10 {
		return GPCNeTResult{}, fmt.Errorf("network: GPCNeT needs at least 10 nodes")
	}
	// 20% victims, spread across the machine like a real allocation.
	var victims, congestors []int
	for n := 0; n < cfg.Nodes; n++ {
		if n%5 == 0 {
			victims = append(victims, n)
		} else {
			congestors = append(congestors, n)
		}
	}
	victimDemands := victimRing(f, victims, cfg, rng)
	isolated, err := measurePhase(f, cfg, victimDemands, nil, victims, rng, true, solutions, topo)
	if err != nil {
		return GPCNeTResult{}, err
	}
	congestorDemands := buildCongestors(f, congestors, cfg, rng)
	// Fresh victim demand objects (the solver mutates rates).
	victimDemands = victimRing(f, victims, cfg, rng)
	congested, err := measurePhase(f, cfg, victimDemands, congestorDemands, victims, rng, cfg.CongestionControl, solutions, topo)
	if err != nil {
		return GPCNeTResult{}, err
	}
	r := GPCNeTResult{Isolated: isolated, Congested: congested}
	r.LatencyImpact = float64(congested.Latency.Average) / float64(isolated.Latency.Average)
	r.BandwidthImpact = float64(isolated.Bandwidth.Average) / float64(congested.Bandwidth.Average)
	r.AllreduceImpact = float64(congested.Allreduce.Average) / float64(isolated.Allreduce.Average)
	return r, nil
}

// victimCap is the per-rank demand cap of the BW+Sync pattern: each rank
// keeps one message window in flight then synchronises, so its offered
// load is msg / (serialisation at its NIC share + sync overhead).
func victimCap(f *fabric.Fabric, cfg GPCNeTConfig) float64 {
	ranksPerNIC := float64(cfg.PPN) / float64(f.Cfg.NICsPerNode)
	if ranksPerNIC < 1 {
		ranksPerNIC = 1
	}
	share := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency / ranksPerNIC
	msg := float64(cfg.RRMessageBytes)
	return msg / (msg/share + float64(cfg.SyncOverhead))
}

// victimRing builds the victim random-ring bandwidth demands: rank r of
// victim i sends to rank r of the next victim in a shuffled ring.
func victimRing(f *fabric.Fabric, victims []int, cfg GPCNeTConfig, rng *rand.Rand) []*Demand {
	ring := append([]int(nil), victims...)
	rng.Shuffle(len(ring), func(i, j int) { ring[i], ring[j] = ring[j], ring[i] })
	cap := victimCap(f, cfg)
	var demands []*Demand
	for i, n := range ring {
		next := ring[(i+1)%len(ring)]
		for r := 0; r < cfg.PPN; r++ {
			src := f.NodeEndpoint(n, r)
			dst := f.NodeEndpoint(next, r)
			ps, err := f.AdaptivePaths(src, dst, cfg.ValiantPaths, rng)
			if err != nil {
				continue
			}
			demands = append(demands, &Demand{Src: src, Dst: dst, Paths: ps.Paths, Cap: cap})
		}
	}
	return demands
}

// buildCongestors creates the adversarial traffic: half the congestor
// ranks run a windowed all-to-all (random pairs), half run 16-to-1
// incasts. Congestors are deliberately uncapped — with hardware CC the
// fabric itself pushes them back to their bottleneck share.
func buildCongestors(f *fabric.Fabric, congestors []int, cfg GPCNeTConfig, rng *rand.Rand) []*Demand {
	var demands []*Demand
	nicRanks := f.Cfg.NICsPerNode
	if cfg.PPN < nicRanks {
		nicRanks = cfg.PPN
	}
	for i, n := range congestors {
		switch (i / 16) % 2 {
		case 0: // all-to-all: each node fires at a random other congestor
			for r := 0; r < nicRanks; r++ {
				peer := congestors[rng.Intn(len(congestors))]
				if peer == n {
					continue
				}
				src := f.NodeEndpoint(n, r)
				dst := f.NodeEndpoint(peer, r)
				ps, err := f.AdaptivePaths(src, dst, cfg.ValiantPaths, rng)
				if err != nil {
					continue
				}
				demands = append(demands, &Demand{Src: src, Dst: dst, Paths: ps.Paths})
			}
		case 1: // incast: blocks of 16 nodes target the block leader
			leader := congestors[(i/16)*16]
			if leader == n {
				continue
			}
			src := f.NodeEndpoint(n, 0)
			dst := f.NodeEndpoint(leader, 0)
			ps, err := f.AdaptivePaths(src, dst, cfg.ValiantPaths, rng)
			if err != nil {
				continue
			}
			demands = append(demands, &Demand{Src: src, Dst: dst, Paths: ps.Paths})
		}
	}
	return demands
}

// measurePhase solves the combined traffic and extracts victim stats. cc
// reports whether hardware congestion control protects this phase.
func measurePhase(f *fabric.Fabric, cfg GPCNeTConfig, victims, congestors []*Demand, victimNodes []int, rng *rand.Rand, cc bool, solutions *SolutionCache, topo string) (GPCNeTPhase, error) {
	all := make([]*Demand, 0, len(victims)+len(congestors))
	all = append(all, victims...)
	all = append(all, congestors...)
	if err := solveCached(f, all, solutions, topo); err != nil {
		return GPCNeTPhase{}, err
	}
	// Head-of-line blocking without CC: victim flows crossing saturated
	// fabric links that congestors also occupy are derated; CC removes
	// the effect entirely. Protection also erodes as PPN grows past the
	// 8-rank-per-node design point (the paper's 32-PPN results).
	hol := 0.0
	if len(congestors) > 0 {
		if !cc {
			hol = 1.0
		} else if cfg.PPN > 8 {
			hol = math.Min(1, float64(cfg.PPN-8)/24) * 0.45
		}
	}
	var load map[int]float64
	congested := map[int]bool{}
	if hol > 0 {
		load = LinkLoad(f, all)
		for _, d := range congestors {
			for _, p := range d.Paths {
				for _, lid := range p {
					if load[lid] > 0.98 && f.Links[lid].Kind != fabric.Injection {
						congested[lid] = true
					}
				}
			}
		}
	}
	var phase GPCNeTPhase
	// Bandwidth stats over victim ranks.
	bw := make([]float64, 0, len(victims))
	var sum float64
	for _, d := range victims {
		v := d.Rate
		if hol > 0 {
			k := 0
			for _, p := range d.Paths {
				for _, lid := range p {
					if congested[lid] {
						k++
					}
				}
			}
			if k > 0 {
				v *= math.Pow(1-0.30*hol, math.Min(float64(k), 3))
			}
		}
		v *= math.Exp(-math.Abs(rng.NormFloat64()) * cfg.BWJitter)
		bw = append(bw, v)
		sum += v
	}
	sort.Float64s(bw)
	phase.Bandwidth = BWStats{
		Average: units.BytesPerSecond(sum / float64(len(bw))),
		P99:     units.BytesPerSecond(bw[int(float64(len(bw))*0.01)]),
		N:       len(bw),
	}
	// Latency stats: probes between random victim endpoints. Congestion
	// without CC inflates queueing; with CC it does not.
	lm := NewLatencyModel(f, rng)
	if hol > 0 {
		lm.QueueMean = units.Seconds(float64(lm.QueueMean) * (1 + 6*hol))
		lm.DeepQueueProb = math.Min(0.5, lm.DeepQueueProb*(1+10*hol))
	}
	var eps []int
	for _, n := range victimNodes {
		eps = append(eps, f.NodeEndpoints(n)...)
	}
	lat, err := lm.MeasureLatency(eps, cfg.LatencySamples)
	if err != nil {
		return GPCNeTPhase{}, err
	}
	phase.Latency = lat
	phase.Allreduce = lm.AllreduceLatency(len(victimNodes)*cfg.PPN, 400)
	return phase, nil
}
