package network

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
	"sync"

	"frontiersim/internal/fabric"
)

// This file is the incremental-solving layer on top of the Solver arena:
// demand-set signatures and a SolutionCache that lets repeated patterns
// (GPCNeT congestor loops, census shifts replayed across campaign
// what-ifs, ablation arms that share a traffic matrix) return stored
// allocations without touching the water-filling heap. Cache entries are
// keyed by (topology, fabric state epoch, demand signature) and so are
// invalidated by the same FailLink/RestoreLink/FailSwitch epoch bumps
// that already invalidate fabric.PathCache.

// Signature identifies a demand set (or a pattern that fully determines
// one) for solution caching. It is a SHA-256 in the style of the
// machine.Hash canonical content address.
type Signature [sha256.Size]byte

// sigHasher streams fixed-width little-endian words into a SHA-256
// digest through a small buffer, so signing a census-sized demand set
// costs no per-demand allocation.
type sigHasher struct {
	d   hash.Hash
	buf [4096]byte
	n   int
}

func newSigHasher() sigHasher { return sigHasher{d: sha256.New()} }

func (s *sigHasher) u64(v uint64) {
	if s.n+8 > len(s.buf) {
		s.d.Write(s.buf[:s.n])
		s.n = 0
	}
	binary.LittleEndian.PutUint64(s.buf[s.n:], v)
	s.n += 8
}

func (s *sigHasher) sum() Signature {
	s.d.Write(s.buf[:s.n])
	s.n = 0
	var sig Signature
	s.d.Sum(sig[:0])
	return sig
}

// DemandSignature hashes a demand set in demand order: src, dst, cap
// bits, and the full path set (path count, lengths, link ids). Two
// demand sets with equal signatures on the same fabric state solve to
// bit-identical allocations, because the solver is a deterministic
// function of exactly these inputs plus per-link capacity and up state
// (which the cache key's topology and epoch fields pin).
func DemandSignature(demands []*Demand) Signature {
	h := newSigHasher()
	h.u64(uint64(len(demands)))
	for _, d := range demands {
		h.u64(uint64(d.Src))
		h.u64(uint64(d.Dst))
		h.u64(math.Float64bits(d.Cap))
		h.u64(uint64(len(d.Paths)))
		for _, p := range d.Paths {
			h.u64(uint64(len(p)))
			for _, lid := range p {
				h.u64(uint64(lid))
			}
		}
	}
	return h.sum()
}

// PatternSignature hashes a short tuple that fully determines a demand
// set without building it — e.g. the parallel census signs
// (path-cache seed, valiant fanout, nodes, ranks, shift) because the
// PathCache makes every path set a pure function of those values. The
// tag namespaces patterns so two callers hashing coincidentally equal
// tuples can't collide.
func PatternSignature(tag string, vals ...uint64) Signature {
	h := newSigHasher()
	h.d.Write([]byte(tag))
	h.u64(uint64(len(vals)))
	for _, v := range vals {
		h.u64(v)
	}
	return h.sum()
}

// Solution is a stored max-min allocation: per-demand total rates plus
// the flat per-subflow rates, in demand order. Solutions handed out by
// the cache are shared and immutable — callers read Rates or Apply them
// onto a demand set, never mutate them.
type Solution struct {
	// Rates[i] is the solved total rate of demand i, bit-exact as the
	// solver produced it.
	Rates    []float64
	subStart []int32
	subRates []float64
}

// newSolution snapshots the allocation currently held by demands.
func newSolution(demands []*Demand) *Solution {
	sol := &Solution{
		Rates:    make([]float64, len(demands)),
		subStart: make([]int32, len(demands)+1),
	}
	total := 0
	for i, d := range demands {
		sol.Rates[i] = d.Rate
		sol.subStart[i] = int32(total)
		total += len(d.SubRates)
	}
	sol.subStart[len(demands)] = int32(total)
	sol.subRates = make([]float64, total)
	for i, d := range demands {
		copy(sol.subRates[sol.subStart[i]:sol.subStart[i+1]], d.SubRates)
	}
	return sol
}

// size is the entry's byte footprint for the cache's LRU budget.
func (sol *Solution) size() int64 {
	return int64(len(sol.Rates))*8 + int64(len(sol.subRates))*8 + int64(len(sol.subStart))*4 + 96
}

// Apply writes the stored allocation onto demands, bit-for-bit what
// solving them would have produced. It reports false (writing nothing)
// if the demand set's shape doesn't match the stored solution — which
// indicates a signature misuse, never a legitimate cache hit.
func (sol *Solution) Apply(demands []*Demand) bool {
	if len(demands) != len(sol.Rates) {
		return false
	}
	for i, d := range demands {
		if int(sol.subStart[i+1]-sol.subStart[i]) != len(d.Paths) {
			return false
		}
	}
	for i, d := range demands {
		d.Rate = sol.Rates[i]
		if cap(d.SubRates) >= len(d.Paths) {
			d.SubRates = d.SubRates[:len(d.Paths)]
		} else {
			d.SubRates = make([]float64, len(d.Paths))
		}
		copy(d.SubRates, sol.subRates[sol.subStart[i]:sol.subStart[i+1]])
	}
	return true
}

// solutionKey identifies one cached allocation. topo is a canonical
// topology address (machine.Hash) or "" when the caller has none; epoch
// is the fabric's state epoch at solve time, so any link failure or
// restoration orphans every entry solved before it.
type solutionKey struct {
	topo  string
	epoch uint64
	sig   Signature
}

type solutionEntry struct {
	key  solutionKey
	fab  *fabric.Fabric
	sol  *Solution
	size int64
}

// SolutionCache is a bounded, concurrency-safe LRU of solved
// allocations. A nil *SolutionCache is valid and never hits, so callers
// thread it through unconditionally.
//
// Hit soundness: a stored entry is served only when the requesting
// fabric's StateEpoch matches the entry's, and additionally either the
// fabric is the same instance the entry was solved on, or the lookup
// carries a canonical topology key and the epoch is zero. The extra
// condition matters because two distinct fabric instances at the same
// nonzero epoch can have arrived there through different failure
// sequences — only a virgin (epoch-0) fabric is fully described by its
// topology hash.
type SolutionCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List
	entries  map[solutionKey]*list.Element
	hits     uint64
	misses   uint64
}

// NewSolutionCache returns a cache bounded to maxBytes of stored
// solutions (<=0 selects the 256 MiB default — roughly a hundred
// full-machine census shifts).
func NewSolutionCache(maxBytes int64) *SolutionCache {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &SolutionCache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  make(map[solutionKey]*list.Element),
	}
}

// Lookup returns the stored solution for sig on fabric f's current
// state, if the cache holds one it can soundly serve.
func (c *SolutionCache) Lookup(f *fabric.Fabric, topo string, sig Signature) (*Solution, bool) {
	if c == nil {
		return nil, false
	}
	key := solutionKey{topo: topo, epoch: f.StateEpoch(), sig: sig}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*solutionEntry)
	if e.fab != f && !(key.topo != "" && key.epoch == 0) {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.sol, true
}

// Store snapshots the allocation currently held by demands under sig
// and returns it; evicts least-recently-used entries past the byte
// budget. Storing on a nil cache returns nil.
func (c *SolutionCache) Store(f *fabric.Fabric, topo string, sig Signature, demands []*Demand) *Solution {
	if c == nil {
		return nil
	}
	sol := newSolution(demands)
	key := solutionKey{topo: topo, epoch: f.StateEpoch(), sig: sig}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Concurrent workers can race to store the same shift; keep the
		// first entry (both are bit-identical by construction).
		c.lru.MoveToFront(el)
		return el.Value.(*solutionEntry).sol
	}
	e := &solutionEntry{key: key, fab: f, sol: sol, size: sol.size()}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += e.size
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		old := back.Value.(*solutionEntry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		c.bytes -= old.size
	}
	return sol
}

// solveCached solves demands, serving from (and populating) the
// solution cache by literal demand signature when one is provided. A
// hit applies the stored allocation — bit-for-bit what the skipped
// solve would have written — and never touches the water-filling heap.
func solveCached(f *fabric.Fabric, demands []*Demand, solutions *SolutionCache, topo string) error {
	if solutions == nil {
		return Solve(f, demands)
	}
	sig := DemandSignature(demands)
	if sol, ok := solutions.Lookup(f, topo, sig); ok && sol.Apply(demands) {
		return nil
	}
	if err := Solve(f, demands); err != nil {
		return err
	}
	solutions.Store(f, topo, sig, demands)
	return nil
}

// SolutionCacheStats is a point-in-time snapshot of cache occupancy and
// effectiveness, surfaced by the campaign server's /v1/stats.
type SolutionCacheStats struct {
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// Stats reports current occupancy and hit/miss counters.
func (c *SolutionCache) Stats() SolutionCacheStats {
	if c == nil {
		return SolutionCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return SolutionCacheStats{
		Entries: c.lru.Len(),
		Bytes:   c.bytes,
		Hits:    c.hits,
		Misses:  c.misses,
	}
}
