package network

import (
	"context"
	"math/rand"
	"testing"

	"frontiersim/internal/fabric"
	"frontiersim/internal/machine"
)

// randomDemands builds a reusable demand set spanning the fabric, with a
// mix of multi-path and capped demands, for the delta-solve tests.
func randomDemands(t *testing.T, f *fabric.Fabric, rng *rand.Rand, n int) []*Demand {
	t.Helper()
	var demands []*Demand
	for i := 0; i < n; i++ {
		src := rng.Intn(f.NumEndpoints)
		dst := rng.Intn(f.NumEndpoints)
		if src == dst {
			continue
		}
		d := demand(t, f, src, dst, rng.Intn(3), rng)
		if rng.Intn(4) == 0 {
			d.Cap = float64(1+rng.Intn(20)) * 1e9
		}
		demands = append(demands, d)
	}
	if len(demands) == 0 {
		t.Fatal("no demands generated")
	}
	return demands
}

// problemLinks is the set of link ids appearing on any demand path.
func problemLinks(demands []*Demand) []int {
	seen := make(map[int]bool)
	var ids []int
	for _, d := range demands {
		for _, p := range d.Paths {
			for _, lid := range p {
				if !seen[lid] {
					seen[lid] = true
					ids = append(ids, lid)
				}
			}
		}
	}
	return ids
}

// assertSameSolve compares the delta-solved demands against a cold
// oracle solve bit-for-bit, including the error path (where both sides
// must leave every demand zeroed).
func assertSameSolve(t *testing.T, round int, demands, ref []*Demand, err, refErr error) {
	t.Helper()
	if (err == nil) != (refErr == nil) {
		t.Fatalf("round %d: delta err %v, cold err %v", round, err, refErr)
	}
	if err != nil {
		for i, d := range demands {
			if d.Rate != 0 {
				t.Fatalf("round %d: demand %d rate %v after error, want 0", round, i, d.Rate)
			}
			for pi, r := range d.SubRates {
				if r != 0 {
					t.Fatalf("round %d: demand %d subrate %d = %v after error, want 0", round, i, pi, r)
				}
			}
		}
		return
	}
	for i := range demands {
		if demands[i].Rate != ref[i].Rate {
			t.Fatalf("round %d demand %d: delta rate %v != cold %v", round, i, demands[i].Rate, ref[i].Rate)
		}
		for pi := range demands[i].SubRates {
			if demands[i].SubRates[pi] != ref[i].SubRates[pi] {
				t.Fatalf("round %d demand %d path %d: delta %v != cold %v",
					round, i, pi, demands[i].SubRates[pi], ref[i].SubRates[pi])
			}
		}
	}
}

// The delta-solve contract: after an arbitrary FailLink / RestoreLink /
// FailSwitch sequence, SolveDelta driven by the fabric's change journal
// (changed == nil) matches a cold Solve bit-for-bit — including the
// "routed over down link" error path, where both must zero every demand.
func TestSolverMatchesReferenceDeltaSequences(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(50))
	demands := randomDemands(t, f, rng, 30)
	inProblem := problemLinks(demands)

	s := NewSolver()
	if err := s.Solve(f, demands); err != nil {
		t.Fatal(err)
	}

	downLinks := func() []int {
		var ids []int
		for i := range f.Links {
			if !f.Links[i].Up {
				ids = append(ids, i)
			}
		}
		return ids
	}

	for round := 0; round < 80; round++ {
		// Mutate the fabric: restore a down link, fail an in-problem or
		// random link, fail a whole switch, or change nothing (the clean
		// path must still answer correctly).
		switch down := downLinks(); {
		case len(down) > 0 && rng.Intn(3) == 0:
			f.RestoreLink(down[rng.Intn(len(down))])
		case rng.Intn(8) == 0:
			f.FailSwitch(rng.Intn(f.NumSwitches))
		case rng.Intn(6) == 0:
			// no-op round
		case rng.Intn(2) == 0:
			if lid := inProblem[rng.Intn(len(inProblem))]; f.Links[lid].Up {
				f.FailLink(lid)
			}
		default:
			if lid := rng.Intn(len(f.Links)); f.Links[lid].Up {
				f.FailLink(lid)
			}
		}

		ref := cloneDemands(demands)
		refErr := NewSolver().Solve(f, ref)
		err := s.SolveDelta(f, demands, nil)
		assertSameSolve(t, round, demands, ref, err, refErr)
	}

	// Restore everything and check the final delta solve heals.
	for _, lid := range downLinks() {
		f.RestoreLink(lid)
	}
	ref := cloneDemands(demands)
	if err := NewSolver().Solve(f, ref); err != nil {
		t.Fatal(err)
	}
	if err := s.SolveDelta(f, demands, nil); err != nil {
		t.Fatal(err)
	}
	assertSameSolve(t, -1, demands, ref, nil, nil)
}

// Same contract with caller-supplied changed lists instead of the
// journal: the caller tracks exactly which links it touched.
func TestSolveDeltaExplicitChangedList(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(51))
	demands := randomDemands(t, f, rng, 24)
	inProblem := problemLinks(demands)

	s := NewSolver()
	if err := s.Solve(f, demands); err != nil {
		t.Fatal(err)
	}

	var changed []int
	var failed []int
	for round := 0; round < 60; round++ {
		switch {
		case len(failed) > 0 && rng.Intn(2) == 0:
			i := rng.Intn(len(failed))
			f.RestoreLink(failed[i])
			changed = append(changed, failed[i])
			failed = append(failed[:i], failed[i+1:]...)
		default:
			lid := inProblem[rng.Intn(len(inProblem))]
			if rng.Intn(3) == 0 {
				lid = rng.Intn(len(f.Links))
			}
			if f.Links[lid].Up {
				f.FailLink(lid)
				changed = append(changed, lid)
				failed = append(failed, lid)
			}
		}

		ref := cloneDemands(demands)
		refErr := NewSolver().Solve(f, ref)
		err := s.SolveDelta(f, demands, changed)
		assertSameSolve(t, round, demands, ref, err, refErr)
		// Either the solver is now current (success) or it dropped its
		// state (error) and the next call re-solves cold; both ways the
		// caller's changed list starts over.
		changed = changed[:0]
	}
}

// When the change journal overflows (more transitions than it tracks),
// ChangedSince answers ok=false and SolveDelta must fall back to a cold
// solve rather than trust stale state.
func TestSolveDeltaJournalOverflow(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(52))
	demands := randomDemands(t, f, rng, 16)
	lid := demands[0].Paths[0][0]

	s := NewSolver()
	if err := s.Solve(f, demands); err != nil {
		t.Fatal(err)
	}
	// 3000 bounce pairs = 6000 journal appends, past any journal bound.
	for i := 0; i < 3000; i++ {
		f.FailLink(lid)
		f.RestoreLink(lid)
	}
	if _, ok := f.ChangedSince(0); ok {
		t.Fatal("journal should have overflowed")
	}
	ref := cloneDemands(demands)
	if err := NewSolver().Solve(f, ref); err != nil {
		t.Fatal(err)
	}
	if err := s.SolveDelta(f, demands, nil); err != nil {
		t.Fatal(err)
	}
	assertSameSolve(t, 0, demands, ref, nil, nil)
}

// A different demand slice (same contents, different pointers) must not
// be treated as the warm set: SolveDelta re-solves cold and still gets
// the right answer.
func TestSolveDeltaDemandSetChange(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(53))
	demands := randomDemands(t, f, rng, 12)
	s := NewSolver()
	if err := s.Solve(f, demands); err != nil {
		t.Fatal(err)
	}
	other := cloneDemands(demands)
	if err := s.SolveDelta(f, other, nil); err != nil {
		t.Fatal(err)
	}
	for i := range demands {
		if other[i].Rate != demands[i].Rate {
			t.Fatalf("demand %d: cloned-set delta rate %v != original %v", i, other[i].Rate, demands[i].Rate)
		}
	}
}

// Satellite regression: a Solve that errors mid-validation must leave
// every demand zeroed, not just the ones it reached. Previously demands
// after the failing one kept their rates from an earlier solve.
func TestSolveErrorZeroesAllDemands(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(54))
	demands := []*Demand{
		demand(t, f, 0, 9, 0, rng),
		demand(t, f, 1, 10, 0, rng),
		demand(t, f, 2, 11, 0, rng),
	}
	if err := Solve(f, demands); err != nil {
		t.Fatal(err)
	}
	for i, d := range demands {
		if d.Rate == 0 {
			t.Fatalf("demand %d unexpectedly zero before failure", i)
		}
	}
	// Down the middle demand's first link: the solve must now fail and
	// wipe all three demands' rates, including the untouched neighbours.
	f.FailLink(demands[1].Paths[0][0])
	if err := Solve(f, demands); err == nil {
		t.Fatal("solve over a down link should error")
	}
	for i, d := range demands {
		if d.Rate != 0 {
			t.Errorf("demand %d rate %v after failed solve, want 0", i, d.Rate)
		}
		for pi, r := range d.SubRates {
			if r != 0 {
				t.Errorf("demand %d subrate %d = %v after failed solve, want 0", i, pi, r)
			}
		}
	}
}

// DemandSignature must separate demand sets that differ in any solver
// input and agree on logically equal ones.
func TestDemandSignature(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(55))
	demands := randomDemands(t, f, rng, 10)
	sig := DemandSignature(demands)
	if DemandSignature(cloneDemands(demands)) != sig {
		t.Error("clones should sign identically")
	}
	capped := cloneDemands(demands)
	capped[3].Cap = demands[3].Cap + 1e9
	if DemandSignature(capped) == sig {
		t.Error("cap change should change the signature")
	}
	if DemandSignature(demands[:len(demands)-1]) == sig {
		t.Error("dropping a demand should change the signature")
	}
	swapped := cloneDemands(demands)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if DemandSignature(swapped) == sig {
		t.Error("demand order is a solver input and must be signed")
	}
}

func TestPatternSignature(t *testing.T) {
	a := PatternSignature("census", 1, 2, 3)
	if PatternSignature("census", 1, 2, 3) != a {
		t.Error("equal tuples should sign identically")
	}
	if PatternSignature("census", 1, 2, 4) == a {
		t.Error("different tuples should differ")
	}
	if PatternSignature("other", 1, 2, 3) == a {
		t.Error("the tag must namespace the tuple")
	}
}

// The cache's core soundness property: a stored solution is never
// served after a FailLink/RestoreLink/FailSwitch epoch bump, even when
// the fabric ends up back in an equivalent state.
func TestSolutionCacheEpochInvalidation(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(56))
	demands := randomDemands(t, f, rng, 8)
	if err := Solve(f, demands); err != nil {
		t.Fatal(err)
	}
	sig := DemandSignature(demands)
	c := NewSolutionCache(0)
	c.Store(f, "", sig, demands)
	if _, ok := c.Lookup(f, "", sig); !ok {
		t.Fatal("same-state lookup should hit")
	}
	lid := demands[0].Paths[0][0]
	f.FailLink(lid)
	if _, ok := c.Lookup(f, "", sig); ok {
		t.Fatal("lookup after FailLink must miss")
	}
	f.RestoreLink(lid)
	if _, ok := c.Lookup(f, "", sig); ok {
		t.Fatal("RestoreLink bumps the epoch again; the old entry must stay dead")
	}
	f.FailSwitch(0)
	if _, ok := c.Lookup(f, "", sig); ok {
		t.Fatal("lookup after FailSwitch must miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 3 misses, 1 entry", st)
	}
}

// Cross-instance hits are allowed only for virgin fabrics fully
// described by their topology hash: same topo key at epoch 0. At any
// later epoch two instances may have diverged, so only the instance the
// entry was solved on may hit.
func TestSolutionCacheCrossInstanceRule(t *testing.T) {
	spec := machine.Scaled(6, 8, 4)
	f1, err := spec.NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := spec.NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := machine.Hash(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(57))
	var demands []*Demand
	for i := 0; i < 6; i++ {
		d := demand(t, f1, i, 20+i, 0, rng)
		demands = append(demands, d)
	}
	if err := Solve(f1, demands); err != nil {
		t.Fatal(err)
	}
	sig := DemandSignature(demands)

	c := NewSolutionCache(0)
	c.Store(f1, topo, sig, demands)
	if _, ok := c.Lookup(f2, topo, sig); !ok {
		t.Fatal("virgin fabrics with the same topology hash should share entries")
	}
	if _, ok := c.Lookup(f2, "", sig); ok {
		t.Fatal("a topo-keyed entry must not answer an instance-keyed lookup")
	}

	// Advance both instances to the same nonzero epoch through different
	// histories: the epoch number alone no longer proves equivalence.
	f1.FailLink(demands[0].Paths[0][0])
	f2.FailLink(demands[1].Paths[0][0])
	c.Store(f1, topo, sig, demands)
	if _, ok := c.Lookup(f1, topo, sig); !ok {
		t.Fatal("the solving instance itself should hit at any epoch")
	}
	if _, ok := c.Lookup(f2, topo, sig); ok {
		t.Fatal("epoch>0 entries must not cross fabric instances")
	}
}

// Apply must refuse shape mismatches instead of writing a torn result.
func TestSolutionApplyShapeMismatch(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(58))
	demands := randomDemands(t, f, rng, 6)
	if err := Solve(f, demands); err != nil {
		t.Fatal(err)
	}
	sol := newSolution(demands)
	if !sol.Apply(demands) {
		t.Fatal("matching shape should apply")
	}
	if sol.Apply(demands[:len(demands)-1]) {
		t.Error("shorter demand set should be refused")
	}
	reshaped := cloneDemands(demands)
	reshaped[0].Paths = reshaped[0].Paths[:1]
	if len(demands[0].Paths) > 1 && sol.Apply(reshaped) {
		t.Error("per-demand path-count mismatch should be refused")
	}
}

// The LRU budget evicts oldest entries but always retains at least one.
func TestSolutionCacheEviction(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(59))
	a := randomDemands(t, f, rng, 6)
	b := randomDemands(t, f, rng, 6)
	if err := Solve(f, a); err != nil {
		t.Fatal(err)
	}
	sigA := DemandSignature(a)
	c := NewSolutionCache(1) // everything oversized: each store evicts the rest
	c.Store(f, "", sigA, a)
	if err := Solve(f, b); err != nil {
		t.Fatal(err)
	}
	sigB := DemandSignature(b)
	c.Store(f, "", sigB, b)
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (budget forces eviction, floor keeps one)", st.Entries)
	}
	if _, ok := c.Lookup(f, "", sigB); !ok {
		t.Error("most recent entry should survive")
	}
	if _, ok := c.Lookup(f, "", sigA); ok {
		t.Error("oldest entry should have been evicted")
	}
}

// A nil cache is a valid no-op dependency.
func TestSolutionCacheNil(t *testing.T) {
	var c *SolutionCache
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(60))
	demands := randomDemands(t, f, rng, 4)
	if _, ok := c.Lookup(f, "", Signature{}); ok {
		t.Error("nil cache must never hit")
	}
	if c.Store(f, "", Signature{}, demands) != nil {
		t.Error("nil cache store should return nil")
	}
	if st := c.Stats(); st != (SolutionCacheStats{}) {
		t.Errorf("nil cache stats = %+v, want zero", st)
	}
	if err := solveCached(f, demands, nil, ""); err != nil {
		t.Fatal(err)
	}
}

// A cache hit must reproduce the skipped solve bit-for-bit.
func TestSolveCachedBitIdentical(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(61))
	demands := randomDemands(t, f, rng, 12)
	ref := cloneDemands(demands)
	if err := Solve(f, ref); err != nil {
		t.Fatal(err)
	}
	c := NewSolutionCache(0)
	if err := solveCached(f, demands, c, ""); err != nil { // miss: solves and stores
		t.Fatal(err)
	}
	warm := cloneDemands(demands)
	if err := solveCached(f, warm, c, ""); err != nil { // hit: applies stored
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly one miss then one hit", st)
	}
	for i := range ref {
		if warm[i].Rate != ref[i].Rate {
			t.Fatalf("demand %d: cached rate %v != solved %v", i, warm[i].Rate, ref[i].Rate)
		}
		for pi := range ref[i].SubRates {
			if warm[i].SubRates[pi] != ref[i].SubRates[pi] {
				t.Fatalf("demand %d path %d: cached %v != solved %v", i, pi, warm[i].SubRates[pi], ref[i].SubRates[pi])
			}
		}
	}
}

// The census with a solution cache — cold and warm — must be
// byte-identical to the uncached census.
func TestMpiGraphCachedMatchesUncached(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultMpiGraphConfig()
	cfg.Shifts = 5
	base, err := RunMpiGraph(f, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	c := NewSolutionCache(0)
	for pass, name := range []string{"cold", "warm"} {
		res, err := RunMpiGraphWithCache(f, cfg, rand.New(rand.NewSource(9)), c, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Samples) != len(base.Samples) {
			t.Fatalf("%s pass: %d samples, want %d", name, len(res.Samples), len(base.Samples))
		}
		for i := range base.Samples {
			if res.Samples[i] != base.Samples[i] {
				t.Fatalf("%s pass sample %d: %v != uncached %v", name, i, res.Samples[i], base.Samples[i])
			}
		}
		if pass == 1 && c.Stats().Hits == 0 {
			t.Error("warm pass should have served shifts from the cache")
		}
	}
}

// Parallel census: supplying Solutions (and a prebuilt path cache) must
// not change a single sample, across cold and warm cache states.
func TestMpiGraphParallelCachedMatchesUncached(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultMpiGraphConfig()
	cfg.Shifts = 6
	base, err := RunMpiGraphParallel(context.Background(), f, cfg, ParallelConfig{Jobs: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pcfg := ParallelConfig{Jobs: 4, Seed: 7, Solutions: NewSolutionCache(0), TopoKey: "test-topo"}
	pcfg.Paths = NewMpiGraphPathCache(f, cfg, pcfg)
	for pass, name := range []string{"cold", "warm"} {
		res, err := RunMpiGraphParallel(context.Background(), f, cfg, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Samples) != len(base.Samples) {
			t.Fatalf("%s pass: %d samples, want %d", name, len(res.Samples), len(base.Samples))
		}
		for i := range base.Samples {
			if res.Samples[i] != base.Samples[i] {
				t.Fatalf("%s pass sample %d: %v != uncached %v", name, i, res.Samples[i], base.Samples[i])
			}
		}
		if pass == 1 && pcfg.Solutions.Stats().Hits < uint64(cfg.Shifts) {
			t.Errorf("warm pass hits = %d, want >= %d (every shift)", pcfg.Solutions.Stats().Hits, cfg.Shifts)
		}
	}
	// A stale path cache (wrong seed) must be rejected, not silently used.
	stale := ParallelConfig{Jobs: 2, Seed: 7, Paths: NewMpiGraphPathCache(f, cfg, ParallelConfig{Seed: 8})}
	res, err := RunMpiGraphParallel(context.Background(), f, cfg, stale)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Samples {
		if res.Samples[i] != base.Samples[i] {
			t.Fatalf("stale-cache sample %d: %v != %v (wrong-seed path cache was trusted)", i, res.Samples[i], base.Samples[i])
		}
	}
}

// GPCNeT with a cache is byte-identical, and ablation arms that differ
// only in the CongestionControl flag share solved allocations: the
// solve itself is CC-independent.
func TestGPCNeTCachedMatchesUncachedAcrossCCArms(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultGPCNeTConfig()
	cfg.Nodes = 45
	cfg.LatencySamples = 200
	c := NewSolutionCache(0)
	for _, cc := range []bool{true, false} {
		cfg.CongestionControl = cc
		base, err := RunGPCNeT(f, cfg, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunGPCNeTWithCache(f, cfg, rand.New(rand.NewSource(21)), c, "")
		if err != nil {
			t.Fatal(err)
		}
		if res != base {
			t.Fatalf("cc=%v: cached result differs from uncached:\n%+v\n%+v", cc, res, base)
		}
	}
	// The second arm's demand sets are identical to the first arm's
	// (same seed, CC not consulted until after the solve), so both of
	// its phases should have hit.
	if st := c.Stats(); st.Hits < 2 {
		t.Errorf("hits = %d, want >= 2 (CC=false arm reusing CC=true arm's solves)", st.Hits)
	}
}
