package network

import (
	"math"
	"math/rand"
	"sort"

	"frontiersim/internal/fabric"
	"frontiersim/internal/units"
)

// LatencyModel samples small-message latencies on a fabric: fixed
// endpoint and switch costs from the fabric config plus an exponential
// queueing term per switch traversal. A fraction of packets take Valiant
// routes (Slingshot routes per packet), which is what stretches the tail
// the paper reports (2.6 µs average, 4.8 µs at the 99th percentile).
type LatencyModel struct {
	F *fabric.Fabric
	// QueueMean is the mean of the per-switch exponential queueing term
	// under benchmark background load.
	QueueMean units.Seconds
	// ValiantFraction is the probability a packet is routed
	// non-minimally.
	ValiantFraction float64
	// DeepQueueProb is the per-switch probability of meeting a deep
	// buffer occupancy (a transient burst); DeepQueueMean is the extra
	// delay's mean. This is what produces the ~2x gap between average
	// and 99th-percentile latency in Table 5.
	DeepQueueProb float64
	DeepQueueMean units.Seconds
	// Rng drives sampling.
	Rng *rand.Rand
}

// NewLatencyModel returns a model with Slingshot-calibrated queueing.
func NewLatencyModel(f *fabric.Fabric, rng *rand.Rand) *LatencyModel {
	return &LatencyModel{
		F:               f,
		QueueMean:       90 * units.Nanosecond,
		ValiantFraction: 0.25,
		DeepQueueProb:   0.03,
		DeepQueueMean:   0.85 * units.Microsecond,
		Rng:             rng,
	}
}

// SamplePair samples one small-message latency between two endpoints.
func (m *LatencyModel) SamplePair(src, dst int) (units.Seconds, error) {
	var path []int
	var err error
	if m.F.Kind != fabric.FatTree && m.Rng.Float64() < m.ValiantFraction {
		path, err = m.valiant(src, dst)
	}
	if path == nil {
		path, err = m.F.MinimalPath(src, dst, m.Rng)
	}
	if err != nil {
		return 0, err
	}
	lat := m.F.PathLatency(path)
	for _, id := range path {
		if m.F.Links[id].Kind == fabric.Ejection {
			continue
		}
		lat += units.Seconds(m.Rng.ExpFloat64() * float64(m.QueueMean))
		if m.Rng.Float64() < m.DeepQueueProb {
			lat += units.Seconds(m.Rng.ExpFloat64() * float64(m.DeepQueueMean))
		}
	}
	return lat, nil
}

func (m *LatencyModel) valiant(src, dst int) ([]int, error) {
	g1, g2 := m.F.EndpointGroup(src), m.F.EndpointGroup(dst)
	if g1 == g2 {
		return nil, nil // intra-group traffic is always minimal
	}
	total := m.F.Cfg.TotalGroups()
	for attempt := 0; attempt < 8; attempt++ {
		via := m.Rng.Intn(total)
		if via == g1 || via == g2 || m.F.GroupClassOf(via) != fabric.ComputeGroup {
			continue
		}
		if p, err := m.F.ValiantPath(src, dst, via, m.Rng); err == nil {
			return p, nil
		}
	}
	return nil, nil
}

// LatencyStats summarises a latency sample set.
type LatencyStats struct {
	Average units.Seconds
	P99     units.Seconds
	Max     units.Seconds
	N       int
}

// MeasureLatency samples n random-pair latencies among the given
// endpoints and returns summary statistics (GPCNeT's "RR Two-sided Lat").
func (m *LatencyModel) MeasureLatency(endpoints []int, n int) (LatencyStats, error) {
	if len(endpoints) < 2 {
		return LatencyStats{}, errTooFewEndpoints
	}
	samples := make([]float64, 0, n)
	var sum float64
	for len(samples) < n {
		a := endpoints[m.Rng.Intn(len(endpoints))]
		b := endpoints[m.Rng.Intn(len(endpoints))]
		if a == b {
			continue
		}
		lat, err := m.SamplePair(a, b)
		if err != nil {
			continue // failed component; GPCNeT would re-pair
		}
		samples = append(samples, float64(lat))
		sum += float64(lat)
	}
	sort.Float64s(samples)
	return LatencyStats{
		Average: units.Seconds(sum / float64(len(samples))),
		P99:     units.Seconds(samples[int(math.Min(float64(len(samples)-1), float64(len(samples))*0.99))]),
		Max:     units.Seconds(samples[len(samples)-1]),
		N:       len(samples),
	}, nil
}

// AllreduceLatency models an 8-byte allreduce across P ranks as a
// latency-bound dissemination tree: ceil(log2 P) stages, each costing one
// average network hop plus software overhead. GPCNeT's "Multiple
// Allreduce" across its 15,040 victim ranks measures 51.5 µs,
// ~14 stages × ~3.6 µs.
func (m *LatencyModel) AllreduceLatency(ranks int, trials int) LatencyStats {
	if ranks < 2 {
		return LatencyStats{N: 0}
	}
	stages := int(math.Ceil(math.Log2(float64(ranks))))
	const stageOverhead = 1450 * units.Nanosecond // rendezvous + reduction op
	base := 2*m.F.Cfg.EndpointLatency + 4*m.F.Cfg.SwitchLatency
	samples := make([]float64, 0, trials)
	var sum float64
	for t := 0; t < trials; t++ {
		var lat units.Seconds
		for s := 0; s < stages; s++ {
			jitter := units.Seconds(m.Rng.ExpFloat64() * float64(m.QueueMean))
			lat += base + stageOverhead + jitter
		}
		samples = append(samples, float64(lat))
		sum += float64(lat)
	}
	sort.Float64s(samples)
	return LatencyStats{
		Average: units.Seconds(sum / float64(len(samples))),
		P99:     units.Seconds(samples[int(math.Min(float64(len(samples)-1), float64(len(samples))*0.99))]),
		Max:     units.Seconds(samples[len(samples)-1]),
		N:       len(samples),
	}
}

var errTooFewEndpoints = errorString("network: need at least two endpoints")

type errorString string

func (e errorString) Error() string { return string(e) }
