// Package network is the flow-level simulator that runs on a fabric: it
// allocates bandwidth to traffic demands by progressive water-filling
// (max-min fairness), samples packet latencies, and drives the paper's two
// network benchmarks, mpiGraph (Figure 6) and GPCNeT (Table 5).
//
// Flow-level max-min fairness is the standard steady-state abstraction
// for congestion-controlled fabrics: each demand is spread over the path
// set chosen by adaptive routing, and every link divides its capacity
// fairly among the subflows crossing it. Slingshot's hardware congestion
// control is what makes this abstraction accurate on Frontier — sources
// are pushed back to their bottleneck fair share, so persistent queues
// (and the head-of-line blocking a fabric without CC suffers) do not form.
package network

import (
	"frontiersim/internal/fabric"
)

// Demand is one traffic pair to be allocated bandwidth.
type Demand struct {
	// Src and Dst are endpoint ids (informational; paths carry routing).
	Src, Dst int
	// Paths is the path set from adaptive routing. Each path is a
	// sequence of directed link ids.
	Paths [][]int
	// Cap optionally limits the demand's total rate (bytes/s), e.g.
	// when a benchmark's message window cannot keep more data in
	// flight. Zero means uncapped.
	Cap float64
	// Rate is the solved total rate across subflows.
	Rate float64
	// SubRates are the solved per-path rates. Solve reuses the slice
	// across calls when its capacity suffices.
	SubRates []float64
}

// Solve computes the max-min fair allocation for the demands on fabric f.
// Each path of each demand is an independent subflow (Slingshot sprays
// packets over paths); a demand's rate is the sum over its subflows.
// Demand caps are honoured by modelling them as single-user pseudo-links.
//
// Solve is a thin wrapper over a pooled Solver arena: it is safe for
// concurrent use and allocation-free in steady state. Callers running
// many solves on one goroutine can hold their own Solver instead.
func Solve(f *fabric.Fabric, demands []*Demand) error {
	s := solverPool.Get().(*Solver)
	err := s.Solve(f, demands)
	solverPool.Put(s)
	return err
}

// LinkLoad reports post-solve utilisation of fabric links: a map from
// fabric link id to the fraction of capacity in use. Only links crossed
// by at least one demand appear. Fabric link ids are dense, so the sums
// accumulate in a scratch slice and only the touched links are copied
// into the result map.
func LinkLoad(f *fabric.Fabric, demands []*Demand) map[int]float64 {
	used := make([]float64, len(f.Links))
	seen := make([]bool, len(f.Links))
	touched := 0
	for _, d := range demands {
		for pi, p := range d.Paths {
			r := d.SubRates[pi]
			for _, lid := range p {
				if !seen[lid] {
					seen[lid] = true
					touched++
				}
				used[lid] += r
			}
		}
	}
	out := make(map[int]float64, touched)
	for lid, ok := range seen {
		if ok {
			out[lid] = used[lid] / f.Links[lid].Cap
		}
	}
	return out
}
