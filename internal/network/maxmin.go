// Package network is the flow-level simulator that runs on a fabric: it
// allocates bandwidth to traffic demands by progressive water-filling
// (max-min fairness), samples packet latencies, and drives the paper's two
// network benchmarks, mpiGraph (Figure 6) and GPCNeT (Table 5).
//
// Flow-level max-min fairness is the standard steady-state abstraction
// for congestion-controlled fabrics: each demand is spread over the path
// set chosen by adaptive routing, and every link divides its capacity
// fairly among the subflows crossing it. Slingshot's hardware congestion
// control is what makes this abstraction accurate on Frontier — sources
// are pushed back to their bottleneck fair share, so persistent queues
// (and the head-of-line blocking a fabric without CC suffers) do not form.
package network

import (
	"container/heap"
	"fmt"
	"math"

	"frontiersim/internal/fabric"
)

// Demand is one traffic pair to be allocated bandwidth.
type Demand struct {
	// Src and Dst are endpoint ids (informational; paths carry routing).
	Src, Dst int
	// Paths is the path set from adaptive routing. Each path is a
	// sequence of directed link ids.
	Paths [][]int
	// Cap optionally limits the demand's total rate (bytes/s), e.g.
	// when a benchmark's message window cannot keep more data in
	// flight. Zero means uncapped.
	Cap float64
	// Rate is the solved total rate across subflows.
	Rate float64
	// SubRates are the solved per-path rates.
	SubRates []float64
}

// Solve computes the max-min fair allocation for the demands on fabric f.
// Each path of each demand is an independent subflow (Slingshot sprays
// packets over paths); a demand's rate is the sum over its subflows.
// Demand caps are honoured by modelling them as single-user pseudo-links.
func Solve(f *fabric.Fabric, demands []*Demand) error {
	type link struct {
		cap   float64
		used  float64
		count int
		subs  []int32
	}
	var links []link
	linkIdx := make(map[int]int32) // fabric link id -> local index

	type subflow struct {
		demand int32
		path   int32
		links  []int32
	}
	var subs []subflow

	for di, d := range demands {
		if len(d.Paths) == 0 {
			return fmt.Errorf("network: demand %d (%d->%d) has no paths", di, d.Src, d.Dst)
		}
		d.SubRates = make([]float64, len(d.Paths))
		d.Rate = 0
		for pi, p := range d.Paths {
			si := int32(len(subs))
			sf := subflow{demand: int32(di), path: int32(pi)}
			for _, lid := range p {
				li, ok := linkIdx[lid]
				if !ok {
					li = int32(len(links))
					linkIdx[lid] = li
					fl := f.Links[lid]
					if !fl.Up {
						return fmt.Errorf("network: demand %d routed over down link %d", di, lid)
					}
					links = append(links, link{cap: fl.Cap})
				}
				links[li].count++
				links[li].subs = append(links[li].subs, si)
				sf.links = append(sf.links, li)
			}
			if d.Cap > 0 {
				// Pseudo-link private to this subflow, enforcing the
				// demand cap split evenly across its paths.
				li := int32(len(links))
				links = append(links, link{cap: d.Cap / float64(len(d.Paths)), count: 1, subs: []int32{si}})
				sf.links = append(sf.links, li)
			}
			subs = append(subs, sf)
		}
	}

	// Lazy heap of (bound, link): bounds only grow as flows freeze, so a
	// stale entry is re-pushed with its recomputed bound.
	h := &boundHeap{}
	bound := func(li int32) float64 {
		l := &links[li]
		if l.count == 0 {
			return math.Inf(1)
		}
		b := (l.cap - l.used) / float64(l.count)
		if b < 0 {
			b = 0
		}
		return b
	}
	for li := range links {
		heap.Push(h, boundEntry{bound(int32(li)), int32(li)})
	}

	frozen := make([]bool, len(subs))
	remaining := len(subs)
	for remaining > 0 && h.Len() > 0 {
		e := heap.Pop(h).(boundEntry)
		cur := bound(e.link)
		if links[e.link].count == 0 {
			continue
		}
		if cur > e.bound+1e-15 {
			heap.Push(h, boundEntry{cur, e.link})
			continue
		}
		level := cur
		// Freeze every unfrozen subflow crossing the bottleneck.
		for _, si := range links[e.link].subs {
			if frozen[si] {
				continue
			}
			frozen[si] = true
			remaining--
			d := demands[subs[si].demand]
			d.SubRates[subs[si].path] = level
			d.Rate += level
			for _, li := range subs[si].links {
				links[li].used += level
				links[li].count--
			}
		}
		// Neighbouring links got new bounds; lazy revalidation handles
		// them when popped, but the bottleneck itself is done.
	}
	if remaining > 0 {
		return fmt.Errorf("network: solver left %d subflows unallocated", remaining)
	}
	return nil
}

// LinkLoad reports post-solve utilisation of fabric links: a map from
// fabric link id to the fraction of capacity in use. Only links crossed
// by at least one demand appear.
func LinkLoad(f *fabric.Fabric, demands []*Demand) map[int]float64 {
	used := make(map[int]float64)
	for _, d := range demands {
		for pi, p := range d.Paths {
			for _, lid := range p {
				used[lid] += d.SubRates[pi]
			}
		}
	}
	for lid := range used {
		used[lid] /= f.Links[lid].Cap
	}
	return used
}

type boundEntry struct {
	bound float64
	link  int32
}

type boundHeap []boundEntry

func (h boundHeap) Len() int           { return len(h) }
func (h boundHeap) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h boundHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *boundHeap) Push(x any)        { *h = append(*h, x.(boundEntry)) }
func (h *boundHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
