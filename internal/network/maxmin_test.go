package network

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"frontiersim/internal/fabric"
	"frontiersim/internal/machine"
)

func smallFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	f, err := machine.Scaled(6, 8, 4).NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func demand(t *testing.T, f *fabric.Fabric, src, dst, valiant int, rng *rand.Rand) *Demand {
	t.Helper()
	ps, err := f.AdaptivePaths(src, dst, valiant, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &Demand{Src: src, Dst: dst, Paths: ps.Paths}
}

func TestSolveSingleFlow(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(1))
	// Same-switch pair: only endpoint links bind -> full endpoint rate.
	d := demand(t, f, 0, 1, 0, rng)
	if err := Solve(f, []*Demand{d}); err != nil {
		t.Fatal(err)
	}
	want := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency
	if math.Abs(d.Rate-want)/want > 1e-9 {
		t.Errorf("single flow rate = %.3g, want %.3g (endpoint limit)", d.Rate, want)
	}
}

func TestSolveFairSharing(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(2))
	// Two flows into the same destination endpoint: the ejection link
	// must split evenly.
	d1 := demand(t, f, 0, 9, 0, rng)
	d2 := demand(t, f, 1, 9, 0, rng)
	if err := Solve(f, []*Demand{d1, d2}); err != nil {
		t.Fatal(err)
	}
	want := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency / 2
	for _, d := range []*Demand{d1, d2} {
		if math.Abs(d.Rate-want)/want > 1e-9 {
			t.Errorf("flow %d->%d rate = %.3g, want %.3g", d.Src, d.Dst, d.Rate, want)
		}
	}
}

func TestSolveDemandCap(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(3))
	d := demand(t, f, 0, 9, 0, rng)
	d.Cap = 1e9
	if err := Solve(f, []*Demand{d}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Rate-1e9)/1e9 > 1e-9 {
		t.Errorf("capped rate = %.3g, want 1e9", d.Rate)
	}
}

func TestCappedFlowLeavesCapacityToOthers(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(4))
	d1 := demand(t, f, 0, 9, 0, rng)
	d1.Cap = 2e9
	d2 := demand(t, f, 1, 9, 0, rng)
	if err := Solve(f, []*Demand{d1, d2}); err != nil {
		t.Fatal(err)
	}
	ej := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency
	if math.Abs(d1.Rate-2e9) > 1 {
		t.Errorf("capped flow = %.3g, want 2e9", d1.Rate)
	}
	if math.Abs(d2.Rate-(ej-2e9)) > 1 {
		t.Errorf("uncapped flow = %.3g, want remainder %.3g", d2.Rate, ej-2e9)
	}
}

func TestMultipathBeatsSinglePath(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(5))
	// Saturate the direct global links between groups 0 and 1 with many
	// single-path (minimal only) flows, then check an adaptive flow
	// gets more via Valiant detours.
	var background []*Demand
	for i := 0; i < 16; i++ {
		background = append(background, demand(t, f, i, 32+i, 0, rng))
	}
	single := demand(t, f, 16, 48, 0, rng)
	multi := demand(t, f, 17, 49, 4, rng)
	all := append(append([]*Demand{}, background...), single, multi)
	if err := Solve(f, all); err != nil {
		t.Fatal(err)
	}
	if multi.Rate <= single.Rate {
		t.Errorf("adaptive flow %.3g should beat minimal-only %.3g under contention", multi.Rate, single.Rate)
	}
}

// Property: no link is oversubscribed and all rates are non-negative.
func TestNoOversubscriptionProperty(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(6))
	check := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%24 + 2
		var demands []*Demand
		for i := 0; i < n; i++ {
			src := r.Intn(f.NumEndpoints)
			dst := r.Intn(f.NumEndpoints)
			if src == dst {
				continue
			}
			ps, err := f.AdaptivePaths(src, dst, 3, rng)
			if err != nil {
				return false
			}
			d := &Demand{Src: src, Dst: dst, Paths: ps.Paths}
			if r.Intn(2) == 0 {
				d.Cap = float64(1+r.Intn(20)) * 1e9
			}
			demands = append(demands, d)
		}
		if len(demands) == 0 {
			return true
		}
		if err := Solve(f, demands); err != nil {
			return false
		}
		for _, d := range demands {
			if d.Rate < 0 {
				return false
			}
			if d.Cap > 0 && d.Rate > d.Cap*(1+1e-9) {
				return false
			}
		}
		for lid, u := range LinkLoad(f, demands) {
			if u > 1+1e-6 {
				_ = lid
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (max-min): every subflow is bottlenecked — it crosses at least
// one link that is fully utilised. Otherwise its rate could grow, which
// would violate max-min optimality.
func TestEverySubflowBottleneckedProperty(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(7))
	var demands []*Demand
	for i := 0; i < 30; i++ {
		src := rng.Intn(f.NumEndpoints)
		dst := rng.Intn(f.NumEndpoints)
		if src == dst {
			continue
		}
		demands = append(demands, demand(t, f, src, dst, 2, rng))
	}
	if err := Solve(f, demands); err != nil {
		t.Fatal(err)
	}
	load := LinkLoad(f, demands)
	for _, d := range demands {
		for pi, p := range d.Paths {
			bottlenecked := false
			for _, lid := range p {
				if load[lid] > 1-1e-6 {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				t.Fatalf("subflow %d of %d->%d (rate %.3g) has no saturated link", pi, d.Src, d.Dst, d.SubRates[pi])
			}
		}
	}
}

func TestSolveErrors(t *testing.T) {
	f := smallFabric(t)
	if err := Solve(f, []*Demand{{Src: 0, Dst: 1}}); err == nil {
		t.Error("demand without paths should error")
	}
	rng := rand.New(rand.NewSource(8))
	d := demand(t, f, 0, 40, 0, rng)
	for _, lid := range d.Paths[0] {
		f.FailLink(lid)
	}
	if err := Solve(f, []*Demand{d}); err == nil {
		t.Error("demand over failed link should error")
	}
}

func TestSolverDeterminism(t *testing.T) {
	f := smallFabric(t)
	run := func() []float64 {
		rng := rand.New(rand.NewSource(9))
		var demands []*Demand
		for i := 0; i < 20; i++ {
			demands = append(demands, demand(t, f, rng.Intn(96), 96+rng.Intn(96), 3, rng))
		}
		if err := Solve(f, demands); err != nil {
			t.Fatal(err)
		}
		rates := make([]float64, len(demands))
		for i, d := range demands {
			rates[i] = d.Rate
		}
		return rates
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic solve at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
