package network

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"frontiersim/internal/fabric"
)

// MpiGraphConfig controls the mpiGraph census of Figure 6.
type MpiGraphConfig struct {
	// Nodes is the number of participating compute nodes (0 = all).
	Nodes int
	// RanksPerNode is the number of measuring ranks per node; Frontier
	// runs one rank per NIC (4), Summit one per node.
	RanksPerNode int
	// Shifts is how many shift permutations to sample out of the full
	// node count (mpiGraph proper runs them all; sampling keeps the
	// simulation tractable and the histogram converges quickly).
	Shifts int
	// ValiantPaths is the number of non-minimal paths adaptive routing
	// spreads each inter-group pair across.
	ValiantPaths int
	// MeasureJitter is the relative standard deviation of measurement
	// noise applied to each sample.
	MeasureJitter float64
}

// DefaultMpiGraphConfig returns the configuration used for Figure 6.
func DefaultMpiGraphConfig() MpiGraphConfig {
	return MpiGraphConfig{
		RanksPerNode:  4,
		Shifts:        8,
		ValiantPaths:  4,
		MeasureJitter: 0.02,
	}
}

// MpiGraphResult is the per-NIC receive-bandwidth census.
type MpiGraphResult struct {
	// Samples are per-pair receive bandwidths in bytes/s.
	Samples []float64
	Min     float64
	Max     float64
	Mean    float64
	Median  float64
}

// Histogram bins the samples into n equal-width bins over [0, max] and
// returns bin upper edges (bytes/s) and counts. An all-zero census
// (Max == 0) has no meaningful bin width, so it degenerates to a single
// zero-edge bin holding every sample rather than n bins of a fabricated
// 1 byte/s width.
func (r MpiGraphResult) Histogram(n int) (edges []float64, counts []int) {
	if len(r.Samples) == 0 || n < 1 {
		return nil, nil
	}
	if r.Max == 0 {
		return []float64{0}, []int{len(r.Samples)}
	}
	width := r.Max / float64(n)
	edges = make([]float64, n)
	counts = make([]int, n)
	for i := range edges {
		edges[i] = width * float64(i+1)
	}
	for _, s := range r.Samples {
		b := int(s / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return edges, counts
}

// RunMpiGraph measures pairwise bandwidth under shift permutations: for
// each sampled shift s, rank k of node i sends to rank k of node i+s,
// all pairs simultaneously, and each pair's allocated rate is one sample.
// This is mpiGraph's measurement structure and reproduces Figure 6: a
// tight distribution on a non-blocking fat tree, a wide one on the
// tapered dragonfly.
func RunMpiGraph(f *fabric.Fabric, cfg MpiGraphConfig, rng *rand.Rand) (MpiGraphResult, error) {
	return RunMpiGraphWithCache(f, cfg, rng, nil, "")
}

// RunMpiGraphWithCache is RunMpiGraph with a solution cache: each
// shift's solve is served from (or stored into) solutions by literal
// demand signature. Path building still threads the shared rng even on
// a hit — the census's later draws (and therefore its byte-identical
// output) depend on the stream having advanced exactly as if the shift
// were computed cold; only the water-filling solve is skipped. topo is
// the canonical topology address (machine.Hash) used in cache keys, or
// "" to restrict hits to this exact fabric instance.
func RunMpiGraphWithCache(f *fabric.Fabric, cfg MpiGraphConfig, rng *rand.Rand, solutions *SolutionCache, topo string) (MpiGraphResult, error) {
	nodes, ranks, shifts, err := cfg.resolve(f)
	if err != nil {
		return MpiGraphResult{}, err
	}
	order := sampleShifts(nodes, shifts, rng)
	var result MpiGraphResult
	for _, s := range order {
		demands, err := buildShiftDemands(f, nodes, ranks, s, func(src, dst int) ([][]int, error) {
			ps, err := f.AdaptivePaths(src, dst, cfg.ValiantPaths, rng)
			return ps.Paths, err
		})
		if err != nil {
			return MpiGraphResult{}, err
		}
		if err := solveCached(f, demands, solutions, topo); err != nil {
			return MpiGraphResult{}, err
		}
		for _, d := range demands {
			v := d.Rate * (1 + cfg.MeasureJitter*rng.NormFloat64())
			if v < 0 {
				v = 0
			}
			result.Samples = append(result.Samples, v)
		}
	}
	return finishMpiGraph(result)
}

// resolve validates cfg against the fabric and applies defaults.
func (cfg MpiGraphConfig) resolve(f *fabric.Fabric) (nodes, ranks, shifts int, err error) {
	nodes = cfg.Nodes
	if nodes == 0 {
		nodes = f.Cfg.ComputeNodes()
	}
	if nodes > f.Cfg.ComputeNodes() {
		return 0, 0, 0, fmt.Errorf("network: %d nodes exceeds fabric's %d", nodes, f.Cfg.ComputeNodes())
	}
	if nodes < 2 {
		return 0, 0, 0, fmt.Errorf("network: mpiGraph needs at least two nodes")
	}
	ranks = cfg.RanksPerNode
	if ranks < 1 || ranks > f.Cfg.NICsPerNode {
		ranks = f.Cfg.NICsPerNode
	}
	shifts = cfg.Shifts
	if shifts <= 0 || shifts >= nodes {
		shifts = nodes - 1
	}
	return nodes, ranks, shifts, nil
}

// sampleShifts draws the set of shift permutations to measure, in sorted
// order. Distinct shifts in [1, nodes): always include 1 (mostly
// intra-group on Frontier's packed numbering) and a far shift. Sorted
// iteration matters: map order would otherwise reshuffle later rng draws
// between runs, making the census nondeterministic even at a fixed seed.
func sampleShifts(nodes, shifts int, rng *rand.Rand) []int {
	chosen := map[int]bool{1: true, nodes / 2: true}
	for len(chosen) < shifts {
		chosen[1+rng.Intn(nodes-1)] = true
	}
	order := make([]int, 0, len(chosen))
	for s := range chosen {
		order = append(order, s)
	}
	sort.Ints(order)
	return order
}

// buildShiftDemands constructs one shift's demand set: rank k of node i
// sends to rank k of node i+s. paths supplies the route set per endpoint
// pair — the serial census threads a shared rng through AdaptivePaths,
// the parallel census an epoch-cached PathCache.
func buildShiftDemands(f *fabric.Fabric, nodes, ranks, s int, paths func(src, dst int) ([][]int, error)) ([]*Demand, error) {
	// One slab allocation for the Demand objects themselves: a full-scale
	// shift is ~75k demands, and a per-demand heap object apiece was a
	// visible slice of the census's allocation bill. The slab is sized
	// exactly (s in [1, nodes) means j == i never fires), so the pointers
	// handed out below stay valid.
	slab := make([]Demand, 0, nodes*ranks)
	demands := make([]*Demand, 0, nodes*ranks)
	for i := 0; i < nodes; i++ {
		j := (i + s) % nodes
		if j == i {
			continue
		}
		for k := 0; k < ranks; k++ {
			src := f.NodeEndpoint(i, k)
			dst := f.NodeEndpoint(j, k)
			ps, err := paths(src, dst)
			if err != nil {
				return nil, err
			}
			slab = append(slab, Demand{Src: src, Dst: dst, Paths: ps})
			demands = append(demands, &slab[len(slab)-1])
		}
	}
	return demands, nil
}

// finishMpiGraph sorts the samples and fills the summary statistics.
func finishMpiGraph(result MpiGraphResult) (MpiGraphResult, error) {
	if len(result.Samples) == 0 {
		return MpiGraphResult{}, fmt.Errorf("network: no samples collected")
	}
	sort.Float64s(result.Samples)
	result.Min = result.Samples[0]
	result.Max = result.Samples[len(result.Samples)-1]
	result.Median = result.Samples[len(result.Samples)/2]
	var sum float64
	for _, v := range result.Samples {
		sum += v
	}
	result.Mean = sum / float64(len(result.Samples))
	return result, nil
}

// Spread reports the max/min ratio of the census — the paper's headline
// qualitative difference between the two fabrics (~2x on Summit's numbers
// vs ~6x on Frontier's).
func (r MpiGraphResult) Spread() float64 {
	if r.Min <= 0 {
		return math.Inf(1)
	}
	return r.Max / r.Min
}
