package network

import (
	"math/rand"
	"testing"
)

// Satellite regression: an all-zero census has no meaningful bin width.
// Histogram previously fabricated a 1 byte/s width, putting every
// sample in bin 0 of n mostly-empty bins; it must instead degenerate to
// a single zero-edge bin holding everything.
func TestHistogramZeroMax(t *testing.T) {
	r := MpiGraphResult{Samples: []float64{0, 0, 0, 0}, Max: 0}
	edges, counts := r.Histogram(14)
	if len(edges) != 1 || len(counts) != 1 {
		t.Fatalf("zero-max histogram has %d bins, want 1 (edges %v, counts %v)", len(edges), edges, counts)
	}
	if edges[0] != 0 {
		t.Errorf("degenerate edge = %v, want 0", edges[0])
	}
	if counts[0] != len(r.Samples) {
		t.Errorf("degenerate bin holds %d samples, want %d", counts[0], len(r.Samples))
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if e, c := (MpiGraphResult{}).Histogram(10); e != nil || c != nil {
		t.Error("empty census should histogram to nil")
	}
	r := MpiGraphResult{Samples: []float64{1, 2, 3}, Max: 3}
	if e, c := r.Histogram(0); e != nil || c != nil {
		t.Error("n < 1 should histogram to nil")
	}
}

// Normal histograms: n equal-width bins over [0, Max], counts
// conserving every sample, the max landing in the last bin.
func TestHistogramBinning(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	r := MpiGraphResult{Max: 10e9}
	for i := 0; i < 500; i++ {
		r.Samples = append(r.Samples, rng.Float64()*10e9)
	}
	r.Samples = append(r.Samples, 10e9) // exactly Max clamps into the last bin
	edges, counts := r.Histogram(8)
	if len(edges) != 8 || len(counts) != 8 {
		t.Fatalf("got %d/%d bins, want 8", len(edges), len(counts))
	}
	if edges[7] != 10e9 {
		t.Errorf("last edge = %v, want Max", edges[7])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(r.Samples) {
		t.Errorf("counts sum to %d, want %d", total, len(r.Samples))
	}
	if counts[7] == 0 {
		t.Error("sample at Max should land in the last bin")
	}
}
