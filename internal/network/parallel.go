package network

import (
	"context"
	"fmt"

	"frontiersim/internal/fabric"
	"frontiersim/internal/harness"
	"frontiersim/internal/rng"
)

// ParallelConfig tunes parallel evaluation of independent solves.
type ParallelConfig struct {
	// Jobs bounds worker concurrency; <=0 means GOMAXPROCS.
	Jobs int
	// Seed is the root seed. Every per-task stream derives from it via
	// SplitMix64 (see harness.DeriveSeed), so results are byte-identical
	// at any Jobs setting.
	Seed int64
}

// RunMpiGraphParallel runs the mpiGraph census with its shift
// permutations evaluated concurrently on the harness worker pool.
//
// It differs from RunMpiGraph in two ways that make the shifts
// independent (and therefore parallel and cache-friendly) units of work:
// each shift draws measurement jitter from its own SplitMix64-derived rng
// stream, and adaptive-routing path sets come from an epoch-cached
// fabric.PathCache instead of a shared rng thread. Both are deterministic
// functions of cfg and pcfg.Seed alone, so a run at Jobs=1 and a run at
// Jobs=N return identical results (TestMpiGraphSerialParallelEquivalence
// pins this); the sample distribution is statistically equivalent to the
// serial census but not sample-for-sample identical to it.
func RunMpiGraphParallel(ctx context.Context, f *fabric.Fabric, cfg MpiGraphConfig, pcfg ParallelConfig) (MpiGraphResult, error) {
	nodes, ranks, shifts, err := cfg.resolve(f)
	if err != nil {
		return MpiGraphResult{}, err
	}
	order := sampleShifts(nodes, shifts, rng.New(pcfg.Seed))
	cache := fabric.NewPathCache(f, cfg.ValiantPaths, harness.DeriveSeed(pcfg.Seed, "mpigraph-paths"))

	tasks := make([]harness.Task[[]float64], len(order))
	for ti, s := range order {
		s := s
		tasks[ti] = harness.Task[[]float64]{
			ID: fmt.Sprintf("shift-%d", s),
			Run: func(_ context.Context, seed int64) ([]float64, error) {
				demands, err := buildShiftDemands(f, nodes, ranks, s, func(src, dst int) ([][]int, error) {
					ps, err := cache.Paths(src, dst)
					return ps.Paths, err
				})
				if err != nil {
					return nil, err
				}
				if err := Solve(f, demands); err != nil {
					return nil, err
				}
				r := rng.New(seed)
				samples := make([]float64, 0, len(demands))
				for _, d := range demands {
					v := d.Rate * (1 + cfg.MeasureJitter*r.NormFloat64())
					if v < 0 {
						v = 0
					}
					samples = append(samples, v)
				}
				return samples, nil
			},
		}
	}
	results, err := harness.Run(ctx, harness.Config{Jobs: pcfg.Jobs, FailFast: true, RootSeed: pcfg.Seed}, tasks, nil)
	if err != nil {
		return MpiGraphResult{}, err
	}
	var result MpiGraphResult
	for _, r := range results {
		result.Samples = append(result.Samples, r.Value...)
	}
	return finishMpiGraph(result)
}

// RunGPCNeTTrials runs trials independent repetitions of the GPCNeT
// benchmark concurrently, one derived rng stream per trial, and returns
// the per-trial results in trial order. The fabric is shared read-only
// across workers; results are byte-identical at any Jobs setting.
func RunGPCNeTTrials(ctx context.Context, f *fabric.Fabric, cfg GPCNeTConfig, trials int, pcfg ParallelConfig) ([]GPCNeTResult, error) {
	if trials < 1 {
		return nil, fmt.Errorf("network: GPCNeT needs at least one trial, got %d", trials)
	}
	tasks := make([]harness.Task[GPCNeTResult], trials)
	for i := range tasks {
		tasks[i] = harness.Task[GPCNeTResult]{
			ID: fmt.Sprintf("trial-%d", i),
			Run: func(_ context.Context, seed int64) (GPCNeTResult, error) {
				return RunGPCNeT(f, cfg, rng.New(seed))
			},
		}
	}
	results, err := harness.Run(ctx, harness.Config{Jobs: pcfg.Jobs, FailFast: true, RootSeed: pcfg.Seed}, tasks, nil)
	if err != nil {
		return nil, err
	}
	out := make([]GPCNeTResult, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, nil
}
