package network

import (
	"context"
	"fmt"
	"math/rand"

	"frontiersim/internal/fabric"
	"frontiersim/internal/harness"
	"frontiersim/internal/rng"
)

// ParallelConfig tunes parallel evaluation of independent solves.
type ParallelConfig struct {
	// Jobs bounds worker concurrency; <=0 means GOMAXPROCS.
	Jobs int
	// Seed is the root seed. Every per-task stream derives from it via
	// SplitMix64 (see harness.DeriveSeed), so results are byte-identical
	// at any Jobs setting.
	Seed int64

	// Solutions, when non-nil, caches solved allocations across runs:
	// census shifts are keyed by pattern signature (so a repeated run
	// skips path building and solving both), GPCNeT phases by literal
	// demand signature. Entries are invalidated by fabric state-epoch
	// bumps; results are byte-identical with or without the cache.
	Solutions *SolutionCache
	// TopoKey is the canonical topology address (machine.Hash) used in
	// Solutions keys; "" restricts hits to the exact fabric instance.
	TopoKey string
	// Paths optionally shares an adaptive-routing path cache across
	// runs. It must come from NewMpiGraphPathCache with the same cfg and
	// Seed — a cache built under any other derivation is ignored, since
	// its entries would break the run's determinism contract.
	Paths *fabric.PathCache
}

// NewMpiGraphPathCache builds the path cache RunMpiGraphParallel would
// build internally: seeded by the census's canonical derivation from
// pcfg.Seed, so it can be constructed once and shared across repeated
// runs via ParallelConfig.Paths.
func NewMpiGraphPathCache(f *fabric.Fabric, cfg MpiGraphConfig, pcfg ParallelConfig) *fabric.PathCache {
	return fabric.NewPathCache(f, cfg.ValiantPaths, harness.DeriveSeed(pcfg.Seed, "mpigraph-paths"))
}

// RunMpiGraphParallel runs the mpiGraph census with its shift
// permutations evaluated concurrently on the harness worker pool.
//
// It differs from RunMpiGraph in two ways that make the shifts
// independent (and therefore parallel and cache-friendly) units of work:
// each shift draws measurement jitter from its own SplitMix64-derived rng
// stream, and adaptive-routing path sets come from an epoch-cached
// fabric.PathCache instead of a shared rng thread. Both are deterministic
// functions of cfg and pcfg.Seed alone, so a run at Jobs=1 and a run at
// Jobs=N return identical results (TestMpiGraphSerialParallelEquivalence
// pins this); the sample distribution is statistically equivalent to the
// serial census but not sample-for-sample identical to it.
//
// That purity is also what makes whole shifts cacheable: a shift's
// demand set — and therefore its solved rates — is fully determined by
// (path seed, valiant fanout, nodes, ranks, shift) on a given fabric
// state, so with pcfg.Solutions set, a repeated shift is served straight
// from its pattern signature without building paths or touching the
// solver, and only the per-shift measurement jitter is re-drawn.
func RunMpiGraphParallel(ctx context.Context, f *fabric.Fabric, cfg MpiGraphConfig, pcfg ParallelConfig) (MpiGraphResult, error) {
	nodes, ranks, shifts, err := cfg.resolve(f)
	if err != nil {
		return MpiGraphResult{}, err
	}
	order := sampleShifts(nodes, shifts, rng.New(pcfg.Seed))
	pathSeed := harness.DeriveSeed(pcfg.Seed, "mpigraph-paths")
	cache := pcfg.Paths
	if cache == nil || cache.Seed() != pathSeed || cache.Valiant() != cfg.ValiantPaths {
		cache = fabric.NewPathCache(f, cfg.ValiantPaths, pathSeed)
	}

	tasks := make([]harness.Task[[]float64], len(order))
	for ti, s := range order {
		s := s
		tasks[ti] = harness.Task[[]float64]{
			ID: fmt.Sprintf("shift-%d", s),
			Run: func(_ context.Context, seed int64) ([]float64, error) {
				sig := PatternSignature("mpigraph-shift",
					uint64(pathSeed), uint64(cfg.ValiantPaths),
					uint64(nodes), uint64(ranks), uint64(s))
				r := rng.New(seed)
				if sol, ok := pcfg.Solutions.Lookup(f, pcfg.TopoKey, sig); ok {
					return sampleRates(sol.Rates, cfg.MeasureJitter, r), nil
				}
				demands, err := buildShiftDemands(f, nodes, ranks, s, func(src, dst int) ([][]int, error) {
					ps, err := cache.Paths(src, dst)
					return ps.Paths, err
				})
				if err != nil {
					return nil, err
				}
				if err := Solve(f, demands); err != nil {
					return nil, err
				}
				sol := pcfg.Solutions.Store(f, pcfg.TopoKey, sig, demands)
				if sol == nil {
					sol = newSolution(demands)
				}
				return sampleRates(sol.Rates, cfg.MeasureJitter, r), nil
			},
		}
	}
	results, err := harness.Run(ctx, harness.Config{Jobs: pcfg.Jobs, FailFast: true, RootSeed: pcfg.Seed}, tasks, nil)
	if err != nil {
		return MpiGraphResult{}, err
	}
	var result MpiGraphResult
	for _, r := range results {
		result.Samples = append(result.Samples, r.Value...)
	}
	return finishMpiGraph(result)
}

// sampleRates applies per-sample measurement jitter to the solved rates.
// Hit and miss paths of the parallel census both funnel through here, in
// demand order, so a cached shift draws exactly the jitter sequence a
// computed one would.
func sampleRates(rates []float64, jitter float64, r *rand.Rand) []float64 {
	samples := make([]float64, 0, len(rates))
	for _, rate := range rates {
		v := rate * (1 + jitter*r.NormFloat64())
		if v < 0 {
			v = 0
		}
		samples = append(samples, v)
	}
	return samples
}

// RunGPCNeTTrials runs trials independent repetitions of the GPCNeT
// benchmark concurrently, one derived rng stream per trial, and returns
// the per-trial results in trial order. The fabric is shared read-only
// across workers; results are byte-identical at any Jobs setting.
// pcfg.Solutions lets repeated trials (and ablation arms that share a
// traffic matrix, like CC on/off) reuse solved phases by demand
// signature.
func RunGPCNeTTrials(ctx context.Context, f *fabric.Fabric, cfg GPCNeTConfig, trials int, pcfg ParallelConfig) ([]GPCNeTResult, error) {
	if trials < 1 {
		return nil, fmt.Errorf("network: GPCNeT needs at least one trial, got %d", trials)
	}
	tasks := make([]harness.Task[GPCNeTResult], trials)
	for i := range tasks {
		tasks[i] = harness.Task[GPCNeTResult]{
			ID: fmt.Sprintf("trial-%d", i),
			Run: func(_ context.Context, seed int64) (GPCNeTResult, error) {
				return RunGPCNeTWithCache(f, cfg, rng.New(seed), pcfg.Solutions, pcfg.TopoKey)
			},
		}
	}
	results, err := harness.Run(ctx, harness.Config{Jobs: pcfg.Jobs, FailFast: true, RootSeed: pcfg.Seed}, tasks, nil)
	if err != nil {
		return nil, err
	}
	out := make([]GPCNeTResult, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, nil
}
