package network

import (
	"context"
	"testing"
)

// The paper-level guarantee of the parallel census: worker count is
// invisible in the results. Serial (Jobs=1) and parallel (Jobs=8) runs
// must agree sample-for-sample, not just statistically.
func TestMpiGraphSerialParallelEquivalence(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultMpiGraphConfig()
	cfg.Shifts = 6
	run := func(jobs int) MpiGraphResult {
		res, err := RunMpiGraphParallel(context.Background(), f, cfg, ParallelConfig{Jobs: jobs, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if len(serial.Samples) == 0 {
		t.Fatal("no samples")
	}
	if len(serial.Samples) != len(parallel.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(serial.Samples), len(parallel.Samples))
	}
	for i := range serial.Samples {
		if serial.Samples[i] != parallel.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, serial.Samples[i], parallel.Samples[i])
		}
	}
	if serial.Min != parallel.Min || serial.Max != parallel.Max ||
		serial.Mean != parallel.Mean || serial.Median != parallel.Median {
		t.Fatalf("summary stats differ: %+v vs %+v", serial, parallel)
	}
}

// Different seeds must produce different censuses (the derived streams
// actually depend on the root seed).
func TestMpiGraphParallelSeedSensitivity(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultMpiGraphConfig()
	cfg.Shifts = 4
	a, err := RunMpiGraphParallel(context.Background(), f, cfg, ParallelConfig{Jobs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMpiGraphParallel(context.Background(), f, cfg, ParallelConfig{Jobs: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Samples) == len(b.Samples)
	if same {
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical censuses")
	}
}

// The parallel census must stay inside the same physical envelope the
// serial census is tested against.
func TestMpiGraphParallelEnvelope(t *testing.T) {
	f := smallFabric(t)
	res, err := RunMpiGraphParallel(context.Background(), f, DefaultMpiGraphConfig(), ParallelConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nicPeak := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency
	if res.Max > nicPeak*1.1 {
		t.Errorf("max %.3g exceeds NIC ceiling %.3g", res.Max, nicPeak)
	}
	if res.Min <= 0 {
		t.Error("min should be positive")
	}
	if res.Spread() < 1.5 {
		t.Errorf("dragonfly spread = %.2f, want wide (>1.5)", res.Spread())
	}
}

func TestMpiGraphParallelErrors(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultMpiGraphConfig()
	cfg.Nodes = 10000
	if _, err := RunMpiGraphParallel(context.Background(), f, cfg, ParallelConfig{Seed: 4}); err == nil {
		t.Error("too many nodes should error")
	}
}

// GPCNeT trial sets: per-trial derived streams make the batch
// worker-count invariant too.
func TestGPCNeTTrialsSerialParallelEquivalence(t *testing.T) {
	f := smallFabric(t)
	cfg := DefaultGPCNeTConfig()
	cfg.Nodes = 45
	cfg.LatencySamples = 400
	run := func(jobs int) []GPCNeTResult {
		res, err := RunGPCNeTTrials(context.Background(), f, cfg, 4, ParallelConfig{Jobs: jobs, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != 4 || len(parallel) != 4 {
		t.Fatalf("want 4 trials, got %d and %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.BandwidthImpact != p.BandwidthImpact || s.LatencyImpact != p.LatencyImpact ||
			s.AllreduceImpact != p.AllreduceImpact ||
			s.Isolated.Bandwidth.Average != p.Isolated.Bandwidth.Average ||
			s.Congested.Latency.Average != p.Congested.Latency.Average {
			t.Fatalf("trial %d differs between jobs=1 and jobs=4:\n%+v\n%+v", i, s, p)
		}
	}
	// Independent trials should not all collapse to one value.
	if serial[0].Isolated.Bandwidth.Average == serial[1].Isolated.Bandwidth.Average &&
		serial[1].Isolated.Bandwidth.Average == serial[2].Isolated.Bandwidth.Average {
		t.Error("distinct trials returned identical bandwidth averages; seeds look shared")
	}
}

func TestGPCNeTTrialsErrors(t *testing.T) {
	f := smallFabric(t)
	if _, err := RunGPCNeTTrials(context.Background(), f, DefaultGPCNeTConfig(), 0, ParallelConfig{}); err == nil {
		t.Error("zero trials should error")
	}
}
