package network

import (
	"fmt"
	"math/rand"
	"sort"

	"frontiersim/internal/fabric"
)

// Pattern generates traffic demands over a set of compute nodes. The
// benchmark drivers (mpiGraph's shifts, GPCNeT's congestors) and the
// ablation studies are built from these shapes.
type Pattern func(f *fabric.Fabric, nodes []int, rng *rand.Rand) ([]*Demand, error)

// buildDemand routes one NIC-to-NIC pair adaptively.
func buildDemand(f *fabric.Fabric, srcNode, dstNode, nic, valiant int, rng *rand.Rand) (*Demand, error) {
	src := f.NodeEndpoint(srcNode, nic)
	dst := f.NodeEndpoint(dstNode, nic)
	ps, err := f.AdaptivePaths(src, dst, valiant, rng)
	if err != nil {
		return nil, err
	}
	return &Demand{Src: src, Dst: dst, Paths: ps.Paths}, nil
}

// Shift returns the permutation node i → node (i+s): mpiGraph's
// measurement structure, and with group-aligned s the adversarial
// pattern minimal routing hates.
func Shift(s, nicsPerNode, valiant int) Pattern {
	return func(f *fabric.Fabric, nodes []int, rng *rand.Rand) ([]*Demand, error) {
		if len(nodes) < 2 {
			return nil, fmt.Errorf("network: shift needs >= 2 nodes")
		}
		var out []*Demand
		for i := range nodes {
			j := (i + s) % len(nodes)
			if i == j {
				continue
			}
			for k := 0; k < nicsPerNode; k++ {
				d, err := buildDemand(f, nodes[i], nodes[j], k, valiant, rng)
				if err != nil {
					return nil, err
				}
				out = append(out, d)
			}
		}
		return out, nil
	}
}

// RandomPermutation pairs every node with a random partner.
func RandomPermutation(nicsPerNode, valiant int) Pattern {
	return func(f *fabric.Fabric, nodes []int, rng *rand.Rand) ([]*Demand, error) {
		if len(nodes) < 2 {
			return nil, fmt.Errorf("network: permutation needs >= 2 nodes")
		}
		perm := rng.Perm(len(nodes))
		var out []*Demand
		for i, pi := range perm {
			if i == pi {
				continue
			}
			for k := 0; k < nicsPerNode; k++ {
				d, err := buildDemand(f, nodes[i], nodes[pi], k, valiant, rng)
				if err != nil {
					return nil, err
				}
				out = append(out, d)
			}
		}
		return out, nil
	}
}

// Incast aims every node at a single target — GPCNeT's tree-saturation
// generator and the reason congestion control exists.
func Incast(target int, valiant int) Pattern {
	return func(f *fabric.Fabric, nodes []int, rng *rand.Rand) ([]*Demand, error) {
		var out []*Demand
		for _, n := range nodes {
			if n == target {
				continue
			}
			d, err := buildDemand(f, n, target, 0, valiant, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, d)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("network: incast needs senders besides the target")
		}
		return out, nil
	}
}

// Broadcast is the mirror of Incast: one root sprays all others (the
// one- and two-sided broadcast congestors of GPCNeT).
func Broadcast(root int, valiant int) Pattern {
	return func(f *fabric.Fabric, nodes []int, rng *rand.Rand) ([]*Demand, error) {
		var out []*Demand
		for _, n := range nodes {
			if n == root {
				continue
			}
			d, err := buildDemand(f, root, n, 0, valiant, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, d)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("network: broadcast needs receivers besides the root")
		}
		return out, nil
	}
}

// Measure runs a pattern through the max-min solver and summarises the
// per-demand rates.
func Measure(f *fabric.Fabric, p Pattern, nodes []int, rng *rand.Rand) (MpiGraphResult, error) {
	demands, err := p(f, nodes, rng)
	if err != nil {
		return MpiGraphResult{}, err
	}
	if err := Solve(f, demands); err != nil {
		return MpiGraphResult{}, err
	}
	var res MpiGraphResult
	var sum float64
	for _, d := range demands {
		res.Samples = append(res.Samples, d.Rate)
		sum += d.Rate
	}
	sortSamples(&res)
	res.Mean = sum / float64(len(res.Samples))
	return res, nil
}

func sortSamples(r *MpiGraphResult) {
	sort.Float64s(r.Samples)
	if len(r.Samples) > 0 {
		r.Min = r.Samples[0]
		r.Max = r.Samples[len(r.Samples)-1]
		r.Median = r.Samples[len(r.Samples)/2]
	}
}
