package network

import (
	"math/rand"
	"testing"
)

func patternNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestShiftPattern(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(1))
	res, err := Measure(f, Shift(8, 4, 4), patternNodes(48), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 48*4 {
		t.Errorf("samples = %d, want 192", len(res.Samples))
	}
	if res.Min <= 0 || res.Max > 17.5e9*1.01 {
		t.Errorf("rates outside (0, NIC]: min %.3g max %.3g", res.Min, res.Max)
	}
	// A shift of 0-mod-len is degenerate.
	if _, err := Measure(f, Shift(0, 4, 4), patternNodes(1), rng); err == nil {
		t.Error("single node shift should error")
	}
}

func TestIncastConcentrates(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(2))
	res, err := Measure(f, Incast(0, 2), patternNodes(17), rng)
	if err != nil {
		t.Fatal(err)
	}
	// 16 senders share the target's ejection link (17.5 GB/s): each
	// gets ~1.1 GB/s — the fair share congestion control enforces.
	want := 25e9 * 0.7 / 16
	if res.Mean < want*0.8 || res.Mean > want*1.2 {
		t.Errorf("incast mean = %.3g, want ~%.3g (ejection fair share)", res.Mean, want)
	}
	if _, err := Measure(f, Incast(0, 2), []int{0}, rng); err == nil {
		t.Error("incast with no senders should error")
	}
}

func TestBroadcastSpreads(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(3))
	res, err := Measure(f, Broadcast(0, 2), patternNodes(17), rng)
	if err != nil {
		t.Fatal(err)
	}
	// The root's single injection NIC (17.5 GB/s) splits 16 ways.
	want := 25e9 * 0.7 / 16
	if res.Mean < want*0.8 || res.Mean > want*1.2 {
		t.Errorf("broadcast mean = %.3g, want ~%.3g (injection fair share)", res.Mean, want)
	}
	if _, err := Measure(f, Broadcast(0, 2), []int{0}, rng); err == nil {
		t.Error("broadcast with no receivers should error")
	}
}

func TestRandomPermutationPattern(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(4))
	res, err := Measure(f, RandomPermutation(4, 4), patternNodes(48), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 || res.Mean <= 0 {
		t.Fatal("permutation produced nothing")
	}
	// Permutation traffic on a lightly loaded fabric beats incast's
	// fair share by an order of magnitude.
	if res.Mean < 5e9 {
		t.Errorf("permutation mean = %.3g, want multi-GB/s", res.Mean)
	}
}
