package network

import (
	"fmt"
	"math/rand"

	"frontiersim/internal/fabric"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// ShardedTransport is the message transport over the sharded kernel:
// the same cut-through hop mechanics as Transport, executed in parallel
// across per-group logical processes. Each fabric link's serialisation
// queue is owned by exactly one LP (fabric.LinkLP — the group of the
// switch doing the arbitration), and a message migrates between LPs
// through the kernel's mailboxes only when its next link has a
// different owner. That crossing is posted one switch traversal ahead —
// exactly the fabric's lookahead bound — so the conservative window
// invariant holds by construction and the simulation is byte-identical
// to the serial windowed run at any shard count.
//
// Rules the model must follow (they are what keep the engine lock-free):
// Send must run on the source endpoint's LP (or during setup, before the
// kernel runs); the done callback runs on the destination endpoint's LP;
// and fabric link state must not change while a windowed run is in
// flight — routing tables are read shared and unlocked.
type ShardedTransport struct {
	F  *fabric.Fabric
	sk *sim.ShardedKernel

	// links[i] serialises messages crossing fabric link i. Each entry is
	// created and touched only by the LP that owns link i (linkLP[i]),
	// which is the single-writer discipline that makes the shared slice
	// race-free.
	links  []*sim.Resource
	linkLP []int32

	per []lpTransport
}

// lpTransport is one LP's slice of the transport: a private message
// pool, route-choice stream, and delivery counters.
type lpTransport struct {
	lp         *sim.LP
	rng        *rand.Rand
	pool       []*smessage
	delivered  int
	bytesMoved units.Bytes
}

// smessage is the pooled per-message hop state. Unlike the serial
// transport's message it records which LP currently owns it; the object
// itself migrates between LP pools as the head crosses groups.
type smessage struct {
	st    *ShardedTransport
	lp    int32 // owning LP; only its goroutine may touch the message
	path  []int // reused backing; filled by AppendMinimalPath
	i     int   // next hop index
	b     units.Bytes
	start units.Seconds
	ser   units.Seconds // serialisation time of the link being acquired
	res   *sim.Resource // resource of the link being acquired
	done  func(units.Seconds)
}

// NewShardedTransport builds a transport over fabric f on the sharded
// kernel sk. sk should be built over f's partition (sim.NewSharded(seed,
// f, shards)); the LP count must cover every link owner.
func NewShardedTransport(sk *sim.ShardedKernel, f *fabric.Fabric) *ShardedTransport {
	t := &ShardedTransport{
		F:      f,
		sk:     sk,
		links:  make([]*sim.Resource, len(f.Links)),
		linkLP: make([]int32, len(f.Links)),
		per:    make([]lpTransport, sk.NumLPs()),
	}
	for id := range f.Links {
		owner := f.LinkLP(id)
		if owner >= sk.NumLPs() {
			panic(fmt.Sprintf("network: link %d owned by LP %d but kernel has %d LPs", id, owner, sk.NumLPs()))
		}
		t.linkLP[id] = int32(owner)
	}
	for i := range t.per {
		lp := sk.LP(i)
		// Route choice draws from the owning LP's derived stream — a pure
		// function of (seed, LP, "transport"), shard-count-invariant.
		t.per[i] = lpTransport{lp: lp, rng: lp.Stream("transport")}
	}
	return t
}

func (t *ShardedTransport) resource(id int) *sim.Resource {
	r := t.links[id]
	if r == nil {
		owner := t.sk.LP(int(t.linkLP[id]))
		r = sim.NewResource(owner.K, fmt.Sprintf("link-%d", id), 1)
		t.links[id] = r
	}
	return r
}

// WarmLinks eagerly creates every link's serialisation resource. Beyond
// the usual benchmark-hygiene reason, warming is recommended before any
// parallel run: it moves all lazy resource creation to the quiescent
// setup phase.
func (t *ShardedTransport) WarmLinks() {
	for id := range t.links {
		t.resource(id)
	}
}

// Delivered returns completed-message count summed over LPs. Call it
// only while the kernel is quiescent (between runs).
func (t *ShardedTransport) Delivered() int {
	n := 0
	for i := range t.per {
		n += t.per[i].delivered
	}
	return n
}

// BytesMoved returns delivered payload summed over LPs; quiescent-only.
func (t *ShardedTransport) BytesMoved() units.Bytes {
	var b units.Bytes
	for i := range t.per {
		b += t.per[i].bytesMoved
	}
	return b
}

func (p *lpTransport) get(t *ShardedTransport, lp int32) *smessage {
	if n := len(p.pool); n > 0 {
		m := p.pool[n-1]
		p.pool = p.pool[:n-1]
		m.lp = lp
		return m
	}
	return &smessage{st: t, lp: lp}
}

func (p *lpTransport) put(m *smessage) {
	m.done = nil
	m.res = nil
	p.pool = append(p.pool, m)
}

// Send schedules a message of b bytes from endpoint src to dst over the
// minimal route, cut-through, exactly as Transport.Send. It must be
// invoked on src's LP (or during setup); done, if non-nil, runs on dst's
// LP at delivery with the end-to-end time.
func (t *ShardedTransport) Send(src, dst int, b units.Bytes, done func(units.Seconds)) error {
	lp := int32(t.F.EndpointLP(src))
	p := &t.per[lp]
	m := p.get(t, lp)
	path, err := t.F.AppendMinimalPath(m.path[:0], src, dst, p.rng)
	if err != nil {
		p.put(m)
		return err
	}
	m.path = path
	m.i = 0
	m.b = b
	m.start = p.lp.K.Now()
	m.done = done
	p.lp.K.AfterCall(t.F.Cfg.EndpointLatency, smsgHop, m)
	return nil
}

// smsgHop acquires the next link on the message's current LP; the
// sharded analogue of msgHop.
func smsgHop(arg any) {
	m := arg.(*smessage)
	t := m.st
	if m.i == len(m.path) {
		t.sk.LP(int(m.lp)).K.AfterCall(t.F.Cfg.EndpointLatency, smsgDeliver, m)
		return
	}
	id := m.path[m.i]
	m.ser = units.Seconds(float64(m.b) / t.F.Links[id].Cap)
	m.res = t.resource(id)
	m.res.AcquireCall(1, smsgGranted, m)
}

// smsgGranted holds the granted link for its serialisation time while
// the head proceeds after the switch traversal. If the next link belongs
// to another LP, the head crosses through the mailbox — posted exactly
// one switch latency (= the lookahead bound) ahead; the release event
// for the granted link stays behind on its owner.
func smsgGranted(arg any) {
	m := arg.(*smessage)
	t := m.st
	lp := t.sk.LP(int(m.lp))
	lp.K.AfterCall(m.ser, smsgRelease, m.res)
	m.i++
	L := t.F.Cfg.SwitchLatency
	if m.i < len(m.path) {
		if next := t.linkLP[m.path[m.i]]; next != m.lp {
			m.lp = next
			lp.Post(int(next), lp.K.Now()+L, smsgHop, m)
			return
		}
	}
	lp.K.AfterCall(L, smsgHop, m)
}

func smsgRelease(arg any) { arg.(*sim.Resource).Release(1) }

func smsgDeliver(arg any) {
	m := arg.(*smessage)
	p := &m.st.per[m.lp]
	p.delivered++
	p.bytesMoved += m.b
	done, elapsed := m.done, p.lp.K.Now()-m.start
	p.put(m) // recycle into the destination LP's pool before the callback
	if done != nil {
		done(elapsed)
	}
}
