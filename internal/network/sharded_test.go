package network

import (
	"reflect"
	"testing"

	"frontiersim/internal/fabric"
	"frontiersim/internal/machine"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

func shardedFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	f, err := machine.Scaled(6, 8, 4).NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// delivery is one message completion as observed on the destination LP.
type delivery struct {
	at      units.Seconds
	elapsed units.Seconds
}

// runShardedStorm fires a deterministic cross-group storm and returns
// per-LP delivery traces plus the kernel's executed-event count. All
// sends for group g are kicked off by an event on LP g, so the model
// obeys the source-LP rule under every shard count.
func runShardedStorm(t *testing.T, f *fabric.Fabric, shards, msgsPerGroup int) ([][]delivery, int, uint64) {
	t.Helper()
	sk := sim.NewSharded(42, f, shards)
	tr := NewShardedTransport(sk, f)
	tr.WarmLinks()
	traces := make([][]delivery, sk.NumLPs())
	eps := f.NumEndpoints
	perSwitch := f.Cfg.EndpointsPerSwitch
	groupEps := len(f.GroupSwitches(0)) * perSwitch
	for g := 0; g < sk.NumLPs(); g++ {
		g := g
		lp := sk.LP(g)
		lp.K.At(0, func() {
			st := lp.Stream("storm")
			for j := 0; j < msgsPerGroup; j++ {
				src := g*groupEps + st.Intn(groupEps)
				dst := st.Intn(eps - 1)
				if dst >= src {
					dst++
				}
				dlp := f.EndpointLP(dst)
				if err := tr.Send(src, dst, 64*units.KiB, func(el units.Seconds) {
					traces[dlp] = append(traces[dlp], delivery{at: sk.LP(dlp).K.Now(), elapsed: el})
				}); err != nil {
					t.Error(err)
				}
			}
		})
	}
	sk.Run()
	return traces, tr.Delivered(), sk.Executed()
}

func TestShardedTransportInvariantAcrossShardCounts(t *testing.T) {
	f := shardedFabric(t)
	const msgs = 40
	ref, refDelivered, refExec := runShardedStorm(t, f, 1, msgs)
	if want := f.NumLPs() * msgs; refDelivered != want {
		t.Fatalf("reference run delivered %d, want %d", refDelivered, want)
	}
	for _, shards := range []int{2, 3, 6} {
		got, delivered, exec := runShardedStorm(t, f, shards, msgs)
		if delivered != refDelivered {
			t.Errorf("shards=%d: delivered %d, want %d", shards, delivered, refDelivered)
		}
		if exec != refExec {
			t.Errorf("shards=%d: executed %d events, want %d", shards, exec, refExec)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d: per-LP delivery traces diverge from shards=1", shards)
		}
	}
}

func TestShardedTransportZeroLoadMatchesSerial(t *testing.T) {
	// A single uncontended cross-group message pays exactly the same
	// zero-load latency on both engines: identical path shapes, so the
	// structural delay terms agree even though route streams differ.
	f := shardedFabric(t)
	src, dst := 0, f.NumEndpoints-1

	k := sim.NewKernel(42)
	serial := NewTransport(k, f)
	var want units.Seconds
	if err := serial.Send(src, dst, 64*units.KiB, func(el units.Seconds) { want = el }); err != nil {
		t.Fatal(err)
	}
	k.Run()

	sk := sim.NewSharded(42, f, 2)
	tr := NewShardedTransport(sk, f)
	var got units.Seconds
	if err := tr.Send(src, dst, 64*units.KiB, func(el units.Seconds) { got = el }); err != nil {
		t.Fatal(err)
	}
	sk.Run()

	if want == 0 || got != want {
		t.Errorf("sharded zero-load delivery = %v, serial = %v", got, want)
	}
}

func TestShardedTransportIntraGroupStaysLocal(t *testing.T) {
	// A same-group message never crosses LPs: the destination sees it
	// without a single mailbox post (executed counts pin the event
	// budget: endpoint in/out + one hop per link + grant/release pairs).
	f := shardedFabric(t)
	sk := sim.NewSharded(1, f, 2)
	tr := NewShardedTransport(sk, f)
	done := false
	if err := tr.Send(0, 1, units.KiB, func(units.Seconds) { done = true }); err != nil {
		t.Fatal(err)
	}
	sk.Run()
	if !done {
		t.Fatal("same-switch message not delivered")
	}
	per := sk.ExecutedPerLP()
	for lp := 1; lp < len(per); lp++ {
		if per[lp] != 0 {
			t.Errorf("LP %d executed %d events for an intra-group message", lp, per[lp])
		}
	}
}

func TestShardedTransportOnFatTreeFallsBack(t *testing.T) {
	f, err := machine.Summit().NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	sk := sim.NewSharded(7, f, 8)
	if !sk.Serial() {
		t.Fatal("fat tree must select the serial fallback")
	}
	tr := NewShardedTransport(sk, f)
	n := 0
	for i := 0; i < 4; i++ {
		if err := tr.Send(i, f.NumEndpoints-1-i, units.MiB, func(units.Seconds) { n++ }); err != nil {
			t.Fatal(err)
		}
	}
	sk.Run()
	if n != 4 {
		t.Fatalf("delivered %d of 4 on the fat-tree fallback", n)
	}
}
