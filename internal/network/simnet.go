package network

import (
	"fmt"
	"math/rand"

	"frontiersim/internal/fabric"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// Transport is the message-level, event-driven companion to the
// steady-state flow solver: individual messages move across the fabric
// on the simulation clock, serialising on each link they cross. Where
// Solve answers "what bandwidth does each pair sustain", Transport
// answers "when does this message arrive" — with queueing delays emerging
// from link occupancy. Used for latency-sensitive studies and for
// driving app phases through the kernel.
type Transport struct {
	K *sim.Kernel
	F *fabric.Fabric
	// links[i] serialises messages crossing fabric link i (lazily
	// created).
	links map[int]*sim.Resource
	// Rng picks among parallel routes.
	Rng *rand.Rand

	// Delivered counts completed messages.
	Delivered int
	// BytesMoved sums delivered payload.
	BytesMoved units.Bytes
}

// NewTransport builds a transport on kernel k over fabric f.
func NewTransport(k *sim.Kernel, f *fabric.Fabric) *Transport {
	return &Transport{
		K:     k,
		F:     f,
		links: map[int]*sim.Resource{},
		Rng:   k.Stream("transport"),
	}
}

func (t *Transport) resource(link int) *sim.Resource {
	r, ok := t.links[link]
	if !ok {
		r = sim.NewResource(t.K, fmt.Sprintf("link-%d", link), 1)
		t.links[link] = r
	}
	return r
}

// Send schedules a message of b bytes from endpoint src to dst over the
// minimal route, cut-through: the message holds each link for its
// serialisation time, pipelining across hops with the per-switch latency
// between them. done (optional) runs at delivery with the end-to-end
// time.
func (t *Transport) Send(src, dst int, b units.Bytes, done func(units.Seconds)) error {
	path, err := t.F.MinimalPath(src, dst, t.Rng)
	if err != nil {
		return err
	}
	start := t.K.Now()
	// NIC and software overhead on the way in; the symmetric cost on
	// the way out is added at delivery.
	t.K.After(t.F.Cfg.EndpointLatency, func() {
		t.hop(path, 0, b, start, done)
	})
	return nil
}

// hop acquires the next link, holds it for the serialisation time, and
// recurses. Cut-through forwarding: the head of the message moves on
// after the switch latency, but the link stays busy for the full
// serialisation, which is what creates backpressure under load.
func (t *Transport) hop(path []int, i int, b units.Bytes, start units.Seconds, done func(units.Seconds)) {
	if i == len(path) {
		t.K.After(t.F.Cfg.EndpointLatency, func() {
			t.Delivered++
			t.BytesMoved += b
			if done != nil {
				done(t.K.Now() - start)
			}
		})
		return
	}
	link := t.F.Links[path[i]]
	res := t.resource(path[i])
	res.Acquire(1, func() {
		ser := units.Seconds(float64(b) / link.Cap)
		// The link is busy for the serialisation time...
		t.K.After(ser, func() { res.Release(1) })
		// ...while the head proceeds after the switch traversal.
		t.K.After(t.F.Cfg.SwitchLatency, func() {
			t.hop(path, i+1, b, start, done)
		})
	})
}

// Ping measures one isolated round trip between two endpoints, the
// event-driven analogue of the latency model's zero-load term. It runs
// the kernel to completion.
func (t *Transport) Ping(a, b int, payload units.Bytes) (units.Seconds, error) {
	start := t.K.Now()
	var rtt units.Seconds
	sendErr := t.Send(a, b, payload, func(units.Seconds) {
		if err := t.Send(b, a, payload, func(units.Seconds) {
			rtt = t.K.Now() - start
		}); err != nil {
			rtt = 0
		}
	})
	if sendErr != nil {
		return 0, sendErr
	}
	t.K.Run()
	if rtt == 0 {
		return 0, fmt.Errorf("network: ping return path failed")
	}
	return rtt, nil
}
