package network

import (
	"fmt"
	"math/rand"

	"frontiersim/internal/fabric"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// Transport is the message-level, event-driven companion to the
// steady-state flow solver: individual messages move across the fabric
// on the simulation clock, serialising on each link they cross. Where
// Solve answers "what bandwidth does each pair sustain", Transport
// answers "when does this message arrive" — with queueing delays emerging
// from link occupancy. Used for latency-sensitive studies and for
// driving app phases through the kernel.
//
// The hot path is allocation-free in steady state: per-message hop state
// lives in a transport-owned pool, routes fill a reused buffer, and every
// continuation goes through the kernel's closure-free AtCall path.
type Transport struct {
	K *sim.Kernel
	F *fabric.Fabric
	// links[i] serialises messages crossing fabric link i (lazily
	// created; the fabric's link set is fixed, so a flat slice replaces
	// the old map lookup on every hop).
	links []*sim.Resource
	// Rng picks among parallel routes.
	Rng *rand.Rand

	// Delivered counts completed messages.
	Delivered int
	// BytesMoved sums delivered payload.
	BytesMoved units.Bytes

	// pool recycles message hop state; the simulator is single-threaded,
	// so a plain LIFO stack beats sync.Pool.
	pool []*message
}

// message is the pooled per-message hop state: one instance carries a
// message across all its hops and is recycled at delivery.
type message struct {
	t     *Transport
	path  []int // reused backing; filled by AppendMinimalPath
	i     int   // next hop index
	b     units.Bytes
	start units.Seconds
	ser   units.Seconds // serialisation time of the link being acquired
	res   *sim.Resource // resource of the link being acquired
	done  func(units.Seconds)
}

// NewTransport builds a transport on kernel k over fabric f.
func NewTransport(k *sim.Kernel, f *fabric.Fabric) *Transport {
	return &Transport{
		K:     k,
		F:     f,
		links: make([]*sim.Resource, len(f.Links)),
		Rng:   k.Stream("transport"),
	}
}

func (t *Transport) resource(link int) *sim.Resource {
	r := t.links[link]
	if r == nil {
		r = sim.NewResource(t.K, fmt.Sprintf("link-%d", link), 1)
		t.links[link] = r
	}
	return r
}

// WarmLinks eagerly creates the serialisation resource for every fabric
// link. Resources are otherwise created lazily on first traversal, which
// is fine for most runs but shows up as allocations mid-measurement in
// steady-state benchmarks and long soak simulations; warming moves that
// cost to setup.
func (t *Transport) WarmLinks() {
	for id := range t.links {
		t.resource(id)
	}
}

func (t *Transport) getMessage() *message {
	if n := len(t.pool); n > 0 {
		m := t.pool[n-1]
		t.pool = t.pool[:n-1]
		return m
	}
	return &message{t: t}
}

func (t *Transport) putMessage(m *message) {
	m.done = nil
	m.res = nil
	t.pool = append(t.pool, m)
}

// Send schedules a message of b bytes from endpoint src to dst over the
// minimal route, cut-through: the message holds each link for its
// serialisation time, pipelining across hops with the per-switch latency
// between them. done (optional) runs at delivery with the end-to-end
// time.
func (t *Transport) Send(src, dst int, b units.Bytes, done func(units.Seconds)) error {
	m := t.getMessage()
	path, err := t.F.AppendMinimalPath(m.path[:0], src, dst, t.Rng)
	if err != nil {
		t.putMessage(m)
		return err
	}
	m.path = path
	m.i = 0
	m.b = b
	m.start = t.K.Now()
	m.done = done
	// NIC and software overhead on the way in; the symmetric cost on
	// the way out is added at delivery.
	t.K.AfterCall(t.F.Cfg.EndpointLatency, msgHop, m)
	return nil
}

// msgHop acquires the next link; once granted (msgGranted) the link is
// held for the serialisation time while the head moves on. Cut-through
// forwarding: the head of the message proceeds after the switch latency,
// but the link stays busy for the full serialisation, which is what
// creates backpressure under load.
func msgHop(arg any) {
	m := arg.(*message)
	t := m.t
	if m.i == len(m.path) {
		t.K.AfterCall(t.F.Cfg.EndpointLatency, msgDeliver, m)
		return
	}
	id := m.path[m.i]
	m.ser = units.Seconds(float64(m.b) / t.F.Links[id].Cap)
	m.res = t.resource(id)
	m.res.AcquireCall(1, msgGranted, m)
}

func msgGranted(arg any) {
	m := arg.(*message)
	k := m.t.K
	// The link is busy for the serialisation time... (the resource
	// pointer rides along as the event arg: by the time this fires the
	// message may be several hops ahead).
	k.AfterCall(m.ser, msgReleaseLink, m.res)
	// ...while the head proceeds after the switch traversal.
	m.i++
	k.AfterCall(m.t.F.Cfg.SwitchLatency, msgHop, m)
}

func msgReleaseLink(arg any) { arg.(*sim.Resource).Release(1) }

func msgDeliver(arg any) {
	m := arg.(*message)
	t := m.t
	t.Delivered++
	t.BytesMoved += m.b
	done, elapsed := m.done, t.K.Now()-m.start
	t.putMessage(m) // recycle before the callback: done may Send again
	if done != nil {
		done(elapsed)
	}
}

// Ping measures one isolated round trip between two endpoints, the
// event-driven analogue of the latency model's zero-load term. It runs
// the kernel to completion.
func (t *Transport) Ping(a, b int, payload units.Bytes) (units.Seconds, error) {
	start := t.K.Now()
	var rtt units.Seconds
	sendErr := t.Send(a, b, payload, func(units.Seconds) {
		if err := t.Send(b, a, payload, func(units.Seconds) {
			rtt = t.K.Now() - start
		}); err != nil {
			rtt = 0
		}
	})
	if sendErr != nil {
		return 0, sendErr
	}
	t.K.Run()
	if rtt == 0 {
		return 0, fmt.Errorf("network: ping return path failed")
	}
	return rtt, nil
}
