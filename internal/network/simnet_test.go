package network

import (
	"math"
	"testing"

	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

func newTransport(t *testing.T) (*sim.Kernel, *Transport) {
	t.Helper()
	k := sim.NewKernel(5)
	return k, NewTransport(k, smallFabric(t))
}

func TestTransportDelivers(t *testing.T) {
	k, tr := newTransport(t)
	var got units.Seconds
	if err := tr.Send(0, 40, 64*units.KiB, func(d units.Seconds) { got = d }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if tr.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", tr.Delivered)
	}
	if tr.BytesMoved != 64*units.KiB {
		t.Errorf("bytes = %v", tr.BytesMoved)
	}
	// 64 KiB: endpoint overheads + a few switch hops + serialisation
	// on the slowest (endpoint) link: a handful of microseconds.
	if got < 2*units.Microsecond || got > 20*units.Microsecond {
		t.Errorf("delivery time = %v, want a few us", got)
	}
}

func TestTransportZeroLoadLatencyMatchesModel(t *testing.T) {
	k, tr := newTransport(t)
	_ = k
	rtt, err := tr.Ping(0, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	// An 8-byte ping: RTT should be ~2x the one-way zero-load latency
	// of the analytic model (2.1-2.6 us one way on the scaled config).
	oneWay := float64(rtt) / 2
	if oneWay < 1e-6 || oneWay > 4e-6 {
		t.Errorf("one-way = %v s, want ~2us", oneWay)
	}
}

func TestTransportContentionQueues(t *testing.T) {
	k, tr := newTransport(t)
	// Many large messages into the same destination endpoint: the
	// ejection link serialises them, so delivery times spread out.
	const n = 8
	const size = 10 * units.MiB
	var times []units.Seconds
	for i := 0; i < n; i++ {
		src := i * 4 // distinct source switches
		if err := tr.Send(src, 40, size, func(d units.Seconds) { times = append(times, d) }); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if len(times) != n {
		t.Fatalf("delivered = %d, want %d", len(times), n)
	}
	ser := float64(size) / (25e9 * 0.7) // ejection link serialisation
	first, last := float64(times[0]), float64(times[0])
	for _, d := range times {
		if float64(d) < first {
			first = float64(d)
		}
		if float64(d) > last {
			last = float64(d)
		}
	}
	if last < float64(n-1)*ser {
		t.Errorf("last delivery %.3gs should queue behind %d serialisations (%.3gs each)", last, n-1, ser)
	}
	if first > 2*ser {
		t.Errorf("first delivery %.3gs should not queue", first)
	}
}

func TestTransportDisjointPathsParallel(t *testing.T) {
	k, tr := newTransport(t)
	var a, b units.Seconds
	// Disjoint endpoints and groups: fully parallel.
	tr.Send(0, 40, units.MiB, func(d units.Seconds) { a = d })
	tr.Send(65, 100, units.MiB, func(d units.Seconds) { b = d })
	k.Run()
	if math.Abs(float64(a-b)) > 2e-6 {
		t.Errorf("disjoint transfers should take similar time: %v vs %v", a, b)
	}
}

func TestTransportSendErrors(t *testing.T) {
	_, tr := newTransport(t)
	if err := tr.Send(0, 0, units.KiB, nil); err == nil {
		t.Error("self-send should error")
	}
	tr.F.FailSwitch(tr.F.EndpointSwitch(0))
	if err := tr.Send(0, 40, units.KiB, nil); err == nil {
		t.Error("send from failed switch should error")
	}
}

func TestPingFailureSurfaces(t *testing.T) {
	k, tr := newTransport(t)
	_ = k
	if _, err := tr.Ping(0, 0, 8); err == nil {
		t.Error("self ping should error")
	}
}
