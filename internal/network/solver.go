package network

import (
	"fmt"
	"math"
	"sync"

	"frontiersim/internal/fabric"
)

// Solver is a reusable water-filling solver arena. A zero-value Solver is
// ready to use; each call to Solve grows the internal buffers as needed
// and subsequent calls reuse them, so repeated solves within one
// experiment are allocation-free in steady state — and even a cold solve
// costs only a dozen slice allocations, because all per-link and
// per-subflow adjacency lives in flat CSR arrays rather than per-element
// slices. A Solver is not safe for concurrent use; the package-level
// Solve wrapper draws Solvers from a pool and is.
//
// The arena replaces the per-call map from fabric link id to local index
// with an epoch-stamped dense slice: fabric link ids are dense ints, so a
// versioned slice gives O(1) lookup with no clearing between solves — a
// slot is valid only when its stamp matches the current solve's epoch.
//
// A Solver also remembers the problem it last built (fabric, demand set,
// CSR adjacency, degree snapshot), which is what SolveDelta warm-starts
// from after fabric link-state changes.
type Solver struct {
	// idx[lid] is the arena index of fabric link lid, valid iff
	// stamp[lid] == epoch. Neither slice is cleared between solves.
	idx   []int32
	stamp []uint32
	epoch uint32

	// Per-link state, indexed by arena link index. Demand-cap
	// pseudo-links live in the same space as real fabric links.
	linkCap    []float64
	linkUsed   []float64
	linkCount  []int32 // unfrozen subflows crossing the link
	linkCount0 []int32 // degree snapshot taken at build time, for re-fills
	linkStart  []int32 // CSR offsets into linkSubs (len nlinks+1)
	linkSubs   []int32 // subflow indices, grouped by link
	cursor     []int32 // scratch fill cursor for the CSR pass

	// Per-subflow state, indexed by subflow index.
	subDemand []int32
	subPath   []int32
	subPseudo []int32 // arena index of the cap pseudo-link, or -1
	subStart  []int32 // CSR offsets into subLinks (len nsubs+1)
	subLinks  []int32 // arena link indices, grouped by subflow
	frozen    []bool

	heap []boundEntry

	// Warm-start tracking for SolveDelta: the fabric and demand set the
	// CSR currently encodes, and the fabric state epoch it was built
	// against. built is false until a solve succeeds end to end.
	built       bool
	lastFabric  *fabric.Fabric
	lastEpoch   uint64
	lastDemands []*Demand
}

// NewSolver returns an empty solver arena.
func NewSolver() *Solver { return &Solver{} }

// solverPool backs the package-level Solve wrapper so concurrent callers
// each get a private arena and steady-state calls stay allocation-free.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}

// reset prepares the arena for a solve over a fabric with numLinks links.
func (s *Solver) reset(numLinks int) {
	if len(s.stamp) < numLinks {
		s.stamp = make([]uint32, numLinks)
		s.idx = make([]int32, numLinks)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // stamp wrap: invalidate every slot once per 2^32 solves
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.linkCap = s.linkCap[:0]
	s.linkCount = s.linkCount[:0]
	s.subDemand = s.subDemand[:0]
	s.subPath = s.subPath[:0]
	s.subPseudo = s.subPseudo[:0]
	s.subLinks = s.subLinks[:0]
	s.subStart = s.subStart[:0]
	s.heap = s.heap[:0]
}

// grow returns buf resized to n, reusing its backing array when possible.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

func growF64(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// zeroDemandRates clears every demand's allocation so error paths never
// leave the set half-written: before the fix a mid-solve error (say a
// demand routed over a down link) left demands before the failure point
// zeroed and demands after it still carrying the previous solve's rates.
func zeroDemandRates(demands []*Demand) {
	for _, d := range demands {
		d.Rate = 0
		for i := range d.SubRates {
			d.SubRates[i] = 0
		}
	}
}

// Solve computes the max-min fair allocation for the demands on fabric f.
// Results are byte-identical to the pre-arena package-level Solve: the
// CSR arena changes where scratch state lives, not the order of any
// floating-point operation (TestSolverMatchesReference pins this against
// a verbatim copy of the original implementation).
//
// On error every demand is left with Rate 0 and all SubRates zeroed.
func (s *Solver) Solve(f *fabric.Fabric, demands []*Demand) error {
	s.built = false
	s.reset(len(f.Links))
	if err := s.build(f, demands); err != nil {
		zeroDemandRates(demands)
		return err
	}
	if err := s.fill(demands); err != nil {
		zeroDemandRates(demands)
		return err
	}
	s.built = true
	s.lastFabric = f
	s.lastEpoch = f.StateEpoch()
	s.lastDemands = append(s.lastDemands[:0], demands...)
	return nil
}

// SolveDelta re-solves the demand set most recently solved on this
// Solver, reusing the built CSR adjacency instead of rebuilding it.
// changed lists the fabric link ids whose state may have changed since
// that solve; nil means "ask the fabric", via the change journal that
// f.ChangedSince keeps between state epochs.
//
// Three outcomes, all byte-identical to a cold Solve on the current
// fabric state:
//
//   - No changed link is part of the problem: the previous solution is
//     still exact, the demands already hold it verbatim, and SolveDelta
//     returns without touching the heap at all.
//   - A changed problem link is up: its capacity is refreshed and the
//     water-filling fill pass re-runs over the preserved CSR arrays.
//     The fill performs the same floating-point operations in the same
//     order as a cold solve of the identical problem, so the result is
//     bit-for-bit what Solve would produce.
//   - A changed problem link is down: the demand set no longer routes,
//     and SolveDelta falls back to a cold Solve to surface the canonical
//     "routed over down link" error (zeroing all demands).
//
// The caller must not have mutated the demands' Src/Dst/Cap/Paths since
// the previous solve; SolveDelta falls back to a cold Solve whenever the
// fabric or demand identity doesn't match what was built.
func (s *Solver) SolveDelta(f *fabric.Fabric, demands []*Demand, changed []int) error {
	if !s.built || s.lastFabric != f || !sameDemands(s.lastDemands, demands) {
		return s.Solve(f, demands)
	}
	if changed == nil {
		links, ok := f.ChangedSince(s.lastEpoch)
		if !ok {
			// Journal overflowed since the build; no cheap answer to
			// "what changed", so rebuild from scratch.
			return s.Solve(f, demands)
		}
		changed = links
	}
	dirty := false
	for _, lid := range changed {
		if lid < 0 || lid >= len(s.stamp) || s.stamp[lid] != s.epoch {
			continue // link carries no subflow of this problem
		}
		if !f.Links[lid].Up {
			return s.Solve(f, demands)
		}
		// Conservative: a problem link that bounced (failed and was
		// restored) is treated as dirty even though its capacity is
		// unchanged today — the re-fill is bit-identical either way, and
		// future cap-mutating fabric events stay correct for free.
		s.linkCap[s.idx[lid]] = f.Links[lid].Cap
		dirty = true
	}
	s.lastEpoch = f.StateEpoch()
	if !dirty {
		return nil
	}
	if err := s.fill(demands); err != nil {
		s.built = false
		zeroDemandRates(demands)
		return err
	}
	return nil
}

// sameDemands reports whether the two demand sets are the identical
// sequence of Demand objects.
func sameDemands(a, b []*Demand) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// build runs the two construction passes: validate demands, assign arena
// link indices in first-encounter order (pseudo-links interleave after
// each capped path, exactly as the original append order did), count
// per-link degrees, and fill the link→subflow / subflow→link CSR arrays.
// On success linkCount0 snapshots the degrees so fill can re-run without
// rebuilding.
func (s *Solver) build(f *fabric.Fabric, demands []*Demand) error {
	for di, d := range demands {
		if len(d.Paths) == 0 {
			return fmt.Errorf("network: demand %d (%d->%d) has no paths", di, d.Src, d.Dst)
		}
		if cap(d.SubRates) >= len(d.Paths) {
			d.SubRates = d.SubRates[:len(d.Paths)]
		} else {
			d.SubRates = make([]float64, len(d.Paths))
		}
		for pi, p := range d.Paths {
			for _, lid := range p {
				if s.stamp[lid] != s.epoch {
					fl := f.Links[lid]
					if !fl.Up {
						return fmt.Errorf("network: demand %d routed over down link %d", di, lid)
					}
					s.idx[lid] = int32(len(s.linkCap))
					s.stamp[lid] = s.epoch
					s.linkCap = append(s.linkCap, fl.Cap)
					s.linkCount = append(s.linkCount, 0)
				}
				s.linkCount[s.idx[lid]]++
			}
			pseudo := int32(-1)
			if d.Cap > 0 {
				// Pseudo-link private to this subflow, enforcing the
				// demand cap split evenly across its paths.
				pseudo = int32(len(s.linkCap))
				s.linkCap = append(s.linkCap, d.Cap/float64(len(d.Paths)))
				s.linkCount = append(s.linkCount, 1)
			}
			s.subDemand = append(s.subDemand, int32(di))
			s.subPath = append(s.subPath, int32(pi))
			s.subPseudo = append(s.subPseudo, pseudo)
		}
	}
	nlinks := len(s.linkCap)
	nsubs := len(s.subDemand)

	// Prefix sums over the degrees give the CSR offsets; the fill pass
	// revisits the demands in the same order, so every link's subflow
	// list ends up in exactly the order the original built by appends.
	s.linkStart = growI32(s.linkStart, nlinks+1)
	s.cursor = growI32(s.cursor, nlinks)
	total := int32(0)
	for li := 0; li < nlinks; li++ {
		s.linkStart[li] = total
		s.cursor[li] = total
		total += s.linkCount[li]
	}
	s.linkStart[nlinks] = total
	s.linkSubs = growI32(s.linkSubs, int(total))
	s.subStart = growI32(s.subStart, nsubs+1)

	si := int32(0)
	for _, d := range demands {
		for _, p := range d.Paths {
			s.subStart[si] = int32(len(s.subLinks))
			for _, lid := range p {
				li := s.idx[lid]
				s.linkSubs[s.cursor[li]] = si
				s.cursor[li]++
				s.subLinks = append(s.subLinks, li)
			}
			if pseudo := s.subPseudo[si]; pseudo >= 0 {
				s.linkSubs[s.cursor[pseudo]] = si
				s.cursor[pseudo]++
				s.subLinks = append(s.subLinks, pseudo)
			}
			si++
		}
	}
	s.subStart[nsubs] = int32(len(s.subLinks))

	s.linkCount0 = growI32(s.linkCount0, nlinks)
	copy(s.linkCount0, s.linkCount)
	return nil
}

// fill runs the water-filling freeze loop over the built CSR arrays:
// restore per-link degrees from the build-time snapshot, zero usage and
// every demand's rates, then repeatedly freeze the subflows crossing the
// tightest bottleneck. Both Solve and SolveDelta funnel through here, so
// a re-fill after a delta performs exactly the floating-point operation
// sequence a cold solve of the same problem would.
func (s *Solver) fill(demands []*Demand) error {
	nlinks := len(s.linkCap)
	nsubs := len(s.subDemand)

	s.linkCount = growI32(s.linkCount, nlinks)
	copy(s.linkCount, s.linkCount0[:nlinks])
	s.linkUsed = growF64(s.linkUsed, nlinks)
	for li := range s.linkUsed {
		s.linkUsed[li] = 0
	}
	for _, d := range demands {
		d.Rate = 0
		for i := range d.SubRates {
			d.SubRates[i] = 0
		}
	}

	// Lazy heap of (bound, link): bounds only grow as flows freeze, so a
	// stale entry is re-pushed with its recomputed bound.
	bound := func(li int32) float64 {
		if s.linkCount[li] == 0 {
			return math.Inf(1)
		}
		b := (s.linkCap[li] - s.linkUsed[li]) / float64(s.linkCount[li])
		if b < 0 {
			b = 0
		}
		return b
	}
	s.heap = s.heap[:0]
	for li := 0; li < nlinks; li++ {
		s.heapPush(boundEntry{bound(int32(li)), int32(li)})
	}

	if cap(s.frozen) >= nsubs {
		s.frozen = s.frozen[:nsubs]
		for i := range s.frozen {
			s.frozen[i] = false
		}
	} else {
		s.frozen = make([]bool, nsubs)
	}
	remaining := nsubs
	for remaining > 0 && len(s.heap) > 0 {
		e := s.heapPop()
		cur := bound(e.link)
		if s.linkCount[e.link] == 0 {
			continue
		}
		if cur > e.bound+1e-15 {
			s.heapPush(boundEntry{cur, e.link})
			continue
		}
		level := cur
		// Freeze every unfrozen subflow crossing the bottleneck.
		for _, fsi := range s.linkSubs[s.linkStart[e.link]:s.linkStart[e.link+1]] {
			if s.frozen[fsi] {
				continue
			}
			s.frozen[fsi] = true
			remaining--
			d := demands[s.subDemand[fsi]]
			d.SubRates[s.subPath[fsi]] = level
			d.Rate += level
			for _, li := range s.subLinks[s.subStart[fsi]:s.subStart[fsi+1]] {
				s.linkUsed[li] += level
				s.linkCount[li]--
			}
		}
		// Neighbouring links got new bounds; lazy revalidation handles
		// them when popped, but the bottleneck itself is done.
	}
	if remaining > 0 {
		return fmt.Errorf("network: solver left %d subflows unallocated", remaining)
	}
	return nil
}

type boundEntry struct {
	bound float64
	link  int32
}

// heapPush and heapPop are container/heap's push/pop specialised to
// []boundEntry: the sift loops are verbatim ports of heap.up/heap.down,
// so pop order — including ties — matches the pre-arena solver exactly,
// without boxing every entry through an interface.
func (s *Solver) heapPush(e boundEntry) {
	s.heap = append(s.heap, e)
	h := s.heap
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if h[j].bound >= h[i].bound {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (s *Solver) heapPop() boundEntry {
	h := s.heap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift the new root down over h[:n].
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].bound < h[j1].bound {
			j = j2
		}
		if h[j].bound >= h[i].bound {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e := h[n]
	s.heap = h[:n]
	return e
}
