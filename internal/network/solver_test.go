package network

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"frontiersim/internal/fabric"
)

// referenceSolve is the pre-arena solver (per-call map link index,
// container/heap, fresh slices per call), kept verbatim as an oracle: the
// arena solver must match it float-for-float on any input.
func referenceSolve(f *fabric.Fabric, demands []*Demand) error {
	type link struct {
		cap   float64
		used  float64
		count int
		subs  []int32
	}
	var links []link
	linkIdx := make(map[int]int32)

	type subflow struct {
		demand int32
		path   int32
		links  []int32
	}
	var subs []subflow

	for di, d := range demands {
		if len(d.Paths) == 0 {
			return fmt.Errorf("network: demand %d (%d->%d) has no paths", di, d.Src, d.Dst)
		}
		d.SubRates = make([]float64, len(d.Paths))
		d.Rate = 0
		for pi, p := range d.Paths {
			si := int32(len(subs))
			sf := subflow{demand: int32(di), path: int32(pi)}
			for _, lid := range p {
				li, ok := linkIdx[lid]
				if !ok {
					li = int32(len(links))
					linkIdx[lid] = li
					fl := f.Links[lid]
					if !fl.Up {
						return fmt.Errorf("network: demand %d routed over down link %d", di, lid)
					}
					links = append(links, link{cap: fl.Cap})
				}
				links[li].count++
				links[li].subs = append(links[li].subs, si)
				sf.links = append(sf.links, li)
			}
			if d.Cap > 0 {
				li := int32(len(links))
				links = append(links, link{cap: d.Cap / float64(len(d.Paths)), count: 1, subs: []int32{si}})
				sf.links = append(sf.links, li)
			}
			subs = append(subs, sf)
		}
	}

	h := &refBoundHeap{}
	bound := func(li int32) float64 {
		l := &links[li]
		if l.count == 0 {
			return math.Inf(1)
		}
		b := (l.cap - l.used) / float64(l.count)
		if b < 0 {
			b = 0
		}
		return b
	}
	for li := range links {
		heap.Push(h, boundEntry{bound(int32(li)), int32(li)})
	}

	frozen := make([]bool, len(subs))
	remaining := len(subs)
	for remaining > 0 && h.Len() > 0 {
		e := heap.Pop(h).(boundEntry)
		cur := bound(e.link)
		if links[e.link].count == 0 {
			continue
		}
		if cur > e.bound+1e-15 {
			heap.Push(h, boundEntry{cur, e.link})
			continue
		}
		level := cur
		for _, si := range links[e.link].subs {
			if frozen[si] {
				continue
			}
			frozen[si] = true
			remaining--
			d := demands[subs[si].demand]
			d.SubRates[subs[si].path] = level
			d.Rate += level
			for _, li := range subs[si].links {
				links[li].used += level
				links[li].count--
			}
		}
	}
	if remaining > 0 {
		return fmt.Errorf("network: solver left %d subflows unallocated", remaining)
	}
	return nil
}

type refBoundHeap []boundEntry

func (h refBoundHeap) Len() int           { return len(h) }
func (h refBoundHeap) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h refBoundHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refBoundHeap) Push(x any)        { *h = append(*h, x.(boundEntry)) }
func (h *refBoundHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func cloneDemands(demands []*Demand) []*Demand {
	out := make([]*Demand, len(demands))
	for i, d := range demands {
		c := *d
		c.SubRates = nil
		out[i] = &c
	}
	return out
}

// The arena solver must be bit-identical to the pre-arena implementation
// on randomised demand sets, including repeated solves reusing one arena
// and delta solves layered on top: a clean SolveDelta must keep the
// reference answer verbatim, and a dirty one (an in-problem link
// bounced down and up) must refill to the same bits. Full random
// fail/restore sequences are covered by
// TestSolverMatchesReferenceDeltaSequences.
func TestSolverMatchesReference(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(42))
	s := NewSolver()
	for trial := 0; trial < 25; trial++ {
		var demands []*Demand
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			src := rng.Intn(f.NumEndpoints)
			dst := rng.Intn(f.NumEndpoints)
			if src == dst {
				continue
			}
			d := demand(t, f, src, dst, rng.Intn(4), rng)
			if rng.Intn(3) == 0 {
				d.Cap = float64(1+rng.Intn(30)) * 1e9
			}
			demands = append(demands, d)
		}
		if len(demands) == 0 {
			continue
		}
		ref := cloneDemands(demands)
		if err := referenceSolve(f, ref); err != nil {
			t.Fatal(err)
		}
		if err := s.Solve(f, demands); err != nil {
			t.Fatal(err)
		}
		compare := func(stage string) {
			t.Helper()
			for i := range demands {
				if demands[i].Rate != ref[i].Rate {
					t.Fatalf("trial %d %s demand %d: arena rate %v != reference %v", trial, stage, i, demands[i].Rate, ref[i].Rate)
				}
				for pi := range demands[i].SubRates {
					if demands[i].SubRates[pi] != ref[i].SubRates[pi] {
						t.Fatalf("trial %d %s demand %d path %d: arena %v != reference %v",
							trial, stage, i, pi, demands[i].SubRates[pi], ref[i].SubRates[pi])
					}
				}
			}
		}
		compare("cold")
		// Clean delta: nothing changed, the previous answer stands.
		if err := s.SolveDelta(f, demands, nil); err != nil {
			t.Fatal(err)
		}
		compare("clean delta")
		// Dirty delta: bounce an in-problem link down and up. The link's
		// state is back to what the reference solved against, so the
		// refill must land on the same bits.
		lid := demands[0].Paths[0][0]
		f.FailLink(lid)
		f.RestoreLink(lid)
		if err := s.SolveDelta(f, demands, nil); err != nil {
			t.Fatal(err)
		}
		compare("dirty delta")
	}
}

// A dedicated Solver re-solving the same demand set allocates nothing in
// steady state: the arena, the heap, and the demands' SubRates are all
// reused.
func TestSolverSteadyStateAllocationFree(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(43))
	var demands []*Demand
	for i := 0; i < 24; i++ {
		demands = append(demands, demand(t, f, rng.Intn(96), 96+rng.Intn(96), 3, rng))
	}
	s := NewSolver()
	if err := s.Solve(f, demands); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := s.Solve(f, demands); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state solve allocates %.1f objects/op, want 0", allocs)
	}
}

// subRatesSum asserts the max-min invariant that SubRates sum to Rate.
func subRatesSum(t *testing.T, d *Demand) {
	t.Helper()
	var sum float64
	for _, r := range d.SubRates {
		sum += r
	}
	if math.Abs(sum-d.Rate) > 1e-6*math.Max(1, d.Rate) {
		t.Errorf("SubRates sum %.6g != Rate %.6g for %d->%d", sum, d.Rate, d.Src, d.Dst)
	}
}

// Cap smaller than the fair share: the pseudo-link binds first and the
// demand gets exactly its cap.
func TestSolveCapBelowFairShare(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(44))
	capped := demand(t, f, 0, 9, 0, rng)
	capped.Cap = 1e8 // far below the ~17.5e9 endpoint share
	other := demand(t, f, 1, 9, 0, rng)
	if err := Solve(f, []*Demand{capped, other}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(capped.Rate-1e8) > 1 {
		t.Errorf("capped rate = %.6g, want its cap 1e8", capped.Rate)
	}
	ej := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency
	if math.Abs(other.Rate-(ej-1e8)) > 1 {
		t.Errorf("uncapped rate = %.6g, want remainder %.6g", other.Rate, ej-1e8)
	}
	subRatesSum(t, capped)
	subRatesSum(t, other)
}

// Cap exactly equal to the path's capacity: cap pseudo-link and real
// bottleneck bind at the same level; the demand saturates both.
func TestSolveCapEqualToPathCapacity(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(45))
	d := demand(t, f, 0, 1, 0, rng)
	ej := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency
	d.Cap = ej
	if err := Solve(f, []*Demand{d}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Rate-ej)/ej > 1e-9 {
		t.Errorf("rate = %.6g, want path capacity %.6g", d.Rate, ej)
	}
	subRatesSum(t, d)
}

// A single-path capped demand: one subflow, one pseudo-link carrying the
// whole cap.
func TestSolveSinglePathCappedDemand(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(46))
	d := demand(t, f, 0, 9, 0, rng)
	if len(d.Paths) != 1 {
		t.Fatalf("want a single minimal path, got %d", len(d.Paths))
	}
	d.Cap = 3e9
	if err := Solve(f, []*Demand{d}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Rate-3e9) > 1 {
		t.Errorf("rate = %.6g, want cap 3e9", d.Rate)
	}
	if len(d.SubRates) != 1 || math.Abs(d.SubRates[0]-d.Rate) > 1e-6 {
		t.Errorf("single subflow should carry the whole rate: %v", d.SubRates)
	}
	subRatesSum(t, d)
}

// A demand whose paths share every link (duplicated path set): the shared
// links see both subflows and split the capacity between them, so the
// demand total equals the link capacity regardless of the duplication.
func TestSolveDuplicatePathsShareEveryLink(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(47))
	d := demand(t, f, 0, 9, 0, rng)
	d.Paths = [][]int{d.Paths[0], append([]int(nil), d.Paths[0]...)}
	if err := Solve(f, []*Demand{d}); err != nil {
		t.Fatal(err)
	}
	ej := float64(f.Cfg.LinkRate) * f.Cfg.EndpointEfficiency
	if math.Abs(d.Rate-ej)/ej > 1e-9 {
		t.Errorf("rate = %.6g, want full link capacity %.6g split over clones", d.Rate, ej)
	}
	if math.Abs(d.SubRates[0]-d.SubRates[1]) > 1e-6 {
		t.Errorf("clone subflows should split evenly: %v", d.SubRates)
	}
	subRatesSum(t, d)
}

// LinkLoad regression: pin exact utilisation values on a tiny fabric.
func TestLinkLoadPinnedValues(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(48))
	// Two same-switch demands into one destination endpoint: inject links
	// at half load each, the shared ejection link exactly full.
	d1 := demand(t, f, 0, 2, 0, rng)
	d2 := demand(t, f, 1, 2, 0, rng)
	if err := Solve(f, []*Demand{d1, d2}); err != nil {
		t.Fatal(err)
	}
	load := LinkLoad(f, []*Demand{d1, d2})
	wantLinks := map[int]float64{
		d1.Paths[0][0]: 0.5, // inject 0
		d2.Paths[0][0]: 0.5, // inject 1
		d1.Paths[0][1]: 1.0, // shared ejection into endpoint 2
	}
	if len(load) != len(wantLinks) {
		t.Fatalf("LinkLoad covers %d links, want %d: %v", len(load), len(wantLinks), load)
	}
	for lid, want := range wantLinks {
		got, ok := load[lid]
		if !ok {
			t.Fatalf("link %d missing from LinkLoad", lid)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("link %d load = %.9f, want %.9f", lid, got, want)
		}
	}
}

// LinkLoad must agree with a plain map-based accumulation on random
// solved demand sets (it now accumulates in a dense scratch slice).
func TestLinkLoadMatchesMapAccumulation(t *testing.T) {
	f := smallFabric(t)
	rng := rand.New(rand.NewSource(49))
	var demands []*Demand
	for i := 0; i < 30; i++ {
		src := rng.Intn(f.NumEndpoints)
		dst := rng.Intn(f.NumEndpoints)
		if src == dst {
			continue
		}
		demands = append(demands, demand(t, f, src, dst, 2, rng))
	}
	if err := Solve(f, demands); err != nil {
		t.Fatal(err)
	}
	want := make(map[int]float64)
	for _, d := range demands {
		for pi, p := range d.Paths {
			for _, lid := range p {
				want[lid] += d.SubRates[pi]
			}
		}
	}
	for lid := range want {
		want[lid] /= f.Links[lid].Cap
	}
	got := LinkLoad(f, demands)
	if len(got) != len(want) {
		t.Fatalf("LinkLoad covers %d links, want %d", len(got), len(want))
	}
	for lid, w := range want {
		if g := got[lid]; g != w {
			t.Errorf("link %d: got %.12g want %.12g", lid, g, w)
		}
	}
}
