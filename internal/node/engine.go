package node

import (
	"fmt"

	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// Engine executes intra-node transfers on the simulation clock with real
// device contention: each GCD owns a fixed pool of SDMA engines (one
// engine drives one transfer), and each xGMI bond serialises CU copy
// kernels beyond its link count. Applications that overlap many
// peer-to-peer copies — EXAALT's replica exchanges, Cholla's
// halo packing — queue here exactly as they do on hardware.
type Engine struct {
	K    *sim.Kernel
	Node *Node

	// sdma[g] is the SDMA engine pool of GCD g.
	sdma []*sim.Resource
	// bond[edge] serialises concurrent CU-kernel copies per xGMI bond:
	// a bond of L links carries L concurrent kernel copies at full
	// striped rate; further copies queue.
	bond map[[2]int]*sim.Resource

	// Completed counts finished transfers.
	Completed int
}

// NewEngine builds the transfer engine for a node on kernel k.
func NewEngine(k *sim.Kernel, n *Node) *Engine {
	e := &Engine{K: k, Node: n, bond: map[[2]int]*sim.Resource{}}
	for g := range n.GCDs {
		e.sdma = append(e.sdma, sim.NewResource(k, fmt.Sprintf("gcd%d-sdma", g), n.GCDs[g].SDMAEngines))
	}
	for _, l := range n.Links {
		key := edgeKey(l.A, l.B)
		e.bond[key] = sim.NewResource(k, fmt.Sprintf("xgmi-%d-%d", l.A, l.B), l.Links)
	}
	return e
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Transfer schedules an asynchronous peer copy of size bytes from GCD a
// to GCD b; done (optional) runs at completion with the elapsed time
// since submission (queueing included).
func (e *Engine) Transfer(method TransferMethod, a, b int, size units.Bytes, done func(units.Seconds)) error {
	if _, ok := e.Node.LinkBetween(a, b); !ok {
		return fmt.Errorf("node: no direct xGMI link between GCD %d and GCD %d", a, b)
	}
	submitted := e.K.Now()
	switch method {
	case SDMA:
		// One SDMA engine per transfer; the engine cannot stripe, so
		// duration follows the single-engine rate regardless of bond
		// width.
		res := e.sdma[a]
		res.Acquire(1, func() {
			d, err := e.Node.PeerTransferTime(SDMA, a, b, size)
			if err != nil {
				res.Release(1)
				return
			}
			e.K.After(d, func() {
				res.Release(1)
				e.finish(submitted, done)
			})
		})
	case CUKernel:
		// A CU copy kernel occupies the whole bond (it stripes); the
		// bond resource admits one striped copy per link's worth of
		// concurrency, approximated as full-bond exclusive use at the
		// striped rate: concurrent copies time-share, which the FIFO
		// queue reproduces.
		res := e.bond[edgeKey(a, b)]
		res.Acquire(res.Capacity(), func() {
			d, err := e.Node.PeerTransferTime(CUKernel, a, b, size)
			if err != nil {
				res.Release(res.Capacity())
				return
			}
			e.K.After(d, func() {
				res.Release(res.Capacity())
				e.finish(submitted, done)
			})
		})
	default:
		return fmt.Errorf("node: unknown transfer method %v", method)
	}
	return nil
}

func (e *Engine) finish(submitted units.Seconds, done func(units.Seconds)) {
	e.Completed++
	if done != nil {
		done(e.K.Now() - submitted)
	}
}

// SDMAQueueDepth reports queued SDMA requests on a GCD.
func (e *Engine) SDMAQueueDepth(gcd int) int { return e.sdma[gcd].Queued() }

// SDMAUtilization reports time-averaged SDMA engine occupancy of a GCD.
func (e *Engine) SDMAUtilization(gcd int) float64 { return e.sdma[gcd].Utilization() }
