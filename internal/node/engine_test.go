package node

import (
	"math"
	"testing"

	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

func newEngine(t *testing.T) (*sim.Kernel, *Engine) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, NewEngine(k, New(0))
}

func TestSingleSDMATransfer(t *testing.T) {
	k, e := newEngine(t)
	var elapsed units.Seconds
	if err := e.Transfer(SDMA, 0, 1, 500*units.MB, func(d units.Seconds) { elapsed = d }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if e.Completed != 1 {
		t.Fatalf("completed = %d, want 1", e.Completed)
	}
	// 500 MB at ~50 GB/s: ~10 ms.
	if math.Abs(float64(elapsed)-0.01)/0.01 > 0.05 {
		t.Errorf("elapsed = %v, want ~10ms", elapsed)
	}
}

func TestSDMAEngineContention(t *testing.T) {
	k, e := newEngine(t)
	// GCD 0 has 8 SDMA engines; submit 16 transfers: the second batch
	// queues behind the first.
	var times []units.Seconds
	for i := 0; i < 16; i++ {
		if err := e.Transfer(SDMA, 0, 1, 500*units.MB, func(d units.Seconds) { times = append(times, d) }); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if len(times) != 16 {
		t.Fatalf("completed = %d, want 16", len(times))
	}
	fast, slow := 0, 0
	for _, d := range times {
		if float64(d) < 0.011 {
			fast++
		} else if float64(d) > 0.019 {
			slow++
		}
	}
	if fast != 8 || slow != 8 {
		t.Errorf("fast=%d slow=%d, want 8 immediate + 8 queued", fast, slow)
	}
	if u := e.SDMAUtilization(0); u <= 0 {
		t.Error("SDMA utilization should be positive")
	}
}

func TestCUKernelSerializesOnBond(t *testing.T) {
	k, e := newEngine(t)
	var times []units.Seconds
	for i := 0; i < 3; i++ {
		if err := e.Transfer(CUKernel, 0, 1, units.Bytes(1.455*float64(units.GB)), func(d units.Seconds) { times = append(times, d) }); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if len(times) != 3 {
		t.Fatalf("completed = %d, want 3", len(times))
	}
	// Each copy takes ~10 ms at 145.5 GB/s; the bond serialises them.
	if float64(times[0]) > 0.012 {
		t.Errorf("first copy %v, want ~10ms", times[0])
	}
	if float64(times[2]) < 0.028 {
		t.Errorf("third copy %v should wait behind two others (~30ms)", times[2])
	}
}

func TestIndependentBondsRunConcurrently(t *testing.T) {
	k, e := newEngine(t)
	var a, b units.Seconds
	// 0-1 and 2-3 are different OAMs: fully parallel.
	e.Transfer(CUKernel, 0, 1, units.GB, func(d units.Seconds) { a = d })
	e.Transfer(CUKernel, 2, 3, units.GB, func(d units.Seconds) { b = d })
	k.Run()
	if math.Abs(float64(a-b)) > 1e-9 {
		t.Errorf("independent bonds should finish together: %v vs %v", a, b)
	}
}

func TestSDMAvsCUContention(t *testing.T) {
	// SDMA transfers between different GCD pairs from the same source
	// GCD share the 8-engine pool but not wire bandwidth in this model;
	// CU copies on the same bond share the bond.
	k, e := newEngine(t)
	done := 0
	for i := 0; i < 8; i++ {
		e.Transfer(SDMA, 0, 1, 100*units.MB, func(units.Seconds) { done++ })
	}
	// A CU copy on the same bond is unaffected by SDMA engine usage.
	var cu units.Seconds
	e.Transfer(CUKernel, 0, 1, units.GB, func(d units.Seconds) { cu = d })
	k.Run()
	if done != 8 {
		t.Fatalf("SDMA completions = %d", done)
	}
	if float64(cu) > 0.008 {
		t.Errorf("CU copy %v should not queue behind SDMA engines", cu)
	}
}

func TestTransferErrors(t *testing.T) {
	_, e := newEngine(t)
	if err := e.Transfer(SDMA, 0, 4, units.MB, nil); err == nil {
		t.Error("unlinked pair should error")
	}
	if err := e.Transfer(TransferMethod(9), 0, 1, units.MB, nil); err == nil {
		t.Error("unknown method should error")
	}
}

func TestQueueDepthVisible(t *testing.T) {
	k, e := newEngine(t)
	for i := 0; i < 12; i++ {
		e.Transfer(SDMA, 2, 3, units.GB, nil)
	}
	if d := e.SDMAQueueDepth(2); d != 4 {
		t.Errorf("queue depth = %d, want 4 (12 submitted, 8 engines)", d)
	}
	k.Run()
	if d := e.SDMAQueueDepth(2); d != 0 {
		t.Errorf("queue depth after drain = %d", d)
	}
}
