// Package node models the Bard Peak compute node (Cray EX235a, §3.1): one
// Trento CPU, four MI250X OAM packages (eight GCDs), the InfinityFabric
// link graph that joins them in a twisted ladder (Figure 2), and the four
// Slingshot Cassini NICs that hang off the OAM packages rather than the
// CPU — one of the design's chief innovations.
package node

import (
	"fmt"

	"frontiersim/internal/cpu"
	"frontiersim/internal/gpu"
	"frontiersim/internal/units"
)

// LinkClass identifies the kind of InfinityFabric connection.
type LinkClass int

// Link classes within a Bard Peak node.
const (
	// IntraOAM joins the two GCDs in one MI250X package: four xGMI-3
	// links, 200+200 GB/s ("north/south" within the package).
	IntraOAM LinkClass = iota
	// InterOAMNS is a north/south connection between GCDs in two
	// different OAM packages: two xGMI-3 links, 100+100 GB/s.
	InterOAMNS
	// InterOAMEW is an east/west connection: a single xGMI-3 link,
	// 50+50 GB/s.
	InterOAMEW
	// HostLink joins a CCD to its paired GCD: xGMI-2, 36+36 GB/s.
	HostLink
)

// String implements fmt.Stringer.
func (c LinkClass) String() string {
	switch c {
	case IntraOAM:
		return "intra-OAM(4x)"
	case InterOAMNS:
		return "north-south(2x)"
	case InterOAMEW:
		return "east-west(1x)"
	case HostLink:
		return "host-xGMI2"
	}
	return fmt.Sprintf("LinkClass(%d)", int(c))
}

// xGMI link rates (§3.1.3). N+N denotes a bidirectional link; the values
// here are per direction.
const (
	XGMI3LinkRate = 50 * units.GBps // per xGMI-3 link
	XGMI2LinkRate = 36 * units.GBps // CPU↔GCD xGMI-2 connection
)

// GCDLink is an edge in the node's GPU link graph.
type GCDLink struct {
	A, B  int // GCD ids
	Links int // number of xGMI-3 links bonded on this edge
	Class LinkClass
}

// Rate returns the theoretical one-direction bandwidth of the edge.
func (l GCDLink) Rate() units.BytesPerSecond {
	return XGMI3LinkRate * units.BytesPerSecond(l.Links)
}

// Node is one Bard Peak compute node.
type Node struct {
	// ID is the node's index within the machine.
	ID int
	// CPU is the Trento socket.
	CPU *cpu.Trento
	// GCDs are the eight graphics compute dies (OAM i holds GCDs 2i and
	// 2i+1).
	GCDs [8]*gpu.GCD
	// Links is the twisted-ladder link graph between GCDs,
	// reconstructed from Figure 2: each GCD has its OAM partner on four
	// links, one north/south neighbour in another OAM on two links, and
	// one east/west neighbour on a single link.
	Links []GCDLink
	// NICs are the four Cassini NICs; NICs[i] is attached to OAM i
	// (specifically GCD 2i), not to the CPU.
	NICs [4]NIC
}

// NIC is one Slingshot Cassini adapter (§3.1.4): 200 Gb/s HPC Ethernet
// with OS bypass.
type NIC struct {
	// AttachedGCD is the GCD whose fabric port hosts the NIC.
	AttachedGCD int
	// Rate is the line rate per direction (25 GB/s).
	Rate units.BytesPerSecond
}

// New builds a Bard Peak node.
func New(id int) *Node {
	n := &Node{ID: id, CPU: cpu.NewTrento()}
	for i := range n.GCDs {
		n.GCDs[i] = gpu.NewMI250XGCD()
	}
	n.Links = twistedLadder()
	for i := range n.NICs {
		n.NICs[i] = NIC{AttachedGCD: 2 * i, Rate: 25 * units.GBps}
	}
	return n
}

// twistedLadder returns the Figure 2 GCD adjacency. GCD pairs (0,1),
// (2,3), (4,5), (6,7) share an OAM. Across OAMs, the ladder is twisted:
// each GCD reaches one GCD in the adjacent OAM over two links
// (north/south) and one GCD in the opposite OAM over a single link
// (east/west). Every GCD thus uses 4+2+1 = 7 GCD ports plus one host
// port, the MI250X's full complement of eight InfinityFabric ports.
func twistedLadder() []GCDLink {
	// The graph is a Möbius ladder on the ring 0-2-4-6-1-3-5-7 with the
	// OAM pairs as the antipodal rungs; the twist gives the 8-GCD graph
	// diameter 2, so any GCD reaches any other in at most one forward.
	links := []GCDLink{
		// Intra-OAM rungs: 4 links each.
		{A: 0, B: 1, Links: 4, Class: IntraOAM},
		{A: 2, B: 3, Links: 4, Class: IntraOAM},
		{A: 4, B: 5, Links: 4, Class: IntraOAM},
		{A: 6, B: 7, Links: 4, Class: IntraOAM},
		// North/south between OAM pairs: 2 links each.
		{A: 0, B: 2, Links: 2, Class: InterOAMNS},
		{A: 4, B: 6, Links: 2, Class: InterOAMNS},
		{A: 1, B: 3, Links: 2, Class: InterOAMNS},
		{A: 5, B: 7, Links: 2, Class: InterOAMNS},
		// East/west singles closing the twisted ladder.
		{A: 2, B: 4, Links: 1, Class: InterOAMEW},
		{A: 1, B: 6, Links: 1, Class: InterOAMEW},
		{A: 3, B: 5, Links: 1, Class: InterOAMEW},
		{A: 0, B: 7, Links: 1, Class: InterOAMEW},
	}
	return links
}

// LinkBetween returns the direct edge between two GCDs, if any.
func (n *Node) LinkBetween(a, b int) (GCDLink, bool) {
	for _, l := range n.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l, true
		}
	}
	return GCDLink{}, false
}

// Neighbors returns the GCD ids directly linked to gcd.
func (n *Node) Neighbors(gcd int) []int {
	var out []int
	for _, l := range n.Links {
		switch gcd {
		case l.A:
			out = append(out, l.B)
		case l.B:
			out = append(out, l.A)
		}
	}
	return out
}

// PeakFP64 returns the node's aggregate FP64 vector peak: CPU plus eight
// GCDs (~194 TF/s; 9,472 nodes gives the ~2 EF of Table 1).
func (n *Node) PeakFP64() units.Flops {
	f := n.CPU.PeakFlops()
	for _, g := range n.GCDs {
		f += g.VectorPeak[gpu.FP64]
	}
	return f
}

// HBMCapacity returns aggregate node HBM (512 GiB).
func (n *Node) HBMCapacity() units.Bytes {
	var b units.Bytes
	for _, g := range n.GCDs {
		b += g.HBM.Capacity()
	}
	return b
}

// HBMPeak returns aggregate node HBM bandwidth (13.08 TB/s).
func (n *Node) HBMPeak() units.BytesPerSecond {
	var b units.BytesPerSecond
	for _, g := range n.GCDs {
		b += g.HBM.Peak()
	}
	return b
}

// DDRCapacity returns node DDR4 capacity (512 GiB).
func (n *Node) DDRCapacity() units.Bytes { return n.CPU.DRAM.Capacity() }

// HBMToDDRBandwidthRatio returns the paper's headline 64× ratio between
// node HBM bandwidth and CPU DRAM bandwidth — the reason data should live
// in HBM (and the reason NICs attach to the GPUs).
func (n *Node) HBMToDDRBandwidthRatio() float64 {
	return float64(n.HBMPeak()) / float64(n.CPU.DRAM.Peak())
}

// InjectionBandwidth returns the node's aggregate NIC injection rate
// (100 GB/s).
func (n *Node) InjectionBandwidth() units.BytesPerSecond {
	var b units.BytesPerSecond
	for _, nic := range n.NICs {
		b += nic.Rate
	}
	return b
}

// String summarises the node.
func (n *Node) String() string {
	return fmt.Sprintf("Bard Peak node %d: %s; 4x MI250X (8 GCDs), %s HBM @ %s; 4x Cassini @ %s",
		n.ID, n.CPU, n.HBMCapacity().Binary(), n.HBMPeak(), n.NICs[0].Rate)
}
