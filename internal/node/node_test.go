package node

import (
	"math"
	"testing"

	"frontiersim/internal/units"
)

func TestNodeShape(t *testing.T) {
	n := New(0)
	if n.HBMCapacity() != 512*units.GiB {
		t.Errorf("HBM capacity = %v, want 512 GiB", n.HBMCapacity())
	}
	if got := float64(n.HBMPeak()) / 1e12; math.Abs(got-13.08) > 0.01 {
		t.Errorf("HBM peak = %.2f TB/s, want 13.08", got)
	}
	if got := float64(n.PeakFP64()) / 1e12; math.Abs(got-(8*23.95+2.048)) > 0.01 {
		t.Errorf("node FP64 = %.1f TF/s", got)
	}
	if n.InjectionBandwidth() != 100*units.GBps {
		t.Errorf("injection = %v, want 100 GB/s", n.InjectionBandwidth())
	}
	if n.String() == "" {
		t.Error("empty String")
	}
}

// The paper: node HBM bandwidth is 64x the CPU's DDR bandwidth.
func TestHBMToDDRRatio(t *testing.T) {
	r := New(0).HBMToDDRBandwidthRatio()
	if math.Abs(r-64) > 0.5 {
		t.Errorf("HBM:DDR ratio = %.1f, want ~64", r)
	}
}

func TestTwistedLadderStructure(t *testing.T) {
	n := New(0)
	if len(n.Links) != 12 {
		t.Fatalf("links = %d, want 12", len(n.Links))
	}
	counts := map[LinkClass]int{}
	for _, l := range n.Links {
		counts[l.Class]++
	}
	if counts[IntraOAM] != 4 || counts[InterOAMNS] != 4 || counts[InterOAMEW] != 4 {
		t.Errorf("class counts = %v, want 4 of each", counts)
	}
	// Each GCD has exactly 7 xGMI-3 GCD links: 4 + 2 + 1.
	perGCD := make([]int, 8)
	for _, l := range n.Links {
		perGCD[l.A] += l.Links
		perGCD[l.B] += l.Links
	}
	for g, c := range perGCD {
		if c != 7 {
			t.Errorf("GCD %d has %d bonded links, want 7", g, c)
		}
	}
	// Each GCD has exactly 3 neighbors.
	for g := 0; g < 8; g++ {
		if len(n.Neighbors(g)) != 3 {
			t.Errorf("GCD %d neighbors = %v, want 3", g, n.Neighbors(g))
		}
	}
}

func TestLadderConnectedDiameter2(t *testing.T) {
	n := New(0)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if a == b {
				continue
			}
			if _, ok := n.LinkBetween(a, b); ok {
				continue
			}
			if _, hops, err := n.RoutedPeerAsymptote(CUKernel, a, b); err != nil || hops != 2 {
				t.Errorf("GCD %d->%d: hops=%d err=%v, want 2-hop path", a, b, hops, err)
			}
		}
	}
}

func TestIntraOAMRates(t *testing.T) {
	n := New(0)
	l, ok := n.LinkBetween(0, 1)
	if !ok || l.Class != IntraOAM {
		t.Fatal("GCDs 0,1 must share an OAM")
	}
	if l.Rate() != 200*units.GBps {
		t.Errorf("intra-OAM rate = %v, want 200 GB/s", l.Rate())
	}
}

// Figure 5: CU kernel transfers reach 37.5 / 74.9 / 145.5 GB/s for 1-, 2-
// and 4-link pairs; SDMA is capped at ~50 GB/s regardless.
func TestFigure5Asymptotes(t *testing.T) {
	n := New(0)
	cases := []struct {
		a, b   int
		method TransferMethod
		want   float64
		tol    float64
	}{
		{0, 7, CUKernel, 37.5, 0.01},
		{0, 2, CUKernel, 74.9, 0.01},
		{0, 1, CUKernel, 145.5, 0.01},
		{0, 7, SDMA, 50, 0.01},
		{0, 2, SDMA, 50, 0.01},
		{0, 1, SDMA, 50, 0.01},
	}
	for _, c := range cases {
		got, err := n.PeerAsymptote(c.method, c.a, c.b)
		if err != nil {
			t.Fatalf("%v %d->%d: %v", c.method, c.a, c.b, err)
		}
		gbs := float64(got) / 1e9
		if math.Abs(gbs-c.want)/c.want > c.tol {
			t.Errorf("%v %d->%d = %.1f GB/s, want %.1f", c.method, c.a, c.b, gbs, c.want)
		}
	}
}

func TestSDMANeverBeatsCUOnWideLinks(t *testing.T) {
	n := New(0)
	for _, pair := range [][2]int{{0, 1}, {0, 2}} {
		cu, _ := n.PeerAsymptote(CUKernel, pair[0], pair[1])
		sd, _ := n.PeerAsymptote(SDMA, pair[0], pair[1])
		if sd >= cu {
			t.Errorf("pair %v: SDMA %v >= CU %v on multi-link bond", pair, sd, cu)
		}
	}
	// On a single link, SDMA's lower setup cost makes it competitive;
	// its asymptote may exceed the CU kernel's 75% wire efficiency.
	cu, _ := n.PeerAsymptote(CUKernel, 0, 7)
	sd, _ := n.PeerAsymptote(SDMA, 0, 7)
	if float64(sd) < float64(cu) {
		t.Errorf("single link: SDMA %v should be >= CU %v", sd, cu)
	}
}

func TestPeerBandwidthRamp(t *testing.T) {
	n := New(0)
	small, err := n.PeerBandwidth(CUKernel, 0, 1, 64*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	large, err := n.PeerBandwidth(CUKernel, 0, 1, 1*units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if small >= large {
		t.Errorf("ramp broken: small %v >= large %v", small, large)
	}
	asym, _ := n.PeerAsymptote(CUKernel, 0, 1)
	if float64(large) < 0.99*float64(asym) {
		t.Errorf("1 GiB transfer %v should be near asymptote %v", large, asym)
	}
}

func TestPeerTransferTime(t *testing.T) {
	n := New(0)
	d, err := n.PeerTransferTime(SDMA, 0, 1, 500*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.01 // 500 MB at ~50 GB/s
	if math.Abs(float64(d)-want)/want > 0.05 {
		t.Errorf("transfer time = %v, want ~10ms", d)
	}
}

func TestNoDirectLinkError(t *testing.T) {
	n := New(0)
	if _, err := n.PeerAsymptote(CUKernel, 0, 4); err == nil {
		t.Error("GCDs 0 and 4 are not directly linked; want error")
	}
	if _, err := n.PeerBandwidth(CUKernel, 0, 4, units.MiB); err == nil {
		t.Error("want error for unlinked bandwidth query")
	}
	if _, _, err := n.RoutedPeerAsymptote(CUKernel, 3, 3); err == nil {
		t.Error("self transfer should error")
	}
	if _, _, err := n.RoutedPeerAsymptote(CUKernel, -1, 3); err == nil {
		t.Error("out-of-range GCD should error")
	}
}

// Figure 4: single core achieves 25.5 GB/s (~71% of xGMI-2); eight ranks
// aggregate to ~180 GB/s, matching STREAM.
func TestFigure4HostDevice(t *testing.T) {
	n := New(0)
	single := float64(n.SingleCoreHostDeviceBandwidth()) / 1e9
	if math.Abs(single-25.5) > 0.2 {
		t.Errorf("single-core = %.1f GB/s, want 25.5", single)
	}
	agg := float64(n.HostToDeviceAggregate(8)) / 1e9
	if agg < 175 || agg > 182 {
		t.Errorf("8-rank aggregate = %.1f GB/s, want ~179 (STREAM-matched)", agg)
	}
	// With 8 ranks the DRAM is the binding constraint, not the links.
	links := 8 * 25.5
	if agg >= links {
		t.Errorf("aggregate %.1f should be DRAM-capped below %.1f", agg, links)
	}
}

func TestHostToDeviceRamp(t *testing.T) {
	n := New(0)
	prev := units.BytesPerSecond(0)
	for _, s := range []units.Bytes{4 * units.KiB, 64 * units.KiB, units.MiB, 16 * units.MiB, 256 * units.MiB} {
		bw := n.HostToDeviceBandwidth(8, s)
		if bw <= prev {
			t.Errorf("ramp not monotone at %v", s)
		}
		prev = bw
	}
}

func TestHostToDeviceRankBounds(t *testing.T) {
	n := New(0)
	defer func() {
		if recover() == nil {
			t.Error("0 ranks should panic")
		}
	}()
	n.HostToDeviceAggregate(0)
}

func TestNICAttachment(t *testing.T) {
	n := New(0)
	for i, nic := range n.NICs {
		if nic.AttachedGCD != 2*i {
			t.Errorf("NIC %d attached to GCD %d, want %d", i, nic.AttachedGCD, 2*i)
		}
		if nic.Rate != 25*units.GBps {
			t.Errorf("NIC %d rate = %v, want 25 GB/s", i, nic.Rate)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, c := range []LinkClass{IntraOAM, InterOAMNS, InterOAMEW, HostLink, LinkClass(99)} {
		if c.String() == "" {
			t.Errorf("empty string for %d", int(c))
		}
	}
	if CUKernel.String() != "CU-kernel" || SDMA.String() != "SDMA" {
		t.Error("method names wrong")
	}
}
