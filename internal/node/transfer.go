package node

import (
	"fmt"
	"math"

	"frontiersim/internal/units"
)

// TransferMethod selects the engine that moves bytes between GCDs.
type TransferMethod int

// Peer-transfer methods (§4.2.1, Figure 5).
const (
	// CUKernel is a copy kernel running on the GPU's compute units. CU
	// kernels issue loads/stores across all bonded xGMI links, so they
	// stripe and scale with link count.
	CUKernel TransferMethod = iota
	// SDMA uses a System DMA engine. One SDMA engine drives one xGMI
	// link; engines cannot stripe a single transfer across links, so
	// SDMA transfers cap at ~50 GB/s regardless of the bond width.
	SDMA
)

// String implements fmt.Stringer.
func (m TransferMethod) String() string {
	if m == CUKernel {
		return "CU-kernel"
	}
	return "SDMA"
}

// Calibration constants for intra-node transfers, from §4.2.1.
const (
	// cuCopyEfficiency is the fraction of xGMI wire rate a CU copy
	// kernel achieves (37.5 of 50 GB/s on a single link).
	cuCopyEfficiency = 0.75
	// hostXGMIEfficiency is the fraction of the 36 GB/s xGMI-2 host
	// link a single CPU core achieves (25.5 GB/s measured).
	hostXGMIEfficiency = 0.708
	// cuLaunchLatency is the setup cost of a copy kernel.
	cuLaunchLatency = 10 * units.Microsecond
	// sdmaSetupLatency is the descriptor-ring setup cost of an SDMA
	// transfer; lower than a kernel launch.
	sdmaSetupLatency = 4 * units.Microsecond
	// hostCopyLatency is the per-transfer host-side cost (hipMemcpy
	// path) for CPU↔GCD movement.
	hostCopyLatency = 8 * units.Microsecond
)

// PeerAsymptote returns the large-transfer bandwidth between two directly
// linked GCDs for the given method.
func (n *Node) PeerAsymptote(method TransferMethod, a, b int) (units.BytesPerSecond, error) {
	l, ok := n.LinkBetween(a, b)
	if !ok {
		return 0, fmt.Errorf("node: no direct xGMI link between GCD %d and GCD %d", a, b)
	}
	switch method {
	case SDMA:
		// One engine, one link: the bond width does not help.
		return n.GCDs[a].SDMAEngineRate, nil
	case CUKernel:
		bw := units.BytesPerSecond(float64(l.Rate()) * cuCopyEfficiency)
		if limit := n.GCDs[a].FabricPortLimit; bw > limit {
			bw = limit
		}
		return bw, nil
	}
	return 0, fmt.Errorf("node: unknown transfer method %v", method)
}

// PeerBandwidth returns the achieved bandwidth for a transfer of size
// bytes between directly linked GCDs a and b: the asymptote derated by the
// latency ramp (half performance when the transfer takes as long as the
// setup latency).
func (n *Node) PeerBandwidth(method TransferMethod, a, b int, size units.Bytes) (units.BytesPerSecond, error) {
	asym, err := n.PeerAsymptote(method, a, b)
	if err != nil {
		return 0, err
	}
	lat := cuLaunchLatency
	if method == SDMA {
		lat = sdmaSetupLatency
	}
	return ramp(asym, lat, size), nil
}

// PeerTransferTime returns the modelled wall time to move size bytes
// between directly linked GCDs.
func (n *Node) PeerTransferTime(method TransferMethod, a, b int, size units.Bytes) (units.Seconds, error) {
	bw, err := n.PeerBandwidth(method, a, b, size)
	if err != nil {
		return 0, err
	}
	return units.TimeToMove(size, bw), nil
}

// RoutedPeerAsymptote returns the bandwidth between any two GCDs,
// following the widest (maximum-bottleneck) path through the twisted
// ladder when no direct link exists. Software stacks route such transfers
// through an intermediate GCD, paying a store-and-forward efficiency.
func (n *Node) RoutedPeerAsymptote(method TransferMethod, a, b int) (units.BytesPerSecond, int, error) {
	if a == b {
		return 0, 0, fmt.Errorf("node: self transfer GCD %d", a)
	}
	if a < 0 || a >= len(n.GCDs) || b < 0 || b >= len(n.GCDs) {
		return 0, 0, fmt.Errorf("node: GCD out of range: %d, %d", a, b)
	}
	if _, ok := n.LinkBetween(a, b); ok {
		bw, err := n.PeerAsymptote(method, a, b)
		return bw, 1, err
	}
	// Widest-path via a single intermediate hop is always sufficient:
	// the twisted ladder has diameter 2.
	best := units.BytesPerSecond(0)
	hops := 0
	for _, mid := range n.Neighbors(a) {
		if _, ok := n.LinkBetween(mid, b); !ok {
			continue
		}
		bw1, err := n.PeerAsymptote(method, a, mid)
		if err != nil {
			return 0, 0, err
		}
		bw2, err := n.PeerAsymptote(method, mid, b)
		if err != nil {
			return 0, 0, err
		}
		bw := units.BytesPerSecond(math.Min(float64(bw1), float64(bw2)) * 0.5) // forwarded: shared in/out
		if bw > best {
			best = bw
			hops = 2
		}
	}
	if hops == 0 {
		return 0, 0, fmt.Errorf("node: no 2-hop path between GCD %d and %d", a, b)
	}
	return best, hops, nil
}

// HostToDeviceAggregate returns the asymptotic aggregate bandwidth when
// `ranks` MPI ranks concurrently write to their own paired GCDs
// (Figure 4): per-link xGMI-2 limits times the rank count, capped by what
// the DDR4 subsystem can actually source.
func (n *Node) HostToDeviceAggregate(ranks int) units.BytesPerSecond {
	if ranks < 1 || ranks > len(n.CPU.CCDs) {
		panic(fmt.Sprintf("node: ranks must be in [1,%d]", len(n.CPU.CCDs)))
	}
	perLink := float64(XGMI2LinkRate) * hostXGMIEfficiency
	agg := perLink * float64(ranks)
	dram := float64(n.CPU.DRAM.Sustained())
	return units.BytesPerSecond(math.Min(agg, dram))
}

// HostToDeviceBandwidth returns the aggregate achieved bandwidth for a
// given per-rank transfer size, reproducing Figure 4's ramp to ~180 GB/s.
func (n *Node) HostToDeviceBandwidth(ranks int, size units.Bytes) units.BytesPerSecond {
	return ramp(n.HostToDeviceAggregate(ranks), hostCopyLatency, size)
}

// SingleCoreHostDeviceBandwidth is the one-core CPU→GCD (or GCD→CPU) rate:
// 25.5 GB/s, ~71 % of the 36 GB/s xGMI-2 peak.
func (n *Node) SingleCoreHostDeviceBandwidth() units.BytesPerSecond {
	return units.BytesPerSecond(float64(XGMI2LinkRate) * hostXGMIEfficiency)
}

// ramp derates an asymptotic bandwidth for finite transfer sizes: a
// transfer of size s against setup latency t achieves asym·s/(s+asym·t),
// the classic n½ (half-performance length) model.
func ramp(asym units.BytesPerSecond, setup units.Seconds, size units.Bytes) units.BytesPerSecond {
	if size <= 0 {
		return 0
	}
	nHalf := float64(asym) * float64(setup)
	return units.BytesPerSecond(float64(asym) * float64(size) / (float64(size) + nHalf))
}
