package power

import "frontiersim/internal/units"

// Frontier is a test fixture: production code derives the power model
// from internal/machine (which imports this package). The golden test
// in internal/machine pins the derived model to these values.
func Frontier() Machine {
	return Machine{
		Nodes: 9472,
		NodeHPL: NodePower{
			CPU:    240,
			GPUs:   4 * 380,
			Memory: 45,
			NIC:    4 * 25,
			NVMe:   2 * 9,
			Misc:   125,
		},
		NodeIdle: NodePower{
			CPU:    90,
			GPUs:   4 * 90,
			Memory: 25,
			NIC:    4 * 15,
			NVMe:   2 * 5,
			Misc:   80,
		},
		Switches:        74*32 + 6*16,
		SwitchPower:     250,
		StorageOverhead: 450 * units.Kilowatt,
		CoolingFactor:   1.03,
	}
}
