// Package power models Frontier's electrical budget (§5.1): per-node
// component draw, fabric and storage overheads, and the Green500-style
// efficiency metric. Frontier's debut HPL run delivered 1.102 EF at
// 21.1 MW — 52 GF/W, beating the 2008 exascale report's 50 GF/W target
// and its 20 MW/EF ceiling.
package power

import (
	"frontiersim/internal/units"
)

// NodePower is the per-node draw under load.
type NodePower struct {
	CPU    units.Watts // Trento socket
	GPUs   units.Watts // four MI250X OAMs
	Memory units.Watts // eight DDR4 DIMMs
	NIC    units.Watts // four Cassini NICs
	NVMe   units.Watts // two M.2 drives
	Misc   units.Watts // board, VRs, fans share
}

// Total sums the node components.
func (n NodePower) Total() units.Watts {
	return n.CPU + n.GPUs + n.Memory + n.NIC + n.NVMe + n.Misc
}

// Machine is the system-level power model.
type Machine struct {
	Nodes       int
	NodeHPL     NodePower // draw during HPL
	NodeIdle    NodePower
	Switches    int
	SwitchPower units.Watts
	// StorageOverhead covers Orion and service nodes.
	StorageOverhead units.Watts
	// CoolingFactor is the in-machine cooling overhead multiplier
	// (warm-water cooling keeps it near 1).
	CoolingFactor float64
}

// SystemHPL is the machine draw during an HPL run on n nodes (the rest
// of the machine idles).
func (m Machine) SystemHPL(activeNodes int) units.Watts {
	if activeNodes > m.Nodes {
		activeNodes = m.Nodes
	}
	nodes := units.Watts(activeNodes)*m.NodeHPL.Total() +
		units.Watts(m.Nodes-activeNodes)*m.NodeIdle.Total()
	fabric := units.Watts(m.Switches) * m.SwitchPower
	return units.Watts(float64(nodes+fabric+m.StorageOverhead) * m.CoolingFactor)
}

// SystemIdle is the idle machine draw.
func (m Machine) SystemIdle() units.Watts {
	return units.Watts(float64(units.Watts(m.Nodes)*m.NodeIdle.Total()+
		units.Watts(m.Switches)*m.SwitchPower+m.StorageOverhead) * m.CoolingFactor)
}

// Efficiency returns the Green500 metric in FLOP/s per watt.
func Efficiency(flops units.Flops, w units.Watts) float64 {
	if w <= 0 {
		return 0
	}
	return float64(flops) / float64(w)
}

// MWPerExaflop converts a sustained rate and draw to the 2008 report's
// MW/EF figure of merit (their ceiling was 20 MW/EF).
func MWPerExaflop(flops units.Flops, w units.Watts) float64 {
	if flops <= 0 {
		return 0
	}
	return float64(w) / 1e6 / (float64(flops) / 1e18)
}
