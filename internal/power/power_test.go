package power

import (
	"math"
	"testing"

	"frontiersim/internal/units"
)

// §5.1: 1.1 EF at 21.1 MW gives 52 GF/W, beating the report's 50 GF/W.
func TestFrontierHPLPower(t *testing.T) {
	m := Frontier()
	w := m.SystemHPL(m.Nodes)
	mw := float64(w) / 1e6
	if math.Abs(mw-21.1) > 0.8 {
		t.Errorf("HPL system power = %.1f MW, want ~21.1", mw)
	}
	gfw := Efficiency(1.102*units.ExaFlops, w) / 1e9
	if gfw < 50 || gfw > 55 {
		t.Errorf("efficiency = %.1f GF/W, want ~52 (and > the report's 50)", gfw)
	}
}

func TestMWPerExaflop(t *testing.T) {
	m := Frontier()
	w := m.SystemHPL(m.Nodes)
	mwef := MWPerExaflop(1.102*units.ExaFlops, w)
	// The 2008 report's ceiling was 20 MW/EF; Frontier lands just below.
	if mwef > 20 || mwef < 17 {
		t.Errorf("MW/EF = %.1f, want ~19 (< 20)", mwef)
	}
	if MWPerExaflop(0, w) != 0 {
		t.Error("zero flops should give 0")
	}
}

func TestIdleBelowLoad(t *testing.T) {
	m := Frontier()
	if m.SystemIdle() >= m.SystemHPL(m.Nodes) {
		t.Error("idle power must be below HPL power")
	}
	if m.SystemIdle() <= 0 {
		t.Error("idle power must be positive")
	}
}

func TestPartialActivity(t *testing.T) {
	m := Frontier()
	half := m.SystemHPL(m.Nodes / 2)
	full := m.SystemHPL(m.Nodes)
	if half >= full || half <= m.SystemIdle() {
		t.Errorf("half-active %v should sit between idle %v and full %v", half, m.SystemIdle(), full)
	}
	// Overflow clamps.
	if m.SystemHPL(m.Nodes*2) != full {
		t.Error("active nodes should clamp to machine size")
	}
}

func TestNodePowerBudget(t *testing.T) {
	m := Frontier()
	node := float64(m.NodeHPL.Total())
	// ~2 kW per node under HPL; the GPUs dominate.
	if node < 1800 || node > 2300 {
		t.Errorf("node HPL power = %.0f W, want ~2 kW", node)
	}
	if float64(m.NodeHPL.GPUs)/node < 0.6 {
		t.Error("GPUs should dominate node power")
	}
}

func TestEfficiencyEdgeCases(t *testing.T) {
	if Efficiency(units.ExaFlops, 0) != 0 {
		t.Error("zero watts should give 0")
	}
}
