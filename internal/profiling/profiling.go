// Package profiling wires the standard -cpuprofile/-memprofile flags —
// and, for the sharded parallel kernel, -mutexprofile/-blockprofile —
// into the simulator's command-line tools, so hot-path work (like the
// RNG seeding tax this repo's PR 3 removed, or barrier contention in
// the windowed kernel) can be found with `go tool pprof` instead of
// guesswork. See README's "Profiling the simulator" section for the
// workflow.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config names the profile outputs to collect; empty fields are off.
type Config struct {
	CPU   string // pprof CPU profile
	Mem   string // heap profile, written at stop
	Mutex string // contended-mutex profile (SetMutexProfileFraction(1))
	Block string // blocking profile (SetBlockProfileRate(1)) — barriers show here
}

// Start begins CPU profiling (if cpuPath is non-empty) and returns a
// stop function that finishes the CPU profile and, if memPath is
// non-empty, writes a heap profile. Callers must invoke stop on every
// exit path that should produce profiles — typically via an explicit
// call before os.Exit, since os.Exit skips deferred calls.
func Start(cpuPath, memPath string) (stop func(), err error) {
	return StartConfig(Config{CPU: cpuPath, Mem: memPath})
}

// StartConfig begins every profile named in cfg and returns a stop
// function that flushes them. Mutex and block profiling have runtime
// overhead while armed (every contention event is sampled, rate 1), so
// they are only switched on when an output path asks for them, and the
// rates are restored to off at stop.
func StartConfig(cfg Config) (stop func(), err error) {
	var cpuFile *os.File
	if cfg.CPU != "" {
		cpuFile, err = os.Create(cfg.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if cfg.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if cfg.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if cfg.Mem != "" {
			runtime.GC() // materialise the final live set
			writeLookup(cfg.Mem, "heap")
		}
		if cfg.Mutex != "" {
			writeLookup(cfg.Mutex, "mutex")
			runtime.SetMutexProfileFraction(0)
		}
		if cfg.Block != "" {
			writeLookup(cfg.Block, "block")
			runtime.SetBlockProfileRate(0)
		}
	}, nil
}

// writeLookup writes one named runtime profile, reporting (not
// returning) errors: profile flushing happens on exit paths where a
// failed write should not change the command's outcome.
func writeLookup(path, name string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		return
	}
	defer f.Close()
	p := pprof.Lookup(name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "profiling: no %s profile\n", name)
		return
	}
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
	}
}
