// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the simulator's command-line tools, so hot-path work (like the
// RNG seeding tax this repo's PR 3 removed) can be found with
// `go tool pprof` instead of guesswork. See README's "Profiling the
// simulator" section for the workflow.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a
// stop function that finishes the CPU profile and, if memPath is
// non-empty, writes a heap profile. Callers must invoke stop on every
// exit path that should produce profiles — typically via an explicit
// call before os.Exit, since os.Exit skips deferred calls.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
