package profiling

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func TestStartConfigWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CPU:   filepath.Join(dir, "cpu.pprof"),
		Mem:   filepath.Join(dir, "mem.pprof"),
		Mutex: filepath.Join(dir, "mutex.pprof"),
		Block: filepath.Join(dir, "block.pprof"),
	}
	stop, err := StartConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Generate at least one contention event so the mutex and block
	// profiles have something to record.
	var mu sync.Mutex
	mu.Lock()
	done := make(chan struct{})
	go func() {
		mu.Lock()
		mu.Unlock() //nolint:staticcheck // empty critical section is the point
		close(done)
	}()
	runtime.Gosched()
	mu.Unlock()
	<-done
	stop()

	for _, path := range []string{cfg.CPU, cfg.Mem, cfg.Mutex, cfg.Block} {
		st, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", filepath.Base(path))
		}
	}
	if runtime.SetMutexProfileFraction(-1) != 0 {
		t.Error("mutex profiling left armed after stop")
	}
}

func TestStartDelegatesToConfig(t *testing.T) {
	dir := t.TempDir()
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

func TestStartConfigBadPath(t *testing.T) {
	if _, err := StartConfig(Config{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err == nil {
		t.Fatal("expected error for unwritable CPU profile path")
	}
}
