// Package report renders experiment results as paper-vs-measured tables:
// every reproduced table and figure emits one Table whose rows pair the
// value printed in the paper with the value the simulator produced, plus
// the relative deviation where both are numeric.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Row is one compared quantity.
type Row struct {
	Name string
	// Paper is the value as printed in the paper (already formatted,
	// with units); Measured is the simulator's value.
	Paper    string
	Measured string
	// PaperVal and MeasuredVal, when both non-zero, let the renderer
	// print a deviation column.
	PaperVal    float64
	MeasuredVal float64
	// Note carries provenance or caveats.
	Note string
}

// Deviation returns the relative difference, or NaN when not comparable.
func (r Row) Deviation() float64 {
	if r.PaperVal == 0 || r.MeasuredVal == 0 {
		return math.NaN()
	}
	return r.MeasuredVal/r.PaperVal - 1
}

// Table is one reproduced artifact.
type Table struct {
	ID    string // e.g. "table3", "fig6"
	Title string
	Rows  []Row
}

// Add appends a compared row with numeric deviation tracking.
func (t *Table) Add(name, paper, measured string, paperVal, measuredVal float64, note string) {
	t.Rows = append(t.Rows, Row{
		Name: name, Paper: paper, Measured: measured,
		PaperVal: paperVal, MeasuredVal: measuredVal, Note: note,
	})
}

// AddInfo appends a row without a paper-side comparison.
func (t *Table) AddInfo(name, measured, note string) {
	t.Rows = append(t.Rows, Row{Name: name, Measured: measured, Note: note})
}

// MaxAbsDeviation returns the largest |deviation| across comparable rows.
func (t *Table) MaxAbsDeviation() float64 {
	worst := 0.0
	for _, r := range t.Rows {
		if d := math.Abs(r.Deviation()); !math.IsNaN(d) && d > worst {
			worst = d
		}
	}
	return worst
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	name, paper, meas := len("quantity"), len("paper"), len("measured")
	for _, r := range t.Rows {
		name = max(name, len(r.Name))
		paper = max(paper, len(r.Paper))
		meas = max(meas, len(r.Measured))
	}
	fmt.Fprintf(w, "%-*s  %*s  %*s  %9s  %s\n", name, "quantity", paper, "paper", meas, "measured", "deviation", "note")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", name+paper+meas+24))
	for _, r := range t.Rows {
		dev := ""
		if d := r.Deviation(); !math.IsNaN(d) {
			dev = fmt.Sprintf("%+.1f%%", d*100)
		}
		fmt.Fprintf(w, "%-*s  %*s  %*s  %9s  %s\n", name, r.Name, paper, r.Paper, meas, r.Measured, dev, r.Note)
	}
	fmt.Fprintln(w)
}

// Markdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintln(w, "| quantity | paper | measured | deviation | note |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, r := range t.Rows {
		dev := ""
		if d := r.Deviation(); !math.IsNaN(d) {
			dev = fmt.Sprintf("%+.1f%%", d*100)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n", r.Name, r.Paper, r.Measured, dev, r.Note)
	}
	fmt.Fprintln(w)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GB formats bytes/s as GB/s with adaptive precision.
func GB(v float64) string {
	switch {
	case v >= 1e13:
		return fmt.Sprintf("%.1f TB/s", v/1e12)
	case v >= 1e12:
		return fmt.Sprintf("%.2f TB/s", v/1e12)
	default:
		return fmt.Sprintf("%.1f GB/s", v/1e9)
	}
}

// F formats a float compactly.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e15 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
