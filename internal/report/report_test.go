package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRowDeviation(t *testing.T) {
	r := Row{PaperVal: 100, MeasuredVal: 105}
	if math.Abs(r.Deviation()-0.05) > 1e-12 {
		t.Errorf("deviation = %v, want 0.05", r.Deviation())
	}
	if !math.IsNaN((Row{PaperVal: 0, MeasuredVal: 5}).Deviation()) {
		t.Error("zero paper value should give NaN")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "t", Title: "demo"}
	tab.Add("alpha", "100", "105", 100, 105, "note-a")
	tab.AddInfo("beta", "hello", "info row")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "alpha", "+5.0%", "beta", "hello", "note-a"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "m", Title: "md"}
	tab.Add("x", "1", "2", 1, 2, "")
	var buf bytes.Buffer
	tab.Markdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "| x | 1 | 2 | +100.0% |") {
		t.Errorf("markdown wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "### m — md") {
		t.Errorf("missing heading:\n%s", out)
	}
}

func TestMaxAbsDeviation(t *testing.T) {
	tab := &Table{}
	tab.Add("a", "", "", 100, 90, "")
	tab.Add("b", "", "", 100, 104, "")
	tab.AddInfo("c", "no comparison", "")
	if d := tab.MaxAbsDeviation(); math.Abs(d-0.10) > 1e-12 {
		t.Errorf("max deviation = %v, want 0.10", d)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		25e9:   "25.0 GB/s",
		4.3e12: "4.30 TB/s",
		67e12:  "67.0 TB/s",
	}
	for v, want := range cases {
		if got := GB(v); got != want {
			t.Errorf("GB(%v) = %q, want %q", v, got, want)
		}
	}
	if F(0) != "0" {
		t.Error("F(0)")
	}
	if F(419.9e15) != "4.2e+17" {
		t.Errorf("F(huge) = %q", F(419.9e15))
	}
	if F(52.3) != "52.3" {
		t.Errorf("F(52.3) = %q", F(52.3))
	}
}
