package resilience

import "frontiersim/internal/units"

// Frontier is a test fixture: production code derives the reliability
// model from internal/machine (which imports this package). The golden
// test in internal/machine pins the derived model to these values.
func Frontier() Model {
	return Model{Classes: []ComponentClass{
		{Name: "hbm-uncorrectable", Count: 303104, MTBF: 3.4e6 * units.Hour, Interrupting: true},
		{Name: "power-supply", Count: 74 * 64, MTBF: 9.5e4 * units.Hour, Interrupting: true},
		{Name: "ddr4-uncorrectable", Count: 75776, MTBF: 6.0e6 * units.Hour, Interrupting: true},
		{Name: "gpu", Count: 37888, MTBF: 2.2e6 * units.Hour, Interrupting: true},
		{Name: "cpu", Count: 9472, MTBF: 3.0e6 * units.Hour, Interrupting: true},
		{Name: "nic", Count: 37888, MTBF: 5.0e6 * units.Hour, Interrupting: true},
		{Name: "switch", Count: 2464, MTBF: 1.5e6 * units.Hour, Interrupting: false},
		{Name: "cable", Count: 40000, MTBF: 8.0e6 * units.Hour, Interrupting: false},
		{Name: "nvme", Count: 18944, MTBF: 8.0e6 * units.Hour, Interrupting: true},
	}}
}
