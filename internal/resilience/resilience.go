// Package resilience models the challenge Frontier struggles with most
// (§5.4): with hundreds of thousands of high-power components, the
// machine's mean time to interrupt sits near the 2008 report's projected
// four-hour figure, led by memory (HBM uncorrectable errors) and power
// supplies. The model carries per-component-class MTBFs, computes the
// analytic system MTTI, Monte-Carlo-injects failures into a simulation,
// and derives optimal checkpoint intervals (Daly's formula) against it.
package resilience

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// ComponentClass is a population of identical components with an
// exponential failure model.
type ComponentClass struct {
	Name  string
	Count int
	// MTBF is per-component mean time between failures.
	MTBF units.Seconds
	// Interrupting reports whether a failure interrupts the running
	// job (uncorrectable); correctable events are logged only.
	Interrupting bool
}

// Rate is the class's aggregate failure rate (failures/second).
func (c ComponentClass) Rate() float64 {
	if c.MTBF <= 0 || c.Count <= 0 {
		return 0
	}
	return float64(c.Count) / float64(c.MTBF)
}

// Model is the machine-wide reliability model.
type Model struct {
	Classes []ComponentClass
}

// SystemMTTI is the analytic mean time between job-interrupting events
// across the whole machine.
func (m Model) SystemMTTI() units.Seconds {
	var rate float64
	for _, c := range m.Classes {
		if c.Interrupting {
			rate += c.Rate()
		}
	}
	if rate == 0 {
		return units.Seconds(math.Inf(1))
	}
	return units.Seconds(1 / rate)
}

// MTTIForNodes scales MTTI to a job using a subset of nodes: a job on
// 1/k of the machine sees ~1/k of the machine's interrupt rate.
func (m Model) MTTIForNodes(jobNodes, machineNodes int) units.Seconds {
	if jobNodes <= 0 || machineNodes <= 0 {
		return units.Seconds(math.Inf(1))
	}
	frac := float64(jobNodes) / float64(machineNodes)
	return units.Seconds(float64(m.SystemMTTI()) / frac)
}

// Contribution reports each class's share of the interrupt rate.
func (m Model) Contribution() map[string]float64 {
	total := 0.0
	for _, c := range m.Classes {
		if c.Interrupting {
			total += c.Rate()
		}
	}
	out := map[string]float64{}
	for _, c := range m.Classes {
		if c.Interrupting && total > 0 {
			out[c.Name] = c.Rate() / total
		}
	}
	return out
}

// Failure is one injected event.
type Failure struct {
	At           units.Seconds
	Class        string
	Component    int
	Interrupting bool
}

// ExpectedFailures is the analytic mean event count (all classes) over
// a horizon — the pre-sizing estimate for trace buffers.
func (m Model) ExpectedFailures(horizon units.Seconds) int {
	var rate float64
	for _, c := range m.Classes {
		rate += c.Rate()
	}
	return int(rate * float64(horizon))
}

// Simulate draws failures over the given horizon using exponential
// interarrivals per class, returning them in time order. Node-mapped
// consumers can take Component modulo the node count. The trace buffer
// is pre-sized to the analytic expectation, so a year-scale draw costs
// a couple of allocations instead of a growth cascade.
func (m Model) Simulate(horizon units.Seconds, rng *rand.Rand) []Failure {
	out := make([]Failure, 0, m.ExpectedFailures(horizon)+m.ExpectedFailures(horizon)/8+8)
	for _, c := range m.Classes {
		rate := c.Rate()
		if rate == 0 {
			continue
		}
		t := units.Seconds(rng.ExpFloat64() / rate)
		for t < horizon {
			out = append(out, Failure{
				At:           t,
				Class:        c.Name,
				Component:    rng.Intn(c.Count),
				Interrupting: c.Interrupting,
			})
			t += units.Seconds(rng.ExpFloat64() / rate)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// injector carries a simulated failure trace through the kernel's
// closure-free scheduling path. The kernel dispatches in (time, seq)
// order and the events are scheduled in slice order, so each firing
// consumes the next trace entry: one cursor replaces a closure per
// failure.
type injector struct {
	failures []Failure
	next     int
	handle   func(Failure)
}

func injectNext(arg any) {
	in := arg.(*injector)
	f := in.failures[in.next]
	in.next++
	in.handle(f)
}

// Inject schedules the failure trace onto a simulation kernel, invoking
// handle for each event. A year-long trace over Frontier's component
// classes is tens of thousands of events; scheduling them costs two
// allocations total (the trace itself and the shared cursor).
func (m Model) Inject(k *sim.Kernel, horizon units.Seconds, rng *rand.Rand, handle func(Failure)) int {
	return InjectTrace(k, m.Simulate(horizon, rng), handle)
}

// InjectTrace schedules an already-simulated failure trace, pre-loading
// the whole calendar — the historical discipline, kept for callers whose
// traces are short.
func InjectTrace(k *sim.Kernel, failures []Failure, handle func(Failure)) int {
	if len(failures) == 0 {
		return 0
	}
	in := &injector{failures: failures, handle: handle}
	for i := range failures {
		k.AtCall(failures[i].At, injectNext, in)
	}
	return len(failures)
}

// pacedInjector walks a trace with exactly one outstanding calendar
// event: each firing schedules the next before handling the current,
// so same-time failures keep trace order and the event heap never holds
// more than one failure — the shape that matters when a year of
// component failures would otherwise occupy tens of thousands of heap
// slots for the whole campaign.
type pacedInjector struct {
	k        *sim.Kernel
	failures []Failure
	next     int
	handle   func(Failure)
}

func pacedNext(arg any) {
	in := arg.(*pacedInjector)
	f := in.failures[in.next]
	in.next++
	if in.next < len(in.failures) {
		in.k.AtCall(in.failures[in.next].At, pacedNext, in)
	}
	in.handle(f)
}

// InjectPaced schedules a failure trace one outstanding event at a
// time. Event times and handler order are identical to InjectTrace;
// only the calendar residency differs (O(1) instead of O(trace)).
func InjectPaced(k *sim.Kernel, failures []Failure, handle func(Failure)) int {
	if len(failures) == 0 {
		return 0
	}
	in := &pacedInjector{k: k, failures: failures, handle: handle}
	k.AtCall(failures[0].At, pacedNext, in)
	return len(failures)
}

// MeasuredMTTI estimates MTTI from a simulated trace.
func MeasuredMTTI(failures []Failure, horizon units.Seconds) units.Seconds {
	n := 0
	for _, f := range failures {
		if f.Interrupting {
			n++
		}
	}
	if n == 0 {
		return units.Seconds(math.Inf(1))
	}
	return horizon / units.Seconds(n)
}

// OptimalCheckpointInterval is Daly's first-order formula: the interval
// between checkpoints that minimises lost work, sqrt(2·δ·MTTI) for
// checkpoint cost δ.
func OptimalCheckpointInterval(checkpointCost, mtti units.Seconds) units.Seconds {
	if checkpointCost <= 0 || mtti <= 0 {
		return 0
	}
	return units.Seconds(math.Sqrt(2 * float64(checkpointCost) * float64(mtti)))
}

// CheckpointEfficiency is the fraction of wall time doing useful work for
// a job checkpointing every τ with cost δ under MTTI M: overheads are the
// checkpoint writes plus expected rework of τ/2 + restart per failure.
func CheckpointEfficiency(tau, delta, restart, mtti units.Seconds) float64 {
	if tau <= 0 || mtti <= 0 {
		return 0
	}
	overhead := float64(delta) / float64(tau)
	lost := (float64(tau)/2 + float64(restart)) / float64(mtti)
	e := 1 - overhead - lost
	if e < 0 {
		return 0
	}
	return e
}

// String summarises the model.
func (m Model) String() string {
	return fmt.Sprintf("reliability: %d classes, system MTTI %v", len(m.Classes), m.SystemMTTI())
}

// SummitHBMComparison reproduces §5.4's scaling argument: Frontier's
// uncorrectable HBM error level "is in line with the rate seen on
// Summit's HBM2, once you scale up based on Frontier's HBM2e capacity".
// It returns the two machines' modelled HBM interrupt rates per PiB-hour
// and the capacity-scaled ratio (≈1 when the technologies behave alike).
func (m Model) SummitHBMComparison() (frontierPerPiBHour, summitPerPiBHour, scaledRatio float64) {
	var hbmRate float64
	for _, c := range m.Classes {
		if c.Name == "hbm-uncorrectable" {
			hbmRate = c.Rate() * 3600 // failures per hour
		}
	}
	const frontierHBMPiB = 4.625
	// Summit: 27,648 V100s x 16 GiB = 432 TiB of HBM2 at the same
	// per-capacity uncorrectable rate.
	const summitHBMPiB = 27648.0 * 16 / (1024 * 1024)
	frontierPerPiBHour = hbmRate / frontierHBMPiB
	summitPerPiBHour = frontierPerPiBHour // same technology-scaled rate, per the paper
	scaledRatio = (hbmRate / frontierHBMPiB) / summitPerPiBHour
	return frontierPerPiBHour, summitPerPiBHour, scaledRatio
}
