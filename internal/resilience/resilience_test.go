package resilience

import (
	"math"
	"math/rand"
	"testing"

	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// §5.4: Frontier's MTTI is "not much better" than the 2008 report's
// projected four-hour target.
func TestSystemMTTI(t *testing.T) {
	m := Frontier()
	h := float64(m.SystemMTTI()) / 3600
	if h < 3.5 || h > 8 {
		t.Errorf("MTTI = %.1f h, want near the 4-hour projection", h)
	}
}

// The paper identifies memory and power supplies as leading contributors.
func TestLeadingContributors(t *testing.T) {
	c := Frontier().Contribution()
	if c["hbm-uncorrectable"] < 0.3 {
		t.Errorf("HBM share = %.2f, want dominant (>0.3)", c["hbm-uncorrectable"])
	}
	if c["power-supply"] < 0.15 {
		t.Errorf("PSU share = %.2f, want large (>0.15)", c["power-supply"])
	}
	if c["hbm-uncorrectable"]+c["power-supply"] < 0.55 {
		t.Error("memory + PSU should dominate the interrupt rate")
	}
	var sum float64
	for _, v := range c {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("contributions sum to %.3f, want 1", sum)
	}
}

func TestMTTIForNodes(t *testing.T) {
	m := Frontier()
	full := m.MTTIForNodes(9472, 9472)
	half := m.MTTIForNodes(4736, 9472)
	if math.Abs(float64(half)/float64(full)-2) > 1e-9 {
		t.Errorf("half-machine MTTI should double: %v vs %v", half, full)
	}
	if !math.IsInf(float64(m.MTTIForNodes(0, 9472)), 1) {
		t.Error("zero nodes should give infinite MTTI")
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	m := Frontier()
	horizon := 60 * units.Day
	failures := m.Simulate(horizon, rand.New(rand.NewSource(1)))
	if len(failures) == 0 {
		t.Fatal("60 days must produce failures")
	}
	// Time-ordered.
	for i := 1; i < len(failures); i++ {
		if failures[i].At < failures[i-1].At {
			t.Fatal("failures out of order")
		}
		if failures[i].At > horizon {
			t.Fatal("failure past horizon")
		}
	}
	measured := float64(MeasuredMTTI(failures, horizon))
	analytic := float64(m.SystemMTTI())
	if math.Abs(measured-analytic)/analytic > 0.25 {
		t.Errorf("measured MTTI %v vs analytic %v: >25%% apart", measured, analytic)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := Frontier()
	a := m.Simulate(10*units.Day, rand.New(rand.NewSource(7)))
	b := m.Simulate(10*units.Day, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatal("same seed should give same trace")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace mismatch")
		}
	}
}

func TestInject(t *testing.T) {
	m := Frontier()
	k := sim.NewKernel(3)
	var seen []Failure
	n := m.Inject(k, 5*units.Day, k.Stream("failures"), func(f Failure) { seen = append(seen, f) })
	k.Run()
	if len(seen) != n {
		t.Errorf("handled %d of %d failures", len(seen), n)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].At < seen[i-1].At {
			t.Error("injected failures out of order")
		}
	}
}

func TestOptimalCheckpointInterval(t *testing.T) {
	// A full-machine checkpoint of ~700 TiB takes ~180 s on Orion; with
	// a ~5.5 h MTTI Daly gives an interval around 45 min.
	tau := OptimalCheckpointInterval(180, Frontier().SystemMTTI())
	min := float64(tau) / 60
	if min < 25 || min > 70 {
		t.Errorf("optimal interval = %.0f min, want ~45", min)
	}
	if OptimalCheckpointInterval(0, 100) != 0 {
		t.Error("zero cost should give 0")
	}
}

func TestCheckpointEfficiency(t *testing.T) {
	mtti := Frontier().SystemMTTI()
	tau := OptimalCheckpointInterval(180, mtti)
	e := CheckpointEfficiency(tau, 180, 600, mtti)
	if e < 0.8 || e > 0.99 {
		t.Errorf("efficiency at optimum = %.3f, want high", e)
	}
	// The optimum should beat both much-shorter and much-longer
	// intervals.
	if CheckpointEfficiency(tau/20, 180, 600, mtti) >= e {
		t.Error("checkpointing 20x too often should hurt")
	}
	if CheckpointEfficiency(tau*20, 180, 600, mtti) >= e {
		t.Error("checkpointing 20x too rarely should hurt")
	}
	if CheckpointEfficiency(0, 180, 600, mtti) != 0 {
		t.Error("zero interval should give 0")
	}
}

func TestComponentClassEdges(t *testing.T) {
	if (ComponentClass{Count: 0, MTBF: 100}).Rate() != 0 {
		t.Error("zero count should give zero rate")
	}
	if (ComponentClass{Count: 5, MTBF: 0}).Rate() != 0 {
		t.Error("zero MTBF should give zero rate")
	}
	empty := Model{}
	if !math.IsInf(float64(empty.SystemMTTI()), 1) {
		t.Error("empty model should have infinite MTTI")
	}
	if Frontier().String() == "" {
		t.Error("empty String")
	}
}

// §5.4: "The level of uncorrectable errors is in line with the rate seen
// on Summit's HBM2, once you scale up based on Frontier's HBM2e
// capacity."
func TestSummitHBMComparison(t *testing.T) {
	frontier, summit, ratio := Frontier().SummitHBMComparison()
	if frontier <= 0 || summit <= 0 {
		t.Fatal("rates must be positive")
	}
	if math.Abs(ratio-1) > 1e-9 {
		t.Errorf("capacity-scaled ratio = %.3f, want 1 (same technology rate)", ratio)
	}
	// Frontier has ~10.7x Summit's HBM capacity, so the absolute
	// interrupt rate scales accordingly.
	const frontierPiB, summitPiB = 4.625, 0.422
	frontierAbs := frontier * frontierPiB
	summitAbs := summit * summitPiB
	if frontierAbs/summitAbs < 10 || frontierAbs/summitAbs > 12 {
		t.Errorf("absolute rate ratio = %.1f, want ~11 (capacity ratio)", frontierAbs/summitAbs)
	}
}

// Paced injection must deliver the same failures, at the same times, in
// the same order as pre-loading the whole trace — only the calendar
// residency differs.
func TestInjectPacedMatchesInjectTrace(t *testing.T) {
	m := Frontier()
	trace := m.Simulate(30*units.Day, rand.New(rand.NewSource(11)))
	run := func(inject func(*sim.Kernel, []Failure, func(Failure)) int) []Failure {
		k := sim.NewKernel(5)
		var seen []Failure
		withTimes := func(f Failure) {
			f.At = units.Seconds(k.Now()) // observed firing time
			seen = append(seen, f)
		}
		if n := inject(k, trace, withTimes); n != len(trace) {
			t.Fatalf("scheduled %d of %d failures", n, len(trace))
		}
		k.Run()
		return seen
	}
	upfront := run(InjectTrace)
	paced := run(InjectPaced)
	if len(upfront) != len(paced) {
		t.Fatalf("upfront handled %d, paced %d", len(upfront), len(paced))
	}
	for i := range upfront {
		if upfront[i] != paced[i] {
			t.Fatalf("failure %d diverges: upfront %+v, paced %+v", i, upfront[i], paced[i])
		}
	}
	if len(upfront) == 0 {
		t.Fatal("empty trace proves nothing")
	}
}

func TestExpectedFailures(t *testing.T) {
	m := Frontier()
	got := m.Simulate(60*units.Day, rand.New(rand.NewSource(3)))
	want := m.ExpectedFailures(60 * units.Day)
	if want == 0 {
		t.Fatal("expected count is zero")
	}
	ratio := float64(len(got)) / float64(want)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("simulated %d failures vs expected %d (ratio %.2f)", len(got), want, ratio)
	}
}
