package resilience

import (
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// Sharded failure injection: the machine's component populations split
// across the sharded kernel's logical processes (per dragonfly group on
// the real partition), each LP drawing and injecting its own trace from
// its private stream. Failures are independent Poisson processes, so
// splitting a class of Count components into per-LP sub-populations
// preserves the aggregate rate exactly; and because each LP's trace is a
// pure function of (seed, LP id), the union of injected failures is
// byte-identical at any shard count.
//
// Failure injection has no cross-LP events at all, so the natural
// partition is sim.StaticPartition{LPs: n, Bound: horizon}: one window,
// near-linear parallel speedup over the trace generation and handling.

// ShardedInjection tracks a sharded injection run; counts become valid
// once the kernel has run past the generation events.
type ShardedInjection struct {
	injectors []*shardInjector
}

// Failures returns the total number of injected failures across LPs.
func (s *ShardedInjection) Failures() int {
	n := 0
	for _, in := range s.injectors {
		n += len(in.failures)
	}
	return n
}

// PerLP returns per-LP injected failure counts.
func (s *ShardedInjection) PerLP() []int {
	out := make([]int, len(s.injectors))
	for i, in := range s.injectors {
		out[i] = len(in.failures)
	}
	return out
}

type shardInjector struct {
	m        Model
	horizon  units.Seconds
	lp       *sim.LP
	handle   func(lp int, f Failure)
	failures []Failure
	next     int
}

// shardGenerate draws the LP's failure trace and schedules it. It runs
// as the LP's t=0 event, so trace generation itself parallelises across
// shards inside the first window.
func shardGenerate(arg any) {
	in := arg.(*shardInjector)
	in.failures = in.m.Simulate(in.horizon, in.lp.Stream("resilience"))
	for i := range in.failures {
		in.lp.K.AtCall(in.failures[i].At, shardInjectNext, in)
	}
}

// shardInjectNext consumes the next trace entry, exactly like the serial
// injector's cursor: events were scheduled in slice (time) order, so the
// kernel's (time, seq) dispatch replays the trace in order.
func shardInjectNext(arg any) {
	in := arg.(*shardInjector)
	f := in.failures[in.next]
	in.next++
	in.handle(in.lp.ID(), f)
}

// shard returns LP i's sub-population of the model: each class's Count
// divides as evenly as possible across n LPs, with the first Count mod n
// LPs taking one extra. Component indices in the resulting failures are
// local to the LP's share.
func (m Model) shard(i, n int) Model {
	out := Model{Classes: make([]ComponentClass, 0, len(m.Classes))}
	for _, c := range m.Classes {
		cnt := c.Count / n
		if i < c.Count%n {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		c.Count = cnt
		out.Classes = append(out.Classes, c)
	}
	return out
}

// InjectSharded partitions the model across sk's logical processes and
// schedules each LP's failure trace on its own kernel. handle runs on
// the failing LP's goroutine with the LP id and the failure — it must
// only touch state owned by that LP (or per-LP slots of a shared slice).
// Traces are generated lazily at t=0 inside the run, so generation work
// parallelises too; the returned ShardedInjection reports counts once
// the kernel has started (Failures is exact after the first window).
func (m Model) InjectSharded(sk *sim.ShardedKernel, horizon units.Seconds, handle func(lp int, f Failure)) *ShardedInjection {
	n := sk.NumLPs()
	s := &ShardedInjection{injectors: make([]*shardInjector, n)}
	for i := 0; i < n; i++ {
		lp := sk.LP(i)
		in := &shardInjector{m: m.shard(i, n), horizon: horizon, lp: lp, handle: handle}
		s.injectors[i] = in
		lp.K.AtCall(0, shardGenerate, in)
	}
	return s
}
