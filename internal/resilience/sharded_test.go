package resilience

import (
	"math"
	"reflect"
	"testing"

	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

func TestShardConservesPopulations(t *testing.T) {
	m := Frontier()
	const n = 80
	totals := map[string]int{}
	for i := 0; i < n; i++ {
		for _, c := range m.shard(i, n).Classes {
			totals[c.Name] += c.Count
		}
	}
	for _, c := range m.Classes {
		if totals[c.Name] != c.Count {
			t.Errorf("class %s: sharded counts sum to %d, want %d", c.Name, totals[c.Name], c.Count)
		}
	}
	// The aggregate interrupt rate — and with it the analytic MTTI — is
	// preserved by the split.
	var rate float64
	for i := 0; i < n; i++ {
		sub := m.shard(i, n)
		for _, c := range sub.Classes {
			if c.Interrupting {
				rate += c.Rate()
			}
		}
	}
	if want := 1 / float64(m.SystemMTTI()); math.Abs(rate-want)/want > 1e-12 {
		t.Errorf("sharded interrupt rate %v, want %v", rate, want)
	}
}

// runShardedInjection injects a quarter year over n LPs and returns the
// per-LP failure traces observed by the handler.
func runShardedInjection(t *testing.T, lps, shards int) ([][]Failure, int) {
	t.Helper()
	horizon := 91 * units.Day
	sk := sim.NewSharded(42, sim.StaticPartition{LPs: lps, Bound: horizon}, shards)
	got := make([][]Failure, lps)
	inj := Frontier().InjectSharded(sk, horizon, func(lp int, f Failure) {
		got[lp] = append(got[lp], f)
	})
	sk.RunUntil(horizon)
	return got, inj.Failures()
}

func TestInjectShardedInvariantAcrossShardCounts(t *testing.T) {
	const lps = 16
	ref, refTotal := runShardedInjection(t, lps, 1)
	if refTotal == 0 {
		t.Fatal("no failures injected over a quarter year")
	}
	for _, shards := range []int{4, 16} {
		got, total := runShardedInjection(t, lps, shards)
		if total != refTotal {
			t.Errorf("shards=%d: %d failures, want %d", shards, total, refTotal)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d: per-LP failure traces diverge from shards=1", shards)
		}
	}
}

func TestInjectShardedHandlesInTimeOrderPerLP(t *testing.T) {
	got, total := runShardedInjection(t, 8, 4)
	seen := 0
	for lp, fs := range got {
		for i := 1; i < len(fs); i++ {
			if fs[i].At < fs[i-1].At {
				t.Fatalf("LP %d: failure %d at %v before predecessor %v", lp, i, fs[i].At, fs[i-1].At)
			}
		}
		seen += len(fs)
	}
	if seen != total {
		t.Errorf("handler saw %d failures, injection reports %d", seen, total)
	}
}

func TestInjectShardedRateMatchesAnalyticMTTI(t *testing.T) {
	// The union of per-LP traces is a thinned-and-merged Poisson process
	// with the full machine's rate: over a quarter year the interrupting
	// count should sit near horizon/MTTI.
	horizon := 91 * units.Day
	got, _ := runShardedInjection(t, 16, 4)
	interrupts := 0
	for _, fs := range got {
		for _, f := range fs {
			if f.Interrupting {
				interrupts++
			}
		}
	}
	want := float64(horizon) / float64(Frontier().SystemMTTI())
	if ratio := float64(interrupts) / want; ratio < 0.8 || ratio > 1.2 {
		t.Errorf("interrupting failures = %d, analytic expectation %.0f (ratio %.2f)", interrupts, want, ratio)
	}
}
