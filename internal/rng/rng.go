// Package rng is the simulator's random-number substrate: a splittable
// family of cheap, statistically strong streams that replaces
// math/rand's legacy lagged-Fibonacci source on every hot path.
//
// Why it exists: rand.NewSource pays a 607-element warmup on every Seed,
// which dominated profiles of the full-scale mpiGraph census — the
// simulator builds a fresh stream per (src,dst,epoch) path fill, per
// shift, per trial, and per experiment, so stream construction has to be
// a handful of arithmetic instructions, not thousands. Here a stream is
// a xoshiro256++ generator whose 256-bit state is expanded from a 64-bit
// seed by SplitMix64 (the seeding procedure its authors prescribe), so
// construction costs four multiplies and never touches the heap beyond
// the state itself.
//
// Splittability: Mix64 is a bijective avalanche, so folding coordinates
// (a name hash, a shift index, an endpoint pair, a state epoch) into a
// parent seed yields child seeds whose streams are statistically
// independent even when the inputs are consecutive small integers.
// Derive and DeriveN are the only sanctioned ways to build child seeds;
// deriving by drawing from a parent *stream* is forbidden because it
// makes the child depend on derivation order (the bug Kernel.Stream
// shipped with). The derivation tree is documented in DESIGN.md and
// pinned by golden-stream tests.
package rng

import "math/rand"

// golden is the SplitMix64 increment: 2^64 / phi, odd. Weyl-sequencing a
// seed by it guarantees distinct Mix64 inputs for distinct draws.
const golden = 0x9E3779B97F4A7C15

// Mix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014): a
// bijection over 64 bits whose output bits each depend on every input
// bit. It is the shared avalanche behind Derive, DeriveN and Expand.
func Mix64(x uint64) uint64 {
	x += golden
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64a hashes a name with FNV-1a, the cheap string fold used to bring
// component names into the 64-bit seed space.
func fnv64a(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Derive maps a parent seed and a stream name to an independent child
// seed. The result depends only on (seed, name) — never on call order or
// on any generator state — so a component's stream is stable under
// refactors that add, remove or reorder sibling streams.
func Derive(seed int64, name string) int64 {
	return int64(Mix64(uint64(seed) ^ fnv64a(name)))
}

// DeriveN folds integer coordinates into a parent seed, one avalanche
// per coordinate: the numeric analogue of Derive for per-shift,
// per-trial and per-(src,dst,epoch) streams. Folding happens left to
// right, so DeriveN(s, a, b) and DeriveN(s, b, a) differ.
func DeriveN(seed int64, coords ...uint64) int64 {
	h := Mix64(uint64(seed))
	for _, c := range coords {
		h = Mix64(h ^ c)
	}
	return int64(h)
}

// Source is a xoshiro256++ generator (Blackman & Vigna 2018). It
// implements math/rand.Source64, so rand.New(NewSource(seed)) is a
// drop-in replacement for rand.New(rand.NewSource(seed)) with O(1)
// seeding instead of the legacy source's 607-element warmup.
type Source struct {
	s0, s1, s2, s3 uint64
}

var _ rand.Source64 = (*Source)(nil)

// NewSource returns a source seeded with seed.
func NewSource(seed int64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the generator state. The four state words are consecutive
// SplitMix64 outputs, as the xoshiro reference implementation seeds
// itself; Mix64 is a bijection over distinct inputs, so at most one word
// can be zero and the all-zero fixed point is unreachable.
func (s *Source) Seed(seed int64) {
	x := uint64(seed)
	x += golden
	s.s0 = Mix64(x)
	x += golden
	s.s1 = Mix64(x)
	x += golden
	s.s2 = Mix64(x)
	x += golden
	s.s3 = Mix64(x)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 advances the generator.
func (s *Source) Uint64() uint64 {
	r := rotl(s.s0+s.s3, 23) + s.s0
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return r
}

// Int63 implements math/rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// New returns a *rand.Rand over a freshly seeded Source: the standard
// way the simulator builds a stream from a (derived) seed.
func New(seed int64) *rand.Rand { return rand.New(NewSource(seed)) }
