package rng

import (
	"math/rand"
	"testing"
)

// TestGoldenSourceStream pins the raw xoshiro256++ output for seed 42.
// These constants are the determinism contract: any change to seeding or
// state transition silently reshuffles every simulated measurement, so a
// refactor that trips this test must be treated as a results-changing
// event (regenerate EXPERIMENTS.md, re-check envelopes), never waved
// through.
func TestGoldenSourceStream(t *testing.T) {
	want := [8]uint64{
		0xefdb3abe2d004720, 0x74285db8cad01896, 0xe6026692c15933c2, 0x3aa35cc5ec89ce4c,
		0xabc99e3ed95f4ad3, 0x7d195f2a1f6f6e53, 0xd7d15320294bf92b, 0x5d1c1980e4d3bf09,
	}
	s := NewSource(42)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("Uint64 #%d = %#x, want %#x", i, got, w)
		}
	}
}

// TestGoldenRandStream pins the stream as consumed through *rand.Rand,
// proving rand.New routes through Source64.Uint64 (no Int63 truncation
// surprises between Go versions of the shim).
func TestGoldenRandStream(t *testing.T) {
	want := [8]int64{
		8641736291718800272, 4185021477863033931, 8286961179585976801, 2112661440275212070,
		6189299521788290409, 4507170381839709993, 7775651192941968533, 3354632793130393476,
	}
	r := New(42)
	for i, w := range want {
		if got := r.Int63(); got != w {
			t.Fatalf("Int63 #%d = %d, want %d", i, got, w)
		}
	}
}

// TestGoldenDerive pins the named and numeric derivation functions — the
// edges of the stream-derivation tree.
func TestGoldenDerive(t *testing.T) {
	cases := []struct {
		got, want int64
		name      string
	}{
		{Derive(42, "nic"), 5862105248083716468, `Derive(42,"nic")`},
		{Derive(42, "gpu"), -405461824577566726, `Derive(42,"gpu")`},
		{Derive(7, "nic"), 2988962952674555841, `Derive(7,"nic")`},
		{DeriveN(42), -4767286540954276203, "DeriveN(42)"},
		{DeriveN(42, 1), -914255856146365723, "DeriveN(42,1)"},
		{DeriveN(42, 1, 2), -853829980155589614, "DeriveN(42,1,2)"},
		{DeriveN(42, 2, 1), -3801213559712608042, "DeriveN(42,2,1)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestMix64Reference(t *testing.T) {
	// Reference values of the SplitMix64 finalizer.
	if got := Mix64(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("Mix64(0) = %#x", got)
	}
	if got := Mix64(1); got != 0x910a2dec89025cc1 {
		t.Errorf("Mix64(1) = %#x", got)
	}
}

func TestSeedResetsStream(t *testing.T) {
	s := NewSource(1)
	first := s.Uint64()
	for i := 0; i < 100; i++ {
		s.Uint64()
	}
	s.Seed(1)
	if got := s.Uint64(); got != first {
		t.Errorf("Seed did not reset the stream: %#x vs %#x", got, first)
	}
}

// Distinct seeds, including adjacent ones, must give visibly different
// streams — the whole point of the SplitMix64 expansion.
func TestAdjacentSeedsDecorrelated(t *testing.T) {
	a, b := NewSource(1), NewSource(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("seeds 1 and 2 collided on %d of 64 draws", same)
	}
}

// Derivation must be a pure function: independent of evaluation order
// and free of shared state.
func TestDeriveOrderIndependence(t *testing.T) {
	a1 := Derive(9, "a")
	_ = Derive(9, "b")
	a2 := Derive(9, "a")
	if a1 != a2 {
		t.Fatal("Derive depends on call order")
	}
	if Derive(9, "a") == Derive(9, "b") {
		t.Error("distinct names collided")
	}
	if DeriveN(9, 3, 4) == DeriveN(9, 4, 3) {
		t.Error("DeriveN must be order-sensitive in its coordinates")
	}
}

// The rand.Rand distribution helpers the simulator leans on must behave
// sanely over the source (sanity, not statistics: means within loose
// bounds over 100k draws).
func TestDistributionSanity(t *testing.T) {
	r := New(3)
	var sumF, sumN float64
	const n = 100000
	for i := 0; i < n; i++ {
		sumF += r.Float64()
		sumN += r.NormFloat64()
	}
	if mean := sumF / n; mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean = %.4f, want ~0.5", mean)
	}
	if mean := sumN / n; mean < -0.02 || mean > 0.02 {
		t.Errorf("NormFloat64 mean = %.4f, want ~0", mean)
	}
	// Intn must stay in range and hit every residue eventually.
	seen := [8]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn(8) = %d out of range", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(8) never produced %d in 1000 draws", v)
		}
	}
}

var _ rand.Source64 = (*Source)(nil)
