package scheduler

import (
	"math"
	"testing"

	"frontiersim/internal/job"
	"frontiersim/internal/machine"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// progRig is testRig plus a job env, so the scheduler accepts programs.
func progRig(t *testing.T) (*sim.Kernel, *Scheduler) {
	t.Helper()
	k := sim.NewKernel(1)
	spec := machine.Scaled(6, 8, 4)
	f, err := spec.NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	s := New(k, f)
	if s.Env, err = spec.JobEnv(f); err != nil {
		t.Fatal(err)
	}
	return k, s
}

// testProgram is a small phase-structured job: per-pass compute plus an
// allreduce and a checkpoint.
func testProgram(env *job.Env, nodes, iters int) *job.Program {
	return &job.Program{
		Name: "prog", Class: "test", Nodes: nodes, PPN: env.Node.Devices,
		Iterations: iters,
		Loop: []job.Phase{
			{Name: "work", Kind: job.Compute, Flops: float64(env.Node.FP64) / 4},
			{Name: "sync", Kind: job.Collective, Op: job.Allreduce, Payload: 8 * units.MiB},
			{Name: "ckpt", Kind: job.Checkpoint, Write: 512 * units.MiB},
		},
	}
}

// near tolerates the float64 rounding of Start+Total-Start round trips.
func near(a, b units.Seconds) bool {
	return math.Abs(float64(a-b)) <= 1e-9*math.Max(1, math.Abs(float64(b)))
}
func TestSubmitProgramRequiresEnv(t *testing.T) {
	k := sim.NewKernel(1)
	f, err := machine.Scaled(6, 8, 4).NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	s := New(k, f)
	if _, err := s.SubmitProgram(&job.Program{Name: "x", Nodes: 1, PPN: 8, Iterations: 1,
		Loop: []job.Phase{{Kind: job.Compute, Flops: 1}}}, nil); err == nil {
		t.Error("scheduler without an env accepted a program")
	}
}

func TestProgramJobDerivesWalltime(t *testing.T) {
	k, s := progRig(t)
	p := testProgram(s.Env, 8, 20)
	est, err := s.Env.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.SubmitProgram(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.Walltime != est*walltimeMargin {
		t.Errorf("Walltime = %v, want estimate %v x %.2f", j.Walltime, est, float64(walltimeMargin))
	}
	k.Run()
	if j.State != Completed {
		t.Fatalf("state = %v, want completed", j.State)
	}
	if j.Bound == nil {
		t.Fatal("completed program job has no Bound")
	}
	if got := j.End - j.Start; !near(got, j.Bound.Total) {
		t.Errorf("delivered %v != bound total %v", got, j.Bound.Total)
	}
	if j.End-j.Start > j.Walltime {
		t.Errorf("delivered %v exceeded requested %v without a timeout", j.End-j.Start, j.Walltime)
	}
	if j.Checkpoints != 20 {
		t.Errorf("Checkpoints = %d, want 20", j.Checkpoints)
	}
	if j.Class() != "test" {
		t.Errorf("Class = %q, want program class", j.Class())
	}
}

// A program job must interact with the queue exactly like a blob of its
// delivered runtime: same placement, same starts, same effect on the
// jobs around it.
func TestProgramVsBlobEquivalence(t *testing.T) {
	type shot struct {
		start, end units.Seconds
		alloc      []int
	}
	run := func(middle func(s *Scheduler) (*Job, error)) []shot {
		k, s := progRig(t)
		a, err := s.Submit("pre", 40, 300, nil) // hold most of the machine
		if err != nil {
			t.Fatal(err)
		}
		b, err := middle(s)
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Submit("post", 30, 100, nil) // must queue behind the middle job
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		var out []shot
		for _, j := range []*Job{a, b, c} {
			if j.State != Completed {
				t.Fatalf("%s: state %v", j.Name, j.State)
			}
			out = append(out, shot{j.Start, j.End, j.Alloc})
		}
		return out
	}

	// Probe: learn the program's delivered runtime in this queue position.
	var delivered units.Seconds
	probe := run(func(s *Scheduler) (*Job, error) {
		return s.SubmitProgram(testProgram(s.Env, 30, 50), nil)
	})
	delivered = probe[1].end - probe[1].start

	blob := run(func(s *Scheduler) (*Job, error) {
		return s.Submit("prog-blob", 30, delivered, nil)
	})
	prog := run(func(s *Scheduler) (*Job, error) {
		return s.SubmitProgram(testProgram(s.Env, 30, 50), nil)
	})
	for i := range blob {
		if blob[i].start != prog[i].start || blob[i].end != prog[i].end {
			t.Errorf("job %d: blob ran %v..%v, program %v..%v", i,
				blob[i].start, blob[i].end, prog[i].start, prog[i].end)
		}
		if len(blob[i].alloc) != len(prog[i].alloc) {
			t.Fatalf("job %d: alloc sizes differ", i)
		}
		for n := range blob[i].alloc {
			if blob[i].alloc[n] != prog[i].alloc[n] {
				t.Errorf("job %d: allocations diverge at %d", i, n)
				break
			}
		}
	}
}

// A node failure mid-phase charges exactly the work since the last
// completed checkpoint.
func TestProgramInterruptLostWork(t *testing.T) {
	k, s := progRig(t)
	var final JobState
	j, err := s.SubmitProgram(testProgram(s.Env, 8, 50), func(j *Job) { final = j.State })
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Running {
		t.Fatal("program should start immediately")
	}
	pass := j.Bound.LoopTime()
	// Kill a node mid-way through the compute phase of the 6th pass.
	cut := j.Start + 5*pass + j.Bound.LoopTimes[0]/2
	k.After(cut-k.Now(), func() { s.MarkUnhealthy(j.Alloc[0]) })
	k.RunUntil(cut + 1)
	if final != Failed {
		t.Fatalf("final state = %v, want failed", final)
	}
	if j.Checkpoints != 5 {
		t.Errorf("Checkpoints = %d, want 5", j.Checkpoints)
	}
	wantLost := cut - (j.Start + 5*pass)
	if !near(j.LostWork, wantLost) {
		t.Errorf("LostWork = %v, want %v (mid-phase, since last checkpoint)", j.LostWork, wantLost)
	}
	// A completed job, by contrast, loses nothing.
	k2, s2 := progRig(t)
	j2, err := s2.SubmitProgram(testProgram(s2.Env, 8, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	k2.Run()
	if j2.State != Completed || j2.LostWork != 0 {
		t.Errorf("completed job: state %v, lost work %v", j2.State, j2.LostWork)
	}
}

// A program whose bound runtime exceeds the requested walltime is killed
// at the walltime with state Timeout — mirroring a real scheduler's
// walltime kill, with the partial work accounted.
func TestProgramWalltimeTimeout(t *testing.T) {
	k, s := progRig(t)
	// Hold the whole machine so the program queues as pending — its
	// program is not yet bound.
	hold, err := s.Submit("hold", 48, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := testProgram(s.Env, 8, 50)
	var final JobState
	j, err := s.SubmitProgram(p, func(j *Job) { final = j.State })
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Pending {
		t.Fatal("program should queue behind the hold job")
	}
	// Shrink the quote below any possible bound total: when the job
	// starts and is priced on its granted placement, the scheduler must
	// arm a walltime kill instead of a completion.
	j.Walltime = 1 * units.Millisecond
	k.Run()
	if hold.State != Completed {
		t.Fatalf("hold job state %v", hold.State)
	}
	if final != Timeout || j.State != Timeout {
		t.Fatalf("state = %v, want timeout", j.State)
	}
	if got := j.End - j.Start; !near(got, j.Walltime) {
		t.Errorf("killed at %v after start, want the %v walltime", got, j.Walltime)
	}
	if j.Bound == nil || j.Bound.Total <= j.Walltime {
		t.Error("timeout fired although the program fit its walltime")
	}
	if j.LostWork <= 0 {
		t.Error("timeout job charged no lost work")
	}
	// The killed job's nodes return to the pool.
	next, err := s.Submit("after", 48, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if next.State != Completed {
		t.Errorf("machine not fully released after timeout: %v", next.State)
	}
}

func TestTimeoutStateString(t *testing.T) {
	if Timeout.String() != "timeout" {
		t.Errorf("Timeout.String() = %q", Timeout.String())
	}
}
