package scheduler

import (
	"testing"

	"frontiersim/internal/machine"
	"frontiersim/internal/rng"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// The index-tracked queue must behave exactly like the plain slice it
// replaced: pending jobs stay in submit order no matter how many are
// plucked out of the middle by backfill, cancels, or head starts. The
// reference model is the observable one — the submitted jobs that are
// still Pending, in submission order — so any reordering, duplication,
// or loss in the tombstone/compaction machinery shows up as a mismatch.
// Queue order feeds the workload layer's RNG-draw order, so this is
// also the draw-order regression test the determinism contract needs.
func TestQueueOrderMatchesReferenceModel(t *testing.T) {
	k := sim.NewKernel(7)
	fab, err := machine.Scaled(6, 8, 4).NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	s := New(k, fab)
	r := rng.New(1234)

	var submitted []*Job
	check := func(when string) {
		t.Helper()
		var want []*Job
		for _, j := range submitted {
			if j.State == Pending {
				want = append(want, j)
			}
		}
		got := s.Queue()
		if len(got) != len(want) {
			t.Fatalf("%s: queue has %d jobs, reference %d", when, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: queue[%d] = job %d, reference job %d", when, i, got[i].ID, want[i].ID)
			}
		}
	}

	for step := 0; step < 2000; step++ {
		switch op := r.Intn(10); {
		case op < 6: // submit; big jobs pile up, small ones backfill
			n := 1 + r.Intn(48)
			wall := units.Seconds(1 + r.Intn(40))
			j, err := s.Submit("q", n, wall, nil)
			if err != nil {
				t.Fatal(err)
			}
			submitted = append(submitted, j)
		case op < 8: // cancel a random submitted job (any state)
			if len(submitted) > 0 {
				s.Cancel(submitted[r.Intn(len(submitted))])
			}
		case op == 8: // fail a node, then repair it
			node := r.Intn(48)
			s.MarkUnhealthy(node)
			s.MarkHealthy(node)
		default: // let time pass so jobs finish and the queue drains
			k.RunUntil(k.Now() + units.Seconds(1+r.Intn(5)))
		}
		check("after step")
	}
	k.Run()
	check("after drain")
	if got := s.Queue(); got != nil {
		t.Fatalf("drained scheduler still queues %d jobs", len(got))
	}
}

// Direct jobQueue edge cases the scheduler path may not hit every run:
// tombstone-heavy compaction, head advancement over runs of nils, and
// removing a job that is not queued.
func TestJobQueueCompaction(t *testing.T) {
	var q jobQueue
	mk := func(id int) *Job { return &Job{ID: id, qpos: -1} }

	// Fill, then remove from the middle until compaction must trigger.
	jobs := make([]*Job, 300)
	for i := range jobs {
		jobs[i] = mk(i)
		q.push(jobs[i])
	}
	for i := 0; i < 250; i++ {
		q.remove(jobs[i])
	}
	q.maybeCompact()
	if q.head != 0 || len(q.items) != q.live {
		t.Fatalf("compaction left head=%d len=%d live=%d", q.head, len(q.items), q.live)
	}
	want := 1
	for _, j := range q.snapshot() {
		if j.ID < want {
			t.Fatalf("compaction reordered: saw job %d after %d", j.ID, want)
		}
		want = j.ID
	}
	// qpos survives compaction: removal by pointer still works.
	survivor := q.first()
	q.remove(survivor)
	if survivor.qpos != -1 || q.items[0] != nil {
		t.Error("post-compaction removal by qpos failed")
	}

	// Removing an unqueued job is a no-op.
	stray := mk(999)
	before := q.len()
	q.remove(stray)
	if q.len() != before {
		t.Error("removing an unqueued job changed the queue")
	}

	// Draining through removeFirst resets the backing slice.
	for q.len() > 0 {
		q.removeFirst()
	}
	if len(q.items) != 0 || q.head != 0 {
		t.Errorf("drained queue kept items=%d head=%d", len(q.items), q.head)
	}
}
