// Package scheduler models Frontier's Slurm configuration (§3.4.2):
// exclusive whole-node allocation, a checknode health gate at boot and
// between jobs, a unique Slingshot VNI per job step for traffic
// isolation, EASY backfill, and topology-aware placement — small jobs
// pack tightly into one dragonfly group to minimise global hops, large
// jobs spread evenly across as many groups as possible to maximise the
// global links available to minimal routing.
package scheduler

import (
	"fmt"
	"sort"

	"frontiersim/internal/fabric"
	"frontiersim/internal/job"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// JobState is the lifecycle state of a job.
type JobState int

// Job states.
const (
	Pending JobState = iota
	Running
	Completed
	Failed
	Cancelled
	// Timeout is a phase-structured job killed at its requested walltime
	// before its program finished (duration-blob jobs end exactly at
	// their walltime and complete normally).
	Timeout
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	case Timeout:
		return "timeout"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Job is one batch job. A duration-blob job (Program == nil) runs for
// exactly Walltime; a phase-structured job carries a Program whose
// runtime is derived by binding it to the allocation the scheduler
// actually grants — Walltime is then the *requested* limit quoted from a
// nominal spread placement, and the delivered runtime emerges from the
// placement's collective performance.
type Job struct {
	ID       int
	Name     string
	Nodes    int
	Walltime units.Seconds

	// Program, when set, makes this a phase-structured job.
	Program *job.Program

	State  JobState
	Submit units.Seconds
	Start  units.Seconds
	End    units.Seconds
	// Alloc is the exclusive node allocation.
	Alloc []int
	// VNI is the job step's Virtual Network Identifier.
	VNI int
	// OnComplete, if set, runs when the job finishes (any final state).
	OnComplete func(*Job)

	// Bound is the program priced on the granted allocation (program
	// jobs only, set at start).
	Bound *job.Bound
	// LostWork is the simulated time since the last completed checkpoint
	// at the moment the job failed — the work an interrupt destroyed.
	LostWork units.Seconds
	// Checkpoints is the count of checkpoint phases the job completed.
	Checkpoints int

	exec     *job.Exec
	endEvent sim.Event
}

// Class returns the workload stratum label (program jobs) or the job
// name (blob jobs).
func (j *Job) Class() string {
	if j.Program != nil && j.Program.Class != "" {
		return j.Program.Class
	}
	return j.Name
}

// GroupsSpanned reports how many dragonfly groups the allocation touches.
func (j *Job) GroupsSpanned(f *fabric.Fabric) int {
	gs := map[int]bool{}
	for _, n := range j.Alloc {
		gs[f.EndpointGroup(f.NodeEndpoints(n)[0])] = true
	}
	return len(gs)
}

// Scheduler is the system-level batch scheduler.
type Scheduler struct {
	K *sim.Kernel
	F *fabric.Fabric

	// Env, when set, lets the scheduler accept phase-structured jobs via
	// SubmitProgram: it quotes requested walltimes from a nominal spread
	// placement and re-prices each program on its granted allocation.
	Env *job.Env

	nodesPerGroup int
	groups        int
	totalNodes    int

	free      []bool // per node
	freeCount int
	unhealthy map[int]bool
	queue     []*Job
	running   map[int]*Job
	nextJobID int
	vni       *vniPool
	// scratch is a per-node membership bitmap reused by place's second
	// pass; it is always all-false between calls.
	scratch []bool

	// Stats.
	Started, Finished, FailedJobs, HealthRejects int
}

// New builds a scheduler over the compute nodes of fabric f.
func New(k *sim.Kernel, f *fabric.Fabric) *Scheduler {
	total := f.Cfg.ComputeNodes()
	s := &Scheduler{
		K:             k,
		F:             f,
		nodesPerGroup: f.Cfg.NodesPerGroup(),
		groups:        f.Cfg.ComputeGroups,
		totalNodes:    total,
		free:          make([]bool, total),
		freeCount:     total,
		unhealthy:     map[int]bool{},
		running:       map[int]*Job{},
		nextJobID:     1,
		vni:           newVNIPool(1, 65535),
		scratch:       make([]bool, total),
	}
	for i := range s.free {
		s.free[i] = true
	}
	return s
}

// FreeNodes returns the count of idle healthy nodes.
func (s *Scheduler) FreeNodes() int { return s.freeCount - s.unhealthyFreeCount() }

func (s *Scheduler) unhealthyFreeCount() int {
	n := 0
	for node := range s.unhealthy {
		if s.free[node] {
			n++
		}
	}
	return n
}

// MarkUnhealthy records a node as failing checknode; running jobs on it
// fail immediately (compute nodes are scheduled exclusively, so only one
// job can be affected).
func (s *Scheduler) MarkUnhealthy(node int) {
	if node < 0 || node >= s.totalNodes {
		return
	}
	s.unhealthy[node] = true
	for _, j := range s.running {
		for _, n := range j.Alloc {
			if n == node {
				s.finish(j, Failed)
				return
			}
		}
	}
}

// MarkHealthy returns a repaired node to service.
func (s *Scheduler) MarkHealthy(node int) {
	delete(s.unhealthy, node)
	s.trySchedule()
}

// Checknode is the health gate Slurm runs at boot and between jobs.
func (s *Scheduler) Checknode(node int) bool { return !s.unhealthy[node] }

// Submit enqueues a job and attempts to schedule. It returns the job so
// callers can watch its state.
func (s *Scheduler) Submit(name string, nodes int, walltime units.Seconds, onComplete func(*Job)) (*Job, error) {
	if nodes < 1 || nodes > s.totalNodes {
		return nil, fmt.Errorf("scheduler: job needs 1..%d nodes, got %d", s.totalNodes, nodes)
	}
	if walltime <= 0 {
		return nil, fmt.Errorf("scheduler: walltime must be positive")
	}
	j := &Job{
		ID:         s.nextJobID,
		Name:       name,
		Nodes:      nodes,
		Walltime:   walltime,
		State:      Pending,
		Submit:     s.K.Now(),
		OnComplete: onComplete,
	}
	s.nextJobID++
	s.queue = append(s.queue, j)
	s.trySchedule()
	return j, nil
}

// walltimeMargin is the slack a phase-structured job requests over its
// nominal estimate, covering the spread between the quoted placement and
// the one actually granted (users pad their Slurm walltimes the same way).
const walltimeMargin = 1.25

// SubmitProgram enqueues a phase-structured job. The requested walltime
// is derived from the program itself — priced on a nominal spread
// placement and padded by walltimeMargin — so callers never supply a
// duration; the delivered runtime is whatever the granted placement
// yields.
func (s *Scheduler) SubmitProgram(p *job.Program, onComplete func(*Job)) (*Job, error) {
	if s.Env == nil {
		return nil, fmt.Errorf("scheduler: no job env configured, cannot accept program %q", p.Name)
	}
	est, err := s.Env.Estimate(p)
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:         s.nextJobID,
		Name:       p.Name,
		Nodes:      p.Nodes,
		Walltime:   est * walltimeMargin,
		Program:    p,
		State:      Pending,
		Submit:     s.K.Now(),
		OnComplete: onComplete,
	}
	s.nextJobID++
	s.queue = append(s.queue, j)
	s.trySchedule()
	return j, nil
}

// Cancel removes a pending job or kills a running one.
func (s *Scheduler) Cancel(j *Job) {
	switch j.State {
	case Pending:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.State = Cancelled
		if j.OnComplete != nil {
			j.OnComplete(j)
		}
	case Running:
		s.finish(j, Cancelled)
	}
}

// Queue returns the pending jobs in order.
func (s *Scheduler) Queue() []*Job { return append([]*Job(nil), s.queue...) }

// Running returns the currently running jobs.
func (s *Scheduler) Running() []*Job {
	out := make([]*Job, 0, len(s.running))
	for _, j := range s.running {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// trySchedule starts the queue head if it fits, then EASY-backfills: a
// later job may jump ahead only if starting it now cannot delay the
// head's reservation.
func (s *Scheduler) trySchedule() {
	for len(s.queue) > 0 {
		if !s.start(s.queue[0]) {
			break
		}
		s.queue = s.queue[1:]
	}
	if len(s.queue) == 0 {
		return
	}
	head := s.queue[0]
	resTime, nodesAtRes := s.reservation(head)
	for i := 1; i < len(s.queue); {
		j := s.queue[i]
		fitsNow := j.Nodes <= s.FreeNodes()
		noDelay := s.K.Now()+j.Walltime <= resTime || s.FreeNodes()-j.Nodes >= nodesAtRes
		if fitsNow && noDelay && s.start(j) {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			continue
		}
		i++
	}
}

// reservation estimates when the head job can start: walk running jobs by
// end time accumulating freed nodes.
func (s *Scheduler) reservation(head *Job) (units.Seconds, int) {
	free := s.FreeNodes()
	if free >= head.Nodes {
		return s.K.Now(), head.Nodes
	}
	ends := make([]*Job, 0, len(s.running))
	for _, j := range s.running {
		ends = append(ends, j)
	}
	sort.Slice(ends, func(i, k int) bool { return ends[i].End < ends[k].End })
	for _, j := range ends {
		free += len(j.Alloc)
		if free >= head.Nodes {
			return j.End, head.Nodes
		}
	}
	return s.K.Now() + head.Walltime, head.Nodes // unreachable in practice
}

// start attempts to place and launch a job; reports success.
func (s *Scheduler) start(j *Job) bool {
	alloc := s.place(j.Nodes)
	if alloc == nil {
		return false
	}
	vni, ok := s.vni.acquire()
	if !ok {
		return false
	}
	j.Alloc = alloc
	j.VNI = vni
	j.State = Running
	j.Start = s.K.Now()
	j.End = j.Start + j.Walltime
	for _, n := range alloc {
		s.free[n] = false
	}
	s.freeCount -= len(alloc)
	s.running[j.ID] = j
	s.Started++
	if j.Program != nil {
		s.launch(j)
	} else {
		j.endEvent = s.K.At(j.End, func() { s.finish(j, Completed) })
	}
	return true
}

// launch binds a program job to its granted allocation and begins
// executing it on the event kernel. Completion is driven by the
// program's last phase boundary; the requested walltime survives only as
// a kill limit, exactly like Slurm's TIMEOUT.
func (s *Scheduler) launch(j *Job) {
	bound, err := s.Env.Bind(j.Program, j.Alloc)
	if err != nil {
		// A program that cannot be priced on real nodes is a launch
		// failure, not a scheduler crash. Failing via an immediate event
		// keeps finish() out of the trySchedule loop that called start.
		j.endEvent = s.K.After(0, func() { s.finish(j, Failed) })
		return
	}
	j.Bound = bound
	if bound.Total <= j.Walltime {
		j.End = j.Start + bound.Total
	}
	j.exec = (&job.Exec{Bound: bound, K: s.K, OnDone: func() { s.finish(j, Completed) }}).Start()
	if bound.Total > j.Walltime {
		j.endEvent = s.K.At(j.Start+j.Walltime, func() { s.finish(j, Timeout) })
	}
}

func (s *Scheduler) finish(j *Job, state JobState) {
	if j.State != Running {
		return
	}
	j.endEvent.Cancel()
	if j.exec != nil {
		// Interrupts and kills land mid-phase: charge the work since the
		// last completed checkpoint before abandoning the partial phase.
		if state != Completed {
			j.LostWork = j.exec.LostWork()
		}
		j.Checkpoints = j.exec.Checkpoints
		j.exec.Stop()
	}
	j.State = state
	j.End = s.K.Now()
	delete(s.running, j.ID)
	for _, n := range j.Alloc {
		// checknode between jobs: unhealthy nodes stay out of the pool
		// but are still marked free so repairs can return them.
		s.free[n] = true
	}
	s.freeCount += len(j.Alloc)
	s.vni.release(j.VNI)
	s.Finished++
	if state == Failed {
		s.FailedJobs++
	}
	if j.OnComplete != nil {
		j.OnComplete(j)
	}
	s.trySchedule()
}

// place chooses nodes for a job of size n, or nil if it cannot fit now.
func (s *Scheduler) place(n int) []int {
	type groupFree struct{ id, free int }
	gf := make([]groupFree, s.groups)
	for g := range gf {
		gf[g].id = g
	}
	for node := 0; node < s.totalNodes; node++ {
		if s.free[node] && !s.unhealthy[node] {
			gf[node/s.nodesPerGroup].free++
		}
	}
	if n <= s.nodesPerGroup {
		// Pack: best-fit group (smallest free count that fits) to keep
		// large contiguous blocks available.
		best := -1
		for _, g := range gf {
			if g.free >= n && (best == -1 || g.free < gf[best].free) {
				best = g.id
			}
		}
		if best >= 0 {
			return s.takeFromGroup(best, n)
		}
		// No single group fits; fall through to spreading.
	}
	totalFree := 0
	for _, g := range gf {
		totalFree += g.free
	}
	if totalFree < n {
		return nil
	}
	// Spread: allocate round-robin from the groups with the most free
	// nodes so the job touches as many groups as evenly as possible.
	sort.Slice(gf, func(i, k int) bool {
		if gf[i].free != gf[k].free {
			return gf[i].free > gf[k].free
		}
		return gf[i].id < gf[k].id
	})
	var alloc []int
	remaining := n
	// First pass: equal share per group.
	groupsWithFree := 0
	for _, g := range gf {
		if g.free > 0 {
			groupsWithFree++
		}
	}
	share := (n + groupsWithFree - 1) / groupsWithFree
	for _, g := range gf {
		if remaining == 0 {
			break
		}
		take := share
		if take > g.free {
			take = g.free
		}
		if take > remaining {
			take = remaining
		}
		alloc = append(alloc, s.takeFromGroup(g.id, take)...)
		remaining -= take
	}
	// Second pass: whatever is left, wherever it fits. The scratch
	// bitmap makes the membership check O(1) per node; the old linear
	// scan of alloc was quadratic at hero-job scale (9k+ nodes).
	if remaining > 0 {
		taken := s.scratch
		for _, a := range alloc {
			taken[a] = true
		}
		for node := 0; node < s.totalNodes && remaining > 0; node++ {
			if s.free[node] && !s.unhealthy[node] && !taken[node] {
				taken[node] = true
				alloc = append(alloc, node)
				remaining--
			}
		}
		for _, a := range alloc {
			taken[a] = false
		}
	}
	if remaining > 0 {
		return nil
	}
	sort.Ints(alloc)
	return alloc
}

func (s *Scheduler) takeFromGroup(g, n int) []int {
	out := make([]int, 0, n)
	start := g * s.nodesPerGroup
	for node := start; node < start+s.nodesPerGroup && len(out) < n; node++ {
		if s.free[node] && !s.unhealthy[node] {
			out = append(out, node)
		}
	}
	return out
}

// vniPool hands out unique Virtual Network Identifiers.
type vniPool struct {
	next, lo, hi int
	inUse        map[int]bool
}

func newVNIPool(lo, hi int) *vniPool {
	return &vniPool{next: lo, lo: lo, hi: hi, inUse: map[int]bool{}}
}

func (p *vniPool) acquire() (int, bool) {
	for scanned := 0; scanned <= p.hi-p.lo; scanned++ {
		v := p.next
		p.next++
		if p.next > p.hi {
			p.next = p.lo
		}
		if !p.inUse[v] {
			p.inUse[v] = true
			return v, true
		}
	}
	return 0, false
}

func (p *vniPool) release(v int) { delete(p.inUse, v) }
