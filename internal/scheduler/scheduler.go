// Package scheduler models Frontier's Slurm configuration (§3.4.2):
// exclusive whole-node allocation, a checknode health gate at boot and
// between jobs, a unique Slingshot VNI per job step for traffic
// isolation, EASY backfill, and topology-aware placement — small jobs
// pack tightly into one dragonfly group to minimise global hops, large
// jobs spread evenly across as many groups as possible to maximise the
// global links available to minimal routing.
//
// The hot paths are indexed for full-machine campaigns: a per-group
// free-count table and a free-node bitmap (bit set ⟺ free AND healthy)
// make place() near-O(groups) instead of O(nodes), a per-node running-job
// table makes failure attribution O(1), and the pending queue is an
// index-tracked structure with tombstoned removal so backfill never pays
// the old O(n) slice deletes. All index structures are pure accelerators:
// placement decisions, queue order, and therefore every downstream RNG
// draw are bit-identical to the linear-scan implementation they replace.
package scheduler

import (
	"fmt"
	"math/bits"
	"sort"

	"frontiersim/internal/fabric"
	"frontiersim/internal/job"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// JobState is the lifecycle state of a job.
type JobState int

// Job states.
const (
	Pending JobState = iota
	Running
	Completed
	Failed
	Cancelled
	// Timeout is a phase-structured job killed at its requested walltime
	// before its program finished (duration-blob jobs end exactly at
	// their walltime and complete normally).
	Timeout
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	case Timeout:
		return "timeout"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Job is one batch job. A duration-blob job (Program == nil) runs for
// exactly Walltime; a phase-structured job carries a Program whose
// runtime is derived by binding it to the allocation the scheduler
// actually grants — Walltime is then the *requested* limit quoted from a
// nominal spread placement, and the delivered runtime emerges from the
// placement's collective performance.
type Job struct {
	ID       int
	Name     string
	Nodes    int
	Walltime units.Seconds

	// Program, when set, makes this a phase-structured job.
	Program *job.Program

	State  JobState
	Submit units.Seconds
	Start  units.Seconds
	End    units.Seconds
	// Alloc is the exclusive node allocation.
	Alloc []int
	// VNI is the job step's Virtual Network Identifier.
	VNI int
	// OnComplete, if set, runs when the job finishes (any final state).
	OnComplete func(*Job)

	// Bound is the program priced on the granted allocation (program
	// jobs only, set at start).
	Bound *job.Bound
	// LostWork is the simulated time since the last completed checkpoint
	// at the moment the job failed — the work an interrupt destroyed.
	LostWork units.Seconds
	// Checkpoints is the count of checkpoint phases the job completed.
	Checkpoints int

	exec     *job.Exec
	endEvent sim.Event
	// qpos is the job's slot in the pending queue, -1 when not queued.
	qpos int
}

// Class returns the workload stratum label (program jobs) or the job
// name (blob jobs).
func (j *Job) Class() string {
	if j.Program != nil && j.Program.Class != "" {
		return j.Program.Class
	}
	return j.Name
}

// GroupsSpanned reports how many dragonfly groups the allocation touches.
func (j *Job) GroupsSpanned(f *fabric.Fabric) int {
	gs := map[int]bool{}
	for _, n := range j.Alloc {
		gs[f.EndpointGroup(f.NodeEndpoints(n)[0])] = true
	}
	return len(gs)
}

// Scheduler is the system-level batch scheduler.
type Scheduler struct {
	K *sim.Kernel
	F *fabric.Fabric

	// Env, when set, lets the scheduler accept phase-structured jobs via
	// SubmitProgram: it quotes requested walltimes from a nominal spread
	// placement and re-prices each program on its granted allocation.
	Env *job.Env

	// BackfillDepth bounds how many pending jobs one EASY backfill pass
	// examines behind the queue head; 0 scans the whole queue. Bounding
	// the scan is how real schedulers keep a deep queue cheap; it can
	// only *skip* backfill starts, never reorder them.
	BackfillDepth int

	nodesPerGroup int
	groups        int
	totalNodes    int

	free      []bool // per node: idle, healthy or not
	unhealthy []bool // per node: failing checknode
	// freeBits is the scheduling index: bit n set ⟺ free[n] && !unhealthy[n].
	// groupFree and freeHealthy are its per-group and global popcounts.
	freeBits    []uint64
	groupFree   []int
	freeHealthy int
	// nodeJob maps an allocated node to the job running on it (exclusive
	// allocation: at most one).
	nodeJob []*Job

	queue     jobQueue
	running   map[int]*Job
	nextJobID int
	vni       *vniPool
	// scratch is a per-node membership bitmap reused by place's second
	// pass; it is always all-false between calls.
	scratch []bool
	// gfScratch is place's reusable (group, free) working slice.
	gfScratch []groupFreeCount

	// Stats.
	Started, Finished, FailedJobs, HealthRejects int
}

type groupFreeCount struct{ id, free int }

// New builds a scheduler over the compute nodes of fabric f.
func New(k *sim.Kernel, f *fabric.Fabric) *Scheduler {
	total := f.Cfg.ComputeNodes()
	s := &Scheduler{
		K:             k,
		F:             f,
		nodesPerGroup: f.Cfg.NodesPerGroup(),
		groups:        f.Cfg.ComputeGroups,
		totalNodes:    total,
		free:          make([]bool, total),
		unhealthy:     make([]bool, total),
		freeBits:      make([]uint64, (total+63)/64),
		groupFree:     make([]int, f.Cfg.ComputeGroups),
		freeHealthy:   total,
		nodeJob:       make([]*Job, total),
		running:       map[int]*Job{},
		nextJobID:     1,
		vni:           newVNIPool(1, 65535),
		scratch:       make([]bool, total),
		gfScratch:     make([]groupFreeCount, 0, f.Cfg.ComputeGroups),
	}
	for i := range s.free {
		s.free[i] = true
		s.freeBits[i>>6] |= 1 << (i & 63)
	}
	for g := range s.groupFree {
		s.groupFree[g] = s.nodesPerGroup
	}
	return s
}

// setFree adds node to the scheduling index (it must be absent).
func (s *Scheduler) setFree(node int) {
	s.freeBits[node>>6] |= 1 << (node & 63)
	s.groupFree[node/s.nodesPerGroup]++
	s.freeHealthy++
}

// clearFree removes node from the scheduling index (it must be present).
func (s *Scheduler) clearFree(node int) {
	s.freeBits[node>>6] &^= 1 << (node & 63)
	s.groupFree[node/s.nodesPerGroup]--
	s.freeHealthy--
}

// FreeNodes returns the count of idle healthy nodes.
func (s *Scheduler) FreeNodes() int { return s.freeHealthy }

// MarkUnhealthy records a node as failing checknode; running jobs on it
// fail immediately (compute nodes are scheduled exclusively, so only one
// job can be affected).
func (s *Scheduler) MarkUnhealthy(node int) {
	if node < 0 || node >= s.totalNodes {
		return
	}
	if !s.unhealthy[node] {
		s.unhealthy[node] = true
		if s.free[node] {
			s.clearFree(node)
		}
	}
	if j := s.nodeJob[node]; j != nil {
		s.finish(j, Failed)
	}
}

// MarkHealthy returns a repaired node to service.
func (s *Scheduler) MarkHealthy(node int) {
	if node >= 0 && node < s.totalNodes && s.unhealthy[node] {
		s.unhealthy[node] = false
		if s.free[node] {
			s.setFree(node)
		}
	}
	s.trySchedule()
}

// Checknode is the health gate Slurm runs at boot and between jobs.
func (s *Scheduler) Checknode(node int) bool {
	return node >= 0 && node < s.totalNodes && !s.unhealthy[node]
}

// Submit enqueues a job and attempts to schedule. It returns the job so
// callers can watch its state.
func (s *Scheduler) Submit(name string, nodes int, walltime units.Seconds, onComplete func(*Job)) (*Job, error) {
	if nodes < 1 || nodes > s.totalNodes {
		return nil, fmt.Errorf("scheduler: job needs 1..%d nodes, got %d", s.totalNodes, nodes)
	}
	if walltime <= 0 {
		return nil, fmt.Errorf("scheduler: walltime must be positive")
	}
	j := &Job{
		ID:         s.nextJobID,
		Name:       name,
		Nodes:      nodes,
		Walltime:   walltime,
		State:      Pending,
		Submit:     s.K.Now(),
		OnComplete: onComplete,
		qpos:       -1,
	}
	s.nextJobID++
	s.queue.push(j)
	s.trySchedule()
	return j, nil
}

// walltimeMargin is the slack a phase-structured job requests over its
// nominal estimate, covering the spread between the quoted placement and
// the one actually granted (users pad their Slurm walltimes the same way).
const walltimeMargin = 1.25

// SubmitProgram enqueues a phase-structured job. The requested walltime
// is derived from the program itself — priced on a nominal spread
// placement and padded by walltimeMargin — so callers never supply a
// duration; the delivered runtime is whatever the granted placement
// yields.
func (s *Scheduler) SubmitProgram(p *job.Program, onComplete func(*Job)) (*Job, error) {
	if s.Env == nil {
		return nil, fmt.Errorf("scheduler: no job env configured, cannot accept program %q", p.Name)
	}
	est, err := s.Env.Estimate(p)
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:         s.nextJobID,
		Name:       p.Name,
		Nodes:      p.Nodes,
		Walltime:   est * walltimeMargin,
		Program:    p,
		State:      Pending,
		Submit:     s.K.Now(),
		OnComplete: onComplete,
		qpos:       -1,
	}
	s.nextJobID++
	s.queue.push(j)
	s.trySchedule()
	return j, nil
}

// Cancel removes a pending job or kills a running one.
func (s *Scheduler) Cancel(j *Job) {
	switch j.State {
	case Pending:
		s.queue.remove(j)
		j.State = Cancelled
		if j.OnComplete != nil {
			j.OnComplete(j)
		}
	case Running:
		s.finish(j, Cancelled)
	}
}

// Queue returns the pending jobs in order.
func (s *Scheduler) Queue() []*Job { return s.queue.snapshot() }

// Running returns the currently running jobs.
func (s *Scheduler) Running() []*Job {
	out := make([]*Job, 0, len(s.running))
	for _, j := range s.running {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// trySchedule starts the queue head if it fits, then EASY-backfills: a
// later job may jump ahead only if starting it now cannot delay the
// head's reservation.
func (s *Scheduler) trySchedule() {
	for s.queue.len() > 0 {
		if !s.start(s.queue.first()) {
			break
		}
		s.queue.removeFirst()
	}
	if s.queue.len() == 0 || s.freeHealthy == 0 {
		// An empty machine cannot backfill anything; skipping the scan
		// changes no decisions (no job fits), only the cost of making none.
		return
	}
	head := s.queue.first()
	resTime, nodesAtRes := s.reservation(head)
	scanned := 0
	for i := s.queue.head + 1; i < len(s.queue.items); i++ {
		j := s.queue.items[i]
		if j == nil {
			continue
		}
		if s.freeHealthy == 0 {
			break
		}
		scanned++
		if s.BackfillDepth > 0 && scanned > s.BackfillDepth {
			break
		}
		fitsNow := j.Nodes <= s.FreeNodes()
		noDelay := s.K.Now()+j.Walltime <= resTime || s.FreeNodes()-j.Nodes >= nodesAtRes
		if fitsNow && noDelay && s.start(j) {
			s.queue.removeAt(i)
		}
	}
	s.queue.maybeCompact()
}

// reservation estimates when the head job can start: walk running jobs by
// end time accumulating freed nodes.
func (s *Scheduler) reservation(head *Job) (units.Seconds, int) {
	free := s.FreeNodes()
	if free >= head.Nodes {
		return s.K.Now(), head.Nodes
	}
	ends := make([]*Job, 0, len(s.running))
	for _, j := range s.running {
		ends = append(ends, j)
	}
	sort.Slice(ends, func(i, k int) bool { return ends[i].End < ends[k].End })
	for _, j := range ends {
		free += len(j.Alloc)
		if free >= head.Nodes {
			return j.End, head.Nodes
		}
	}
	return s.K.Now() + head.Walltime, head.Nodes // unreachable in practice
}

// start attempts to place and launch a job; reports success.
func (s *Scheduler) start(j *Job) bool {
	alloc := s.place(j.Nodes)
	if alloc == nil {
		return false
	}
	vni, ok := s.vni.acquire()
	if !ok {
		return false
	}
	j.Alloc = alloc
	j.VNI = vni
	j.State = Running
	j.Start = s.K.Now()
	j.End = j.Start + j.Walltime
	for _, n := range alloc {
		s.free[n] = false
		s.clearFree(n)
		s.nodeJob[n] = j
	}
	s.running[j.ID] = j
	s.Started++
	if j.Program != nil {
		s.launch(j)
	} else {
		j.endEvent = s.K.At(j.End, func() { s.finish(j, Completed) })
	}
	return true
}

// launch binds a program job to its granted allocation and begins
// executing it on the event kernel. Completion is driven by the
// program's last phase boundary; the requested walltime survives only as
// a kill limit, exactly like Slurm's TIMEOUT.
func (s *Scheduler) launch(j *Job) {
	bound, err := s.Env.Bind(j.Program, j.Alloc)
	if err != nil {
		// A program that cannot be priced on real nodes is a launch
		// failure, not a scheduler crash. Failing via an immediate event
		// keeps finish() out of the trySchedule loop that called start.
		j.endEvent = s.K.After(0, func() { s.finish(j, Failed) })
		return
	}
	j.Bound = bound
	if bound.Total <= j.Walltime {
		j.End = j.Start + bound.Total
	}
	j.exec = (&job.Exec{Bound: bound, K: s.K, OnDone: func() { s.finish(j, Completed) }}).Start()
	if bound.Total > j.Walltime {
		j.endEvent = s.K.At(j.Start+j.Walltime, func() { s.finish(j, Timeout) })
	}
}

func (s *Scheduler) finish(j *Job, state JobState) {
	if j.State != Running {
		return
	}
	j.endEvent.Cancel()
	if j.exec != nil {
		// Interrupts and kills land mid-phase: charge the work since the
		// last completed checkpoint before abandoning the partial phase.
		if state != Completed {
			j.LostWork = j.exec.LostWork()
		}
		j.Checkpoints = j.exec.Checkpoints
		j.exec.Stop()
	}
	j.State = state
	j.End = s.K.Now()
	delete(s.running, j.ID)
	for _, n := range j.Alloc {
		// checknode between jobs: unhealthy nodes stay out of the pool
		// but are still marked free so repairs can return them.
		s.free[n] = true
		s.nodeJob[n] = nil
		if !s.unhealthy[n] {
			s.setFree(n)
		}
	}
	s.vni.release(j.VNI)
	s.Finished++
	if state == Failed {
		s.FailedJobs++
	}
	if j.OnComplete != nil {
		j.OnComplete(j)
	}
	s.trySchedule()
}

// place chooses nodes for a job of size n, or nil if it cannot fit now.
// It only reads the scheduling index; start() commits the allocation.
func (s *Scheduler) place(n int) []int {
	if n <= s.nodesPerGroup {
		// Pack: best-fit group (smallest free count that fits) to keep
		// large contiguous blocks available.
		best := -1
		for g := 0; g < s.groups; g++ {
			f := s.groupFree[g]
			if f >= n && (best == -1 || f < s.groupFree[best]) {
				best = g
			}
		}
		if best >= 0 {
			return s.takeFromGroup(best, n)
		}
		// No single group fits; fall through to spreading.
	}
	if s.freeHealthy < n {
		return nil
	}
	// Spread: allocate round-robin from the groups with the most free
	// nodes so the job touches as many groups as evenly as possible.
	gf := s.gfScratch[:0]
	for g := 0; g < s.groups; g++ {
		gf = append(gf, groupFreeCount{id: g, free: s.groupFree[g]})
	}
	sort.Slice(gf, func(i, k int) bool {
		if gf[i].free != gf[k].free {
			return gf[i].free > gf[k].free
		}
		return gf[i].id < gf[k].id
	})
	var alloc []int
	remaining := n
	// First pass: equal share per group.
	groupsWithFree := 0
	for _, g := range gf {
		if g.free > 0 {
			groupsWithFree++
		}
	}
	share := (n + groupsWithFree - 1) / groupsWithFree
	for _, g := range gf {
		if remaining == 0 {
			break
		}
		take := share
		if take > g.free {
			take = g.free
		}
		if take > remaining {
			take = remaining
		}
		alloc = append(alloc, s.takeFromGroup(g.id, take)...)
		remaining -= take
	}
	// Second pass: whatever is left, wherever it fits, in ascending node
	// order off the free bitmap; the scratch bitmap keeps the membership
	// check O(1) per node.
	if remaining > 0 {
		taken := s.scratch
		for _, a := range alloc {
			taken[a] = true
		}
		for node := 0; node < s.totalNodes && remaining > 0; {
			w := s.freeBits[node>>6] >> (node & 63)
			if w == 0 {
				node = (node &^ 63) + 64
				continue
			}
			node += bits.TrailingZeros64(w)
			if node >= s.totalNodes {
				break
			}
			if !taken[node] {
				taken[node] = true
				alloc = append(alloc, node)
				remaining--
			}
			node++
		}
		for _, a := range alloc {
			taken[a] = false
		}
	}
	if remaining > 0 {
		return nil
	}
	sort.Ints(alloc)
	return alloc
}

// takeFromGroup collects up to n free healthy nodes from group g in
// ascending node order — the same order the old linear scan produced,
// now walked off the free bitmap.
func (s *Scheduler) takeFromGroup(g, n int) []int {
	out := make([]int, 0, n)
	start := g * s.nodesPerGroup
	end := start + s.nodesPerGroup
	if end > s.totalNodes {
		end = s.totalNodes
	}
	for node := start; node < end && len(out) < n; {
		w := s.freeBits[node>>6] >> (node & 63)
		if w == 0 {
			node = (node &^ 63) + 64
			continue
		}
		node += bits.TrailingZeros64(w)
		if node >= end {
			break
		}
		out = append(out, node)
		node++
	}
	return out
}

// jobQueue is the pending queue: FIFO order with O(1) removal anywhere.
// Removed slots become nil tombstones (each job tracks its slot in
// qpos); the slice compacts in place once tombstones dominate, so a
// year-long campaign never pays the old O(n) delete per backfill start.
type jobQueue struct {
	items []*Job
	head  int // index of the first live entry (all earlier slots are nil)
	live  int
}

func (q *jobQueue) len() int { return q.live }

func (q *jobQueue) push(j *Job) {
	j.qpos = len(q.items)
	q.items = append(q.items, j)
	q.live++
}

// first returns the oldest pending job; the queue must be non-empty.
func (q *jobQueue) first() *Job { return q.items[q.head] }

func (q *jobQueue) removeFirst() { q.removeAt(q.head) }

func (q *jobQueue) removeAt(i int) {
	q.items[i].qpos = -1
	q.items[i] = nil
	q.live--
	if i == q.head {
		q.advanceHead()
	}
}

func (q *jobQueue) remove(j *Job) {
	if j.qpos >= 0 && j.qpos < len(q.items) && q.items[j.qpos] == j {
		q.removeAt(j.qpos)
	}
}

func (q *jobQueue) advanceHead() {
	for q.head < len(q.items) && q.items[q.head] == nil {
		q.head++
	}
	if q.live == 0 {
		q.items = q.items[:0]
		q.head = 0
	}
}

// maybeCompact squeezes tombstones out once they outnumber live entries
// by a margin, preserving order and re-indexing qpos.
func (q *jobQueue) maybeCompact() {
	if len(q.items)-q.live <= q.live+64 {
		return
	}
	w := 0
	for _, j := range q.items {
		if j != nil {
			j.qpos = w
			q.items[w] = j
			w++
		}
	}
	q.items = q.items[:w]
	q.head = 0
}

// snapshot returns the live jobs in queue order.
func (q *jobQueue) snapshot() []*Job {
	if q.live == 0 {
		return nil
	}
	out := make([]*Job, 0, q.live)
	for _, j := range q.items[q.head:] {
		if j != nil {
			out = append(out, j)
		}
	}
	return out
}

// vniPool hands out unique Virtual Network Identifiers.
type vniPool struct {
	next, lo, hi int
	inUse        map[int]bool
}

func newVNIPool(lo, hi int) *vniPool {
	return &vniPool{next: lo, lo: lo, hi: hi, inUse: map[int]bool{}}
}

func (p *vniPool) acquire() (int, bool) {
	for scanned := 0; scanned <= p.hi-p.lo; scanned++ {
		v := p.next
		p.next++
		if p.next > p.hi {
			p.next = p.lo
		}
		if !p.inUse[v] {
			p.inUse[v] = true
			return v, true
		}
	}
	return 0, false
}

func (p *vniPool) release(v int) { delete(p.inUse, v) }
