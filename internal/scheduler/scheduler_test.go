package scheduler

import (
	"testing"
	"testing/quick"

	"frontiersim/internal/fabric"
	"frontiersim/internal/machine"
	"frontiersim/internal/sim"
	"frontiersim/internal/units"
)

// testRig: 6 groups x 8 switches x 4 endpoints = 48 nodes, 8 per group.
func testRig(t *testing.T) (*sim.Kernel, *fabric.Fabric, *Scheduler) {
	t.Helper()
	k := sim.NewKernel(1)
	f, err := machine.Scaled(6, 8, 4).NewFabric()
	if err != nil {
		t.Fatal(err)
	}
	return k, f, New(k, f)
}

func TestSmallJobPacksIntoOneGroup(t *testing.T) {
	k, f, s := testRig(t)
	j, err := s.Submit("small", 6, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Running {
		t.Fatalf("job state = %v, want running", j.State)
	}
	if got := j.GroupsSpanned(f); got != 1 {
		t.Errorf("small job spans %d groups, want 1 (packed)", got)
	}
	k.Run()
	if j.State != Completed {
		t.Errorf("state = %v, want completed", j.State)
	}
}

func TestLargeJobSpreadsAcrossGroups(t *testing.T) {
	_, f, s := testRig(t)
	j, err := s.Submit("big", 30, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.GroupsSpanned(f); got < 5 {
		t.Errorf("large job spans %d groups, want spread over >=5", got)
	}
	// Spread should be even: no group should hold more than ceil share+1.
	counts := map[int]int{}
	for _, n := range j.Alloc {
		counts[f.EndpointGroup(f.NodeEndpoints(n)[0])]++
	}
	for g, c := range counts {
		if c > 6 {
			t.Errorf("group %d holds %d nodes of a 30-node job; want even spread", g, c)
		}
	}
}

func TestExclusiveAllocation(t *testing.T) {
	_, _, s := testRig(t)
	j1, _ := s.Submit("a", 30, 100, nil)
	j2, _ := s.Submit("b", 30, 100, nil)
	if j2.State == Running {
		t.Fatal("second 30-node job cannot run on 48 nodes concurrently")
	}
	seen := map[int]bool{}
	for _, n := range j1.Alloc {
		if seen[n] {
			t.Fatal("duplicate node in allocation")
		}
		seen[n] = true
	}
}

func TestFIFOCompletionStartsNext(t *testing.T) {
	k, _, s := testRig(t)
	j1, _ := s.Submit("a", 40, 50, nil)
	j2, _ := s.Submit("b", 40, 50, nil)
	k.Run()
	if j1.State != Completed || j2.State != Completed {
		t.Fatalf("states = %v, %v", j1.State, j2.State)
	}
	if j2.Start < j1.End {
		t.Error("j2 must start after j1 frees nodes")
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	k, _, s := testRig(t)
	// j1 occupies 40 nodes until t=100. Head job j2 needs all 48 and
	// must wait. j3 needs 8 nodes for 50s: it fits now and ends before
	// j2's reservation, so EASY backfill should start it immediately.
	j1, _ := s.Submit("base", 40, 100, nil)
	j2, _ := s.Submit("head", 48, 100, nil)
	j3, _ := s.Submit("filler", 8, 50, nil)
	if j3.State != Running {
		t.Error("backfill should start the filler immediately")
	}
	// j4 would run past the reservation and needs nodes the head will
	// use; it must NOT start.
	j4, _ := s.Submit("blocker", 8, 500, nil)
	if j4.State == Running {
		t.Error("backfill must not delay the head job")
	}
	k.Run()
	if j2.Start != j1.End {
		t.Errorf("head started at %v, want %v (no delay)", j2.Start, j1.End)
	}
	_ = j2
}

func TestVNIUniqueness(t *testing.T) {
	_, _, s := testRig(t)
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit("j", 8, 100, nil)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	seen := map[int]bool{}
	for _, j := range jobs {
		if j.State != Running {
			t.Fatalf("job %d not running", j.ID)
		}
		if seen[j.VNI] {
			t.Fatalf("VNI %d reused across concurrent jobs", j.VNI)
		}
		seen[j.VNI] = true
	}
}

func TestVNIReleasedAfterCompletion(t *testing.T) {
	k, _, s := testRig(t)
	for i := 0; i < 100; i++ {
		if _, err := s.Submit("j", 48, 10, nil); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if s.Finished != 100 {
		t.Errorf("finished = %d, want 100", s.Finished)
	}
}

func TestChecknodeGate(t *testing.T) {
	_, _, s := testRig(t)
	s.MarkUnhealthy(0)
	if s.Checknode(0) {
		t.Error("node 0 should fail checknode")
	}
	j, _ := s.Submit("j", 48, 100, nil)
	if j.State == Running {
		t.Error("48-node job cannot run with one node unhealthy")
	}
	// A 47-node job runs and avoids the sick node.
	j2, _ := s.Submit("j2", 47, 100, nil)
	if j2.State != Running {
		t.Fatal("47-node job should run")
	}
	for _, n := range j2.Alloc {
		if n == 0 {
			t.Error("allocation includes unhealthy node")
		}
	}
}

func TestNodeFailureKillsJob(t *testing.T) {
	k, _, s := testRig(t)
	var final JobState
	j, _ := s.Submit("victim", 8, 1000, func(j *Job) { final = j.State })
	if j.State != Running {
		t.Fatal("job should run")
	}
	k.After(10, func() { s.MarkUnhealthy(j.Alloc[0]) })
	k.RunUntil(20)
	if final != Failed {
		t.Errorf("final state = %v, want failed", final)
	}
	if s.FailedJobs != 1 {
		t.Errorf("failed count = %d, want 1", s.FailedJobs)
	}
	// Node stays out of the pool until repaired.
	j2, _ := s.Submit("next", 48, 10, nil)
	if j2.State == Running {
		t.Error("full-machine job should wait for repair")
	}
	s.MarkHealthy(j.Alloc[0])
	if j2.State != Running {
		t.Error("repair should release the waiting job")
	}
}

func TestCancel(t *testing.T) {
	k, _, s := testRig(t)
	j1, _ := s.Submit("running", 48, 100, nil)
	j2, _ := s.Submit("queued", 8, 100, nil)
	s.Cancel(j2)
	if j2.State != Cancelled {
		t.Errorf("queued cancel = %v", j2.State)
	}
	s.Cancel(j1)
	if j1.State != Cancelled {
		t.Errorf("running cancel = %v", j1.State)
	}
	if s.FreeNodes() != 48 {
		t.Errorf("free = %d, want 48 after cancels", s.FreeNodes())
	}
	k.Run()
}

func TestSubmitValidation(t *testing.T) {
	_, _, s := testRig(t)
	if _, err := s.Submit("bad", 0, 100, nil); err == nil {
		t.Error("0 nodes should error")
	}
	if _, err := s.Submit("bad", 1000, 100, nil); err == nil {
		t.Error("oversized job should error")
	}
	if _, err := s.Submit("bad", 1, 0, nil); err == nil {
		t.Error("zero walltime should error")
	}
}

func TestQueueAndRunningViews(t *testing.T) {
	_, _, s := testRig(t)
	s.Submit("a", 48, 100, nil)
	s.Submit("b", 48, 100, nil)
	if len(s.Running()) != 1 || len(s.Queue()) != 1 {
		t.Errorf("running=%d queued=%d, want 1/1", len(s.Running()), len(s.Queue()))
	}
}

// Property: node conservation — at any point, free + allocated == total,
// and no node is double-allocated.
func TestNodeConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		k := sim.NewKernel(2)
		fab, err := machine.Scaled(6, 8, 4).NewFabric()
		if err != nil {
			return false
		}
		s := New(k, fab)
		for _, raw := range sizes {
			n := int(raw)%48 + 1
			if _, err := s.Submit("p", n, units.Seconds(int(raw)%50+1), nil); err != nil {
				return false
			}
		}
		ok := true
		check := func() {
			used := map[int]bool{}
			count := 0
			for _, j := range s.Running() {
				for _, n := range j.Alloc {
					if used[n] {
						ok = false
					}
					used[n] = true
					count++
				}
			}
			if count+s.freeHealthy != 48 {
				ok = false
			}
		}
		for i := 0; i < 20; i++ {
			k.RunUntil(k.Now() + 10)
			check()
		}
		k.Run()
		check()
		return ok && len(s.Running()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestJobStateString(t *testing.T) {
	for _, st := range []JobState{Pending, Running, Completed, Failed, Cancelled, JobState(9)} {
		if st.String() == "" {
			t.Errorf("empty state string for %d", int(st))
		}
	}
}
