package sim

// Golden dispatch-order equivalence: the arena + 4-ary heap kernel must
// replay a mixed schedule/cancel/Every/RunUntil trace exactly like the
// frozen pre-arena kernel in legacy_test.go — same dispatch order, same
// Executed count, same clock at every checkpoint. The trace is replayed
// a third time through the closure-free AtCall path to prove it shares
// the calendar's ordering with At/After.

import (
	"fmt"
	"math/rand"
	"testing"
)

// goldenHandle and goldenCal abstract the two kernels just enough for
// one trace function to drive both.
type goldenHandle interface{ cancel() }

type goldenCal interface {
	at(t Time, fn func()) goldenHandle
	after(d Time, fn func()) goldenHandle
	every(p Time, fn func()) func()
	run()
	runUntil(h Time)
	now() Time
	executed() uint64
	pending() int
}

type newCal struct{ k *Kernel }
type newHandle struct{ e Event }

func (h *newHandle) cancel() { h.e.Cancel() }

func (c *newCal) at(t Time, fn func()) goldenHandle    { return &newHandle{c.k.At(t, fn)} }
func (c *newCal) after(d Time, fn func()) goldenHandle { return &newHandle{c.k.After(d, fn)} }
func (c *newCal) every(p Time, fn func()) func()       { return c.k.Every(p, fn) }
func (c *newCal) run()                                 { c.k.Run() }
func (c *newCal) runUntil(h Time)                      { c.k.RunUntil(h) }
func (c *newCal) now() Time                            { return c.k.Now() }
func (c *newCal) executed() uint64                     { return c.k.Executed() }
func (c *newCal) pending() int                         { return c.k.Pending() }

// callCal drives the same kernel through AtCall/AfterCall instead of
// At/After: the closure-free path must produce the identical calendar.
type callCal struct{ k *Kernel }
type goldenArg struct{ fn func() }

func goldenCall(arg any) { arg.(*goldenArg).fn() }

func (c *callCal) at(t Time, fn func()) goldenHandle {
	return &newHandle{c.k.AtCall(t, goldenCall, &goldenArg{fn})}
}
func (c *callCal) after(d Time, fn func()) goldenHandle {
	return &newHandle{c.k.AfterCall(d, goldenCall, &goldenArg{fn})}
}
func (c *callCal) every(p Time, fn func()) func() { return c.k.Every(p, fn) }
func (c *callCal) run()                           { c.k.Run() }
func (c *callCal) runUntil(h Time)                { c.k.RunUntil(h) }
func (c *callCal) now() Time                      { return c.k.Now() }
func (c *callCal) executed() uint64               { return c.k.Executed() }
func (c *callCal) pending() int                   { return c.k.Pending() }

type oldCal struct{ k *legacyKernel }
type oldHandle struct{ e *legacyEvent }

func (h *oldHandle) cancel() { h.e.Cancel() }

func (c *oldCal) at(t Time, fn func()) goldenHandle    { return &oldHandle{c.k.At(t, fn)} }
func (c *oldCal) after(d Time, fn func()) goldenHandle { return &oldHandle{c.k.After(d, fn)} }
func (c *oldCal) every(p Time, fn func()) func()       { return c.k.Every(p, fn) }
func (c *oldCal) run()                                 { c.k.Run() }
func (c *oldCal) runUntil(h Time)                      { c.k.RunUntil(h) }
func (c *oldCal) now() Time                            { return c.k.Now() }
func (c *oldCal) executed() uint64                     { return c.k.Executed() }
func (c *oldCal) pending() int                         { return c.k.Pending() }

// replayGoldenTrace drives a calendar through a deterministic but
// adversarial mix: clustered ties, nested scheduling from inside
// callbacks, cancellations of pending events (from outside the loop and
// from inside running callbacks), periodic sweeps (cancelled externally
// and by their own tick), and RunUntil horizons between load phases.
// Every dispatch and checkpoint is logged; two equivalent kernels must
// produce byte-identical logs. The per-replay rng only feeds the trace
// itself — both replays draw in dispatch order, so a dispatch divergence
// also surfaces as a log divergence.
func replayGoldenTrace(c goldenCal) []string {
	var log []string
	r := rand.New(rand.NewSource(20260805))
	handles := map[int]goldenHandle{}
	next := 0
	logf := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }

	var mk func(depth int) (int, func())
	mk = func(depth int) (int, func()) {
		id := next
		next++
		return id, func() {
			delete(handles, id) // running now: only pending events stay cancellable
			logf("run %d @%v", id, c.now())
			if depth < 3 {
				for j, n := 0, r.Intn(3); j < n; j++ {
					cid, fn := mk(depth + 1)
					handles[cid] = c.after(Time(r.Intn(40)), fn)
				}
			}
			if r.Intn(4) == 0 {
				victim := r.Intn(next)
				if h, ok := handles[victim]; ok {
					h.cancel()
					delete(handles, victim)
					logf("cancel %d @%v", victim, c.now())
				}
			}
		}
	}

	// Phase 1: spread of top-level events plus a pile-up of ties at t=7.
	for i := 0; i < 40; i++ {
		id, fn := mk(0)
		handles[id] = c.at(Time(r.Intn(100)), fn)
	}
	for i := 0; i < 10; i++ {
		id, fn := mk(0)
		handles[id] = c.at(7, fn)
	}
	ticks1, ticks2 := 0, 0
	stop1 := c.every(9, func() { ticks1++; logf("tick1 @%v", c.now()) })
	stop2 := c.every(13, func() { ticks2++; logf("tick2 @%v", c.now()) })

	c.runUntil(55)
	logf("cp1 now=%v exec=%d pend=%d", c.now(), c.executed(), c.pending())

	// Cancel a deterministic subset of still-pending events, and one
	// sweep, between horizons.
	for id := 0; id < next; id += 3 {
		if h, ok := handles[id]; ok {
			h.cancel()
			delete(handles, id)
		}
	}
	stop1()
	c.runUntil(90)
	logf("cp2 now=%v exec=%d pend=%d", c.now(), c.executed(), c.pending())

	// Phase 2: fresh load after the horizon, and a sweep that cancels
	// itself from inside its own tick.
	for i := 0; i < 20; i++ {
		id, fn := mk(0)
		handles[id] = c.after(Time(r.Intn(60)), fn)
	}
	ticks3 := 0
	var stop3 func()
	stop3 = c.every(5, func() {
		ticks3++
		logf("tick3 @%v", c.now())
		if ticks3 == 4 {
			stop3()
		}
	})
	stop2()
	c.run()
	logf("cp3 now=%v exec=%d pend=%d ticks=%d/%d/%d",
		c.now(), c.executed(), c.pending(), ticks1, ticks2, ticks3)
	return log
}

func TestGoldenDispatchEquivalence(t *testing.T) {
	want := replayGoldenTrace(&oldCal{newLegacyKernel(1)})
	for name, got := range map[string][]string{
		"arena kernel (At/After)": replayGoldenTrace(&newCal{NewKernel(1)}),
		"arena kernel (AtCall)":   replayGoldenTrace(&callCal{NewKernel(1)}),
	} {
		if len(got) != len(want) {
			t.Fatalf("%s: %d log lines, legacy kernel produced %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s diverges from legacy kernel at line %d:\n got %q\nwant %q",
					name, i, got[i], want[i])
			}
		}
	}
}
