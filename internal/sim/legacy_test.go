package sim

// This file is a verbatim copy of the pre-arena event calendar (the
// container/heap kernel that shipped up to PR 4), renamed legacy*. It
// exists only as the reference implementation for the golden
// dispatch-order equivalence test in golden_test.go: the arena + 4-ary
// heap kernel must replay any mixed schedule/cancel/Every/RunUntil trace
// with the same dispatch order, the same Executed count, and the same
// clock. Do not "improve" this code — its value is that it is frozen.

import (
	"container/heap"
	"fmt"
	"math/rand"

	"frontiersim/internal/rng"
)

type legacyKernel struct {
	now     Time
	queue   legacyEventHeap
	seq     uint64
	seed    int64
	rng     *rand.Rand
	stopped bool

	executed uint64
}

func newLegacyKernel(seed int64) *legacyKernel {
	return &legacyKernel{seed: seed, rng: rng.New(seed)}
}

func (k *legacyKernel) Now() Time        { return k.now }
func (k *legacyKernel) Executed() uint64 { return k.executed }

type legacyEvent struct {
	at     Time
	seq    uint64
	fn     func()
	k      *legacyKernel
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

func (e *legacyEvent) Cancel() {
	if e.cancel {
		return
	}
	e.cancel = true
	if e.k != nil && e.index >= 0 {
		heap.Remove(&e.k.queue, e.index)
		e.index = -1
	}
}

func (e *legacyEvent) Cancelled() bool { return e.cancel }

func (e *legacyEvent) Time() Time { return e.at }

func (k *legacyKernel) At(t Time, fn func()) *legacyEvent {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &legacyEvent{at: t, seq: k.seq, fn: fn, k: k}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

func (k *legacyKernel) After(delay Time, fn func()) *legacyEvent {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return k.At(k.now+delay, fn)
}

func (k *legacyKernel) Stop() { k.stopped = true }

func (k *legacyKernel) Run() {
	k.stopped = false
	for !k.stopped {
		e := k.pop()
		if e == nil {
			return
		}
		k.now = e.at
		k.executed++
		e.fn()
	}
}

func (k *legacyKernel) RunUntil(horizon Time) {
	k.stopped = false
	for !k.stopped {
		e := k.peek()
		if e == nil || e.at > horizon {
			break
		}
		heap.Pop(&k.queue)
		e.index = -1
		if e.cancel {
			continue
		}
		k.now = e.at
		k.executed++
		e.fn()
	}
	if k.now < horizon {
		k.now = horizon
	}
}

func (k *legacyKernel) Pending() int { return k.queue.Len() }

func (k *legacyKernel) pop() *legacyEvent {
	for k.queue.Len() > 0 {
		e := heap.Pop(&k.queue).(*legacyEvent)
		e.index = -1
		if !e.cancel {
			return e
		}
	}
	return nil
}

func (k *legacyKernel) peek() *legacyEvent {
	for k.queue.Len() > 0 {
		e := k.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&k.queue)
		e.index = -1
	}
	return nil
}

type legacyEventHeap []*legacyEvent

func (h legacyEventHeap) Len() int { return len(h) }
func (h legacyEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h legacyEventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *legacyEventHeap) Push(x any) {
	e := x.(*legacyEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *legacyEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (k *legacyKernel) Every(period Time, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: period must be positive")
	}
	var e *legacyEvent
	cancelled := false
	var tick func()
	tick = func() {
		fn()
		if cancelled {
			return
		}
		e = k.After(period, tick)
	}
	e = k.After(period, tick)
	return func() {
		cancelled = true
		if e != nil {
			e.Cancel()
			e = nil
		}
	}
}
