package sim

// Resource is a counted resource with a FIFO wait queue — the classic
// discrete-event "server" primitive. SDMA engines, NIC DMA queues, and
// storage controllers are modelled as Resources.
type Resource struct {
	k        *Kernel
	name     string
	capacity int
	inUse    int

	// waiters[head:] is the FIFO wait queue. Entries pop by advancing
	// head; the slice resets to its start whenever it drains, so the
	// backing array is reused and steady-state queueing allocates
	// nothing.
	waiters []waiter
	head    int

	// Stats.
	totalAcquired uint64
	busyTime      Time
	lastChange    Time
}

// waiter is one queued acquisition: either a closure (fn) or a
// closure-free (cb, arg) pair, mirroring the kernel's two scheduling
// paths.
type waiter struct {
	n   int
	fn  func()
	cb  Callback
	arg any
}

// NewResource creates a resource with the given concurrency capacity.
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Queued returns the number of waiting acquisitions.
func (r *Resource) Queued() int { return len(r.waiters) - r.head }

// Acquire requests n units and calls fn once they are granted (possibly
// immediately, before Acquire returns). fn must eventually Release(n).
func (r *Resource) Acquire(n int, fn func()) {
	if n <= 0 || n > r.capacity {
		panic("sim: invalid acquire count")
	}
	if r.inUse+n <= r.capacity && r.head == len(r.waiters) {
		r.grant(n)
		fn()
		return
	}
	r.waiters = append(r.waiters, waiter{n: n, fn: fn})
}

// AcquireCall is the closure-free Acquire: cb(arg) runs once the units
// are granted (possibly immediately, before AcquireCall returns), and
// must eventually Release(n). Queue entries store the pair inline, so a
// pooled caller pays no allocation per acquisition.
func (r *Resource) AcquireCall(n int, cb Callback, arg any) {
	if n <= 0 || n > r.capacity {
		panic("sim: invalid acquire count")
	}
	if r.inUse+n <= r.capacity && r.head == len(r.waiters) {
		r.grant(n)
		cb(arg)
		return
	}
	r.waiters = append(r.waiters, waiter{n: n, cb: cb, arg: arg})
}

// Release returns n units and wakes as many waiters as now fit, in FIFO
// order (no overtaking: a large request at the head blocks smaller ones
// behind it, matching hardware queue behaviour).
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic("sim: invalid release count")
	}
	r.accrue()
	r.inUse -= n
	for r.head < len(r.waiters) {
		w := &r.waiters[r.head]
		if r.inUse+w.n > r.capacity {
			break
		}
		grant, fn, cb, arg := w.n, w.fn, w.cb, w.arg
		*w = waiter{} // drop references so captured state can be reclaimed
		r.head++
		if r.head == len(r.waiters) {
			r.waiters = r.waiters[:0]
			r.head = 0
		}
		r.grant(grant)
		if cb != nil {
			cb(arg)
		} else {
			fn()
		}
	}
}

// Utilization returns the time-averaged fraction of capacity in use from
// the start of the simulation until now.
func (r *Resource) Utilization() float64 {
	r.accrue()
	now := r.k.Now()
	if now == 0 {
		return 0
	}
	return float64(r.busyTime) / (float64(now) * float64(r.capacity))
}

func (r *Resource) grant(n int) {
	r.accrue()
	r.inUse += n
	r.totalAcquired += uint64(n)
}

func (r *Resource) accrue() {
	now := r.k.Now()
	r.busyTime += Time(float64(now-r.lastChange) * float64(r.inUse))
	r.lastChange = now
}
