// Sharded parallel event kernel: conservative lookahead windows over
// per-group logical processes.
//
// A ShardedKernel splits a model into N logical processes (LPs), each
// owning a private serial Kernel — the PR 5 arena + flat 4-ary heap stay
// intact per LP. LPs execute concurrently inside lookahead windows
// (YAWNS-style barriers): if every cross-LP interaction carries at least
// L seconds of virtual latency, then all events in [T, T+L) are
// causally independent across LPs and may run in parallel. At each
// window boundary the coordinator drains every LP's outbox of cross-LP
// events and merges them into the destination calendars in a single
// deterministic order — sorted by (time, source LP, source sequence), a
// key that does not depend on the shard count — so `run all -seed 42`
// is byte-identical whether the windows execute on one goroutine or
// eight.
//
// Determinism contract: serial mode (shards <= 1) runs the *same*
// windowed algorithm inline; per-LP random streams derive from
// rng.DeriveN(seed, lpID), a pure function of the LP identity; and the
// mailbox merge key is shard-count-free. The only true fallback — a
// single shared calendar — engages when the model exposes no partition
// or the lookahead bound is zero, where windowing is impossible.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"frontiersim/internal/rng"
)

// Partition describes how a model's entities split into logical
// processes. fabric.Fabric implements it for the dragonfly: one LP per
// group, with the switch traversal latency — the minimum virtual delay
// any message pays to cross groups — as the static lookahead bound.
type Partition interface {
	// NumLPs is the number of logical processes. Values below 2 mean
	// the model is unpartitioned.
	NumLPs() int
	// Lookahead is the minimum virtual latency of any cross-LP
	// interaction: an event posted from LP a to LP b at time t is
	// guaranteed to be scheduled no earlier than t+Lookahead. Zero
	// disables windowing (serial fallback).
	Lookahead() Time
}

// StaticPartition is the trivial Partition: a fixed LP count and a fixed
// bound. Models whose LPs never interact (for example per-group failure
// injectors) can set Bound to the run horizon, collapsing the run to a
// single window with near-linear parallel speedup.
type StaticPartition struct {
	LPs   int
	Bound Time
}

func (p StaticPartition) NumLPs() int     { return p.LPs }
func (p StaticPartition) Lookahead() Time { return p.Bound }

// xevent is one mailbox entry: a cross-LP event in flight between
// windows. The (at, src, seq) triple is the deterministic merge key.
type xevent struct {
	at  Time
	seq uint64 // per-source-LP post sequence
	src int32
	dst int32
	cb  Callback
	arg any
	h   *PostHandle
}

// mergeQueue orders mailbox entries by (time, source LP, source
// sequence) — unique per entry, independent of the shard count.
type mergeQueue []xevent

func (q *mergeQueue) Len() int      { return len(*q) }
func (q *mergeQueue) Swap(i, j int) { (*q)[i], (*q)[j] = (*q)[j], (*q)[i] }
func (q *mergeQueue) Less(i, j int) bool {
	a, b := &(*q)[i], &(*q)[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// LP is one logical process: a private serial kernel plus an outbox of
// cross-LP events. Model code running on an LP touches only its own
// kernel (K) and posts to other LPs via Post — the single-writer rule
// that makes the whole engine race-free without locks.
type LP struct {
	sk *ShardedKernel
	id int

	// K is the LP's private event calendar. Local scheduling goes
	// straight to it (AtCall/After/Every/...), exactly as on a serial
	// kernel.
	K *Kernel

	out      mergeQueue // outbox, drained by the coordinator at barriers
	seq      uint64     // next outbox sequence number
	lastExec uint64     // executed count at the previous stats flush
}

// ID returns the LP's index in [0, NumLPs).
func (lp *LP) ID() int { return lp.id }

// Stream derives an independent random stream for a named component of
// this LP. It is a pure function of (root seed, LP id, name) — never of
// the shard count or of sibling stream construction order — which is
// what keeps output byte-identical at any -shards value. Prefer this
// over lp.K.Stream: the latter only agrees with it outside the serial
// fallback, where LPs share one kernel.
func (lp *LP) Stream(name string) *rand.Rand {
	return rng.New(rng.Derive(lp.seed(), name))
}

// seed is the LP's private root seed, rng.DeriveN(root, lpID).
func (lp *LP) seed() int64 { return rng.DeriveN(lp.sk.seed, uint64(lp.id)) }

// Post schedules cb(arg) at absolute virtual time at on LP dst. It must
// be called from model code executing on this LP (or from the
// coordinator between runs), and at must respect the lookahead bound:
// at >= lp.K.Now() + Lookahead(). The event travels through this LP's
// outbox and is merged into dst's calendar at the next window barrier.
func (lp *LP) Post(dst int, at Time, cb Callback, arg any) {
	lp.post(dst, at, cb, arg, nil)
}

// PostEvent is Post returning a cancellable handle; see PostHandle.
func (lp *LP) PostEvent(dst int, at Time, cb Callback, arg any) *PostHandle {
	h := &PostHandle{lp: lp, dst: int32(dst)}
	lp.post(dst, at, cb, arg, h)
	return h
}

func (lp *LP) post(dst int, at Time, cb Callback, arg any, h *PostHandle) {
	if cb == nil {
		panic("sim: nil Callback")
	}
	sk := lp.sk
	if dst < 0 || dst >= len(sk.lps) {
		panic(fmt.Sprintf("sim: Post to unknown LP %d (have %d)", dst, len(sk.lps)))
	}
	if sk.serial != nil {
		// Shared-calendar fallback: no windows, so deliver directly.
		ev := sk.serial.AtCall(at, cb, arg)
		if h != nil {
			h.ev = ev
			h.delivered = true
		}
		return
	}
	if min := lp.K.Now() + sk.lookahead; at < min {
		panic(fmt.Sprintf(
			"sim: cross-LP event at %v violates lookahead bound (now %v + lookahead %v = %v)",
			at, lp.K.Now(), sk.lookahead, min))
	}
	lp.out = append(lp.out, xevent{
		at: at, seq: lp.seq, src: int32(lp.id), dst: int32(dst),
		cb: cb, arg: arg, h: h,
	})
	lp.seq++
}

// PostHandle is a cancellable handle to a cross-LP event. Cancel must be
// called from the LP that posted the event (or between runs).
//
// While the event is still in flight — posted but not yet merged at a
// window barrier — Cancel is exact: the coordinator drops it during the
// merge. Once delivered to the destination calendar, cancellation from
// another LP is best-effort by construction: conservative synchronization
// lets the destination run up to a full lookahead window ahead, so the
// cancel request is itself forwarded as a cross-LP event and only wins
// if the target has not fired by the time it arrives. Cancelled reports
// whether cancellation was requested, not whether it won.
type PostHandle struct {
	lp        *LP
	dst       int32
	cancelled bool
	delivered bool
	ev        Event
}

// Cancel requests cancellation of the posted event.
func (h *PostHandle) Cancel() {
	h.cancelled = true
	if !h.delivered {
		return // still in the outbox; the merge skips it
	}
	sk := h.lp.sk
	if sk.serial != nil || !sk.running {
		// Shared calendar, or no workers running: cancel in place.
		h.ev.Cancel()
		return
	}
	// The destination LP may be executing concurrently; forward the
	// cancellation through the mailbox like any other cross-LP event.
	h.lp.post(int(h.dst), h.lp.K.Now()+sk.lookahead, cancelPosted, h, nil)
}

func cancelPosted(arg any) { arg.(*PostHandle).ev.Cancel() }

// Cancelled reports whether Cancel was called on the handle.
func (h *PostHandle) Cancelled() bool { return h.cancelled }

// Delivered reports whether the event has been merged into the
// destination LP's calendar (true immediately in the serial fallback).
func (h *PostHandle) Delivered() bool { return h.delivered }

// ShardedKernel coordinates N logical processes across a pool of shard
// workers. Construct with NewSharded, schedule initial events on the
// per-LP kernels (setup is single-threaded), then Run or RunUntil.
type ShardedKernel struct {
	seed      int64
	lookahead Time
	shards    int
	lps       []*LP

	// serial is non-nil in the shared-calendar fallback (no partition or
	// zero lookahead): every LP's K points at this one kernel and Post
	// delivers directly.
	serial *Kernel

	running bool       // a windowed run is in progress (workers live)
	mq      mergeQueue // barrier merge scratch, reused across windows
}

// NewSharded builds a sharded kernel over partition p with the given
// worker count. shards <= 1 executes the windowed algorithm inline on
// the calling goroutine — same algorithm, same output, no concurrency.
// shards above NumLPs are clamped. A nil partition, fewer than two LPs,
// or a non-positive lookahead selects the shared-calendar fallback,
// which is exactly a serial Kernel behind the LP API.
func NewSharded(seed int64, p Partition, shards int) *ShardedKernel {
	n, la := 1, Time(0)
	if p != nil {
		n, la = p.NumLPs(), p.Lookahead()
	}
	if n < 1 {
		n = 1
	}
	sk := &ShardedKernel{seed: seed, lookahead: la}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	sk.shards = shards
	sk.lps = make([]*LP, n)
	if n < 2 || la <= 0 {
		// Fallback: one calendar shared by every LP.
		sk.serial = NewKernel(rng.DeriveN(seed, 0))
		sk.shards = 1
		for i := range sk.lps {
			sk.lps[i] = &LP{sk: sk, id: i, K: sk.serial}
		}
		return sk
	}
	for i := range sk.lps {
		sk.lps[i] = &LP{sk: sk, id: i, K: NewKernel(rng.DeriveN(seed, uint64(i)))}
	}
	noteShards(shards)
	return sk
}

// NumLPs returns the logical process count.
func (sk *ShardedKernel) NumLPs() int { return len(sk.lps) }

// Shards returns the effective worker count.
func (sk *ShardedKernel) Shards() int { return sk.shards }

// Lookahead returns the static lookahead bound (zero in the fallback).
func (sk *ShardedKernel) Lookahead() Time { return sk.lookahead }

// LP returns logical process i.
func (sk *ShardedKernel) LP(i int) *LP { return sk.lps[i] }

// Serial reports whether the kernel is running the shared-calendar
// fallback rather than the windowed engine.
func (sk *ShardedKernel) Serial() bool { return sk.serial != nil }

// Executed returns the total number of events dispatched across all LPs.
func (sk *ShardedKernel) Executed() uint64 {
	if sk.serial != nil {
		return sk.serial.Executed()
	}
	var sum uint64
	for _, lp := range sk.lps {
		sum += lp.K.Executed()
	}
	return sum
}

// ExecutedPerLP returns per-LP dispatched-event counts (a single total
// under the shared-calendar fallback, attributed to LP 0).
func (sk *ShardedKernel) ExecutedPerLP() []uint64 {
	out := make([]uint64, len(sk.lps))
	if sk.serial != nil {
		out[0] = sk.serial.Executed()
		return out
	}
	for i, lp := range sk.lps {
		out[i] = lp.K.Executed()
	}
	return out
}

// Run dispatches events until every LP's calendar is empty or an LP
// calls Stop on its kernel. Stop halts the stopping LP immediately
// (serial-kernel semantics); every other LP completes the current
// window, and the run returns at the barrier — the same state at any
// shard count, so stopping stays deterministic.
func (sk *ShardedKernel) Run() {
	if sk.serial != nil {
		sk.serial.Run()
		sk.flushStats()
		return
	}
	sk.runWindows(Time(math.Inf(1)), false)
}

// RunUntil dispatches events with timestamps <= horizon, then advances
// every LP clock to horizon; events beyond the horizon stay queued.
func (sk *ShardedKernel) RunUntil(horizon Time) {
	if sk.serial != nil {
		sk.serial.RunUntil(horizon)
		sk.flushStats()
		return
	}
	sk.runWindows(horizon, true)
}

// runWindows is the coordinator loop. Each iteration computes the global
// minimum next-event time Tmin (jumping over sparse gaps rather than
// stepping fixed windows), sets the window edge w1 = min(Tmin+L,
// just-past-horizon), lets every LP drain events strictly before w1 in
// parallel, then merges all outboxes deterministically.
func (sk *ShardedKernel) runWindows(horizon Time, advance bool) {
	// Horizon is inclusive (RunUntil semantics); the exclusive window
	// bound just past it admits events at exactly the horizon.
	bound := math.Nextafter(float64(horizon), math.Inf(1))

	// running gates PostHandle.Cancel onto the forwarded (mailbox) path
	// for the whole windowed run — also at shards=1, where there is no
	// concurrency but cancellation semantics must match the parallel
	// runs for the output to stay shard-count-invariant.
	sk.running = true
	defer func() { sk.running = false }()

	var start []chan Time
	var done chan int
	if sk.shards > 1 {
		start = make([]chan Time, sk.shards)
		done = make(chan int, sk.shards)
		for s := 0; s < sk.shards; s++ {
			start[s] = make(chan Time, 1)
			go sk.worker(s, start[s], done)
		}
		defer func() {
			for _, c := range start {
				close(c)
			}
		}()
	}

	// Setup code may have posted cross-LP events before the run; merge
	// them first so minNext sees every pending event.
	sk.deliver()

	for {
		tmin, ok := sk.minNext()
		if !ok || float64(tmin) >= bound {
			break
		}
		w1 := tmin + sk.lookahead
		if w1 <= tmin {
			// Guard against float rounding swallowing a tiny lookahead at
			// large timestamps: the window is then the single instant Tmin.
			w1 = Time(math.Nextafter(float64(tmin), math.Inf(1)))
		}
		if float64(w1) > bound {
			w1 = Time(bound)
		}

		if start == nil {
			for _, lp := range sk.lps {
				lp.K.RunBefore(w1)
			}
		} else {
			for _, c := range start {
				c <- w1
			}
			for range start {
				<-done
			}
		}

		stopped := false
		for _, lp := range sk.lps {
			if lp.K.Stopped() {
				stopped = true
			}
		}
		sk.deliver()
		sk.flushStats()
		if stopped {
			return
		}
	}

	if advance {
		for _, lp := range sk.lps {
			if lp.K.now < horizon {
				lp.K.now = horizon
			}
		}
	}
}

// worker owns every LP whose index is congruent to s modulo the shard
// count, draining each up to the window edge received on start. All
// cross-goroutine visibility rides the start/done channel pair.
func (sk *ShardedKernel) worker(s int, start <-chan Time, done chan<- int) {
	for w1 := range start {
		for i := s; i < len(sk.lps); i += sk.shards {
			sk.lps[i].K.RunBefore(w1)
		}
		done <- s
	}
}

// minNext returns the earliest pending event time across all LPs.
func (sk *ShardedKernel) minNext() (Time, bool) {
	var min Time
	ok := false
	for _, lp := range sk.lps {
		if t, has := lp.K.PeekTime(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// deliver drains every LP outbox into one queue, sorts it by the
// shard-count-free (time, source LP, source sequence) key, and inserts
// the survivors into their destination calendars. Insertion order is
// deterministic, so the per-destination sequence numbers — and with
// them every same-time tie-break downstream — are too.
func (sk *ShardedKernel) deliver() {
	q := sk.mq[:0]
	for _, lp := range sk.lps {
		q = append(q, lp.out...)
		clear(lp.out)
		lp.out = lp.out[:0]
	}
	sk.mq = q
	if len(q) == 0 {
		return
	}
	sort.Sort(&sk.mq)
	for i := range q {
		e := &q[i]
		if e.h != nil {
			if e.h.cancelled {
				continue
			}
			e.h.ev = sk.lps[e.dst].K.AtCall(e.at, e.cb, e.arg)
			e.h.delivered = true
			continue
		}
		sk.lps[e.dst].K.AtCall(e.at, e.cb, e.arg)
	}
	clear(q)
	sk.mq = q[:0]
}

// Per-shard executed-event counters aggregated across every sharded
// kernel in the process, for operational surfaces such as the campaign
// server's /v1/stats. Coordinators flush deltas at window barriers, so
// readers see live (slightly barrier-granular) progress of running jobs.
const maxStatShards = 64

var (
	statExec   [maxStatShards]atomic.Uint64
	statShards atomic.Int64
)

func noteShards(n int) {
	if n > maxStatShards {
		n = maxStatShards
	}
	for {
		cur := statShards.Load()
		if int64(n) <= cur || statShards.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// ShardedExecuted returns a process-wide snapshot of executed-event
// counts per shard index, summed over every sharded kernel since process
// start. Serial and fallback runs attribute to shard 0.
func ShardedExecuted() []uint64 {
	n := int(statShards.Load())
	if n < 1 {
		n = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = statExec[i].Load()
	}
	return out
}

// flushStats adds each LP's executed-event delta since the last flush to
// its shard's process-wide counter. Coordinator-only; runs at barriers.
func (sk *ShardedKernel) flushStats() {
	if sk.serial != nil {
		n := sk.serial.Executed()
		lp := sk.lps[0]
		statExec[0].Add(n - lp.lastExec)
		lp.lastExec = n
		return
	}
	for i, lp := range sk.lps {
		n := lp.K.Executed()
		if d := n - lp.lastExec; d != 0 {
			statExec[(i%sk.shards)%maxStatShards].Add(d)
			lp.lastExec = n
		}
	}
}
