package sim

import (
	"math"
	"reflect"
	"testing"

	"frontiersim/internal/rng"
)

// traceModel is a deterministic cross-LP workload used by the
// equivalence tests: every LP starts with a burst of local events at
// stream-drawn times; each event logs (time, tag) to its LP's private
// trace, schedules a local follow-up, and posts a continuation to a
// derived destination LP at least one lookahead in the future. Traces
// are per-LP, so concurrent execution appends race-free and the full
// trace set is comparable across shard counts.
type traceModel struct {
	sk     *ShardedKernel
	traces [][]traceEntry
}

type traceEntry struct {
	at  Time
	tag uint64
}

type hopMsg struct {
	m   *traceModel
	lp  int
	tag uint64
	ttl int
}

func hopFire(arg any) {
	h := arg.(*hopMsg)
	lp := h.m.sk.LP(h.lp)
	now := lp.K.Now()
	h.m.traces[h.lp] = append(h.m.traces[h.lp], traceEntry{at: now, tag: h.tag})
	if h.ttl <= 0 {
		return
	}
	next := &hopMsg{m: h.m, tag: rng.Mix64(h.tag), ttl: h.ttl - 1}
	next.lp = int(next.tag>>32) % h.m.sk.NumLPs()
	at := now + h.m.sk.Lookahead() + Time(next.tag%7)*0.01
	lp.Post(next.lp, at, hopFire, next)
	// Local follow-up interleaved with the mailbox traffic.
	lp.K.AfterCall(0.001, hopLocal, h)
}

func hopLocal(arg any) {
	h := arg.(*hopMsg)
	lp := h.m.sk.LP(h.lp)
	h.m.traces[h.lp] = append(h.m.traces[h.lp], traceEntry{at: lp.K.Now(), tag: 0x10ca1})
}

func runTraceModel(seed int64, lps, shards, bursts, ttl int) ([][]traceEntry, uint64) {
	sk := NewSharded(seed, StaticPartition{LPs: lps, Bound: 0.05}, shards)
	m := &traceModel{sk: sk, traces: make([][]traceEntry, lps)}
	for i := 0; i < lps; i++ {
		lp := sk.LP(i)
		st := lp.Stream("burst")
		for b := 0; b < bursts; b++ {
			msg := &hopMsg{m: m, lp: i, tag: uint64(st.Int63()), ttl: ttl}
			lp.K.AtCall(Time(st.Float64()), hopFire, msg)
		}
	}
	sk.Run()
	return m.traces, sk.Executed()
}

func TestShardedTraceInvariantAcrossShardCounts(t *testing.T) {
	const lps, bursts, ttl = 8, 6, 12
	ref, refExec := runTraceModel(42, lps, 1, bursts, ttl)
	if refExec == 0 {
		t.Fatal("reference run executed nothing")
	}
	for _, shards := range []int{2, 4, 8} {
		got, exec := runTraceModel(42, lps, shards, bursts, ttl)
		if exec != refExec {
			t.Errorf("shards=%d: executed %d events, want %d", shards, exec, refExec)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d: per-LP traces diverge from shards=1", shards)
		}
	}
}

func TestShardedStreamInvariant(t *testing.T) {
	// lp.Stream is a pure function of (seed, lpID, name): identical in
	// windowed mode at any shard count and in the serial fallback.
	draw := func(sk *ShardedKernel) []int64 {
		out := make([]int64, sk.NumLPs())
		for i := range out {
			out[i] = sk.LP(i).Stream("x").Int63()
		}
		return out
	}
	ref := draw(NewSharded(7, StaticPartition{LPs: 4, Bound: 1}, 1))
	for name, sk := range map[string]*ShardedKernel{
		"shards=4": NewSharded(7, StaticPartition{LPs: 4, Bound: 1}, 4),
		"fallback": NewSharded(7, StaticPartition{LPs: 4, Bound: 0}, 4),
		"one-lp":   NewSharded(7, nil, 4),
		"clamped":  NewSharded(7, StaticPartition{LPs: 4, Bound: 1}, 99),
	} {
		got := draw(sk)
		n := len(got)
		if n > len(ref) {
			n = len(ref)
		}
		if !reflect.DeepEqual(got[:n], ref[:n]) {
			t.Errorf("%s: per-LP streams diverge", name)
		}
	}
}

func TestShardedWindowBoundaryEvent(t *testing.T) {
	// A cross-LP event landing exactly on the window edge w1 = Tmin + L
	// must execute in the following window at exactly its timestamp.
	const L = 1.0
	for _, shards := range []int{1, 2} {
		sk := NewSharded(1, StaticPartition{LPs: 2, Bound: L}, shards)
		var fired []Time
		sk.LP(0).K.At(0, func() {
			// now=0, so t=L is the first window's exclusive edge.
			sk.LP(0).Post(1, L, func(any) {
				fired = append(fired, sk.LP(1).K.Now())
			}, nil)
		})
		sk.Run()
		if len(fired) != 1 || fired[0] != L {
			t.Errorf("shards=%d: boundary event fired at %v, want exactly [%v]", shards, fired, Time(L))
		}
	}
}

func TestShardedZeroLookaheadFallsBackToSerial(t *testing.T) {
	for name, p := range map[string]Partition{
		"zero-lookahead": StaticPartition{LPs: 4, Bound: 0},
		"one-lp":         StaticPartition{LPs: 1, Bound: 5},
		"nil-partition":  nil,
	} {
		sk := NewSharded(3, p, 8)
		if !sk.Serial() {
			t.Errorf("%s: expected serial fallback", name)
		}
		if sk.Shards() != 1 {
			t.Errorf("%s: fallback shards = %d, want 1", name, sk.Shards())
		}
		// Posts deliver directly, with no lookahead restriction.
		var order []int
		n := sk.NumLPs()
		for i := 0; i < n; i++ {
			i := i
			sk.LP(i%n).Post((i+1)%n, Time(i)*0.25, func(any) { order = append(order, i) }, nil)
		}
		sk.Run()
		if len(order) != n {
			t.Fatalf("%s: executed %d of %d posted events", name, len(order), n)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("%s: execution order %v not time-ordered", name, order)
			}
		}
	}
}

func TestShardedCancelInFlight(t *testing.T) {
	// Cancel before the first barrier: the merge drops the event exactly.
	for _, shards := range []int{1, 2} {
		sk := NewSharded(1, StaticPartition{LPs: 2, Bound: 1}, shards)
		fired := false
		h := sk.LP(0).PostEvent(1, 5, func(any) { fired = true }, nil)
		if h.Delivered() {
			t.Fatalf("shards=%d: handle delivered before any barrier", shards)
		}
		h.Cancel()
		if !h.Cancelled() {
			t.Fatalf("shards=%d: Cancelled() false after Cancel", shards)
		}
		sk.LP(1).K.At(6, func() {}) // keep the run alive past t=5
		sk.Run()
		if fired {
			t.Errorf("shards=%d: cancelled in-flight event fired", shards)
		}
	}
}

func TestShardedCancelAfterDelivery(t *testing.T) {
	// Between runs the destination is quiescent: Cancel acts in place.
	for _, shards := range []int{1, 2} {
		sk := NewSharded(1, StaticPartition{LPs: 2, Bound: 1}, shards)
		fired := false
		h := sk.LP(0).PostEvent(1, 5, func(any) { fired = true }, nil)
		sk.LP(0).K.At(0, func() {})
		sk.RunUntil(2)
		if !h.Delivered() {
			t.Fatalf("shards=%d: handle not delivered after a run with barriers", shards)
		}
		h.Cancel()
		sk.RunUntil(10)
		if fired {
			t.Errorf("shards=%d: cancelled delivered event fired", shards)
		}
	}
}

func TestShardedCancelForwardedDuringRun(t *testing.T) {
	// Cancelling a delivered handle mid-run forwards the cancellation
	// through the mailbox; with the target a full lookahead past the
	// cancel point, the forwarded cancel must win at every shard count.
	for _, shards := range []int{1, 2} {
		sk := NewSharded(1, StaticPartition{LPs: 2, Bound: 1}, shards)
		fired := false
		var h *PostHandle
		sk.LP(0).K.At(0, func() {
			h = sk.LP(0).PostEvent(1, 10, func(any) { fired = true }, nil)
		})
		sk.LP(0).K.At(3, func() { h.Cancel() })
		sk.Run()
		if fired {
			t.Errorf("shards=%d: forwarded cancel lost to a target a full window away", shards)
		}
		if !h.Cancelled() {
			t.Errorf("shards=%d: Cancelled() false", shards)
		}
	}
}

type pingState struct {
	sk *ShardedKernel
	lp int
}

func pingBounce(arg any) {
	p := arg.(*pingState)
	lp := p.sk.LP(p.lp)
	lp.Post(3-p.lp, lp.K.Now()+0.1, pingBounce, &pingState{sk: p.sk, lp: 3 - p.lp})
}

func TestShardedEverySurvivesWindowBarriers(t *testing.T) {
	// A periodic ticker on one LP must tick through many window
	// barriers driven by unrelated cross-LP traffic on other LPs.
	for _, shards := range []int{1, 3} {
		sk := NewSharded(1, StaticPartition{LPs: 3, Bound: 0.1}, shards)
		ticks := 0
		sk.LP(0).K.Every(0.25, func() { ticks++ })
		// Ping-pong between LP 1 and LP 2 every lookahead, forcing
		// ~100 windows across the horizon.
		sk.LP(1).K.AtCall(0, pingBounce, &pingState{sk: sk, lp: 1})
		sk.RunUntil(10)
		if want := 40; ticks != want {
			t.Errorf("shards=%d: %d ticks across barriers, want %d", shards, ticks, want)
		}
	}
}

func TestShardedRunUntilAdvancesClocks(t *testing.T) {
	sk := NewSharded(1, StaticPartition{LPs: 2, Bound: 1}, 2)
	sk.LP(0).K.At(1, func() {})
	sk.RunUntil(7)
	for i := 0; i < 2; i++ {
		if now := sk.LP(i).K.Now(); now != 7 {
			t.Errorf("LP %d clock at %v after RunUntil(7)", i, now)
		}
	}
	// Events beyond the horizon stay queued and run on the next call.
	ran := false
	sk.LP(1).K.At(9, func() { ran = true })
	sk.RunUntil(8)
	if ran {
		t.Error("event beyond horizon ran")
	}
	sk.RunUntil(9)
	if !ran {
		t.Error("event at horizon (inclusive) did not run")
	}
}

func TestShardedStopHaltsRunAtWindowBoundary(t *testing.T) {
	// Stop on an LP halts that LP immediately (serial-kernel semantics)
	// and halts the whole run at the window boundary. Remaining events —
	// including same-window events on the stopped LP — stay queued and
	// run on the next call, identically at every shard count.
	for _, shards := range []int{1, 2} {
		sk := NewSharded(1, StaticPartition{LPs: 2, Bound: 1}, shards)
		var ran []string
		sk.LP(0).K.At(0.1, func() { ran = append(ran, "a"); sk.LP(0).K.Stop() })
		sk.LP(0).K.At(0.2, func() { ran = append(ran, "same-lp-later") })
		sk.LP(1).K.At(5, func() { ran = append(ran, "next-window") })
		sk.Run()
		if want := []string{"a"}; !reflect.DeepEqual(ran, want) {
			t.Errorf("shards=%d: first run executed %v, want %v", shards, ran, want)
		}
		sk.Run()
		want := []string{"a", "same-lp-later", "next-window"}
		if !reflect.DeepEqual(ran, want) {
			t.Errorf("shards=%d: after resume executed %v, want %v", shards, ran, want)
		}
	}
}

func TestShardedPostLookaheadViolationPanics(t *testing.T) {
	sk := NewSharded(1, StaticPartition{LPs: 2, Bound: 1}, 1)
	defer func() {
		if recover() == nil {
			t.Error("Post inside the lookahead bound did not panic")
		}
	}()
	sk.LP(0).Post(1, 0.5, func(any) {}, nil)
}

func TestShardedExecutedCounters(t *testing.T) {
	before := ShardedExecuted()
	_, exec := runTraceModel(9, 8, 4, 4, 8)
	after := ShardedExecuted()
	if len(after) < 4 {
		t.Fatalf("ShardedExecuted tracks %d shards, want >= 4", len(after))
	}
	var delta uint64
	for i := range after {
		var b uint64
		if i < len(before) {
			b = before[i]
		}
		delta += after[i] - b
	}
	if delta < exec {
		t.Errorf("process-wide counters grew by %d, want at least the run's %d", delta, exec)
	}
}

func TestKernelRunBeforeAndPeek(t *testing.T) {
	k := NewKernel(1)
	var ran []Time
	for _, at := range []Time{0.5, 1.0, 1.5} {
		at := at
		k.At(at, func() { ran = append(ran, at) })
	}
	if at, ok := k.PeekTime(); !ok || at != 0.5 {
		t.Fatalf("PeekTime = %v,%v, want 0.5,true", at, ok)
	}
	k.RunBefore(1.0) // strictly-before: the t=1.0 event stays queued
	if want := []Time{0.5}; !reflect.DeepEqual(ran, want) {
		t.Fatalf("RunBefore(1.0) ran %v, want %v", ran, want)
	}
	if k.Now() != 0.5 {
		t.Errorf("clock at %v after RunBefore, want 0.5 (no jump to bound)", k.Now())
	}
	if at, ok := k.PeekTime(); !ok || at != 1.0 {
		t.Errorf("PeekTime after partial drain = %v,%v, want 1.0,true", at, ok)
	}
	k.RunBefore(Time(math.Inf(1)))
	if len(ran) != 3 {
		t.Errorf("full drain ran %d events, want 3", len(ran))
	}
	if _, ok := k.PeekTime(); ok {
		t.Error("PeekTime reports events on an empty calendar")
	}
}

func TestShardedLargeFanoutSmoke(t *testing.T) {
	// 80 LPs (the dragonfly group count), all-to-all posts, several
	// windows; a structural smoke for the coordinator at real scale.
	// counts[d] is only ever touched by LP d, so parallel execution
	// stays race-free.
	sk := NewSharded(5, StaticPartition{LPs: 80, Bound: 0.2}, 8)
	var counts [80]int
	for i := 0; i < 80; i++ {
		lp := sk.LP(i)
		lp.K.At(0, func() {
			for d := 0; d < 80; d++ {
				d := d
				lp.Post(d, 0.2+Time(d)*0.001, func(any) { counts[d]++ }, nil)
			}
		})
	}
	sk.Run()
	for i, c := range counts {
		if c != 80 {
			t.Fatalf("LP %d received %d posts, want 80", i, c)
		}
	}
	if got, want := sk.Executed(), uint64(80+80*80); got != want {
		t.Errorf("executed %d events, want %d", got, want)
	}
}
